//===- BenchCommon.cpp - Shared experiment harness helpers -----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace gdse;
using namespace gdse::bench;

PreparedProgram gdse::bench::prepareOriginal(const WorkloadInfo &W) {
  PreparedProgram P;
  P.Info = &W;
  ParseResult R = parseMiniC(W.Source);
  if (!R.ok()) {
    P.Error = "parse failed: " + (R.Errors.empty() ? "?" : R.Errors.front());
    return P;
  }
  P.M = std::move(R.M);
  P.LoopIds = findCandidateLoops(*P.M);
  P.Ok = true;
  return P;
}

PreparedProgram gdse::bench::prepareTransformed(const WorkloadInfo &W,
                                                const PipelineOptions &Opts) {
  PreparedProgram P = prepareOriginal(W);
  if (!P.Ok)
    return P;
  // One session per workload: cached analyses carry across the candidate
  // loops and the session's registry accounts every pass and analysis.
  CompilationSession Session(*P.M);
  for (unsigned LoopId : P.LoopIds) {
    PipelineResult PR = Session.compileLoop(LoopId, Opts);
    if (!PR.Ok) {
      P.Ok = false;
      P.Error = PR.Errors.empty() ? "transformation failed" : PR.Errors.front();
      return P;
    }
    P.Pipelines.push_back(std::move(PR));
  }
  P.CompileTiming = Session.timing().records();
  P.CompileReport =
      "== " + std::string(W.Name) + " compile ==\n" + Session.timingReport() +
      Session.statsReport();
  reportCompileTiming(P);
  return P;
}

std::vector<PreparedProgram> gdse::bench::prepareTransformedBatch(
    const std::vector<const WorkloadInfo *> &Ws, const PipelineOptions &Opts,
    unsigned Jobs) {
  if (Jobs == 0)
    Jobs = static_cast<unsigned>(std::max<long>(
        1, envInt("GDSE_JOBS", ThreadPool::defaultThreadCount())));

  // Parse serially (cheap, and module construction is not synchronized);
  // compilation of the independent modules is what runs in parallel.
  std::vector<PreparedProgram> Out;
  Out.reserve(Ws.size());
  std::vector<BatchUnit> Units;
  for (const WorkloadInfo *W : Ws) {
    Out.push_back(prepareOriginal(*W));
    if (Out.back().Ok) {
      BatchUnit U;
      U.M = Out.back().M.get();
      U.Opts = Opts;
      Units.push_back(U);
    }
  }

  auto Start = std::chrono::steady_clock::now();
  std::vector<BatchUnitResult> Results =
      CompilationSession::compileBatch(Units, Jobs);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();

  size_t RI = 0;
  for (PreparedProgram &P : Out) {
    if (!P.Ok)
      continue;
    BatchUnitResult &R = Results[RI++];
    P.Pipelines = std::move(R.Results);
    P.Ok = R.Ok;
    if (!P.Ok) {
      P.Error = "transformation failed";
      for (const Diagnostic &D : R.Diags)
        if (D.isError()) {
          P.Error = D.Message;
          break;
        }
      continue;
    }
    P.CompileReport = "== " + std::string(P.Info->Name) + " compile ==\n" +
                      R.TimingReport + R.StatsReport;
    reportCompileTiming(P);
  }
  if (envFlag("GDSE_TIME_PASSES"))
    std::fprintf(stderr, "== batch compile: %zu workloads, %u jobs, %.1f ms ==\n",
                 Units.size(), Jobs, Ms);
  return Out;
}

PreparedProgram &gdse::bench::preparedForAll(const WorkloadInfo &W,
                                             const PipelineOptions &Opts) {
  // Key on every field that changes compilation output. ExternalGraph is a
  // pointer identity: two different graphs must never share an entry.
  std::string Key = formatString(
      "%d|%s|%d|%p|%d%d%d%d", static_cast<int>(Opts.Method),
      Opts.Entry.c_str(), static_cast<int>(Opts.Source),
      static_cast<const void *>(Opts.ExternalGraph),
      static_cast<int>(Opts.Expansion.Layout), Opts.Expansion.SelectivePromotion,
      Opts.Expansion.SpanConstantPropagation,
      Opts.Expansion.DeadSpanStoreElimination);
  static std::map<std::string, std::vector<PreparedProgram>> Cache;
  auto It = Cache.find(Key);
  if (It == Cache.end()) {
    std::vector<const WorkloadInfo *> Ws;
    for (const WorkloadInfo &Each : allWorkloads())
      Ws.push_back(&Each);
    It = Cache.emplace(Key, prepareTransformedBatch(Ws, Opts)).first;
  }
  for (PreparedProgram &P : It->second)
    if (P.Info && P.Info->Name == std::string(W.Name))
      return P;
  // Unreachable for the standard set; keep a stable failure object anyway.
  static PreparedProgram Missing;
  Missing.Error = "workload not in the standard set";
  return Missing;
}

void gdse::bench::reportCompileTiming(const PreparedProgram &P, bool Force) {
  if (P.CompileReport.empty())
    return;
  if (!Force && !envFlag("GDSE_TIME_PASSES"))
    return;
  std::fputs(P.CompileReport.c_str(), stderr);
}

RunResult gdse::bench::execute(PreparedProgram &P, int Threads,
                               bool SimulateParallel) {
  InterpOptions IO;
  IO.NumThreads = Threads;
  IO.SimulateParallel = SimulateParallel;
  // The transformed programs are test-verified; skip per-access bounds
  // checking for faster experiment turnaround.
  IO.BoundsCheck = false;
  Interp I(*P.M, IO);
  return I.run();
}

uint64_t gdse::bench::loopSimTime(const RunResult &R,
                                  const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.SimTime;
  }
  return Total;
}

uint64_t gdse::bench::loopWorkCycles(const RunResult &R,
                                     const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.WorkCycles;
  }
  return Total;
}

double gdse::bench::harmonicMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Denom = 0.0;
  for (double X : Xs)
    Denom += 1.0 / X;
  return static_cast<double>(Xs.size()) / Denom;
}

std::string gdse::bench::ratioStr(double R) {
  return formatString("%.2fx", R);
}
