//===- BenchCommon.cpp - Shared experiment harness helpers -----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <cstdio>
#include <cstdlib>

using namespace gdse;
using namespace gdse::bench;

PreparedProgram gdse::bench::prepareOriginal(const WorkloadInfo &W) {
  PreparedProgram P;
  P.Info = &W;
  ParseResult R = parseMiniC(W.Source);
  if (!R.ok()) {
    P.Error = "parse failed: " + (R.Errors.empty() ? "?" : R.Errors.front());
    return P;
  }
  P.M = std::move(R.M);
  P.LoopIds = findCandidateLoops(*P.M);
  P.Ok = true;
  return P;
}

PreparedProgram gdse::bench::prepareTransformed(const WorkloadInfo &W,
                                                const PipelineOptions &Opts) {
  PreparedProgram P = prepareOriginal(W);
  if (!P.Ok)
    return P;
  // One session per workload: cached analyses carry across the candidate
  // loops and the session's registry accounts every pass and analysis.
  CompilationSession Session(*P.M);
  for (unsigned LoopId : P.LoopIds) {
    PipelineResult PR = Session.compileLoop(LoopId, Opts);
    if (!PR.Ok) {
      P.Ok = false;
      P.Error = PR.Errors.empty() ? "transformation failed" : PR.Errors.front();
      return P;
    }
    P.Pipelines.push_back(std::move(PR));
  }
  P.CompileTiming = Session.timing().records();
  P.CompileReport =
      "== " + std::string(W.Name) + " compile ==\n" + Session.timingReport() +
      Session.statsReport();
  reportCompileTiming(P);
  return P;
}

void gdse::bench::reportCompileTiming(const PreparedProgram &P, bool Force) {
  if (P.CompileReport.empty())
    return;
  if (!Force) {
    const char *Env = std::getenv("GDSE_TIME_PASSES");
    if (!Env || !*Env)
      return;
  }
  std::fputs(P.CompileReport.c_str(), stderr);
}

RunResult gdse::bench::execute(PreparedProgram &P, int Threads,
                               bool SimulateParallel) {
  InterpOptions IO;
  IO.NumThreads = Threads;
  IO.SimulateParallel = SimulateParallel;
  // The transformed programs are test-verified; skip per-access bounds
  // checking for faster experiment turnaround.
  IO.BoundsCheck = false;
  Interp I(*P.M, IO);
  return I.run();
}

uint64_t gdse::bench::loopSimTime(const RunResult &R,
                                  const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.SimTime;
  }
  return Total;
}

uint64_t gdse::bench::loopWorkCycles(const RunResult &R,
                                     const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.WorkCycles;
  }
  return Total;
}

double gdse::bench::harmonicMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Denom = 0.0;
  for (double X : Xs)
    Denom += 1.0 / X;
  return static_cast<double>(Xs.size()) / Denom;
}

std::string gdse::bench::ratioStr(double R) {
  return formatString("%.2fx", R);
}
