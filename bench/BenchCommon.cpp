//===- BenchCommon.cpp - Shared experiment harness helpers -----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/Bytecode.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sys/stat.h>

using namespace gdse;
using namespace gdse::bench;

namespace {

const char *engineName(ExecEngine E) {
  switch (E) {
  case ExecEngine::TreeWalk:
    return "tree";
  case ExecEngine::Bytecode:
    return "bytecode";
  case ExecEngine::Threads:
    return "threads";
  }
  return "?";
}

/// Everything the --json writer needs, accumulated across the process.
struct JsonSink {
  bool Enabled = false;
  std::string OutFile;
  std::string BenchId;
  std::chrono::steady_clock::time_point Start;
  struct GuardLoopRec {
    unsigned LoopId;
    uint64_t Invocations, Checks, Violations, Fallbacks;
  };
  struct Rec {
    std::string Workload;
    const char *Engine;
    int Threads;
    bool SimulateParallel;
    bool Trapped;
    uint64_t WorkCycles, SimTime, HostNanos, PeakBytes;
    const char *GuardMode;
    /// Resilience ladder activity, summed over loops (0 on clean runs).
    uint64_t Degradations = 0, WatchdogFires = 0;
    /// Per-loop guard counters; empty when no loop was guarded.
    std::vector<GuardLoopRec> GuardLoops;
  };
  std::vector<Rec> Recs;
  /// Bench-specific records (complete JSON object literals) appended via
  /// addJsonRecord; emitted verbatim under "records".
  std::vector<std::string> Extra;
};

JsonSink &jsonSink() {
  static JsonSink S;
  return S;
}

void writeJson() {
  JsonSink &S = jsonSink();
  if (!S.Enabled)
    return;
  FILE *F = std::fopen(S.OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench: cannot write %s\n", S.OutFile.c_str());
    return;
  }
  uint64_t WallNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - S.Start)
                        .count();
  std::fprintf(F, "{\n  \"bench\": \"%s\",\n", S.BenchId.c_str());
  std::fprintf(F, "  \"config\": {\"engine\": \"%s\", \"bounds_check\": "
                  "false},\n",
               engineName(engineFromEnv()));
  std::fprintf(F, "  \"wall_time_ns\": %llu,\n",
               static_cast<unsigned long long>(WallNs));
  std::fprintf(F, "  \"runs\": [");
  for (size_t I = 0; I != S.Recs.size(); ++I) {
    const JsonSink::Rec &R = S.Recs[I];
    std::fprintf(
        F,
        "%s\n    {\"workload\": \"%s\", \"engine\": \"%s\", \"threads\": %d, "
        "\"simulate_parallel\": %s, \"trapped\": %s, \"work_cycles\": %llu, "
        "\"sim_time\": %llu, \"host_ns\": %llu, \"peak_bytes\": %llu, "
        "\"guard_mode\": \"%s\", \"degradations\": %llu, "
        "\"watchdog_fires\": %llu, \"guard_loops\": [",
        I ? "," : "", R.Workload.c_str(), R.Engine, R.Threads,
        R.SimulateParallel ? "true" : "false", R.Trapped ? "true" : "false",
        static_cast<unsigned long long>(R.WorkCycles),
        static_cast<unsigned long long>(R.SimTime),
        static_cast<unsigned long long>(R.HostNanos),
        static_cast<unsigned long long>(R.PeakBytes), R.GuardMode,
        static_cast<unsigned long long>(R.Degradations),
        static_cast<unsigned long long>(R.WatchdogFires));
    for (size_t J = 0; J != R.GuardLoops.size(); ++J) {
      const JsonSink::GuardLoopRec &G = R.GuardLoops[J];
      std::fprintf(F,
                   "%s{\"loop\": %u, \"guarded_invocations\": %llu, "
                   "\"checks\": %llu, \"violations\": %llu, "
                   "\"fallbacks\": %llu}",
                   J ? ", " : "", G.LoopId,
                   static_cast<unsigned long long>(G.Invocations),
                   static_cast<unsigned long long>(G.Checks),
                   static_cast<unsigned long long>(G.Violations),
                   static_cast<unsigned long long>(G.Fallbacks));
    }
    std::fprintf(F, "]}");
  }
  std::fprintf(F, "\n  ]");
  if (!S.Extra.empty()) {
    std::fprintf(F, ",\n  \"records\": [");
    for (size_t I = 0; I != S.Extra.size(); ++I)
      std::fprintf(F, "%s\n    %s", I ? "," : "", S.Extra[I].c_str());
    std::fprintf(F, "\n  ]");
  }
  std::fprintf(F, "\n}\n");
  std::fclose(F);
}

} // namespace

void gdse::bench::addJsonRecord(const std::string &JsonObject) {
  JsonSink &S = jsonSink();
  if (S.Enabled)
    S.Extra.push_back(JsonObject);
}

void gdse::bench::initBenchIO(int &argc, char **argv) {
  JsonSink &S = jsonSink();
  S.Start = std::chrono::steady_clock::now();
  // Bench id = program basename (the target name, e.g. "fig11_speedup").
  S.BenchId = argv[0];
  if (size_t Slash = S.BenchId.rfind('/'); Slash != std::string::npos)
    S.BenchId = S.BenchId.substr(Slash + 1);

  std::string Path;
  int Out = 1;
  for (int In = 1; In < argc; ++In) {
    if (std::strcmp(argv[In], "--json") == 0 && In + 1 < argc) {
      Path = argv[++In];
      S.Enabled = true;
    } else if (std::strncmp(argv[In], "--json=", 7) == 0) {
      Path = argv[In] + 7;
      S.Enabled = true;
    } else {
      argv[Out++] = argv[In];
    }
  }
  argc = Out;
  if (!S.Enabled)
    return;

  if (Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".json") == 0) {
    S.OutFile = Path;
  } else {
    if (!Path.empty())
      ::mkdir(Path.c_str(), 0755); // best effort; may already exist
    S.OutFile = (Path.empty() ? std::string(".") : Path) + "/BENCH_" +
                S.BenchId + ".json";
  }
  std::atexit(writeJson);
}

PreparedProgram gdse::bench::prepareOriginal(const WorkloadInfo &W) {
  PreparedProgram P;
  P.Info = &W;
  ParseResult R = parseMiniC(W.Source);
  if (!R.ok()) {
    P.Error = "parse failed: " + (R.Errors.empty() ? "?" : R.Errors.front());
    return P;
  }
  P.M = std::move(R.M);
  P.LoopIds = findCandidateLoops(*P.M);
  P.Ok = true;
  return P;
}

PreparedProgram gdse::bench::prepareTransformed(const WorkloadInfo &W,
                                                const PipelineOptions &Opts) {
  PreparedProgram P = prepareOriginal(W);
  if (!P.Ok)
    return P;
  // One session per workload: cached analyses carry across the candidate
  // loops and the session's registry accounts every pass and analysis.
  CompilationSession Session(*P.M);
  for (unsigned LoopId : P.LoopIds) {
    PipelineResult PR = Session.compileLoop(LoopId, Opts);
    if (!PR.Ok) {
      P.Ok = false;
      P.Error = PR.Errors.empty() ? "transformation failed" : PR.Errors.front();
      return P;
    }
    P.Pipelines.push_back(std::move(PR));
  }
  P.CompileTiming = Session.timing().records();
  P.CompileReport =
      "== " + std::string(W.Name) + " compile ==\n" + Session.timingReport() +
      Session.statsReport();
  reportCompileTiming(P);
  return P;
}

std::vector<PreparedProgram> gdse::bench::prepareTransformedBatch(
    const std::vector<const WorkloadInfo *> &Ws, const PipelineOptions &Opts,
    unsigned Jobs) {
  if (Jobs == 0)
    Jobs = static_cast<unsigned>(std::max<long>(
        1, envInt("GDSE_JOBS", ThreadPool::defaultThreadCount())));

  // Parse serially (cheap, and module construction is not synchronized);
  // compilation of the independent modules is what runs in parallel.
  std::vector<PreparedProgram> Out;
  Out.reserve(Ws.size());
  std::vector<BatchUnit> Units;
  for (const WorkloadInfo *W : Ws) {
    Out.push_back(prepareOriginal(*W));
    if (Out.back().Ok) {
      BatchUnit U;
      U.M = Out.back().M.get();
      U.Opts = Opts;
      Units.push_back(U);
    }
  }

  auto Start = std::chrono::steady_clock::now();
  std::vector<BatchUnitResult> Results =
      CompilationSession::compileBatch(Units, Jobs);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Start)
                  .count();

  size_t RI = 0;
  for (PreparedProgram &P : Out) {
    if (!P.Ok)
      continue;
    BatchUnitResult &R = Results[RI++];
    P.Pipelines = std::move(R.Results);
    P.Ok = R.Ok;
    if (!P.Ok) {
      P.Error = "transformation failed";
      for (const Diagnostic &D : R.Diags)
        if (D.isError()) {
          P.Error = D.Message;
          break;
        }
      continue;
    }
    P.CompileReport = "== " + std::string(P.Info->Name) + " compile ==\n" +
                      R.TimingReport + R.StatsReport;
    reportCompileTiming(P);
  }
  if (envFlag("GDSE_TIME_PASSES"))
    std::fprintf(stderr, "== batch compile: %zu workloads, %u jobs, %.1f ms ==\n",
                 Units.size(), Jobs, Ms);
  return Out;
}

PreparedProgram &gdse::bench::preparedForAll(const WorkloadInfo &W,
                                             const PipelineOptions &Opts) {
  // Key on every field that changes compilation output. ExternalGraph is a
  // pointer identity: two different graphs must never share an entry.
  std::string Key = formatString(
      "%d|%s|%d|%p|%d%d%d%d%d", static_cast<int>(Opts.Method),
      Opts.Entry.c_str(), static_cast<int>(Opts.Source),
      static_cast<const void *>(Opts.ExternalGraph),
      static_cast<int>(Opts.Expansion.Layout), Opts.Expansion.SelectivePromotion,
      Opts.Expansion.SpanConstantPropagation,
      Opts.Expansion.DeadSpanStoreElimination, Opts.Expansion.GuardPruning);
  static std::map<std::string, std::vector<PreparedProgram>> Cache;
  auto It = Cache.find(Key);
  if (It == Cache.end()) {
    std::vector<const WorkloadInfo *> Ws;
    for (const WorkloadInfo &Each : allWorkloads())
      Ws.push_back(&Each);
    It = Cache.emplace(Key, prepareTransformedBatch(Ws, Opts)).first;
  }
  for (PreparedProgram &P : It->second)
    if (P.Info && P.Info->Name == std::string(W.Name))
      return P;
  // Unreachable for the standard set; keep a stable failure object anyway.
  static PreparedProgram Missing;
  Missing.Error = "workload not in the standard set";
  return Missing;
}

void gdse::bench::reportCompileTiming(const PreparedProgram &P, bool Force) {
  if (P.CompileReport.empty())
    return;
  if (!Force && !envFlag("GDSE_TIME_PASSES"))
    return;
  std::fputs(P.CompileReport.c_str(), stderr);
}

RunResult gdse::bench::execute(PreparedProgram &P, int Threads,
                               bool SimulateParallel) {
  return executeGuarded(P, Threads, guardModeFromEnv(), SimulateParallel);
}

RunResult gdse::bench::executeGuarded(PreparedProgram &P, int Threads,
                                      GuardMode Guard, bool SimulateParallel) {
  return executeOnEngine(P, engineFromEnv(), Threads, Guard, SimulateParallel);
}

RunResult gdse::bench::executeOnEngine(PreparedProgram &P, ExecEngine Engine,
                                       int Threads, GuardMode Guard,
                                       bool SimulateParallel) {
  return executeResilient(P, Engine, Threads, ResilienceOptions(), Guard,
                          SimulateParallel);
}

RunResult gdse::bench::executeResilient(PreparedProgram &P, ExecEngine Engine,
                                        int Threads,
                                        const ResilienceOptions &Resilience,
                                        GuardMode Guard,
                                        bool SimulateParallel) {
  InterpOptions IO;
  IO.NumThreads = Threads;
  IO.SimulateParallel = SimulateParallel;
  IO.Resilience = Resilience;
  // The transformed programs are test-verified; skip per-access bounds
  // checking for faster experiment turnaround.
  IO.BoundsCheck = false;
  IO.Engine = Engine;
  IO.Guard = Guard;
  if (Guard != GuardMode::Off)
    for (const PipelineResult &PR : P.Pipelines)
      if (PR.Guard)
        IO.GuardPlans.push_back(PR.Guard);
  if (IO.Engine != ExecEngine::TreeWalk) {
    // Lower once per prepared program; every thread count and both
    // register-VM engines (bytecode, threads) reuse it.
    if (!P.Bytecode)
      P.Bytecode = lowerToBytecode(*P.M, IO.Costs);
    IO.Precompiled = P.Bytecode;
  }
  Interp I(*P.M, IO);
  RunResult R = I.run();

  JsonSink &S = jsonSink();
  if (S.Enabled) {
    JsonSink::Rec Rec{P.Info ? P.Info->Name : "?", engineName(IO.Engine),
                      Threads, SimulateParallel,   R.Trapped,  R.WorkCycles,
                      R.SimTime, R.HostNanos,      R.PeakMemoryBytes,
                      guardModeName(Guard),        {}};
    for (const auto &[LoopId, L] : R.Loops) {
      Rec.Degradations += L.Degradations;
      Rec.WatchdogFires += L.WatchdogFires;
      if (L.GuardedInvocations || L.GuardViolations || L.GuardFallbacks)
        Rec.GuardLoops.push_back({LoopId, L.GuardedInvocations, L.GuardChecks,
                                  L.GuardViolations, L.GuardFallbacks});
    }
    S.Recs.push_back(std::move(Rec));
  }
  return R;
}

uint64_t gdse::bench::loopSimTime(const RunResult &R,
                                  const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.SimTime;
  }
  return Total;
}

uint64_t gdse::bench::loopWorkCycles(const RunResult &R,
                                     const std::vector<unsigned> &LoopIds) {
  uint64_t Total = 0;
  for (unsigned Id : LoopIds) {
    auto It = R.Loops.find(Id);
    if (It != R.Loops.end())
      Total += It->second.WorkCycles;
  }
  return Total;
}

double gdse::bench::harmonicMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Denom = 0.0;
  for (double X : Xs)
    Denom += 1.0 / X;
  return static_cast<double>(Xs.size()) / Denom;
}

std::string gdse::bench::ratioStr(double R) {
  return formatString("%.2fx", R);
}
