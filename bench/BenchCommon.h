//===- BenchCommon.h - Shared experiment harness helpers --------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by every table/figure reproduction binary: build the
/// original and transformed programs for a workload, execute them under the
/// VM, and collect the simulated metrics the paper reports. All metrics are
/// deterministic (cycle counts from the cost model), so runs are exactly
/// reproducible; google-benchmark provides the runner/reporting skeleton and
/// each binary additionally prints the paper-style table.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_BENCH_BENCHCOMMON_H
#define GDSE_BENCH_BENCHCOMMON_H

#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "parallel/Pipeline.h"
#include "support/Timing.h"
#include "workloads/Workloads.h"

#include <memory>
#include <string>
#include <vector>

namespace gdse {

struct BytecodeModule;

namespace bench {

/// A workload prepared under one transformation configuration.
struct PreparedProgram {
  const WorkloadInfo *Info = nullptr;
  std::unique_ptr<Module> M;
  /// Lazily-built register bytecode for M, shared by every execute() of
  /// this program when the bytecode engine is selected (the default; set
  /// GDSE_ENGINE=tree to measure the reference tree-walker).
  std::shared_ptr<const BytecodeModule> Bytecode;
  /// One pipeline result per candidate loop, in program order.
  std::vector<PipelineResult> Pipelines;
  /// Candidate loop ids (valid for both original and transformed modules —
  /// numbering is deterministic).
  std::vector<unsigned> LoopIds;
  /// Per-pass/per-analysis compile-time accounting from the session that
  /// transformed the workload (empty for prepareOriginal).
  std::vector<PassTimingRecord> CompileTiming;
  /// The session's rendered `-time-passes` + `-stats` reports.
  std::string CompileReport;
  bool Ok = false;
  std::string Error;
};

/// Parses the workload without transforming it.
PreparedProgram prepareOriginal(const WorkloadInfo &W);

/// Parses and transforms every candidate loop of the workload.
PreparedProgram prepareTransformed(const WorkloadInfo &W,
                                   const PipelineOptions &Opts);

/// Batch-compiles all \p Ws under \p Opts through
/// CompilationSession::compileBatch with \p Jobs workers (0 = the GDSE_JOBS
/// environment variable, defaulting to one per hardware thread). Results
/// come back in workload order and are bit-identical to serial
/// prepareTransformed calls — diagnostics, reports, and transformed modules
/// alike. CompileTiming records are not populated for batch-prepared
/// programs; the rendered CompileReport is.
std::vector<PreparedProgram>
prepareTransformedBatch(const std::vector<const WorkloadInfo *> &Ws,
                        const PipelineOptions &Opts, unsigned Jobs = 0);

/// Options-keyed cache over prepareTransformedBatch for the standard
/// workload set: the first call batch-compiles every workload concurrently;
/// later calls with the same options (any workload) are cache hits. Not
/// thread-safe — benchmark mains are single-threaded. The returned
/// reference stays valid for the process lifetime.
PreparedProgram &preparedForAll(const WorkloadInfo &W,
                                const PipelineOptions &Opts);

/// Prints \p P's compile-time report (per-pass timing + counters) to stderr
/// when the GDSE_TIME_PASSES environment variable is set and non-empty, or
/// when \p Force is true. prepareTransformed calls this itself, so every
/// fig*/table* binary emits compile-time breakdowns with one env var and no
/// per-binary wiring.
void reportCompileTiming(const PreparedProgram &P, bool Force = false);

/// Consumes the harness-level flags google-benchmark does not understand —
/// currently `--json <path>` / `--json=<path>` — out of argc/argv and, when
/// --json was given, registers an exit-time writer that dumps every
/// execute() call's metrics (engine, threads, work cycles, simulated time,
/// host wall time, peak bytes) plus the process wall time as
/// `BENCH_<name>.json`. \p Path naming a directory (or anything not ending
/// in ".json") is treated as the output directory; otherwise it is the
/// exact output file. Call before benchmark::Initialize, which rejects
/// unknown flags.
void initBenchIO(int &argc, char **argv);

/// Appends one bench-specific record — a complete JSON object literal — to
/// the --json output's "records" array (fig7's per-loop graph precision
/// counts, guard_overhead's elision tallies, ...). No-op without --json.
void addJsonRecord(const std::string &JsonObject);

/// Executes a prepared program. \p Threads is the simulated core count;
/// \p SimulateParallel=false forces sequential execution of parallel-marked
/// loops (the Figure 9/10 single-core overhead methodology). Runs on
/// engineFromEnv() — the bytecode VM unless GDSE_ENGINE says otherwise —
/// lowering P once and reusing it across calls. Guard mode follows
/// GDSE_GUARD (off when unset); guard plans come from P's pipeline results.
RunResult execute(PreparedProgram &P, int Threads,
                  bool SimulateParallel = true);

/// execute() under an explicit guard mode (bench_guard_overhead runs the
/// same program under off and check back to back). Per-loop guard counters
/// land in the --json record either way.
RunResult executeGuarded(PreparedProgram &P, int Threads, GuardMode Guard,
                         bool SimulateParallel = true);

/// execute() on an explicit engine, ignoring GDSE_ENGINE — the host-measured
/// figures run the same program on the bytecode engine (serial reference)
/// and the threads engine (real dispatch) back to back. HostNanos in the
/// result is the wall-clock reading; all virtual metrics stay bit-identical
/// across engines by the threads engine's contract.
RunResult executeOnEngine(PreparedProgram &P, ExecEngine Engine, int Threads,
                          GuardMode Guard = GuardMode::Off,
                          bool SimulateParallel = true);

/// executeOnEngine() with an explicit resilience policy (budgets, watchdog,
/// fault injection) — resilience_overhead arms unbreachable budgets and
/// measures the polling cost against the default-off run.
RunResult executeResilient(PreparedProgram &P, ExecEngine Engine, int Threads,
                           const ResilienceOptions &Resilience,
                           GuardMode Guard = GuardMode::Off,
                           bool SimulateParallel = true);

/// Sum of SimTime over the program's candidate loops.
uint64_t loopSimTime(const RunResult &R, const std::vector<unsigned> &LoopIds);
/// Sum of WorkCycles over the program's candidate loops.
uint64_t loopWorkCycles(const RunResult &R,
                        const std::vector<unsigned> &LoopIds);

/// Harmonic mean of a series (the paper's preferred average).
double harmonicMean(const std::vector<double> &Xs);

/// Renders a ratio like "1.83x".
std::string ratioStr(double R);

} // namespace bench
} // namespace gdse

#endif // GDSE_BENCH_BENCHCOMMON_H
