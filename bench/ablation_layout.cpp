//===- ablation_layout.cpp - Bonded vs interleaved layout (Fig. 2) ---------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper's §3.1 argues for the bonded layout: (1) the interleaved layout
// cannot handle structures recast between different-sized element types
// (256.bzip2's zptr), and (2) bonded copies keep one thread's data adjacent.
// This ablation applies both layouts to every benchmark and reports, per
// layout: applicable or not (with the compiler diagnostic), single-core
// overhead, and output correctness.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  bool Applicable = false;
  std::string Reason;
  double Slowdown = 0.0;
  bool Correct = false;
};
std::map<std::string, std::map<bool, Row>> Rows; // name -> interleaved? -> row

void runLayout(benchmark::State &State, const WorkloadInfo &W,
               bool Interleaved) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PipelineOptions Opts;
    Opts.Expansion.Layout =
        Interleaved ? LayoutMode::Interleaved : LayoutMode::Bonded;
    PreparedProgram &Xf = preparedForAll(W, Opts);
    Row R;
    if (!Xf.Ok) {
      R.Applicable = false;
      R.Reason = Xf.Error;
      Rows[W.Name][Interleaved] = R;
      State.counters["applicable"] = 0;
      continue;
    }
    RunResult RT = execute(Xf, 4);
    R.Applicable = true;
    R.Correct = RT.ok() && RT.Output == RO.Output;
    RunResult RTSeq = execute(Xf, 1, /*SimulateParallel=*/false);
    R.Slowdown = static_cast<double>(RTSeq.WorkCycles) /
                 static_cast<double>(RO.WorkCycles);
    Rows[W.Name][Interleaved] = R;
    State.counters["applicable"] = 1;
    State.counters["correct"] = R.Correct ? 1 : 0;
    State.counters["slowdown"] = R.Slowdown;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    for (bool Inter : {false, true})
      benchmark::RegisterBenchmark(
          ("ablation_layout/" + std::string(W.Name) + "/" +
           (Inter ? "interleaved" : "bonded"))
              .c_str(),
          [&W, Inter](benchmark::State &S) { runLayout(S, W, Inter); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nAblation: bonded vs interleaved replication layout\n");
  std::printf("%-15s | %-22s | %-40s\n", "Benchmark", "bonded", "interleaved");
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &B = Rows[W.Name][false];
    const Row &I = Rows[W.Name][true];
    std::string BS = B.Applicable
                         ? formatString("ok, %.2fx%s", B.Slowdown,
                                        B.Correct ? "" : " WRONG")
                         : "rejected";
    std::string IS = I.Applicable
                         ? formatString("ok, %.2fx%s", I.Slowdown,
                                        I.Correct ? "" : " WRONG")
                         : "rejected: " + I.Reason;
    std::printf("%-15s | %-22s | %-.60s\n", W.Name, BS.c_str(), IS.c_str());
  }
  std::printf("\nPaper: bonded handles every benchmark including recast "
              "structures; interleaved must reject 256.bzip2's zptr.\n");
  return 0;
}
