//===- ablation_spanopts.cpp - §3.4 optimizations one at a time ------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Separates the three §3.4 overhead reductions the paper lumps into
// Figure 9b: dead span-store elimination, span constant propagation (no fat
// pointer when the span is a compile-time constant), and selective
// promotion (alias analysis limits promotion to pointers that can reach
// expanded structures). Reports single-core slowdown with each optimization
// enabled alone, none, and all.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Config {
  const char *Name;
  bool Selective, ConstProp, DeadStore;
};
const Config Configs[] = {
    {"none", false, false, false},
    {"+selective", true, false, false},
    {"+constprop", false, true, false},
    {"+deadstore", false, false, true},
    {"all", true, true, true},
};

std::map<std::string, std::map<std::string, double>> Slowdown;
std::map<std::string, std::map<std::string, unsigned>> Promoted;

void runConfig(benchmark::State &State, const WorkloadInfo &W,
               const Config &C) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PipelineOptions Opts;
    Opts.Expansion.SelectivePromotion = C.Selective;
    Opts.Expansion.SpanConstantPropagation = C.ConstProp;
    Opts.Expansion.DeadSpanStoreElimination = C.DeadStore;
    PreparedProgram &Xf = preparedForAll(W, Opts);
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = execute(Xf, 1, /*SimulateParallel=*/false);
    if (!RT.ok() || RT.Output != RO.Output) {
      State.SkipWithError("output mismatch");
      return;
    }
    double S = static_cast<double>(RT.WorkCycles) /
               static_cast<double>(RO.WorkCycles);
    unsigned P = 0;
    for (const PipelineResult &PR : Xf.Pipelines)
      P += PR.Expansion.PromotedPointerSlots;
    Slowdown[W.Name][C.Name] = S;
    Promoted[W.Name][C.Name] = P;
    State.counters["slowdown"] = S;
    State.counters["promoted"] = P;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    for (const Config &C : Configs)
      benchmark::RegisterBenchmark(
          ("ablation_spanopts/" + std::string(W.Name) + "/" + C.Name).c_str(),
          [&W, &C](benchmark::State &S) { runConfig(S, W, C); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nAblation: §3.4 optimizations, single-core slowdown "
              "(original = 1.00)\n");
  std::printf("%-15s", "Benchmark");
  for (const Config &C : Configs)
    std::printf(" %12s", C.Name);
  std::printf("\n");
  for (const WorkloadInfo &W : allWorkloads()) {
    std::printf("%-15s", W.Name);
    for (const Config &C : Configs)
      std::printf(" %11.2fx", Slowdown[W.Name][C.Name]);
    std::printf("\n");
  }
  std::printf("\nPromoted pointer slots per configuration:\n%-15s",
              "Benchmark");
  for (const Config &C : Configs)
    std::printf(" %12s", C.Name);
  std::printf("\n");
  for (const WorkloadInfo &W : allWorkloads()) {
    std::printf("%-15s", W.Name);
    for (const Config &C : Configs)
      std::printf(" %12u", Promoted[W.Name][C.Name]);
    std::printf("\n");
  }
  return 0;
}
