//===- bench_guard_overhead.cpp - Guarded-execution overhead ---------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Measures what runtime dependence validation costs: every Figure 11
// workload runs transformed at 4 simulated cores under GuardMode::Off and
// GuardMode::Check back to back. The guard is invisible to every virtual
// metric by design (it charges no cycles and emits no observer events) — the
// bench asserts that — so the overhead it reports is HOST execution time,
// the real cost of maintaining the first-write shadow and running the
// commit-time validator. Clean runs must also report zero violations; any
// violation here means an expansion soundness bug, so the bench fails.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

constexpr int Cores = 4;

struct Row {
  std::string Name;
  double OffMs = 0, CheckMs = 0;
  uint64_t Checks = 0, GuardedInvocations = 0;
};
std::map<std::string, Row> Rows;

uint64_t guardChecks(const RunResult &R) {
  uint64_t Total = 0;
  for (const auto &[Id, L] : R.Loops) {
    (void)Id;
    Total += L.GuardChecks;
  }
  return Total;
}

uint64_t guardedInvocations(const RunResult &R) {
  uint64_t Total = 0;
  for (const auto &[Id, L] : R.Loops) {
    (void)Id;
    Total += L.GuardedInvocations;
  }
  return Total;
}

void runGuardOverhead(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult Off = executeGuarded(Xf, Cores, GuardMode::Off);
    RunResult Check = executeGuarded(Xf, Cores, GuardMode::Check);
    if (!Off.ok() || !Check.ok()) {
      State.SkipWithError("run trapped");
      return;
    }
    // The check-mode contract: bit-identical virtual metrics and output, and
    // zero violations on a correctly-expanded program.
    if (Check.Output != Off.Output || Check.WorkCycles != Off.WorkCycles ||
        Check.SimTime != Off.SimTime ||
        Check.PeakMemoryBytes != Off.PeakMemoryBytes) {
      State.SkipWithError("check mode diverged from off mode");
      return;
    }
    if (!Check.Violations.empty()) {
      State.SkipWithError("violations reported on a clean run");
      return;
    }
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    R.OffMs = static_cast<double>(Off.HostNanos) / 1e6;
    R.CheckMs = static_cast<double>(Check.HostNanos) / 1e6;
    R.Checks = guardChecks(Check);
    R.GuardedInvocations = guardedInvocations(Check);
    State.counters["guard_checks"] = static_cast<double>(R.Checks);
    State.counters["host_overhead"] = R.OffMs > 0 ? R.CheckMs / R.OffMs : 0;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(
        ("guard_overhead/" + std::string(W.Name)).c_str(),
        [&W](benchmark::State &S) { runGuardOverhead(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nGuarded-execution overhead (%d simulated cores, host time)\n",
              Cores);
  std::printf("%-15s %10s %10s %9s %12s %8s\n", "Benchmark", "off ms",
              "check ms", "overhead", "checks", "guarded");
  std::vector<double> Ratios;
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    double Ratio = R.OffMs > 0 ? R.CheckMs / R.OffMs : 0;
    if (Ratio > 0)
      Ratios.push_back(Ratio);
    std::printf("%-15s %10.2f %10.2f %8.2fx %12llu %8llu\n", W.Name, R.OffMs,
                R.CheckMs, Ratio,
                static_cast<unsigned long long>(R.Checks),
                static_cast<unsigned long long>(R.GuardedInvocations));
  }
  if (!Ratios.empty())
    std::printf("%-15s %10s %10s %8.2fx\n", "harmonic mean", "", "",
                harmonicMean(Ratios));
  std::printf("\nVirtual metrics (cycles, SimTime, peak bytes) are asserted "
              "identical between modes: the guard's cost is host-side only.\n");
  return 0;
}
