//===- bench_guard_overhead.cpp - Guarded-execution overhead ---------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Measures what runtime dependence validation costs: every Figure 11
// workload runs transformed at 4 simulated cores under GuardMode::Off and
// GuardMode::Check back to back. The guard is invisible to every virtual
// metric by design (it charges no cycles and emits no observer events) — the
// bench asserts that — so the overhead it reports is HOST execution time,
// the real cost of maintaining the first-write shadow and running the
// commit-time validator. Clean runs must also report zero violations; any
// violation here means an expansion soundness bug, so the bench fails.
//
// Each workload is measured twice: with the FULL guard plan
// (GuardPruning=false, PR 4's baseline) and with the plan PRUNED by the
// static privatization witness (the default). The delta between the two
// check-mode overheads is the validation cost the compile-time proof
// recovered; the elided access/region counts land in the table and the
// --json records.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

constexpr int Cores = 4;

struct Config {
  double OffMs = 0, CheckMs = 0;
  uint64_t Checks = 0, GuardedInvocations = 0;
};

struct Row {
  std::string Name;
  Config Full, Pruned;
  unsigned AccessesElided = 0, RegionsElided = 0;
};
std::map<std::string, Row> Rows;

uint64_t guardChecks(const RunResult &R) {
  uint64_t Total = 0;
  for (const auto &[Id, L] : R.Loops) {
    (void)Id;
    Total += L.GuardChecks;
  }
  return Total;
}

uint64_t guardedInvocations(const RunResult &R) {
  uint64_t Total = 0;
  for (const auto &[Id, L] : R.Loops) {
    (void)Id;
    Total += L.GuardedInvocations;
  }
  return Total;
}

/// Runs off/check under one prepared configuration, asserting the guard
/// contract (identical virtual metrics, zero violations). Returns false and
/// skips the benchmark on any divergence.
bool measure(benchmark::State &State, PreparedProgram &Xf, Config &C) {
  if (!Xf.Ok) {
    State.SkipWithError(Xf.Error.c_str());
    return false;
  }
  RunResult Off = executeGuarded(Xf, Cores, GuardMode::Off);
  RunResult Check = executeGuarded(Xf, Cores, GuardMode::Check);
  if (!Off.ok() || !Check.ok()) {
    State.SkipWithError("run trapped");
    return false;
  }
  // The check-mode contract: bit-identical virtual metrics and output, and
  // zero violations on a correctly-expanded program.
  if (Check.Output != Off.Output || Check.WorkCycles != Off.WorkCycles ||
      Check.SimTime != Off.SimTime ||
      Check.PeakMemoryBytes != Off.PeakMemoryBytes) {
    State.SkipWithError("check mode diverged from off mode");
    return false;
  }
  if (!Check.Violations.empty()) {
    State.SkipWithError("violations reported on a clean run");
    return false;
  }
  C.OffMs = static_cast<double>(Off.HostNanos) / 1e6;
  C.CheckMs = static_cast<double>(Check.HostNanos) / 1e6;
  C.Checks = guardChecks(Check);
  C.GuardedInvocations = guardedInvocations(Check);
  return true;
}

void runGuardOverhead(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PipelineOptions FullOpts;
    FullOpts.Expansion.GuardPruning = false;
    PreparedProgram &XfFull = preparedForAll(W, FullOpts);
    PreparedProgram &XfPruned = preparedForAll(W, PipelineOptions());
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    if (!measure(State, XfFull, R.Full) ||
        !measure(State, XfPruned, R.Pruned))
      return;
    for (const PipelineResult &PR : XfPruned.Pipelines) {
      R.AccessesElided += PR.Expansion.GuardAccessesElided;
      R.RegionsElided += PR.Expansion.GuardRegionsElided;
    }
    State.counters["guard_checks_full"] =
        static_cast<double>(R.Full.Checks);
    State.counters["guard_checks_pruned"] =
        static_cast<double>(R.Pruned.Checks);
    State.counters["host_overhead_full"] =
        R.Full.OffMs > 0 ? R.Full.CheckMs / R.Full.OffMs : 0;
    State.counters["host_overhead_pruned"] =
        R.Pruned.OffMs > 0 ? R.Pruned.CheckMs / R.Pruned.OffMs : 0;
    State.counters["guard_accesses_elided"] =
        static_cast<double>(R.AccessesElided);
    State.counters["guard_regions_elided"] =
        static_cast<double>(R.RegionsElided);
    addJsonRecord(formatString(
        "{\"workload\": \"%s\", \"guard_accesses_elided\": %u, "
        "\"guard_regions_elided\": %u, \"checks_full\": %llu, "
        "\"checks_pruned\": %llu, \"check_ms_full\": %.3f, "
        "\"check_ms_pruned\": %.3f, \"off_ms_full\": %.3f, "
        "\"off_ms_pruned\": %.3f}",
        W.Name, R.AccessesElided, R.RegionsElided,
        static_cast<unsigned long long>(R.Full.Checks),
        static_cast<unsigned long long>(R.Pruned.Checks), R.Full.CheckMs,
        R.Pruned.CheckMs, R.Full.OffMs, R.Pruned.OffMs));
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(
        ("guard_overhead/" + std::string(W.Name)).c_str(),
        [&W](benchmark::State &S) { runGuardOverhead(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nGuarded-execution overhead (%d simulated cores, host time)\n",
              Cores);
  std::printf("%-15s %12s %12s %14s %14s %9s %8s\n", "Benchmark",
              "checks full", "checks prn", "overhead full", "overhead prn",
              "acc elid", "rgn elid");
  std::vector<double> FullRatios, PrunedRatios;
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    double FullRatio =
        R.Full.OffMs > 0 ? R.Full.CheckMs / R.Full.OffMs : 0;
    double PrunedRatio =
        R.Pruned.OffMs > 0 ? R.Pruned.CheckMs / R.Pruned.OffMs : 0;
    if (FullRatio > 0)
      FullRatios.push_back(FullRatio);
    if (PrunedRatio > 0)
      PrunedRatios.push_back(PrunedRatio);
    std::printf("%-15s %12llu %12llu %13.2fx %13.2fx %9u %8u\n", W.Name,
                static_cast<unsigned long long>(R.Full.Checks),
                static_cast<unsigned long long>(R.Pruned.Checks), FullRatio,
                PrunedRatio, R.AccessesElided, R.RegionsElided);
  }
  if (!FullRatios.empty() && !PrunedRatios.empty())
    std::printf("%-15s %12s %12s %13.2fx %13.2fx\n", "harmonic mean", "", "",
                harmonicMean(FullRatios), harmonicMean(PrunedRatios));
  std::printf("\nVirtual metrics (cycles, SimTime, peak bytes) are asserted "
              "identical between modes: the guard's cost is host-side only. "
              "The pruned columns run with the static privatization witness "
              "eliding proven-private guard claims (the default); the full "
              "columns disable pruning to show PR 4's baseline cost.\n");
  return 0;
}
