//===- fig10_rtpriv_overhead.cpp - Reproduces Figure 10 --------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 10: single-core overhead of static data structure expansion vs the
// runtime-privatization baseline (SpiceC-style access control, §4.2.1).
// Expected shape: runtime privatization costs far more for most benchmarks
// — each private access pays a translation — while expansion's redirection
// arithmetic is nearly free after §3.4.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  std::string Name;
  double SlowdownExpansion = 0.0;
  double SlowdownRuntime = 0.0;
  uint64_t Translations = 0;
};
std::vector<Row> Rows;

void runFig10(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PipelineOptions ExpOpts;
    PreparedProgram &Exp = preparedForAll(W, ExpOpts);
    PipelineOptions RtOpts;
    RtOpts.Method = PrivatizationMethod::Runtime;
    PreparedProgram &Rt = preparedForAll(W, RtOpts);
    if (!Exp.Ok || !Rt.Ok) {
      State.SkipWithError((Exp.Ok ? Rt.Error : Exp.Error).c_str());
      return;
    }
    RunResult RE = execute(Exp, 1, /*SimulateParallel=*/false);
    RunResult RR = execute(Rt, 1, /*SimulateParallel=*/false);
    if (RO.Output != RE.Output || RO.Output != RR.Output) {
      State.SkipWithError("output mismatch");
      return;
    }
    Row R;
    R.Name = W.Name;
    R.SlowdownExpansion =
        static_cast<double>(RE.WorkCycles) / static_cast<double>(RO.WorkCycles);
    R.SlowdownRuntime =
        static_cast<double>(RR.WorkCycles) / static_cast<double>(RO.WorkCycles);
    R.Translations = RR.RtPrivTranslations;
    Rows.push_back(R);
    State.counters["slowdown_expansion"] = R.SlowdownExpansion;
    State.counters["slowdown_rtpriv"] = R.SlowdownRuntime;
    State.counters["rt_translations"] = static_cast<double>(R.Translations);
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig10/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig10(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 10: single-core overhead, expansion vs runtime "
              "privatization (original = 1.00)\n");
  std::printf("%-15s %12s %14s %16s\n", "Benchmark", "expansion",
              "runtime priv.", "#translations");
  std::vector<double> E, R;
  for (const Row &Row : Rows) {
    std::printf("%-15s %12s %14s %16llu\n", Row.Name.c_str(),
                ratioStr(Row.SlowdownExpansion).c_str(),
                ratioStr(Row.SlowdownRuntime).c_str(),
                static_cast<unsigned long long>(Row.Translations));
    E.push_back(Row.SlowdownExpansion);
    R.push_back(Row.SlowdownRuntime);
  }
  std::printf("%-15s %12s %14s\n", "harmonic mean",
              ratioStr(harmonicMean(E)).c_str(),
              ratioStr(harmonicMean(R)).c_str());
  std::printf("\nPaper: runtime privatization incurs much higher overhead "
              "for most benchmarks.\n");
  return 0;
}
