//===- fig11_speedup.cpp - Reproduces Figures 11a and 11b ------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 11: (a) speedup of the parallelized loops and (b) of the whole
// program, over the original sequential program, for 1/2/4/8 simulated
// cores. Paper shapes: md5 / mpeg2-encoder / h263-encoder scale well;
// DOACROSS benchmarks (bzip2, hmmer) plateau from synchronization; the
// single-core bar is below 1.0 (privatization + runtime overheads); paper's
// harmonic-mean total speedups: 1.93 at four cores, 2.24 at eight.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

const std::vector<int> Cores = {1, 2, 4, 8};
/// Host thread counts for the measured (wall-clock) section: real workers,
/// so there is no point going past small counts on CI-sized machines.
const std::vector<int> HostThreads = {1, 2, 4};

struct Row {
  std::string Name;
  std::map<int, double> LoopSpeedup;
  std::map<int, double> TotalSpeedup;
  /// Measured wall-clock speedup of the threads engine over the serial
  /// bytecode run of the original program, per host thread count.
  std::map<int, double> HostSpeedup;
};
std::map<std::string, Row> Rows;

void runFig11(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = execute(Xf, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("run failed or output mismatch");
      return;
    }
    double LoopSp = static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
                    static_cast<double>(loopSimTime(RT, Xf.LoopIds));
    double TotalSp =
        static_cast<double>(RO.SimTime) / static_cast<double>(RT.SimTime);
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    R.LoopSpeedup[N] = LoopSp;
    R.TotalSpeedup[N] = TotalSp;
    State.counters["loop_speedup"] = LoopSp;
    State.counters["total_speedup"] = TotalSp;
  }
}

/// The measured counterpart of Figure 11: the same transformed program on
/// the threads engine with N real host workers, wall-clock against the
/// original program's serial bytecode run. Output equality is asserted —
/// the whole point of expansion is that the threaded run computes the same
/// thing — and the per-loop virtual sync-stall vectors (replayed, so
/// bit-identical to the simulated schedule) go into the JSON record to
/// explain where DOACROSS wall-clock goes.
void runFig11Host(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = executeOnEngine(Orig, ExecEngine::Bytecode, 1,
                                   GuardMode::Off, /*SimulateParallel=*/false);

    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = executeOnEngine(Xf, ExecEngine::Threads, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("host-threaded run failed or output mismatch");
      return;
    }
    double HostSp = RT.HostNanos
                        ? static_cast<double>(RO.HostNanos) /
                              static_cast<double>(RT.HostNanos)
                        : 0.0;
    Rows[W.Name].Name = W.Name;
    Rows[W.Name].HostSpeedup[N] = HostSp;
    State.counters["host_speedup"] = HostSp;

    std::ostringstream J;
    J << "{\"fig\":\"11-host\",\"workload\":\"" << W.Name
      << "\",\"host_threads\":" << N << ",\"host_serial_ns\":" << RO.HostNanos
      << ",\"host_threaded_ns\":" << RT.HostNanos
      << ",\"host_speedup\":" << HostSp << ",\"loops\":[";
    bool FirstLoop = true;
    for (unsigned Id : Xf.LoopIds) {
      auto It = RT.Loops.find(Id);
      if (It == RT.Loops.end())
        continue;
      const LoopStats &L = It->second;
      J << (FirstLoop ? "" : ",") << "{\"loop\":" << Id << ",\"kind\":\""
        << (L.Kind == ParallelKind::DOALL ? "doall" : "doacross")
        << "\",\"sim_time\":" << L.SimTime << ",\"sync_stall\":[";
      for (size_t T = 0; T != L.SyncStallPerThread.size(); ++T)
        J << (T ? "," : "") << L.SyncStallPerThread[T];
      J << "]}";
      FirstLoop = false;
    }
    J << "]}";
    addJsonRecord(J.str());
  }
}

} // namespace

int main(int argc, char **argv) {
  // --min-host-speedup X: fail (exit 1) unless some workload's measured
  // wall-clock speedup at the highest host thread count reaches X. CI runs
  // this gate on multi-core runners; a 1-CPU box cannot satisfy it and
  // should not pass the flag.
  double MinHostSpeedup = 0.0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--min-host-speedup") == 0 && I + 1 < argc) {
      MinHostSpeedup = std::atof(argv[I + 1]);
      for (int J = I; J + 2 < argc; ++J)
        argv[J] = argv[J + 2];
      argc -= 2;
      break;
    }
  }

  for (const WorkloadInfo &W : allWorkloads())
    for (int N : Cores)
      benchmark::RegisterBenchmark(
          ("fig11/" + std::string(W.Name) + "/cores:" + std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runFig11(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  for (const WorkloadInfo &W : allWorkloads())
    for (int N : HostThreads)
      benchmark::RegisterBenchmark(
          ("fig11host/" + std::string(W.Name) + "/threads:" +
           std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runFig11Host(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto printSeries = [&](const char *Title, bool Loop) {
    std::printf("\n%s\n", Title);
    std::printf("%-15s", "Benchmark");
    for (int N : Cores)
      std::printf(" %7dc", N);
    std::printf("\n");
    std::map<int, std::vector<double>> PerN;
    for (const WorkloadInfo &W : allWorkloads()) {
      const Row &R = Rows[W.Name];
      std::printf("%-15s", W.Name);
      for (int N : Cores) {
        double V = Loop ? (R.LoopSpeedup.count(N) ? R.LoopSpeedup.at(N) : 0)
                        : (R.TotalSpeedup.count(N) ? R.TotalSpeedup.at(N) : 0);
        std::printf(" %8.2f", V);
        PerN[N].push_back(V);
      }
      std::printf("\n");
    }
    std::printf("%-15s", "harmonic mean");
    for (int N : Cores)
      std::printf(" %8.2f", harmonicMean(PerN[N]));
    std::printf("\n");
  };

  printSeries("Figure 11a: loop speedup over the original sequential run",
              /*Loop=*/true);
  printSeries("Figure 11b: total program speedup", /*Loop=*/false);
  std::printf("\nPaper: total-speedup harmonic means 1.93 (4 cores) and 2.24 "
              "(8 cores); DOACROSS loops plateau beyond 4 cores.\n");

  // The measured section: real host threads, wall clock. Values depend on
  // the machine (notably hardware_concurrency); the simulated figures above
  // are the reproducible ones.
  std::printf("\nMeasured host speedup (threads engine vs serial bytecode; "
              "%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-15s", "Benchmark");
  for (int N : HostThreads)
    std::printf(" %7dt", N);
  std::printf("\n");
  double BestAtMax = 0.0;
  std::map<int, std::vector<double>> HostPerN;
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s", W.Name);
    for (int N : HostThreads) {
      double V = R.HostSpeedup.count(N) ? R.HostSpeedup.at(N) : 0;
      std::printf(" %8.2f", V);
      HostPerN[N].push_back(V);
      if (N == HostThreads.back() && V > BestAtMax)
        BestAtMax = V;
    }
    std::printf("\n");
  }
  std::printf("%-15s", "harmonic mean");
  for (int N : HostThreads)
    std::printf(" %8.2f", harmonicMean(HostPerN[N]));
  std::printf("\n");

  if (MinHostSpeedup > 0.0 && BestAtMax < MinHostSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best measured host speedup %.2f at %d threads is "
                 "below the required %.2f\n",
                 BestAtMax, HostThreads.back(), MinHostSpeedup);
    return 1;
  }
  return 0;
}
