//===- fig11_speedup.cpp - Reproduces Figures 11a and 11b ------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 11: (a) speedup of the parallelized loops and (b) of the whole
// program, over the original sequential program, for 1/2/4/8 simulated
// cores. Paper shapes: md5 / mpeg2-encoder / h263-encoder scale well;
// DOACROSS benchmarks (bzip2, hmmer) plateau from synchronization; the
// single-core bar is below 1.0 (privatization + runtime overheads); paper's
// harmonic-mean total speedups: 1.93 at four cores, 2.24 at eight.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

const std::vector<int> Cores = {1, 2, 4, 8};

struct Row {
  std::string Name;
  std::map<int, double> LoopSpeedup;
  std::map<int, double> TotalSpeedup;
};
std::map<std::string, Row> Rows;

void runFig11(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = execute(Xf, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("run failed or output mismatch");
      return;
    }
    double LoopSp = static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
                    static_cast<double>(loopSimTime(RT, Xf.LoopIds));
    double TotalSp =
        static_cast<double>(RO.SimTime) / static_cast<double>(RT.SimTime);
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    R.LoopSpeedup[N] = LoopSp;
    R.TotalSpeedup[N] = TotalSp;
    State.counters["loop_speedup"] = LoopSp;
    State.counters["total_speedup"] = TotalSp;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    for (int N : Cores)
      benchmark::RegisterBenchmark(
          ("fig11/" + std::string(W.Name) + "/cores:" + std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runFig11(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto printSeries = [&](const char *Title, bool Loop) {
    std::printf("\n%s\n", Title);
    std::printf("%-15s", "Benchmark");
    for (int N : Cores)
      std::printf(" %7dc", N);
    std::printf("\n");
    std::map<int, std::vector<double>> PerN;
    for (const WorkloadInfo &W : allWorkloads()) {
      const Row &R = Rows[W.Name];
      std::printf("%-15s", W.Name);
      for (int N : Cores) {
        double V = Loop ? (R.LoopSpeedup.count(N) ? R.LoopSpeedup.at(N) : 0)
                        : (R.TotalSpeedup.count(N) ? R.TotalSpeedup.at(N) : 0);
        std::printf(" %8.2f", V);
        PerN[N].push_back(V);
      }
      std::printf("\n");
    }
    std::printf("%-15s", "harmonic mean");
    for (int N : Cores)
      std::printf(" %8.2f", harmonicMean(PerN[N]));
    std::printf("\n");
  };

  printSeries("Figure 11a: loop speedup over the original sequential run",
              /*Loop=*/true);
  printSeries("Figure 11b: total program speedup", /*Loop=*/false);
  std::printf("\nPaper: total-speedup harmonic means 1.93 (4 cores) and 2.24 "
              "(8 cores); DOACROSS loops plateau beyond 4 cores.\n");
  return 0;
}
