//===- fig12_breakdown.cpp - Reproduces Figure 12 --------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 12: where the cycles of an 8-core run go — loop work, cross-
// iteration synchronization stalls (the paper's do_wait), scheduling/
// dispatch overhead, and end-of-loop idling (cpu_relax / load imbalance).
// Expected shape: DOACROSS benchmarks (256.bzip2, 456.hmmer) are dominated
// by synchronization; DOALL benchmarks show mostly work with some idle from
// imbalance.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  std::string Name;
  double WorkPct = 0, SyncPct = 0, DispatchPct = 0, IdlePct = 0;
};
std::vector<Row> Rows;

void runFig12(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult R = execute(Xf, /*Threads=*/8);
    if (!R.ok()) {
      State.SkipWithError(R.TrapMessage.c_str());
      return;
    }
    uint64_t Work = 0, Sync = 0, Dispatch = 0, Idle = 0;
    for (unsigned LoopId : Xf.LoopIds) {
      auto It = R.Loops.find(LoopId);
      if (It == R.Loops.end())
        continue;
      const LoopStats &LS = It->second;
      for (uint64_t V : LS.WorkPerThread)
        Work += V;
      for (uint64_t V : LS.SyncStallPerThread)
        Sync += V;
      for (uint64_t V : LS.DispatchPerThread)
        Dispatch += V;
      for (uint64_t V : LS.IdlePerThread)
        Idle += V;
    }
    double Total = static_cast<double>(Work + Sync + Dispatch + Idle);
    Row Out;
    Out.Name = W.Name;
    if (Total > 0) {
      Out.WorkPct = 100.0 * Work / Total;
      Out.SyncPct = 100.0 * Sync / Total;
      Out.DispatchPct = 100.0 * Dispatch / Total;
      Out.IdlePct = 100.0 * Idle / Total;
    }
    Rows.push_back(Out);
    State.counters["work_pct"] = Out.WorkPct;
    State.counters["sync_pct"] = Out.SyncPct;
    State.counters["dispatch_pct"] = Out.DispatchPct;
    State.counters["idle_pct"] = Out.IdlePct;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig12/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig12(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 12: 8-core cycle breakdown of the parallel loops\n");
  std::printf("%-15s %8s %8s %10s %8s\n", "Benchmark", "work", "sync",
              "dispatch", "idle");
  for (const Row &R : Rows)
    std::printf("%-15s %7.1f%% %7.1f%% %9.1f%% %7.1f%%\n", R.Name.c_str(),
                R.WorkPct, R.SyncPct, R.DispatchPct, R.IdlePct);
  std::printf("\nPaper: synchronization dominates 256.bzip2 and 456.hmmer "
              "(DOACROSS); waiting (do_wait/cpu_relax) is visible for "
              "470.lbm and mpeg2-decoder.\n");
  return 0;
}
