//===- fig13_rtpriv_speedup.cpp - Reproduces Figure 13 ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 13: loop speedup when privatization is performed at RUN TIME
// (SpiceC-style access control) instead of by expansion. Expected shape:
// "for most of the benchmarks, there is nearly no speedup due to the large
// runtime overhead".
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

const std::vector<int> Cores = {1, 2, 4, 8};
std::map<std::string, std::map<int, double>> LoopSpeedup;

void runFig13(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PipelineOptions Opts;
    Opts.Method = PrivatizationMethod::Runtime;
    PreparedProgram &Xf = preparedForAll(W, Opts);
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = execute(Xf, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("run failed or output mismatch");
      return;
    }
    double Sp = static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
                static_cast<double>(loopSimTime(RT, Xf.LoopIds));
    LoopSpeedup[W.Name][N] = Sp;
    State.counters["loop_speedup"] = Sp;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    for (int N : Cores)
      benchmark::RegisterBenchmark(
          ("fig13/" + std::string(W.Name) + "/cores:" + std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runFig13(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 13: loop speedup under runtime privatization\n");
  std::printf("%-15s", "Benchmark");
  for (int N : Cores)
    std::printf(" %7dc", N);
  std::printf("\n");
  for (const WorkloadInfo &W : allWorkloads()) {
    std::printf("%-15s", W.Name);
    for (int N : Cores)
      std::printf(" %8.2f", LoopSpeedup[W.Name].count(N)
                                ? LoopSpeedup[W.Name][N]
                                : 0.0);
    std::printf("\n");
  }
  std::printf("\nPaper: nearly no speedup for most benchmarks (compare with "
              "Figure 11a under expansion).\n");
  return 0;
}
