//===- fig14_memory.cpp - Reproduces Figure 14 -----------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 14: peak memory use of the parallel run as a multiple of the
// original sequential program, for expansion and for runtime privatization,
// at 4 and 8 cores. Expected shape: both methods add modest memory; the
// multiples grow with the core count; h263-encoder is the outlier under
// expansion at eight cores (~+50% in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

const std::vector<int> Cores = {4, 8};

struct Key {
  std::string Name;
  int N;
  bool Rt;
  bool operator<(const Key &O) const {
    return std::tie(Name, N, Rt) < std::tie(O.Name, O.N, O.Rt);
  }
};
std::map<Key, double> Multiple;

void runFig14(benchmark::State &State, const WorkloadInfo &W, int N, bool Rt) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PipelineOptions Opts;
    if (Rt)
      Opts.Method = PrivatizationMethod::Runtime;
    PreparedProgram &Xf = preparedForAll(W, Opts);
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = execute(Xf, N);
    if (!RO.ok() || !RT.ok()) {
      State.SkipWithError("run failed");
      return;
    }
    double M = static_cast<double>(RT.PeakMemoryBytes) /
               static_cast<double>(RO.PeakMemoryBytes);
    Multiple[{W.Name, N, Rt}] = M;
    State.counters["memory_multiple"] = M;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    for (int N : Cores)
      for (bool Rt : {false, true})
        benchmark::RegisterBenchmark(
            ("fig14/" + std::string(W.Name) + "/" +
             (Rt ? "rtpriv" : "expansion") + "/cores:" + std::to_string(N))
                .c_str(),
            [&W, N, Rt](benchmark::State &S) { runFig14(S, W, N, Rt); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 14: peak memory as a multiple of the original "
              "program\n");
  std::printf("%-15s %12s %12s %12s %12s\n", "Benchmark", "exp@4c", "exp@8c",
              "rtpriv@4c", "rtpriv@8c");
  for (const WorkloadInfo &W : allWorkloads())
    std::printf("%-15s %11.2fx %11.2fx %11.2fx %11.2fx\n", W.Name,
                Multiple[{W.Name, 4, false}], Multiple[{W.Name, 8, false}],
                Multiple[{W.Name, 4, true}], Multiple[{W.Name, 8, true}]);
  std::printf("\nPaper: expansion adds little beyond the memory runtime "
              "privatization needs anyway; h263-encoder at 8 cores is the "
              "notable case (~1.5x).\n");
  return 0;
}
