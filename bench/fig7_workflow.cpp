//===- fig7_workflow.cpp - Why the workflow profiles (Fig. 7, §4.1) --------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper justifies its profiling-based workflow twice:
//  - §4.1: "current compile-time data dependence analysis algorithms are
//    still too conservative and they report false positives that prevent
//    loop parallelization" — reproduced by feeding the pipeline our
//    conservative static dependence graph instead of the profiled one;
//  - §4.3: "the parallelized code without privatization ... would require
//    excessive synchronization due to the spurious loop-carried
//    dependences, causing a slowdown instead of speedup" — reproduced by
//    keeping the profiled graph but skipping privatization.
//
// Reports the 8-core loop speedup of each configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  double Profiled = 0, Static = 0, NoPriv = 0;
  std::string StaticNote, NoPrivNote;
};
std::map<std::string, Row> Rows;

double speedupFor(const WorkloadInfo &W, const PipelineOptions &Opts,
                  std::string &Note) {
  PreparedProgram Orig = prepareOriginal(W);
  RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);
  PreparedProgram Xf = prepareTransformed(W, Opts);
  if (!Xf.Ok) {
    Note = Xf.Error;
    return 0.0;
  }
  bool AnyParallel = false;
  for (const PipelineResult &PR : Xf.Pipelines)
    AnyParallel = AnyParallel || PR.Plan.Parallelized;
  if (!AnyParallel) {
    Note = "not parallelized";
    return 0.0;
  }
  RunResult RT = execute(Xf, 8);
  if (!RT.ok() || RT.Output != RO.Output) {
    Note = RT.ok() ? "output mismatch" : RT.TrapMessage;
    return 0.0;
  }
  return static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
         static_cast<double>(loopSimTime(RT, Xf.LoopIds));
}

void runFig7(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    Row R;
    std::string Ignore;
    PipelineOptions Profiled;
    R.Profiled = speedupFor(W, Profiled, Ignore);

    PipelineOptions Static;
    Static.Source = GraphSource::Static;
    R.Static = speedupFor(W, Static, R.StaticNote);

    PipelineOptions NoPriv;
    NoPriv.Method = PrivatizationMethod::None;
    R.NoPriv = speedupFor(W, NoPriv, R.NoPrivNote);

    Rows[W.Name] = R;
    State.counters["profiled"] = R.Profiled;
    State.counters["static"] = R.Static;
    State.counters["nopriv"] = R.NoPriv;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig7/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig7(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nWorkflow justification: 8-core loop speedup by dependence-"
              "graph source / privatization\n");
  std::printf("%-15s %18s %18s %22s\n", "Benchmark", "profiled+expand",
              "static analysis", "profiled, no privat.");
  auto cell = [](double V, const std::string &Note) {
    return V > 0 ? formatString("%.2fx", V) : (Note.empty() ? "-" : Note);
  };
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s %18s %18s %22s\n", W.Name,
                cell(R.Profiled, "").c_str(),
                cell(R.Static, R.StaticNote).substr(0, 18).c_str(),
                cell(R.NoPriv, R.NoPrivNote).substr(0, 22).c_str());
  }
  std::printf("\nPaper: static analysis is too conservative to parallelize "
              "these loops; skipping privatization turns them into ordered "
              "chains (slowdown instead of speedup).\n");
  return 0;
}
