//===- fig7_workflow.cpp - Why the workflow profiles (Fig. 7, §4.1) --------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The paper justifies its profiling-based workflow twice:
//  - §4.1: "current compile-time data dependence analysis algorithms are
//    still too conservative and they report false positives that prevent
//    loop parallelization" — reproduced by feeding the pipeline our
//    conservative static dependence graph instead of the profiled one;
//  - §4.3: "the parallelized code without privatization ... would require
//    excessive synchronization due to the spurious loop-carried
//    dependences, causing a slowdown instead of speedup" — reproduced by
//    keeping the profiled graph but skipping privatization.
//
// The static privatization witness sits between the two: a third
// configuration feeds the pipeline the witness-REFINED static graph
// (GraphSource::Witness), measuring how much of the profile's precision a
// sound compile-time proof recovers. Per-loop edge/class counts of all
// three graphs land in the --json output as the precision ladder
// static <= witness <= profiled.
//
// Reports the 8-core loop speedup of each configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "driver/CompilationSession.h"
#include "support/Support.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  double Profiled = 0, Static = 0, Witness = 0, NoPriv = 0;
  std::string StaticNote, WitnessNote, NoPrivNote;
};
std::map<std::string, Row> Rows;

/// Edge/class counts of one loop graph for the precision ladder.
struct GraphCounts {
  size_t Edges = 0, Carried = 0, CarriedFlow = 0;
  size_t ExposedLoads = 0, ExposedStores = 0;
  size_t Classes = 0, Private = 0;
};

GraphCounts countGraph(const LoopDepGraph &G, const AccessClasses &C) {
  GraphCounts N;
  N.Edges = G.Edges.size();
  for (const DepEdge &E : G.Edges)
    if (E.Carried) {
      ++N.Carried;
      if (E.Kind == DepKind::Flow)
        ++N.CarriedFlow;
    }
  N.ExposedLoads = G.UpwardsExposedLoads.size();
  N.ExposedStores = G.DownwardsExposedStores.size();
  N.Classes = C.classes().size();
  for (const AccessClassInfo &Cl : C.classes())
    N.Private += Cl.Private ? 1 : 0;
  return N;
}

std::string countsJson(const char *Name, const GraphCounts &N) {
  return formatString(
      "\"%s\": {\"edges\": %zu, \"carried\": %zu, \"carried_flow\": %zu, "
      "\"exposed_loads\": %zu, \"exposed_stores\": %zu, \"classes\": %zu, "
      "\"private_classes\": %zu}",
      Name, N.Edges, N.Carried, N.CarriedFlow, N.ExposedLoads,
      N.ExposedStores, N.Classes, N.Private);
}

/// Emits one JSON record per candidate loop with the conservative-static,
/// witness-refined, and profiled graph counts, and prints a table row set.
void emitPrecisionLadder(const WorkloadInfo &W) {
  std::unique_ptr<Module> M = parseMiniCOrDie(W.Source, W.Name);
  CompilationSession S(*M);
  AnalysisManager &AM = S.analyses();
  for (unsigned LoopId : S.candidateLoops()) {
    GraphCounts Counts[3];
    const GraphSource Sources[3] = {GraphSource::Static,
                                    GraphSource::Witness,
                                    GraphSource::Profile};
    bool Ok = true;
    for (int I = 0; I != 3; ++I) {
      const LoopDepGraph *G = AM.depGraph(LoopId, Sources[I]);
      const AccessClasses *C = AM.accessClasses(LoopId, Sources[I]);
      if (!G || !C) {
        Ok = false;
        break;
      }
      Counts[I] = countGraph(*G, *C);
    }
    if (!Ok)
      continue;
    addJsonRecord(formatString(
        "{\"workload\": \"%s\", \"loop\": %u, %s, %s, %s}", W.Name, LoopId,
        countsJson("static", Counts[0]).c_str(),
        countsJson("witness", Counts[1]).c_str(),
        countsJson("profiled", Counts[2]).c_str()));
    std::printf("%-15s loop %-2u %8zu/%-3zu %8zu/%-3zu %8zu/%-3zu\n", W.Name,
                LoopId, Counts[0].Carried, Counts[0].Private,
                Counts[1].Carried, Counts[1].Private, Counts[2].Carried,
                Counts[2].Private);
  }
}

double speedupFor(const WorkloadInfo &W, const PipelineOptions &Opts,
                  std::string &Note) {
  PreparedProgram Orig = prepareOriginal(W);
  RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);
  PreparedProgram Xf = prepareTransformed(W, Opts);
  if (!Xf.Ok) {
    Note = Xf.Error;
    return 0.0;
  }
  bool AnyParallel = false;
  for (const PipelineResult &PR : Xf.Pipelines)
    AnyParallel = AnyParallel || PR.Plan.Parallelized;
  if (!AnyParallel) {
    Note = "not parallelized";
    return 0.0;
  }
  RunResult RT = execute(Xf, 8);
  if (!RT.ok() || RT.Output != RO.Output) {
    Note = RT.ok() ? "output mismatch" : RT.TrapMessage;
    return 0.0;
  }
  return static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
         static_cast<double>(loopSimTime(RT, Xf.LoopIds));
}

void runFig7(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    Row R;
    std::string Ignore;
    PipelineOptions Profiled;
    R.Profiled = speedupFor(W, Profiled, Ignore);

    PipelineOptions Static;
    Static.Source = GraphSource::Static;
    R.Static = speedupFor(W, Static, R.StaticNote);

    PipelineOptions Witness;
    Witness.Source = GraphSource::Witness;
    R.Witness = speedupFor(W, Witness, R.WitnessNote);

    PipelineOptions NoPriv;
    NoPriv.Method = PrivatizationMethod::None;
    R.NoPriv = speedupFor(W, NoPriv, R.NoPrivNote);

    Rows[W.Name] = R;
    State.counters["profiled"] = R.Profiled;
    State.counters["static"] = R.Static;
    State.counters["witness"] = R.Witness;
    State.counters["nopriv"] = R.NoPriv;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig7/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig7(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nWorkflow justification: 8-core loop speedup by dependence-"
              "graph source / privatization\n");
  std::printf("%-15s %18s %18s %18s %22s\n", "Benchmark", "profiled+expand",
              "static analysis", "static witness", "profiled, no privat.");
  auto cell = [](double V, const std::string &Note) {
    return V > 0 ? formatString("%.2fx", V) : (Note.empty() ? "-" : Note);
  };
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s %18s %18s %18s %22s\n", W.Name,
                cell(R.Profiled, "").c_str(),
                cell(R.Static, R.StaticNote).substr(0, 18).c_str(),
                cell(R.Witness, R.WitnessNote).substr(0, 18).c_str(),
                cell(R.NoPriv, R.NoPrivNote).substr(0, 22).c_str());
  }
  std::printf("\nPrecision ladder: loop-carried edges / private classes per "
              "graph source\n");
  std::printf("%-15s %-7s %12s %12s %12s\n", "Benchmark", "", "static",
              "witness", "profiled");
  for (const WorkloadInfo &W : allWorkloads())
    emitPrecisionLadder(W);
  std::printf("\nPaper: static analysis is too conservative to parallelize "
              "these loops; the witness recovers the provable classes at "
              "compile time; skipping privatization turns the loops into "
              "ordered chains (slowdown instead of speedup).\n");
  return 0;
}
