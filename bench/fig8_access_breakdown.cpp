//===- fig8_access_breakdown.cpp - Reproduces Figure 8 ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 8: breakdown of the dynamic memory accesses of each candidate loop
// into (a) free of any loop-carried dependence, (b) expandable (thread-
// private per Definition 5), and (c) involved in residual loop-carried
// dependences. The chart's point: without expansion, category (b) would
// force cross-thread synchronization.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  std::string Name;
  double FreePct = 0, ExpandablePct = 0, CarriedPct = 0;
  uint64_t Total = 0;
};
std::vector<Row> Rows;

void runFig8(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &P = preparedForAll(W, PipelineOptions());
    if (!P.Ok) {
      State.SkipWithError(P.Error.c_str());
      return;
    }
    AccessBreakdown Sum;
    for (const PipelineResult &PR : P.Pipelines) {
      Sum.FreeOfCarried += PR.Breakdown.FreeOfCarried;
      Sum.Expandable += PR.Breakdown.Expandable;
      Sum.WithCarried += PR.Breakdown.WithCarried;
    }
    double Total = static_cast<double>(Sum.total());
    Row R;
    R.Name = W.Name;
    R.Total = Sum.total();
    if (Total > 0) {
      R.FreePct = 100.0 * Sum.FreeOfCarried / Total;
      R.ExpandablePct = 100.0 * Sum.Expandable / Total;
      R.CarriedPct = 100.0 * Sum.WithCarried / Total;
    }
    Rows.push_back(R);
    State.counters["free_pct"] = R.FreePct;
    State.counters["expandable_pct"] = R.ExpandablePct;
    State.counters["carried_pct"] = R.CarriedPct;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig8/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig8(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 8: breakdown of dynamic memory accesses of the "
              "candidate loops\n");
  std::printf("%-15s %14s %12s %12s %12s\n", "Benchmark", "dyn.accesses",
              "free", "expandable", "carried");
  for (const Row &R : Rows)
    std::printf("%-15s %14llu %11.1f%% %11.1f%% %11.1f%%\n", R.Name.c_str(),
                static_cast<unsigned long long>(R.Total), R.FreePct,
                R.ExpandablePct, R.CarriedPct);
  std::printf("\nExpected shape (paper): every benchmark shows a substantial "
              "expandable share; DOACROSS benchmarks additionally keep a "
              "visible carried share.\n");
  return 0;
}
