//===- fig9_overhead.cpp - Reproduces Figures 9a and 9b --------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Figure 9: single-core slowdown of the expanded program relative to the
// original, (a) without the §3.4 optimizations — every pointer slot is
// promoted, spans are computed everywhere — and (b) with them. Paper: the
// unoptimized harmonic-mean slowdown is ~1.8x, the optimized overhead stays
// below 5%. Methodology: the transformed program runs sequentially
// (SimulateParallel off, one thread), and slowdown = work cycles ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  std::string Name;
  double SlowdownRaw = 0.0; // without optimizations (Fig. 9a)
  double SlowdownOpt = 0.0; // with optimizations (Fig. 9b)
};
std::vector<Row> Rows;

double measureSlowdown(const WorkloadInfo &W, const PipelineOptions &Opts,
                       std::string &Error) {
  PreparedProgram Orig = prepareOriginal(W);
  RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);
  PreparedProgram Xf = prepareTransformed(W, Opts);
  if (!Xf.Ok) {
    Error = Xf.Error;
    return 0.0;
  }
  RunResult RT = execute(Xf, 1, /*SimulateParallel=*/false);
  if (!RO.ok() || !RT.ok()) {
    Error = RO.ok() ? RT.TrapMessage : RO.TrapMessage;
    return 0.0;
  }
  if (RO.Output != RT.Output) {
    Error = "output mismatch after transformation";
    return 0.0;
  }
  return static_cast<double>(RT.WorkCycles) / static_cast<double>(RO.WorkCycles);
}

void runFig9(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PipelineOptions Opt; // defaults: all §3.4 optimizations on
    PipelineOptions Raw;
    Raw.Expansion.SelectivePromotion = false;
    Raw.Expansion.SpanConstantPropagation = false;
    Raw.Expansion.DeadSpanStoreElimination = false;

    std::string Error;
    Row R;
    R.Name = W.Name;
    R.SlowdownRaw = measureSlowdown(W, Raw, Error);
    if (!Error.empty()) {
      State.SkipWithError(Error.c_str());
      return;
    }
    R.SlowdownOpt = measureSlowdown(W, Opt, Error);
    if (!Error.empty()) {
      State.SkipWithError(Error.c_str());
      return;
    }
    Rows.push_back(R);
    State.counters["slowdown_unopt"] = R.SlowdownRaw;
    State.counters["slowdown_opt"] = R.SlowdownOpt;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("fig9/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runFig9(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nFigure 9: single-core overhead of data structure expansion "
              "(original = 1.00)\n");
  std::printf("%-15s %26s %23s\n", "Benchmark", "(a) without optimizations",
              "(b) with optimizations");
  std::vector<double> RawAll, OptAll;
  for (const Row &R : Rows) {
    std::printf("%-15s %26s %23s\n", R.Name.c_str(),
                ratioStr(R.SlowdownRaw).c_str(),
                ratioStr(R.SlowdownOpt).c_str());
    RawAll.push_back(R.SlowdownRaw);
    OptAll.push_back(R.SlowdownOpt);
  }
  std::printf("%-15s %26s %23s\n", "harmonic mean",
              ratioStr(harmonicMean(RawAll)).c_str(),
              ratioStr(harmonicMean(OptAll)).c_str());
  std::printf("\nPaper: harmonic mean ~1.8x without optimizations; below "
              "1.05x with them.\n");
  return 0;
}
