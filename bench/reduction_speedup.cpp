//===- reduction_speedup.cpp - Commutative-tier reduction benchmarks -------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The commutative privatization tier on the reduction workloads: loops whose
// only carried dependences are single-op reductions (+, *, min, max, guarded
// += through fat pointers). Without the tier these loops serialize behind
// their accumulators; with it they expand onto per-thread copies, run DOALL,
// and a deterministic post-loop merge folds the copies in serial order — so
// speedup comes with bit-identical output, asserted on every run.
//
// Reported per workload: simulated loop/total speedup at 1/2/4/8 cores, the
// serialized (tier-off) simulated total for contrast, and the measured
// wall-clock host speedup of the threads engine at 1/2/4 workers with a
// --min-host-speedup CI gate, as in fig11_speedup.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

const std::vector<int> Cores = {1, 2, 4, 8};
const std::vector<int> HostThreads = {1, 2, 4};

struct Row {
  std::string Name;
  unsigned CommClasses = 0;
  std::map<int, double> LoopSpeedup;
  std::map<int, double> TotalSpeedup;
  /// Simulated total speedup with the commutative tier disabled: what the
  /// pipeline could do before this tier existed (the contrast column).
  std::map<int, double> TierOffSpeedup;
  std::map<int, double> HostSpeedup;
};
std::map<std::string, Row> Rows;

/// Per-workload cache: the reduction set is not part of the standard batch
/// behind preparedForAll, so transform each once and reuse.
PreparedProgram &transformedReduction(const WorkloadInfo &W, bool TierOn) {
  static std::map<std::string, PreparedProgram> Cache;
  std::string Key = std::string(W.Name) + (TierOn ? "/on" : "/off");
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  PipelineOptions Opts;
  Opts.Expansion.CommutativePrivatization = TierOn;
  return Cache.emplace(Key, prepareTransformed(W, Opts)).first->second;
}

void runReductionSim(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = execute(Orig, 1, /*SimulateParallel=*/false);

    PreparedProgram &Xf = transformedReduction(W, /*TierOn=*/true);
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    unsigned CommClasses = 0;
    for (const PipelineResult &PR : Xf.Pipelines)
      CommClasses += PR.Expansion.CommutativeClasses;
    if (!CommClasses) {
      State.SkipWithError("commutative tier claimed nothing");
      return;
    }
    RunResult RT = execute(Xf, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("run failed or output mismatch");
      return;
    }

    PreparedProgram &Off = transformedReduction(W, /*TierOn=*/false);
    double OffSp = 0.0;
    if (Off.Ok) {
      RunResult ROff = execute(Off, N);
      if (ROff.ok() && ROff.Output == RO.Output)
        OffSp = static_cast<double>(RO.SimTime) /
                static_cast<double>(ROff.SimTime);
    }

    double LoopSp = static_cast<double>(loopSimTime(RO, Orig.LoopIds)) /
                    static_cast<double>(loopSimTime(RT, Xf.LoopIds));
    double TotalSp =
        static_cast<double>(RO.SimTime) / static_cast<double>(RT.SimTime);
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    R.CommClasses = CommClasses;
    R.LoopSpeedup[N] = LoopSp;
    R.TotalSpeedup[N] = TotalSp;
    R.TierOffSpeedup[N] = OffSp;
    State.counters["loop_speedup"] = LoopSp;
    State.counters["total_speedup"] = TotalSp;
    State.counters["tier_off_speedup"] = OffSp;
  }
}

void runReductionHost(benchmark::State &State, const WorkloadInfo &W, int N) {
  for (auto _ : State) {
    PreparedProgram Orig = prepareOriginal(W);
    RunResult RO = executeOnEngine(Orig, ExecEngine::Bytecode, 1,
                                   GuardMode::Off, /*SimulateParallel=*/false);

    PreparedProgram &Xf = transformedReduction(W, /*TierOn=*/true);
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    RunResult RT = executeOnEngine(Xf, ExecEngine::Threads, N);
    if (!RO.ok() || !RT.ok() || RO.Output != RT.Output) {
      State.SkipWithError("host-threaded run failed or output mismatch");
      return;
    }
    double HostSp = RT.HostNanos
                        ? static_cast<double>(RO.HostNanos) /
                              static_cast<double>(RT.HostNanos)
                        : 0.0;
    Rows[W.Name].Name = W.Name;
    Rows[W.Name].HostSpeedup[N] = HostSp;
    State.counters["host_speedup"] = HostSp;

    std::ostringstream J;
    J << "{\"fig\":\"reduction-host\",\"workload\":\"" << W.Name
      << "\",\"host_threads\":" << N << ",\"host_serial_ns\":" << RO.HostNanos
      << ",\"host_threaded_ns\":" << RT.HostNanos
      << ",\"host_speedup\":" << HostSp
      << ",\"comm_classes\":" << Rows[W.Name].CommClasses << "}";
    addJsonRecord(J.str());
  }
}

} // namespace

int main(int argc, char **argv) {
  // --min-host-speedup X: as in fig11_speedup — fail unless some reduction
  // workload's measured wall-clock speedup at the highest host thread count
  // reaches X. Only pass it on multi-core runners.
  double MinHostSpeedup = 0.0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--min-host-speedup") == 0 && I + 1 < argc) {
      MinHostSpeedup = std::atof(argv[I + 1]);
      for (int J = I; J + 2 < argc; ++J)
        argv[J] = argv[J + 2];
      argc -= 2;
      break;
    }
  }

  for (const WorkloadInfo &W : reductionWorkloads())
    for (int N : Cores)
      benchmark::RegisterBenchmark(
          ("reduction/" + std::string(W.Name) + "/cores:" +
           std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runReductionSim(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  for (const WorkloadInfo &W : reductionWorkloads())
    for (int N : HostThreads)
      benchmark::RegisterBenchmark(
          ("reductionhost/" + std::string(W.Name) + "/threads:" +
           std::to_string(N))
              .c_str(),
          [&W, N](benchmark::State &S) { runReductionHost(S, W, N); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nCommutative-tier reduction speedup (simulated total; "
              "tier-off contrast at 4 cores)\n");
  std::printf("%-15s %7s", "Benchmark", "classes");
  for (int N : Cores)
    std::printf(" %7dc", N);
  std::printf(" %9s\n", "off@4c");
  std::map<int, std::vector<double>> PerN;
  for (const WorkloadInfo &W : reductionWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s %7u", W.Name, R.CommClasses);
    for (int N : Cores) {
      double V = R.TotalSpeedup.count(N) ? R.TotalSpeedup.at(N) : 0;
      std::printf(" %8.2f", V);
      PerN[N].push_back(V);
    }
    std::printf(" %9.2f\n",
                R.TierOffSpeedup.count(4) ? R.TierOffSpeedup.at(4) : 0);
  }
  std::printf("%-15s %7s", "harmonic mean", "");
  for (int N : Cores)
    std::printf(" %8.2f", harmonicMean(PerN[N]));
  std::printf("\n");

  std::printf("\nMeasured host speedup (threads engine vs serial bytecode; "
              "%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-15s", "Benchmark");
  for (int N : HostThreads)
    std::printf(" %7dt", N);
  std::printf("\n");
  double BestAtMax = 0.0;
  std::map<int, std::vector<double>> HostPerN;
  for (const WorkloadInfo &W : reductionWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s", W.Name);
    for (int N : HostThreads) {
      double V = R.HostSpeedup.count(N) ? R.HostSpeedup.at(N) : 0;
      std::printf(" %8.2f", V);
      HostPerN[N].push_back(V);
      if (N == HostThreads.back() && V > BestAtMax)
        BestAtMax = V;
    }
    std::printf("\n");
  }
  std::printf("%-15s", "harmonic mean");
  for (int N : HostThreads)
    std::printf(" %8.2f", harmonicMean(HostPerN[N]));
  std::printf("\n");

  if (MinHostSpeedup > 0.0 && BestAtMax < MinHostSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best measured host speedup %.2f at %d threads is "
                 "below the required %.2f\n",
                 BestAtMax, HostThreads.back(), MinHostSpeedup);
    return 1;
  }
  return 0;
}
