//===- resilience_overhead.cpp - Budget-polling overhead gate --------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Measures what the resilience layer costs when nothing goes wrong: every
// Figure 11 workload runs transformed with resilience disabled and again
// with generous budgets armed — a 10-minute deadline, a 1 TiB byte budget,
// and a 60-second DOACROSS watchdog. None of these can fire on a clean run,
// so the delta is pure bookkeeping: the deadline poll at loop-iteration
// boundaries, the byte-budget comparison on each allocation, and the
// watchdog's frontier timestamping. The armed run must be bit-identical on
// every virtual metric (budgets charge no cycles) — the bench asserts that —
// so the reported overhead is HOST time only.
//
// MaxCycles is deliberately NOT armed: a cycle cap folds into the engine's
// EffMaxCycles accounting, which forces the threads engine onto the
// simulated path (cycle counting requires the deterministic interleaving),
// so arming it would change what the threads rows measure. Its cost is the
// same per-iteration counter check the deadline poll already covers.
//
// --max-overhead X exits 1 when the harmonic-mean armed/off host-time ratio
// across all rows exceeds X; CI gates at 1.05.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Support.h"

#include <algorithm>
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

constexpr int HostWorkers = 4;
/// Repetitions per configuration; the minimum host time of each is compared
/// so scheduler noise on shared CI runners does not masquerade as polling
/// overhead.
constexpr int Reps = 3;

/// Budgets no clean run can breach: the poll executes, the branch never
/// takes.
ResilienceOptions armedOptions() {
  ResilienceOptions RO;
  RO.Budget.DeadlineMs = 600000;           // 10 minutes
  RO.Budget.MaxBytes = 1ull << 40;         // 1 TiB
  RO.WatchdogMs = 60000;                   // 60 s frontier stall
  return RO;
}

struct Cell {
  double OffMs = 0, ArmedMs = 0;
  double ratio() const { return OffMs > 0 ? ArmedMs / OffMs : 0; }
};

struct Row {
  std::string Name;
  Cell Serial; // bytecode engine, 1 simulated core
  Cell Threads; // threads engine, HostWorkers real workers
};
std::map<std::string, Row> Rows;

/// Runs off/armed back to back on one engine, asserting the resilience
/// contract: bit-identical virtual metrics and output, zero degradations
/// and watchdog fires on a clean run.
bool measure(benchmark::State &State, PreparedProgram &Xf, ExecEngine Engine,
             int Threads, Cell &C) {
  uint64_t OffBest = 0, ArmedBest = 0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    RunResult Off = executeOnEngine(Xf, Engine, Threads);
    RunResult Armed = executeResilient(Xf, Engine, Threads, armedOptions());
    if (!Off.ok() || !Armed.ok()) {
      State.SkipWithError("run trapped");
      return false;
    }
    if (Armed.Output != Off.Output || Armed.WorkCycles != Off.WorkCycles ||
        Armed.SimTime != Off.SimTime ||
        Armed.PeakMemoryBytes != Off.PeakMemoryBytes) {
      State.SkipWithError("armed budgets perturbed the virtual metrics");
      return false;
    }
    for (const auto &[Id, L] : Armed.Loops) {
      (void)Id;
      if (L.Degradations || L.WatchdogFires) {
        State.SkipWithError("clean run degraded under armed budgets");
        return false;
      }
    }
    OffBest = Rep ? std::min(OffBest, Off.HostNanos) : Off.HostNanos;
    ArmedBest = Rep ? std::min(ArmedBest, Armed.HostNanos) : Armed.HostNanos;
  }
  C.OffMs = static_cast<double>(OffBest) / 1e6;
  C.ArmedMs = static_cast<double>(ArmedBest) / 1e6;
  return true;
}

void runResilienceOverhead(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    Row &R = Rows[W.Name];
    R.Name = W.Name;
    if (!measure(State, Xf, ExecEngine::Bytecode, 1, R.Serial) ||
        !measure(State, Xf, ExecEngine::Threads, HostWorkers, R.Threads))
      return;
    State.counters["overhead_serial"] = R.Serial.ratio();
    State.counters["overhead_threads"] = R.Threads.ratio();
    addJsonRecord(formatString(
        "{\"workload\": \"%s\", \"off_ms_serial\": %.3f, "
        "\"armed_ms_serial\": %.3f, \"overhead_serial\": %.4f, "
        "\"off_ms_threads\": %.3f, \"armed_ms_threads\": %.3f, "
        "\"overhead_threads\": %.4f}",
        W.Name, R.Serial.OffMs, R.Serial.ArmedMs, R.Serial.ratio(),
        R.Threads.OffMs, R.Threads.ArmedMs, R.Threads.ratio()));
  }
}

} // namespace

int main(int argc, char **argv) {
  // --max-overhead X: fail (exit 1) when the harmonic-mean armed/off host
  // time ratio across every row exceeds X. Strip it before
  // benchmark::Initialize, which rejects unknown flags.
  double MaxOverhead = 0.0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--max-overhead") == 0 && I + 1 < argc) {
      MaxOverhead = std::atof(argv[I + 1]);
      for (int J = I; J + 2 < argc; ++J)
        argv[J] = argv[J + 2];
      argc -= 2;
      break;
    }
  }

  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(
        ("resilience_overhead/" + std::string(W.Name)).c_str(),
        [&W](benchmark::State &S) { runResilienceOverhead(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nResilience polling overhead (armed budgets vs off, host "
              "time, best of %d)\n",
              Reps);
  std::printf("%-15s %10s %10s %9s %10s %10s %9s\n", "Benchmark", "off ser",
              "armed ser", "ovh ser", "off thr", "armed thr", "ovh thr");
  std::vector<double> Ratios;
  for (const WorkloadInfo &W : allWorkloads()) {
    const Row &R = Rows[W.Name];
    std::printf("%-15s %9.2fms %9.2fms %8.3fx %9.2fms %9.2fms %8.3fx\n",
                W.Name, R.Serial.OffMs, R.Serial.ArmedMs, R.Serial.ratio(),
                R.Threads.OffMs, R.Threads.ArmedMs, R.Threads.ratio());
    if (R.Serial.ratio() > 0)
      Ratios.push_back(R.Serial.ratio());
    if (R.Threads.ratio() > 0)
      Ratios.push_back(R.Threads.ratio());
  }
  double Mean = Ratios.empty() ? 0.0 : harmonicMean(Ratios);
  std::printf("%-15s %10s %10s %9s %10s %10s %8.3fx\n", "harmonic mean", "",
              "", "", "", "", Mean);
  std::printf("\nVirtual metrics are asserted bit-identical between modes: "
              "budgets charge no cycles, so the overhead is host-side "
              "polling only (deadline check every 64th iteration poll, byte "
              "compare per allocation, watchdog frontier timestamps).\n");

  if (MaxOverhead > 0.0 && (Ratios.empty() || Mean > MaxOverhead)) {
    std::fprintf(stderr,
                 "FAIL: harmonic-mean resilience overhead %.3fx exceeds the "
                 "allowed %.3fx\n",
                 Mean, MaxOverhead);
    return 1;
  }
  return 0;
}
