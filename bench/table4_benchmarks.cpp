//===- table4_benchmarks.cpp - Reproduces Table 4 --------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Table 4: benchmark name, suite, code size, function containing the
// parallelized loop, loop nesting level, type of parallelism, and the loop's
// execution time as a percentage of the whole program. Sizes/percentages are
// those of our MiniC kernels; the parallelism kind and level must match the
// paper exactly.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace gdse;
using namespace gdse::bench;

namespace {

struct Row {
  std::string Name;
  std::string Suite;
  unsigned Loc = 0;
  std::string Function;
  unsigned Level = 0;
  std::string Parallelism;
  double TimePct = 0.0;
};

std::vector<Row> Rows;

unsigned countLines(const char *Src) {
  unsigned N = 0;
  for (const char *P = Src; *P; ++P)
    if (*P == '\n')
      ++N;
  return N;
}

void runTable4(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &Xf = preparedForAll(W, PipelineOptions());
    if (!Xf.Ok) {
      State.SkipWithError(Xf.Error.c_str());
      return;
    }
    // Sequential run of the ORIGINAL program to measure the loop share.
    PreparedProgram Orig = prepareOriginal(W);
    RunResult R = execute(Orig, /*Threads=*/1);
    double Pct = R.WorkCycles
                     ? 100.0 * static_cast<double>(
                                   loopWorkCycles(R, Orig.LoopIds)) /
                           static_cast<double>(R.WorkCycles)
                     : 0.0;

    Row Out;
    Out.Name = W.Name;
    Out.Suite = W.Suite;
    Out.Loc = countLines(W.Source);
    Out.Function = W.Function;
    Out.Level = W.LoopLevel;
    const char *Kind =
        Xf.Pipelines.front().Plan.Kind == ParallelKind::DOALL ? "DOALL"
                                                              : "DOACROSS";
    Out.Parallelism = Kind;
    Out.TimePct = Pct;
    Rows.push_back(Out);

    State.counters["loop_time_pct"] = Pct;
    State.counters["loc"] = Out.Loc;
    State.counters["level"] = Out.Level;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("table4/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runTable4(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nTable 4: benchmark characteristics (MiniC kernels)\n");
  std::printf("%-15s %-14s %5s  %-36s %5s %-9s %7s\n", "Benchmark", "Suite",
              "#LOC", "Function", "Level", "Par.", "%Time");
  for (const Row &R : Rows)
    std::printf("%-15s %-14s %5u  %-36s %5u %-9s %6.1f%%\n", R.Name.c_str(),
                R.Suite.c_str(), R.Loc, R.Function.c_str(), R.Level,
                R.Parallelism.c_str(), R.TimePct);
  std::printf("\nPaper (Table 4): dijkstra DOACROSS L1 99.9%%; md5 DOALL L1 "
              "99.8%%; mpeg2-enc DOALL L3 70.6%%; mpeg2-dec DOALL L2 97.8%%; "
              "h263-enc DOALL L2 43.2%%+37.1%%; 256.bzip2 DOACROSS L2 99.8%%; "
              "456.hmmer DOACROSS L2 99.9%%; 470.lbm DOALL L2 99.1%%\n");
  return 0;
}
