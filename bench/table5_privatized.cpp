//===- table5_privatized.cpp - Reproduces Table 5 --------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Table 5: the number of dynamic data structures privatized (expanded) per
// benchmark. Our count is the number of distinct memory objects (variables
// and heap allocation sites) the expansion pass replicated; the paper counts
// the structures its GCC pass privatized in the original programs, so
// absolute numbers differ while the "every benchmark privatizes at least
// one, most a handful" shape must hold.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

using namespace gdse;
using namespace gdse::bench;

namespace {

std::map<std::string, unsigned> Privatized;
std::map<std::string, unsigned> PromotedSlots;

const std::map<std::string, unsigned> &paperCounts() {
  static const std::map<std::string, unsigned> Counts = {
      {"dijkstra", 2},      {"md5", 1},           {"mpeg2-encoder", 7},
      {"mpeg2-decoder", 3}, {"h263-encoder", 6},  {"256.bzip2", 4},
      {"456.hmmer", 8},     {"470.lbm", 2},
  };
  return Counts;
}

void runTable5(benchmark::State &State, const WorkloadInfo &W) {
  for (auto _ : State) {
    PreparedProgram &P = preparedForAll(W, PipelineOptions());
    if (!P.Ok) {
      State.SkipWithError(P.Error.c_str());
      return;
    }
    unsigned Objects = 0, Slots = 0;
    for (const PipelineResult &PR : P.Pipelines) {
      Objects += PR.Expansion.ExpandedObjects;
      Slots += PR.Expansion.PromotedPointerSlots;
    }
    Privatized[W.Name] = Objects;
    PromotedSlots[W.Name] = Slots;
    State.counters["privatized"] = Objects;
    State.counters["promoted_slots"] = Slots;
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const WorkloadInfo &W : allWorkloads())
    benchmark::RegisterBenchmark(("table5/" + std::string(W.Name)).c_str(),
                                 [&W](benchmark::State &S) { runTable5(S, W); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  initBenchIO(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nTable 5: number of data structures privatized\n");
  std::printf("%-15s %12s %12s %15s\n", "Benchmark", "ours", "paper",
              "promoted ptrs");
  for (const WorkloadInfo &W : allWorkloads()) {
    unsigned Paper = paperCounts().count(W.Name) ? paperCounts().at(W.Name) : 0;
    std::printf("%-15s %12u %12u %15u\n", W.Name, Privatized[W.Name], Paper,
                PromotedSlots[W.Name]);
  }
  return 0;
}
