file(REMOVE_RECURSE
  "CMakeFiles/ablation_spanopts.dir/ablation_spanopts.cpp.o"
  "CMakeFiles/ablation_spanopts.dir/ablation_spanopts.cpp.o.d"
  "ablation_spanopts"
  "ablation_spanopts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spanopts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
