# Empty compiler generated dependencies file for ablation_spanopts.
# This may be replaced when dependencies are built.
