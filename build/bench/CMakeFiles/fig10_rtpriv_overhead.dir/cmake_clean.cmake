file(REMOVE_RECURSE
  "CMakeFiles/fig10_rtpriv_overhead.dir/fig10_rtpriv_overhead.cpp.o"
  "CMakeFiles/fig10_rtpriv_overhead.dir/fig10_rtpriv_overhead.cpp.o.d"
  "fig10_rtpriv_overhead"
  "fig10_rtpriv_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rtpriv_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
