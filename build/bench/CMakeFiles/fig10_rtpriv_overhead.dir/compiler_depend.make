# Empty compiler generated dependencies file for fig10_rtpriv_overhead.
# This may be replaced when dependencies are built.
