file(REMOVE_RECURSE
  "CMakeFiles/fig11_speedup.dir/fig11_speedup.cpp.o"
  "CMakeFiles/fig11_speedup.dir/fig11_speedup.cpp.o.d"
  "fig11_speedup"
  "fig11_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
