# Empty compiler generated dependencies file for fig11_speedup.
# This may be replaced when dependencies are built.
