# Empty compiler generated dependencies file for fig12_breakdown.
# This may be replaced when dependencies are built.
