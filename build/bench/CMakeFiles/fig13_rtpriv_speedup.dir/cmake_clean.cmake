file(REMOVE_RECURSE
  "CMakeFiles/fig13_rtpriv_speedup.dir/fig13_rtpriv_speedup.cpp.o"
  "CMakeFiles/fig13_rtpriv_speedup.dir/fig13_rtpriv_speedup.cpp.o.d"
  "fig13_rtpriv_speedup"
  "fig13_rtpriv_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_rtpriv_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
