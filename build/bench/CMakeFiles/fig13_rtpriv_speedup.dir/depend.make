# Empty dependencies file for fig13_rtpriv_speedup.
# This may be replaced when dependencies are built.
