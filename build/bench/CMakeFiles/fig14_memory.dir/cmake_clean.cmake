file(REMOVE_RECURSE
  "CMakeFiles/fig14_memory.dir/fig14_memory.cpp.o"
  "CMakeFiles/fig14_memory.dir/fig14_memory.cpp.o.d"
  "fig14_memory"
  "fig14_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
