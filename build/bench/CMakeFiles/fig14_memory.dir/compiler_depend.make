# Empty compiler generated dependencies file for fig14_memory.
# This may be replaced when dependencies are built.
