file(REMOVE_RECURSE
  "CMakeFiles/fig7_workflow.dir/fig7_workflow.cpp.o"
  "CMakeFiles/fig7_workflow.dir/fig7_workflow.cpp.o.d"
  "fig7_workflow"
  "fig7_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
