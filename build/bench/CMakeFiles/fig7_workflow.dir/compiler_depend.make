# Empty compiler generated dependencies file for fig7_workflow.
# This may be replaced when dependencies are built.
