file(REMOVE_RECURSE
  "CMakeFiles/fig8_access_breakdown.dir/fig8_access_breakdown.cpp.o"
  "CMakeFiles/fig8_access_breakdown.dir/fig8_access_breakdown.cpp.o.d"
  "fig8_access_breakdown"
  "fig8_access_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_access_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
