# Empty dependencies file for fig8_access_breakdown.
# This may be replaced when dependencies are built.
