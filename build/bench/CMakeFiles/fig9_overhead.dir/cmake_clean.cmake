file(REMOVE_RECURSE
  "CMakeFiles/fig9_overhead.dir/fig9_overhead.cpp.o"
  "CMakeFiles/fig9_overhead.dir/fig9_overhead.cpp.o.d"
  "fig9_overhead"
  "fig9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
