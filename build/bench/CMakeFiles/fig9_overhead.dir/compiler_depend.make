# Empty compiler generated dependencies file for fig9_overhead.
# This may be replaced when dependencies are built.
