file(REMOVE_RECURSE
  "CMakeFiles/gdse_benchcommon.dir/BenchCommon.cpp.o"
  "CMakeFiles/gdse_benchcommon.dir/BenchCommon.cpp.o.d"
  "libgdse_benchcommon.a"
  "libgdse_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
