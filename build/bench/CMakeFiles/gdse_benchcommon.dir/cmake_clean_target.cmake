file(REMOVE_RECURSE
  "libgdse_benchcommon.a"
)
