# Empty compiler generated dependencies file for gdse_benchcommon.
# This may be replaced when dependencies are built.
