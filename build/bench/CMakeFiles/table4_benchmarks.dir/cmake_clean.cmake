file(REMOVE_RECURSE
  "CMakeFiles/table4_benchmarks.dir/table4_benchmarks.cpp.o"
  "CMakeFiles/table4_benchmarks.dir/table4_benchmarks.cpp.o.d"
  "table4_benchmarks"
  "table4_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
