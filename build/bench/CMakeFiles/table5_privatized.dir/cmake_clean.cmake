file(REMOVE_RECURSE
  "CMakeFiles/table5_privatized.dir/table5_privatized.cpp.o"
  "CMakeFiles/table5_privatized.dir/table5_privatized.cpp.o.d"
  "table5_privatized"
  "table5_privatized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_privatized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
