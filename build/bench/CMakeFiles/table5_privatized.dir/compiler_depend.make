# Empty compiler generated dependencies file for table5_privatized.
# This may be replaced when dependencies are built.
