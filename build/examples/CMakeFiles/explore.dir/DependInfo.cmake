
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/explore.cpp" "examples/CMakeFiles/explore.dir/explore.cpp.o" "gcc" "examples/CMakeFiles/explore.dir/explore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/gdse_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gdse_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/gdse_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gdse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/expand/CMakeFiles/gdse_expand.dir/DependInfo.cmake"
  "/root/repo/build/src/rtpriv/CMakeFiles/gdse_rtpriv.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/gdse_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gdse_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gdse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gdse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
