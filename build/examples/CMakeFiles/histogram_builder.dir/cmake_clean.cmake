file(REMOVE_RECURSE
  "CMakeFiles/histogram_builder.dir/histogram_builder.cpp.o"
  "CMakeFiles/histogram_builder.dir/histogram_builder.cpp.o.d"
  "histogram_builder"
  "histogram_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
