# Empty dependencies file for histogram_builder.
# This may be replaced when dependencies are built.
