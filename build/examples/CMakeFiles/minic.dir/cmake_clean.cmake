file(REMOVE_RECURSE
  "CMakeFiles/minic.dir/minic.cpp.o"
  "CMakeFiles/minic.dir/minic.cpp.o.d"
  "minic"
  "minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
