# Empty dependencies file for minic.
# This may be replaced when dependencies are built.
