
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AccessClasses.cpp" "src/analysis/CMakeFiles/gdse_analysis.dir/AccessClasses.cpp.o" "gcc" "src/analysis/CMakeFiles/gdse_analysis.dir/AccessClasses.cpp.o.d"
  "/root/repo/src/analysis/DepGraph.cpp" "src/analysis/CMakeFiles/gdse_analysis.dir/DepGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/gdse_analysis.dir/DepGraph.cpp.o.d"
  "/root/repo/src/analysis/GraphIO.cpp" "src/analysis/CMakeFiles/gdse_analysis.dir/GraphIO.cpp.o" "gcc" "src/analysis/CMakeFiles/gdse_analysis.dir/GraphIO.cpp.o.d"
  "/root/repo/src/analysis/PointsTo.cpp" "src/analysis/CMakeFiles/gdse_analysis.dir/PointsTo.cpp.o" "gcc" "src/analysis/CMakeFiles/gdse_analysis.dir/PointsTo.cpp.o.d"
  "/root/repo/src/analysis/StaticDeps.cpp" "src/analysis/CMakeFiles/gdse_analysis.dir/StaticDeps.cpp.o" "gcc" "src/analysis/CMakeFiles/gdse_analysis.dir/StaticDeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/gdse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gdse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
