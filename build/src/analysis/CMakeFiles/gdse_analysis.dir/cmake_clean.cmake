file(REMOVE_RECURSE
  "CMakeFiles/gdse_analysis.dir/AccessClasses.cpp.o"
  "CMakeFiles/gdse_analysis.dir/AccessClasses.cpp.o.d"
  "CMakeFiles/gdse_analysis.dir/DepGraph.cpp.o"
  "CMakeFiles/gdse_analysis.dir/DepGraph.cpp.o.d"
  "CMakeFiles/gdse_analysis.dir/GraphIO.cpp.o"
  "CMakeFiles/gdse_analysis.dir/GraphIO.cpp.o.d"
  "CMakeFiles/gdse_analysis.dir/PointsTo.cpp.o"
  "CMakeFiles/gdse_analysis.dir/PointsTo.cpp.o.d"
  "CMakeFiles/gdse_analysis.dir/StaticDeps.cpp.o"
  "CMakeFiles/gdse_analysis.dir/StaticDeps.cpp.o.d"
  "libgdse_analysis.a"
  "libgdse_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
