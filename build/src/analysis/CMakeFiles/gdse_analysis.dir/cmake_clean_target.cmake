file(REMOVE_RECURSE
  "libgdse_analysis.a"
)
