# Empty compiler generated dependencies file for gdse_analysis.
# This may be replaced when dependencies are built.
