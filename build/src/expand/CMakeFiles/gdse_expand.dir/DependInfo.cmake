
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expand/Driver.cpp" "src/expand/CMakeFiles/gdse_expand.dir/Driver.cpp.o" "gcc" "src/expand/CMakeFiles/gdse_expand.dir/Driver.cpp.o.d"
  "/root/repo/src/expand/Expand.cpp" "src/expand/CMakeFiles/gdse_expand.dir/Expand.cpp.o" "gcc" "src/expand/CMakeFiles/gdse_expand.dir/Expand.cpp.o.d"
  "/root/repo/src/expand/Promote.cpp" "src/expand/CMakeFiles/gdse_expand.dir/Promote.cpp.o" "gcc" "src/expand/CMakeFiles/gdse_expand.dir/Promote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gdse_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gdse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gdse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
