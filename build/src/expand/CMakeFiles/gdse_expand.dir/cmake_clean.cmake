file(REMOVE_RECURSE
  "CMakeFiles/gdse_expand.dir/Driver.cpp.o"
  "CMakeFiles/gdse_expand.dir/Driver.cpp.o.d"
  "CMakeFiles/gdse_expand.dir/Expand.cpp.o"
  "CMakeFiles/gdse_expand.dir/Expand.cpp.o.d"
  "CMakeFiles/gdse_expand.dir/Promote.cpp.o"
  "CMakeFiles/gdse_expand.dir/Promote.cpp.o.d"
  "libgdse_expand.a"
  "libgdse_expand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_expand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
