file(REMOVE_RECURSE
  "libgdse_expand.a"
)
