# Empty compiler generated dependencies file for gdse_expand.
# This may be replaced when dependencies are built.
