file(REMOVE_RECURSE
  "CMakeFiles/gdse_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/gdse_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/gdse_frontend.dir/Parser.cpp.o"
  "CMakeFiles/gdse_frontend.dir/Parser.cpp.o.d"
  "libgdse_frontend.a"
  "libgdse_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
