file(REMOVE_RECURSE
  "libgdse_frontend.a"
)
