# Empty dependencies file for gdse_frontend.
# This may be replaced when dependencies are built.
