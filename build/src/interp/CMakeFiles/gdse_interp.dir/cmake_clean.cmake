file(REMOVE_RECURSE
  "CMakeFiles/gdse_interp.dir/Interp.cpp.o"
  "CMakeFiles/gdse_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/gdse_interp.dir/Memory.cpp.o"
  "CMakeFiles/gdse_interp.dir/Memory.cpp.o.d"
  "libgdse_interp.a"
  "libgdse_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
