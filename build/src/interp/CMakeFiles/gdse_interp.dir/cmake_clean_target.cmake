file(REMOVE_RECURSE
  "libgdse_interp.a"
)
