# Empty compiler generated dependencies file for gdse_interp.
# This may be replaced when dependencies are built.
