
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/AccessInfo.cpp" "src/ir/CMakeFiles/gdse_ir.dir/AccessInfo.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/AccessInfo.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/gdse_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/ir/CMakeFiles/gdse_ir.dir/IRBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRClone.cpp" "src/ir/CMakeFiles/gdse_ir.dir/IRClone.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/IRClone.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/gdse_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/IRVisitor.cpp" "src/ir/CMakeFiles/gdse_ir.dir/IRVisitor.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/IRVisitor.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/ir/CMakeFiles/gdse_ir.dir/Type.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/gdse_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/gdse_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gdse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
