file(REMOVE_RECURSE
  "CMakeFiles/gdse_ir.dir/AccessInfo.cpp.o"
  "CMakeFiles/gdse_ir.dir/AccessInfo.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/IR.cpp.o"
  "CMakeFiles/gdse_ir.dir/IR.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/gdse_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/IRClone.cpp.o"
  "CMakeFiles/gdse_ir.dir/IRClone.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/gdse_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/IRVisitor.cpp.o"
  "CMakeFiles/gdse_ir.dir/IRVisitor.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/Type.cpp.o"
  "CMakeFiles/gdse_ir.dir/Type.cpp.o.d"
  "CMakeFiles/gdse_ir.dir/Verifier.cpp.o"
  "CMakeFiles/gdse_ir.dir/Verifier.cpp.o.d"
  "libgdse_ir.a"
  "libgdse_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
