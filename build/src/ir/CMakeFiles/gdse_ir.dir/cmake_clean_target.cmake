file(REMOVE_RECURSE
  "libgdse_ir.a"
)
