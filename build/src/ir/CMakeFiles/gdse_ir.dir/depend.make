# Empty dependencies file for gdse_ir.
# This may be replaced when dependencies are built.
