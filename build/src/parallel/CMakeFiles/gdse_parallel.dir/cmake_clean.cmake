file(REMOVE_RECURSE
  "CMakeFiles/gdse_parallel.dir/Pipeline.cpp.o"
  "CMakeFiles/gdse_parallel.dir/Pipeline.cpp.o.d"
  "CMakeFiles/gdse_parallel.dir/Planner.cpp.o"
  "CMakeFiles/gdse_parallel.dir/Planner.cpp.o.d"
  "libgdse_parallel.a"
  "libgdse_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
