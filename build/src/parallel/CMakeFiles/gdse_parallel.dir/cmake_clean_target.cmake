file(REMOVE_RECURSE
  "libgdse_parallel.a"
)
