# Empty dependencies file for gdse_parallel.
# This may be replaced when dependencies are built.
