
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/DepProfiler.cpp" "src/profile/CMakeFiles/gdse_profile.dir/DepProfiler.cpp.o" "gcc" "src/profile/CMakeFiles/gdse_profile.dir/DepProfiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gdse_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gdse_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gdse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gdse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
