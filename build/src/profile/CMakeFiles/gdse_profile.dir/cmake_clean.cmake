file(REMOVE_RECURSE
  "CMakeFiles/gdse_profile.dir/DepProfiler.cpp.o"
  "CMakeFiles/gdse_profile.dir/DepProfiler.cpp.o.d"
  "libgdse_profile.a"
  "libgdse_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
