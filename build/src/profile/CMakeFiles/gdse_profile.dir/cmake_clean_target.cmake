file(REMOVE_RECURSE
  "libgdse_profile.a"
)
