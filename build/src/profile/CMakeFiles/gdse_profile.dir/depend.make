# Empty dependencies file for gdse_profile.
# This may be replaced when dependencies are built.
