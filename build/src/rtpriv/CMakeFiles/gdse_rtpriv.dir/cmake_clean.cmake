file(REMOVE_RECURSE
  "CMakeFiles/gdse_rtpriv.dir/RtPrivPass.cpp.o"
  "CMakeFiles/gdse_rtpriv.dir/RtPrivPass.cpp.o.d"
  "libgdse_rtpriv.a"
  "libgdse_rtpriv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_rtpriv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
