file(REMOVE_RECURSE
  "libgdse_rtpriv.a"
)
