# Empty dependencies file for gdse_rtpriv.
# This may be replaced when dependencies are built.
