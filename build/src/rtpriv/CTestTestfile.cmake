# CMake generated Testfile for 
# Source directory: /root/repo/src/rtpriv
# Build directory: /root/repo/build/src/rtpriv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
