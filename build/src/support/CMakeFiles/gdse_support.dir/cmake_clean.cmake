file(REMOVE_RECURSE
  "CMakeFiles/gdse_support.dir/Support.cpp.o"
  "CMakeFiles/gdse_support.dir/Support.cpp.o.d"
  "libgdse_support.a"
  "libgdse_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
