file(REMOVE_RECURSE
  "libgdse_support.a"
)
