# Empty compiler generated dependencies file for gdse_support.
# This may be replaced when dependencies are built.
