file(REMOVE_RECURSE
  "CMakeFiles/gdse_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/gdse_workloads.dir/Workloads.cpp.o.d"
  "libgdse_workloads.a"
  "libgdse_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
