file(REMOVE_RECURSE
  "libgdse_workloads.a"
)
