# Empty dependencies file for gdse_workloads.
# This may be replaced when dependencies are built.
