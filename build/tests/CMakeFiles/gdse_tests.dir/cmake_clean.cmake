file(REMOVE_RECURSE
  "CMakeFiles/gdse_tests.dir/AnalysisTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/AnalysisTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/DiagnosticsTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/ExpansionTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/ExpansionTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/FrontendTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/FrontendTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/GraphSourceTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/GraphSourceTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/IRTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/IRTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/InterpTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/InterpTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/ProfilerTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/ProfilerTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/PropertyTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/SpanRulesTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/SpanRulesTest.cpp.o.d"
  "CMakeFiles/gdse_tests.dir/WorkloadTest.cpp.o"
  "CMakeFiles/gdse_tests.dir/WorkloadTest.cpp.o.d"
  "gdse_tests"
  "gdse_tests.pdb"
  "gdse_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
