# Empty dependencies file for gdse_tests.
# This may be replaced when dependencies are built.
