//===- explore.cpp - Benchmark explorer CLI ---------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Inspects what the pipeline does to one of the eight Table 4 benchmark
// kernels:
//
//   explore <benchmark> [--threads N] [--method expansion|rtpriv|none]
//           [--layout bonded|interleaved] [--no-opts] [--dump-ir]
//           [--dump-graph] [--source profile|static] [--save-graph FILE]
//           [--load-graph FILE] [--time-passes] [--stats]
//
// --save-graph / --load-graph implement the paper's programmer-verification
// workflow: profile once, dump the dependence graph, inspect/edit it, and
// feed the verified graph back in later runs (GraphIO.h).
//
// Prints the access breakdown (Fig. 8 view), expansion statistics (Table 5
// view), the parallel plan, and original-vs-transformed execution metrics.
//
//===----------------------------------------------------------------------===//

#include "analysis/GraphIO.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "ir/IRPrinter.h"
#include "parallel/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace gdse;

static void usage() {
  std::fprintf(stderr,
               "usage: explore <benchmark> [--threads N] "
               "[--method expansion|rtpriv|none] "
               "[--layout bonded|interleaved] [--no-opts] [--dump-ir] "
               "[--dump-graph] [--source profile|static] "
               "[--save-graph FILE] [--load-graph FILE] "
               "[--time-passes] [--stats]\nbenchmarks:");
  for (const WorkloadInfo &W : allWorkloads())
    std::fprintf(stderr, " %s", W.Name);
  std::fprintf(stderr, "\n");
}

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const WorkloadInfo *W = findWorkload(argv[1]);
  if (!W) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", argv[1]);
    usage();
    return 1;
  }

  int Threads = 4;
  bool DumpIR = false, DumpGraph = false, TimePasses = false, Stats = false;
  std::string SaveGraphFile, LoadGraphFile;
  PipelineOptions Opts;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--threads" && I + 1 < argc) {
      Threads = std::atoi(argv[++I]);
    } else if (Arg == "--method" && I + 1 < argc) {
      std::string V = argv[++I];
      Opts.Method = V == "rtpriv" ? PrivatizationMethod::Runtime
                    : V == "none" ? PrivatizationMethod::None
                                  : PrivatizationMethod::Expansion;
    } else if (Arg == "--layout" && I + 1 < argc) {
      Opts.Expansion.Layout = std::string(argv[++I]) == "interleaved"
                                  ? LayoutMode::Interleaved
                                  : LayoutMode::Bonded;
    } else if (Arg == "--no-opts") {
      Opts.Expansion.SelectivePromotion = false;
      Opts.Expansion.SpanConstantPropagation = false;
      Opts.Expansion.DeadSpanStoreElimination = false;
    } else if (Arg == "--dump-ir") {
      DumpIR = true;
    } else if (Arg == "--dump-graph") {
      DumpGraph = true;
    } else if (Arg == "--source" && I + 1 < argc) {
      Opts.Source = std::string(argv[++I]) == "static" ? GraphSource::Static
                                                       : GraphSource::Profile;
    } else if (Arg == "--save-graph" && I + 1 < argc) {
      SaveGraphFile = argv[++I];
    } else if (Arg == "--load-graph" && I + 1 < argc) {
      LoadGraphFile = argv[++I];
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else {
      usage();
      return 1;
    }
  }

  // Original run.
  std::unique_ptr<Module> Orig = parseMiniCOrDie(W->Source, W->Name);
  Interp SeqI(*Orig);
  RunResult Seq = SeqI.run();
  if (!Seq.ok()) {
    std::fprintf(stderr, "original run trapped: %s\n",
                 Seq.TrapMessage.c_str());
    return 1;
  }

  // Transform every candidate, sharing one compilation session so cached
  // analyses carry across loops (the profiler runs at most once per loop).
  std::unique_ptr<Module> M = parseMiniCOrDie(W->Source, W->Name);
  CompilationSession Session(*M);
  std::vector<unsigned> Loops = Session.candidateLoops();
  std::printf("%s (%s): %zu candidate loop(s)\n", W->Name, W->Suite,
              Loops.size());
  LoopDepGraph Loaded;
  if (!LoadGraphFile.empty()) {
    std::ifstream GIn(LoadGraphFile);
    if (!GIn) {
      std::fprintf(stderr, "cannot open '%s'\n", LoadGraphFile.c_str());
      return 1;
    }
    std::ostringstream GS;
    GS << GIn.rdbuf();
    std::string GErr;
    if (!parseDepGraph(GS.str(), Loaded, GErr)) {
      std::fprintf(stderr, "%s: %s\n", LoadGraphFile.c_str(), GErr.c_str());
      return 1;
    }
    Opts.Source = GraphSource::External;
    Opts.ExternalGraph = &Loaded;
    std::printf("using programmer-verified graph from %s (loop %u)\n",
                LoadGraphFile.c_str(), Loaded.LoopId);
  }
  for (unsigned LoopId : Loops) {
    PipelineResult PR = Session.compileLoop(LoopId, Opts);
    if (!PR.Ok) {
      for (const Diagnostic &D : PR.Diags)
        if (D.Severity == DiagSeverity::Error)
          std::fprintf(stderr, "%s\n", D.str().c_str());
      return 1;
    }
    uint64_t Total = PR.Breakdown.total();
    std::printf("\nloop %u:\n", LoopId);
    std::printf("  dynamic accesses: %llu  (free %.1f%%, expandable %.1f%%, "
                "carried %.1f%%)\n",
                static_cast<unsigned long long>(Total),
                100.0 * PR.Breakdown.FreeOfCarried / Total,
                100.0 * PR.Breakdown.Expandable / Total,
                100.0 * PR.Breakdown.WithCarried / Total);
    std::printf("  expanded structures: %u, promoted pointer slots: %u, "
                "span stores: +%u/-%u\n",
                PR.Expansion.ExpandedObjects,
                PR.Expansion.PromotedPointerSlots,
                PR.Expansion.SpanStoresInserted,
                PR.Expansion.SpanStoresEliminated);
    std::printf("  redirected accesses: %u private, %u shared\n",
                PR.Expansion.PrivateAccessesRedirected,
                PR.Expansion.SharedAccessesRedirected);
    std::printf("  plan: %s, %u ordered region(s)\n",
                PR.Plan.Kind == ParallelKind::DOALL      ? "DOALL"
                : PR.Plan.Kind == ParallelKind::DOACROSS ? "DOACROSS"
                                                         : "sequential",
                PR.Plan.OrderedRegions);
    if (DumpGraph)
      std::printf("  graph:\n%s", PR.Graph.str().c_str());
    if (!SaveGraphFile.empty()) {
      std::string Name = SaveGraphFile;
      if (Loops.size() > 1)
        Name += "." + std::to_string(LoopId);
      std::ofstream GOut(Name);
      GOut << serializeDepGraph(PR.Graph);
      std::printf("  graph written to %s (re-run with --load-graph after "
                  "verifying)\n",
                  Name.c_str());
    }
  }

  if (TimePasses)
    std::fprintf(stderr, "%s", Session.timingReport().c_str());
  if (Stats)
    std::fprintf(stderr, "%s", Session.statsReport().c_str());

  if (DumpIR)
    std::printf("\n--- transformed program ---\n%s\n",
                printModule(*M).c_str());

  InterpOptions IO;
  IO.NumThreads = Threads;
  Interp ParI(*M, IO);
  RunResult Par = ParI.run();
  if (!Par.ok()) {
    std::fprintf(stderr, "transformed run trapped: %s\n",
                 Par.TrapMessage.c_str());
    return 1;
  }

  std::printf("\nexecution (N=%d):\n", Threads);
  std::printf("  output:        %s\n",
              Par.Output == Seq.Output ? "identical to original" : "MISMATCH");
  std::printf("  sim time:      %llu -> %llu cycles (%.2fx total speedup)\n",
              static_cast<unsigned long long>(Seq.SimTime),
              static_cast<unsigned long long>(Par.SimTime),
              static_cast<double>(Seq.SimTime) /
                  static_cast<double>(Par.SimTime));
  std::printf("  peak memory:   %llu -> %llu bytes (%.2fx)\n",
              static_cast<unsigned long long>(Seq.PeakMemoryBytes),
              static_cast<unsigned long long>(Par.PeakMemoryBytes),
              static_cast<double>(Par.PeakMemoryBytes) /
                  static_cast<double>(Seq.PeakMemoryBytes));
  for (const auto &[LoopId, LS] : Par.Loops) {
    if (LS.Kind == ParallelKind::None || LS.WorkPerThread.empty())
      continue;
    uint64_t Work = 0, Stall = 0, Idle = 0;
    for (unsigned T = 0; T < LS.WorkPerThread.size(); ++T) {
      Work += LS.WorkPerThread[T];
      Stall += LS.SyncStallPerThread[T];
      Idle += LS.IdlePerThread[T];
    }
    std::printf("  loop %u (%s): %llu iterations, work %llu, sync stalls "
                "%llu, idle %llu\n",
                LoopId, LS.Kind == ParallelKind::DOALL ? "DOALL" : "DOACROSS",
                static_cast<unsigned long long>(LS.Iterations),
                static_cast<unsigned long long>(Work),
                static_cast<unsigned long long>(Stall),
                static_cast<unsigned long long>(Idle));
  }
  if (Par.RtPrivTranslations)
    std::printf("  rtpriv: %llu translations, %llu bytes copied\n",
                static_cast<unsigned long long>(Par.RtPrivTranslations),
                static_cast<unsigned long long>(Par.RtPrivBytesCopied));
  return 0;
}
