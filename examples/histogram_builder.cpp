//===- histogram_builder.cpp - Programmatic IR construction -----*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Builds a program directly with the IRBuilder API — no MiniC source —
// demonstrating the library's second entry point (the one a compiler
// frontend embedding GDSE would use):
//
//   A histogram-merge kernel: each iteration fills a shared scratch
//   histogram from one tile of the input, then merges it into a global
//   result in order. The scratch is the expansion target; the merge is the
//   residual DOACROSS dependence.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "ir/IRClone.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "parallel/Pipeline.h"

#include <cstdio>

using namespace gdse;

namespace {

/// Builds the histogram program into \p M and returns it for inspection.
void buildProgram(Module &M) {
  TypeContext &Ctx = M.getTypes();
  IRBuilder B(M);
  IntType *I32 = Ctx.getInt32();
  IntType *I64 = Ctx.getInt64();

  constexpr int64_t Bins = 32;
  constexpr int64_t Tiles = 24;
  constexpr int64_t TileSize = 256;

  // Globals: input data, per-tile scratch histogram, merged result.
  VarDecl *Input = M.addGlobal("input", Ctx.getArrayType(I32, Tiles * TileSize));
  VarDecl *Scratch = M.addGlobal("scratch", Ctx.getArrayType(I32, Bins));
  VarDecl *Merged = M.addGlobal("merged", Ctx.getArrayType(I64, Bins));

  FunctionType *MainTy = Ctx.getFunctionType(I32, {});
  Function *Main = M.createFunction("main", MainTy);

  auto local = [&](const char *Name, Type *Ty) {
    VarDecl *D = M.createVar(Name, Ty, VarDecl::Storage::Local);
    Main->addLocal(D);
    return D;
  };
  VarDecl *Seed = local("seed", I32);
  VarDecl *I = local("i", I32);
  VarDecl *Tile = local("tile", I32);
  VarDecl *K = local("k", I32);
  VarDecl *K2 = local("k2", I32);
  VarDecl *B2 = local("b2", I32);
  VarDecl *Check = local("check", I64);

  std::vector<Stmt *> Body;

  // seed = 99; for (i = 0; i < Tiles*TileSize; i++) { seed = seed*1103515245
  // + 12345; input[i] = (seed >> 16) & (Bins - 1); }
  Body.push_back(B.assign(B.varRef(Seed), B.intLit(99)));
  Body.push_back(B.forStmt(
      I, B.intLit(0), B.intLit(Tiles * TileSize), B.intLit(1),
      B.block({B.assign(B.varRef(Seed),
                        B.add(B.mul(B.loadVar(Seed), B.intLit(1103515245)),
                              B.intLit(12345))),
               B.assign(B.index(B.decay(B.varRef(Input)), B.loadVar(I)),
                        B.binary(BinaryOp::BitAnd,
                                 B.binary(BinaryOp::Shr, B.loadVar(Seed),
                                          B.intLit(16)),
                                 B.intLit(Bins - 1)))})));

  // merged[] = 0.
  Body.push_back(B.forStmt(
      I, B.intLit(0), B.intLit(Bins), B.intLit(1),
      B.block({B.assign(B.index(B.decay(B.varRef(Merged)), B.loadVar(I)),
                        B.convert(B.intLit(0), I64))})));

  // The candidate loop over tiles.
  // scratch[] = 0; count the tile; then merged[b] += scratch[b] (ordered).
  Stmt *ZeroScratch = B.forStmt(
      K, B.intLit(0), B.intLit(Bins), B.intLit(1),
      B.block({B.assign(B.index(B.decay(B.varRef(Scratch)), B.loadVar(K)),
                        B.intLit(0))}));
  Expr *InElem = B.load(B.index(
      B.decay(B.varRef(Input)),
      B.add(B.mul(B.loadVar(Tile), B.intLit(TileSize)), B.loadVar(K2))));
  Stmt *CountTile = B.forStmt(
      K2, B.intLit(0), B.intLit(TileSize), B.intLit(1),
      B.block({B.assign(
          B.index(B.decay(B.varRef(Scratch)), InElem),
          B.add(B.load(B.index(B.decay(B.varRef(Scratch)),
                               cloneExpr(M, InElem))),
                B.intLit(1)))}));
  Stmt *Merge = B.forStmt(
      B2, B.intLit(0), B.intLit(Bins), B.intLit(1),
      B.block({B.assign(
          B.index(B.decay(B.varRef(Merged)), B.loadVar(B2)),
          B.add(B.load(B.index(B.decay(B.varRef(Merged)), B.loadVar(B2))),
                B.convert(B.load(B.index(B.decay(B.varRef(Scratch)),
                                         B.loadVar(B2))),
                          I64)))}));
  ForStmt *Candidate =
      B.forStmt(Tile, B.intLit(0), B.intLit(Tiles), B.intLit(1),
                B.block({ZeroScratch, CountTile, Merge}));
  Candidate->setCandidate(true);
  Body.push_back(Candidate);

  // check = fold(merged); print_int(check); return 0.
  Body.push_back(B.assign(B.varRef(Check), B.convert(B.intLit(0), I64)));
  Body.push_back(B.forStmt(
      I, B.intLit(0), B.intLit(Bins), B.intLit(1),
      B.block({B.assign(
          B.varRef(Check),
          B.add(B.mul(B.loadVar(Check), B.convert(B.intLit(33), I64)),
                B.load(B.index(B.decay(B.varRef(Merged)), B.loadVar(I)))))})));
  Body.push_back(B.exprStmt(B.callBuiltin(
      Builtin::PrintInt, {B.loadVar(Check)}, Ctx.getVoidType())));
  Body.push_back(B.ret(B.intLit(0)));

  Main->setBody(B.block(std::move(Body)));
  verifyModuleOrDie(M, "after building the histogram program");
}

} // namespace

int main() {
  Module Orig;
  buildProgram(Orig);
  Interp SeqI(Orig);
  RunResult Seq = SeqI.run();
  std::printf("original output: %s", Seq.Output.c_str());

  Module M;
  buildProgram(M);
  CompilationSession Session(M);
  std::vector<unsigned> Candidates = Session.candidateLoops();
  PipelineResult PR = Session.compileLoop(Candidates.front());
  if (!PR.Ok) {
    for (const Diagnostic &D : PR.Diags)
      if (D.Severity == DiagSeverity::Error)
        std::fprintf(stderr, "%s\n", D.str().c_str());
    return 1;
  }
  std::printf("plan: %s, expanded %u structure(s)\n",
              PR.Plan.Kind == ParallelKind::DOALL ? "DOALL" : "DOACROSS",
              PR.Expansion.ExpandedObjects);

  for (int N : {1, 4, 8}) {
    InterpOptions IO;
    IO.NumThreads = N;
    Interp I(M, IO);
    RunResult Par = I.run();
    std::printf("N=%d: output %s, loop speedup %.2fx\n", N,
                Par.Output == Seq.Output ? "identical" : "MISMATCH",
                static_cast<double>(Seq.SimTime) /
                    static_cast<double>(Par.SimTime));
  }
  return 0;
}
