//===- minic.cpp - MiniC runner CLI -----------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Runs a MiniC source file under the VM:
//
//   minic <file.mc> [--threads N] [--transform] [--dump-ir]
//         [--time-passes] [--stats]
//
// With --transform, every @candidate loop is run through the expansion
// pipeline (one CompilationSession over the whole module, so analyses are
// shared across loops) and executes under the simulated multicore.
// --time-passes / --stats print the session's per-pass timing and counter
// reports to stderr after compilation.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "ir/IRPrinter.h"
#include "parallel/Pipeline.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace gdse;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: minic <file.mc> [--threads N] [--transform] "
                 "[--dump-ir] [--time-passes] [--stats]\n");
    return 1;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Source = SS.str();

  int Threads = 1;
  bool Transform = false, DumpIR = false, TimePasses = false, Stats = false;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--threads" && I + 1 < argc)
      Threads = std::atoi(argv[++I]);
    else if (Arg == "--transform")
      Transform = true;
    else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--time-passes")
      TimePasses = true;
    else if (Arg == "--stats")
      Stats = true;
  }

  ParseResult PR = parseMiniC(Source);
  if (!PR.ok()) {
    for (const Diagnostic &D : PR.Diags)
      std::fprintf(stderr, "%s: %s\n", argv[1], D.str().c_str());
    return 1;
  }

  if (Transform) {
    CompilationSession Session(*PR.M);
    for (const PipelineResult &R : Session.compileAll()) {
      if (!R.Ok) {
        for (const Diagnostic &D : R.Diags)
          if (D.Severity == DiagSeverity::Error)
            std::fprintf(stderr, "%s\n", D.str().c_str());
        return 1;
      }
      std::fprintf(stderr, "loop %u: %s, %u structure(s) expanded\n", R.LoopId,
                   R.Plan.Kind == ParallelKind::DOALL      ? "DOALL"
                   : R.Plan.Kind == ParallelKind::DOACROSS ? "DOACROSS"
                                                           : "sequential",
                   R.Expansion.ExpandedObjects);
    }
    if (TimePasses)
      std::fprintf(stderr, "%s", Session.timingReport().c_str());
    if (Stats)
      std::fprintf(stderr, "%s", Session.statsReport().c_str());
  }

  if (DumpIR)
    std::fprintf(stderr, "%s\n", printModule(*PR.M).c_str());

  InterpOptions IO;
  IO.NumThreads = Threads;
  Interp I(*PR.M, IO);
  RunResult R = I.run();
  std::fputs(R.Output.c_str(), stdout);
  if (R.Trapped) {
    std::fprintf(stderr, "trap: %s\n", R.TrapMessage.c_str());
    return 1;
  }
  std::fprintf(stderr, "[%llu work cycles, %llu simulated, peak %llu bytes]\n",
               (unsigned long long)R.WorkCycles,
               (unsigned long long)R.SimTime,
               (unsigned long long)R.PeakMemoryBytes);
  return (int)R.ExitCode;
}
