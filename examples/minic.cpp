//===- minic.cpp - MiniC runner CLI -----------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Runs MiniC source files under the VM:
//
//   minic <file.mc>... [--threads N] [--jobs N] [--transform] [--dump-ir]
//         [--engine tree|bytecode|threads] [--guard off|check|fallback]
//         [--deadline-ms N] [--mem-budget N] [--watchdog-ms N] [--faults SPEC]
//         [--no-ladder] [--time-passes] [--stats]
//
// --engine threads executes eligible transformed parallel loops on real host
// threads (--threads N workers) while reproducing the serial engines'
// virtual metrics bit-for-bit; see ARCHITECTURE.md "Host-threaded
// execution".
//
// With --transform, every @candidate loop of every file is run through the
// expansion pipeline. Files are independent modules, so they compile through
// CompilationSession::compileBatch on --jobs worker threads (default 1);
// diagnostics, reports, and exit codes are emitted in file order regardless
// of scheduling, so any --jobs value prints byte-identical output (modulo
// wall-clock readings inside --time-passes). Programs then execute
// sequentially in file order. --time-passes / --stats print each file's
// per-pass timing and counter reports to stderr after compilation.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilationSession.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "ir/IRPrinter.h"
#include "parallel/Pipeline.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace gdse;

namespace {

struct InputProgram {
  std::string Path;
  std::unique_ptr<Module> M;
  /// Guard plans produced by --transform, one per privatized loop.
  std::vector<std::shared_ptr<const GuardPlan>> Guards;
};

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Paths;
  int Threads = 1;
  unsigned Jobs = 1;
  bool Transform = false, DumpIR = false, TimePasses = false, Stats = false;
  bool AuditDeps = false;
  std::string Dump;
  // Engine default follows GDSE_ENGINE (bytecode when unset); --engine wins.
  ExecEngine Engine = engineFromEnv();
  // Guard default follows GDSE_GUARD (off when unset); --guard wins.
  GuardMode Guard = guardModeFromEnv();
  // Resilience defaults follow GDSE_DEADLINE_MS / GDSE_MEM_BUDGET /
  // GDSE_WATCHDOG_MS / GDSE_LADDER / GDSE_FAULTS; the flags below win.
  ResilienceOptions Resilience = resilienceFromEnv();
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--threads" && I + 1 < argc)
      Threads = std::atoi(argv[++I]);
    else if (Arg == "--engine" && I + 1 < argc) {
      std::string E = argv[++I];
      if (E == "tree" || E == "treewalk")
        Engine = ExecEngine::TreeWalk;
      else if (E == "bytecode" || E == "bc")
        Engine = ExecEngine::Bytecode;
      else if (E == "threads")
        Engine = ExecEngine::Threads;
      else {
        std::fprintf(stderr, "unknown engine '%s' (tree|bytecode|threads)\n",
                     E.c_str());
        return 1;
      }
    }
    else if (Arg == "--guard" && I + 1 < argc) {
      std::string G = argv[++I];
      if (!parseGuardMode(G, Guard)) {
        std::fprintf(stderr, "unknown guard mode '%s' (off|check|fallback)\n",
                     G.c_str());
        return 1;
      }
    }
    else if (Arg == "--jobs" && I + 1 < argc)
      Jobs = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (Arg == "--deadline-ms" && I + 1 < argc)
      Resilience.Budget.DeadlineMs =
          static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (Arg == "--mem-budget" && I + 1 < argc)
      Resilience.Budget.MaxBytes = static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (Arg == "--watchdog-ms" && I + 1 < argc)
      Resilience.WatchdogMs = static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (Arg == "--no-ladder")
      Resilience.Ladder = false;
    else if (Arg == "--faults" && I + 1 < argc) {
      std::string Err;
      Resilience.Faults = FaultInjector::parse(argv[++I], Err);
      if (!Resilience.Faults) {
        std::fprintf(stderr, "bad --faults spec: %s\n", Err.c_str());
        return 1;
      }
    }
    else if (Arg == "--transform")
      Transform = true;
    else if (Arg == "--audit-deps")
      AuditDeps = true;
    else if (Arg.rfind("--dump=", 0) == 0) {
      Dump = Arg.substr(7);
      if (Dump != "points-to" && Dump != "static-deps" && Dump != "classes" &&
          Dump != "witness") {
        std::fprintf(stderr,
                     "unknown dump '%s' "
                     "(points-to|static-deps|classes|witness)\n",
                     Dump.c_str());
        return 1;
      }
    }
    else if (Arg == "--dump-ir")
      DumpIR = true;
    else if (Arg == "--time-passes")
      TimePasses = true;
    else if (Arg == "--stats")
      Stats = true;
    else
      Paths.push_back(Arg);
  }
  if (Paths.empty()) {
    std::fprintf(stderr,
                 "usage: minic <file.mc>... [--threads N] [--jobs N] "
                 "[--engine tree|bytecode|threads] "
                 "[--guard off|check|fallback] "
                 "[--deadline-ms N] [--mem-budget N] [--watchdog-ms N] "
                 "[--faults SPEC] [--no-ladder] "
                 "[--transform] [--audit-deps] "
                 "[--dump=points-to|static-deps|classes|witness] "
                 "[--dump-ir] [--time-passes] [--stats]\n");
    return 1;
  }
  const bool Multi = Paths.size() > 1;
  if (AuditDeps && !Transform) {
    std::fprintf(stderr, "--audit-deps requires --transform\n");
    return 1;
  }

  std::vector<InputProgram> Programs;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    ParseResult PR = parseMiniC(SS.str());
    if (!PR.ok()) {
      for (const Diagnostic &D : PR.Diags)
        std::fprintf(stderr, "%s: %s\n", Path.c_str(), D.str().c_str());
      return 1;
    }
    Programs.push_back({Path, std::move(PR.M), {}});
  }

  if (!Dump.empty()) {
    // Analysis dumps are a compilation mode of their own: print one
    // deterministic, diffable report per file on the UNTRANSFORMED module
    // and exit without executing anything.
    for (InputProgram &P : Programs) {
      if (Multi)
        std::printf("== %s ==\n", P.Path.c_str());
      CompilationSession S(*P.M);
      AnalysisManager &AM = S.analyses();
      if (Dump == "points-to") {
        std::printf("%s", AM.pointsTo().str().c_str());
        continue;
      }
      for (unsigned LoopId : S.candidateLoops()) {
        if (Dump == "static-deps") {
          const LoopDepGraph *G = AM.depGraph(LoopId, GraphSource::Static);
          if (G)
            std::printf("%s", G->str().c_str());
        } else if (Dump == "classes") {
          std::printf("loop %u\n", LoopId);
          const AccessClasses *C =
              AM.accessClasses(LoopId, GraphSource::Static);
          if (C)
            std::printf("%s", C->str().c_str());
        } else { // witness
          std::printf("%s", AM.staticWitness(LoopId)->str().c_str());
        }
      }
      for (const Diagnostic &D : S.diags().diagnostics())
        std::fprintf(stderr, "%s%s%s\n", Multi ? P.Path.c_str() : "",
                     Multi ? ": " : "", D.str().c_str());
    }
    return 0;
  }

  if (Transform) {
    std::vector<BatchUnit> Units;
    for (InputProgram &P : Programs) {
      BatchUnit U;
      U.M = P.M.get();
      U.Opts.AuditDeps = AuditDeps;
      Units.push_back(U);
    }
    unsigned AuditRefutedTotal = 0;
    std::vector<BatchUnitResult> Results =
        CompilationSession::compileBatch(Units, Jobs);
    for (size_t I = 0; I < Programs.size(); ++I) {
      const BatchUnitResult &B = Results[I];
      const char *Prefix = Multi ? Programs[I].Path.c_str() : "";
      const char *Sep = Multi ? ": " : "";
      for (const PipelineResult &R : B.Results) {
        if (!R.Ok) {
          for (const Diagnostic &D : R.Diags)
            if (D.Severity == DiagSeverity::Error)
              std::fprintf(stderr, "%s%s%s\n", Prefix, Sep, D.str().c_str());
          return 1;
        }
        if (AuditDeps) {
          // The audit is a report: show its findings (refuted and
          // unsupported claims are warnings) plus a one-line tally.
          for (const Diagnostic &D : R.Diags)
            if (D.Pass == "audit-deps" &&
                D.Severity == DiagSeverity::Warning)
              std::fprintf(stderr, "%s%s%s\n", Prefix, Sep, D.str().c_str());
          std::fprintf(stderr,
                       "%s%sloop %u: audit %u private class claim(s): "
                       "%u confirmed, %u unsupported, %u refuted\n",
                       Prefix, Sep, R.LoopId, R.AuditChecked,
                       R.AuditConfirmed, R.AuditUnsupported, R.AuditRefuted);
          AuditRefutedTotal += R.AuditRefuted;
        }
        std::fprintf(stderr, "%s%sloop %u: %s, %u structure(s) expanded\n",
                     Prefix, Sep, R.LoopId,
                     R.Plan.Kind == ParallelKind::DOALL      ? "DOALL"
                     : R.Plan.Kind == ParallelKind::DOACROSS ? "DOACROSS"
                                                             : "sequential",
                     R.Expansion.ExpandedObjects);
        if (R.Guard)
          Programs[I].Guards.push_back(R.Guard);
      }
      if (!B.Ok)
        return 1;
      if (TimePasses) {
        if (Multi)
          std::fprintf(stderr, "== %s ==\n", Programs[I].Path.c_str());
        std::fprintf(stderr, "%s", B.TimingReport.c_str());
      }
      if (Stats) {
        if (Multi)
          std::fprintf(stderr, "== %s ==\n", Programs[I].Path.c_str());
        std::fprintf(stderr, "%s", B.StatsReport.c_str());
      }
    }
    // A refuted claim means the dependence graph the transform just ran on
    // contradicts a static proof — fail before executing anything.
    if (AuditRefutedTotal)
      return 1;
  }

  int Exit = 0;
  for (InputProgram &P : Programs) {
    if (DumpIR)
      std::fprintf(stderr, "%s\n", printModule(*P.M).c_str());

    InterpOptions IO;
    IO.NumThreads = Threads;
    IO.Engine = Engine;
    IO.Guard = Guard;
    IO.GuardPlans = P.Guards;
    IO.Resilience = Resilience;
    DiagnosticEngine RunDiags;
    IO.GuardDiags = &RunDiags;
    IO.Resilience.Diags = &RunDiags;
    // runResilient retries an engine fault (watchdog fire, pool loss mid-run)
    // on the next rung down the ladder; resource breaches stay traps.
    RunResult R = runResilient(*P.M, IO, "main", &RunDiags);
    std::fputs(R.Output.c_str(), stdout);
    // Guard diagnostics (violations in check mode, fallback warnings).
    for (const Diagnostic &D : RunDiags.diagnostics())
      std::fprintf(stderr, "%s%s%s\n", Multi ? P.Path.c_str() : "",
                   Multi ? ": " : "", D.str().c_str());
    if (R.Trapped) {
      // Structured, attributed diagnostic instead of a bare string: the
      // message already carries [loop, iteration, thread] context when the
      // trap fired inside a loop.
      Diagnostic D;
      D.Severity = DiagSeverity::Error;
      D.Pass = "interp";
      D.LoopId = R.TrapLoopId >= 0 ? static_cast<unsigned>(R.TrapLoopId) : 0;
      D.Message = R.TrapMessage;
      std::fprintf(stderr, "%s%s%s\n", Multi ? P.Path.c_str() : "",
                   Multi ? ": " : "", D.str().c_str());
      return 1;
    }
    // In check mode a detected violation means the transformed program ran
    // on an unsound dependence graph: fail loudly. (Fallback mode already
    // recovered — the serial rerun's output is the correct one.)
    if (Guard == GuardMode::Check && !R.Violations.empty())
      return 1;
    std::fprintf(stderr,
                 "[%llu work cycles, %llu simulated, peak %llu bytes]\n",
                 (unsigned long long)R.WorkCycles,
                 (unsigned long long)R.SimTime,
                 (unsigned long long)R.PeakMemoryBytes);
    if (Exit == 0)
      Exit = (int)R.ExitCode;
  }
  return Exit;
}
