//===- quickstart.cpp - GDSE in five minutes --------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The smallest useful tour of the public API:
//   1. parse a MiniC program containing an @candidate loop,
//   2. run the whole pipeline (dependence profiling -> Definition 4/5
//      classification -> data structure expansion -> DOALL/DOACROSS
//      planning),
//   3. show the transformed program,
//   4. execute original and transformed versions and compare outputs and
//      simulated times.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interp.h"
#include "ir/IRPrinter.h"
#include "parallel/Pipeline.h"

#include <cstdio>

using namespace gdse;

// The paper's Figure 1 pattern: a heap buffer fully rewritten by every
// iteration. Without expansion the buffer's reuse creates loop-carried anti
// and output dependences that block parallelization.
static const char *Program = R"(
int main() {
  int m = 64;
  int* zptr = malloc(m * sizeof(int));
  long checksum = 0;
  @candidate for (int it = 0; it < 32; it++) {
    for (int k = 0; k < m; k++) { zptr[k] = it * 3 + k; }
    int b = 0;
    for (int k = 0; k < m; k++) { b += zptr[k]; }
    checksum += b * (it + 1);
  }
  print_int(checksum);
  free(zptr);
  return 0;
}
)";

int main() {
  // --- Original sequential execution. --------------------------------------
  std::unique_ptr<Module> Original = parseMiniCOrDie(Program, "quickstart");
  Interp SeqInterp(*Original);
  RunResult Seq = SeqInterp.run();
  std::printf("original output:     %s", Seq.Output.c_str());
  std::printf("original sim time:   %llu cycles\n\n",
              static_cast<unsigned long long>(Seq.SimTime));

  // --- Transform. -----------------------------------------------------------
  std::unique_ptr<Module> M = parseMiniCOrDie(Program, "quickstart");
  CompilationSession Session(*M);
  std::vector<unsigned> Candidates = Session.candidateLoops();
  PipelineResult PR = Session.compileLoop(Candidates.front());
  if (!PR.Ok) {
    for (const Diagnostic &D : PR.Diags)
      if (D.Severity == DiagSeverity::Error)
        std::fprintf(stderr, "%s\n", D.str().c_str());
    return 1;
  }
  std::printf("dependence graph:\n%s\n", PR.Graph.str().c_str());
  std::printf("expanded structures: %u\n", PR.Expansion.ExpandedObjects);
  std::printf("plan: %s with %u ordered region(s)\n\n",
              PR.Plan.Kind == ParallelKind::DOALL ? "DOALL" : "DOACROSS",
              PR.Plan.OrderedRegions);
  std::printf("--- transformed program ---\n%s\n", printModule(*M).c_str());

  // --- Parallel simulation at several core counts. --------------------------
  for (int N : {1, 2, 4, 8}) {
    InterpOptions IO;
    IO.NumThreads = N;
    Interp I(*M, IO);
    RunResult Par = I.run();
    bool Same = Par.Output == Seq.Output;
    std::printf("N=%d: sim time %10llu cycles  speedup %5.2fx  output %s\n",
                N, static_cast<unsigned long long>(Par.SimTime),
                static_cast<double>(Seq.SimTime) /
                    static_cast<double>(Par.SimTime),
                Same ? "identical" : "MISMATCH");
  }
  return 0;
}
