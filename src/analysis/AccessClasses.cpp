//===- AccessClasses.cpp - Definition 4/5: classes & privatization ---------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessClasses.h"

#include "support/Support.h"
#include "support/UnionFind.h"

#include <algorithm>

using namespace gdse;

AccessClasses AccessClasses::build(const LoopDepGraph &G) {
  AccessClasses Result;

  // Dense-index the vertex set.
  std::vector<AccessId> Verts = G.vertices();
  std::map<AccessId, uint32_t> DenseIndex;
  for (uint32_t I = 0; I != Verts.size(); ++I)
    DenseIndex[Verts[I]] = I;

  // Definition 4: union across loop-independent dependences.
  UnionFind UF(static_cast<uint32_t>(Verts.size()));
  for (const DepEdge &E : G.Edges) {
    if (E.Carried)
      continue;
    auto SI = DenseIndex.find(E.Src);
    auto DI = DenseIndex.find(E.Dst);
    if (SI != DenseIndex.end() && DI != DenseIndex.end())
      UF.unite(SI->second, DI->second);
  }

  // Materialize classes.
  std::map<uint32_t, unsigned> RootToClass;
  for (uint32_t I = 0; I != Verts.size(); ++I) {
    uint32_t Root = UF.find(I);
    auto [It, Inserted] =
        RootToClass.emplace(Root, static_cast<unsigned>(Result.Classes.size()));
    if (Inserted)
      Result.Classes.emplace_back();
    Result.Classes[It->second].Members.push_back(Verts[I]);
    Result.ClassIndex[Verts[I]] = It->second;
  }

  // Definition 5 verdicts.
  for (AccessClassInfo &C : Result.Classes) {
    for (AccessId Id : C.Members) {
      if (G.UpwardsExposedLoads.count(Id) ||
          G.DownwardsExposedStores.count(Id))
        C.HasExposedAccess = true;
      if (G.involvedInCarried(Id, DepKind::Flow))
        C.HasCarriedFlow = true;
      if (G.involvedInCarried(Id, DepKind::Anti) ||
          G.involvedInCarried(Id, DepKind::Output))
        C.HasCarriedAntiOrOutput = true;
    }
    C.Private =
        !C.HasExposedAccess && !C.HasCarriedFlow && C.HasCarriedAntiOrOutput;
    std::sort(C.Members.begin(), C.Members.end());
  }
  return Result;
}

unsigned AccessClasses::classOf(AccessId Id) const {
  auto It = ClassIndex.find(Id);
  assert(It != ClassIndex.end() && "access not in any class");
  return It->second;
}

std::set<AccessId> AccessClasses::privateAccesses() const {
  std::set<AccessId> Out;
  for (const AccessClassInfo &C : Classes)
    if (C.Private)
      Out.insert(C.Members.begin(), C.Members.end());
  return Out;
}

std::string AccessClasses::str() const {
  std::string Out;
  for (unsigned I = 0; I < Classes.size(); ++I) {
    const AccessClassInfo &C = Classes[I];
    Out += formatString("class %u%s", I, C.Private ? " private" : "");
    if (C.HasExposedAccess)
      Out += " exposed";
    if (C.HasCarriedFlow)
      Out += " carried-flow";
    if (C.HasCarriedAntiOrOutput)
      Out += " carried-anti-output";
    Out += " members";
    for (AccessId Id : C.Members)
      Out += formatString(" %u", Id);
    Out += "\n";
  }
  return Out;
}

AccessBreakdown gdse::computeAccessBreakdown(const LoopDepGraph &G,
                                             const AccessClasses &Classes) {
  AccessBreakdown B;
  for (const auto &[Id, Count] : G.DynCount) {
    if (!G.involvedInAnyCarried(Id))
      B.FreeOfCarried += Count;
    else if (Classes.isPrivate(Id))
      B.Expandable += Count;
    else
      B.WithCarried += Count;
  }
  return B;
}
