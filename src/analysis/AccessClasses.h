//===- AccessClasses.h - Definition 4/5: classes & privatization -*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access classes (Definition 4) and thread-private classification
/// (Definition 5).
///
/// A loop-independent dependence is treated as an equivalence relation over
/// memory accesses; its transitive closure partitions the loop's accesses
/// into classes. This is what makes privatization sound in the presence of
/// the paper's `if (c) p=&a else p=&b; *p=0; if (c) a[i]=*p;` example:
/// redirecting only one of the two `*p` occurrences would break the
/// loop-independent flow between them, so the whole class is privatized or
/// none of it is.
///
/// A class is thread-private (its accesses may be redirected to per-thread
/// copies) iff:
///   1. no member is an upwards-exposed load or downwards-exposed store,
///   2. no member is involved in any loop-carried flow dependence,
///   3. at least one member is involved in a loop-carried anti or output
///      dependence.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_ACCESSCLASSES_H
#define GDSE_ANALYSIS_ACCESSCLASSES_H

#include "analysis/DepGraph.h"

#include <map>
#include <set>
#include <vector>

namespace gdse {

/// Why a class failed (or passed) Definition 5 — kept for diagnostics and
/// for the Figure 8 breakdown.
struct AccessClassInfo {
  std::vector<AccessId> Members;
  bool Private = false;
  bool HasExposedAccess = false;     ///< violates condition 1
  bool HasCarriedFlow = false;       ///< violates condition 2
  bool HasCarriedAntiOrOutput = false; ///< satisfies condition 3
};

/// The partition of one loop's accesses plus the Definition 5 verdicts.
class AccessClasses {
public:
  /// Builds the partition and classifies every class.
  static AccessClasses build(const LoopDepGraph &G);

  const std::vector<AccessClassInfo> &classes() const { return Classes; }

  /// Index of the class containing \p Id (asserts the access is known).
  unsigned classOf(AccessId Id) const;
  bool contains(AccessId Id) const { return ClassIndex.count(Id) != 0; }

  /// True when \p Id belongs to a thread-private class (Definition 5).
  bool isPrivate(AccessId Id) const {
    auto It = ClassIndex.find(Id);
    return It != ClassIndex.end() && Classes[It->second].Private;
  }

  /// All accesses of thread-private classes.
  std::set<AccessId> privateAccesses() const;

  /// Deterministic, diffable dump (the `--dump=classes` printer): one line
  /// per class with its Definition 5 verdict flags and member ids.
  std::string str() const;

private:
  std::vector<AccessClassInfo> Classes;
  std::map<AccessId, unsigned> ClassIndex;
};

/// Figure 8's three dynamic-access categories.
enum class AccessCategory : uint8_t {
  FreeOfCarriedDep, ///< not involved in any loop-carried dependence
  Expandable,       ///< thread-private per Definition 5
  WithCarriedDep,   ///< carried-involved but not privatizable
};

/// Per-category dynamic access counts for one loop (Figure 8 weights).
struct AccessBreakdown {
  uint64_t FreeOfCarried = 0;
  uint64_t Expandable = 0;
  uint64_t WithCarried = 0;

  uint64_t total() const { return FreeOfCarried + Expandable + WithCarried; }
};

/// Categorizes each access of \p G and sums dynamic counts per category.
AccessBreakdown computeAccessBreakdown(const LoopDepGraph &G,
                                       const AccessClasses &Classes);

} // namespace gdse

#endif // GDSE_ANALYSIS_ACCESSCLASSES_H
