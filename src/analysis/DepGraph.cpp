//===- DepGraph.cpp - Loop-level data dependence graph ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"

#include "support/Support.h"

#include <sstream>

using namespace gdse;

const char *gdse::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  gdse_unreachable("unknown dep kind");
}

bool LoopDepGraph::involvedInCarried(AccessId Id, DepKind K) const {
  for (const DepEdge &E : Edges)
    if (E.Carried && E.Kind == K && (E.Src == Id || E.Dst == Id))
      return true;
  return false;
}

bool LoopDepGraph::involvedInAnyCarried(AccessId Id) const {
  for (const DepEdge &E : Edges)
    if (E.Carried && (E.Src == Id || E.Dst == Id))
      return true;
  return false;
}

std::string LoopDepGraph::str() const {
  std::ostringstream OS;
  OS << "loop " << LoopId << ": " << Invocations << " invocation(s), "
     << Iterations << " iteration(s), " << DynCount.size() << " access(es)\n";
  for (const DepEdge &E : Edges)
    OS << "  #" << E.Src << " -> #" << E.Dst << " " << depKindName(E.Kind)
       << (E.Carried ? " carried" : " independent") << "\n";
  for (AccessId Id : UpwardsExposedLoads)
    OS << "  #" << Id << " upwards-exposed\n";
  for (AccessId Id : DownwardsExposedStores)
    OS << "  #" << Id << " downwards-exposed\n";
  if (HasUnmodeled)
    OS << "  (has unmodeled bulk accesses)\n";
  return OS.str();
}
