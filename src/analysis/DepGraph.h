//===- DepGraph.h - Loop-level data dependence graph ------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop-level data dependence graph of Definition 1: vertices are static
/// memory accesses (AccessIds) that executed inside the target loop, edges
/// are flow/anti/output dependences observed between them, each either
/// loop-independent or loop-carried. Also records the two per-access
/// properties of Definitions 2-3 (upwards-exposed loads, downwards-exposed
/// stores) and the per-access dynamic execution counts used to weight the
/// Figure 8 breakdown.
///
/// The paper obtains this graph from dependence profiling with programmer
/// verification (§2); src/profile/DepProfiler.h is our profiler.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_DEPGRAPH_H
#define GDSE_ANALYSIS_DEPGRAPH_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <vector>

namespace gdse {

enum class DepKind : uint8_t { Flow, Anti, Output };

const char *depKindName(DepKind K);

struct DepEdge {
  AccessId Src = InvalidAccessId;
  AccessId Dst = InvalidAccessId;
  DepKind Kind = DepKind::Flow;
  bool Carried = false;

  auto operator<=>(const DepEdge &) const = default;
};

/// Dependence graph of one loop (one profiling target).
class LoopDepGraph {
public:
  unsigned LoopId = 0;
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;

  std::set<DepEdge> Edges;
  std::set<AccessId> UpwardsExposedLoads;
  std::set<AccessId> DownwardsExposedStores;
  /// Dynamic execution count of each access while inside the loop. The key
  /// set is the vertex set V of Definition 1.
  std::map<AccessId, uint64_t> DynCount;
  /// True when the loop executed an access the graph cannot model
  /// (memcpy/memset/realloc bulk effects inside the loop); the planner must
  /// then refuse to parallelize.
  bool HasUnmodeled = false;

  void addEdge(AccessId Src, AccessId Dst, DepKind K, bool Carried) {
    if (Src == InvalidAccessId || Dst == InvalidAccessId)
      return;
    Edges.insert(DepEdge{Src, Dst, K, Carried});
  }

  bool hasEdge(AccessId Src, AccessId Dst, DepKind K, bool Carried) const {
    return Edges.count(DepEdge{Src, Dst, K, Carried}) != 0;
  }

  /// All accesses observed in the loop, ascending.
  std::vector<AccessId> vertices() const {
    std::vector<AccessId> V;
    V.reserve(DynCount.size());
    for (const auto &[Id, Count] : DynCount)
      V.push_back(Id);
    return V;
  }

  /// True when \p Id is an endpoint of any loop-carried edge of kind \p K.
  bool involvedInCarried(AccessId Id, DepKind K) const;
  /// True when \p Id is an endpoint of any loop-carried edge at all.
  bool involvedInAnyCarried(AccessId Id) const;

  /// Human-readable dump for tests and debugging.
  std::string str() const;
};

} // namespace gdse

#endif // GDSE_ANALYSIS_DEPGRAPH_H
