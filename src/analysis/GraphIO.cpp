//===- GraphIO.cpp - Dependence graph serialization & verification ---------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/GraphIO.h"

#include "support/Support.h"

#include <algorithm>
#include <sstream>

using namespace gdse;

std::string gdse::serializeDepGraph(const LoopDepGraph &G) {
  std::ostringstream OS;
  OS << "loop " << G.LoopId << "\n";
  OS << "iterations " << G.Iterations << " invocations " << G.Invocations
     << "\n";
  for (const auto &[Id, Count] : G.DynCount)
    OS << "count " << Id << " " << Count << "\n";
  for (const DepEdge &E : G.Edges)
    OS << "edge " << E.Src << " " << E.Dst << " " << depKindName(E.Kind)
       << " " << (E.Carried ? "carried" : "independent") << "\n";
  for (AccessId Id : G.UpwardsExposedLoads)
    OS << "upexposed " << Id << "\n";
  for (AccessId Id : G.DownwardsExposedStores)
    OS << "downexposed " << Id << "\n";
  if (G.HasUnmodeled)
    OS << "unmodeled\n";
  return OS.str();
}

bool gdse::parseDepGraph(const std::string &Text, LoopDepGraph &G,
                         std::string &Error) {
  G = LoopDepGraph();
  std::istringstream IS(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto fail = [&](const std::string &Msg) {
    Error = formatString("line %u: %s", LineNo, Msg.c_str());
    return false;
  };
  while (std::getline(IS, Line)) {
    ++LineNo;
    // Strip comments and whitespace-only lines.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::istringstream LS(Line);
    std::string Kw;
    if (!(LS >> Kw))
      continue;
    if (Kw == "loop") {
      if (!(LS >> G.LoopId))
        return fail("expected loop id");
    } else if (Kw == "iterations") {
      std::string Inv;
      if (!(LS >> G.Iterations >> Inv >> G.Invocations) ||
          Inv != "invocations")
        return fail("expected 'iterations <n> invocations <m>'");
    } else if (Kw == "count") {
      AccessId Id;
      uint64_t Count;
      if (!(LS >> Id >> Count))
        return fail("expected 'count <access> <n>'");
      G.DynCount[Id] = Count;
    } else if (Kw == "edge") {
      AccessId Src, Dst;
      std::string Kind, Carried;
      if (!(LS >> Src >> Dst >> Kind >> Carried))
        return fail("expected 'edge <src> <dst> <kind> <carried>'");
      DepKind K;
      if (Kind == "flow")
        K = DepKind::Flow;
      else if (Kind == "anti")
        K = DepKind::Anti;
      else if (Kind == "output")
        K = DepKind::Output;
      else
        return fail("unknown dependence kind '" + Kind + "'");
      bool C;
      if (Carried == "carried")
        C = true;
      else if (Carried == "independent")
        C = false;
      else
        return fail("expected 'carried' or 'independent'");
      G.addEdge(Src, Dst, K, C);
      // Ensure the endpoints exist as vertices even without counts.
      G.DynCount.emplace(Src, 0);
      G.DynCount.emplace(Dst, 0);
    } else if (Kw == "upexposed") {
      AccessId Id;
      if (!(LS >> Id))
        return fail("expected access id");
      G.UpwardsExposedLoads.insert(Id);
    } else if (Kw == "downexposed") {
      AccessId Id;
      if (!(LS >> Id))
        return fail("expected access id");
      G.DownwardsExposedStores.insert(Id);
    } else if (Kw == "unmodeled") {
      G.HasUnmodeled = true;
    } else {
      return fail("unknown record '" + Kw + "'");
    }
  }
  if (G.LoopId == 0)
    return fail("missing 'loop <id>' record");
  return true;
}

GraphDiff gdse::diffDepGraphs(const LoopDepGraph &Baseline,
                              const LoopDepGraph &Observed) {
  GraphDiff D;
  std::set_difference(Baseline.Edges.begin(), Baseline.Edges.end(),
                      Observed.Edges.begin(), Observed.Edges.end(),
                      std::back_inserter(D.EdgesOnlyInBaseline));
  std::set_difference(Observed.Edges.begin(), Observed.Edges.end(),
                      Baseline.Edges.begin(), Baseline.Edges.end(),
                      std::back_inserter(D.EdgesOnlyInObserved));

  auto exposureSet = [](const LoopDepGraph &G) {
    std::set<AccessId> S;
    S.insert(G.UpwardsExposedLoads.begin(), G.UpwardsExposedLoads.end());
    S.insert(G.DownwardsExposedStores.begin(), G.DownwardsExposedStores.end());
    return S;
  };
  std::set<AccessId> BE = exposureSet(Baseline), OE = exposureSet(Observed);
  std::set_difference(BE.begin(), BE.end(), OE.begin(), OE.end(),
                      std::back_inserter(D.ExposureOnlyInBaseline));
  std::set_difference(OE.begin(), OE.end(), BE.begin(), BE.end(),
                      std::back_inserter(D.ExposureOnlyInObserved));
  D.UnmodeledChanged = Baseline.HasUnmodeled != Observed.HasUnmodeled;
  return D;
}

std::string GraphDiff::str() const {
  if (identical())
    return "graphs identical\n";
  std::ostringstream OS;
  for (const DepEdge &E : EdgesOnlyInBaseline)
    OS << "- edge #" << E.Src << " -> #" << E.Dst << " " << depKindName(E.Kind)
       << (E.Carried ? " carried" : " independent") << "\n";
  for (const DepEdge &E : EdgesOnlyInObserved)
    OS << "+ edge #" << E.Src << " -> #" << E.Dst << " " << depKindName(E.Kind)
       << (E.Carried ? " carried" : " independent") << "\n";
  for (AccessId Id : ExposureOnlyInBaseline)
    OS << "- exposed #" << Id << "\n";
  for (AccessId Id : ExposureOnlyInObserved)
    OS << "+ exposed #" << Id << "\n";
  if (UnmodeledChanged)
    OS << "! unmodeled flag differs\n";
  return OS.str();
}
