//===- GraphIO.h - Dependence graph serialization & verification -*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's workflow (Fig. 7, §2, §6) assumes the loop-level dependence
/// graph is *verified by the programmer* before the transformation trusts
/// it. This header provides that interaction surface:
///
///  - a stable text format for LoopDepGraph (dump after profiling, check
///    into the repository, edit, reload);
///  - a structural diff between two graphs (e.g. a freshly profiled one and
///    the programmer-verified one), listing edges/exposures that appeared
///    or disappeared, so re-verification effort is proportional to change.
///
/// Format, one record per line ('#' comments allowed):
///
///   loop <id>
///   iterations <n> invocations <m>
///   count <access> <dyncount>
///   edge <src> <dst> flow|anti|output carried|independent
///   upexposed <access>
///   downexposed <access>
///   unmodeled
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_GRAPHIO_H
#define GDSE_ANALYSIS_GRAPHIO_H

#include "analysis/DepGraph.h"

#include <string>

namespace gdse {

/// Renders \p G in the stable text format (deterministic ordering).
std::string serializeDepGraph(const LoopDepGraph &G);

/// Parses the text format. Returns false and fills \p Error on malformed
/// input; \p G is default-initialized first.
bool parseDepGraph(const std::string &Text, LoopDepGraph &G,
                   std::string &Error);

/// Differences between a baseline graph (e.g. the programmer-verified one)
/// and a newly observed graph (e.g. a fresh profile).
struct GraphDiff {
  std::vector<DepEdge> EdgesOnlyInBaseline;
  std::vector<DepEdge> EdgesOnlyInObserved;
  std::vector<AccessId> ExposureOnlyInBaseline; ///< up/down merged
  std::vector<AccessId> ExposureOnlyInObserved;
  bool UnmodeledChanged = false;

  bool identical() const {
    return EdgesOnlyInBaseline.empty() && EdgesOnlyInObserved.empty() &&
           ExposureOnlyInBaseline.empty() && ExposureOnlyInObserved.empty() &&
           !UnmodeledChanged;
  }
  /// True when \p Observed needs no new verification: every observed edge
  /// and exposure already exists in the baseline (the baseline may be a
  /// conservative superset).
  bool observedCoveredByBaseline() const {
    return EdgesOnlyInObserved.empty() && ExposureOnlyInObserved.empty() &&
           !UnmodeledChanged;
  }
  std::string str() const;
};

GraphDiff diffDepGraphs(const LoopDepGraph &Baseline,
                        const LoopDepGraph &Observed);

} // namespace gdse

#endif // GDSE_ANALYSIS_GRAPHIO_H
