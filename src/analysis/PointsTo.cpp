//===- PointsTo.cpp - Inclusion-based points-to analysis -------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <deque>

using namespace gdse;

std::string MemObject::str() const {
  if (K == Kind::Variable)
    return "var:" + Var->getName();
  return formatString("heap:site%u", SiteId);
}

namespace {

/// Node ids in the constraint graph:
///   [0, NumObjects)                 content node of object i
///   [NumObjects, +NumExprs)         expression value nodes
///   [.., +NumFunctions)             function return nodes
class ConstraintGraph {
public:
  uint32_t addNode() {
    Pts.emplace_back();
    Succs.emplace_back();
    LoadCons.emplace_back();
    StoreCons.emplace_back();
    return static_cast<uint32_t>(Pts.size() - 1);
  }

  void addCopy(uint32_t From, uint32_t To) {
    if (From == To)
      return;
    if (Succs[From].insert(To).second && !Pts[From].empty())
      Work.push_back(From);
  }

  void addPointee(uint32_t Node, uint32_t Obj) {
    if (Pts[Node].insert(Obj).second)
      Work.push_back(Node);
  }

  /// dst ⊇ content(o) for each o in pts(src)
  void addLoad(uint32_t Src, uint32_t Dst) {
    LoadCons[Src].insert(Dst);
    if (!Pts[Src].empty())
      Work.push_back(Src);
  }

  /// content(o) ⊇ src for each o in pts(dstPtr)
  void addStore(uint32_t DstPtr, uint32_t Src) {
    StoreCons[DstPtr].insert(Src);
    if (!Pts[DstPtr].empty())
      Work.push_back(DstPtr);
  }

  /// Worklist solve to fixpoint. ContentNodeOf maps object id -> node id
  /// (identity here, objects occupy the first node indices).
  void solve() {
    while (!Work.empty()) {
      uint32_t N = Work.front();
      Work.pop_front();
      // Resolve complex constraints against the current pts set.
      for (uint32_t Dst : LoadCons[N])
        for (uint32_t Obj : Pts[N])
          addCopy(Obj, Dst); // content node id == object id
      for (uint32_t Src : StoreCons[N])
        for (uint32_t Obj : Pts[N])
          addCopy(Src, Obj);
      // Propagate along copy edges.
      for (uint32_t Succ : Succs[N]) {
        bool Changed = false;
        for (uint32_t Obj : Pts[N])
          if (Pts[Succ].insert(Obj).second)
            Changed = true;
        if (Changed)
          Work.push_back(Succ);
      }
    }
  }

  std::vector<std::set<uint32_t>> Pts;
  std::vector<std::set<uint32_t>> Succs;
  std::vector<std::set<uint32_t>> LoadCons;
  std::vector<std::set<uint32_t>> StoreCons;
  std::deque<uint32_t> Work;
};

} // namespace

namespace gdse {

class PointsToBuilder {
public:
  explicit PointsToBuilder(Module &M) : M(M) {}

  PointsTo run() {
    // Objects: all variables first, then heap sites discovered on the walk.
    for (uint32_t Id = 1; Id <= M.getNumVarDecls(); ++Id)
      varObject(M.getVarDecl(Id));
    for (Function *F : M.getFunctions())
      walkFunctionSites(F);

    // Content nodes occupy [0, NumObjects).
    for (uint32_t I = 0; I != Result.Objects.size(); ++I)
      G.addNode();

    for (Function *F : M.getFunctions())
      RetNode[F] = G.addNode();

    for (Function *F : M.getFunctions())
      if (F->getBody())
        collectStmt(F, F->getBody());
    G.solve();

    // Publish.
    Result.ContentPts.resize(Result.Objects.size());
    for (uint32_t I = 0; I != Result.Objects.size(); ++I)
      Result.ContentPts[I] = G.Pts[I];
    for (auto &[E, N] : ExprNode)
      Result.ExprPts[E] = G.Pts[N];
    return std::move(Result);
  }

private:
  uint32_t varObject(const VarDecl *D) {
    auto It = Result.VarObj.find(D);
    if (It != Result.VarObj.end())
      return It->second;
    MemObject O;
    O.K = MemObject::Kind::Variable;
    O.Var = const_cast<VarDecl *>(D);
    uint32_t Id = static_cast<uint32_t>(Result.Objects.size());
    Result.Objects.push_back(O);
    Result.VarObj[D] = Id;
    return Id;
  }

  uint32_t siteObject(CallExpr *C) {
    auto It = Result.SiteObj.find(C->getSiteId());
    if (It != Result.SiteObj.end())
      return It->second;
    MemObject O;
    O.K = MemObject::Kind::HeapSite;
    O.SiteId = C->getSiteId();
    O.Site = C;
    uint32_t Id = static_cast<uint32_t>(Result.Objects.size());
    Result.Objects.push_back(O);
    Result.SiteObj[C->getSiteId()] = Id;
    return Id;
  }

  void walkFunctionSites(Function *F) {
    walkExprs(F, [&](Expr *E) {
      if (auto *C = dyn_cast<CallExpr>(E))
        if (C->isBuiltin() && isAllocationBuiltin(C->getBuiltin()))
          siteObject(C);
    });
  }

  uint32_t exprNode(const Expr *E) {
    auto It = ExprNode.find(E);
    if (It != ExprNode.end())
      return It->second;
    uint32_t N = G.addNode();
    ExprNode[E] = N;
    return N;
  }

  /// Returns the node holding the pointer *value* of r-value \p E, emitting
  /// the constraints that feed it.
  uint32_t valueNode(const Expr *E) {
    uint32_t N = exprNode(E);
    if (!Visited.insert(E).second)
      return N;
    switch (E->getKind()) {
    case Expr::Kind::Load: {
      const Expr *LV = cast<LoadExpr>(E)->getLocation();
      emitLoadFromLValue(LV, N);
      return N;
    }
    case Expr::Kind::AddrOf:
      emitAddressOfLValue(cast<AddrOfExpr>(E)->getLocation(), N);
      return N;
    case Expr::Kind::Decay:
      emitAddressOfLValue(cast<DecayExpr>(E)->getArrayLocation(), N);
      return N;
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (C->isBuiltin()) {
        if (isAllocationBuiltin(C->getBuiltin()))
          G.addPointee(N, siteObject(const_cast<CallExpr *>(C)));
        // realloc may also return (a copy of) the original object's data,
        // but as a fresh object; memcpy returns dst.
        if (C->getBuiltin() == Builtin::MemcpyFn ||
            C->getBuiltin() == Builtin::MemsetFn)
          G.addCopy(valueNode(C->getArg(0)), N);
        if (C->getBuiltin() == Builtin::RtPrivPtr)
          G.addCopy(valueNode(C->getArg(0)), N);
        // Arguments may still carry pointers (e.g. free(p)); visit them.
        for (const Expr *A : C->getArgs())
          valueNode(A);
        return N;
      }
      Function *Callee = C->getCallee();
      // Bind arguments to parameter variables.
      for (unsigned I = 0, NumP = Callee->getFunctionType()->getNumParams();
           I != NumP && I != C->getNumArgs(); ++I) {
        uint32_t ArgN = valueNode(C->getArg(I));
        uint32_t ParamObj = varObject(Callee->getParam(I));
        G.addCopy(ArgN, ParamObj); // store into the parameter's content
      }
      G.addCopy(RetNode.at(Callee), N);
      return N;
    }
    case Expr::Kind::Cast:
      G.addCopy(valueNode(cast<CastExpr>(E)->getSub()), N);
      return N;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Pointer arithmetic keeps pointing into the same objects.
      G.addCopy(valueNode(B->getLHS()), N);
      G.addCopy(valueNode(B->getRHS()), N);
      return N;
    }
    case Expr::Kind::Unary:
      G.addCopy(valueNode(cast<UnaryExpr>(E)->getSub()), N);
      return N;
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      valueNode(C->getCond());
      G.addCopy(valueNode(C->getThen()), N);
      G.addCopy(valueNode(C->getElse()), N);
      return N;
    }
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::SizeofType:
    case Expr::Kind::ThreadId:
    case Expr::Kind::NumThreads:
      return N;
    case Expr::Kind::VarRef:
    case Expr::Kind::Deref:
    case Expr::Kind::ArrayIndex:
    case Expr::Kind::FieldAccess:
      // Bare l-values only occur under Load/AddrOf/Decay/Assign.
      return N;
    }
    gdse_unreachable("unknown expr kind");
  }

  /// Emits constraints for reading a (pointer) value out of l-value \p LV
  /// into node \p Dst.
  void emitLoadFromLValue(const Expr *LV, uint32_t Dst) {
    switch (LV->getKind()) {
    case Expr::Kind::VarRef:
      // Load from variable storage: copy its content node.
      G.addCopy(varObject(cast<VarRefExpr>(LV)->getDecl()), Dst);
      return;
    case Expr::Kind::Deref:
      G.addLoad(valueNode(cast<DerefExpr>(LV)->getPtr()), Dst);
      return;
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(LV);
      valueNode(A->getIndex());
      G.addLoad(valueNode(A->getBase()), Dst);
      return;
    }
    case Expr::Kind::FieldAccess:
      // Field-insensitive: load from the base object.
      emitLoadFromLValue(cast<FieldAccessExpr>(LV)->getBase(), Dst);
      return;
    default:
      gdse_unreachable("not an l-value");
    }
  }

  /// Emits constraints making node \p Dst hold the address of l-value \p LV.
  void emitAddressOfLValue(const Expr *LV, uint32_t Dst) {
    switch (LV->getKind()) {
    case Expr::Kind::VarRef:
      G.addPointee(Dst, varObject(cast<VarRefExpr>(LV)->getDecl()));
      return;
    case Expr::Kind::Deref:
      // &*p aliases p.
      G.addCopy(valueNode(cast<DerefExpr>(LV)->getPtr()), Dst);
      return;
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(LV);
      valueNode(A->getIndex());
      G.addCopy(valueNode(A->getBase()), Dst);
      return;
    }
    case Expr::Kind::FieldAccess:
      emitAddressOfLValue(cast<FieldAccessExpr>(LV)->getBase(), Dst);
      return;
    default:
      gdse_unreachable("not an l-value");
    }
  }

  /// Emits constraints for storing node \p Src into l-value \p LV.
  void emitStoreToLValue(const Expr *LV, uint32_t Src) {
    switch (LV->getKind()) {
    case Expr::Kind::VarRef:
      G.addCopy(Src, varObject(cast<VarRefExpr>(LV)->getDecl()));
      return;
    case Expr::Kind::Deref:
      G.addStore(valueNode(cast<DerefExpr>(LV)->getPtr()), Src);
      return;
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(LV);
      valueNode(A->getIndex());
      G.addStore(valueNode(A->getBase()), Src);
      return;
    }
    case Expr::Kind::FieldAccess:
      emitStoreToLValue(cast<FieldAccessExpr>(LV)->getBase(), Src);
      return;
    default:
      gdse_unreachable("not an l-value");
    }
  }

  void collectStmt(Function *F, Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        collectStmt(F, Sub);
      return;
    case Stmt::Kind::ExprStmt:
      valueNode(cast<ExprStmt>(S)->getExpr());
      return;
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(S);
      if (A->getLHS()->getType()->isAggregate()) {
        // Aggregate copy: content of dst objects absorbs content of src
        // objects. RHS is a LoadExpr of the source l-value.
        uint32_t Tmp = exprNode(A->getRHS());
        if (auto *RL = dyn_cast<LoadExpr>(A->getRHS()))
          emitLoadFromLValue(RL->getLocation(), Tmp);
        emitStoreToLValue(A->getLHS(), Tmp);
        return;
      }
      uint32_t Src = valueNode(A->getRHS());
      emitStoreToLValue(A->getLHS(), Src);
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      valueNode(I->getCond());
      collectStmt(F, I->getThen());
      if (I->getElse())
        collectStmt(F, I->getElse());
      return;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      valueNode(W->getCond());
      collectStmt(F, W->getBody());
      return;
    }
    case Stmt::Kind::For: {
      auto *FS = cast<ForStmt>(S);
      valueNode(FS->getInit());
      valueNode(FS->getLimit());
      valueNode(FS->getStep());
      collectStmt(F, FS->getBody());
      return;
    }
    case Stmt::Kind::Return: {
      auto *R = cast<ReturnStmt>(S);
      if (R->getValue())
        G.addCopy(valueNode(R->getValue()), RetNode.at(F));
      return;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return;
    case Stmt::Kind::Ordered:
      collectStmt(F, cast<OrderedStmt>(S)->getBody());
      return;
    }
    gdse_unreachable("unknown stmt kind");
  }

  Module &M;
  PointsTo Result;
  ConstraintGraph G;
  std::map<const Expr *, uint32_t> ExprNode;
  std::map<const Function *, uint32_t> RetNode;
  std::set<const Expr *> Visited;
};

} // namespace gdse

PointsTo PointsTo::compute(Module &M) { return PointsToBuilder(M).run(); }

const std::set<uint32_t> &PointsTo::valueObjects(const Expr *E) const {
  static const std::set<uint32_t> Empty;
  auto It = ExprPts.find(E);
  return It == ExprPts.end() ? Empty : It->second;
}

std::set<uint32_t> PointsTo::lvalueRootObjects(const Expr *LV) const {
  switch (LV->getKind()) {
  case Expr::Kind::VarRef:
    return {objectOfVar(cast<VarRefExpr>(LV)->getDecl())};
  case Expr::Kind::Deref:
    return valueObjects(cast<DerefExpr>(LV)->getPtr());
  case Expr::Kind::ArrayIndex:
    return valueObjects(cast<ArrayIndexExpr>(LV)->getBase());
  case Expr::Kind::FieldAccess:
    return lvalueRootObjects(cast<FieldAccessExpr>(LV)->getBase());
  default:
    gdse_unreachable("not an l-value");
  }
}

const std::set<uint32_t> &PointsTo::contentObjects(const VarDecl *D) const {
  static const std::set<uint32_t> Empty;
  auto It = VarObj.find(D);
  if (It == VarObj.end())
    return Empty;
  return ContentPts[It->second];
}

uint32_t PointsTo::objectOfVar(const VarDecl *D) const {
  auto It = VarObj.find(D);
  assert(It != VarObj.end() && "variable without object");
  return It->second;
}

uint32_t PointsTo::objectOfSite(uint32_t SiteId) const {
  auto It = SiteObj.find(SiteId);
  assert(It != SiteObj.end() && "unknown allocation site");
  return It->second;
}

std::string PointsTo::str() const {
  std::string Out;
  for (uint32_t Id = 0; Id < Objects.size(); ++Id) {
    Out += formatString("object %u %s", Id, Objects[Id].str().c_str());
    const std::set<uint32_t> &Pts = ContentPts[Id];
    if (!Pts.empty()) {
      Out += " ->";
      for (uint32_t O : Pts)
        Out += formatString(" %u", O);
    }
    Out += "\n";
  }
  return Out;
}
