//===- PointsTo.h - Inclusion-based points-to analysis ----------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program, flow- and context-insensitive, field-insensitive
/// inclusion-based (Andersen-style) points-to analysis.
///
/// The expansion pipeline uses it for the paper's §3.4 memory-overhead
/// optimization: "we perform alias analysis in the compiler to find out
/// whether a data structure gets referenced by private memory accesses ...
/// If not, the data structure will not be expanded", and symmetrically to
/// decide which pointers must be promoted to fat pointers (only those that
/// may reference an expanded structure).
///
/// Abstract objects: one per variable (its storage) and one per heap
/// allocation site (malloc/calloc/realloc call). Each object has a single
/// content node summarizing every pointer stored anywhere inside it
/// (field-insensitive); pointer values reaching an expression are summarized
/// per expression node.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_POINTSTO_H
#define GDSE_ANALYSIS_POINTSTO_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <string>

namespace gdse {

/// An abstract memory object.
struct MemObject {
  enum class Kind : uint8_t { Variable, HeapSite };
  Kind K = Kind::Variable;
  /// Valid when K == Variable.
  VarDecl *Var = nullptr;
  /// Valid when K == HeapSite: the allocation CallExpr's site id.
  uint32_t SiteId = 0;
  /// The allocation call itself (HeapSite only).
  CallExpr *Site = nullptr;

  std::string str() const;
};

/// Result of the analysis. Object ids are dense indices into objects().
class PointsTo {
public:
  /// Runs the analysis over every function in \p M.
  static PointsTo compute(Module &M);

  const std::vector<MemObject> &objects() const { return Objects; }
  const MemObject &object(uint32_t Id) const {
    assert(Id < Objects.size() && "bad object id");
    return Objects[Id];
  }

  /// Objects the pointer value produced by \p E may point to. \p E must be
  /// an expression that occurred in the analyzed module.
  const std::set<uint32_t> &valueObjects(const Expr *E) const;

  /// Objects in which the storage denoted by l-value \p LV may reside
  /// (e.g. for `p->next` this is everything `p` may point to; for a
  /// variable reference it is that variable's object).
  std::set<uint32_t> lvalueRootObjects(const Expr *LV) const;

  /// Objects that pointers stored inside variable \p D may point to.
  const std::set<uint32_t> &contentObjects(const VarDecl *D) const;

  /// Object id of variable \p D.
  uint32_t objectOfVar(const VarDecl *D) const;
  /// Object id of heap site \p SiteId (asserts it exists).
  uint32_t objectOfSite(uint32_t SiteId) const;
  /// True when \p SiteId is a known allocation site.
  bool hasSite(uint32_t SiteId) const {
    return SiteObj.count(SiteId) != 0;
  }

  /// Deterministic, diffable dump (the `--dump=points-to` printer): one
  /// line per object, plus each object's content points-to set.
  std::string str() const;

private:
  std::vector<MemObject> Objects;
  std::map<const VarDecl *, uint32_t> VarObj;
  std::map<uint32_t, uint32_t> SiteObj;
  /// Final points-to sets of expression value nodes.
  std::map<const Expr *, std::set<uint32_t>> ExprPts;
  /// Final points-to sets of object content nodes (indexed by object id).
  std::vector<std::set<uint32_t>> ContentPts;

  friend class PointsToBuilder;
};

} // namespace gdse

#endif // GDSE_ANALYSIS_POINTSTO_H
