//===- StaticDeps.cpp - Conservative static dependence analysis ------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticDeps.h"

#include "ir/IRVisitor.h"

#include <map>

using namespace gdse;

namespace {

/// Functions transitively callable from statement tree \p Root.
std::set<Function *> reachableCallees(Stmt *Root) {
  std::set<Function *> Out;
  std::vector<Stmt *> Work = {Root};
  auto scanExpr = [&Out](Expr *E) {
    walkExpr(E, [&Out](Expr *Sub) {
      if (auto *C = dyn_cast<CallExpr>(Sub))
        if (!C->isBuiltin() && C->getCallee())
          Out.insert(C->getCallee());
    });
  };
  walkStmts(Root, [&](Stmt *S) {
    forEachTopLevelExpr(S, scanExpr);
  });
  // Transitive closure.
  bool Grew = true;
  while (Grew) {
    Grew = false;
    std::set<Function *> Snapshot = Out;
    for (Function *F : Snapshot) {
      if (!F->getBody())
        continue;
      size_t Before = Out.size();
      walkStmts(F->getBody(), [&](Stmt *S) {
        forEachTopLevelExpr(S, scanExpr);
      });
      if (Out.size() != Before)
        Grew = true;
    }
  }
  return Out;
}

/// True when the object is a heap site whose allocation call is inside the
/// loop (its storage is fresh every iteration — the only case a static
/// analysis can prove unexposed without value information).
bool allocatedInsideLoop(const MemObject &O, const AccessNumbering &Num,
                         unsigned LoopId, Function *LoopFn,
                         const std::set<Function *> &Callees) {
  if (O.K != MemObject::Kind::HeapSite)
    return false;
  // Locate the allocation call: it is inside the loop if it appears in the
  // loop's statement tree or in a function callable only from... we keep it
  // simple and check the syntactic position via the loop function walk.
  const LoopDesc *LD = nullptr;
  for (const LoopDesc &L : Num.loops())
    if (L.Id == LoopId)
      LD = &L;
  if (!LD)
    return false;
  bool Inside = false;
  walkExprs(cast<ForStmt>(LD->LoopStmt)->getBody(), [&](Expr *E) {
    if (E == O.Site)
      Inside = true;
  });
  if (Inside)
    return true;
  // An allocation in a callee reachable from the loop counts as inside when
  // that callee is never called from outside the loop; being conservative,
  // we only accept callees of the loop that the loop function itself does
  // not call elsewhere. Keep it simple: treat callee allocations as inside
  // whenever the callee is reachable from the loop body.
  (void)LoopFn;
  for (Function *F : Callees) {
    if (!F->getBody())
      continue;
    walkExprs(F->getBody(), [&](Expr *E) {
      if (E == O.Site)
        Inside = true;
    });
  }
  return Inside;
}

} // namespace

LoopDepGraph gdse::buildStaticDepGraph(Module &M, unsigned LoopId,
                                       const PointsTo &PT,
                                       const AccessNumbering &Num) {
  LoopDepGraph G;
  G.LoopId = LoopId;
  G.Invocations = 0;
  G.Iterations = 0;

  const LoopDesc *LD = nullptr;
  for (const LoopDesc &L : Num.loops())
    if (L.Id == LoopId)
      LD = &L;
  if (!LD)
    return G;
  auto *Loop = dyn_cast<ForStmt>(LD->LoopStmt);
  if (!Loop)
    return G;
  (void)M;

  std::set<Function *> Callees = reachableCallees(Loop->getBody());

  // Vertex set: accesses syntactically inside the loop, plus every access
  // of a transitively callable function.
  std::vector<AccessId> Verts;
  for (const AccessDesc &D : Num.accesses()) {
    bool InLoop = Num.isInLoop(D.Id, LoopId) && D.InFunction == LD->InFunction;
    bool InCallee = Callees.count(D.InFunction) != 0;
    if (InLoop || InCallee)
      Verts.push_back(D.Id);
  }

  // Per-vertex root objects and exposure.
  std::map<AccessId, std::set<uint32_t>> Roots;
  std::map<uint32_t, bool> FreshPerIteration;
  for (AccessId Id : Verts) {
    const AccessDesc &D = Num.access(Id);
    Roots[Id] = PT.lvalueRootObjects(D.location());
    G.DynCount[Id] = 1; // static graph: vertices without frequencies
    bool AllFresh = !Roots[Id].empty();
    for (uint32_t Obj : Roots[Id]) {
      auto It = FreshPerIteration.find(Obj);
      if (It == FreshPerIteration.end())
        It = FreshPerIteration
                 .emplace(Obj, allocatedInsideLoop(PT.object(Obj), Num, LoopId,
                                                   LD->InFunction, Callees))
                 .first;
      AllFresh = AllFresh && It->second;
    }
    // Without value information, any access to pre-existing storage may see
    // (or produce) values crossing the loop boundary.
    if (!AllFresh) {
      if (D.IsStore)
        G.DownwardsExposedStores.insert(Id);
      else
        G.UpwardsExposedLoads.insert(Id);
    }
  }

  // Pairwise may-alias edges. Every intersecting pair depends, both
  // loop-carried and loop-independent.
  for (AccessId A : Verts) {
    const AccessDesc &DA = Num.access(A);
    for (AccessId B : Verts) {
      if (A == B && !DA.IsStore)
        continue;
      const AccessDesc &DB = Num.access(B);
      if (!DA.IsStore && !DB.IsStore)
        continue; // read-read is not a dependence
      bool Intersects = false;
      for (uint32_t Obj : Roots[A])
        if (Roots[B].count(Obj)) {
          Intersects = true;
          break;
        }
      if (!Intersects)
        continue;
      DepKind K = DA.IsStore ? (DB.IsStore ? DepKind::Output : DepKind::Flow)
                             : DepKind::Anti;
      // Both flavors, including loop-independent self-dependences (a store
      // inside a nested loop depends on itself within one iteration of the
      // target loop).
      G.addEdge(A, B, K, /*Carried=*/true);
      G.addEdge(A, B, K, /*Carried=*/false);
    }
  }
  return G;
}
