//===- StaticDeps.h - Conservative static dependence analysis ---*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compile-time loop-level dependence graph builder in the style of a
/// conventional parallelizing compiler: two accesses depend whenever their
/// may-point-to root objects intersect, and with no value-based coverage
/// information every such pair is reported both loop-carried and
/// loop-independent. Loads of structures allocated outside the loop are
/// conservatively upwards-exposed; stores to them downwards-exposed.
///
/// This is deliberately the paper's §4.1 foil: "current compile-time data
/// dependence analysis algorithms are still too conservative and they
/// report false positives that prevent loop parallelization". The
/// fig7_static_vs_profiled bench shows what happens when the expansion
/// pipeline is fed this graph instead of the profiled one.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_STATICDEPS_H
#define GDSE_ANALYSIS_STATICDEPS_H

#include "analysis/DepGraph.h"
#include "analysis/PointsTo.h"
#include "ir/AccessInfo.h"

namespace gdse {

/// Builds the conservative static graph for loop \p LoopId. Includes the
/// accesses of functions transitively callable from the loop body.
LoopDepGraph buildStaticDepGraph(Module &M, unsigned LoopId,
                                 const PointsTo &PT,
                                 const AccessNumbering &Num);

} // namespace gdse

#endif // GDSE_ANALYSIS_STATICDEPS_H
