//===- StaticPrivatizer.cpp - Static privatization witness -----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The engine is an abstract interpretation of ONE iteration of the candidate
// loop body. The abstract state tracks, per points-to object, the byte
// intervals certainly written so far this iteration (must-coverage, with
// strong updates), the intervals possibly written (may-coverage, for the
// proven-shared rule), and the symbolic values of never-address-taken local
// scalars/pointers (so `short* sview = (short*)workbuf; sview[k] = ...`
// resolves to workbuf bytes).
//
// Inner loops with compile-time-constant bounds and unit step are analyzed
// symbolically: the induction variable becomes a range symbol, stores at
// affine offsets accumulate as pending records, and when the loop commits,
// a mixed-radix density check turns `a[y*8+x]` nests into one dense interval.
// Inner loops with unknown trip counts run to a meet-over-iterations
// fixpoint and contribute nothing after the loop unless re-established
// (zero-trip safety).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticPrivatizer.h"

#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <algorithm>

using namespace gdse;

const char *gdse::privatizationVerdictName(PrivatizationVerdict V) {
  switch (V) {
  case PrivatizationVerdict::ProvenPrivate:
    return "proven-private";
  case PrivatizationVerdict::ProvenShared:
    return "proven-shared";
  case PrivatizationVerdict::Unknown:
    return "unknown";
  case PrivatizationVerdict::ProvenCommutative:
    return "proven-commutative";
  }
  gdse_unreachable("bad verdict");
}

const char *gdse::commutativeOpName(CommutativeOp Op) {
  switch (Op) {
  case CommutativeOp::None:
    return "none";
  case CommutativeOp::Add:
    return "add";
  case CommutativeOp::Mul:
    return "mul";
  case CommutativeOp::Min:
    return "min";
  case CommutativeOp::Max:
    return "max";
  }
  gdse_unreachable("bad commutative op");
}

namespace {

//===----------------------------------------------------------------------===//
// Abstract values
//===----------------------------------------------------------------------===//

/// Affine form over the active inner-loop induction variables:
/// Const + sum(Terms[iv] * iv).
struct Affine {
  int64_t Const = 0;
  std::map<const VarDecl *, int64_t> Terms;

  bool isConst() const { return Terms.empty(); }
  bool operator==(const Affine &O) const {
    return Const == O.Const && Terms == O.Terms;
  }
  bool operator<(const Affine &O) const {
    if (Const != O.Const)
      return Const < O.Const;
    return Terms < O.Terms;
  }

  Affine operator+(const Affine &O) const {
    Affine R = *this;
    R.Const += O.Const;
    for (const auto &[V, C] : O.Terms) {
      R.Terms[V] += C;
      if (R.Terms[V] == 0)
        R.Terms.erase(V);
    }
    return R;
  }
  Affine operator-(const Affine &O) const {
    Affine N = O;
    N.Const = -N.Const;
    for (auto &[V, C] : N.Terms)
      C = -C;
    return *this + N;
  }
  Affine scaled(int64_t K) const {
    Affine R;
    if (K == 0)
      return R;
    R.Const = Const * K;
    for (const auto &[V, C] : Terms)
      R.Terms[V] = C * K;
    return R;
  }
};

/// An abstract r-value.
struct Value {
  enum class K : uint8_t { Unknown, Int, Ptr } Kind = K::Unknown;
  Affine A;         ///< Int: the value; Ptr: the byte offset into Obj.
  uint32_t Obj = 0; ///< Ptr: points-to object id.

  static Value unknown() { return Value(); }
  static Value intConst(int64_t V) {
    Value R;
    R.Kind = K::Int;
    R.A.Const = V;
    return R;
  }
  static Value intAffine(Affine A) {
    Value R;
    R.Kind = K::Int;
    R.A = std::move(A);
    return R;
  }
  static Value ptr(uint32_t Obj, Affine Off) {
    Value R;
    R.Kind = K::Ptr;
    R.Obj = Obj;
    R.A = std::move(Off);
    return R;
  }
  bool isConstInt() const { return Kind == K::Int && A.isConst(); }
  bool operator==(const Value &O) const {
    return Kind == O.Kind && Obj == O.Obj && A == O.A;
  }
};

//===----------------------------------------------------------------------===//
// Interval sets
//===----------------------------------------------------------------------===//

/// Sorted, disjoint, half-open byte intervals.
class IntervalSet {
  std::vector<std::pair<int64_t, int64_t>> Iv;

public:
  void add(int64_t Lo, int64_t Hi) {
    if (Lo >= Hi)
      return;
    std::vector<std::pair<int64_t, int64_t>> Out;
    for (const auto &[L, H] : Iv) {
      if (H < Lo || L > Hi) {
        Out.emplace_back(L, H);
      } else {
        Lo = std::min(Lo, L);
        Hi = std::max(Hi, H);
      }
    }
    Out.emplace_back(Lo, Hi);
    std::sort(Out.begin(), Out.end());
    Iv = std::move(Out);
  }

  bool covers(int64_t Lo, int64_t Hi) const {
    if (Lo >= Hi)
      return true;
    for (const auto &[L, H] : Iv)
      if (L <= Lo && Hi <= H)
        return true;
    return false;
  }

  bool overlaps(int64_t Lo, int64_t Hi) const {
    for (const auto &[L, H] : Iv)
      if (L < Hi && Lo < H)
        return true;
    return false;
  }

  bool empty() const { return Iv.empty(); }

  void intersectWith(const IntervalSet &O) {
    std::vector<std::pair<int64_t, int64_t>> Out;
    for (const auto &[L1, H1] : Iv)
      for (const auto &[L2, H2] : O.Iv) {
        int64_t L = std::max(L1, L2), H = std::min(H1, H2);
        if (L < H)
          Out.emplace_back(L, H);
      }
    std::sort(Out.begin(), Out.end());
    Iv = std::move(Out);
  }

  void unionWith(const IntervalSet &O) {
    for (const auto &[L, H] : O.Iv)
      add(L, H);
  }

  bool operator==(const IntervalSet &O) const { return Iv == O.Iv; }
};

/// A must-executed store at an affine offset, awaiting commit of the loops
/// its offset still references.
struct PendingStore {
  uint32_t Obj = 0;
  Affine Off;
  int64_t Width = 0;

  bool operator<(const PendingStore &O) const {
    if (Obj != O.Obj)
      return Obj < O.Obj;
    if (Width != O.Width)
      return Width < O.Width;
    return Off < O.Off;
  }
  bool operator==(const PendingStore &O) const {
    return Obj == O.Obj && Width == O.Width && Off == O.Off;
  }
};

//===----------------------------------------------------------------------===//
// Abstract state
//===----------------------------------------------------------------------===//

struct AbsState {
  std::map<uint32_t, IntervalSet> Must;
  std::map<uint32_t, IntervalSet> May;
  std::set<uint32_t> MayAll; ///< objects possibly written at unknown offsets
  bool MayCalls = false;     ///< a user call already ran this iteration
  std::map<const VarDecl *, Value> Env;
  std::set<PendingStore> Pending;
  bool Unreachable = false;

  bool operator==(const AbsState &O) const {
    return Must == O.Must && May == O.May && MayAll == O.MayAll &&
           MayCalls == O.MayCalls && Env == O.Env && Pending == O.Pending &&
           Unreachable == O.Unreachable;
  }
};

/// Control-flow join: must facts intersect, may facts union, disagreeing
/// environment entries drop to Unknown. Unreachable is the identity.
AbsState meet(const AbsState &A, const AbsState &B) {
  if (A.Unreachable)
    return B;
  if (B.Unreachable)
    return A;
  AbsState R;
  for (const auto &[Obj, S] : A.Must) {
    auto It = B.Must.find(Obj);
    if (It == B.Must.end())
      continue;
    IntervalSet M = S;
    M.intersectWith(It->second);
    if (!M.empty())
      R.Must[Obj] = std::move(M);
  }
  R.May = A.May;
  for (const auto &[Obj, S] : B.May)
    R.May[Obj].unionWith(S);
  R.MayAll = A.MayAll;
  R.MayAll.insert(B.MayAll.begin(), B.MayAll.end());
  R.MayCalls = A.MayCalls || B.MayCalls;
  for (const auto &[V, Val] : A.Env) {
    auto It = B.Env.find(V);
    if (It != B.Env.end() && It->second == Val)
      R.Env.emplace(V, Val);
  }
  for (const PendingStore &P : A.Pending)
    if (B.Pending.count(P))
      R.Pending.insert(P);
  return R;
}

//===----------------------------------------------------------------------===//
// The engine
//===----------------------------------------------------------------------===//

struct LValue {
  /// Singleton object when resolved; 0xffffffff marks "unresolved".
  static constexpr uint32_t NoObj = 0xffffffffu;
  uint32_t Obj = NoObj;
  bool OffKnown = false;
  Affine Off;
  int64_t Width = 0;
};

} // namespace

namespace gdse {

class PrivatizerEngine {
public:
  PrivatizerEngine(Module &M, unsigned LoopId, const PointsTo &PT,
                   const AccessNumbering &Num, const LoopDepGraph &G)
      : M(M), PT(PT), Num(Num), G(G), LoopId(LoopId) {}

  void run(PrivatizationWitness &W);

private:
  Module &M;
  const PointsTo &PT;
  const AccessNumbering &Num;
  const LoopDepGraph &G;
  unsigned LoopId;

  // Pre-pass facts.
  std::set<AccessId> Vertices;
  std::set<Function *> Callees;
  std::set<uint32_t> Fresh;        ///< objects allocated inside the loop
  std::set<uint32_t> ReadOutside;  ///< objects loaded outside the loop
  std::map<const VarDecl *, int64_t> ConstGlobals;
  std::set<const VarDecl *> RegisterVars;
  std::set<uint32_t> CalleeFrees;
  std::set<uint32_t> CalleeMayStore;
  bool Unmodeled = false;

  // Walk state.
  std::map<const VarDecl *, std::pair<int64_t, int64_t>> ActiveIVs;
  bool MustPath = true;
  std::vector<AbsState> *BreakSink = nullptr;
  std::vector<AbsState> *ContinueSink = nullptr;

  // Verdict accumulation.
  std::set<AccessId> Walked;
  std::set<AccessId> Unproven; ///< at least one unproven walked occurrence
  struct ExposedLoad {
    AccessId Id;
    uint32_t Obj;
    int64_t Lo, Hi;
  };
  std::vector<ExposedLoad> Exposed;
  std::set<AccessId> MustCarried;

  int64_t typeSize(Type *T) { return (int64_t)M.getTypes().getLayout(T).Size; }
  bool objFresh(uint32_t Obj) const { return Fresh.count(Obj) != 0; }

  void prepass(const ForStmt *Loop, Function *LoopFn);
  void detectCommutative(PrivatizationWitness &W, const ForStmt *Loop);
  void analyzeStmt(Stmt *S, AbsState &St);
  void analyzeFor(ForStmt *F, AbsState &St);
  void analyzeUnknownTrip(Expr *Cond, Stmt *Body, AbsState &St,
                          bool TripAtLeastOne);
  Value evalExpr(Expr *E, AbsState &St);
  LValue resolveLValue(Expr *LV, AbsState &St);
  void recordStore(AssignStmt *A, AbsState &St);
  void checkLoad(LoadExpr *L, AbsState &St);
  void applyCallEffects(CallExpr *C, AbsState &St);
  void commitLoop(const VarDecl *IV, int64_t Lo, int64_t Hi, AbsState &St);
  bool allRootsFresh(const std::set<uint32_t> &Roots) const {
    if (Roots.empty())
      return false;
    for (uint32_t O : Roots)
      if (!objFresh(O))
        return false;
    return true;
  }
};

} // namespace gdse

//===----------------------------------------------------------------------===//
// Pre-pass: callees, freshness, outside reads, single-store-const globals
//===----------------------------------------------------------------------===//

void PrivatizerEngine::prepass(const ForStmt *Loop, Function *LoopFn) {
  for (const auto &[Id, C] : G.DynCount) {
    (void)C;
    Vertices.insert(Id);
  }
  RegisterVars = collectRegisterVars(M);

  // Transitively reachable callees (same closure StaticDeps uses).
  std::vector<Stmt *> Roots = {Loop->getBody()};
  auto scanExpr = [this](Expr *E) {
    walkExpr(E, [this](Expr *Sub) {
      if (auto *C = dyn_cast<CallExpr>(Sub))
        if (!C->isBuiltin() && C->getCallee())
          Callees.insert(C->getCallee());
    });
  };
  walkStmts(Loop->getBody(),
            [&](Stmt *S) { forEachTopLevelExpr(S, scanExpr); });
  bool Grew = true;
  while (Grew) {
    Grew = false;
    std::set<Function *> Snapshot = Callees;
    for (Function *F : Snapshot) {
      if (!F->getBody())
        continue;
      size_t Before = Callees.size();
      walkStmts(F->getBody(),
                [&](Stmt *S) { forEachTopLevelExpr(S, scanExpr); });
      if (Callees.size() != Before)
        Grew = true;
    }
  }

  // Bail on bulk memory builtins inside the loop or a reachable callee; the
  // coverage model cannot represent them.
  auto scanUnmodeled = [this](Expr *E) {
    if (auto *C = dyn_cast<CallExpr>(E)) {
      Builtin B = C->getBuiltin();
      if (B == Builtin::MemcpyFn || B == Builtin::MemsetFn ||
          B == Builtin::ReallocFn)
        Unmodeled = true;
    }
  };
  walkExprs(const_cast<ForStmt *>(Loop)->getBody(), scanUnmodeled);
  for (Function *F : Callees)
    if (F->getBody())
      walkExprs(F->getBody(), scanUnmodeled);

  // Freshness: heap sites whose allocation call appears in the loop body or
  // a reachable callee.
  for (uint32_t Id = 0; Id < PT.objects().size(); ++Id) {
    const MemObject &O = PT.object(Id);
    if (O.K != MemObject::Kind::HeapSite)
      continue;
    bool Inside = false;
    walkExprs(const_cast<ForStmt *>(Loop)->getBody(), [&](Expr *E) {
      if (E == O.Site)
        Inside = true;
    });
    for (Function *F : Callees)
      if (!Inside && F->getBody())
        walkExprs(F->getBody(), [&](Expr *E) {
          if (E == O.Site)
            Inside = true;
        });
    if (Inside)
      Fresh.insert(Id);
  }

  // Objects loaded by any access outside the loop's vertex set: stores to
  // them inside the loop are conservatively live-out.
  for (const AccessDesc &D : Num.accesses()) {
    if (D.IsStore || Vertices.count(D.Id))
      continue;
    for (uint32_t O : PT.lvalueRootObjects(D.location()))
      ReadOutside.insert(O);
  }

  // Callee effect summaries (coarse: union over every reachable callee).
  for (Function *F : Callees) {
    if (!F->getBody())
      continue;
    walkExprs(F->getBody(), [this](Expr *E) {
      auto *C = dyn_cast<CallExpr>(E);
      if (C && C->getBuiltin() == Builtin::FreeFn && C->getNumArgs() == 1)
        for (uint32_t O : PT.valueObjects(C->getArg(0)))
          CalleeFrees.insert(O);
    });
  }
  for (const AccessDesc &D : Num.accesses()) {
    if (!D.IsStore || !Callees.count(D.InFunction))
      continue;
    for (uint32_t O : PT.lvalueRootObjects(D.location()))
      CalleeMayStore.insert(O);
  }

  // Single-store constant globals: a scalar global written exactly once in
  // the whole program, by a top-level straight-line statement of the loop's
  // function that precedes the loop, with a constant RHS. Loads of it fold
  // to that constant (dijkstra's `NV = 64` making `v < NV` a full sweep).
  for (VarDecl *GV : M.getGlobals()) {
    if (!GV->getType()->isInt())
      continue;
    uint32_t Obj = PT.objectOfVar(GV);
    const AssignStmt *Single = nullptr;
    bool Multiple = false;
    for (const AccessDesc &D : Num.accesses()) {
      if (!D.IsStore)
        continue;
      std::set<uint32_t> R = PT.lvalueRootObjects(D.location());
      if (!R.count(Obj))
        continue;
      if (Single) {
        Multiple = true;
        break;
      }
      Single = D.StoreNode;
    }
    if (Multiple || !Single)
      continue;
    auto *LHSRef = dyn_cast<VarRefExpr>(Single->getLHS());
    if (!LHSRef || LHSRef->getDecl() != GV)
      continue;
    auto *RHS = dyn_cast<IntLitExpr>(Single->getRHS());
    if (!RHS)
      continue;
    // Position: the store must be a top-level statement of the loop's
    // function body, strictly before the top-level statement containing the
    // loop (so it dominates every loop execution on a straight-line path).
    if (!LoopFn || !LoopFn->getBody())
      continue;
    int StoreIdx = -1, LoopIdx = -1, Idx = 0;
    for (Stmt *Top : LoopFn->getBody()->getStmts()) {
      if (Top == Single)
        StoreIdx = Idx;
      bool HasLoop = false;
      walkStmts(Top, [&](Stmt *S) {
        if (S == Loop)
          HasLoop = true;
      });
      if (HasLoop)
        LoopIdx = Idx;
      ++Idx;
    }
    if (StoreIdx >= 0 && LoopIdx >= 0 && StoreIdx < LoopIdx)
      ConstGlobals[GV] = RHS->getValue();
  }
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

Value PrivatizerEngine::evalExpr(Expr *E, AbsState &St) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return Value::intConst(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::FloatLit:
  case Expr::Kind::ThreadId:
  case Expr::Kind::NumThreads:
    return Value::unknown();
  case Expr::Kind::SizeofType:
    return Value::intConst(
        typeSize(cast<SizeofTypeExpr>(E)->getQueriedType()));
  case Expr::Kind::Load: {
    auto *L = cast<LoadExpr>(E);
    checkLoad(L, St);
    // Value tracking: inner-loop IVs are range symbols, never-address-taken
    // locals come from the environment, single-store globals fold.
    if (auto *VR = dyn_cast<VarRefExpr>(L->getLocation())) {
      const VarDecl *D = VR->getDecl();
      if (auto It = ActiveIVs.find(D); It != ActiveIVs.end()) {
        Affine A;
        A.Terms[D] = 1;
        return Value::intAffine(A);
      }
      if (auto It = St.Env.find(D); It != St.Env.end())
        return It->second;
      if (auto It = ConstGlobals.find(D); It != ConstGlobals.end())
        return Value::intConst(It->second);
    }
    return Value::unknown();
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Value S = evalExpr(U->getSub(), St);
    if (U->getOp() == UnaryOp::Neg && S.Kind == Value::K::Int)
      return Value::intAffine(Affine{}.operator-(S.A));
    return Value::unknown();
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    bool ShortCircuit = B->getOp() == BinaryOp::LogicalAnd ||
                        B->getOp() == BinaryOp::LogicalOr;
    Value L = evalExpr(B->getLHS(), St);
    Value R;
    if (ShortCircuit) {
      bool SavedMust = MustPath;
      MustPath = false;
      R = evalExpr(B->getRHS(), St);
      MustPath = SavedMust;
      return Value::unknown();
    }
    R = evalExpr(B->getRHS(), St);
    auto eltSize = [&]() -> int64_t {
      if (auto *PT2 = dyn_cast<PointerType>(E->getType()))
        if (!PT2->getPointee()->isVoid())
          return typeSize(PT2->getPointee());
      return 0;
    };
    switch (B->getOp()) {
    case BinaryOp::Add:
      if (L.Kind == Value::K::Int && R.Kind == Value::K::Int)
        return Value::intAffine(L.A + R.A);
      if (L.Kind == Value::K::Ptr && R.Kind == Value::K::Int) {
        int64_t ES = eltSize();
        if (ES > 0)
          return Value::ptr(L.Obj, L.A + R.A.scaled(ES));
      }
      if (L.Kind == Value::K::Int && R.Kind == Value::K::Ptr) {
        int64_t ES = eltSize();
        if (ES > 0)
          return Value::ptr(R.Obj, R.A + L.A.scaled(ES));
      }
      return Value::unknown();
    case BinaryOp::Sub:
      if (L.Kind == Value::K::Int && R.Kind == Value::K::Int)
        return Value::intAffine(L.A - R.A);
      if (L.Kind == Value::K::Ptr && R.Kind == Value::K::Int) {
        int64_t ES = eltSize();
        if (ES > 0)
          return Value::ptr(L.Obj, L.A - R.A.scaled(ES));
      }
      return Value::unknown();
    case BinaryOp::Mul:
      if (L.Kind == Value::K::Int && R.Kind == Value::K::Int) {
        if (L.A.isConst())
          return Value::intAffine(R.A.scaled(L.A.Const));
        if (R.A.isConst())
          return Value::intAffine(L.A.scaled(R.A.Const));
      }
      return Value::unknown();
    case BinaryOp::Div:
      if (L.isConstInt() && R.isConstInt() && R.A.Const != 0)
        return Value::intConst(L.A.Const / R.A.Const);
      return Value::unknown();
    case BinaryOp::Rem:
      if (L.isConstInt() && R.isConstInt() && R.A.Const != 0)
        return Value::intConst(L.A.Const % R.A.Const);
      return Value::unknown();
    default:
      return Value::unknown();
    }
  }
  case Expr::Kind::ArrayIndex:
  case Expr::Kind::FieldAccess:
  case Expr::Kind::Deref:
  case Expr::Kind::VarRef:
    // L-values are evaluated via resolveLValue from their Load/AddrOf/Decay
    // consumers; reaching one here means an unhandled consumer — just walk
    // children for load checks.
    forEachChildExpr(E, [&](Expr *C) { (void)evalExpr(C, St); });
    return Value::unknown();
  case Expr::Kind::AddrOf: {
    LValue LV = resolveLValue(cast<AddrOfExpr>(E)->getLocation(), St);
    if (LV.Obj != LValue::NoObj && LV.OffKnown)
      return Value::ptr(LV.Obj, LV.Off);
    return Value::unknown();
  }
  case Expr::Kind::Decay: {
    LValue LV = resolveLValue(cast<DecayExpr>(E)->getArrayLocation(), St);
    if (LV.Obj != LValue::NoObj && LV.OffKnown)
      return Value::ptr(LV.Obj, LV.Off);
    return Value::unknown();
  }
  case Expr::Kind::Cast: {
    Value S = evalExpr(cast<CastExpr>(E)->getSub(), St);
    if (S.Kind == Value::K::Ptr && E->getType()->isPointer())
      return S; // reinterpreting casts keep the byte offset
    if (S.Kind == Value::K::Int && E->getType()->isInt() &&
        cast<IntType>(E->getType())->getBits() >= 32)
      return S; // no truncation at 32+ bits for in-range index math
    return Value::unknown();
  }
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    for (Expr *A : C->getArgs())
      (void)evalExpr(A, St);
    applyCallEffects(C, St);
    if (isAllocationBuiltin(C->getBuiltin()) && PT.hasSite(C->getSiteId()))
      return Value::ptr(PT.objectOfSite(C->getSiteId()), Affine{});
    return Value::unknown();
  }
  case Expr::Kind::Cond: {
    auto *C = cast<CondExpr>(E);
    (void)evalExpr(C->getCond(), St);
    bool SavedMust = MustPath;
    MustPath = false;
    (void)evalExpr(C->getThen(), St);
    (void)evalExpr(C->getElse(), St);
    MustPath = SavedMust;
    return Value::unknown();
  }
  }
  gdse_unreachable("unhandled expression kind");
}

LValue PrivatizerEngine::resolveLValue(Expr *LV, AbsState &St) {
  LValue R;
  switch (LV->getKind()) {
  case Expr::Kind::VarRef: {
    auto *VR = cast<VarRefExpr>(LV);
    R.Obj = PT.objectOfVar(VR->getDecl());
    R.OffKnown = true;
    R.Width = typeSize(LV->getType());
    return R;
  }
  case Expr::Kind::FieldAccess: {
    auto *FA = cast<FieldAccessExpr>(LV);
    LValue B = resolveLValue(FA->getBase(), St);
    R.Width = typeSize(LV->getType());
    if (B.Obj != LValue::NoObj) {
      R.Obj = B.Obj;
      if (B.OffKnown) {
        const TypeLayout &L =
            M.getTypes().getLayout(FA->getBase()->getType());
        if (FA->getFieldIndex() < L.FieldOffsets.size()) {
          Affine FO;
          FO.Const = (int64_t)L.FieldOffsets[FA->getFieldIndex()];
          R.Off = B.Off + FO;
          R.OffKnown = true;
        }
      }
    }
    return R;
  }
  case Expr::Kind::ArrayIndex: {
    auto *AI = cast<ArrayIndexExpr>(LV);
    Value Base = evalExpr(AI->getBase(), St);
    Value Idx = evalExpr(AI->getIndex(), St);
    R.Width = typeSize(LV->getType());
    if (Base.Kind == Value::K::Ptr) {
      R.Obj = Base.Obj;
      if (Idx.Kind == Value::K::Int) {
        R.Off = Base.A + Idx.A.scaled(R.Width);
        R.OffKnown = true;
      }
    }
    return R;
  }
  case Expr::Kind::Deref: {
    auto *D = cast<DerefExpr>(LV);
    Value P = evalExpr(D->getPtr(), St);
    R.Width = typeSize(LV->getType());
    if (P.Kind == Value::K::Ptr) {
      R.Obj = P.Obj;
      R.Off = P.A;
      R.OffKnown = true;
    }
    return R;
  }
  default:
    // Not an l-value form; evaluate for load checks and give up.
    (void)evalExpr(LV, St);
    return R;
  }
}

//===----------------------------------------------------------------------===//
// Loads, stores, calls
//===----------------------------------------------------------------------===//

/// Bounding byte interval of an affine offset over the active IV ranges.
/// Returns false when a referenced IV is not active (cannot bound).
static bool affineBounds(const Affine &A, int64_t Width,
                         const std::map<const VarDecl *,
                                        std::pair<int64_t, int64_t>> &IVs,
                         int64_t &Lo, int64_t &Hi) {
  int64_t Min = A.Const, Max = A.Const;
  for (const auto &[V, C] : A.Terms) {
    auto It = IVs.find(V);
    if (It == IVs.end())
      return false;
    auto [L, H] = It->second; // iv in [L, H)
    if (H <= L)
      return false;
    if (C >= 0) {
      Min += C * L;
      Max += C * (H - 1);
    } else {
      Min += C * (H - 1);
      Max += C * L;
    }
  }
  Lo = Min;
  Hi = Max + Width;
  return true;
}

void PrivatizerEngine::checkLoad(LoadExpr *L, AbsState &St) {
  LValue LV = resolveLValue(L->getLocation(), St);
  AccessId Id = L->getAccessId();
  if (Id == InvalidAccessId || !Vertices.count(Id))
    return;
  Walked.insert(Id);

  std::set<uint32_t> Roots = PT.lvalueRootObjects(L->getLocation());
  bool Proven = false;
  if (allRootsFresh(Roots)) {
    Proven = true;
  } else if (LV.Obj != LValue::NoObj && Roots.size() <= 1) {
    uint32_t Obj = LV.Obj;
    if (objFresh(Obj)) {
      Proven = true;
    } else if (LV.OffKnown) {
      if (LV.Off.isConst()) {
        auto It = St.Must.find(Obj);
        Proven = It != St.Must.end() &&
                 It->second.covers(LV.Off.Const, LV.Off.Const + LV.Width);
      } else {
        // Same-iteration exact match against a pending affine store, or the
        // whole bounding interval already committed to must-coverage.
        for (const PendingStore &P : St.Pending)
          if (P.Obj == Obj && P.Off == LV.Off && P.Width >= LV.Width) {
            Proven = true;
            break;
          }
        int64_t Lo, Hi;
        if (!Proven && affineBounds(LV.Off, LV.Width, ActiveIVs, Lo, Hi)) {
          auto It = St.Must.find(Obj);
          Proven = It != St.Must.end() && It->second.covers(Lo, Hi);
        }
      }
    } else {
      // Known object, unknown offset: whole-object coverage (variables only;
      // heap sites have no static size).
      const MemObject &O = PT.object(Obj);
      if (O.K == MemObject::Kind::Variable) {
        int64_t Size = typeSize(O.Var->getType());
        auto It = St.Must.find(Obj);
        Proven = It != St.Must.end() && It->second.covers(0, Size);
      }
    }
  }

  if (!Proven) {
    Unproven.insert(Id);
    // Proven-shared candidate: a must-executed load of bytes nothing this
    // iteration can have written yet certainly reads an earlier iteration's
    // state. If a later must-executed store overwrites those bytes, the
    // carried flow dependence is certain.
    if (MustPath && !St.MayCalls && LV.Obj != LValue::NoObj &&
        Roots.size() <= 1 && !objFresh(LV.Obj) && LV.OffKnown &&
        LV.Off.isConst() && !St.MayAll.count(LV.Obj)) {
      auto It = St.May.find(LV.Obj);
      if (It == St.May.end() ||
          !It->second.overlaps(LV.Off.Const, LV.Off.Const + LV.Width))
        Exposed.push_back({Id, LV.Obj, LV.Off.Const, LV.Off.Const + LV.Width});
    }
  }
}

void PrivatizerEngine::recordStore(AssignStmt *A, AbsState &St) {
  Value RHSVal = evalExpr(A->getRHS(), St);
  LValue LV = resolveLValue(A->getLHS(), St);
  AccessId Id = A->getAccessId();
  if (Id != InvalidAccessId && Vertices.count(Id))
    Walked.insert(Id);

  if (LV.Obj != LValue::NoObj && LV.OffKnown && LV.Width > 0) {
    if (LV.Off.isConst()) {
      if (LV.Off.Const >= 0) {
        St.Must[LV.Obj].add(LV.Off.Const, LV.Off.Const + LV.Width);
        St.May[LV.Obj].add(LV.Off.Const, LV.Off.Const + LV.Width);
      }
      if (MustPath && Id != InvalidAccessId)
        for (const ExposedLoad &E : Exposed)
          if (E.Obj == LV.Obj && E.Lo < LV.Off.Const + LV.Width &&
              LV.Off.Const < E.Hi) {
            MustCarried.insert(E.Id);
            MustCarried.insert(Id);
          }
    } else {
      St.Pending.insert(PendingStore{LV.Obj, LV.Off, LV.Width});
      int64_t Lo, Hi;
      if (affineBounds(LV.Off, LV.Width, ActiveIVs, Lo, Hi))
        St.May[LV.Obj].add(Lo, Hi);
      else
        St.MayAll.insert(LV.Obj);
    }
  } else {
    for (uint32_t O : PT.lvalueRootObjects(A->getLHS()))
      St.MayAll.insert(O);
  }

  // Track never-address-taken local scalar/pointer values flow-sensitively.
  if (auto *VR = dyn_cast<VarRefExpr>(A->getLHS()))
    if (RegisterVars.count(VR->getDecl()))
      St.Env[VR->getDecl()] = RHSVal;
}

void PrivatizerEngine::applyCallEffects(CallExpr *C, AbsState &St) {
  if (C->isBuiltin()) {
    switch (C->getBuiltin()) {
    case Builtin::FreeFn:
      if (C->getNumArgs() == 1)
        for (uint32_t O : PT.valueObjects(C->getArg(0)))
          St.Must.erase(O);
      return;
    case Builtin::ExitFn:
      St.Unreachable = true;
      return;
    default:
      return; // alloc handled by caller; the rest have no memory effects
    }
  }
  // User call: coarse reachable-callee summary.
  St.MayCalls = true;
  for (uint32_t O : CalleeFrees)
    St.Must.erase(O);
  for (uint32_t O : CalleeMayStore)
    St.MayAll.insert(O);
}

//===----------------------------------------------------------------------===//
// Statements and loops
//===----------------------------------------------------------------------===//

void PrivatizerEngine::analyzeStmt(Stmt *S, AbsState &St) {
  if (St.Unreachable)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (Stmt *C : cast<BlockStmt>(S)->getStmts())
      analyzeStmt(C, St);
    return;
  case Stmt::Kind::ExprStmt:
    (void)evalExpr(cast<ExprStmt>(S)->getExpr(), St);
    return;
  case Stmt::Kind::Assign:
    recordStore(cast<AssignStmt>(S), St);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    (void)evalExpr(I->getCond(), St);
    bool SavedMust = MustPath;
    MustPath = false;
    AbsState ThenSt = St;
    analyzeStmt(I->getThen(), ThenSt);
    AbsState ElseSt = St;
    if (I->getElse())
      analyzeStmt(I->getElse(), ElseSt);
    MustPath = SavedMust;
    St = meet(ThenSt, ElseSt);
    return;
  }
  case Stmt::Kind::For:
    analyzeFor(cast<ForStmt>(S), St);
    return;
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    analyzeUnknownTrip(W->getCond(), W->getBody(), St,
                       /*TripAtLeastOne=*/false);
    return;
  }
  case Stmt::Kind::Return:
    if (Expr *V = cast<ReturnStmt>(S)->getValue())
      (void)evalExpr(V, St);
    St.Unreachable = true;
    return;
  case Stmt::Kind::Break:
    if (BreakSink)
      BreakSink->push_back(St);
    St.Unreachable = true;
    return;
  case Stmt::Kind::Continue:
    // The continue path reaches the back edge with whatever it wrote so far;
    // statements it skips must not count as executed on it.
    if (ContinueSink)
      ContinueSink->push_back(St);
    St.Unreachable = true;
    return;
  case Stmt::Kind::Ordered:
    analyzeStmt(cast<OrderedStmt>(S)->getBody(), St);
    return;
  }
  gdse_unreachable("unhandled statement kind");
}

/// Meet-over-iterations fixpoint for loops the engine cannot count.
void PrivatizerEngine::analyzeUnknownTrip(Expr *Cond, Stmt *Body, AbsState &St,
                                          bool TripAtLeastOne) {
  bool SavedMust = MustPath;
  // The first condition check runs unconditionally in the enclosing context.
  if (Cond)
    (void)evalExpr(Cond, St);
  std::vector<AbsState> Breaks;
  std::vector<AbsState> *SavedBreak = BreakSink;
  std::vector<AbsState> *SavedCont = ContinueSink;
  BreakSink = &Breaks;

  AbsState Entry = St;
  Entry.Pending.clear(); // pendings never survive a back edge
  AbsState Exit;
  for (int Pass = 0; Pass < 8; ++Pass) {
    std::vector<AbsState> Continues;
    ContinueSink = &Continues;
    AbsState BodySt = Entry;
    MustPath = SavedMust && TripAtLeastOne && Pass == 0;
    analyzeStmt(Body, BodySt);
    Exit = BodySt;
    for (const AbsState &C : Continues)
      Exit = meet(Exit, C);
    AbsState NextEntry = meet(Entry, Exit);
    NextEntry.Pending.clear();
    if (Cond)
      (void)evalExpr(Cond, NextEntry); // back-edge condition re-check
    if (NextEntry == Entry)
      break;
    Entry = std::move(NextEntry);
  }
  BreakSink = SavedBreak;
  ContinueSink = SavedCont;
  MustPath = SavedMust;

  AbsState After = TripAtLeastOne ? Exit : meet(St, Exit);
  for (const AbsState &B : Breaks)
    After = meet(After, B);
  After.Pending = St.Pending; // inner pendings don't commit without bounds
  St = std::move(After);
}

void PrivatizerEngine::analyzeFor(ForStmt *F, AbsState &St) {
  Value Init = evalExpr(F->getInit(), St);
  Value Limit = evalExpr(F->getLimit(), St);
  Value Step = evalExpr(F->getStep(), St);
  const VarDecl *IV = F->getInductionVar();

  bool Counted = Init.isConstInt() && Limit.isConstInt() &&
                 Step.isConstInt() && Step.A.Const > 0;
  if (Counted && Init.A.Const >= Limit.A.Const)
    return; // zero-trip loop: no effect
  if (Counted && Step.A.Const == 1 && !ActiveIVs.count(IV)) {
    // Sweep mode: the IV is a range symbol; affine stores become pending
    // records committed by the mixed-radix density check below.
    int64_t Lo = Init.A.Const, Hi = Limit.A.Const;
    ActiveIVs[IV] = {Lo, Hi};
    std::vector<AbsState> Breaks;
    std::vector<AbsState> *SavedBreak = BreakSink;
    std::vector<AbsState> *SavedCont = ContinueSink;
    BreakSink = &Breaks;

    bool Continued = false;
    AbsState Entry = St;
    Entry.Pending.clear();
    AbsState Exit;
    for (int Pass = 0; Pass < 8; ++Pass) {
      std::vector<AbsState> Continues;
      ContinueSink = &Continues;
      AbsState BodySt = Entry;
      analyzeStmt(F->getBody(), BodySt);
      Exit = BodySt;
      Continued = Continued || !Continues.empty();
      for (const AbsState &C : Continues)
        Exit = meet(Exit, C);
      AbsState NextEntry = meet(Entry, Exit);
      NextEntry.Pending.clear();
      if (NextEntry == Entry)
        break;
      Entry = std::move(NextEntry);
    }
    BreakSink = SavedBreak;
    ContinueSink = SavedCont;

    AbsState After = Exit; // trip >= 1 by the bound check above
    bool Broke = !Breaks.empty() || Continued;
    for (const AbsState &B : Breaks)
      After = meet(After, B);
    if (Broke) {
      // A break truncates the sweep: pending images are no longer dense
      // over the full IV range.
      After.Pending = St.Pending;
    } else {
      commitLoop(IV, Lo, Hi, After);
      // Pendings the commit could not discharge for this IV are gone;
      // restore the enclosing iteration's own pendings on top.
      for (const PendingStore &P : St.Pending)
        After.Pending.insert(P);
    }
    ActiveIVs.erase(IV);
    // Environment entries mentioning the dead IV are meaningless now.
    for (auto It = After.Env.begin(); It != After.Env.end();) {
      if (It->second.A.Terms.count(IV))
        It = After.Env.erase(It);
      else
        ++It;
    }
    St = std::move(After);
    return;
  }
  // Counted with step > 1 still guarantees at least one trip; anything else
  // is an unknown-trip loop.
  analyzeUnknownTrip(F->getLimit(), F->getBody(), St,
                     /*TripAtLeastOne=*/Counted);
}

/// Commits pending affine stores when loop \p IV (range [Lo,Hi)) finishes:
/// a store whose offset term in IV has stride <= its width extends into a
/// dense image over the whole range (a[y*8+x]-style mixed radix, innermost
/// first). Term-free results become concrete must-coverage.
void PrivatizerEngine::commitLoop(const VarDecl *IV, int64_t Lo, int64_t Hi,
                                  AbsState &St) {
  std::set<PendingStore> Out;
  int64_t N = Hi - Lo;
  for (PendingStore P : St.Pending) {
    auto It = P.Off.Terms.find(IV);
    if (It == P.Off.Terms.end()) {
      // Invariant in this loop (executed every iteration): keep for outer
      // commits; if already term-free it was const and went to Must directly.
      Out.insert(P);
      continue;
    }
    int64_t C = It->second;
    P.Off.Terms.erase(It);
    if (C <= 0 || C > P.Width)
      continue; // non-positive or strided: image not dense, drop
    P.Off.Const += C * Lo;
    P.Width += C * (N - 1);
    if (P.Off.isConst()) {
      if (P.Off.Const >= 0) {
        St.Must[P.Obj].add(P.Off.Const, P.Off.Const + P.Width);
        St.May[P.Obj].add(P.Off.Const, P.Off.Const + P.Width);
      }
    } else {
      Out.insert(P);
    }
  }
  St.Pending = std::move(Out);
}

//===----------------------------------------------------------------------===//
// Commutative reduction detection
//===----------------------------------------------------------------------===//

namespace {

/// Structural equality of expressions, ignoring access ids (the same l-value
/// written syntactically twice carries two ids). Calls never compare equal:
/// two evaluations may differ.
bool structEq(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(A)->getValue() == cast<IntLitExpr>(B)->getValue();
  case Expr::Kind::FloatLit:
    return cast<FloatLitExpr>(A)->getValue() ==
           cast<FloatLitExpr>(B)->getValue();
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(A)->getDecl() == cast<VarRefExpr>(B)->getDecl();
  case Expr::Kind::Load:
    return structEq(cast<LoadExpr>(A)->getLocation(),
                    cast<LoadExpr>(B)->getLocation());
  case Expr::Kind::Unary: {
    auto *UA = cast<UnaryExpr>(A), *UB = cast<UnaryExpr>(B);
    return UA->getOp() == UB->getOp() && structEq(UA->getSub(), UB->getSub());
  }
  case Expr::Kind::Binary: {
    auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->getOp() == BB->getOp() &&
           structEq(BA->getLHS(), BB->getLHS()) &&
           structEq(BA->getRHS(), BB->getRHS());
  }
  case Expr::Kind::ArrayIndex: {
    auto *IA = cast<ArrayIndexExpr>(A), *IB = cast<ArrayIndexExpr>(B);
    return structEq(IA->getBase(), IB->getBase()) &&
           structEq(IA->getIndex(), IB->getIndex());
  }
  case Expr::Kind::FieldAccess: {
    auto *FA = cast<FieldAccessExpr>(A), *FB = cast<FieldAccessExpr>(B);
    return FA->getFieldIndex() == FB->getFieldIndex() &&
           structEq(FA->getBase(), FB->getBase());
  }
  case Expr::Kind::Deref:
    return structEq(cast<DerefExpr>(A)->getPtr(),
                    cast<DerefExpr>(B)->getPtr());
  case Expr::Kind::AddrOf:
    return structEq(cast<AddrOfExpr>(A)->getLocation(),
                    cast<AddrOfExpr>(B)->getLocation());
  case Expr::Kind::Decay:
    return structEq(cast<DecayExpr>(A)->getArrayLocation(),
                    cast<DecayExpr>(B)->getArrayLocation());
  case Expr::Kind::Cast:
    return A->getType() == B->getType() &&
           structEq(cast<CastExpr>(A)->getSub(), cast<CastExpr>(B)->getSub());
  case Expr::Kind::SizeofType:
    return cast<SizeofTypeExpr>(A)->getQueriedType() ==
           cast<SizeofTypeExpr>(B)->getQueriedType();
  case Expr::Kind::ThreadId:
  case Expr::Kind::NumThreads:
    return true;
  case Expr::Kind::Cond: {
    auto *CA = cast<CondExpr>(A), *CB = cast<CondExpr>(B);
    return structEq(CA->getCond(), CB->getCond()) &&
           structEq(CA->getThen(), CB->getThen()) &&
           structEq(CA->getElse(), CB->getElse());
  }
  case Expr::Kind::Call:
    return false;
  }
  gdse_unreachable("bad expr kind");
}

} // namespace

void PrivatizerEngine::detectCommutative(PrivatizationWitness &W,
                                         const ForStmt *Loop) {
  // Guarded min/max candidates: every IfStmt in the loop body with no else
  // whose then-branch is exactly one assignment. The single-statement
  // requirement is load-bearing: `if (s > best[0]) { best[0] = s;
  // best[1] = i; }` must NOT match — privatizing best[0] changes which
  // iterations take the branch and corrupts best[1]. Callee bodies are not
  // scanned, so a guarded update inside a callee conservatively fails.
  std::map<const AssignStmt *, const IfStmt *> GuardOf;
  walkStmts(const_cast<ForStmt *>(Loop)->getBody(), [&](Stmt *S) {
    auto *If = dyn_cast<IfStmt>(S);
    if (!If || If->getElse())
      return;
    Stmt *T = If->getThen();
    if (auto *Blk = dyn_cast<BlockStmt>(T)) {
      if (Blk->getStmts().size() != 1)
        return;
      T = Blk->getStmts()[0];
    }
    if (auto *A = dyn_cast<AssignStmt>(T))
      GuardOf[A] = If;
  });

  for (ClassWitness &C : W.Classes) {
    if (C.Verdict == PrivatizationVerdict::ProvenPrivate)
      continue;

    std::set<AccessId> MemberIds(C.Members.begin(), C.Members.end());
    std::set<uint32_t> ClassRoots;
    bool HasStore = false, HasLoad = false;
    for (AccessId Id : C.Members) {
      const AccessDesc &D = Num.access(Id);
      (D.IsStore ? HasStore : HasLoad) = true;
      for (uint32_t O : PT.lvalueRootObjects(D.location()))
        ClassRoots.insert(O);
    }
    if (!HasStore || !HasLoad)
      continue;

    // An operand is pure w.r.t. the class when it calls nothing and reads
    // no bytes the class may touch — its value cannot observe unmerged
    // per-thread partials.
    auto pureOperand = [&](Expr *E) {
      bool Pure = true;
      walkExpr(E, [&](Expr *Sub) {
        if (isa<CallExpr>(Sub))
          Pure = false;
        if (auto *L = dyn_cast<LoadExpr>(Sub))
          for (uint32_t O : PT.lvalueRootObjects(L->getLocation()))
            if (ClassRoots.count(O))
              Pure = false;
      });
      return Pure;
    };

    CommutativeOp ClassOp = CommutativeOp::None;
    std::set<AccessId> Consumed; // member loads absorbed by a matched store
    bool Ok = true;
    for (AccessId Id : C.Members) {
      const AccessDesc &D = Num.access(Id);
      if (!D.IsStore)
        continue;
      AssignStmt *A = D.StoreNode;
      // Exact ops only: wrap-around integer + and * are fully associative
      // and commutative; float reductions would reassociate.
      if (!A || !A->getLHS()->getType()->isInt()) {
        Ok = false;
        break;
      }
      CommutativeOp Op = CommutativeOp::None;
      AccessId LoadId = InvalidAccessId;

      // Form 1: X = load(X) + E  /  X = E + load(X)  (likewise *). The
      // purity check on the other operand also rejects X = X + X.
      if (auto *B = dyn_cast<BinaryExpr>(A->getRHS())) {
        if (B->getOp() == BinaryOp::Add || B->getOp() == BinaryOp::Mul) {
          auto matchSide = [&](Expr *Side, Expr *Other) {
            auto *L = dyn_cast<LoadExpr>(Side);
            if (!L || !MemberIds.count(L->getAccessId()) ||
                !structEq(L->getLocation(), A->getLHS()) ||
                !pureOperand(Other))
              return false;
            Op = B->getOp() == BinaryOp::Add ? CommutativeOp::Add
                                             : CommutativeOp::Mul;
            LoadId = L->getAccessId();
            return true;
          };
          if (!matchSide(B->getLHS(), B->getRHS()))
            matchSide(B->getRHS(), B->getLHS());
        }
      }

      // Form 2: if (E REL load(X)) X = E;  with REL in {<,<=,>,>=} and the
      // store the sole then-statement.
      if (Op == CommutativeOp::None) {
        auto GIt = GuardOf.find(A);
        if (GIt != GuardOf.end()) {
          if (auto *Cond =
                  dyn_cast<BinaryExpr>(GIt->second->getCond())) {
            BinaryOp R = Cond->getOp();
            if (R == BinaryOp::Lt || R == BinaryOp::Le ||
                R == BinaryOp::Gt || R == BinaryOp::Ge) {
              auto matchCond = [&](Expr *LoadSide, Expr *ESide,
                                   bool LoadOnRight) {
                auto *L = dyn_cast<LoadExpr>(LoadSide);
                if (!L || !MemberIds.count(L->getAccessId()) ||
                    !structEq(L->getLocation(), A->getLHS()) ||
                    !structEq(ESide, A->getRHS()) ||
                    !pureOperand(A->getRHS()))
                  return false;
                bool Less = R == BinaryOp::Lt || R == BinaryOp::Le;
                // `if (e < x) x = e` keeps the smaller -> min;
                // `if (x < e) x = e` keeps the larger -> max.
                Op = LoadOnRight
                         ? (Less ? CommutativeOp::Min : CommutativeOp::Max)
                         : (Less ? CommutativeOp::Max : CommutativeOp::Min);
                LoadId = L->getAccessId();
                return true;
              };
              if (!matchCond(Cond->getRHS(), Cond->getLHS(),
                             /*LoadOnRight=*/true))
                matchCond(Cond->getLHS(), Cond->getRHS(),
                          /*LoadOnRight=*/false);
            }
          }
        }
      }

      if (Op == CommutativeOp::None ||
          (ClassOp != CommutativeOp::None && Op != ClassOp)) {
        Ok = false;
        break;
      }
      ClassOp = Op;
      Consumed.insert(LoadId);
    }
    if (!Ok || ClassOp == CommutativeOp::None)
      continue;

    // Every member load must be the read half of a matched update; any
    // other read could observe an unmerged per-thread partial.
    for (AccessId Id : C.Members)
      if (!Num.access(Id).IsStore && !Consumed.count(Id))
        Ok = false;
    if (!Ok)
      continue;

    C.Verdict = PrivatizationVerdict::ProvenCommutative;
    C.Op = ClassOp;
    C.Reason = formatString("every carried use is a single %s reduction",
                            commutativeOpName(ClassOp));
  }
}

//===----------------------------------------------------------------------===//
// Driver: run the iteration analysis and assemble verdicts
//===----------------------------------------------------------------------===//

void PrivatizerEngine::run(PrivatizationWitness &W) {
  W.LoopId = LoopId;

  const LoopDesc *LD = nullptr;
  for (const LoopDesc &L : Num.loops())
    if (L.Id == LoopId)
      LD = &L;
  auto *Loop = LD ? dyn_cast<ForStmt>(LD->LoopStmt) : nullptr;

  AccessClasses AC = AccessClasses::build(G);
  W.Classes.clear();
  W.Classes.resize(AC.classes().size());
  for (unsigned I = 0; I < AC.classes().size(); ++I) {
    W.Classes[I].Members = AC.classes()[I].Members;
    for (AccessId Id : W.Classes[I].Members)
      W.ClassIdx[Id] = I;
  }

  if (!Loop) {
    W.Unmodeled = true;
    for (ClassWitness &C : W.Classes)
      C.Reason = "loop not in canonical form";
    return;
  }

  prepass(Loop, LD->InFunction);
  W.FreshObjects = Fresh;
  if (Unmodeled) {
    W.Unmodeled = true;
    for (ClassWitness &C : W.Classes)
      C.Reason = "unmodeled bulk memory operation in loop";
    return;
  }

  // One symbolic iteration, starting from an empty (worst-case) state.
  AbsState St;
  MustPath = true;
  analyzeStmt(Loop->getBody(), St);

  // Per-access proofs.
  for (AccessId Id : Vertices) {
    const AccessDesc &D = Num.access(Id);
    std::set<uint32_t> Roots = PT.lvalueRootObjects(D.location());
    bool RootsFresh = allRootsFresh(Roots);
    if (RootsFresh)
      W.AllRootsFresh.insert(Id);
    if (D.IsStore) {
      bool Dead = !Roots.empty();
      for (uint32_t O : Roots)
        if (!objFresh(O) && ReadOutside.count(O))
          Dead = false;
      if (Dead || RootsFresh)
        W.ProvenStores.insert(Id);
    } else {
      bool Covered = Walked.count(Id) && !Unproven.count(Id);
      if (Covered || RootsFresh)
        W.ProvenLoads.insert(Id);
    }
  }
  W.MustCarried = MustCarried;

  // Per-class verdicts.
  for (ClassWitness &C : W.Classes) {
    bool Loads = true, Stores = true, FreshAll = true, Carried = false;
    for (AccessId Id : C.Members) {
      const AccessDesc &D = Num.access(Id);
      if (D.IsStore)
        Stores = Stores && W.ProvenStores.count(Id) != 0;
      else
        Loads = Loads && W.ProvenLoads.count(Id) != 0;
      FreshAll = FreshAll && W.AllRootsFresh.count(Id) != 0;
      Carried = Carried || MustCarried.count(Id) != 0;
    }
    C.LoadsCovered = Loads;
    C.StoresDead = Stores;
    C.AllFresh = FreshAll;
    if (Carried) {
      C.Verdict = PrivatizationVerdict::ProvenShared;
      C.Reason = "certain loop-carried flow dependence";
    } else if (Loads && Stores) {
      C.Verdict = PrivatizationVerdict::ProvenPrivate;
      C.Reason = FreshAll ? "all storage freshly allocated per iteration"
                          : "loads covered by same-iteration writes; stores "
                            "dead outside the loop";
    } else {
      C.Verdict = PrivatizationVerdict::Unknown;
      C.Reason = !Loads ? "a load may read earlier-iteration state"
                        : "a store may be live after the loop";
    }
  }

  // Third verdict tier: a shared/unknown class whose every carried use is
  // one associative+commutative reduction op can still run on per-thread
  // copies, folded deterministically at loop exit.
  detectCommutative(W, Loop);
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

PrivatizationWitness PrivatizationWitness::compute(Module &M, unsigned LoopId,
                                                   const PointsTo &PT,
                                                   const AccessNumbering &Num,
                                                   const LoopDepGraph &G) {
  PrivatizationWitness W;
  PrivatizerEngine Engine(M, LoopId, PT, Num, G);
  Engine.run(W);
  return W;
}

PrivatizationVerdict PrivatizationWitness::verdictOf(AccessId Id) const {
  auto It = ClassIdx.find(Id);
  if (It == ClassIdx.end())
    return PrivatizationVerdict::Unknown;
  return Classes[It->second].Verdict;
}

unsigned PrivatizationWitness::count(PrivatizationVerdict V) const {
  unsigned N = 0;
  for (const ClassWitness &C : Classes)
    if (C.Verdict == V)
      ++N;
  return N;
}

LoopDepGraph PrivatizationWitness::refineGraph(const LoopDepGraph &G) const {
  LoopDepGraph W = G;
  if (Unmodeled)
    return W;
  for (AccessId Id : ProvenLoads)
    W.UpwardsExposedLoads.erase(Id);
  for (AccessId Id : ProvenStores)
    W.DownwardsExposedStores.erase(Id);
  std::set<DepEdge> Kept;
  for (const DepEdge &E : G.Edges) {
    if (E.Carried) {
      // Storage fresh on both ends cannot carry anything across iterations.
      if (AllRootsFresh.count(E.Src) && AllRootsFresh.count(E.Dst))
        continue;
      // A covered load reads only same-iteration values: carried flow into
      // it is refuted. Carried anti/output stay — they are condition (3).
      if (E.Kind == DepKind::Flow && ProvenLoads.count(E.Dst))
        continue;
    }
    Kept.insert(E);
  }
  W.Edges = std::move(Kept);
  return W;
}

std::string PrivatizationWitness::str() const {
  std::string Out = formatString("witness loop %u\n", LoopId);
  if (Unmodeled)
    Out += "unmodeled\n";
  for (unsigned I = 0; I < Classes.size(); ++I) {
    const ClassWitness &C = Classes[I];
    Out += formatString("class %u %s", I,
                        privatizationVerdictName(C.Verdict));
    if (C.Verdict == PrivatizationVerdict::ProvenCommutative)
      Out += formatString(" op=%s", commutativeOpName(C.Op));
    for (AccessId Id : C.Members)
      Out += formatString(" %u", Id);
    Out += "\n";
    Out += formatString("  loads-covered %d stores-dead %d fresh %d  # %s\n",
                        C.LoadsCovered ? 1 : 0, C.StoresDead ? 1 : 0,
                        C.AllFresh ? 1 : 0, C.Reason.c_str());
  }
  auto emitSet = [&Out](const char *Name, const std::set<AccessId> &S) {
    if (S.empty())
      return;
    Out += Name;
    for (AccessId Id : S)
      Out += formatString(" %u", Id);
    Out += "\n";
  };
  emitSet("proven-loads", ProvenLoads);
  emitSet("proven-stores", ProvenStores);
  emitSet("must-carried", MustCarried);
  if (!FreshObjects.empty()) {
    Out += "fresh-objects";
    for (uint32_t O : FreshObjects)
      Out += formatString(" %u", O);
    Out += "\n";
  }
  return Out;
}
