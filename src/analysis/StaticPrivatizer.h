//===- StaticPrivatizer.h - Static privatization witness --------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive, field-sensitive must-write-coverage analysis over one
/// iteration of a candidate loop that re-derives the paper's Definitions 2-5
/// statically instead of from the profile.
///
/// The conservative StaticDeps graph (the §4.1 foil) reports every
/// may-aliasing pair as both loop-carried and loop-independent, which blocks
/// privatization of exactly the working buffers the paper's workloads
/// privatize. This analysis computes, per points-to object and per candidate
/// iteration:
///
///  - must-write coverage: the byte intervals certainly written by the
///    iteration before a given program point (strong updates from
///    constant-offset stores, plus recognized dense sweep nests like
///    `for (y) for (x) a[y*8+x] = ...` whose mixed-radix image is a single
///    interval);
///  - allocation freshness: heap objects whose allocation site executes
///    inside the loop are private to their iteration by construction;
///  - liveness outside the loop: an object never loaded outside the loop
///    body (or its transitively reachable callees) cannot make a store
///    downwards-exposed.
///
/// From these facts every access class of the conservative graph gets a
/// verdict:
///
///  - ProvenPrivate: every member load reads only bytes the same iteration
///    already wrote (or a per-iteration-fresh object), and every member
///    store targets objects that are fresh or never read outside the loop.
///    Conditions (1) and (2) of Definition 5 hold by construction; the
///    access class needs no runtime guard.
///  - ProvenShared: a must-executed load reads bytes no earlier statement of
///    the iteration can have written, and a later must-executed store
///    overwrites them — a certain loop-carried flow dependence. A profile
///    that claims this class private is refuted.
///  - Unknown: neither proof went through; defer to the profile (and keep
///    the guards).
///
/// refineGraph() applies the per-access proofs to the conservative graph:
/// proven loads stop being upwards-exposed and lose incident carried flow
/// edges, proven stores stop being downwards-exposed, and accesses meeting
/// only on fresh objects lose all carried edges. Carried anti/output edges
/// between surviving accesses are kept — they are what licenses
/// privatization (Definition 5, condition 3). The refined graph is served by
/// AnalysisManager as GraphSource::Witness and is a drop-in input to the
/// expansion pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_ANALYSIS_STATICPRIVATIZER_H
#define GDSE_ANALYSIS_STATICPRIVATIZER_H

#include "analysis/AccessClasses.h"
#include "analysis/DepGraph.h"
#include "analysis/PointsTo.h"
#include "ir/AccessInfo.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gdse {

/// What the static analysis can say about one access class.
enum class PrivatizationVerdict : uint8_t {
  ProvenPrivate,    ///< conditions (1)+(2) of Definition 5 hold statically
  ProvenShared,     ///< a loop-carried flow dependence certainly exists
  Unknown,          ///< no proof either way; defer to the profile
  ProvenCommutative, ///< carried flow exists but every carried use is one
                     ///< associative/commutative reduction op — per-thread
                     ///< copies merged at loop exit are exact
};

/// "proven-private" / "proven-shared" / "unknown" / "proven-commutative".
const char *privatizationVerdictName(PrivatizationVerdict V);

/// The reduction operator of a ProvenCommutative class. Only exact
/// (integer) operators are admitted: wrap-around + and * are fully
/// associative and commutative, min/max are idempotent besides, so folding
/// per-thread partial results in any fixed order reproduces the serial
/// value bit for bit.
enum class CommutativeOp : uint8_t { None, Add, Mul, Min, Max };

/// "none" / "add" / "mul" / "min" / "max".
const char *commutativeOpName(CommutativeOp Op);

/// Verdict and supporting facts for one access class of the conservative
/// static graph.
struct ClassWitness {
  std::vector<AccessId> Members;
  PrivatizationVerdict Verdict = PrivatizationVerdict::Unknown;
  /// Every member load is covered by same-iteration must-writes or reads a
  /// per-iteration-fresh object.
  bool LoadsCovered = false;
  /// Every member store targets a fresh object or one never read outside
  /// the loop.
  bool StoresDead = false;
  /// All objects the class touches are freshly allocated each iteration.
  bool AllFresh = false;
  /// Short deterministic explanation for diagnostics/dumps.
  std::string Reason;
  /// The reduction operator when Verdict == ProvenCommutative; None
  /// otherwise. The identity element follows from the op and the element
  /// type (0 for +, 1 for *, type max/min for min/max).
  CommutativeOp Op = CommutativeOp::None;
};

/// Result of the analysis for one candidate loop: per-access and per-class
/// verdicts plus the facts needed to refine the conservative graph, prune
/// guard plans, and audit the profile.
class PrivatizationWitness {
public:
  /// Runs the analysis. \p StaticG must be the conservative graph built by
  /// buildStaticDepGraph for the same loop of the same (untransformed)
  /// module — access ids are shared.
  static PrivatizationWitness compute(Module &M, unsigned LoopId,
                                      const PointsTo &PT,
                                      const AccessNumbering &Num,
                                      const LoopDepGraph &StaticG);

  unsigned loopId() const { return LoopId; }

  /// True when the loop body (or a reachable callee) contains bulk memory
  /// builtins the analysis does not model; every verdict is then Unknown.
  bool unmodeled() const { return Unmodeled; }

  /// Per-class results, index-aligned with AccessClasses::build(StaticG).
  const std::vector<ClassWitness> &classes() const { return Classes; }

  /// Verdict of the class containing \p Id (Unknown for accesses outside
  /// the loop's vertex set).
  PrivatizationVerdict verdictOf(AccessId Id) const;

  /// True when \p Id belongs to a ProvenPrivate class.
  bool provenPrivate(AccessId Id) const {
    return verdictOf(Id) == PrivatizationVerdict::ProvenPrivate;
  }

  /// The reduction operator of the ProvenCommutative class containing
  /// \p Id; None when the access is unknown or its class is not
  /// commutative.
  CommutativeOp commutativeOpOf(AccessId Id) const {
    auto It = ClassIdx.find(Id);
    if (It == ClassIdx.end())
      return CommutativeOp::None;
    const ClassWitness &C = Classes[It->second];
    return C.Verdict == PrivatizationVerdict::ProvenCommutative
               ? C.Op
               : CommutativeOp::None;
  }

  /// Number of classes with the given verdict.
  unsigned count(PrivatizationVerdict V) const;

  /// Per-access proof bits (keyed by vertex access id).
  bool loadProven(AccessId Id) const { return ProvenLoads.count(Id) != 0; }
  bool storeProven(AccessId Id) const { return ProvenStores.count(Id) != 0; }
  bool mustCarried(AccessId Id) const { return MustCarried.count(Id) != 0; }
  /// True when every root object of \p Id is freshly allocated each
  /// iteration. Freshness-proven loads cannot refute a profiled
  /// upwards-exposed-load observation (reading uninitialized fresh memory
  /// is still exposed) — audits must require coverage, i.e.
  /// loadProven(Id) && !rootsFresh(Id).
  bool rootsFresh(AccessId Id) const { return AllRootsFresh.count(Id) != 0; }

  /// Objects proven freshly allocated every iteration.
  const std::set<uint32_t> &freshObjects() const { return FreshObjects; }

  /// Applies the proofs to \p StaticG (normally the graph compute() saw):
  /// removes refuted exposure sets and carried flow edges, keeps carried
  /// anti/output between surviving accesses. Deterministic.
  LoopDepGraph refineGraph(const LoopDepGraph &StaticG) const;

  /// Deterministic, diffable dump (the `--dump=witness` printer).
  std::string str() const;

private:
  unsigned LoopId = 0;
  bool Unmodeled = false;
  std::vector<ClassWitness> Classes;
  std::map<AccessId, unsigned> ClassIdx;
  /// Loads proven covered-or-fresh; stores proven fresh-or-dead-outside.
  std::set<AccessId> ProvenLoads;
  std::set<AccessId> ProvenStores;
  /// Accesses participating in a proven loop-carried flow dependence.
  std::set<AccessId> MustCarried;
  std::set<uint32_t> FreshObjects;
  /// Accesses whose every root object is fresh (used by refineGraph to drop
  /// carried anti/output edges that cannot exist on fresh storage).
  std::set<AccessId> AllRootsFresh;

  friend class PrivatizerEngine;
};

} // namespace gdse

#endif // GDSE_ANALYSIS_STATICPRIVATIZER_H
