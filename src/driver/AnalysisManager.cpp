//===- AnalysisManager.cpp - Cached per-module/per-loop analyses -----------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisManager.h"

#include "analysis/StaticDeps.h"
#include "profile/DepProfiler.h"
#include "support/Support.h"

using namespace gdse;

const char *gdse::graphSourceName(GraphSource S) {
  switch (S) {
  case GraphSource::Profile:
    return "profile";
  case GraphSource::Static:
    return "static-deps";
  case GraphSource::External:
    return "external";
  }
  gdse_unreachable("bad graph source");
}

AnalysisManager::AnalysisManager(Module &M, DiagnosticEngine &DE,
                                 TimingRegistry *TR)
    : M(M), DE(DE), TR(TR) {}

void AnalysisManager::setExternalGraph(const LoopDepGraph *G) {
  if (G == External)
    return;
  External = G;
  for (auto It = Graphs.begin(); It != Graphs.end();)
    It = It->first.second == GraphSource::External ? Graphs.erase(It)
                                                   : std::next(It);
  for (auto It = Classes.begin(); It != Classes.end();)
    It = It->first.second == GraphSource::External ? Classes.erase(It)
                                                   : std::next(It);
}

void AnalysisManager::hit() {
  ++Stats.CacheHits;
  if (TR)
    TR->bumpCounter("analysis.cache.hits");
}

void AnalysisManager::miss() {
  ++Stats.CacheMisses;
  if (TR)
    TR->bumpCounter("analysis.cache.misses");
}

const AccessNumbering &AnalysisManager::numbering() {
  if (Num) {
    hit();
    return *Num;
  }
  miss();
  ++Stats.NumberingRuns;
  TimerScope T(TR, "analysis.numbering");
  Num = AccessNumbering::compute(M);
  return *Num;
}

const PointsTo &AnalysisManager::pointsTo() {
  if (PT) {
    hit();
    return *PT;
  }
  miss();
  ++Stats.PointsToRuns;
  TimerScope T(TR, "analysis.points-to");
  PT = PointsTo::compute(M);
  return *PT;
}

const LoopDepGraph *AnalysisManager::depGraph(unsigned LoopId,
                                              GraphSource Source) {
  LoopKey Key{LoopId, Source};
  auto It = Graphs.find(Key);
  if (It != Graphs.end()) {
    hit();
    if (It->second.Failed) {
      DE.report(It->second.FailDiag);
      return nullptr;
    }
    return &It->second.G;
  }
  miss();

  // Number the module first so every source sees consistent ids (and so the
  // expensive sub-analyses below are attributed to their own timers).
  const AccessNumbering &Numbering = numbering();

  CachedGraph Entry;
  DiagnosticScope Scope(DE, graphSourceName(Source), LoopId);
  switch (Source) {
  case GraphSource::Profile: {
    ++Stats.ProfileRuns;
    TimerScope T(TR, "analysis.profile");
    ProfileResult Prof = profileLoop(M, LoopId, this->Entry);
    if (TR)
      TR->addVmCycles("analysis.profile", Prof.Run.WorkCycles);
    if (!Prof.Run.ok()) {
      Entry.FailDiag = DE.error("profiling run failed: " + Prof.Run.TrapMessage);
      Entry.Failed = true;
    } else {
      Entry.G = std::move(Prof.Graph);
    }
    break;
  }
  case GraphSource::Static: {
    ++Stats.StaticGraphRuns;
    const PointsTo &P = pointsTo();
    TimerScope T(TR, "analysis.static-deps");
    Entry.G = buildStaticDepGraph(M, LoopId, P, Numbering);
    break;
  }
  case GraphSource::External:
    if (!External) {
      Entry.FailDiag = DE.error("GraphSource::External requires ExternalGraph");
      Entry.Failed = true;
    } else if (External->LoopId != LoopId) {
      Entry.FailDiag =
          DE.error("external graph was produced for a different loop");
      Entry.Failed = true;
    } else {
      Entry.G = *External;
    }
    break;
  }

  auto [Pos, Inserted] = Graphs.emplace(Key, std::move(Entry));
  (void)Inserted;
  return Pos->second.Failed ? nullptr : &Pos->second.G;
}

const AccessClasses *AnalysisManager::accessClasses(unsigned LoopId,
                                                    GraphSource Source) {
  LoopKey Key{LoopId, Source};
  auto It = Classes.find(Key);
  if (It != Classes.end()) {
    hit();
    return &It->second;
  }
  const LoopDepGraph *G = depGraph(LoopId, Source);
  if (!G)
    return nullptr;
  miss();
  ++Stats.ClassifyRuns;
  TimerScope T(TR, "analysis.access-classes");
  auto [Pos, Inserted] = Classes.emplace(Key, AccessClasses::build(*G));
  (void)Inserted;
  return &Pos->second;
}

void AnalysisManager::invalidateLoop(unsigned LoopId) {
  for (auto It = Graphs.begin(); It != Graphs.end();)
    It = It->first.first == LoopId ? Graphs.erase(It) : std::next(It);
  for (auto It = Classes.begin(); It != Classes.end();)
    It = It->first.first == LoopId ? Classes.erase(It) : std::next(It);
}

void AnalysisManager::invalidateModule() {
  Num.reset();
  PT.reset();
  Graphs.clear();
  Classes.clear();
}
