//===- AnalysisManager.cpp - Cached per-module/per-loop analyses -----------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/AnalysisManager.h"

#include "analysis/StaticDeps.h"
#include "interp/Bytecode.h"
#include "interp/Guard.h"
#include "profile/DepProfiler.h"
#include "support/Support.h"

#include <mutex>

using namespace gdse;

const char *gdse::graphSourceName(GraphSource S) {
  switch (S) {
  case GraphSource::Profile:
    return "profile";
  case GraphSource::Static:
    return "static-deps";
  case GraphSource::External:
    return "external";
  case GraphSource::Witness:
    return "witness";
  }
  gdse_unreachable("bad graph source");
}

AnalysisManager::AnalysisManager(Module &M, DiagnosticEngine &DE,
                                 TimingRegistry *TR)
    : M(M), DE(DE), TR(TR) {}

AnalysisManager::~AnalysisManager() = default;

void AnalysisManager::setEntry(std::string NewEntry) {
  if (NewEntry == Entry)
    return;
  Entry = std::move(NewEntry);
  // Profiled graphs describe one entry point's execution; a different entry
  // is a different program as far as the profiler is concerned. Negative
  // entries go too — the old entry's trap may not exist under the new one.
  std::shared_lock<std::shared_mutex> MapLock(ShardsMu);
  for (auto &[Id, Shard] : Shards) {
    (void)Id;
    std::unique_lock<std::shared_mutex> Lock(Shard->Mu);
    Shard->Graphs.erase(GraphSource::Profile);
    Shard->Classes.erase(GraphSource::Profile);
  }
}

void AnalysisManager::setExternalGraph(const LoopDepGraph *G) {
  if (G == External)
    return;
  External = G;
  std::shared_lock<std::shared_mutex> MapLock(ShardsMu);
  for (auto &[Id, Shard] : Shards) {
    (void)Id;
    std::unique_lock<std::shared_mutex> Lock(Shard->Mu);
    Shard->Graphs.erase(GraphSource::External);
    Shard->Classes.erase(GraphSource::External);
  }
}

void AnalysisManager::hit() {
  Stats.CacheHits.fetch_add(1, std::memory_order_relaxed);
  if (TR)
    TR->bumpCounter("analysis.cache.hits");
}

void AnalysisManager::miss() {
  Stats.CacheMisses.fetch_add(1, std::memory_order_relaxed);
  if (TR)
    TR->bumpCounter("analysis.cache.misses");
}

AnalysisManager::LoopShard &AnalysisManager::shardFor(unsigned LoopId) {
  {
    std::shared_lock<std::shared_mutex> Lock(ShardsMu);
    auto It = Shards.find(LoopId);
    if (It != Shards.end())
      return *It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(ShardsMu);
  auto &Slot = Shards[LoopId];
  if (!Slot)
    Slot = std::make_unique<LoopShard>();
  return *Slot;
}

const LoopDepGraph *AnalysisManager::served(const CachedGraph &Entry) {
  hit();
  if (Entry.Failed) {
    DE.report(Entry.FailDiag);
    return nullptr;
  }
  return &Entry.G;
}

const AccessNumbering &AnalysisManager::numbering() {
  {
    std::shared_lock<std::shared_mutex> Lock(ModuleMu);
    if (Num) {
      hit();
      return *Num;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(ModuleMu);
  if (Num) {
    hit();
    return *Num;
  }
  miss();
  Stats.NumberingRuns.fetch_add(1, std::memory_order_relaxed);
  TimerScope T(TR, "analysis.numbering");
  // Numbering WRITES access ids into the IR; the exclusive ModuleMu hold
  // means at most one thread runs it, and the batch driver guarantees no
  // other thread reads this module's IR before its first numbering (every
  // query path enters through here).
  Num = AccessNumbering::compute(M);
  return *Num;
}

const PointsTo &AnalysisManager::pointsTo() {
  {
    std::shared_lock<std::shared_mutex> Lock(ModuleMu);
    if (PT) {
      hit();
      return *PT;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(ModuleMu);
  if (PT) {
    hit();
    return *PT;
  }
  miss();
  Stats.PointsToRuns.fetch_add(1, std::memory_order_relaxed);
  TimerScope T(TR, "analysis.points-to");
  PT = PointsTo::compute(M);
  return *PT;
}

std::shared_ptr<const BytecodeModule> AnalysisManager::bytecode() {
  // The lowering bakes access and loop ids into the instructions; number
  // first, outside ModuleMu (numbering locks it itself).
  numbering();
  {
    std::shared_lock<std::shared_mutex> Lock(ModuleMu);
    if (BC) {
      hit();
      return BC;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(ModuleMu);
  if (BC) {
    hit();
    return BC;
  }
  miss();
  Stats.BytecodeLowerings.fetch_add(1, std::memory_order_relaxed);
  TimerScope T(TR, "analysis.bytecode");
  BC = lowerToBytecode(M, CostModel::defaults());
  return BC;
}

const LoopDepGraph *AnalysisManager::depGraph(unsigned LoopId,
                                              GraphSource Source) {
  LoopShard &Shard = shardFor(LoopId);
  {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    auto It = Shard.Graphs.find(Source);
    if (It != Shard.Graphs.end())
      return served(It->second);
  }

  // Number the module first so every source sees consistent ids (and so the
  // expensive sub-analyses below are attributed to their own timers). Done
  // before taking the shard lock: ModuleMu nests INSIDE shard locks only on
  // the short points-to read below, never the other way around.
  const AccessNumbering &Numbering = numbering();

  std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
  // Double-checked: another worker may have filled this entry while we were
  // numbering. The loser of the race records a hit, exactly like a serial
  // second query.
  auto It = Shard.Graphs.find(Source);
  if (It != Shard.Graphs.end())
    return served(It->second);
  miss();

  CachedGraph Entry;
  DiagnosticScope Scope(DE, graphSourceName(Source), LoopId);
  switch (Source) {
  case GraphSource::Profile: {
    Stats.ProfileRuns.fetch_add(1, std::memory_order_relaxed);
    // The profiling run itself executes on the session's shared bytecode
    // (lowered once per IR version) unless GDSE_ENGINE forces the
    // tree-walker. bytecode() takes ModuleMu inside this shard lock, the
    // one permitted nesting order.
    std::shared_ptr<const BytecodeModule> Precompiled;
    if (engineFromEnv() == ExecEngine::Bytecode)
      Precompiled = bytecode();
    TimerScope T(TR, "analysis.profile");
    ProfileResult Prof = profileLoop(M, LoopId, this->Entry, Precompiled);
    if (TR)
      TR->addVmCycles("analysis.profile", Prof.Run.WorkCycles);
    if (!Prof.Run.ok()) {
      Entry.FailDiag = DE.error("profiling run failed: " + Prof.Run.TrapMessage);
      Entry.Failed = true;
    } else {
      Entry.G = std::move(Prof.Graph);
    }
    break;
  }
  case GraphSource::Static: {
    Stats.StaticGraphRuns.fetch_add(1, std::memory_order_relaxed);
    const PointsTo &P = pointsTo();
    TimerScope T(TR, "analysis.static-deps");
    Entry.G = buildStaticDepGraph(M, LoopId, P, Numbering);
    break;
  }
  case GraphSource::Witness: {
    // Refine the conservative static graph with the witness's proofs. Both
    // ingredients live in THIS shard and are computed inline under the lock
    // we already hold — calling depGraph() here would self-deadlock.
    const LoopDepGraph &SG = staticGraphLocked(Shard, LoopId, Numbering);
    const PrivatizationWitness &W = witnessLocked(Shard, LoopId, Numbering);
    TimerScope T(TR, "analysis.witness-refine");
    Entry.G = W.refineGraph(SG);
    break;
  }
  case GraphSource::External:
    if (!External) {
      Entry.FailDiag = DE.error("GraphSource::External requires ExternalGraph");
      Entry.Failed = true;
    } else if (External->LoopId != LoopId) {
      Entry.FailDiag =
          DE.error("external graph was produced for a different loop");
      Entry.Failed = true;
    } else {
      Entry.G = *External;
    }
    break;
  }

  auto [Pos, Inserted] = Shard.Graphs.emplace(Source, std::move(Entry));
  (void)Inserted;
  return Pos->second.Failed ? nullptr : &Pos->second.G;
}

const LoopDepGraph &
AnalysisManager::staticGraphLocked(LoopShard &Shard, unsigned LoopId,
                                   const AccessNumbering &Numbering) {
  auto It = Shard.Graphs.find(GraphSource::Static);
  if (It != Shard.Graphs.end())
    return It->second.G; // static graphs never negatively cache
  Stats.StaticGraphRuns.fetch_add(1, std::memory_order_relaxed);
  const PointsTo &P = pointsTo(); // ModuleMu inside the shard lock: allowed
  TimerScope T(TR, "analysis.static-deps");
  CachedGraph Entry;
  Entry.G = buildStaticDepGraph(M, LoopId, P, Numbering);
  auto [Pos, Inserted] =
      Shard.Graphs.emplace(GraphSource::Static, std::move(Entry));
  (void)Inserted;
  return Pos->second.G;
}

const PrivatizationWitness &
AnalysisManager::witnessLocked(LoopShard &Shard, unsigned LoopId,
                               const AccessNumbering &Numbering) {
  if (Shard.Witness)
    return *Shard.Witness;
  const LoopDepGraph &SG = staticGraphLocked(Shard, LoopId, Numbering);
  Stats.WitnessRuns.fetch_add(1, std::memory_order_relaxed);
  const PointsTo &P = pointsTo();
  TimerScope T(TR, "analysis.witness");
  Shard.Witness = std::make_shared<const PrivatizationWitness>(
      PrivatizationWitness::compute(M, LoopId, P, Numbering, SG));
  return *Shard.Witness;
}

std::shared_ptr<const PrivatizationWitness>
AnalysisManager::staticWitness(unsigned LoopId) {
  LoopShard &Shard = shardFor(LoopId);
  {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    if (Shard.Witness) {
      hit();
      return Shard.Witness;
    }
  }
  const AccessNumbering &Numbering = numbering(); // before the shard lock
  std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
  if (Shard.Witness) {
    hit();
    return Shard.Witness;
  }
  miss();
  DiagnosticScope Scope(DE, "witness", LoopId);
  (void)witnessLocked(Shard, LoopId, Numbering);
  return Shard.Witness;
}

const AccessClasses *AnalysisManager::accessClasses(unsigned LoopId,
                                                    GraphSource Source) {
  LoopShard &Shard = shardFor(LoopId);
  {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    auto It = Shard.Classes.find(Source);
    if (It != Shard.Classes.end()) {
      hit();
      return &It->second;
    }
  }
  // Acquire the graph without holding the shard lock — depGraph takes it.
  const LoopDepGraph *G = depGraph(LoopId, Source);
  if (!G)
    return nullptr;
  std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
  auto It = Shard.Classes.find(Source);
  if (It != Shard.Classes.end()) {
    hit();
    return &It->second;
  }
  miss();
  Stats.ClassifyRuns.fetch_add(1, std::memory_order_relaxed);
  TimerScope T(TR, "analysis.access-classes");
  auto [Pos, Inserted] = Shard.Classes.emplace(Source, AccessClasses::build(*G));
  (void)Inserted;
  return &Pos->second;
}

void AnalysisManager::setGuardPlan(unsigned LoopId,
                                   std::shared_ptr<const GuardPlan> GP) {
  std::unique_lock<std::shared_mutex> Lock(GuardMu);
  if (GP)
    GuardPlansById[LoopId] = std::move(GP);
  else
    GuardPlansById.erase(LoopId);
}

std::shared_ptr<const GuardPlan>
AnalysisManager::guardPlan(unsigned LoopId) const {
  std::shared_lock<std::shared_mutex> Lock(GuardMu);
  auto It = GuardPlansById.find(LoopId);
  return It != GuardPlansById.end() ? It->second : nullptr;
}

std::vector<std::shared_ptr<const GuardPlan>>
AnalysisManager::guardPlans() const {
  std::shared_lock<std::shared_mutex> Lock(GuardMu);
  std::vector<std::shared_ptr<const GuardPlan>> Out;
  Out.reserve(GuardPlansById.size());
  for (const auto &[Id, GP] : GuardPlansById) {
    (void)Id;
    Out.push_back(GP);
  }
  return Out;
}

void AnalysisManager::invalidateLoop(unsigned LoopId) {
  // Invalidation only ever touches this loop's own shard — other loops'
  // cached graphs survive, which is the whole point of AllExceptLoop.
  // Clearing the maps drops negative entries along with positive ones.
  {
    std::shared_lock<std::shared_mutex> MapLock(ShardsMu);
    auto It = Shards.find(LoopId);
    if (It != Shards.end()) {
      std::unique_lock<std::shared_mutex> Lock(It->second->Mu);
      It->second->Graphs.clear();
      It->second->Classes.clear();
      It->second->Witness.reset();
    }
  }
  // The loop's body changed in place, and the module bytecode embeds it:
  // drop the lowering (numbering and points-to survive — per-loop rewrites
  // preserve them, that is the invalidateLoop contract). Shard locks are
  // released above; ModuleMu is never taken inside one here.
  std::unique_lock<std::shared_mutex> Lock(ModuleMu);
  BC.reset();
}

void AnalysisManager::invalidateModule() {
  // Shards first, then module-level results; ModuleMu is never held while
  // a shard lock is taken (the nesting is shard -> module elsewhere).
  {
    std::shared_lock<std::shared_mutex> MapLock(ShardsMu);
    for (auto &[Id, Shard] : Shards) {
      (void)Id;
      std::unique_lock<std::shared_mutex> Lock(Shard->Mu);
      Shard->Graphs.clear();
      Shard->Classes.clear();
      Shard->Witness.reset();
    }
  }
  std::unique_lock<std::shared_mutex> Lock(ModuleMu);
  Num.reset();
  PT.reset();
  BC.reset();
}

AnalysisStats AnalysisManager::stats() const {
  AnalysisStats S;
  S.CacheHits = Stats.CacheHits.load(std::memory_order_relaxed);
  S.CacheMisses = Stats.CacheMisses.load(std::memory_order_relaxed);
  S.ProfileRuns = Stats.ProfileRuns.load(std::memory_order_relaxed);
  S.PointsToRuns = Stats.PointsToRuns.load(std::memory_order_relaxed);
  S.NumberingRuns = Stats.NumberingRuns.load(std::memory_order_relaxed);
  S.StaticGraphRuns = Stats.StaticGraphRuns.load(std::memory_order_relaxed);
  S.WitnessRuns = Stats.WitnessRuns.load(std::memory_order_relaxed);
  S.ClassifyRuns = Stats.ClassifyRuns.load(std::memory_order_relaxed);
  S.BytecodeLowerings =
      Stats.BytecodeLowerings.load(std::memory_order_relaxed);
  return S;
}
