//===- AnalysisManager.h - Cached per-module/per-loop analyses --*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the compilation-session architecture. One
/// AnalysisManager owns every analysis result derived from one module:
///
///  - per-module: AccessNumbering, PointsTo;
///  - per-(loop, graph source): the LoopDepGraph (profiled, static, or
///    caller-registered external) and its Definition 4/5 AccessClasses.
///
/// Queries are lazy and cached; repeated queries return the cached result
/// (counted in AnalysisStats, the basis of the batch-compilation guarantee
/// that the profiler runs at most once per (loop, source)). Transform
/// passes report what they preserved and the PassManager invalidates
/// accordingly: invalidateModule() drops everything (the IR changed),
/// invalidateLoop() drops only one loop's graphs and classes.
///
/// Failed graph acquisitions (a trapped profiling run, a missing or
/// mismatched external graph) are reported through the DiagnosticEngine and
/// negatively cached, so a batch session does not re-run a failing profile
/// for every downstream query. Negative entries live in the same shard as
/// positive ones and travel the same invalidation path: a transform pass
/// that changes the IR drops cached FAILURES too, so a loop that becomes
/// analyzable after expansion is re-profiled instead of replaying a stale
/// error.
///
/// Thread-safety: QUERIES are safe from concurrent worker threads. The
/// per-loop caches are sharded — each loop id owns a shard guarded by its
/// own std::shared_mutex, so readers of already-cached graphs never
/// serialize against each other and two workers computing graphs for
/// different loops proceed in parallel. Module-level results (numbering,
/// points-to) sit behind a separate shared_mutex, and the stats counters
/// are atomics. INVALIDATION and the setters (setEntry, setExternalGraph)
/// still belong to whichever thread owns the module's transform phase:
/// transform passes mutate the IR itself, which no lock here can protect,
/// so the driver serializes per-module pipelines and only runs concurrent
/// queries between them (see CompilationSession::compileBatch).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_ANALYSISMANAGER_H
#define GDSE_DRIVER_ANALYSISMANAGER_H

#include "analysis/AccessClasses.h"
#include "analysis/DepGraph.h"
#include "analysis/PointsTo.h"
#include "analysis/StaticPrivatizer.h"
#include "ir/AccessInfo.h"
#include "support/Diagnostics.h"
#include "support/Timing.h"

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

namespace gdse {

struct BytecodeModule;
struct GuardPlan;

/// Where a loop-level dependence graph comes from (§2: "from the
/// programmer, the compiler, or tools that perform data dependence
/// profiling").
enum class GraphSource : uint8_t {
  Profile,  ///< dependence profiling run (the paper's evaluation setup)
  Static,   ///< conservative compile-time analysis (the §4.1 foil)
  External, ///< caller-supplied, e.g. programmer-verified (GraphIO.h)
  Witness,  ///< Static refined by the privatization witness's proofs
};

const char *graphSourceName(GraphSource S);

/// Cache behaviour counters; also mirrored into the TimingRegistry's named
/// counters when one is attached. Snapshot semantics: AnalysisManager keeps
/// the live counts in atomics and materializes this plain struct on demand.
struct AnalysisStats {
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Dependence-profiling interpreter executions (each is one whole-program
  /// VM run — by far the most expensive analysis).
  uint64_t ProfileRuns = 0;
  uint64_t PointsToRuns = 0;
  uint64_t NumberingRuns = 0;
  uint64_t StaticGraphRuns = 0;
  /// Static privatization witness computations (one per loop per IR version).
  uint64_t WitnessRuns = 0;
  uint64_t ClassifyRuns = 0;
  /// Register-bytecode lowerings of the whole module (each feeds every
  /// profiling run until the IR changes).
  uint64_t BytecodeLowerings = 0;
};

class AnalysisManager {
public:
  AnalysisManager(Module &M, DiagnosticEngine &DE,
                  TimingRegistry *TR = nullptr);
  ~AnalysisManager();

  /// Entry function executed by profiling runs (default "main"). Changing
  /// the entry drops every cached Profile-source result — graphs profiled
  /// under another entry point describe a different execution.
  void setEntry(std::string Entry);
  const std::string &entry() const { return Entry; }

  /// Registers the caller-supplied graph served for GraphSource::External.
  /// May be null to clear. The graph must outlive the manager (or the next
  /// setExternalGraph call). Changing the registered graph drops every
  /// cached External result (including negatively-cached failures).
  void setExternalGraph(const LoopDepGraph *G);

  //===--------------------------------------------------------------------===//
  // Queries (safe to call concurrently)
  //===--------------------------------------------------------------------===//

  /// Module-wide access/loop numbering of the CURRENT IR.
  const AccessNumbering &numbering();
  /// Whole-program Andersen points-to of the CURRENT IR.
  const PointsTo &pointsTo();
  /// The CURRENT IR lowered to register bytecode (default cost table) —
  /// the execution format every profiling run of this session shares.
  /// Numbering runs first (the lowering bakes access/loop ids in).
  /// Invalidated whenever the IR changes: invalidateModule, and also
  /// invalidateLoop, since the module bytecode embeds every loop's body.
  std::shared_ptr<const BytecodeModule> bytecode();

  /// The dependence graph of \p LoopId under \p Source. Null on failure
  /// (an error diagnostic has been emitted); failures are negatively
  /// cached until invalidation.
  const LoopDepGraph *depGraph(unsigned LoopId, GraphSource Source);

  /// Definition 4/5 classification of depGraph(LoopId, Source). Null when
  /// the underlying graph is unavailable.
  const AccessClasses *accessClasses(unsigned LoopId, GraphSource Source);

  /// The static privatization witness of \p LoopId: per-access-class
  /// ProvenPrivate / ProvenShared / Unknown verdicts derived from the
  /// conservative static graph (StaticPrivatizer.h). Never null; cached per
  /// loop and dropped on the same invalidation path as the graphs. The
  /// shared_ptr keeps a result alive across invalidation for callers that
  /// captured it (guard plans reference verdicts of the pre-transform IR).
  std::shared_ptr<const PrivatizationWitness> staticWitness(unsigned LoopId);

  //===--------------------------------------------------------------------===//
  // Guarded-execution metadata (transform OUTPUT, not an analysis)
  //===--------------------------------------------------------------------===//

  /// Registers the guard plan the expansion pass produced for \p LoopId —
  /// the byte ranges its privatized classes claimed private. Cached
  /// alongside the bytecode so every later execution of the rewritten
  /// module (bench runs, guarded re-runs) can validate the privatization
  /// without re-running the transform. Unlike analyses, plans describe the
  /// REWRITTEN IR, so they deliberately survive invalidateLoop /
  /// invalidateModule (those drop results derived from superseded IR; the
  /// plan belongs to the IR that superseded it). Null clears the entry.
  void setGuardPlan(unsigned LoopId, std::shared_ptr<const GuardPlan> GP);

  /// The registered guard plan of \p LoopId; null when the loop was never
  /// expanded (or expansion privatized nothing).
  std::shared_ptr<const GuardPlan> guardPlan(unsigned LoopId) const;

  /// All registered guard plans, ready for InterpOptions::GuardPlans.
  std::vector<std::shared_ptr<const GuardPlan>> guardPlans() const;

  //===--------------------------------------------------------------------===//
  // Invalidation (serial phase — must not race with queries on this module)
  //===--------------------------------------------------------------------===//

  /// The IR of \p LoopId changed (e.g. planner wrapped its body in ordered
  /// regions): drop that loop's graphs and classes — cached failures
  /// included — keep every other loop's shard.
  void invalidateLoop(unsigned LoopId);
  /// The module-wide IR changed (expansion, rtpriv): drop everything,
  /// positive and negative entries alike.
  void invalidateModule();

  AnalysisStats stats() const;
  Module &module() { return M; }
  DiagnosticEngine &diags() { return DE; }

private:
  struct CachedGraph {
    bool Failed = false;
    /// The failure's diagnostic, replayed verbatim on every cached-failure
    /// query so each compileLoop attempt still reports why it failed.
    Diagnostic FailDiag;
    LoopDepGraph G;
  };

  /// One loop's slice of the cache. Shards are created on first touch and
  /// never destroyed before the manager, so the per-shard locks stay valid
  /// across invalidation (which only clears the maps inside).
  struct LoopShard {
    mutable std::shared_mutex Mu;
    std::map<GraphSource, CachedGraph> Graphs;
    std::map<GraphSource, AccessClasses> Classes;
    std::shared_ptr<const PrivatizationWitness> Witness;
  };

  void hit();
  void miss();
  LoopShard &shardFor(unsigned LoopId);
  /// Serves a cache entry found in a shard: counts the hit, replays the
  /// failure diagnostic for negative entries. Caller holds the shard lock.
  const LoopDepGraph *served(const CachedGraph &Entry);
  /// The conservative static graph entry of \p LoopId, computed and cached
  /// in \p Shard on first use. Caller holds Shard.Mu exclusively (never
  /// recurses into depGraph — that would self-deadlock on the shard).
  const LoopDepGraph &staticGraphLocked(LoopShard &Shard, unsigned LoopId,
                                        const AccessNumbering &Numbering);
  /// The privatization witness of \p LoopId, computed from the static graph
  /// and cached in \p Shard. Same locking contract as staticGraphLocked.
  const PrivatizationWitness &witnessLocked(LoopShard &Shard, unsigned LoopId,
                                            const AccessNumbering &Numbering);

  Module &M;
  DiagnosticEngine &DE;
  TimingRegistry *TR;
  std::string Entry = "main";
  const LoopDepGraph *External = nullptr;

  /// Guards Num and PT (module-level results). Lock order: a thread may
  /// acquire ModuleMu while holding a shard lock (the Static path needs
  /// points-to), never the reverse.
  mutable std::shared_mutex ModuleMu;
  std::optional<AccessNumbering> Num;
  std::optional<PointsTo> PT;
  std::shared_ptr<const BytecodeModule> BC;

  /// Guards the shard MAP only; individual shards carry their own locks.
  mutable std::shared_mutex ShardsMu;
  std::map<unsigned, std::unique_ptr<LoopShard>> Shards;

  /// Guard plans by loop id (see setGuardPlan). Own lock: plans are written
  /// during the serial transform phase but read by concurrent bench/exec
  /// setup, and they must not be swept by analysis invalidation.
  mutable std::shared_mutex GuardMu;
  std::map<unsigned, std::shared_ptr<const GuardPlan>> GuardPlansById;

  struct {
    std::atomic<uint64_t> CacheHits{0};
    std::atomic<uint64_t> CacheMisses{0};
    std::atomic<uint64_t> ProfileRuns{0};
    std::atomic<uint64_t> PointsToRuns{0};
    std::atomic<uint64_t> NumberingRuns{0};
    std::atomic<uint64_t> StaticGraphRuns{0};
    std::atomic<uint64_t> WitnessRuns{0};
    std::atomic<uint64_t> ClassifyRuns{0};
    std::atomic<uint64_t> BytecodeLowerings{0};
  } Stats;
};

} // namespace gdse

#endif // GDSE_DRIVER_ANALYSISMANAGER_H
