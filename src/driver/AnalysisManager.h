//===- AnalysisManager.h - Cached per-module/per-loop analyses --*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the compilation-session architecture. One
/// AnalysisManager owns every analysis result derived from one module:
///
///  - per-module: AccessNumbering, PointsTo;
///  - per-(loop, graph source): the LoopDepGraph (profiled, static, or
///    caller-registered external) and its Definition 4/5 AccessClasses.
///
/// Queries are lazy and cached; repeated queries return the cached result
/// (counted in AnalysisStats, the basis of the batch-compilation guarantee
/// that the profiler runs at most once per (loop, source)). Transform
/// passes report what they preserved and the PassManager invalidates
/// accordingly: invalidateModule() drops everything (the IR changed),
/// invalidateLoop() drops only one loop's graphs and classes.
///
/// Failed graph acquisitions (a trapped profiling run, a missing or
/// mismatched external graph) are reported through the DiagnosticEngine and
/// negatively cached, so a batch session does not re-run a failing profile
/// for every downstream query.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_ANALYSISMANAGER_H
#define GDSE_DRIVER_ANALYSISMANAGER_H

#include "analysis/AccessClasses.h"
#include "analysis/DepGraph.h"
#include "analysis/PointsTo.h"
#include "ir/AccessInfo.h"
#include "support/Diagnostics.h"
#include "support/Timing.h"

#include <map>
#include <optional>
#include <string>

namespace gdse {

/// Where a loop-level dependence graph comes from (§2: "from the
/// programmer, the compiler, or tools that perform data dependence
/// profiling").
enum class GraphSource : uint8_t {
  Profile,  ///< dependence profiling run (the paper's evaluation setup)
  Static,   ///< conservative compile-time analysis (the §4.1 foil)
  External, ///< caller-supplied, e.g. programmer-verified (GraphIO.h)
};

const char *graphSourceName(GraphSource S);

/// Cache behaviour counters; also mirrored into the TimingRegistry's named
/// counters when one is attached.
struct AnalysisStats {
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Dependence-profiling interpreter executions (each is one whole-program
  /// VM run — by far the most expensive analysis).
  uint64_t ProfileRuns = 0;
  uint64_t PointsToRuns = 0;
  uint64_t NumberingRuns = 0;
  uint64_t StaticGraphRuns = 0;
  uint64_t ClassifyRuns = 0;
};

class AnalysisManager {
public:
  AnalysisManager(Module &M, DiagnosticEngine &DE,
                  TimingRegistry *TR = nullptr);

  /// Entry function executed by profiling runs (default "main").
  void setEntry(std::string Entry) { this->Entry = std::move(Entry); }
  const std::string &entry() const { return Entry; }

  /// Registers the caller-supplied graph served for GraphSource::External.
  /// May be null to clear. The graph must outlive the manager (or the next
  /// setExternalGraph call). Changing the registered graph drops every
  /// cached External result (including negatively-cached failures).
  void setExternalGraph(const LoopDepGraph *G);

  //===--------------------------------------------------------------------===//
  // Queries
  //===--------------------------------------------------------------------===//

  /// Module-wide access/loop numbering of the CURRENT IR.
  const AccessNumbering &numbering();
  /// Whole-program Andersen points-to of the CURRENT IR.
  const PointsTo &pointsTo();

  /// The dependence graph of \p LoopId under \p Source. Null on failure
  /// (an error diagnostic has been emitted); failures are negatively
  /// cached until invalidation.
  const LoopDepGraph *depGraph(unsigned LoopId, GraphSource Source);

  /// Definition 4/5 classification of depGraph(LoopId, Source). Null when
  /// the underlying graph is unavailable.
  const AccessClasses *accessClasses(unsigned LoopId, GraphSource Source);

  //===--------------------------------------------------------------------===//
  // Invalidation
  //===--------------------------------------------------------------------===//

  /// The IR of \p LoopId changed (e.g. planner wrapped its body in ordered
  /// regions): drop that loop's graphs and classes, keep everything else.
  void invalidateLoop(unsigned LoopId);
  /// The module-wide IR changed (expansion, rtpriv): drop everything.
  void invalidateModule();

  const AnalysisStats &stats() const { return Stats; }
  Module &module() { return M; }
  DiagnosticEngine &diags() { return DE; }

private:
  struct CachedGraph {
    bool Failed = false;
    /// The failure's diagnostic, replayed verbatim on every cached-failure
    /// query so each compileLoop attempt still reports why it failed.
    Diagnostic FailDiag;
    LoopDepGraph G;
  };
  using LoopKey = std::pair<unsigned, GraphSource>;

  void hit();
  void miss();

  Module &M;
  DiagnosticEngine &DE;
  TimingRegistry *TR;
  std::string Entry = "main";
  const LoopDepGraph *External = nullptr;

  std::optional<AccessNumbering> Num;
  std::optional<PointsTo> PT;
  std::map<LoopKey, CachedGraph> Graphs;
  std::map<LoopKey, AccessClasses> Classes;
  AnalysisStats Stats;
};

} // namespace gdse

#endif // GDSE_DRIVER_ANALYSISMANAGER_H
