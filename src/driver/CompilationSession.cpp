//===- CompilationSession.cpp - Multi-loop batch compilation ---------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/CompilationSession.h"

#include "driver/PassManager.h"
#include "ir/IR.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <map>

using namespace gdse;

CompilationSession::CompilationSession(Module &M) : M(M), AM(M, DE, &TR) {}

std::vector<unsigned> CompilationSession::candidateLoops() {
  const AccessNumbering &Num = AM.numbering();
  std::vector<unsigned> Out;
  for (const LoopDesc &L : Num.loops())
    if (auto *F = dyn_cast<ForStmt>(L.LoopStmt))
      if (F->isCandidate())
        Out.push_back(L.Id);
  return Out;
}

PipelineResult CompilationSession::compileLoop(unsigned LoopId,
                                               const PipelineOptions &Opts) {
  PipelineResult R;
  R.LoopId = LoopId;
  size_t DiagStart = DE.size();
  AM.setEntry(Opts.Entry);
  AM.setExternalGraph(Opts.ExternalGraph);

  auto finish = [&](bool Ok) -> PipelineResult & {
    R.Diags = DE.diagnosticsSince(DiagStart);
    R.Errors = DE.errorStrings(DiagStart);
    R.Ok = Ok && R.Errors.empty();
    return R;
  };

  // --- Graph acquisition + Definition 4/5 classification. -----------------
  // A failed profiling run or a missing/mismatched external graph short-
  // circuits here: nothing downstream sees a partially-filled result.
  const LoopDepGraph *G = AM.depGraph(LoopId, Opts.Source);
  if (!G)
    return finish(false);
  const AccessClasses *Classes = AM.accessClasses(LoopId, Opts.Source);
  if (!Classes)
    return finish(false);
  R.Graph = *G;
  R.Breakdown = computeAccessBreakdown(*G, *Classes);
  R.PrivateAccesses = Classes->privateAccesses();

  // --- Privatization + planning as registered passes. ---------------------
  PassManager PM;
  // The audit must see the untransformed module: witness access ids match
  // the profiled graph only before expansion rewrites the loop.
  if (Opts.AuditDeps || envFlag("GDSE_AUDIT_DEPS"))
    PM.add(createAuditPass());
  switch (Opts.Method) {
  case PrivatizationMethod::Expansion:
    PM.add(createExpansionPass());
    break;
  case PrivatizationMethod::Runtime:
    PM.add(createRtPrivPass());
    break;
  case PrivatizationMethod::None:
    break;
  }
  PM.add(createPlannerPass());

  PassContext Cx{M, LoopId, Opts, AM, DE, R, {}};
  bool Ok = PM.run(Cx, &TR);
  return finish(Ok);
}

std::vector<PipelineResult>
CompilationSession::compileAll(const PipelineOptions &Opts) {
  std::vector<PipelineResult> Out;
  for (unsigned LoopId : candidateLoops()) {
    Out.push_back(compileLoop(LoopId, Opts));
    if (!Out.back().Ok)
      break;
  }
  return Out;
}

static AnalysisStats statsDelta(const AnalysisStats &After,
                                const AnalysisStats &Before) {
  AnalysisStats D;
  D.CacheHits = After.CacheHits - Before.CacheHits;
  D.CacheMisses = After.CacheMisses - Before.CacheMisses;
  D.ProfileRuns = After.ProfileRuns - Before.ProfileRuns;
  D.PointsToRuns = After.PointsToRuns - Before.PointsToRuns;
  D.NumberingRuns = After.NumberingRuns - Before.NumberingRuns;
  D.StaticGraphRuns = After.StaticGraphRuns - Before.StaticGraphRuns;
  D.WitnessRuns = After.WitnessRuns - Before.WitnessRuns;
  D.ClassifyRuns = After.ClassifyRuns - Before.ClassifyRuns;
  return D;
}

std::vector<BatchUnitResult>
CompilationSession::compileBatch(const std::vector<BatchUnit> &Units,
                                 unsigned Jobs,
                                 DiagnosticEngine *MergedDiags,
                                 TimingRegistry *MergedTiming) {
  std::vector<BatchUnitResult> Out(Units.size());

  // Group unit indices by module, preserving each module's first-appearance
  // order. A module's units share one session (cached analyses carry
  // across them) and are serialized on one worker: transform passes mutate
  // the module IR, which must never happen concurrently. Distinct modules
  // share nothing and compile fully in parallel.
  std::vector<Module *> GroupModules;
  std::map<Module *, std::vector<size_t>> UnitsOf;
  for (size_t I = 0; I < Units.size(); ++I) {
    if (!Units[I].M) {
      Diagnostic D;
      D.Pass = "session";
      D.Message = "batch unit has no module";
      Out[I].Diags.push_back(std::move(D));
      continue;
    }
    auto [It, IsNew] = UnitsOf.try_emplace(Units[I].M);
    if (IsNew)
      GroupModules.push_back(Units[I].M);
    It->second.push_back(I);
  }

  // Sessions are created (and later merged) on the calling thread; each
  // worker task owns exactly one session while it runs, so the per-worker
  // diagnostic and timing buffers need no cross-thread coordination until
  // the deterministic flush below.
  std::vector<std::unique_ptr<CompilationSession>> Sessions;
  Sessions.reserve(GroupModules.size());
  for (Module *M : GroupModules)
    Sessions.push_back(std::make_unique<CompilationSession>(*M));

  ThreadPool Pool(Jobs);
  for (size_t G = 0; G < GroupModules.size(); ++G) {
    CompilationSession *S = Sessions[G].get();
    const std::vector<size_t> *Group = &UnitsOf[GroupModules[G]];
    Pool.submit([S, Group, &Units, &Out] {
      for (size_t UI : *Group) {
        const BatchUnit &U = Units[UI];
        BatchUnitResult &R = Out[UI];
        size_t DiagStart = S->diags().size();
        AnalysisStats Before = S->analysisStats();
        std::vector<unsigned> Loops =
            U.Loops.empty() ? S->candidateLoops() : U.Loops;
        R.Ok = true;
        for (unsigned LoopId : Loops) {
          R.Results.push_back(S->compileLoop(LoopId, U.Opts));
          if (!R.Results.back().Ok) {
            R.Ok = false;
            break;
          }
        }
        R.Diags = S->diags().diagnosticsSince(DiagStart);
        R.Stats = statsDelta(S->analysisStats(), Before);
        if (UI == Group->back()) {
          R.TimingReport = S->timingReport();
          R.StatsReport = S->statsReport();
        }
      }
    });
  }
  Pool.wait();

  // The join point: flush every worker's buffered output in UNIT order —
  // scheduling never leaks into what the caller observes.
  if (MergedDiags)
    for (const BatchUnitResult &R : Out)
      MergedDiags->append(R.Diags);
  if (MergedTiming)
    for (const auto &S : Sessions)
      MergedTiming->merge(S->timing());

  return Out;
}

std::string CompilationSession::statsReport() const {
  std::string Out = TR.statsReport();
  AnalysisStats S = AM.stats();
  Out += formatString("  %12llu  analysis.profile.runs\n",
                      static_cast<unsigned long long>(S.ProfileRuns));
  Out += formatString("  %12llu  analysis.points-to.runs\n",
                      static_cast<unsigned long long>(S.PointsToRuns));
  Out += formatString("  %12llu  analysis.numbering.runs\n",
                      static_cast<unsigned long long>(S.NumberingRuns));
  return Out;
}

//===----------------------------------------------------------------------===//
// Legacy entry points
//===----------------------------------------------------------------------===//

std::vector<unsigned> gdse::findCandidateLoops(Module &M) {
  AccessNumbering Num = AccessNumbering::compute(M);
  std::vector<unsigned> Out;
  for (const LoopDesc &L : Num.loops())
    if (auto *F = dyn_cast<ForStmt>(L.LoopStmt))
      if (F->isCandidate())
        Out.push_back(L.Id);
  return Out;
}

PipelineResult gdse::transformLoop(Module &M, unsigned LoopId,
                                   const PipelineOptions &Opts) {
  CompilationSession Session(M);
  return Session.compileLoop(LoopId, Opts);
}
