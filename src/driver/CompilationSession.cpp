//===- CompilationSession.cpp - Multi-loop batch compilation ---------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/CompilationSession.h"

#include "driver/PassManager.h"
#include "ir/IR.h"
#include "support/Support.h"

using namespace gdse;

CompilationSession::CompilationSession(Module &M) : M(M), AM(M, DE, &TR) {}

std::vector<unsigned> CompilationSession::candidateLoops() {
  const AccessNumbering &Num = AM.numbering();
  std::vector<unsigned> Out;
  for (const LoopDesc &L : Num.loops())
    if (auto *F = dyn_cast<ForStmt>(L.LoopStmt))
      if (F->isCandidate())
        Out.push_back(L.Id);
  return Out;
}

PipelineResult CompilationSession::compileLoop(unsigned LoopId,
                                               const PipelineOptions &Opts) {
  PipelineResult R;
  R.LoopId = LoopId;
  size_t DiagStart = DE.size();
  AM.setEntry(Opts.Entry);
  AM.setExternalGraph(Opts.ExternalGraph);

  auto finish = [&](bool Ok) -> PipelineResult & {
    R.Diags = DE.diagnosticsSince(DiagStart);
    R.Errors = DE.errorStrings(DiagStart);
    R.Ok = Ok && R.Errors.empty();
    return R;
  };

  // --- Graph acquisition + Definition 4/5 classification. -----------------
  // A failed profiling run or a missing/mismatched external graph short-
  // circuits here: nothing downstream sees a partially-filled result.
  const LoopDepGraph *G = AM.depGraph(LoopId, Opts.Source);
  if (!G)
    return finish(false);
  const AccessClasses *Classes = AM.accessClasses(LoopId, Opts.Source);
  if (!Classes)
    return finish(false);
  R.Graph = *G;
  R.Breakdown = computeAccessBreakdown(*G, *Classes);
  R.PrivateAccesses = Classes->privateAccesses();

  // --- Privatization + planning as registered passes. ---------------------
  PassManager PM;
  switch (Opts.Method) {
  case PrivatizationMethod::Expansion:
    PM.add(createExpansionPass());
    break;
  case PrivatizationMethod::Runtime:
    PM.add(createRtPrivPass());
    break;
  case PrivatizationMethod::None:
    break;
  }
  PM.add(createPlannerPass());

  PassContext Cx{M, LoopId, Opts, AM, DE, R, {}};
  bool Ok = PM.run(Cx, &TR);
  return finish(Ok);
}

std::vector<PipelineResult>
CompilationSession::compileAll(const PipelineOptions &Opts) {
  std::vector<PipelineResult> Out;
  for (unsigned LoopId : candidateLoops()) {
    Out.push_back(compileLoop(LoopId, Opts));
    if (!Out.back().Ok)
      break;
  }
  return Out;
}

std::string CompilationSession::statsReport() const {
  std::string Out = TR.statsReport();
  const AnalysisStats &S = AM.stats();
  Out += formatString("  %12llu  analysis.profile.runs\n",
                      static_cast<unsigned long long>(S.ProfileRuns));
  Out += formatString("  %12llu  analysis.points-to.runs\n",
                      static_cast<unsigned long long>(S.PointsToRuns));
  Out += formatString("  %12llu  analysis.numbering.runs\n",
                      static_cast<unsigned long long>(S.NumberingRuns));
  return Out;
}

//===----------------------------------------------------------------------===//
// Legacy entry points
//===----------------------------------------------------------------------===//

std::vector<unsigned> gdse::findCandidateLoops(Module &M) {
  AccessNumbering Num = AccessNumbering::compute(M);
  std::vector<unsigned> Out;
  for (const LoopDesc &L : Num.loops())
    if (auto *F = dyn_cast<ForStmt>(L.LoopStmt))
      if (F->isCandidate())
        Out.push_back(L.Id);
  return Out;
}

PipelineResult gdse::transformLoop(Module &M, unsigned LoopId,
                                   const PipelineOptions &Opts) {
  CompilationSession Session(M);
  return Session.compileLoop(LoopId, Opts);
}
