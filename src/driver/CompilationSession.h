//===- CompilationSession.h - Multi-loop batch compilation ------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One CompilationSession owns everything derived from one module while the
/// Figure 7 tool runs over it:
///
///  - an AnalysisManager caching per-module (numbering, points-to) and
///    per-(loop, graph-source) results (dependence graphs, Definition 4/5
///    classes), with invalidation driven by the transform passes;
///  - a DiagnosticEngine accumulating structured diagnostics (severity,
///    pass name, loop id) across every stage;
///  - a TimingRegistry giving every pass and cached analysis automatic
///    wall-clock + VM-cycle timing and named counters (`-time-passes` /
///    `-stats`-style reports).
///
/// The session supports multi-loop batch compilation: compileAll() expands
/// every candidate loop of the module in one pass over the IR, with the
/// profiler invoked at most once per (loop, graph source) — analyses are
/// reused from cache until a transform pass actually changes the IR.
///
/// compileBatch() scales this across MODULES: independent (module, loops)
/// units are distributed over a fixed-size worker pool. Units of the same
/// module share one session (and its caches) and run serially in submission
/// order on one worker — transform passes mutate the module, which no lock
/// can make concurrent — while units of different modules compile fully in
/// parallel. Each worker buffers diagnostics and timing into its unit's own
/// session; the buffers are merged in deterministic unit order at the join
/// point, so the batch output is bit-identical to a serial run regardless
/// of worker count or scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_COMPILATIONSESSION_H
#define GDSE_DRIVER_COMPILATIONSESSION_H

#include "driver/Pipeline.h"

namespace gdse {

/// One independently compilable unit of a batch: some (or all) candidate
/// loops of one module under one option set.
struct BatchUnit {
  Module *M = nullptr;
  /// Loop ids to compile, in order; empty means every candidate loop.
  std::vector<unsigned> Loops;
  PipelineOptions Opts;
};

/// What one BatchUnit produced. All fields are deterministic functions of
/// the unit (not of scheduling), except the wall-clock column inside the
/// rendered reports.
struct BatchUnitResult {
  bool Ok = false;
  /// One pipeline result per compiled loop; compilation stops at the first
  /// failing loop, exactly like compileAll().
  std::vector<PipelineResult> Results;
  /// This unit's diagnostics, in emission order.
  std::vector<Diagnostic> Diags;
  /// Analysis-cache counters attributable to this unit alone (the delta
  /// over the unit's own session, which units of one module share).
  AnalysisStats Stats;
  /// The owning session's rendered reports; filled on the LAST unit of each
  /// module group so per-module totals appear exactly once per batch.
  std::string TimingReport;
  std::string StatsReport;
};

class CompilationSession {
public:
  explicit CompilationSession(Module &M);

  Module &module() { return M; }
  DiagnosticEngine &diags() { return DE; }
  TimingRegistry &timing() { return TR; }
  AnalysisManager &analyses() { return AM; }
  AnalysisStats analysisStats() const { return AM.stats(); }

  /// Loop ids of the "@candidate" for-loops, in program order (cached via
  /// the AnalysisManager's numbering).
  std::vector<unsigned> candidateLoops();

  /// Profile -> classify -> privatize -> plan for one loop, mutating the
  /// module. Identical semantics to the legacy transformLoop(), plus
  /// structured diagnostics in PipelineResult::Diags.
  PipelineResult compileLoop(unsigned LoopId,
                             const PipelineOptions &Opts = PipelineOptions());

  /// Batch compilation: compileLoop for every candidate loop, in program
  /// order. Stops at the first loop whose pipeline fails (the module must
  /// be discarded then, exactly like a failed transformLoop).
  std::vector<PipelineResult>
  compileAll(const PipelineOptions &Opts = PipelineOptions());

  /// Compiles \p Units on a pool of \p Jobs workers (clamped to >= 1).
  /// Units are grouped by module; each group gets one session and runs its
  /// units serially in submission order on a single worker, while distinct
  /// modules compile concurrently. Results come back indexed like \p Units.
  ///
  /// Determinism guarantee: diagnostics, analysis stats, pipeline results,
  /// transformed modules, and the STRUCTURE of the timing reports (record
  /// order, invocation and VM-cycle counts) are bit-identical for any Jobs
  /// value; only wall-clock readings vary. When \p MergedDiags /
  /// \p MergedTiming are given, every unit's buffered diagnostics and every
  /// group's timing registry are flushed into them in unit order at the
  /// join point.
  static std::vector<BatchUnitResult>
  compileBatch(const std::vector<BatchUnit> &Units, unsigned Jobs,
               DiagnosticEngine *MergedDiags = nullptr,
               TimingRegistry *MergedTiming = nullptr);

  /// `-time-passes`-style report over everything this session ran.
  std::string timingReport() const { return TR.timingReport(); }
  /// `-stats`-style report of the session's named counters.
  std::string statsReport() const;

private:
  Module &M;
  DiagnosticEngine DE;
  TimingRegistry TR;
  AnalysisManager AM;
};

} // namespace gdse

#endif // GDSE_DRIVER_COMPILATIONSESSION_H
