//===- CompilationSession.h - Multi-loop batch compilation ------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One CompilationSession owns everything derived from one module while the
/// Figure 7 tool runs over it:
///
///  - an AnalysisManager caching per-module (numbering, points-to) and
///    per-(loop, graph-source) results (dependence graphs, Definition 4/5
///    classes), with invalidation driven by the transform passes;
///  - a DiagnosticEngine accumulating structured diagnostics (severity,
///    pass name, loop id) across every stage;
///  - a TimingRegistry giving every pass and cached analysis automatic
///    wall-clock + VM-cycle timing and named counters (`-time-passes` /
///    `-stats`-style reports).
///
/// The session supports multi-loop batch compilation: compileAll() expands
/// every candidate loop of the module in one pass over the IR, with the
/// profiler invoked at most once per (loop, graph source) — analyses are
/// reused from cache until a transform pass actually changes the IR.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_COMPILATIONSESSION_H
#define GDSE_DRIVER_COMPILATIONSESSION_H

#include "driver/Pipeline.h"

namespace gdse {

class CompilationSession {
public:
  explicit CompilationSession(Module &M);

  Module &module() { return M; }
  DiagnosticEngine &diags() { return DE; }
  TimingRegistry &timing() { return TR; }
  AnalysisManager &analyses() { return AM; }
  const AnalysisStats &analysisStats() const { return AM.stats(); }

  /// Loop ids of the "@candidate" for-loops, in program order (cached via
  /// the AnalysisManager's numbering).
  std::vector<unsigned> candidateLoops();

  /// Profile -> classify -> privatize -> plan for one loop, mutating the
  /// module. Identical semantics to the legacy transformLoop(), plus
  /// structured diagnostics in PipelineResult::Diags.
  PipelineResult compileLoop(unsigned LoopId,
                             const PipelineOptions &Opts = PipelineOptions());

  /// Batch compilation: compileLoop for every candidate loop, in program
  /// order. Stops at the first loop whose pipeline fails (the module must
  /// be discarded then, exactly like a failed transformLoop).
  std::vector<PipelineResult>
  compileAll(const PipelineOptions &Opts = PipelineOptions());

  /// `-time-passes`-style report over everything this session ran.
  std::string timingReport() const { return TR.timingReport(); }
  /// `-stats`-style report of the session's named counters.
  std::string statsReport() const;

private:
  Module &M;
  DiagnosticEngine DE;
  TimingRegistry TR;
  AnalysisManager AM;
};

} // namespace gdse

#endif // GDSE_DRIVER_COMPILATIONSESSION_H
