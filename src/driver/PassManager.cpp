//===- PassManager.cpp - Registered, composable transform passes -----------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"

using namespace gdse;

LoopTransformPass::~LoopTransformPass() = default;

void PassManager::add(std::unique_ptr<LoopTransformPass> P) {
  Passes.push_back(std::move(P));
}

bool PassManager::run(PassContext &Cx, TimingRegistry *TR) {
  for (const std::unique_ptr<LoopTransformPass> &P : Passes) {
    unsigned ErrorsBefore = Cx.DE.errorCount();
    PreservedAnalyses PA;
    {
      DiagnosticScope Scope(Cx.DE, P->name(), Cx.LoopId);
      TimerScope T(TR, std::string("pass.") + P->name());
      PA = P->run(Cx);
    }
    switch (PA) {
    case PreservedAnalyses::All:
      break;
    case PreservedAnalyses::AllExceptLoop:
      Cx.AM.invalidateLoop(Cx.LoopId);
      break;
    case PreservedAnalyses::None:
      Cx.AM.invalidateModule();
      break;
    }
    if (TR)
      TR->bumpCounter(std::string("pass.") + P->name() + ".runs");
    if (Cx.DE.errorCount() > ErrorsBefore)
      return false;
  }
  return true;
}
