//===- PassManager.h - Registered, composable transform passes -*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transform half of the compilation-session architecture. Each
/// transform stage of the Figure 7 tool (expansion, the runtime-
/// privatization baseline, the DOALL/DOACROSS planner) is a registered
/// LoopTransformPass with a uniform entry point. The PassManager runs them
/// in order with:
///
///  - automatic wall-clock timing per pass (TimingRegistry, "pass.<name>");
///  - a DiagnosticScope so every diagnostic a pass emits is attributed with
///    the pass name and target loop id;
///  - analysis invalidation driven by the PreservedAnalyses summary each
///    pass returns — a pass that did not touch the IR keeps every cached
///    analysis alive;
///  - error short-circuiting: the first pass that emits an error diagnostic
///    aborts the pipeline for this loop.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_PASSMANAGER_H
#define GDSE_DRIVER_PASSMANAGER_H

#include "driver/Pipeline.h"

#include <memory>
#include <vector>

namespace gdse {

/// What a transform pass left intact, from the AnalysisManager's point of
/// view.
enum class PreservedAnalyses : uint8_t {
  All,           ///< IR unchanged: every cached analysis stays valid
  AllExceptLoop, ///< only the target loop's IR changed (e.g. sync insertion)
  None,          ///< module-wide rewrite: drop everything
};

/// Everything a pass may touch while compiling one candidate loop.
struct PassContext {
  Module &M;
  unsigned LoopId;
  const PipelineOptions &Opts;
  AnalysisManager &AM;
  DiagnosticEngine &DE;
  /// The per-loop result record passes fill in (stats, plan, ...).
  PipelineResult &Result;
  /// Private accesses honored by the privatization pass that ran (empty
  /// when none did) — the set the planner must treat as decontended.
  std::set<AccessId> Honored;
};

/// A transform pass operating on one candidate loop of the module.
class LoopTransformPass {
public:
  virtual ~LoopTransformPass();
  virtual const char *name() const = 0;
  /// Transforms the module; reports through Cx.DE (an error diagnostic
  /// aborts the pipeline). Returns what it preserved.
  virtual PreservedAnalyses run(PassContext &Cx) = 0;
};

class PassManager {
public:
  void add(std::unique_ptr<LoopTransformPass> P);
  size_t size() const { return Passes.size(); }

  /// Runs every registered pass over \p Cx, timing each into \p TR (may be
  /// null) and invalidating Cx.AM per the returned PreservedAnalyses.
  /// Returns false as soon as a pass emits an error diagnostic.
  bool run(PassContext &Cx, TimingRegistry *TR);

private:
  std::vector<std::unique_ptr<LoopTransformPass>> Passes;
};

/// The paper's compile-time general data structure expansion (Figure 7).
std::unique_ptr<LoopTransformPass> createExpansionPass();
/// The --audit-deps diff of the source graph's privatization claims against
/// the static witness. Runs before any transform (access ids must still
/// match the untransformed module); never mutates the IR.
std::unique_ptr<LoopTransformPass> createAuditPass();
/// The SpiceC-style runtime access-control baseline (§4.2.1).
std::unique_ptr<LoopTransformPass> createRtPrivPass();
/// DOALL/DOACROSS planning and ordered-region insertion (§4.3).
std::unique_ptr<LoopTransformPass> createPlannerPass();

} // namespace gdse

#endif // GDSE_DRIVER_PASSMANAGER_H
