//===- Passes.cpp - The pipeline's transform passes ------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The three transform stages of the Figure 7 tool as LoopTransformPasses.
// Each consumes cached analyses from the AnalysisManager (the dependence
// graph was already acquired during classification, so the queries below
// are cache hits) and reports structured diagnostics under its own name.
//
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"

#include "rtpriv/RtPrivPass.h"

using namespace gdse;

namespace {

/// Step 3 of Figure 7: rewrite the module so every thread-private access
/// class operates on per-thread copies (Tables 1-3).
class ExpansionTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "expansion"; }

  PreservedAnalyses run(PassContext &Cx) override {
    const LoopDepGraph *G = Cx.AM.depGraph(Cx.LoopId, Cx.Opts.Source);
    if (!G) {
      Cx.DE.error("dependence graph unavailable");
      return PreservedAnalyses::All;
    }
    ExpansionInputs In;
    In.Num = &Cx.AM.numbering();
    In.PT = &Cx.AM.pointsTo();
    In.Classes = Cx.AM.accessClasses(Cx.LoopId, Cx.Opts.Source);
    In.Diags = &Cx.DE;
    ExpansionResult ER =
        expandLoop(Cx.M, Cx.LoopId, *G, Cx.Opts.Expansion, In);
    if (!ER.Ok) {
      // The module may be partially rewritten; the caller must discard it,
      // but drop the caches in case the session object outlives the error.
      return PreservedAnalyses::None;
    }
    Cx.Result.Expansion = ER.Stats;
    Cx.Result.Guard = ER.Guard;
    Cx.AM.setGuardPlan(Cx.LoopId, ER.Guard);
    Cx.Honored = std::move(ER.PrivateAccesses);
    const ExpansionStats &S = ER.Stats;
    bool Untouched = S.ExpandedObjects == 0 && S.PromotedPointerSlots == 0 &&
                     S.SpanStoresInserted == 0 &&
                     S.PrivateAccessesRedirected == 0 &&
                     S.SharedAccessesRedirected == 0;
    return Untouched ? PreservedAnalyses::All : PreservedAnalyses::None;
  }
};

/// The §4.2.1 baseline: route every private access through the VM's
/// runtime access-control library instead of expanding.
class RtPrivTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "rtpriv"; }

  PreservedAnalyses run(PassContext &Cx) override {
    RtPrivResult RR = applyRuntimePrivatization(
        Cx.M, Cx.Result.PrivateAccesses, &Cx.DE, Cx.LoopId);
    if (!RR.Ok)
      return PreservedAnalyses::None;
    Cx.Result.RtPrivWrapped = RR.AccessesWrapped;
    Cx.Honored = Cx.Result.PrivateAccesses;
    return RR.AccessesWrapped ? PreservedAnalyses::None
                              : PreservedAnalyses::All;
  }
};

/// Step 4 of Figure 7: decide DOALL vs DOACROSS and wrap residual-
/// dependence statements in ordered regions. Plans against the graph
/// snapshot the privatization stage honored (Result.Graph), never a
/// re-profiled one.
class PlannerTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "planner"; }

  PreservedAnalyses run(PassContext &Cx) override {
    Cx.Result.Plan = planParallelLoop(Cx.M, Cx.LoopId, Cx.Result.Graph,
                                      Cx.Honored, &Cx.DE);
    return Cx.Result.Plan.Parallelized ? PreservedAnalyses::AllExceptLoop
                                       : PreservedAnalyses::All;
  }
};

} // namespace

std::unique_ptr<LoopTransformPass> gdse::createExpansionPass() {
  return std::make_unique<ExpansionTransformPass>();
}

std::unique_ptr<LoopTransformPass> gdse::createRtPrivPass() {
  return std::make_unique<RtPrivTransformPass>();
}

std::unique_ptr<LoopTransformPass> gdse::createPlannerPass() {
  return std::make_unique<PlannerTransformPass>();
}
