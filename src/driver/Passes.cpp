//===- Passes.cpp - The pipeline's transform passes ------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The three transform stages of the Figure 7 tool as LoopTransformPasses.
// Each consumes cached analyses from the AnalysisManager (the dependence
// graph was already acquired during classification, so the queries below
// are cache hits) and reports structured diagnostics under its own name.
//
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"

#include "rtpriv/RtPrivPass.h"
#include "support/Support.h"

using namespace gdse;

namespace {

/// --audit-deps: re-derive the source graph's privatization claims with the
/// static witness and report every claim it refutes or cannot support.
///
/// Refutations (warnings, counted in Result.AuditRefuted) are facts the
/// profile asserts that a static proof contradicts — a profiled-private
/// class with a statically certain loop-carried flow dependence, a profiled
/// upwards-exposed load covered by same-iteration must-writes, or a
/// profiled carried flow edge into such a load. Any refutation means one of
/// the two analyses is wrong and the graph must not be trusted.
///
/// Unsupported claims (warnings, Result.AuditUnsupported) are
/// profiled-private classes the witness can only call Unknown: nothing is
/// wrong, but runtime guards remain the only check for them.
///
/// Freshness-proven loads never refute exposure claims: a load of a
/// per-iteration-fresh allocation can still read uninitialized bytes, which
/// the profiler correctly reports as upwards-exposed. Only coverage proofs
/// (loadProven && !rootsFresh) contradict the profile.
class AuditTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "audit-deps"; }

  PreservedAnalyses run(PassContext &Cx) override {
    const LoopDepGraph *G = Cx.AM.depGraph(Cx.LoopId, Cx.Opts.Source);
    const AccessClasses *Classes =
        Cx.AM.accessClasses(Cx.LoopId, Cx.Opts.Source);
    if (!G || !Classes) // acquisition already diagnosed upstream
      return PreservedAnalyses::All;
    std::shared_ptr<const PrivatizationWitness> W =
        Cx.AM.staticWitness(Cx.LoopId);

    auto MemberList = [](const std::vector<AccessId> &Ids) {
      std::string S;
      for (AccessId Id : Ids)
        S += formatString("%s%u", S.empty() ? "" : " ", Id);
      return S;
    };

    for (unsigned CI = 0; CI < Classes->classes().size(); ++CI) {
      const AccessClassInfo &C = Classes->classes()[CI];
      if (!C.Private)
        continue;
      ++Cx.Result.AuditChecked;
      AccessId SharedId = InvalidAccessId;
      bool AllPrivate = true;
      for (AccessId Id : C.Members) {
        PrivatizationVerdict V = W->verdictOf(Id);
        if (V == PrivatizationVerdict::ProvenShared &&
            SharedId == InvalidAccessId)
          SharedId = Id;
        if (V != PrivatizationVerdict::ProvenPrivate)
          AllPrivate = false;
      }
      if (SharedId != InvalidAccessId) {
        ++Cx.Result.AuditRefuted;
        Cx.DE.warning(formatString(
            "refuted: profiled-private class %u (members %s) has a "
            "statically certain loop-carried flow dependence through "
            "access %u",
            CI, MemberList(C.Members).c_str(), SharedId));
      } else if (AllPrivate) {
        ++Cx.Result.AuditConfirmed;
        Cx.DE.note(formatString(
            "confirmed: profiled-private class %u (members %s) is "
            "statically proven private",
            CI, MemberList(C.Members).c_str()));
      } else {
        ++Cx.Result.AuditUnsupported;
        Cx.DE.warning(formatString(
            "unsupported: profiled-private class %u (members %s) could not "
            "be proven private statically%s; runtime guards remain the "
            "only check",
            CI, MemberList(C.Members).c_str(),
            W->unmodeled() ? " (unmodeled bulk memory operation)" : ""));
      }
    }

    for (AccessId Id : G->UpwardsExposedLoads)
      if (W->loadProven(Id) && !W->rootsFresh(Id)) {
        ++Cx.Result.AuditRefuted;
        Cx.DE.warning(formatString(
            "refuted: profiled upwards-exposed load %u is covered by "
            "same-iteration must-writes on every path",
            Id));
      }
    for (const DepEdge &E : G->Edges)
      if (E.Carried && E.Kind == DepKind::Flow && W->loadProven(E.Dst) &&
          !W->rootsFresh(E.Dst)) {
        ++Cx.Result.AuditRefuted;
        Cx.DE.warning(formatString(
            "refuted: profiled loop-carried flow %u -> %u targets a load "
            "covered by same-iteration must-writes",
            E.Src, E.Dst));
      }
    return PreservedAnalyses::All;
  }
};

/// Step 3 of Figure 7: rewrite the module so every thread-private access
/// class operates on per-thread copies (Tables 1-3).
class ExpansionTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "expansion"; }

  PreservedAnalyses run(PassContext &Cx) override {
    const LoopDepGraph *G = Cx.AM.depGraph(Cx.LoopId, Cx.Opts.Source);
    if (!G) {
      Cx.DE.error("dependence graph unavailable");
      return PreservedAnalyses::All;
    }
    ExpansionInputs In;
    In.Num = &Cx.AM.numbering();
    In.PT = &Cx.AM.pointsTo();
    In.Classes = Cx.AM.accessClasses(Cx.LoopId, Cx.Opts.Source);
    In.Diags = &Cx.DE;
    // The witness shared_ptr outlives the expandLoop call even if a
    // concurrent invalidation drops the cache entry. Commutative
    // privatization needs it even when guard pruning is off: the
    // reduction-op proof lives in the witness.
    std::shared_ptr<const PrivatizationWitness> W;
    if (Cx.Opts.Expansion.GuardPruning ||
        Cx.Opts.Expansion.CommutativePrivatization) {
      W = Cx.AM.staticWitness(Cx.LoopId);
      In.Witness = W.get();
    }
    ExpansionResult ER =
        expandLoop(Cx.M, Cx.LoopId, *G, Cx.Opts.Expansion, In);
    if (!ER.Ok) {
      // The module may be partially rewritten; the caller must discard it,
      // but drop the caches in case the session object outlives the error.
      return PreservedAnalyses::None;
    }
    Cx.Result.Expansion = ER.Stats;
    Cx.Result.Guard = ER.Guard;
    Cx.AM.setGuardPlan(Cx.LoopId, ER.Guard);
    Cx.Honored = std::move(ER.PrivateAccesses);
    const ExpansionStats &S = ER.Stats;
    bool Untouched = S.ExpandedObjects == 0 && S.PromotedPointerSlots == 0 &&
                     S.SpanStoresInserted == 0 &&
                     S.PrivateAccessesRedirected == 0 &&
                     S.SharedAccessesRedirected == 0;
    return Untouched ? PreservedAnalyses::All : PreservedAnalyses::None;
  }
};

/// The §4.2.1 baseline: route every private access through the VM's
/// runtime access-control library instead of expanding.
class RtPrivTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "rtpriv"; }

  PreservedAnalyses run(PassContext &Cx) override {
    RtPrivResult RR = applyRuntimePrivatization(
        Cx.M, Cx.Result.PrivateAccesses, &Cx.DE, Cx.LoopId);
    if (!RR.Ok)
      return PreservedAnalyses::None;
    Cx.Result.RtPrivWrapped = RR.AccessesWrapped;
    Cx.Honored = Cx.Result.PrivateAccesses;
    return RR.AccessesWrapped ? PreservedAnalyses::None
                              : PreservedAnalyses::All;
  }
};

/// Step 4 of Figure 7: decide DOALL vs DOACROSS and wrap residual-
/// dependence statements in ordered regions. Plans against the graph
/// snapshot the privatization stage honored (Result.Graph), never a
/// re-profiled one.
class PlannerTransformPass : public LoopTransformPass {
public:
  const char *name() const override { return "planner"; }

  PreservedAnalyses run(PassContext &Cx) override {
    Cx.Result.Plan = planParallelLoop(Cx.M, Cx.LoopId, Cx.Result.Graph,
                                      Cx.Honored, &Cx.DE);
    return Cx.Result.Plan.Parallelized ? PreservedAnalyses::AllExceptLoop
                                       : PreservedAnalyses::All;
  }
};

} // namespace

std::unique_ptr<LoopTransformPass> gdse::createExpansionPass() {
  return std::make_unique<ExpansionTransformPass>();
}

std::unique_ptr<LoopTransformPass> gdse::createAuditPass() {
  return std::make_unique<AuditTransformPass>();
}

std::unique_ptr<LoopTransformPass> gdse::createRtPrivPass() {
  return std::make_unique<RtPrivTransformPass>();
}

std::unique_ptr<LoopTransformPass> gdse::createPlannerPass() {
  return std::make_unique<PlannerTransformPass>();
}
