//===- Pipeline.h - Pipeline options and per-loop results -------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole tool of Figure 7 — profile the candidate loop (dependence
/// graph), classify accesses, privatize (by compile-time expansion or by the
/// runtime-privatization baseline), and plan the parallel execution — as
/// options plus a per-loop result record. Orchestration lives in
/// CompilationSession.h; `transformLoop` below is the one-shot convenience
/// wrapper around a single-loop session.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_DRIVER_PIPELINE_H
#define GDSE_DRIVER_PIPELINE_H

#include "driver/AnalysisManager.h"
#include "expand/Expansion.h"
#include "parallel/Planner.h"
#include "support/Diagnostics.h"

namespace gdse {

/// How to remove the private-class contention.
enum class PrivatizationMethod : uint8_t {
  Expansion, ///< the paper's compile-time general data structure expansion
  Runtime,   ///< the SpiceC-style runtime access-control baseline (§4.2.1)
  None,      ///< leave private classes alone (everything becomes residual)
};

struct PipelineOptions {
  PrivatizationMethod Method = PrivatizationMethod::Expansion;
  ExpansionOptions Expansion;
  std::string Entry = "main";
  GraphSource Source = GraphSource::Profile;
  /// Required when Source == External: the verified graph for this loop.
  const LoopDepGraph *ExternalGraph = nullptr;
  /// Run the dependence audit (minic --audit-deps): diff the source graph's
  /// privatization claims against the static witness before transforming,
  /// reporting refuted and unsupportable claims as structured warnings.
  /// compileLoop also enables this when GDSE_AUDIT_DEPS is set.
  bool AuditDeps = false;
};

struct PipelineResult {
  bool Ok = false;
  /// Error messages only — the legacy flat view. Prefer Diags.
  std::vector<std::string> Errors;
  /// Every diagnostic (all severities) emitted while compiling this loop,
  /// each attributed with the emitting pass and the loop id.
  std::vector<Diagnostic> Diags;
  unsigned LoopId = 0;
  LoopDepGraph Graph;
  AccessBreakdown Breakdown;
  std::set<AccessId> PrivateAccesses;
  ExpansionStats Expansion;
  PlanResult Plan;
  unsigned RtPrivWrapped = 0;
  /// Guarded-execution metadata produced by the expansion pass (null when
  /// nothing was privatized or Method != Expansion). Hand to
  /// InterpOptions::GuardPlans to validate the privatization at run time.
  std::shared_ptr<const GuardPlan> Guard;
  /// Dependence-audit tallies (all zero unless PipelineOptions::AuditDeps):
  /// privatization claims of the source graph that were checked, refuted by
  /// the static witness (the trust report's failures), confirmed outright,
  /// and not statically supportable (guards stay, but nothing is wrong).
  unsigned AuditChecked = 0;
  unsigned AuditRefuted = 0;
  unsigned AuditConfirmed = 0;
  unsigned AuditUnsupported = 0;
};

/// Loop ids of the "@candidate" for-loops of \p M, in program order. Runs
/// AccessNumbering (assigning loop ids) as a side effect.
std::vector<unsigned> findCandidateLoops(Module &M);

/// Runs profile -> classify -> privatize -> plan for loop \p LoopId of
/// \p M, mutating the module. One-shot wrapper over CompilationSession;
/// batch callers should hold a session instead to reuse cached analyses.
PipelineResult transformLoop(Module &M, unsigned LoopId,
                             const PipelineOptions &Opts = PipelineOptions());

} // namespace gdse

#endif // GDSE_DRIVER_PIPELINE_H
