//===- Driver.cpp - Expansion pipeline orchestration -----------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Makes every decision on the ORIGINAL module (expansion targets, fat
// slots, per-access plans, constant spans), then runs the rewriting passes
// and re-verifies the module.
//
//===----------------------------------------------------------------------===//

#include "expand/ExpansionImpl.h"

#include "analysis/StaticPrivatizer.h"
#include "ir/IRVisitor.h"
#include "ir/Verifier.h"
#include "support/Support.h"

#include <cstdint>
#include <functional>

using namespace gdse;

namespace {

/// sizeof under the ORIGINAL (pre-translation) layout; used while fat slots
/// are still being chosen.
std::optional<int64_t> evalConstSizeOrig(TypeContext &Ctx, const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E)->getValue();
  case Expr::Kind::SizeofType:
    return static_cast<int64_t>(
        Ctx.getLayout(cast<SizeofTypeExpr>(E)->getQueriedType()).Size);
  case Expr::Kind::Cast:
    if (E->getType()->isInt())
      return evalConstSizeOrig(Ctx, cast<CastExpr>(E)->getSub());
    return std::nullopt;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalConstSizeOrig(Ctx, B->getLHS());
    auto R = evalConstSizeOrig(Ctx, B->getRHS());
    if (!L || !R)
      return std::nullopt;
    switch (B->getOp()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

/// The byte-size expression of an allocation call (before any expansion):
/// malloc(n) -> n, calloc(n,s) -> n*s, realloc(p,n) -> n.
std::optional<int64_t> constSiteSize(ExpansionContext &Cx, const CallExpr *C,
                                     bool Translated) {
  auto eval = [&](const Expr *E) -> std::optional<int64_t> {
    return Translated ? Cx.evalConstSize(E)
                      : evalConstSizeOrig(Cx.types(), E);
  };
  switch (C->getBuiltin()) {
  case Builtin::MallocFn:
    return eval(C->getArg(0));
  case Builtin::CallocFn: {
    auto A = eval(C->getArg(0));
    auto B = eval(C->getArg(1));
    if (A && B)
      return *A * *B;
    return std::nullopt;
  }
  case Builtin::ReallocFn:
    return eval(C->getArg(1));
  default:
    return std::nullopt;
  }
}

/// Common constant size of a set of objects; nullopt when any is unknown or
/// they disagree.
std::optional<int64_t> commonConstSize(ExpansionContext &Cx, const PointsTo &PT,
                                       const std::set<uint32_t> &Objs,
                                       bool Translated) {
  std::optional<int64_t> Common;
  for (uint32_t Id : Objs) {
    const MemObject &O = PT.object(Id);
    std::optional<int64_t> Size;
    if (O.K == MemObject::Kind::Variable) {
      Type *T = O.Var->getType();
      if (Translated)
        T = Cx.translateType(T);
      Size = static_cast<int64_t>(Cx.types().getLayout(T).Size);
    } else {
      Size = constSiteSize(Cx, O.Site, Translated);
    }
    if (!Size)
      return std::nullopt;
    if (Common && *Common != *Size)
      return std::nullopt;
    Common = Size;
  }
  return Common;
}

std::set<uint32_t> intersect(const std::set<uint32_t> &A,
                             const std::set<uint32_t> &B) {
  std::set<uint32_t> Out;
  for (uint32_t X : A)
    if (B.count(X))
      Out.insert(X);
  return Out;
}

} // namespace

ExpansionResult gdse::expandLoop(Module &M, unsigned LoopId,
                                 const LoopDepGraph &G,
                                 const ExpansionOptions &Opts,
                                 const ExpansionInputs &Inputs) {
  ExpansionResult Result;
  ExpansionContext Cx(M, G, Opts, Result);
  Cx.DE = Inputs.Diags;
  std::optional<DiagnosticScope> Scope;
  if (Inputs.Diags)
    Scope.emplace(*Inputs.Diags, "expansion", LoopId);

  std::optional<AccessNumbering> OwnedNum;
  if (!Inputs.Num)
    OwnedNum = AccessNumbering::compute(M);
  const AccessNumbering &Num = Inputs.Num ? *Inputs.Num : *OwnedNum;
  if (LoopId == 0 || LoopId > Num.numLoops()) {
    Cx.error(formatString("unknown loop id %u", LoopId));
    return Result;
  }
  const LoopDesc &LD = Num.loop(LoopId);
  Cx.TargetLoop = dyn_cast<ForStmt>(LD.LoopStmt);
  Cx.LoopFunction = LD.InFunction;
  if (!Cx.TargetLoop) {
    Cx.error("target loop is not a canonical counted for-loop");
    return Result;
  }
  if (G.LoopId != LoopId) {
    Cx.error("dependence graph was profiled for a different loop");
    return Result;
  }

  std::optional<PointsTo> OwnedPT;
  if (!Inputs.PT)
    OwnedPT = PointsTo::compute(M);
  const PointsTo &PT = Inputs.PT ? *Inputs.PT : *OwnedPT;
  std::optional<AccessClasses> OwnedClasses;
  if (!Inputs.Classes)
    OwnedClasses = AccessClasses::build(G);
  const AccessClasses &Classes =
      Inputs.Classes ? *Inputs.Classes : *OwnedClasses;
  Result.PrivateAccesses = Classes.privateAccesses();

  // --- Per-access root objects, and the expansion-target closure. --------
  std::map<AccessId, std::set<uint32_t>> Roots;
  for (const AccessDesc &D : Num.accesses())
    Roots[D.Id] = PT.lvalueRootObjects(D.location());

  // --- Commutative reduction selection. -----------------------------------
  // A class the witness proved commutative (every carried use one reduction
  // op) rides the private path: its accesses redirect to copy `tid`, and a
  // synthesized pair of helpers initializes copies 1..N-1 to the op's
  // identity before the loop and folds them into copy 0 (serial copy order,
  // so the result is deterministic) after it.
  struct CommObjInfo {
    VarDecl *Var = nullptr;
    unsigned ClassIdx = 0; ///< profile access-class index, for the guard
    CommutativeOp Op = CommutativeOp::None;
  };
  std::map<uint32_t, CommObjInfo> CommObjs; // points-to object id -> info
  std::set<AccessId> CommAccesses;
  do {
    const PrivatizationWitness *W = Inputs.Witness;
    if (!Opts.CommutativePrivatization || !W || W->unmodeled())
      break;
    // The init/merge calls are spliced around the loop statement, so the
    // loop must sit directly in a block we can rewrite.
    bool HaveSplicePoint = false;
    if (Cx.LoopFunction->getBody())
      walkStmts(Cx.LoopFunction->getBody(), [&](Stmt *S) {
        if (auto *Blk = dyn_cast<BlockStmt>(S))
          for (Stmt *Child : Blk->getStmts())
            if (Child == Cx.TargetLoop)
              HaveSplicePoint = true;
      });
    if (!HaveSplicePoint)
      break;

    std::set<AccessId> InLoop; // the graph's vertex set
    for (const auto &[Id, Cnt] : G.DynCount) {
      (void)Cnt;
      InLoop.insert(Id);
    }

    for (unsigned CI = 0; CI != Classes.classes().size(); ++CI) {
      const AccessClassInfo &C = Classes.classes()[CI];
      if (C.Private || C.Members.empty())
        continue;
      CommutativeOp Op = CommutativeOp::None;
      bool Ok = true;
      for (AccessId Id : C.Members) {
        CommutativeOp MOp = W->commutativeOpOf(Id);
        if (MOp == CommutativeOp::None ||
            (Op != CommutativeOp::None && MOp != Op)) {
          Ok = false;
          break;
        }
        Op = MOp;
      }
      if (!Ok)
        continue;
      // Object purity: every root must be a module variable holding an int
      // scalar or a one-dimensional int array (the helpers need a static
      // element count), must not be the induction variable or a parameter,
      // and a local must belong to the loop's own function — a carried
      // accumulator cannot live in a callee frame.
      std::set<uint32_t> ObjSet;
      for (AccessId Id : C.Members) {
        const auto &R = Roots[Id];
        if (R.empty())
          Ok = false;
        ObjSet.insert(R.begin(), R.end());
      }
      for (uint32_t Obj : ObjSet) {
        if (!Ok)
          break;
        const MemObject &O = PT.object(Obj);
        if (O.K != MemObject::Kind::Variable || O.Var->isParam() ||
            O.Var == Cx.TargetLoop->getInductionVar()) {
          Ok = false;
          break;
        }
        Type *Elem = O.Var->getType();
        if (auto *AT = dyn_cast<ArrayType>(Elem))
          Elem = AT->getElement();
        if (!Elem->isInt()) {
          Ok = false;
          break;
        }
        if (O.Var->isLocal()) {
          bool Owned = false;
          for (VarDecl *L : Cx.LoopFunction->getLocals())
            Owned |= L == O.Var;
          if (!Owned)
            Ok = false;
        }
        if (CommObjs.count(Obj))
          Ok = false; // two reduction classes must not share storage
      }
      if (!Ok)
        continue;
      // No foreign in-loop access may reach the reduction storage: a read
      // would observe an unmerged partial, a write would survive the merge
      // only on one thread's copy.
      std::set<AccessId> MemberSet(C.Members.begin(), C.Members.end());
      for (AccessId Id : InLoop) {
        if (MemberSet.count(Id))
          continue;
        auto RIt = Roots.find(Id);
        if (RIt != Roots.end() && !intersect(RIt->second, ObjSet).empty()) {
          Ok = false;
          break;
        }
      }
      if (!Ok)
        continue;
      for (uint32_t Obj : ObjSet)
        CommObjs[Obj] = {PT.object(Obj).Var, CI, Op};
      CommAccesses.insert(C.Members.begin(), C.Members.end());
      ++Result.Stats.CommutativeClasses;
    }
    Result.Stats.CommutativeObjects =
        static_cast<unsigned>(CommObjs.size());
    for (AccessId Id : CommAccesses)
      Result.PrivateAccesses.insert(Id);
  } while (false);

  std::set<uint32_t> &E = Cx.ExpandedObjs;
  for (AccessId Id : Result.PrivateAccesses) {
    const auto &R = Roots[Id];
    E.insert(R.begin(), R.end());
  }
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (const auto &[Id, R] : Roots) {
      if (R.empty() || intersect(R, E).empty() ||
          std::includes(E.begin(), E.end(), R.begin(), R.end()))
        continue;
      E.insert(R.begin(), R.end());
      Grew = true;
    }
  }

  // --- Scalar privatization exclusion. ------------------------------------
  // Non-address-taken scalar/pointer locals need no data structure
  // expansion: the parallel runtime's loop outlining already gives each
  // worker its own copy (classic scalar privatization — OpenMP `private`).
  // The paper's technique exists for the structures this cannot handle.
  // Such variables cannot be aliased (their address is never taken), so
  // removing them from the target set never breaks the closure.
  std::set<const VarDecl *> AddressTaken;
  {
    for (Function *F : M.getFunctions()) {
      walkExprs(F, [&](Expr *Ex) {
        const Expr *Loc = nullptr;
        if (auto *A = dyn_cast<AddrOfExpr>(Ex))
          Loc = A->getLocation();
        else if (auto *D = dyn_cast<DecayExpr>(Ex))
          Loc = D->getArrayLocation();
        while (Loc) {
          if (auto *FA = dyn_cast<FieldAccessExpr>(Loc)) {
            Loc = FA->getBase();
            continue;
          }
          if (auto *V = dyn_cast<VarRefExpr>(Loc))
            AddressTaken.insert(V->getDecl());
          break;
        }
      });
    }
    for (auto It = E.begin(); It != E.end();) {
      const MemObject &O = PT.object(*It);
      bool RuntimePrivatizable =
          O.K == MemObject::Kind::Variable && O.Var->isLocal() &&
          (O.Var->getType()->isScalar() || O.Var->getType()->isPointer()) &&
          !AddressTaken.count(O.Var) &&
          // Reduction storage must stay expanded: per-worker frame copies
          // (last-writer-wins at join) would lose the partial sums the
          // synthesized merge needs to fold.
          !CommObjs.count(*It);
      if (RuntimePrivatizable)
        It = E.erase(It);
      else
        ++It;
    }
  }

  // --- Resolve and validate the targets. ---------------------------------
  VarDecl *IV = Cx.TargetLoop->getInductionVar();
  for (uint32_t Obj : E) {
    const MemObject &O = PT.object(Obj);
    if (O.K == MemObject::Kind::Variable) {
      if (O.Var->isParam()) {
        Cx.error("cannot expand parameter storage '" + O.Var->getName() +
                 "'");
        return Result;
      }
      if (O.Var == IV) {
        Cx.error("the loop induction variable must not require expansion");
        return Result;
      }
      Cx.ExpandedVars.insert(O.Var);
    } else {
      if (O.Site->getBuiltin() == Builtin::ReallocFn) {
        Cx.error("realloc of an expanded structure is unsupported (grown "
                 "bonded copies would interleave stale data)");
        return Result;
      }
      Cx.ExpandedSites.insert(O.Site);
    }
  }

  // Interleaved layout: reject recast structures (the paper's bzip2 zptr
  // argument for bonded mode).
  if (Opts.Layout == LayoutMode::Interleaved) {
    for (Function *F : M.getFunctions()) {
      walkExprs(F, [&](Expr *Ex) {
        auto *C = dyn_cast<CastExpr>(Ex);
        if (!C || !C->getType()->isPointer() ||
            !C->getSub()->getType()->isPointer())
          return;
        Type *ToP = cast<PointerType>(C->getType())->getPointee();
        Type *FromP = cast<PointerType>(C->getSub()->getType())->getPointee();
        if (ToP->isVoid() || FromP->isVoid())
          return;
        if (Cx.types().getLayout(ToP).Size == Cx.types().getLayout(FromP).Size)
          return;
        if (!intersect(PT.valueObjects(C->getSub()), E).empty())
          Cx.error("interleaved layout cannot expand a structure recast "
                   "between different-sized element types");
      });
    }
    if (Cx.failed())
      return Result;
  }

  // --- Fat pointer slots (§3.4 selective promotion / constant spans). ----
  auto slotNeedsSpan = [&](const std::set<uint32_t> &PointeeObjs) -> bool {
    std::set<uint32_t> Hits = intersect(PointeeObjs, E);
    if (Opts.SelectivePromotion && Hits.empty())
      return false;
    if (!Opts.SelectivePromotion && PointeeObjs.empty() && Hits.empty()) {
      // Unoptimized mode promotes every pointer slot regardless.
      return true;
    }
    if (Opts.SpanConstantPropagation) {
      const std::set<uint32_t> &ForConst = Hits.empty() ? PointeeObjs : Hits;
      if (!ForConst.empty() &&
          commonConstSize(Cx, PT, ForConst, /*Translated=*/false))
        return false;
    }
    if (!Opts.SelectivePromotion)
      return true;
    return !Hits.empty();
  };

  // Variable slots.
  for (uint32_t Id = 1; Id <= M.getNumVarDecls(); ++Id) {
    VarDecl *V = M.getVarDecl(Id);
    if (!V->getType()->isPointer())
      continue;
    if (slotNeedsSpan(PT.contentObjects(V))) {
      PointerSlot Slot;
      Slot.Var = V;
      Cx.FatSlots.insert(Slot);
    }
  }
  // Field slots: gather stored-value objects per (struct, field).
  std::map<std::pair<StructType *, unsigned>, std::set<uint32_t>> FieldPts;
  std::set<std::pair<StructType *, unsigned>> PtrFields;
  for (StructType *S : M.getTypes().getStructs()) {
    if (S->isOpaque())
      continue;
    for (unsigned I = 0, NumF = S->getNumFields(); I != NumF; ++I)
      if (S->getField(I).Ty->isPointer())
        PtrFields.insert({S, I});
  }
  for (Function *F : M.getFunctions()) {
    if (!F->getBody())
      continue;
    walkStmts(F->getBody(), [&](Stmt *S) {
      auto *A = dyn_cast<AssignStmt>(S);
      if (!A || !A->getLHS()->getType()->isPointer())
        return;
      auto *FA = dyn_cast<FieldAccessExpr>(A->getLHS());
      if (!FA)
        return;
      auto *ST = cast<StructType>(FA->getBase()->getType());
      auto &Set = FieldPts[{ST, FA->getFieldIndex()}];
      const auto &VO = PT.valueObjects(A->getRHS());
      Set.insert(VO.begin(), VO.end());
    });
  }
  for (const auto &Key : PtrFields) {
    auto It = FieldPts.find(Key);
    std::set<uint32_t> Objs =
        It == FieldPts.end() ? std::set<uint32_t>() : It->second;
    if (slotNeedsSpan(Objs)) {
      PointerSlot Slot;
      Slot.Struct = Key.first;
      Slot.FieldIdx = Key.second;
      Cx.FatSlots.insert(Slot);
    }
  }

  // Translation tables become valid from here on.
  Cx.computeChangingStructs();

  // --- Table 3 integer span rule: difference variables (i = p - q). ------
  // A reconstruction r = q + i must take p's span (q + (p - q) IS p), so
  // integer variables that only ever receive pointer differences get a
  // shadow span variable carrying the minuend's span. Tracking is
  // conservative: the variable must be a non-address-taken int local or
  // global (never written through an alias), every assignment to it must be
  // a pointer difference whose minuend span is derivable (structurally from
  // a fat slot or as a constant), and it must actually flow back into
  // pointer arithmetic somewhere — otherwise rule 1 stays in effect.
  {
    auto stripIntCasts = [](Expr *Ex) {
      while (auto *C = dyn_cast<CastExpr>(Ex))
        Ex = C->getSub();
      return Ex;
    };
    auto asPtrDifference = [&](Expr *Ex) -> BinaryExpr * {
      auto *Bin = dyn_cast<BinaryExpr>(stripIntCasts(Ex));
      if (Bin && Bin->getOp() == BinaryOp::Sub &&
          Bin->getLHS()->getType()->isPointer() &&
          Bin->getRHS()->getType()->isPointer())
        return Bin;
      return nullptr;
    };
    // Minuend span derivable structurally: a load of a slot that will be
    // promoted to a fat pointer (its .span sibling exists after rewrite).
    auto minuendSpanIsStructural = [&](Expr *Ex) {
      auto *L = dyn_cast<LoadExpr>(stripIntCasts(Ex));
      if (!L)
        return false;
      if (auto *V = dyn_cast<VarRefExpr>(L->getLocation())) {
        PointerSlot Slot;
        Slot.Var = V->getDecl();
        return Cx.FatSlots.count(Slot) != 0;
      }
      if (auto *FA = dyn_cast<FieldAccessExpr>(L->getLocation())) {
        auto *ST = dyn_cast<StructType>(FA->getBase()->getType());
        if (!ST)
          return false;
        PointerSlot Slot;
        Slot.Struct = ST;
        Slot.FieldIdx = FA->getFieldIndex();
        return Cx.FatSlots.count(Slot) != 0;
      }
      return false;
    };

    // Constant span of a difference's minuend, when all relevant pointees
    // agree on one (post-translation) size.
    auto minuendConstSpan = [&](Expr *Minuend) -> std::optional<int64_t> {
      const auto &Objs = PT.valueObjects(Minuend);
      std::set<uint32_t> Rel = intersect(Objs, E);
      if (Rel.empty())
        Rel = Objs;
      if (Rel.empty())
        return std::nullopt;
      return commonConstSize(Cx, PT, Rel, /*Translated=*/true);
    };

    // Variables consumed by pointer arithmetic (q + i / i + q): the only
    // places a difference span is ever read back. Inline differences
    // (r = q + (p - q)) get their minuend's constant fallback recorded here,
    // keyed by the Sub node itself.
    std::set<const VarDecl *> AddedToPointer;
    for (Function *F : M.getFunctions()) {
      walkExprs(F, [&](Expr *Ex) {
        auto *Bin = dyn_cast<BinaryExpr>(Ex);
        if (!Bin || Bin->getOp() != BinaryOp::Add ||
            !Bin->getType()->isPointer())
          return;
        for (Expr *Op : {Bin->getLHS(), Bin->getRHS()}) {
          if (auto *L = dyn_cast<LoadExpr>(stripIntCasts(Op))) {
            if (auto *V = dyn_cast<VarRefExpr>(L->getLocation()))
              if (V->getDecl()->getType()->isInt())
                AddedToPointer.insert(V->getDecl());
          } else if (BinaryExpr *Sub = asPtrDifference(Op)) {
            if (auto CS = minuendConstSpan(Sub->getLHS()))
              Cx.InlineDiffSpanFallback[Sub] = *CS;
          }
        }
      });
    }

    struct DiffCandidate {
      bool Eligible = true;
      Function *Owner = nullptr;
      std::vector<AssignStmt *> Assigns;
    };
    std::map<uint32_t, DiffCandidate> Candidates; // keyed by var id: the
    // shadow creation below must iterate deterministically, not by pointer.
    std::map<const VarDecl *, uint32_t> IdOf;
    for (uint32_t Id = 1; Id <= M.getNumVarDecls(); ++Id)
      IdOf[M.getVarDecl(Id)] = Id;

    for (Function *F : M.getFunctions()) {
      if (!F->getBody())
        continue;
      walkStmts(F->getBody(), [&](Stmt *S) {
        auto *A = dyn_cast<AssignStmt>(S);
        if (!A)
          return;
        auto *VR = dyn_cast<VarRefExpr>(A->getLHS());
        if (!VR || !VR->getDecl()->getType()->isInt())
          return;
        VarDecl *V = VR->getDecl();
        if (!AddedToPointer.count(V))
          return;
        DiffCandidate &C = Candidates[IdOf[V]];
        BinaryExpr *Sub = asPtrDifference(A->getRHS());
        if (!Sub || V->isParam() || AddressTaken.count(V)) {
          C.Eligible = false;
          return;
        }
        // The minuend's span must be obtainable at rewrite time, either
        // structurally or as a constant fallback.
        Expr *Minuend = Sub->getLHS();
        std::optional<int64_t> CS = minuendConstSpan(Minuend);
        if (!CS && !minuendSpanIsStructural(Minuend)) {
          C.Eligible = false;
          return;
        }
        C.Owner = F;
        C.Assigns.push_back(A);
        if (CS)
          Cx.DiffSpanFallback[A] = *CS;
      });
    }

    for (auto &[Id, C] : Candidates) {
      VarDecl *V = M.getVarDecl(Id);
      if (!C.Eligible || C.Assigns.empty())
        continue;
      VarDecl *Shadow;
      if (V->isLocal()) {
        Shadow = M.createVar(V->getName() + "$span", Cx.types().getInt64(),
                             VarDecl::Storage::Local);
        C.Owner->addLocal(Shadow);
      } else {
        Shadow = M.addGlobal(V->getName() + "$span", Cx.types().getInt64());
      }
      Cx.DiffSpanVars[V] = Shadow;
    }
  }

  // --- Per-access plans. --------------------------------------------------
  for (const AccessDesc &D : Num.accesses()) {
    const auto &R = Roots[D.Id];
    if (R.empty() || intersect(R, E).empty())
      continue;
    AccessPlan Plan;
    Plan.Redirect = true;
    Plan.Private = Result.PrivateAccesses.count(D.Id) != 0;
    if (auto C = commonConstSize(Cx, PT, R, /*Translated=*/true))
      Plan.ConstSpan = *C;
    Cx.Plans[D.Id] = Plan;
  }

  // --- Fallback constant spans for pointer definitions. ------------------
  for (Function *F : M.getFunctions()) {
    if (!F->getBody())
      continue;
    walkStmts(F->getBody(), [&](Stmt *S) {
      auto *A = dyn_cast<AssignStmt>(S);
      if (!A || !A->getRHS()->getType()->isPointer())
        return;
      const auto &Objs = PT.valueObjects(A->getRHS());
      std::set<uint32_t> Rel = intersect(Objs, E);
      if (Rel.empty())
        Rel = Objs;
      if (Rel.empty())
        return;
      if (auto C = commonConstSize(Cx, PT, Rel, /*Translated=*/true))
        Cx.AssignConstSpan[A] = *C;
    });
    walkExprs(F, [&](Expr *Ex) {
      auto *C = dyn_cast<CallExpr>(Ex);
      if (!C || C->isBuiltin())
        return;
      for (unsigned I = 0, NumA = C->getNumArgs(); I != NumA; ++I) {
        if (!C->getArg(I)->getType()->isPointer())
          continue;
        const auto &Objs = PT.valueObjects(C->getArg(I));
        std::set<uint32_t> Rel = intersect(Objs, E);
        if (Rel.empty())
          Rel = Objs;
        if (Rel.empty())
          continue;
        if (auto CS = commonConstSize(Cx, PT, Rel, /*Translated=*/true))
          Cx.CallArgConstSpan[{C, I}] = *CS;
      }
    });
  }

  // --- Rewrite. -----------------------------------------------------------
  Cx.runPromotion();
  if (Cx.failed())
    return Result;
  Cx.runExpansionAndRedirection();
  if (Cx.failed())
    return Result;

  // --- Commutative merge synthesis. ---------------------------------------
  // The helpers are appended as new module functions — AccessNumbering
  // numbers them after every existing loop and access, so the profiled ids
  // of other candidate loops in this module stay stable — and called around
  // the target loop. Copies 1..N-1 take the op's identity at loop entry;
  // copy 0 keeps the pre-loop value and absorbs the others in serial copy
  // order at loop exit, so `v0 op x1 op ... op xk` is only reassociated,
  // never reordered across a non-identity — exact for wrap-around integer
  // + and *, idempotent for min/max. Under guard fallback the loop-entry
  // checkpoint lands after the init calls: rollback restores identities,
  // the serial re-run accumulates on copy 0, and the merge degenerates to
  // a no-op.
  if (!CommObjs.empty()) {
    TypeContext &Ctx = Cx.types();
    IRBuilder &B = Cx.B;
    std::vector<Stmt *> InitCalls, MergeCalls;
    for (const auto &Entry : CommObjs) {
      uint32_t Obj = Entry.first;
      VarDecl *V = Entry.second.Var;
      CommutativeOp Op = Entry.second.Op;
      auto BIt = Cx.ConvertedBacking.find(V);
      if (BIt == Cx.ConvertedBacking.end()) {
        Cx.error("commutative object '" + V->getName() +
                 "' has no converted backing");
        return Result;
      }
      VarDecl *Backing = BIt->second;
      Type *CopyTy = V->getType(); // already translated; int or int[]
      Type *ElemTy = CopyTy;
      int64_t NumElems = 1;
      if (auto *AT = dyn_cast<ArrayType>(CopyTy)) {
        ElemTy = AT->getElement();
        NumElems = static_cast<int64_t>(AT->getNumElements());
      }
      auto *IT = cast<IntType>(ElemTy);
      int64_t TypeMax =
          IT->isSigned()
              ? (IT->getBits() >= 64
                     ? INT64_MAX
                     : (int64_t(1) << (IT->getBits() - 1)) - 1)
              : (IT->getBits() >= 64 ? int64_t(-1)
                                     : (int64_t(1) << IT->getBits()) - 1);
      int64_t TypeMin = IT->isSigned()
                            ? (IT->getBits() >= 64
                                   ? INT64_MIN
                                   : -(int64_t(1) << (IT->getBits() - 1)))
                            : 0;
      int64_t Identity = 0;
      switch (Op) {
      case CommutativeOp::Add:
        Identity = 0;
        break;
      case CommutativeOp::Mul:
        Identity = 1;
        break;
      case CommutativeOp::Min:
        Identity = TypeMax;
        break;
      case CommutativeOp::Max:
        Identity = TypeMin;
        break;
      case CommutativeOp::None:
        break;
      }

      Type *PtrElem = Ctx.getPointerType(ElemTy);
      FunctionType *FT = Ctx.getFunctionType(Ctx.getVoidType(), {PtrElem});

      // Builds one helper over the N-copy block: for every copy t in
      // 1..N-1 (and every element for arrays), Emit produces the statement
      // over fresh l-values — LV(true) addresses copy t's element, LV(false)
      // copy 0's.
      auto makeHelper =
          [&](const std::string &Name,
              const std::function<Stmt *(const std::function<Expr *(bool)> &)>
                  &Emit) -> Function * {
        Function *F = M.createFunction(Name, FT);
        VarDecl *P = M.createVar("p", PtrElem, VarDecl::Storage::Param);
        F->addParam(P);
        VarDecl *TV =
            M.createVar("t", Ctx.getInt32(), VarDecl::Storage::Local);
        F->addLocal(TV);
        VarDecl *EV = NumElems == 1
                          ? nullptr
                          : M.createVar("e", Ctx.getInt32(),
                                        VarDecl::Storage::Local);
        if (EV)
          F->addLocal(EV);
        // Flat element index of element e in copy c: bonded copies are
        // whole-structure adjacent (c*NumElems + e), interleaved replicates
        // per element (e*N + c).
        auto LV = [&, P, TV, EV](bool CopyT) -> Expr * {
          Expr *CopyIdx = CopyT ? static_cast<Expr *>(B.loadVar(TV))
                                : static_cast<Expr *>(B.intLit(0));
          if (!EV)
            return B.index(B.loadVar(P), CopyIdx);
          Expr *Flat =
              Cx.Opts.Layout == LayoutMode::Bonded
                  ? B.add(B.mul(CopyIdx,
                                B.intLit(NumElems, Ctx.getInt64())),
                          B.loadVar(EV))
                  : B.add(B.mul(B.loadVar(EV),
                                B.convert(B.numThreads(), Ctx.getInt64())),
                          CopyIdx);
          return B.index(B.loadVar(P), Flat);
        };
        Stmt *Inner = Emit(LV);
        if (EV)
          Inner = B.forStmt(EV, B.intLit(0), B.intLit(NumElems), B.intLit(1),
                            B.block({Inner}));
        Stmt *Loop = B.forStmt(TV, B.intLit(1), B.numThreads(), B.intLit(1),
                               B.block({Inner}));
        F->setBody(B.block({Loop}));
        return F;
      };

      Function *InitF = makeHelper(
          formatString("__gdse_comm_init_l%u_o%u", LoopId, Obj),
          [&](const std::function<Expr *(bool)> &LV) -> Stmt * {
            return B.assign(LV(true), B.intLit(Identity, ElemTy));
          });
      Function *MergeF = makeHelper(
          formatString("__gdse_comm_merge_l%u_o%u", LoopId, Obj),
          [&](const std::function<Expr *(bool)> &LV) -> Stmt * {
            switch (Op) {
            case CommutativeOp::Add:
              return B.assign(LV(false),
                              B.add(B.load(LV(false)), B.load(LV(true))));
            case CommutativeOp::Mul:
              return B.assign(LV(false),
                              B.mul(B.load(LV(false)), B.load(LV(true))));
            case CommutativeOp::Min:
              return B.ifStmt(
                  B.lt(B.load(LV(true)), B.load(LV(false))),
                  B.block({B.assign(LV(false), B.load(LV(true)))}));
            case CommutativeOp::Max:
              return B.ifStmt(
                  B.binary(BinaryOp::Gt, B.load(LV(true)), B.load(LV(false))),
                  B.block({B.assign(LV(false), B.load(LV(true)))}));
            case CommutativeOp::None:
              break;
            }
            gdse_unreachable("bad commutative op");
          });

      InitCalls.push_back(B.exprStmt(
          B.call(InitF, {B.castTo(B.loadVar(Backing), PtrElem)})));
      MergeCalls.push_back(B.exprStmt(
          B.call(MergeF, {B.castTo(B.loadVar(Backing), PtrElem)})));
    }

    // Splice the calls around the loop statement (verified to exist at
    // selection time; rewrites replace bodies, never the loop node itself).
    BlockStmt *Parent = nullptr;
    size_t Idx = 0;
    walkStmts(Cx.LoopFunction->getBody(), [&](Stmt *S) {
      if (auto *Blk = dyn_cast<BlockStmt>(S)) {
        auto &Sv = Blk->getStmts();
        for (size_t I = 0; I < Sv.size(); ++I)
          if (Sv[I] == Cx.TargetLoop) {
            Parent = Blk;
            Idx = I;
          }
      }
    });
    if (!Parent) {
      Cx.error("commutative synthesis lost the target loop's parent block");
      return Result;
    }
    std::vector<Stmt *> Wrapped = std::move(InitCalls);
    Wrapped.push_back(Cx.TargetLoop);
    Wrapped.insert(Wrapped.end(), MergeCalls.begin(), MergeCalls.end());
    Parent->getStmts()[Idx] = B.block(std::move(Wrapped));
  }

  std::vector<std::string> VerifyErrs = verifyModule(M);
  for (const std::string &Err : VerifyErrs)
    Cx.error("post-expansion verification: " + Err);
  if (Cx.failed())
    return Result;

  // NOTE: access ids are deliberately NOT renumbered: the surviving nodes
  // keep the ids of the profiled module, so the planner can match the
  // dependence graph's vertices against the transformed loop body.
  Result.Ok = true;

  // --- Guarded-execution metadata. ---------------------------------------
  // Record what this transformation claimed, so the runtime can validate it:
  // the class of every access redirected to a private copy, and the
  // allocation sites whose blocks hold the N per-thread copies.
  if (!Result.PrivateAccesses.empty() && !Cx.BackingSiteIds.empty()) {
    // Static privatization witness: a class whose every member the witness
    // proved private carries a compile-time proof of Definition 5's
    // conditions (1)+(2) — runtime validation of it is redundant, so its
    // accesses are elided from the plan. The per-access proofs are
    // independent of how the source graph partitioned accesses, so the
    // pruning is sound even against an external (possibly wrong) graph: a
    // class the graph mislabels private has an unprovable member and keeps
    // its guards.
    const PrivatizationWitness *W =
        Opts.GuardPruning ? Inputs.Witness : nullptr;
    if (W && W->unmodeled())
      W = nullptr;
    std::set<unsigned> PrunedClasses;
    if (W)
      for (unsigned CI = 0; CI != Classes.classes().size(); ++CI) {
        const AccessClassInfo &C = Classes.classes()[CI];
        if (!C.Private)
          continue;
        bool AllProven = true;
        for (AccessId Id : C.Members)
          AllProven &= W->provenPrivate(Id);
        if (AllProven)
          PrunedClasses.insert(CI);
      }

    auto GP = std::make_shared<GuardPlan>();
    GP->LoopId = LoopId;
    GP->NumClasses = static_cast<unsigned>(Classes.classes().size());
    // Only accesses actually REDIRECTED into a per-thread copy: a private
    // class can also contain accesses to per-iteration locals or unpromoted
    // slots that never touch an expanded block — those are private by
    // construction, not by this rewrite, and the guard must not expect them
    // inside a guarded region.
    for (AccessId Id : Result.PrivateAccesses) {
      auto It = Cx.Plans.find(Id);
      if (It == Cx.Plans.end() || !It->second.Redirect || !It->second.Private)
        continue;
      unsigned CI = Classes.classOf(Id);
      if (CommAccesses.count(Id)) {
        // Commutative members are validated in commit-time-merge mode (the
        // region is watched for foreign touches, not first writes) and are
        // never witness-pruned: the commutativity proof is exactly what the
        // guard is there to check.
        GP->CommClassOf[Id] = CI;
        continue;
      }
      if (PrunedClasses.count(CI)) {
        ++Result.Stats.GuardAccessesElided;
        continue;
      }
      GP->PrivateClassOf[Id] = CI;
    }
    // Backing sites of the commutative objects anchor the watched regions;
    // they carry no first-write shadow and must not look like ordinary
    // guarded regions.
    std::map<uint32_t, unsigned> CommSiteOf;
    for (uint32_t Site : Cx.BackingSiteIds)
      if (auto BIt = Cx.BackingVarOf.find(Site);
          BIt != Cx.BackingVarOf.end()) {
        auto CIt = CommObjs.find(PT.objectOfVar(BIt->second));
        if (CIt != CommObjs.end())
          CommSiteOf[Site] = CIt->second.ClassIdx;
      }
    GP->CommSiteClass = CommSiteOf;
    // A region only exists to validate the claimed accesses that may land
    // in it: a backing site whose pre-expansion object no surviving claimed
    // access may touch (per the same points-to roots the targeting used)
    // needs no first-write shadow. Objects are mapped through the ORIGINAL
    // module: expanded heap sites keep their site ids, converted variables
    // are recorded by the rewrite.
    if (PrunedClasses.empty()) {
      for (uint32_t Site : Cx.BackingSiteIds)
        if (!CommSiteOf.count(Site))
          GP->RegionSites.insert(Site);
    } else {
      std::set<uint32_t> GuardedObjs;
      for (const auto &[Id, CI] : GP->PrivateClassOf) {
        const auto &R = Roots[Id];
        GuardedObjs.insert(R.begin(), R.end());
      }
      for (uint32_t Site : Cx.BackingSiteIds) {
        if (CommSiteOf.count(Site))
          continue;
        uint32_t Obj = UINT32_MAX;
        if (auto BIt = Cx.BackingVarOf.find(Site);
            BIt != Cx.BackingVarOf.end())
          Obj = PT.objectOfVar(BIt->second);
        else if (PT.hasSite(Site))
          Obj = PT.objectOfSite(Site);
        if (Obj != UINT32_MAX && !GuardedObjs.count(Obj)) {
          ++Result.Stats.GuardRegionsElided;
          continue;
        }
        GP->RegionSites.insert(Site);
      }
    }
    if (!GP->empty())
      Result.Guard = GP;
  }
  return Result;
}
