//===- Expand.cpp - Type expansion x N and access redirection --------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Implements §3.1 (Table 1) and §3.3 (Table 2):
//  - expanded heap allocation sites multiply their byte size by N (a runtime
//    value: the __nthreads expression);
//  - expanded locals and globals are converted to heap-backed blocks of N
//    adjacent copies: `T v` becomes `T* v$x = malloc(sizeof(T)*N)` with
//    direct accesses indexing copy tid (private) or copy 0 (shared). Local
//    backings are freed on every return of the owning function; global
//    backings are allocated at main() entry (the paper's global-to-heap
//    conversion);
//  - accesses are redirected: VarRef roots index the converted backing,
//    pointer-based roots (deref / subscripts) offset the base pointer by
//    tid*span/sizeof(*p) in bonded mode, or rescale the subscript to
//    i*N + tid in interleaved mode (which rejects recast structures and
//    mid-structure dereferences — exactly the limitations that made the
//    paper prefer bonded layout).
//
//===----------------------------------------------------------------------===//

#include "expand/ExpansionImpl.h"

#include "ir/IRClone.h"
#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "support/Support.h"

using namespace gdse;

namespace {

constexpr unsigned FatPointerField = 0;

class RedirectRewriter : public IRRewriter {
public:
  RedirectRewriter(ExpansionContext &Cx) : IRRewriter(Cx.M), Cx(Cx) {}

  /// Runs on one function; global backing pointers referenced by redirected
  /// accesses are hoisted into a register-like local alias (what LICM /
  /// load-PRE does to the loop-invariant load in compiled code). \p Prepend
  /// is the number of statements the conversion already inserted at the top
  /// of the body (alias initializers go right after them).
  void runOnFunction(Function *F, unsigned Prepend) {
    CurFn = F;
    AliasInits.clear();
    run(F);
    if (!AliasInits.empty() && F->getBody()) {
      auto &Stmts = F->getBody()->getStmts();
      Stmts.insert(Stmts.begin() + std::min<size_t>(Prepend, Stmts.size()),
                   AliasInits.begin(), AliasInits.end());
    }
  }

protected:
  Expr *transformExpr(Expr *E) override {
    switch (E->getKind()) {
    case Expr::Kind::Load: {
      auto *L = cast<LoadExpr>(E);
      const AccessPlan *Plan = planOf(L->getAccessId());
      if (Plan && Plan->Redirect) {
        L->setLocation(redirectLValue(L->getLocation(), *Plan));
        ++(Plan->Private ? Cx.Result.Stats.PrivateAccessesRedirected
                         : Cx.Result.Stats.SharedAccessesRedirected);
      }
      return L;
    }
    case Expr::Kind::AddrOf: {
      // Address computations always yield the canonical (copy 0) address;
      // redirection happens at access time (Table 2's model).
      auto *A = cast<AddrOfExpr>(E);
      A->setLocation(sharedLValue(A->getLocation()));
      return A;
    }
    case Expr::Kind::Decay: {
      auto *D = cast<DecayExpr>(E);
      D->setArrayLocation(sharedLValue(D->getArrayLocation()));
      return D;
    }
    default:
      return E;
    }
  }

  Stmt *transformStmt(Stmt *S) override {
    auto *A = dyn_cast<AssignStmt>(S);
    if (!A)
      return S;
    const AccessPlan *Plan = planOf(A->getAccessId());
    if (Plan && Plan->Redirect) {
      A->setLHS(redirectLValue(A->getLHS(), *Plan));
      ++(Plan->Private ? Cx.Result.Stats.PrivateAccessesRedirected
                       : Cx.Result.Stats.SharedAccessesRedirected);
    }
    return S;
  }

private:
  const AccessPlan *planOf(AccessId Id) const {
    if (Id == InvalidAccessId)
      return nullptr;
    auto It = Cx.Plans.find(Id);
    return It == Cx.Plans.end() ? nullptr : &*&It->second;
  }

  /// Copy index expression for a plan: tid (int) or 0.
  Expr *copyIndex(bool Private) {
    return Private ? static_cast<Expr *>(Cx.B.threadId())
                   : static_cast<Expr *>(Cx.B.intLit(0));
  }

  /// Load of the backing pointer; global backings go through a per-function
  /// local alias so the load stays in a register.
  Expr *backingLoad(VarDecl *Backing) {
    if (!Backing->isGlobal() || !CurFn || !CurFn->getBody())
      return Cx.B.loadVar(Backing);
    VarDecl *&AliasVar = Alias[CurFn][Backing];
    if (!AliasVar) {
      AliasVar = Cx.M.createVar(Backing->getName() + "$l", Backing->getType(),
                                VarDecl::Storage::Local);
      CurFn->addLocal(AliasVar);
      Cx.StableBases.insert(AliasVar);
      AliasInits.push_back(Cx.M.create<AssignStmt>(
          Cx.B.varRef(AliasVar), Cx.B.loadVar(Backing)));
    }
    return Cx.B.loadVar(AliasVar);
  }

  /// Rewrites an l-value whose root was already generically rewritten, but
  /// whose redirection index must be the shared copy (AddrOf/Decay bases).
  Expr *sharedLValue(Expr *LV) {
    AccessPlan SharedPlan;
    SharedPlan.Redirect = true;
    SharedPlan.Private = false;
    SharedPlan.ConstSpan = -1;
    return redirectRootIfExpanded(LV, SharedPlan);
  }

  /// Redirects only when the l-value actually touches an expanded variable
  /// root (used for address computations, which carry no access plan).
  Expr *redirectRootIfExpanded(Expr *LV, const AccessPlan &Plan) {
    switch (LV->getKind()) {
    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(LV);
      auto It = Cx.ConvertedBacking.find(V->getDecl());
      if (It == Cx.ConvertedBacking.end())
        return LV;
      return Cx.B.index(backingLoad(It->second), copyIndex(Plan.Private));
    }
    case Expr::Kind::FieldAccess: {
      auto *F = cast<FieldAccessExpr>(LV);
      F->setBase(redirectRootIfExpanded(F->getBase(), Plan));
      return F;
    }
    default:
      // Pointer-based roots need no rewriting for the shared copy (the
      // base address is copy 0 already).
      return LV;
    }
  }

  /// Full Table 2 redirection of an access l-value.
  Expr *redirectLValue(Expr *LV, const AccessPlan &Plan) {
    switch (LV->getKind()) {
    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(LV);
      auto It = Cx.ConvertedBacking.find(V->getDecl());
      if (It == Cx.ConvertedBacking.end()) {
        Cx.error("access to expanded variable '" + V->getDecl()->getName() +
                 "' has no converted backing");
        return LV;
      }
      return Cx.B.index(backingLoad(It->second), copyIndex(Plan.Private));
    }
    case Expr::Kind::FieldAccess: {
      auto *F = cast<FieldAccessExpr>(LV);
      F->setBase(redirectLValue(F->getBase(), Plan));
      return F;
    }
    case Expr::Kind::Deref: {
      auto *D = cast<DerefExpr>(LV);
      if (Cx.Opts.Layout == LayoutMode::Interleaved) {
        Cx.error("interleaved layout cannot redirect a pointer dereference "
                 "(mid-structure position is unknown at compile time)");
        return LV;
      }
      if (Plan.Private)
        D->setPtr(adjustBase(D->getPtr(), Plan));
      return D;
    }
    case Expr::Kind::ArrayIndex: {
      auto *A = cast<ArrayIndexExpr>(LV);
      if (Cx.Opts.Layout == LayoutMode::Interleaved)
        return interleavedIndex(A, Plan);
      if (Plan.Private)
        A->setBase(adjustBase(A->getBase(), Plan));
      return A;
    }
    default:
      Cx.error("cannot redirect l-value: " + printExpr(LV));
      return LV;
    }
  }

  /// Bonded mode: base + tid * span / sizeof(*base).
  Expr *adjustBase(Expr *Base, const AccessPlan &Plan) {
    auto *PT = cast<PointerType>(Base->getType());
    int64_t ElemSize =
        static_cast<int64_t>(Cx.types().getLayout(PT->getPointee()).Size);
    Expr *Span = Cx.spanExprForValue(Base, Plan.ConstSpan);
    if (!Span) {
      Cx.error("cannot derive the span of a privatized access base; promote "
               "the pointer or make the allocation size a constant");
      return Base;
    }
    Expr *ElemOffset;
    auto *Lit = dyn_cast<IntLitExpr>(Span);
    if (Lit && Cx.Opts.SpanConstantPropagation) {
      // Constant-folded: tid * (span/elem) (span constant propagation). The
      // unoptimized configuration keeps the literal Table 2 form with the
      // runtime division.
      ElemOffset = Cx.B.mul(
          Cx.B.convert(Cx.B.threadId(), Cx.types().getInt64()),
          Cx.B.longLit(Lit->getValue() / ElemSize));
    } else {
      ElemOffset = Cx.B.mul(
          Cx.B.convert(Cx.B.threadId(), Cx.types().getInt64()),
          Cx.B.div(Span, Cx.B.longLit(ElemSize)));
    }
    return Cx.B.add(Base, ElemOffset);
  }

  /// Interleaved mode: a[i] -> a[i*N + idx] (primitive elements only).
  Expr *interleavedIndex(ArrayIndexExpr *A, const AccessPlan &Plan) {
    if (!A->getType()->isScalar() && !A->getType()->isPointer()) {
      Cx.error("interleaved layout requires primitive array elements");
      return A;
    }
    Expr *I64 = Cx.B.convert(A->getIndex(), Cx.types().getInt64());
    Expr *Scaled =
        Cx.B.mul(I64, Cx.B.convert(Cx.B.numThreads(), Cx.types().getInt64()));
    Expr *NewIdx =
        Cx.B.add(Scaled, Cx.B.convert(copyIndex(Plan.Private),
                                      Cx.types().getInt64()));
    A->setIndex(NewIdx);
    return A;
  }

  ExpansionContext &Cx;
  Function *CurFn = nullptr;
  std::map<Function *, std::map<VarDecl *, VarDecl *>> Alias;
  std::vector<Stmt *> AliasInits;
};

} // namespace

void ExpansionContext::runExpansionAndRedirection() {
  TypeContext &Ctx = types();
  Type *I64 = Ctx.getInt64();

  // --- Table 1, heap rule: multiply expanded allocation sites by N. ------
  for (CallExpr *C : ExpandedSites) {
    BackingSiteIds.insert(C->getSiteId());
    Expr *N = B.convert(B.numThreads(), I64);
    switch (C->getBuiltin()) {
    case Builtin::MallocFn:
      C->setArg(0, B.mul(C->getArg(0), N));
      break;
    case Builtin::CallocFn:
      C->setArg(0, B.mul(C->getArg(0), N));
      break;
    case Builtin::ReallocFn:
      C->setArg(1, B.mul(C->getArg(1), N));
      break;
    default:
      error("expanded allocation site is not an allocation builtin");
      return;
    }
  }

  // --- Table 1, local/global rules: convert to heap-backed N copies. -----
  std::map<Function *, std::vector<VarDecl *>> LocalBackingsOf;
  std::map<Function *, unsigned> PrependCount;
  Function *Main = M.getFunction("main");

  // Map each local to its owning function once.
  std::map<VarDecl *, Function *> OwnerOf;
  for (Function *F : M.getFunctions())
    for (VarDecl *L : F->getLocals())
      OwnerOf[L] = F;

  for (VarDecl *V : ExpandedVars) {
    Type *CopyTy = V->getType(); // already translated by promotion
    Type *PtrTy = Ctx.getPointerType(CopyTy);
    Expr *Size = B.mul(B.sizeofType(CopyTy), B.convert(B.numThreads(), I64));

    if (V->isGlobal()) {
      if (!Main || !Main->getBody()) {
        error("cannot expand global '" + V->getName() +
              "' without a main() to host its allocation");
        return;
      }
      VarDecl *Backing = M.addGlobal(V->getName() + "$x", PtrTy);
      ConvertedBacking[V] = Backing;
      Expr *AllocCall = B.callBuiltin(Builtin::MallocFn, {Size}, PtrTy);
      BackingSiteIds.insert(cast<CallExpr>(AllocCall)->getSiteId());
      BackingVarOf[cast<CallExpr>(AllocCall)->getSiteId()] = V;
      auto *Alloc = M.create<AssignStmt>(B.varRef(Backing), AllocCall);
      auto &Stmts = Main->getBody()->getStmts();
      Stmts.insert(Stmts.begin(), Alloc);
      ++PrependCount[Main];
      M.removeGlobal(V);
      continue;
    }
    if (V->isParam()) {
      error("cannot expand parameter storage '" + V->getName() + "'");
      return;
    }
    Function *Owner = OwnerOf.count(V) ? OwnerOf[V] : nullptr;
    if (!Owner || !Owner->getBody()) {
      error("expanded local '" + V->getName() + "' has no owning function");
      return;
    }
    VarDecl *Backing =
        M.createVar(V->getName() + "$x", PtrTy, VarDecl::Storage::Local);
    Owner->addLocal(Backing);
    StableBases.insert(Backing);
    ConvertedBacking[V] = Backing;
    Expr *AllocCall = B.callBuiltin(Builtin::MallocFn, {Size}, PtrTy);
    BackingSiteIds.insert(cast<CallExpr>(AllocCall)->getSiteId());
    BackingVarOf[cast<CallExpr>(AllocCall)->getSiteId()] = V;
    auto *Alloc = M.create<AssignStmt>(B.varRef(Backing), AllocCall);
    auto &Stmts = Owner->getBody()->getStmts();
    Stmts.insert(Stmts.begin(), Alloc);
    ++PrependCount[Owner];
    LocalBackingsOf[Owner].push_back(Backing);
  }

  Result.Stats.ExpandedObjects =
      static_cast<unsigned>(ExpandedVars.size() + ExpandedSites.size());

  // --- Free local backings on every return of the owning function. -------
  for (auto &[F, Backings] : LocalBackingsOf) {
    class ReturnFreeRewriter : public IRRewriter {
    public:
      ReturnFreeRewriter(ExpansionContext &Cx, Function *F,
                         const std::vector<VarDecl *> &Backings)
          : IRRewriter(Cx.M), Cx(Cx), F(F), Backings(Backings) {}

    protected:
      Stmt *transformStmt(Stmt *S) override {
        auto *R = dyn_cast<ReturnStmt>(S);
        if (!R)
          return S;
        std::vector<Stmt *> Seq;
        Expr *RetVal = nullptr;
        if (R->getValue()) {
          // Evaluate the return value before releasing the backings.
          VarDecl *Tmp = Cx.M.createVar("ret$tmp", R->getValue()->getType(),
                                        VarDecl::Storage::Local);
          F->addLocal(Tmp);
          Seq.push_back(Cx.M.create<AssignStmt>(Cx.B.varRef(Tmp),
                                                R->getValue()));
          RetVal = Cx.B.loadVar(Tmp);
        }
        for (VarDecl *Backing : Backings)
          Seq.push_back(Cx.B.exprStmt(
              Cx.B.callBuiltin(Builtin::FreeFn, {Cx.B.loadVar(Backing)},
                               Cx.types().getVoidType())));
        Seq.push_back(Cx.M.create<ReturnStmt>(RetVal));
        return Cx.B.block(std::move(Seq));
      }

    private:
      ExpansionContext &Cx;
      Function *F;
      const std::vector<VarDecl *> &Backings;
    };
    ReturnFreeRewriter(*this, F, Backings).run(F);
  }

  if (failed())
    return;

  // --- Table 2: redirect accesses. ---------------------------------------
  RedirectRewriter RW(*this);
  for (Function *F : M.getFunctions()) {
    auto It = PrependCount.find(F);
    RW.runOnFunction(F, It == PrependCount.end() ? 0 : It->second);
  }

  hoistRedirectionBases();
}

/// Stand-in for the loop-invariant code motion a compiling backend performs
/// on the redirected code (the paper relies on GCC -O2 here): within one
/// iteration of the target loop, tid is fixed, so the per-thread copy
/// addresses of converted structures are iteration-invariant. Two shapes are
/// hoisted to the top of the loop body and reused through register-like
/// pointer locals:
///   A. v$x[tid]                 (converted scalar/record access root)
///   B. base + (long)tid * K     (converted array access base, K constant)
void ExpansionContext::hoistRedirectionBases() {
  if (!TargetLoop || !LoopFunction || !LoopFunction->getBody())
    return;

  class Hoister : public IRRewriter {
  public:
    Hoister(ExpansionContext &Cx) : IRRewriter(Cx.M), Cx(Cx) {}
    std::vector<Stmt *> Inits;

  protected:
    Expr *transformExpr(Expr *E) override {
      // Pattern A: ArrayIndex(Load(VarRef stable), tid).
      if (auto *A = dyn_cast<ArrayIndexExpr>(E)) {
        if (isa<ThreadIdExpr>(A->getIndex())) {
          if (VarDecl *X = stableLoadVar(A->getBase())) {
            VarDecl *P = cached("A:" + X->getName(),
                                Cx.types().getPointerType(A->getType()),
                                [&] { return Cx.B.addrOf(cloneLV(A)); });
            return Cx.B.deref(Cx.B.loadVar(P));
          }
        }
        return E;
      }
      // Pattern B: Add(stable-base, Mul(Cast(tid), IntLit)).
      if (auto *Bin = dyn_cast<BinaryExpr>(E)) {
        if (Bin->getOp() == BinaryOp::Add && Bin->getType()->isPointer() &&
            isStableBase(Bin->getLHS()) && isTidTimesConst(Bin->getRHS())) {
          std::string Key = "B:" + printExpr(Bin);
          VarDecl *P = cached(Key, Bin->getType(), [&] {
            return cloneExpr(Cx.M, Bin);
          });
          return Cx.B.loadVar(P);
        }
      }
      return E;
    }

  private:
    Expr *cloneLV(Expr *E) { return cloneExpr(Cx.M, E); }

    VarDecl *stableLoadVar(const Expr *E) const {
      const auto *L = dyn_cast<LoadExpr>(E);
      if (!L)
        return nullptr;
      const auto *V = dyn_cast<VarRefExpr>(L->getLocation());
      if (!V || !Cx.StableBases.count(V->getDecl()))
        return nullptr;
      return V->getDecl();
    }

    bool isStableBase(const Expr *E) const {
      if (stableLoadVar(E))
        return true;
      if (const auto *D = dyn_cast<DecayExpr>(E)) {
        const auto *A = dyn_cast<ArrayIndexExpr>(D->getArrayLocation());
        return A && isa<IntLitExpr>(A->getIndex()) &&
               stableLoadVar(A->getBase());
      }
      return false;
    }

    static bool isTidTimesConst(const Expr *E) {
      const auto *M = dyn_cast<BinaryExpr>(E);
      if (!M || M->getOp() != BinaryOp::Mul)
        return false;
      const Expr *L = M->getLHS();
      if (const auto *C = dyn_cast<CastExpr>(L))
        L = C->getSub();
      return isa<ThreadIdExpr>(L) && isa<IntLitExpr>(M->getRHS());
    }

    VarDecl *cached(const std::string &Key, Type *Ty,
                    const std::function<Expr *()> &Init) {
      auto It = Cache.find(Key);
      if (It != Cache.end())
        return It->second;
      VarDecl *P = Cx.M.createVar(formatString("hoist$%zu", Cache.size()), Ty,
                                  VarDecl::Storage::Local);
      Cx.LoopFunction->addLocal(P);
      Inits.push_back(Cx.M.create<AssignStmt>(Cx.B.varRef(P), Init()));
      Cache[Key] = P;
      return P;
    }

    ExpansionContext &Cx;
    std::map<std::string, VarDecl *> Cache;
  };

  Hoister H(*this);
  Stmt *NewBody = H.rewriteStmt(TargetLoop->getBody());
  auto *Body = cast<BlockStmt>(NewBody);
  Body->getStmts().insert(Body->getStmts().begin(), H.Inits.begin(),
                          H.Inits.end());
  TargetLoop->setBody(Body);
}
