//===- Expansion.h - General data structure expansion (the paper) *- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: given a target loop and its verified
/// loop-level data dependence graph, rewrite the program so that every
/// thread-private access class (Definition 5) operates on a per-thread copy
/// of the data structures it touches, leaving shared accesses on copy 0.
///
/// Pipeline (ExpansionDriver):
///   1. Access classes + Definition 5 classification (analysis/).
///   2. Expansion target selection: the closure of memory objects reachable
///      from private accesses (§3.4's alias-analysis-based selectivity).
///   3. Pointer promotion to fat pointers {pointer, span} (Figs. 5-6) and
///      span-computation statement insertion (Table 3).
///   4. Type expansion x N (Table 1): heap allocation sites multiply their
///      size; expanded locals and globals are converted to heap-backed
///      N-copy blocks (bonded or interleaved layout, Fig. 2).
///   5. Access redirection (Table 2): private accesses index copy `tid`,
///      shared accesses copy 0; pointer dereferences become
///      *(p + tid*span/sizeof(*p)).
///   6. Overhead optimizations (§3.4): dead span-store elimination, span
///      constant propagation (constant spans never materialize fat
///      pointers), selective promotion.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_EXPAND_EXPANSION_H
#define GDSE_EXPAND_EXPANSION_H

#include "analysis/AccessClasses.h"
#include "analysis/DepGraph.h"
#include "analysis/PointsTo.h"
#include "interp/Guard.h"
#include "ir/AccessInfo.h"
#include "support/Diagnostics.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace gdse {

class PrivatizationWitness;

/// Figure 2's two replication layouts.
enum class LayoutMode : uint8_t {
  /// Whole-structure copies adjacent in memory (the paper's default: works
  /// under type recasts, better locality for coarse-grain threads).
  Bonded,
  /// Per-primitive-member replication. Fails on recast structures (the
  /// paper's 256.bzip2 zptr example) and on dereferences of pointers into
  /// the middle of a structure; the pass reports those as errors.
  Interleaved,
};

struct ExpansionOptions {
  LayoutMode Layout = LayoutMode::Bonded;
  /// §3.4: only promote pointers that may reference expanded structures.
  /// When false, every pointer slot in the program is promoted (the
  /// "without optimizations" configuration of Figure 9a).
  bool SelectivePromotion = true;
  /// §3.4: pointers whose span is a compile-time constant are not promoted;
  /// redirection uses the constant directly.
  bool SpanConstantPropagation = true;
  /// §3.4: do not emit (and remove) span self-stores such as the
  /// p.span = p.span after p = p + 1.
  bool DeadSpanStoreElimination = true;
  /// Prune the guard plan with the static privatization witness (when one
  /// is supplied via ExpansionInputs::Witness): classes proven private at
  /// compile time are dropped from the plan, and regions only they touch
  /// emit no guarded shadow at all. Disable to keep the full plan — the
  /// fault-injection tests need guards on claims a witness could discharge.
  bool GuardPruning = true;
  /// Expand proven-commutative classes (reductions) onto per-thread copies:
  /// copies 1..N-1 are initialized to the op's identity at loop entry and
  /// folded into copy 0 in serial copy order at loop exit, by synthesized
  /// module-level init/merge helpers. Requires a privatization witness
  /// (ExpansionInputs::Witness); without one the option is inert.
  bool CommutativePrivatization = true;
};

struct ExpansionStats {
  /// Number of distinct data structures (memory objects) expanded — the
  /// per-benchmark count of Table 5.
  unsigned ExpandedObjects = 0;
  unsigned PromotedPointerSlots = 0;
  unsigned SpanStoresInserted = 0;
  unsigned SpanStoresEliminated = 0;
  unsigned PrivateAccessesRedirected = 0;
  unsigned SharedAccessesRedirected = 0;
  /// Guard-plan pruning (static privatization witness): accesses of proven
  /// classes dropped from GuardPlan::PrivateClassOf, and expanded
  /// allocation sites that consequently emit no guarded region.
  unsigned GuardAccessesElided = 0;
  unsigned GuardRegionsElided = 0;
  /// Commutative privatization: reduction classes expanded onto per-thread
  /// copies with a synthesized identity-init + serial-order merge.
  unsigned CommutativeClasses = 0;
  unsigned CommutativeObjects = 0;
};

struct ExpansionResult {
  bool Ok = false;
  std::vector<std::string> Errors;
  ExpansionStats Stats;
  /// Private access ids (Definition 5) the transformation honored.
  std::set<AccessId> PrivateAccesses;
  /// Guarded-execution metadata (see Guard.h): the byte ranges each
  /// privatized access class claimed private — every expanded allocation
  /// site (original heap sites multiplied by N plus the backing mallocs of
  /// converted locals/globals) and the class of every private access. Set
  /// only on success; consumed by InterpOptions::GuardPlans.
  std::shared_ptr<const GuardPlan> Guard;
};

/// Precomputed analysis results (and the structured diagnostic sink) an
/// analysis manager can hand to expandLoop so nothing is recomputed. Every
/// field is optional; whatever is missing is computed locally. Provided
/// results must describe the CURRENT (pre-expansion) state of the module.
struct ExpansionInputs {
  const AccessNumbering *Num = nullptr;
  const PointsTo *PT = nullptr;
  const AccessClasses *Classes = nullptr;
  /// When set, every expansion error is also reported here, attributed to
  /// pass "expansion" and the target loop.
  DiagnosticEngine *Diags = nullptr;
  /// Static privatization witness for the target loop (same access ids as
  /// \p G). When set and ExpansionOptions::GuardPruning is on, classes the
  /// witness proves private are elided from the guard plan.
  const PrivatizationWitness *Witness = nullptr;
};

/// Applies general data structure expansion to the loop \p LoopId of \p M,
/// driven by the dependence graph \p G obtained for that loop. On success
/// the module is rewritten in place (and re-verified); on failure the module
/// must be discarded (it may be partially rewritten).
ExpansionResult expandLoop(Module &M, unsigned LoopId, const LoopDepGraph &G,
                           const ExpansionOptions &Opts = ExpansionOptions(),
                           const ExpansionInputs &Inputs = ExpansionInputs());

} // namespace gdse

#endif // GDSE_EXPAND_EXPANSION_H
