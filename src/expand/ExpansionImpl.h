//===- ExpansionImpl.h - Shared state of the expansion pipeline -*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header: the ExpansionContext carries every decision the driver
/// makes up front on the *original* module (expansion targets, fat-pointer
/// slots, per-access redirection plans, constant spans), so the rewriting
/// passes never consult stale analysis results on rewritten trees.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_EXPAND_EXPANSIONIMPL_H
#define GDSE_EXPAND_EXPANSIONIMPL_H

#include "expand/Expansion.h"
#include "ir/IRBuilder.h"

#include <map>
#include <optional>
#include <set>

namespace gdse {

/// A pointer-typed storage slot: either a variable or a struct field.
struct PointerSlot {
  VarDecl *Var = nullptr;      ///< non-null for variable slots
  StructType *Struct = nullptr; ///< non-null for field slots
  unsigned FieldIdx = 0;

  bool isField() const { return Struct != nullptr; }
  auto key() const { return std::make_tuple(Var, Struct, FieldIdx); }
  bool operator<(const PointerSlot &O) const { return key() < O.key(); }
};

/// Per-access redirection decision, made on the original module.
struct AccessPlan {
  bool Redirect = false;
  /// Thread-private (index tid) vs shared (index 0).
  bool Private = false;
  /// Statically known span (post-translation bytes) of every structure this
  /// access may touch; -1 when unknown.
  int64_t ConstSpan = -1;
};

struct ExpansionContext {
  Module &M;
  IRBuilder B;
  const LoopDepGraph &G;
  const ExpansionOptions &Opts;
  ExpansionResult &Result;

  /// The target loop and the function containing it.
  ForStmt *TargetLoop = nullptr;
  Function *LoopFunction = nullptr;

  /// Expanded memory objects (closure), as PointsTo object ids.
  std::set<uint32_t> ExpandedObjs;
  /// Expanded variables (locals/globals) and heap sites, resolved. Ordered by
  /// declaration/site id, not pointer value, so conversion order — and with it
  /// the names and statement order of the generated backings — is a function
  /// of the input program alone, never of heap allocation history. compileBatch
  /// promises bit-identical output across schedules; this is where it's earned.
  struct VarIdLess {
    bool operator()(const VarDecl *A, const VarDecl *B) const {
      return A->getId() < B->getId();
    }
  };
  struct SiteIdLess {
    bool operator()(const CallExpr *A, const CallExpr *B) const {
      return A->getSiteId() < B->getSiteId();
    }
  };
  std::set<VarDecl *, VarIdLess> ExpandedVars;
  std::set<CallExpr *, SiteIdLess> ExpandedSites;

  /// Pointer slots promoted to fat pointers.
  std::set<PointerSlot> FatSlots;

  /// Per-access plans, keyed by AccessId.
  std::map<AccessId, AccessPlan> Plans;
  /// Fallback constant spans (post-translation bytes) for pointer values
  /// whose span cannot be derived structurally: keyed by the defining
  /// statement / call argument on the original tree.
  std::map<const AssignStmt *, int64_t> AssignConstSpan;
  std::map<std::pair<const CallExpr *, unsigned>, int64_t> CallArgConstSpan;

  /// Table 3's integer span rule: integer variables that only ever receive
  /// pointer differences (i = p - q) and are later added back to a pointer.
  /// Each maps to a shadow span variable updated after every difference
  /// assignment with the MINUEND's span, so a reconstruction r = q + i gets
  /// p's structure span (q + (p - q) is p), not q's — the two may point
  /// into different structures with different spans.
  std::map<VarDecl *, VarDecl *> DiffSpanVars;
  /// Constant fallback span of the minuend per difference assignment.
  std::map<const AssignStmt *, int64_t> DiffSpanFallback;
  /// Same, for inline differences (r = q + (p - q)): keyed by the Sub node,
  /// since there is no tracked variable to hang the fallback on.
  std::map<const BinaryExpr *, int64_t> InlineDiffSpanFallback;

  /// Type translation memo (original type -> rewritten type).
  std::map<Type *, Type *> TranslateMemo;
  /// Struct types whose translated version differs.
  std::set<StructType *> ChangingStructs;
  /// Fat struct for a translated pointee pointer type.
  std::map<Type *, StructType *> FatStructs;

  /// Variables converted to heap backing (expanded locals/globals):
  /// original decl -> the new pointer variable holding the N-copy block.
  std::map<VarDecl *, VarDecl *> ConvertedBacking;

  /// Call-site ids of every N-copy allocation the rewrite produced or
  /// repurposed: the expanded heap sites plus the backing mallocs created
  /// for converted locals/globals. These become GuardPlan::RegionSites.
  std::set<uint32_t> BackingSiteIds;
  /// For backing mallocs of converted locals/globals: new site id -> the
  /// ORIGINAL variable whose storage the block replaces. Lets the driver
  /// map each backing site to its pre-expansion PointsTo object when
  /// pruning guard regions (expanded heap sites keep their original ids
  /// and need no entry).
  std::map<uint32_t, VarDecl *> BackingVarOf;

  /// Parameter indices (original positions) promoted per function.
  std::map<const Function *, std::set<unsigned>> FatParamsOf;

  /// Pointer locals that are assigned once at function entry and never
  /// change afterwards (converted backings and their aliases): safe roots
  /// for hoisting redirection addresses to the top of the loop body.
  std::set<VarDecl *> StableBases;

  /// Structured diagnostic sink; may be null (legacy callers). Attribution
  /// (pass name, loop id) comes from the DiagnosticScope expandLoop pushes.
  DiagnosticEngine *DE = nullptr;

  ExpansionContext(Module &M, const LoopDepGraph &G,
                   const ExpansionOptions &Opts, ExpansionResult &Result)
      : M(M), B(M), G(G), Opts(Opts), Result(Result) {}

  void error(const std::string &Msg) {
    Result.Errors.push_back(Msg);
    if (DE)
      DE->error(Msg);
  }
  bool failed() const { return !Result.Errors.empty(); }

  TypeContext &types() { return M.getTypes(); }

  //===--------------------------------------------------------------------===//
  // Type translation and fat pointers (Figs. 5-6) — Promote.cpp
  //===--------------------------------------------------------------------===//

  /// Rewritten version of \p T (promoted struct bodies, translated pointees).
  Type *translateType(Type *T);
  /// The fat struct {pointer, span} for (translated) pointer type \p PtrTy.
  StructType *fatStructFor(Type *TranslatedPtrTy);
  /// True when \p T is one of the fat structs this pass created.
  bool isFatStruct(Type *T) const;
  /// Fixpoint over struct bodies; fills ChangingStructs.
  void computeChangingStructs();

  /// Runs declaration promotion, reference rewriting, and Table 3 span
  /// insertion over the whole module.
  void runPromotion();

  //===--------------------------------------------------------------------===//
  // Expansion and redirection (Tables 1-2) — Expand.cpp
  //===--------------------------------------------------------------------===//

  /// Multiplies heap sites by N, converts expanded locals/globals to
  /// heap-backed N-copy blocks, and redirects accesses per the plans.
  void runExpansionAndRedirection();

  /// LICM stand-in: hoists per-iteration-invariant redirection addresses to
  /// the top of the target loop body (see Expand.cpp).
  void hoistRedirectionBases();

  //===--------------------------------------------------------------------===//
  // Shared helpers
  //===--------------------------------------------------------------------===//

  /// Statically evaluates \p E as a byte size, interpreting sizeof under
  /// type translation. Returns std::nullopt when not constant.
  std::optional<int64_t> evalConstSize(const Expr *E);

  /// Builds the span (in bytes) of the structure the pointer value \p V
  /// points into, structurally (Table 3 source forms); \p Fallback is the
  /// precomputed constant span or -1. Null on failure.
  Expr *spanExprForValue(Expr *V, int64_t Fallback);

  /// The integer span rule's read side: when \p V (stripped of integer
  /// casts) is a tracked difference variable's load or an inline pointer
  /// difference, returns the span of the structure the difference points
  /// back into (the shadow variable / the minuend's span). Null otherwise.
  Expr *diffSpanForValue(Expr *V, int64_t Fallback);
};

} // namespace gdse

#endif // GDSE_EXPAND_EXPANSIONIMPL_H
