//===- Promote.cpp - Pointer promotion and span insertion ------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Implements §3.3.1-3.3.2 of the paper:
//  - type translation: struct types whose (possibly nested) pointer members
//    are promoted get rewritten bodies; pointee types translate recursively
//    (the promote() function of Fig. 6, applied per Fig. 5 to globals,
//    locals, parameters, fields and heap allocations);
//  - fat-pointer slots: a promoted pointer variable/field becomes
//    struct { T* pointer; long span; }. References are rewritten so pointer
//    *values* stay plain (loads read .pointer, stores write .pointer);
//  - promoted parameters are unbundled into (pointer, span) argument pairs
//    with a prologue that reassembles the fat local — functions cannot
//    return aggregates in MiniC, so promoted *return* types are rejected
//    with a diagnostic (the paper's GCC implementation does not have this
//    restriction; our benchmarks pass results through parameters);
//  - Table 3: after every store to a promoted pointer, a span-computation
//    statement is inserted (malloc size, copied span, address-taken sizeof,
//    pointer arithmetic preservation). The "p.span = p.span" stores that
//    p = p + 1 would generate are elided when DeadSpanStoreElimination is
//    on (§3.4).
//
//===----------------------------------------------------------------------===//

#include "expand/ExpansionImpl.h"

#include "ir/IRClone.h"
#include "ir/IRVisitor.h"
#include "support/Support.h"

using namespace gdse;

static constexpr unsigned FatPointerField = 0;
static constexpr unsigned FatSpanField = 1;

//===----------------------------------------------------------------------===//
// Type translation
//===----------------------------------------------------------------------===//

void ExpansionContext::computeChangingStructs() {
  // Seed: structs with at least one fat field slot.
  for (const PointerSlot &S : FatSlots)
    if (S.isField())
      ChangingStructs.insert(S.Struct);

  // Fixpoint: a struct changes when any field type mentions a changing
  // struct (by value, pointer, or array).
  std::function<bool(Type *)> mentionsChanging = [&](Type *T) -> bool {
    switch (T->getKind()) {
    case Type::Kind::Pointer:
      return mentionsChanging(cast<PointerType>(T)->getPointee());
    case Type::Kind::Array:
      return mentionsChanging(cast<ArrayType>(T)->getElement());
    case Type::Kind::Struct:
      return ChangingStructs.count(cast<StructType>(T)) != 0;
    default:
      return false;
    }
  };

  bool Changed = true;
  std::vector<StructType *> All = types().getStructs();
  while (Changed) {
    Changed = false;
    for (StructType *S : All) {
      if (S->isOpaque() || ChangingStructs.count(S))
        continue;
      for (const StructField &F : S->getFields()) {
        if (mentionsChanging(F.Ty)) {
          ChangingStructs.insert(S);
          Changed = true;
          break;
        }
      }
    }
  }
}

StructType *ExpansionContext::fatStructFor(Type *TranslatedPtrTy) {
  assert(TranslatedPtrTy->isPointer() && "fat struct needs a pointer type");
  auto It = FatStructs.find(TranslatedPtrTy);
  if (It != FatStructs.end())
    return It->second;
  StructType *Fat = types().createStruct("fat");
  Fat->setFields({{"pointer", TranslatedPtrTy}, {"span", types().getInt64()}});
  FatStructs[TranslatedPtrTy] = Fat;
  return Fat;
}

bool ExpansionContext::isFatStruct(Type *T) const {
  auto *ST = dyn_cast<StructType>(T);
  if (!ST)
    return false;
  for (const auto &[PtrTy, Fat] : FatStructs)
    if (Fat == ST)
      return true;
  return false;
}

Type *ExpansionContext::translateType(Type *T) {
  auto It = TranslateMemo.find(T);
  if (It != TranslateMemo.end())
    return It->second;
  Type *Result = T;
  switch (T->getKind()) {
  case Type::Kind::Void:
  case Type::Kind::Int:
  case Type::Kind::Float:
  case Type::Kind::Function:
    break;
  case Type::Kind::Pointer:
    Result =
        types().getPointerType(translateType(cast<PointerType>(T)->getPointee()));
    break;
  case Type::Kind::Array: {
    auto *AT = cast<ArrayType>(T);
    Result = types().getArrayType(translateType(AT->getElement()),
                                  AT->getNumElements());
    break;
  }
  case Type::Kind::Struct: {
    auto *ST = cast<StructType>(T);
    if (!ChangingStructs.count(ST))
      break;
    StructType *NewST = types().createStruct(ST->getName() + "$p");
    TranslateMemo[T] = NewST; // pre-memo for recursive types
    std::vector<StructField> Fields;
    for (unsigned I = 0, E = ST->getNumFields(); I != E; ++I) {
      const StructField &F = ST->getField(I);
      PointerSlot Slot;
      Slot.Struct = ST;
      Slot.FieldIdx = I;
      Type *NewFT;
      if (FatSlots.count(Slot)) {
        assert(F.Ty->isPointer() && "fat slot on non-pointer field");
        NewFT = fatStructFor(translateType(F.Ty));
      } else {
        NewFT = translateType(F.Ty);
      }
      Fields.push_back({F.Name, NewFT});
    }
    NewST->setFields(std::move(Fields));
    return NewST;
  }
  }
  TranslateMemo[T] = Result;
  return Result;
}

//===----------------------------------------------------------------------===//
// Helpers: constant sizes and span expressions
//===----------------------------------------------------------------------===//

std::optional<int64_t> ExpansionContext::evalConstSize(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E)->getValue();
  case Expr::Kind::SizeofType: {
    Type *T = translateType(cast<SizeofTypeExpr>(E)->getQueriedType());
    return static_cast<int64_t>(types().getLayout(T).Size);
  }
  case Expr::Kind::Cast:
    if (E->getType()->isInt())
      return evalConstSize(cast<CastExpr>(E)->getSub());
    return std::nullopt;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    auto L = evalConstSize(B->getLHS());
    auto R = evalConstSize(B->getRHS());
    if (!L || !R)
      return std::nullopt;
    switch (B->getOp()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

/// Size (bytes) of the structure containing l-value \p LV, walking to the
/// allocation root (the "Address taken 2" rule fetches the whole struct).
static Expr *spanOfLValueRoot(ExpansionContext &Cx, Expr *LV,
                              int64_t Fallback) {
  switch (LV->getKind()) {
  case Expr::Kind::VarRef:
    return Cx.B.longLit(static_cast<int64_t>(
        Cx.types().getLayout(cast<VarRefExpr>(LV)->getDecl()->getType()).Size));
  case Expr::Kind::FieldAccess:
    return spanOfLValueRoot(Cx, cast<FieldAccessExpr>(LV)->getBase(), Fallback);
  case Expr::Kind::ArrayIndex:
    return Cx.spanExprForValue(cast<ArrayIndexExpr>(LV)->getBase(), Fallback);
  case Expr::Kind::Deref:
    return Cx.spanExprForValue(cast<DerefExpr>(LV)->getPtr(), Fallback);
  default:
    return nullptr;
  }
}

Expr *ExpansionContext::spanExprForValue(Expr *V, int64_t Fallback) {
  switch (V->getKind()) {
  case Expr::Kind::Load: {
    auto *VL = cast<LoadExpr>(V);
    Expr *Loc = VL->getLocation();
    // Load of a fat pointer's .pointer field: span is the sibling field.
    if (auto *FA = dyn_cast<FieldAccessExpr>(Loc)) {
      if (FA->getFieldIndex() == FatPointerField &&
          isFatStruct(FA->getBase()->getType())) {
        Expr *BaseClone = cloneExpr(M, FA->getBase());
        LoadExpr *SpanLoad = B.load(B.field(BaseClone, FatSpanField));
        // The span read shares the pointer read's access id so a later
        // redirection treats both identically.
        SpanLoad->setAccessId(VL->getAccessId());
        return SpanLoad;
      }
    }
    break;
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(V);
    if (Bin->getType()->isPointer()) {
      // Table 3 integer span rule: q + i where i carries a pointer
      // difference lands in the MINUEND's structure ((p - q) + q is p), so
      // the span comes from the difference, not from q.
      if (Bin->getOp() == BinaryOp::Add) {
        if (Expr *S = diffSpanForValue(Bin->getRHS(), Fallback))
          return S;
        if (Expr *S = diffSpanForValue(Bin->getLHS(), Fallback))
          return S;
      }
      // Pointer arithmetic rule 1: p +/- i keeps p's span.
      Expr *PtrOp = Bin->getLHS()->getType()->isPointer() ? Bin->getLHS()
                                                          : Bin->getRHS();
      return spanExprForValue(PtrOp, Fallback);
    }
    break;
  }
  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(V);
    // Recasts (the bzip2 zptr pattern) keep the span: bonded copies are
    // replicated whole regardless of the viewed element type.
    if (C->getSub()->getType()->isPointer())
      return spanExprForValue(C->getSub(), Fallback);
    if (C->getSub()->getType()->isInt())
      return spanExprForValue(C->getSub(), Fallback);
    break;
  }
  case Expr::Kind::IntLit:
    // Null (or integer) constants: span 0.
    return B.longLit(0);
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(V);
    // Allocation rules: malloc(n) -> n; calloc(n,s) -> n*s; realloc -> n.
    if (C->isBuiltin()) {
      switch (C->getBuiltin()) {
      case Builtin::MallocFn:
        return B.convert(cloneExpr(M, C->getArg(0)), types().getInt64());
      case Builtin::CallocFn:
        return B.mul(B.convert(cloneExpr(M, C->getArg(0)), types().getInt64()),
                     B.convert(cloneExpr(M, C->getArg(1)), types().getInt64()));
      case Builtin::ReallocFn:
        return B.convert(cloneExpr(M, C->getArg(1)), types().getInt64());
      case Builtin::MemcpyFn:
      case Builtin::MemsetFn:
        return spanExprForValue(C->getArg(0), Fallback);
      default:
        break;
      }
    }
    break;
  }
  case Expr::Kind::AddrOf:
    return spanOfLValueRoot(*this, cast<AddrOfExpr>(V)->getLocation(),
                            Fallback);
  case Expr::Kind::Decay:
    return spanOfLValueRoot(*this, cast<DecayExpr>(V)->getArrayLocation(),
                            Fallback);
  case Expr::Kind::Cond: {
    auto *C = cast<CondExpr>(V);
    Expr *T = spanExprForValue(C->getThen(), Fallback);
    Expr *E = spanExprForValue(C->getElse(), Fallback);
    if (T && E)
      return M.create<CondExpr>(cloneExpr(M, C->getCond()), T, E,
                                types().getInt64());
    break;
  }
  default:
    break;
  }
  if (Fallback >= 0)
    return B.longLit(Fallback);
  return nullptr;
}

Expr *ExpansionContext::diffSpanForValue(Expr *V, int64_t Fallback) {
  while (auto *C = dyn_cast<CastExpr>(V))
    V = C->getSub();
  // A tracked difference variable: its shadow holds the minuend's span.
  if (auto *L = dyn_cast<LoadExpr>(V))
    if (auto *VR = dyn_cast<VarRefExpr>(L->getLocation())) {
      auto It = DiffSpanVars.find(VR->getDecl());
      if (It != DiffSpanVars.end())
        return B.loadVar(It->second);
    }
  // An inline difference q + (p - q): the minuend's span, directly. The
  // driver precomputes the minuend's constant span per Sub node (the caller's
  // fallback describes the whole RHS, not the minuend).
  if (auto *Bin = dyn_cast<BinaryExpr>(V))
    if (Bin->getOp() == BinaryOp::Sub && Bin->getLHS()->getType()->isPointer() &&
        Bin->getRHS()->getType()->isPointer()) {
      auto It = InlineDiffSpanFallback.find(Bin);
      return spanExprForValue(Bin->getLHS(), It != InlineDiffSpanFallback.end()
                                                 ? It->second
                                                 : Fallback);
    }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Reference rewriting
//===----------------------------------------------------------------------===//

namespace {

/// True when two l-values are structurally identical simple chains
/// (variable / field chains) — used for dead span-store detection.
bool sameSimpleLValue(const Expr *A, const Expr *B) {
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(A)->getDecl() == cast<VarRefExpr>(B)->getDecl();
  case Expr::Kind::FieldAccess: {
    const auto *FA = cast<FieldAccessExpr>(A);
    const auto *FB = cast<FieldAccessExpr>(B);
    return FA->getFieldIndex() == FB->getFieldIndex() &&
           sameSimpleLValue(FA->getBase(), FB->getBase());
  }
  default:
    return false;
  }
}

class PromoteRewriter : public IRRewriter {
public:
  PromoteRewriter(ExpansionContext &Cx) : IRRewriter(Cx.M), Cx(Cx) {}

  void runOnFunction(Function *F) {
    CurFn = F;
    SpanTemp = nullptr;
    run(F);
  }

protected:
  Expr *transformExpr(Expr *E) override {
    switch (E->getKind()) {
    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(E);
      V->setDecl(V->getDecl()); // refresh type from the (retyped) decl
      return V;
    }
    case Expr::Kind::FieldAccess: {
      auto *F = cast<FieldAccessExpr>(E);
      auto *ST = cast<StructType>(F->getBase()->getType());
      F->setType(ST->getField(F->getFieldIndex()).Ty);
      return F;
    }
    case Expr::Kind::Load: {
      auto *L = cast<LoadExpr>(E);
      // Pointer storage became fat: read its .pointer field. The LoadExpr
      // node (and its AccessId) is preserved.
      if (Cx.isFatStruct(L->getLocation()->getType()))
        L->setLocation(Cx.B.field(L->getLocation(), FatPointerField));
      L->setType(L->getLocation()->getType());
      return L;
    }
    case Expr::Kind::Deref: {
      auto *D = cast<DerefExpr>(E);
      D->setType(cast<PointerType>(D->getPtr()->getType())->getPointee());
      return D;
    }
    case Expr::Kind::ArrayIndex: {
      auto *A = cast<ArrayIndexExpr>(E);
      A->setType(cast<PointerType>(A->getBase()->getType())->getPointee());
      return A;
    }
    case Expr::Kind::AddrOf: {
      auto *A = cast<AddrOfExpr>(E);
      A->setType(Cx.types().getPointerType(A->getLocation()->getType()));
      return A;
    }
    case Expr::Kind::Decay: {
      auto *D = cast<DecayExpr>(E);
      auto *AT = cast<ArrayType>(D->getArrayLocation()->getType());
      D->setType(Cx.types().getPointerType(AT->getElement()));
      return D;
    }
    case Expr::Kind::Cast: {
      E->setType(Cx.translateType(E->getType()));
      return E;
    }
    case Expr::Kind::SizeofType: {
      auto *S = cast<SizeofTypeExpr>(E);
      S->setQueriedType(Cx.translateType(S->getQueriedType()));
      return E;
    }
    case Expr::Kind::Call:
      return rewriteCall(cast<CallExpr>(E));
    case Expr::Kind::Binary: {
      auto *Bn = cast<BinaryExpr>(E);
      // Pointer arithmetic result follows the (translated) pointer operand.
      if (E->getType()->isPointer()) {
        if (Bn->getLHS()->getType()->isPointer())
          E->setType(Bn->getLHS()->getType());
        else
          E->setType(Bn->getRHS()->getType());
      }
      return E;
    }
    case Expr::Kind::Cond: {
      auto *C = cast<CondExpr>(E);
      if (E->getType()->isPointer())
        E->setType(C->getThen()->getType());
      return E;
    }
    default:
      return E;
    }
  }

  Stmt *transformStmt(Stmt *S) override {
    auto *A = dyn_cast<AssignStmt>(S);
    if (!A)
      return S;
    // Table 3 integer span rule, write side: after i = p - q for a tracked
    // difference variable, update i's shadow with the minuend's span.
    if (auto *VR = dyn_cast<VarRefExpr>(A->getLHS())) {
      auto TIt = Cx.DiffSpanVars.find(VR->getDecl());
      if (TIt != Cx.DiffSpanVars.end()) {
        Expr *R = A->getRHS();
        while (auto *C = dyn_cast<CastExpr>(R))
          R = C->getSub();
        auto *Sub = dyn_cast<BinaryExpr>(R);
        if (Sub && Sub->getOp() == BinaryOp::Sub &&
            Sub->getLHS()->getType()->isPointer()) {
          int64_t Fallback = -1;
          auto FIt = Cx.DiffSpanFallback.find(A);
          if (FIt != Cx.DiffSpanFallback.end())
            Fallback = FIt->second;
          Expr *SpanValue = Cx.spanExprForValue(Sub->getLHS(), Fallback);
          if (!SpanValue) {
            Cx.error("cannot compute span for pointer difference (the "
                     "minuend's span is not derivable)");
            return S;
          }
          auto *SpanStore = Cx.M.create<AssignStmt>(
              Cx.B.varRef(TIt->second), SpanValue);
          SpanStore->setAccessId(A->getAccessId());
          emitAfter(SpanStore);
          ++Cx.Result.Stats.SpanStoresInserted;
        }
        return S;
      }
    }
    // Store into fat pointer storage: write the .pointer field and insert
    // the Table 3 span statement right after.
    if (Cx.isFatStruct(A->getLHS()->getType()) &&
        A->getRHS()->getType()->isPointer()) {
      Expr *FatLValue = A->getLHS();
      A->setLHS(Cx.B.field(FatLValue, FatPointerField));

      int64_t Fallback = -1;
      auto It = Cx.AssignConstSpan.find(A);
      if (It != Cx.AssignConstSpan.end())
        Fallback = It->second;
      Expr *SpanValue = Cx.spanExprForValue(A->getRHS(), Fallback);
      if (!SpanValue) {
        Cx.error("cannot compute span for pointer assignment (spans flow "
                 "through allocations, address-of, pointer copies and "
                 "arithmetic; pointer-returning calls need the result "
                 "passed through a parameter instead)");
        return S;
      }
      // §3.4 dead span-store elimination: p.span = p.span.
      if (Cx.Opts.DeadSpanStoreElimination) {
        if (auto *SpanLoad = dyn_cast<LoadExpr>(SpanValue)) {
          if (auto *FA = dyn_cast<FieldAccessExpr>(SpanLoad->getLocation())) {
            if (FA->getFieldIndex() == FatSpanField &&
                sameSimpleLValue(FA->getBase(), FatLValue)) {
              ++Cx.Result.Stats.SpanStoresEliminated;
              return S;
            }
          }
        }
      }
      Expr *SpanLValue = Cx.B.field(cloneExpr(Cx.M, FatLValue), FatSpanField);
      ++Cx.Result.Stats.SpanStoresInserted;

      if (!spanMayReadThroughLValue(SpanValue, FatLValue)) {
        auto *SpanStore = Cx.M.create<AssignStmt>(SpanLValue, SpanValue);
        // The span store shares the pointer store's access id so a later
        // redirection treats both identically (same copy index).
        SpanStore->setAccessId(A->getAccessId());
        emitAfter(SpanStore);
        return S;
      }
      // Self-referential update (e.g. cur = cur->next): the span must be
      // evaluated BEFORE the pointer store clobbers the state it reads.
      // At GIMPLE level a temporary exists anyway; materialize one here:
      //   span$tmp = <span of RHS>;  X.pointer = RHS;  X.span = span$tmp;
      if (!SpanTemp) {
        SpanTemp = Cx.M.createVar("span$tmp", Cx.types().getInt64(),
                                  VarDecl::Storage::Local);
        CurFn->addLocal(SpanTemp);
      }
      auto *SaveSpan =
          Cx.M.create<AssignStmt>(Cx.B.varRef(SpanTemp), SpanValue);
      auto *SpanStore = Cx.M.create<AssignStmt>(
          SpanLValue, Cx.B.loadVar(SpanTemp));
      SpanStore->setAccessId(A->getAccessId());
      return Cx.B.block({SaveSpan, S, SpanStore});
    }
    return S;
  }

private:
  /// Conservative: does the span expression read memory through the same
  /// storage the pointer store writes? True forces a pre-store temporary.
  bool spanMayReadThroughLValue(Expr *SpanValue, Expr *FatLValue) {
    // Only simple variable/field chains can be compared reliably; anything
    // else (derefs, subscripts) is treated as potentially aliasing.
    std::function<bool(const Expr *)> IsSimpleChain =
        [&](const Expr *E) -> bool {
      if (isa<VarRefExpr>(E))
        return true;
      if (const auto *F = dyn_cast<FieldAccessExpr>(E))
        return IsSimpleChain(F->getBase());
      return false;
    };
    bool Conservative = !IsSimpleChain(FatLValue);
    bool Reads = false;
    walkExpr(SpanValue, [&](Expr *E) {
      auto *L = dyn_cast<LoadExpr>(E);
      if (!L)
        return;
      const Expr *Loc = L->getLocation();
      if (Conservative) {
        // Any load through non-trivial locations may alias.
        if (!IsSimpleChain(Loc))
          Reads = true;
        return;
      }
      // Simple chains: alias only when rooted at the same chain.
      const Expr *Root = Loc;
      while (const auto *F = dyn_cast<FieldAccessExpr>(Root))
        Root = F->getBase();
      (void)Root;
      if (!IsSimpleChain(Loc))
        Reads = true;
      else if (sameSimpleLValue(stripLastField(Loc), FatLValue))
        Reads = true;
    });
    return Reads;
  }

  static const Expr *stripLastField(const Expr *Loc) {
    if (const auto *F = dyn_cast<FieldAccessExpr>(Loc))
      return F->getBase();
    return Loc;
  }

  Expr *rewriteCall(CallExpr *C) {
    if (C->isBuiltin()) {
      C->setType(Cx.translateType(C->getType()));
      return C;
    }
    Function *Callee = C->getCallee();
    C->setType(Cx.translateType(C->getType()));
    auto It = Cx.FatParamsOf.find(Callee);
    if (It == Cx.FatParamsOf.end() || It->second.empty())
      return C;
    // Unbundle fat parameters: each promoted argument becomes a
    // (pointer, span) pair, in the rewritten parameter order.
    const std::set<unsigned> &FatIdx = It->second;
    std::vector<Expr *> NewArgs;
    for (unsigned I = 0, E = C->getNumArgs(); I != E; ++I) {
      Expr *V = C->getArg(I);
      NewArgs.push_back(V);
      if (!FatIdx.count(I))
        continue;
      int64_t Fallback = -1;
      auto FIt = Cx.CallArgConstSpan.find({C, I});
      if (FIt != Cx.CallArgConstSpan.end())
        Fallback = FIt->second;
      Expr *Span = Cx.spanExprForValue(V, Fallback);
      if (!Span) {
        Cx.error("cannot compute span for argument of call to '" +
                 Callee->getName() + "'");
        Span = Cx.B.longLit(0);
      }
      NewArgs.push_back(Span);
    }
    C->setArgs(std::move(NewArgs));
    return C;
  }

  ExpansionContext &Cx;
  Function *CurFn = nullptr;
  VarDecl *SpanTemp = nullptr;
};

} // namespace

//===----------------------------------------------------------------------===//
// Declaration promotion driver
//===----------------------------------------------------------------------===//

void ExpansionContext::runPromotion() {
  computeChangingStructs();

  // Globals.
  for (VarDecl *G : M.getGlobals()) {
    PointerSlot Slot;
    Slot.Var = G;
    if (FatSlots.count(Slot)) {
      G->setType(fatStructFor(translateType(G->getType())));
      ++Result.Stats.PromotedPointerSlots;
    } else {
      G->setType(translateType(G->getType()));
    }
  }
  for (const PointerSlot &S : FatSlots)
    if (S.isField())
      ++Result.Stats.PromotedPointerSlots;

  // Functions: returns, parameters (with unbundling), locals.
  for (Function *F : M.getFunctions()) {
    Type *NewRet = translateType(F->getReturnType());
    if (NewRet->isAggregate()) {
      error("function '" + F->getName() +
            "' would return a promoted aggregate; pass the result through a "
            "parameter instead");
      return;
    }

    std::set<unsigned> FatParamIdx;
    for (unsigned I = 0, E = static_cast<unsigned>(F->getParams().size());
         I != E; ++I) {
      PointerSlot Slot;
      Slot.Var = F->getParam(I);
      if (FatSlots.count(Slot))
        FatParamIdx.insert(I);
    }
    FatParamsOf[F] = FatParamIdx;

    std::vector<VarDecl *> NewParams;
    std::vector<Stmt *> Prologue;
    std::map<VarDecl *, VarDecl *> ParamReplacement;
    for (unsigned I = 0, E = static_cast<unsigned>(F->getParams().size());
         I != E; ++I) {
      VarDecl *P = F->getParam(I);
      if (!FatParamIdx.count(I)) {
        P->setType(translateType(P->getType()));
        NewParams.push_back(P);
        continue;
      }
      // Promoted parameter: p becomes a fat local assembled from the two
      // incoming values p$ptr / p$span.
      Type *PlainTy = translateType(P->getType());
      StructType *FatTy = fatStructFor(PlainTy);
      VarDecl *PtrParam = M.createVar(P->getName() + "$ptr", PlainTy,
                                      VarDecl::Storage::Param);
      VarDecl *SpanParam = M.createVar(P->getName() + "$span",
                                       types().getInt64(),
                                       VarDecl::Storage::Param);
      NewParams.push_back(PtrParam);
      NewParams.push_back(SpanParam);
      VarDecl *FatLocal =
          M.createVar(P->getName(), FatTy, VarDecl::Storage::Local);
      F->addLocal(FatLocal);
      ParamReplacement[P] = FatLocal;
      ++Result.Stats.PromotedPointerSlots;
      if (F->getBody()) {
        Prologue.push_back(M.create<AssignStmt>(
            B.field(B.varRef(FatLocal), FatPointerField),
            B.load(B.varRef(PtrParam))));
        Prologue.push_back(M.create<AssignStmt>(
            B.field(B.varRef(FatLocal), FatSpanField),
            B.load(B.varRef(SpanParam))));
      }
    }

    for (VarDecl *L : F->getLocals()) {
      if (ParamReplacement.count(L))
        continue; // fresh fat locals are already correctly typed
      bool IsFreshFatLocal = false;
      for (auto &[OldP, FatL] : ParamReplacement)
        if (FatL == L)
          IsFreshFatLocal = true;
      if (IsFreshFatLocal)
        continue;
      PointerSlot Slot;
      Slot.Var = L;
      if (FatSlots.count(Slot)) {
        L->setType(fatStructFor(translateType(L->getType())));
        ++Result.Stats.PromotedPointerSlots;
      } else {
        L->setType(translateType(L->getType()));
      }
    }

    std::vector<Type *> ParamTys;
    ParamTys.reserve(NewParams.size());
    for (VarDecl *P : NewParams)
      ParamTys.push_back(P->getType());
    F->setFunctionType(types().getFunctionType(NewRet, std::move(ParamTys)));
    F->replaceParams(NewParams);

    if (!Prologue.empty() && F->getBody()) {
      auto &Stmts = F->getBody()->getStmts();
      Stmts.insert(Stmts.begin(), Prologue.begin(), Prologue.end());
    }
    if (F->getBody() && !ParamReplacement.empty()) {
      walkExprs(F, [&](Expr *E) {
        if (auto *V = dyn_cast<VarRefExpr>(E)) {
          auto It = ParamReplacement.find(V->getDecl());
          if (It != ParamReplacement.end())
            V->setDecl(It->second);
        }
      });
    }
  }

  if (failed())
    return;

  // Bodies.
  PromoteRewriter RW(*this);
  for (Function *F : M.getFunctions())
    RW.runOnFunction(F);
}
