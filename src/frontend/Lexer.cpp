//===- Lexer.cpp - MiniC tokenizer -----------------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Support.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace gdse;

const char *gdse::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwChar:
    return "'char'";
  case TokKind::KwShort:
    return "'short'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwLong:
    return "'long'";
  case TokKind::KwFloat:
    return "'float'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwUnsigned:
    return "'unsigned'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwSizeof:
    return "'sizeof'";
  case TokKind::KwTid:
    return "'__tid'";
  case TokKind::KwNumThreads:
    return "'__nthreads'";
  case TokKind::AtCandidate:
    return "'@candidate'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  case TokKind::SlashAssign:
    return "'/='";
  case TokKind::PercentAssign:
    return "'%='";
  case TokKind::AmpAssign:
    return "'&='";
  case TokKind::PipeAssign:
    return "'|='";
  case TokKind::CaretAssign:
    return "'^='";
  case TokKind::ShlAssign:
    return "'<<='";
  case TokKind::ShrAssign:
    return "'>>='";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  }
  gdse_unreachable("unknown token kind");
}

namespace {

const std::map<std::string, TokKind> &keywordTable() {
  static const std::map<std::string, TokKind> Table = {
      {"void", TokKind::KwVoid},       {"char", TokKind::KwChar},
      {"short", TokKind::KwShort},     {"int", TokKind::KwInt},
      {"long", TokKind::KwLong},       {"float", TokKind::KwFloat},
      {"double", TokKind::KwDouble},   {"unsigned", TokKind::KwUnsigned},
      {"struct", TokKind::KwStruct},   {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"sizeof", TokKind::KwSizeof},   {"__tid", TokKind::KwTid},
      {"__nthreads", TokKind::KwNumThreads},
  };
  return Table;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::vector<std::string> &Errors)
      : Src(Source), Errors(Errors) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    while (true) {
      skipWhitespaceAndComments();
      Token T = next();
      Toks.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Toks;
  }

private:
  char peek(unsigned Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Src.size() ? Src[Idx] : '\0';
  }

  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }

  void error(const std::string &Msg) {
    Errors.push_back(formatString("%u:%u: %s", Line, Col, Msg.c_str()));
  }

  void skipWhitespaceAndComments() {
    while (true) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (peek() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (!peek())
          error("unterminated block comment");
        else {
          advance();
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token make(TokKind K) {
    Token T;
    T.Kind = K;
    T.Line = TokLine;
    T.Col = TokCol;
    return T;
  }

  Token next() {
    TokLine = Line;
    TokCol = Col;
    char C = peek();
    if (!C && Pos >= Src.size())
      return make(TokKind::Eof);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identifier();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number();

    advance();
    switch (C) {
    case '(':
      return make(TokKind::LParen);
    case ')':
      return make(TokKind::RParen);
    case '{':
      return make(TokKind::LBrace);
    case '}':
      return make(TokKind::RBrace);
    case '[':
      return make(TokKind::LBracket);
    case ']':
      return make(TokKind::RBracket);
    case ';':
      return make(TokKind::Semi);
    case ',':
      return make(TokKind::Comma);
    case '.':
      return make(TokKind::Dot);
    case '~':
      return make(TokKind::Tilde);
    case '?':
      return make(TokKind::Question);
    case ':':
      return make(TokKind::Colon);
    case '+':
      if (match('='))
        return make(TokKind::PlusAssign);
      if (match('+'))
        return make(TokKind::PlusPlus);
      return make(TokKind::Plus);
    case '-':
      if (match('='))
        return make(TokKind::MinusAssign);
      if (match('-'))
        return make(TokKind::MinusMinus);
      if (match('>'))
        return make(TokKind::Arrow);
      return make(TokKind::Minus);
    case '*':
      if (match('='))
        return make(TokKind::StarAssign);
      return make(TokKind::Star);
    case '/':
      if (match('='))
        return make(TokKind::SlashAssign);
      return make(TokKind::Slash);
    case '%':
      if (match('='))
        return make(TokKind::PercentAssign);
      return make(TokKind::Percent);
    case '&':
      if (match('&'))
        return make(TokKind::AmpAmp);
      if (match('='))
        return make(TokKind::AmpAssign);
      return make(TokKind::Amp);
    case '|':
      if (match('|'))
        return make(TokKind::PipePipe);
      if (match('='))
        return make(TokKind::PipeAssign);
      return make(TokKind::Pipe);
    case '^':
      if (match('='))
        return make(TokKind::CaretAssign);
      return make(TokKind::Caret);
    case '!':
      if (match('='))
        return make(TokKind::NotEq);
      return make(TokKind::Bang);
    case '=':
      if (match('='))
        return make(TokKind::EqEq);
      return make(TokKind::Assign);
    case '<':
      if (match('='))
        return make(TokKind::LessEq);
      if (match('<')) {
        if (match('='))
          return make(TokKind::ShlAssign);
        return make(TokKind::Shl);
      }
      return make(TokKind::Less);
    case '>':
      if (match('='))
        return make(TokKind::GreaterEq);
      if (match('>')) {
        if (match('='))
          return make(TokKind::ShrAssign);
        return make(TokKind::Shr);
      }
      return make(TokKind::Greater);
    case '@': {
      std::string Word;
      while (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_')
        Word += advance();
      if (Word == "candidate")
        return make(TokKind::AtCandidate);
      error("unknown annotation '@" + Word + "'");
      return next();
    }
    default:
      error(formatString("unexpected character '%c'", C));
      return next();
    }
  }

  Token identifier() {
    std::string Word;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Word += advance();
    auto It = keywordTable().find(Word);
    if (It != keywordTable().end())
      return make(It->second);
    Token T = make(TokKind::Identifier);
    T.Text = std::move(Word);
    return T;
  }

  Token number() {
    std::string Digits;
    bool IsHex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      Digits += advance();
      Digits += advance();
      IsHex = true;
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
      Token T = make(TokKind::IntLiteral);
      T.IntValue = static_cast<int64_t>(std::strtoull(Digits.c_str(), nullptr, 16));
      return T;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
    bool IsFloat = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Digits += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Sign = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Sign)) ||
          ((Sign == '+' || Sign == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        IsFloat = true;
        Digits += advance();
        if (peek() == '+' || peek() == '-')
          Digits += advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Digits += advance();
      }
    }
    (void)IsHex;
    if (IsFloat) {
      Token T = make(TokKind::FloatLiteral);
      T.FloatValue = std::strtod(Digits.c_str(), nullptr);
      return T;
    }
    Token T = make(TokKind::IntLiteral);
    T.IntValue = static_cast<int64_t>(std::strtoull(Digits.c_str(), nullptr, 10));
    return T;
  }

  const std::string &Src;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  unsigned TokLine = 1, TokCol = 1;
};

} // namespace

std::vector<Token> gdse::lex(const std::string &Source,
                             std::vector<std::string> &Errors) {
  return LexerImpl(Source, Errors).run();
}
