//===- Lexer.h - MiniC tokenizer --------------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the C subset the benchmark kernels and tests are
/// written in. Supports line and block comments, decimal/hex integer
/// literals, floating-point literals, the full C operator set MiniC uses,
/// and the "@candidate" loop annotation.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_FRONTEND_LEXER_H
#define GDSE_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace gdse {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwVoid,
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwUnsigned,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,
  KwTid,        // __tid
  KwNumThreads, // __nthreads
  AtCandidate,  // @candidate
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Question,
  Colon,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  AmpAssign,
  PipeAssign,
  CaretAssign,
  ShlAssign,
  ShrAssign,
  PlusPlus,
  MinusMinus,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;    ///< identifier spelling
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Returns a printable name for diagnostics.
const char *tokKindName(TokKind K);

/// Tokenizes \p Source. Lexical errors are appended to \p Errors as
/// "line:col: message"; scanning continues after each error.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

} // namespace gdse

#endif // GDSE_FRONTEND_LEXER_H
