//===- Parser.cpp - MiniC parser and semantic analysis ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "ir/IRBuilder.h"
#include "ir/IRClone.h"
#include "ir/Verifier.h"
#include "support/Support.h"

#include <cstdio>
#include <map>
#include <set>

using namespace gdse;

namespace {

/// One lexical scope: source name -> declaration.
using Scope = std::map<std::string, VarDecl *>;

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, std::vector<std::string> &Errors)
      : Toks(std::move(Toks)), Errors(Errors), M(std::make_unique<Module>()),
        B(*M) {}

  std::unique_ptr<Module> run() {
    while (!at(TokKind::Eof)) {
      size_t Before = Pos;
      parseTopLevel();
      if (Pos == Before) {
        // Defensive: never loop without progress.
        error("cannot make progress; giving up");
        break;
      }
      if (Errors.size() > 50)
        break;
    }
    if (!Errors.empty())
      return nullptr;
    std::vector<std::string> VerifyErrs = verifyModule(*M);
    for (const std::string &E : VerifyErrs)
      Errors.push_back("verifier: " + E);
    if (!Errors.empty())
      return nullptr;
    return std::move(M);
  }

private:
  //===------------------------------------------------------------------===//
  // Token stream helpers
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t Idx = std::min(Pos + Ahead, Toks.size() - 1);
    return Toks[Idx];
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token advance() { return Toks[at(TokKind::Eof) ? Pos : Pos++]; }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(formatString("expected %s %s, found %s", tokKindName(K), Context,
                       tokKindName(cur().Kind)));
    return false;
  }

  void error(const std::string &Msg) {
    Errors.push_back(
        formatString("%u:%u: %s", cur().Line, cur().Col, Msg.c_str()));
  }

  /// Skips tokens until a likely statement/declaration boundary.
  void synchronize() {
    unsigned Depth = 0;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::Semi) && Depth == 0) {
        advance();
        return;
      }
      if (at(TokKind::LBrace))
        ++Depth;
      if (at(TokKind::RBrace)) {
        if (Depth == 0)
          return;
        --Depth;
      }
      advance();
    }
  }

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  bool atTypeStart() const {
    switch (cur().Kind) {
    case TokKind::KwVoid:
    case TokKind::KwChar:
    case TokKind::KwShort:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwUnsigned:
    case TokKind::KwStruct:
      return true;
    default:
      return false;
    }
  }

  /// type-spec: void|char|short|int|long|float|double|unsigned <int>|struct ID
  Type *parseTypeSpec() {
    TypeContext &Ctx = M->getTypes();
    switch (cur().Kind) {
    case TokKind::KwVoid:
      advance();
      return Ctx.getVoidType();
    case TokKind::KwChar:
      advance();
      return Ctx.getInt8();
    case TokKind::KwShort:
      advance();
      return Ctx.getInt16();
    case TokKind::KwInt:
      advance();
      return Ctx.getInt32();
    case TokKind::KwLong:
      advance();
      return Ctx.getInt64();
    case TokKind::KwFloat:
      advance();
      return Ctx.getFloat32();
    case TokKind::KwDouble:
      advance();
      return Ctx.getFloat64();
    case TokKind::KwUnsigned: {
      advance();
      unsigned Bits = 32;
      if (accept(TokKind::KwChar))
        Bits = 8;
      else if (accept(TokKind::KwShort))
        Bits = 16;
      else if (accept(TokKind::KwLong))
        Bits = 64;
      else
        accept(TokKind::KwInt);
      return Ctx.getIntType(Bits, /*Signed=*/false);
    }
    case TokKind::KwStruct: {
      advance();
      if (!at(TokKind::Identifier)) {
        error("expected struct name");
        return Ctx.getInt32();
      }
      std::string Name = advance().Text;
      StructType *ST = Ctx.getStructByName(Name);
      if (!ST) {
        error("unknown struct '" + Name + "'");
        return Ctx.getInt32();
      }
      return ST;
    }
    default:
      error("expected a type");
      return Ctx.getInt32();
    }
  }

  /// Wraps \p Base in pointers for each '*'.
  Type *parsePointerSuffix(Type *Base) {
    while (accept(TokKind::Star))
      Base = M->getTypes().getPointerType(Base);
    return Base;
  }

  /// Array suffixes after a declarator name: [N][M]...
  Type *parseArraySuffix(Type *ElemTy) {
    if (!accept(TokKind::LBracket))
      return ElemTy;
    if (!at(TokKind::IntLiteral)) {
      error("array bound must be an integer literal");
      synchronize();
      return ElemTy;
    }
    int64_t N = advance().IntValue;
    expect(TokKind::RBracket, "after array bound");
    Type *Inner = parseArraySuffix(ElemTy);
    if (N <= 0) {
      error("array bound must be positive");
      N = 1;
    }
    return M->getTypes().getArrayType(Inner, static_cast<uint64_t>(N));
  }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  VarDecl *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  VarDecl *declareLocal(const std::string &Name, Type *Ty) {
    assert(CurFn && "local outside function");
    if (Scopes.back().count(Name))
      error("redeclaration of '" + Name + "' in the same scope");
    // Hoist to function scope under a unique storage name.
    std::string Unique = Name;
    while (UsedLocalNames.count(Unique))
      Unique = formatString("%s.%u", Name.c_str(), ++ShadowCounter);
    UsedLocalNames.insert(Unique);
    VarDecl *D = M->createVar(Unique, Ty, VarDecl::Storage::Local);
    CurFn->addLocal(D);
    Scopes.back()[Name] = D;
    return D;
  }

  //===------------------------------------------------------------------===//
  // Top level
  //===------------------------------------------------------------------===//

  void parseTopLevel() {
    if (at(TokKind::KwStruct) && peek().Kind == TokKind::Identifier &&
        peek(2).Kind == TokKind::LBrace) {
      parseStructDef();
      return;
    }
    if (!atTypeStart()) {
      error(formatString("expected declaration, found %s",
                         tokKindName(cur().Kind)));
      synchronize();
      return;
    }
    Type *Base = parseTypeSpec();
    Type *Ty = parsePointerSuffix(Base);
    if (!at(TokKind::Identifier)) {
      error("expected declarator name");
      synchronize();
      return;
    }
    std::string Name = advance().Text;
    if (at(TokKind::LParen)) {
      parseFunctionRest(Ty, Name);
      return;
    }
    // Global variable.
    Ty = parseArraySuffix(Ty);
    if (Ty->isVoid()) {
      error("global '" + Name + "' has void type");
      Ty = M->getTypes().getInt32();
    }
    if (GlobalScope.count(Name))
      error("redeclaration of global '" + Name + "'");
    VarDecl *G = M->addGlobal(Name, Ty);
    GlobalScope[Name] = G;
    if (at(TokKind::Assign))
      error("global initializers are unsupported; assign in main");
    expect(TokKind::Semi, "after global declaration");
  }

  void parseStructDef() {
    advance(); // struct
    std::string Name = advance().Text;
    if (M->getTypes().getStructByName(Name))
      error("redefinition of struct '" + Name + "'");
    StructType *ST = M->getTypes().createStruct(Name);
    expect(TokKind::LBrace, "after struct name");
    std::vector<StructField> Fields;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      Type *FT = parsePointerSuffix(parseTypeSpec());
      if (!at(TokKind::Identifier)) {
        error("expected field name");
        synchronize();
        continue;
      }
      std::string FName = advance().Text;
      FT = parseArraySuffix(FT);
      if (FT->isVoid()) {
        error("field '" + FName + "' has void type");
        FT = M->getTypes().getInt32();
      }
      for (const StructField &F : Fields)
        if (F.Name == FName)
          error("duplicate field '" + FName + "'");
      Fields.push_back({FName, FT});
      expect(TokKind::Semi, "after field");
    }
    expect(TokKind::RBrace, "at end of struct");
    expect(TokKind::Semi, "after struct definition");
    if (Fields.empty()) {
      error("struct '" + Name + "' has no fields");
      Fields.push_back({"dummy", M->getTypes().getInt32()});
    }
    ST->setFields(std::move(Fields));
  }

  void parseFunctionRest(Type *RetTy, const std::string &Name) {
    if (RetTy->isAggregate()) {
      error("function '" + Name +
            "' must return a scalar or pointer (return structs by pointer)");
      RetTy = M->getTypes().getInt32();
    }
    advance(); // (
    std::vector<std::pair<std::string, Type *>> Params;
    if (!at(TokKind::RParen)) {
      do {
        Type *PT = parsePointerSuffix(parseTypeSpec());
        if (PT->isVoid() && Params.empty() && at(TokKind::RParen))
          break; // f(void)
        if (!at(TokKind::Identifier)) {
          error("expected parameter name");
          break;
        }
        std::string PName = advance().Text;
        // Array parameters decay to pointers, as in C.
        if (at(TokKind::LBracket)) {
          Type *AT = parseArraySuffix(PT);
          while (auto *A = dyn_cast<ArrayType>(AT))
            AT = A->getElement();
          PT = M->getTypes().getPointerType(
              cast<ArrayType>(parseArraySuffixDummy(PT))->getElement());
          (void)AT;
        }
        if (PT->isVoid() || PT->isStruct()) {
          error("parameter '" + PName +
                "' must be scalar or pointer (pass structs by pointer)");
          PT = M->getTypes().getInt32();
        }
        Params.push_back({PName, PT});
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after parameters");

    std::vector<Type *> ParamTys;
    for (auto &[N, T] : Params)
      ParamTys.push_back(T);
    FunctionType *FT =
        M->getTypes().getFunctionType(RetTy, std::move(ParamTys));

    Function *F = M->getFunction(Name);
    if (F) {
      if (F->getFunctionType() != FT) {
        error("conflicting declaration of '" + Name + "'");
        synchronize();
        return;
      }
      if (F->isDefinition() && at(TokKind::LBrace)) {
        error("redefinition of '" + Name + "'");
        synchronize();
        return;
      }
    } else {
      F = M->createFunction(Name, FT);
      for (auto &[PName, PT] : Params)
        F->addParam(M->createVar(PName, PT, VarDecl::Storage::Param));
    }

    if (accept(TokKind::Semi))
      return; // prototype

    CurFn = F;
    UsedLocalNames.clear();
    ShadowCounter = 0;
    for (VarDecl *L : F->getLocals())
      UsedLocalNames.insert(L->getName());
    pushScope();
    for (VarDecl *P : F->getParams()) {
      Scopes.back()[P->getName()] = P;
      UsedLocalNames.insert(P->getName());
    }
    BlockStmt *Body = parseBlock();
    popScope();
    // Implicit trailing return for void functions and for main, unless the
    // body already ends in one.
    bool EndsInReturn =
        !Body->getStmts().empty() && isa<ReturnStmt>(Body->getStmts().back());
    if (!EndsInReturn) {
      if (RetTy->isVoid())
        Body->getStmts().push_back(B.ret());
      else if (Name == "main")
        Body->getStmts().push_back(
            B.ret(B.intLit(0, RetTy->isInt() ? RetTy : nullptr)));
    }
    F->setBody(Body);
    CurFn = nullptr;
  }

  // Helper for array-typed parameters (rarely used; keeps parse simple).
  Type *parseArraySuffixDummy(Type *T) {
    return M->getTypes().getArrayType(T, 1);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  BlockStmt *parseBlock() {
    expect(TokKind::LBrace, "to open block");
    pushScope();
    std::vector<Stmt *> Stmts;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      size_t Before = Pos;
      if (Stmt *S = parseStmt())
        Stmts.push_back(S);
      if (Pos == Before)
        synchronize();
      if (Errors.size() > 50)
        break;
    }
    expect(TokKind::RBrace, "to close block");
    popScope();
    return B.block(std::move(Stmts));
  }

  Stmt *parseStmt() {
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::AtCandidate:
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwReturn:
      return parseReturn();
    case TokKind::KwBreak:
      advance();
      expect(TokKind::Semi, "after break");
      return M->create<BreakStmt>();
    case TokKind::KwContinue:
      advance();
      expect(TokKind::Semi, "after continue");
      return M->create<ContinueStmt>();
    case TokKind::Semi:
      advance();
      return nullptr;
    default:
      if (atTypeStart())
        return parseDeclStmt();
      return parseExprOrAssignStmt();
    }
  }

  Stmt *parseDeclStmt() {
    Type *Ty = parsePointerSuffix(parseTypeSpec());
    if (!at(TokKind::Identifier)) {
      error("expected variable name");
      synchronize();
      return nullptr;
    }
    std::string Name = advance().Text;
    Ty = parseArraySuffix(Ty);
    if (Ty->isVoid()) {
      error("variable '" + Name + "' has void type");
      Ty = M->getTypes().getInt32();
    }
    VarDecl *D = declareLocal(Name, Ty);
    Stmt *InitStmt = nullptr;
    if (accept(TokKind::Assign)) {
      Expr *Init = rvalue(parseExpr());
      if (Init)
        InitStmt = makeAssign(B.varRef(D), Init);
    }
    expect(TokKind::Semi, "after declaration");
    return InitStmt;
  }

  Stmt *parseIf() {
    advance();
    expect(TokKind::LParen, "after if");
    Expr *Cond = rvalue(parseExpr());
    expect(TokKind::RParen, "after condition");
    Stmt *Then = parseStmtAsBlock();
    Stmt *Else = nullptr;
    if (accept(TokKind::KwElse))
      Else = parseStmtAsBlock();
    if (!Cond)
      return nullptr;
    return B.ifStmt(Cond, Then, Else);
  }

  Stmt *parseStmtAsBlock() {
    Stmt *S = parseStmt();
    if (!S)
      return B.block({});
    if (isa<BlockStmt>(S))
      return S;
    return B.block({S});
  }

  Stmt *parseWhile() {
    advance();
    expect(TokKind::LParen, "after while");
    Expr *Cond = rvalue(parseExpr());
    expect(TokKind::RParen, "after condition");
    Stmt *Body = parseStmtAsBlock();
    if (!Cond)
      return nullptr;
    return B.whileStmt(Cond, Body);
  }

  /// Canonical for-loop: for (iv = lo; iv < hi; iv = iv + s | iv += s | iv++)
  Stmt *parseFor() {
    bool Candidate = accept(TokKind::AtCandidate);
    if (!at(TokKind::KwFor)) {
      error("@candidate must precede a for loop");
      return nullptr;
    }
    advance();
    expect(TokKind::LParen, "after for");

    pushScope();
    VarDecl *IV = nullptr;
    if (atTypeStart()) {
      Type *Ty = parsePointerSuffix(parseTypeSpec());
      if (!Ty->isInt()) {
        error("for induction variable must be an integer");
        Ty = M->getTypes().getInt32();
      }
      if (!at(TokKind::Identifier)) {
        error("expected induction variable name");
        popScope();
        return nullptr;
      }
      IV = declareLocal(advance().Text, Ty);
    } else {
      if (!at(TokKind::Identifier)) {
        error("expected induction variable");
        popScope();
        return nullptr;
      }
      IV = lookup(cur().Text);
      if (!IV) {
        error("unknown variable '" + cur().Text + "'");
        popScope();
        return nullptr;
      }
      if (!IV->getType()->isInt())
        error("for induction variable must be an integer");
      advance();
    }
    expect(TokKind::Assign, "in for init");
    Expr *Init = rvalue(parseExpr());
    expect(TokKind::Semi, "after for init");

    if (!at(TokKind::Identifier) || lookup(cur().Text) != IV)
      error("for condition must test the induction variable");
    else
      advance();
    expect(TokKind::Less, "in for condition (canonical 'iv < limit')");
    Expr *Limit = rvalue(parseExpr());
    expect(TokKind::Semi, "after for condition");

    Expr *Step = nullptr;
    if (at(TokKind::Identifier) && lookup(cur().Text) == IV) {
      advance();
      if (accept(TokKind::PlusPlus)) {
        Step = B.intLit(1);
      } else if (accept(TokKind::PlusAssign)) {
        Step = rvalue(parseExpr());
      } else if (accept(TokKind::Assign)) {
        // iv = iv + step
        if (!at(TokKind::Identifier) || lookup(cur().Text) != IV) {
          error("for increment must be 'iv = iv + step'");
        } else {
          advance();
          expect(TokKind::Plus, "in for increment");
          Step = rvalue(parseExpr());
        }
      } else {
        error("unsupported for increment");
      }
    } else {
      error("for increment must update the induction variable");
    }
    expect(TokKind::RParen, "after for header");

    Stmt *Body = parseStmtAsBlock();
    popScope();
    if (!Init || !Limit || !Step)
      return nullptr;
    ForStmt *F = B.forStmt(IV, Init, Limit, Step, Body);
    F->setCandidate(Candidate);
    return F;
  }

  Stmt *parseReturn() {
    advance();
    Expr *Value = nullptr;
    if (!at(TokKind::Semi)) {
      Value = rvalue(parseExpr());
      if (Value && CurFn && !CurFn->getReturnType()->isVoid())
        Value = convertForAssign(Value, CurFn->getReturnType());
    }
    expect(TokKind::Semi, "after return");
    if (CurFn && CurFn->getReturnType()->isVoid() && Value)
      error("returning a value from a void function");
    return B.ret(Value);
  }

  Stmt *parseExprOrAssignStmt() {
    Expr *LHS = parseExpr();
    if (!LHS)
      return nullptr;

    if (accept(TokKind::Assign)) {
      Expr *RHS = rvalue(parseExpr());
      expect(TokKind::Semi, "after assignment");
      if (!RHS)
        return nullptr;
      return makeAssign(LHS, RHS);
    }
    if (at(TokKind::PlusAssign) || at(TokKind::MinusAssign) ||
        at(TokKind::StarAssign) || at(TokKind::SlashAssign) ||
        at(TokKind::PercentAssign) || at(TokKind::AmpAssign) ||
        at(TokKind::PipeAssign) || at(TokKind::CaretAssign) ||
        at(TokKind::ShlAssign) || at(TokKind::ShrAssign)) {
      TokKind K = advance().Kind;
      Expr *RHS = rvalue(parseExpr());
      expect(TokKind::Semi, "after compound assignment");
      if (!RHS)
        return nullptr;
      BinaryOp Op = K == TokKind::PlusAssign      ? BinaryOp::Add
                    : K == TokKind::MinusAssign   ? BinaryOp::Sub
                    : K == TokKind::StarAssign    ? BinaryOp::Mul
                    : K == TokKind::SlashAssign   ? BinaryOp::Div
                    : K == TokKind::PercentAssign ? BinaryOp::Rem
                    : K == TokKind::AmpAssign     ? BinaryOp::BitAnd
                    : K == TokKind::PipeAssign    ? BinaryOp::BitOr
                    : K == TokKind::CaretAssign   ? BinaryOp::BitXor
                    : K == TokKind::ShlAssign     ? BinaryOp::Shl
                                                  : BinaryOp::Shr;
      return compoundAssign(LHS, Op, RHS);
    }
    if (accept(TokKind::PlusPlus)) {
      expect(TokKind::Semi, "after ++");
      return compoundAssign(LHS, BinaryOp::Add, B.intLit(1));
    }
    if (accept(TokKind::MinusMinus)) {
      expect(TokKind::Semi, "after --");
      return compoundAssign(LHS, BinaryOp::Sub, B.intLit(1));
    }

    expect(TokKind::Semi, "after expression");
    if (isa<CallExpr>(LHS))
      return B.exprStmt(LHS);
    if (LHS->isLValue()) {
      error("expression statement has no effect");
      return nullptr;
    }
    return B.exprStmt(LHS);
  }

  Stmt *makeAssign(Expr *LHS, Expr *RHS) {
    if (!LHS->isLValue()) {
      error("assignment target is not an l-value");
      return nullptr;
    }
    RHS = convertForAssign(RHS, LHS->getType());
    if (!RHS)
      return nullptr;
    return B.assign(LHS, RHS);
  }

  Stmt *compoundAssign(Expr *LHS, BinaryOp Op, Expr *RHS) {
    if (!LHS->isLValue()) {
      error("compound assignment target is not an l-value");
      return nullptr;
    }
    Expr *LoadedLHS = B.load(cloneExpr(*M, LHS));
    Expr *Combined = B.binary(Op, LoadedLHS, RHS);
    return makeAssign(LHS, Combined);
  }

  /// Assignment-context conversion: implicit scalar conversions, void*
  /// adoption, and integer-to-pointer for null constants.
  Expr *convertForAssign(Expr *E, Type *To) {
    Type *From = E->getType();
    if (From == To)
      return E;
    if (To->isPointer() && From->isInt())
      return B.castTo(E, To); // p = 0 and friends
    if (To->isAggregate() || From->isAggregate()) {
      if (To != From) {
        error("incompatible aggregate assignment");
        return nullptr;
      }
      return E;
    }
    if (!IRBuilder::isImplicitlyConvertible(From, To)) {
      error("cannot convert " + From->str() + " to " + To->str());
      return nullptr;
    }
    return B.convert(E, To);
  }

  //===------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===//

  /// Converts a possibly-lvalue parse result into an r-value: arrays decay,
  /// other l-values load.
  Expr *rvalue(Expr *E) {
    if (!E)
      return nullptr;
    if (!E->isLValue())
      return E;
    if (E->getType()->isArray())
      return B.decay(E);
    return B.load(E);
  }

  Expr *parseExpr() { return parseConditional(); }

  Expr *parseConditional() {
    Expr *Cond = parseBinary(0);
    if (!Cond || !at(TokKind::Question))
      return Cond;
    advance();
    Expr *Then = rvalue(parseConditional());
    expect(TokKind::Colon, "in conditional expression");
    Expr *Else = rvalue(parseConditional());
    if (!Then || !Else)
      return nullptr;
    Cond = rvalue(Cond);
    if (Then->getType() != Else->getType() &&
        !(Then->getType()->isScalar() && Else->getType()->isScalar())) {
      error("incompatible ?: operand types");
      return nullptr;
    }
    return B.cond(Cond, Then, Else);
  }

  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 1;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Less:
    case TokKind::LessEq:
    case TokKind::Greater:
    case TokKind::GreaterEq:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  static BinaryOp binOpFor(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return BinaryOp::LogicalOr;
    case TokKind::AmpAmp:
      return BinaryOp::LogicalAnd;
    case TokKind::Pipe:
      return BinaryOp::BitOr;
    case TokKind::Caret:
      return BinaryOp::BitXor;
    case TokKind::Amp:
      return BinaryOp::BitAnd;
    case TokKind::EqEq:
      return BinaryOp::Eq;
    case TokKind::NotEq:
      return BinaryOp::Ne;
    case TokKind::Less:
      return BinaryOp::Lt;
    case TokKind::LessEq:
      return BinaryOp::Le;
    case TokKind::Greater:
      return BinaryOp::Gt;
    case TokKind::GreaterEq:
      return BinaryOp::Ge;
    case TokKind::Shl:
      return BinaryOp::Shl;
    case TokKind::Shr:
      return BinaryOp::Shr;
    case TokKind::Plus:
      return BinaryOp::Add;
    case TokKind::Minus:
      return BinaryOp::Sub;
    case TokKind::Star:
      return BinaryOp::Mul;
    case TokKind::Slash:
      return BinaryOp::Div;
    case TokKind::Percent:
      return BinaryOp::Rem;
    default:
      gdse_unreachable("not a binary operator token");
    }
  }

  Expr *parseBinary(int MinPrec) {
    Expr *LHS = parseUnary();
    while (LHS) {
      int Prec = precedenceOf(cur().Kind);
      if (Prec < MinPrec || Prec < 0)
        break;
      TokKind OpTok = advance().Kind;
      Expr *RHS = parseBinary(Prec + 1);
      if (!RHS)
        return nullptr;
      Expr *L = rvalue(LHS);
      Expr *R = rvalue(RHS);
      BinaryOp Op = binOpFor(OpTok);
      // Validate operand categories before delegating to the builder.
      Type *LT = L->getType(), *RT = R->getType();
      bool PtrInvolved = LT->isPointer() || RT->isPointer();
      if (PtrInvolved) {
        bool IsCmp = Op == BinaryOp::Eq || Op == BinaryOp::Ne ||
                     Op == BinaryOp::Lt || Op == BinaryOp::Le ||
                     Op == BinaryOp::Gt || Op == BinaryOp::Ge;
        bool IsAddSub = Op == BinaryOp::Add || Op == BinaryOp::Sub;
        bool IsLogical =
            Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr;
        if (!IsCmp && !IsAddSub && !IsLogical) {
          error("invalid operands to binary operator");
          return nullptr;
        }
        if (IsAddSub && LT->isPointer() && RT->isPointer() &&
            Op == BinaryOp::Add) {
          error("cannot add two pointers");
          return nullptr;
        }
        if (IsAddSub && Op == BinaryOp::Sub && !LT->isPointer()) {
          error("cannot subtract a pointer from an integer");
          return nullptr;
        }
        if (IsAddSub && LT->isPointer() && RT->isPointer() &&
            LT != RT) {
          error("pointer difference requires matching pointer types");
          return nullptr;
        }
      } else if (!LT->isScalar() || !RT->isScalar()) {
        error("invalid operands to binary operator");
        return nullptr;
      }
      LHS = B.binary(Op, L, R);
    }
    return LHS;
  }

  Expr *parseUnary() {
    switch (cur().Kind) {
    case TokKind::Minus: {
      advance();
      Expr *Sub = rvalue(parseUnary());
      if (!Sub)
        return nullptr;
      if (!Sub->getType()->isScalar()) {
        error("negation of non-scalar");
        return nullptr;
      }
      return B.unary(UnaryOp::Neg, Sub);
    }
    case TokKind::Tilde: {
      advance();
      Expr *Sub = rvalue(parseUnary());
      if (!Sub)
        return nullptr;
      if (!Sub->getType()->isInt()) {
        error("~ requires an integer");
        return nullptr;
      }
      return B.unary(UnaryOp::BitNot, Sub);
    }
    case TokKind::Bang: {
      advance();
      Expr *Sub = rvalue(parseUnary());
      if (!Sub)
        return nullptr;
      return B.unary(UnaryOp::LogicalNot, B.asCondition(Sub));
    }
    case TokKind::Star: {
      advance();
      Expr *Ptr = rvalue(parseUnary());
      if (!Ptr)
        return nullptr;
      auto *PT = dyn_cast<PointerType>(Ptr->getType());
      if (!PT || PT->getPointee()->isVoid()) {
        error("cannot dereference this expression");
        return nullptr;
      }
      return B.deref(Ptr);
    }
    case TokKind::Amp: {
      advance();
      Expr *Loc = parseUnary();
      if (!Loc)
        return nullptr;
      if (!Loc->isLValue()) {
        error("& requires an l-value");
        return nullptr;
      }
      return B.addrOf(Loc);
    }
    case TokKind::KwSizeof: {
      advance();
      expect(TokKind::LParen, "after sizeof");
      Type *T = nullptr;
      if (atTypeStart()) {
        T = parsePointerSuffix(parseTypeSpec());
      } else {
        Expr *E = parseExpr();
        if (!E)
          return nullptr;
        T = E->getType();
      }
      expect(TokKind::RParen, "after sizeof operand");
      if (T->isVoid()) {
        error("sizeof(void) is invalid");
        return nullptr;
      }
      return B.sizeofType(T);
    }
    case TokKind::LParen:
      // Cast?
      if (atTypeStartAhead(1)) {
        advance();
        Type *To = parsePointerSuffix(parseTypeSpec());
        expect(TokKind::RParen, "after cast type");
        Expr *Sub = rvalue(parseUnary());
        if (!Sub)
          return nullptr;
        if (To->isVoid()) {
          error("cast to void is unsupported");
          return nullptr;
        }
        bool FromOk =
            Sub->getType()->isScalar() || Sub->getType()->isPointer();
        bool ToOk = To->isScalar() || To->isPointer();
        if (!FromOk || !ToOk ||
            (Sub->getType()->isFloat() && To->isPointer()) ||
            (Sub->getType()->isPointer() && To->isFloat())) {
          error("invalid cast");
          return nullptr;
        }
        return B.castTo(Sub, To);
      }
      return parsePostfix();
    default:
      return parsePostfix();
    }
  }

  bool atTypeStartAhead(unsigned Ahead) const {
    switch (peek(Ahead).Kind) {
    case TokKind::KwVoid:
    case TokKind::KwChar:
    case TokKind::KwShort:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwUnsigned:
    case TokKind::KwStruct:
      return true;
    default:
      return false;
    }
  }

  Expr *parsePostfix() {
    Expr *E = parsePrimary();
    while (E) {
      if (accept(TokKind::LBracket)) {
        Expr *Idx = rvalue(parseExpr());
        expect(TokKind::RBracket, "after index");
        if (!Idx)
          return nullptr;
        if (!Idx->getType()->isInt()) {
          error("array index must be an integer");
          return nullptr;
        }
        Expr *Base = rvalue(E); // decays arrays, loads pointer variables
        auto *PT = dyn_cast<PointerType>(Base->getType());
        if (!PT || PT->getPointee()->isVoid()) {
          error("subscripted value is not a pointer/array");
          return nullptr;
        }
        E = B.index(Base, Idx);
        continue;
      }
      if (accept(TokKind::Dot)) {
        if (!at(TokKind::Identifier)) {
          error("expected field name after '.'");
          return nullptr;
        }
        std::string FName = advance().Text;
        E = fieldAccess(E, FName);
        continue;
      }
      if (accept(TokKind::Arrow)) {
        if (!at(TokKind::Identifier)) {
          error("expected field name after '->'");
          return nullptr;
        }
        std::string FName = advance().Text;
        Expr *Ptr = rvalue(E);
        auto *PT = dyn_cast<PointerType>(Ptr->getType());
        if (!PT || !PT->getPointee()->isStruct()) {
          error("-> requires a pointer to a struct");
          return nullptr;
        }
        E = fieldAccess(B.deref(Ptr), FName);
        continue;
      }
      break;
    }
    return E;
  }

  Expr *fieldAccess(Expr *Base, const std::string &FName) {
    if (!Base)
      return nullptr;
    if (!Base->isLValue()) {
      error("field access requires an l-value base");
      return nullptr;
    }
    auto *ST = dyn_cast<StructType>(Base->getType());
    if (!ST || ST->isOpaque()) {
      error("field access on non-struct");
      return nullptr;
    }
    int Idx = ST->getFieldIndex(FName);
    if (Idx < 0) {
      error("struct " + ST->getName() + " has no field '" + FName + "'");
      return nullptr;
    }
    return B.field(Base, static_cast<unsigned>(Idx));
  }

  Expr *parsePrimary() {
    switch (cur().Kind) {
    case TokKind::IntLiteral: {
      int64_t V = advance().IntValue;
      // Fits in int? Use int32, else long.
      if (V >= INT32_MIN && V <= INT32_MAX)
        return B.intLit(V);
      return B.longLit(V);
    }
    case TokKind::FloatLiteral:
      return B.floatLit(advance().FloatValue);
    case TokKind::KwTid:
      advance();
      return B.threadId();
    case TokKind::KwNumThreads:
      advance();
      return B.numThreads();
    case TokKind::LParen: {
      advance();
      Expr *E = parseExpr();
      expect(TokKind::RParen, "after parenthesized expression");
      return E;
    }
    case TokKind::Identifier: {
      std::string Name = advance().Text;
      if (at(TokKind::LParen))
        return parseCall(Name);
      VarDecl *D = lookup(Name);
      if (!D) {
        auto It = GlobalScope.find(Name);
        D = It == GlobalScope.end() ? nullptr : It->second;
      }
      if (!D) {
        error("unknown variable '" + Name + "'");
        return nullptr;
      }
      return B.varRef(D);
    }
    default:
      error(formatString("expected an expression, found %s",
                         tokKindName(cur().Kind)));
      return nullptr;
    }
  }

  Expr *parseCall(const std::string &Name) {
    advance(); // (
    std::vector<Expr *> Args;
    if (!at(TokKind::RParen)) {
      do {
        Expr *A = rvalue(parseExpr());
        if (!A)
          return nullptr;
        Args.push_back(A);
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after call arguments");

    Builtin Bi = lookupBuiltin(Name);
    if (Bi != Builtin::None)
      return buildBuiltinCall(Bi, std::move(Args));

    Function *F = M->getFunction(Name);
    if (!F) {
      error("call to undeclared function '" + Name + "'");
      return nullptr;
    }
    FunctionType *FT = F->getFunctionType();
    if (Args.size() != FT->getNumParams()) {
      error(formatString("'%s' expects %u arguments, got %zu", Name.c_str(),
                         FT->getNumParams(), Args.size()));
      return nullptr;
    }
    for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I) {
      Args[I] = convertForAssign(Args[I], FT->getParam(I));
      if (!Args[I])
        return nullptr;
    }
    return B.call(F, std::move(Args));
  }

  Expr *buildBuiltinCall(Builtin Bi, std::vector<Expr *> Args) {
    TypeContext &Ctx = M->getTypes();
    Type *VoidPtr = Ctx.getPointerType(Ctx.getVoidType());
    auto wantArgs = [&](unsigned N) {
      if (Args.size() != N) {
        error(formatString("%s expects %u arguments", getBuiltinName(Bi), N));
        return false;
      }
      return true;
    };
    auto intArg = [&](unsigned I) -> bool {
      if (!Args[I]->getType()->isInt()) {
        error(formatString("argument %u of %s must be an integer", I + 1,
                           getBuiltinName(Bi)));
        return false;
      }
      Args[I] = B.convert(Args[I], Ctx.getInt64());
      return true;
    };
    auto ptrArg = [&](unsigned I) -> bool {
      if (!Args[I]->getType()->isPointer()) {
        error(formatString("argument %u of %s must be a pointer", I + 1,
                           getBuiltinName(Bi)));
        return false;
      }
      return true;
    };
    switch (Bi) {
    case Builtin::MallocFn:
      if (!wantArgs(1) || !intArg(0))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), VoidPtr);
    case Builtin::CallocFn:
      if (!wantArgs(2) || !intArg(0) || !intArg(1))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), VoidPtr);
    case Builtin::ReallocFn:
      if (!wantArgs(2) || !ptrArg(0) || !intArg(1))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), VoidPtr);
    case Builtin::FreeFn:
      if (!wantArgs(1) || !ptrArg(0))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), Ctx.getVoidType());
    case Builtin::MemcpyFn:
      if (!wantArgs(3) || !ptrArg(0) || !ptrArg(1) || !intArg(2))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), VoidPtr);
    case Builtin::MemsetFn:
      if (!wantArgs(3) || !ptrArg(0) || !intArg(1) || !intArg(2))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), VoidPtr);
    case Builtin::PrintInt:
      if (!wantArgs(1) || !intArg(0))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), Ctx.getVoidType());
    case Builtin::PrintFloat:
      if (!wantArgs(1))
        return nullptr;
      if (!Args[0]->getType()->isFloat()) {
        error("print_float argument must be a float");
        return nullptr;
      }
      Args[0] = B.convert(Args[0], Ctx.getFloat64());
      return B.callBuiltin(Bi, std::move(Args), Ctx.getVoidType());
    case Builtin::AbsFn:
      if (!wantArgs(1) || !intArg(0))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), Ctx.getInt64());
    case Builtin::FabsFn:
    case Builtin::SqrtFn:
      if (!wantArgs(1))
        return nullptr;
      if (!Args[0]->getType()->isScalar()) {
        error("fabs/sqrt argument must be numeric");
        return nullptr;
      }
      Args[0] = B.convert(Args[0], Ctx.getFloat64());
      return B.callBuiltin(Bi, std::move(Args), Ctx.getFloat64());
    case Builtin::ExitFn:
      if (!wantArgs(1) || !intArg(0))
        return nullptr;
      return B.callBuiltin(Bi, std::move(Args), Ctx.getVoidType());
    case Builtin::RtPrivPtr: {
      if (!wantArgs(2) || !ptrArg(0) || !intArg(1))
        return nullptr;
      Type *ResultTy = Args[0]->getType();
      return B.callBuiltin(Bi, std::move(Args), ResultTy);
    }
    case Builtin::None:
      break;
    }
    gdse_unreachable("unhandled builtin");
  }

  //===------------------------------------------------------------------===//
  // State
  //===------------------------------------------------------------------===//

  std::vector<Token> Toks;
  std::vector<std::string> &Errors;
  std::unique_ptr<Module> M;
  IRBuilder B;
  size_t Pos = 0;
  Function *CurFn = nullptr;
  std::vector<Scope> Scopes;
  Scope GlobalScope;
  std::set<std::string> UsedLocalNames;
  unsigned ShadowCounter = 0;
};

} // namespace

ParseResult gdse::parseMiniC(const std::string &Source) {
  ParseResult Result;
  std::vector<Token> Toks = lex(Source, Result.Errors);
  if (Result.Errors.empty()) {
    ParserImpl P(std::move(Toks), Result.Errors);
    Result.M = P.run();
  }
  // Structured view: every frontend error, with the source line recovered
  // from the "line:col:" prefix the lexer/parser emit.
  for (const std::string &E : Result.Errors) {
    Diagnostic D;
    D.Severity = DiagSeverity::Error;
    D.Pass = "frontend";
    D.Message = E;
    unsigned Line = 0, Col = 0;
    if (std::sscanf(E.c_str(), "%u:%u:", &Line, &Col) == 2)
      D.Line = Line;
    Result.Diags.push_back(std::move(D));
  }
  return Result;
}

std::unique_ptr<Module> gdse::parseMiniCOrDie(const std::string &Source,
                                              const char *What) {
  ParseResult R = parseMiniC(Source);
  if (R.ok())
    return std::move(R.M);
  std::fprintf(stderr, "MiniC parse of %s failed:\n", What);
  for (const std::string &E : R.Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  reportFatalError("parse failed");
}
