//===- Parser.h - MiniC parser and semantic analysis ------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser with integrated type checking that turns MiniC
/// source into a verified gdse::Module.
///
/// MiniC is the C subset the paper's transforms need to be exercised on:
/// structs, pointers (with & and pointer arithmetic), fixed arrays, heap
/// allocation (malloc/calloc/realloc/free), functions, the usual statement
/// and operator set, plus the "@candidate" annotation marking a for-loop as
/// a parallelization candidate. Restrictions: one declarator per
/// declaration, canonical counted for-loops (iv = lo; iv < hi; iv += step),
/// no typedef/union/switch/goto, no struct-by-value parameters, and the
/// l-value of compound assignments must be side-effect free (it is
/// duplicated).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_FRONTEND_PARSER_H
#define GDSE_FRONTEND_PARSER_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace gdse {

struct ParseResult {
  /// The parsed program; null when any error was reported.
  std::unique_ptr<Module> M;
  /// Legacy flat view ("line:col: message"); prefer Diags.
  std::vector<std::string> Errors;
  /// Structured view of the same errors: pass "frontend", severity Error,
  /// with the 1-based source line when known.
  std::vector<Diagnostic> Diags;

  bool ok() const { return M != nullptr && Errors.empty(); }
};

/// Parses and type-checks a MiniC translation unit.
ParseResult parseMiniC(const std::string &Source);

/// Like parseMiniC, but aborts with the diagnostics on failure. For
/// workloads and tests whose source is known-good.
std::unique_ptr<Module> parseMiniCOrDie(const std::string &Source,
                                        const char *What = "input");

} // namespace gdse

#endif // GDSE_FRONTEND_PARSER_H
