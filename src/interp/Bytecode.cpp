//===- Bytecode.cpp - The register-bytecode dispatch loop -------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Executes BytecodeFunctions produced by Lowering.cpp. One dispatch() frame
// runs one code segment (a function body, a for's bounds segment, or a for's
// body segment) to its terminator. Structured constructs (while loops,
// ordered regions) push entries on a scope stack; every dispatch records its
// entry depth and unwinds back to it on *every* exit — normal terminators,
// return, trap — so the loop-exit bookkeeping and ordered-event recording
// the tree-walker performs on each exit path happen here exactly once, in
// the same innermost-to-outermost order.
//
// All memory, builtin, loop-driver, and timeline semantics come from
// ExecState; this file only moves values between registers and dispatches.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"

#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

using namespace gdse;

namespace {

/// A structured region entered by the running code: a while loop or an
/// ordered region.
struct ScopeEntry {
  bool IsWhile = false;
  ExecState::ActiveLoop Loop; // while scopes
  OrderedEvent Ev;            // ordered scopes
};

class BytecodeVM {
public:
  BytecodeVM(ExecState &S, const BytecodeModule &BM) : S(S), BM(BM) {}

  /// Mirrors the tree-walker's invokeEntry.
  void runEntry(const Function *F) {
    const BytecodeFunction &BF = BM.Funcs[BM.Index.at(F)];
    uint64_t Base = S.Mem.allocate(BF.FrameSize, AllocKind::Frame, 0);
    if (!Base) {
      S.trap(formatString("out of memory: frame of %llu bytes for '%s' failed",
                          static_cast<unsigned long long>(BF.FrameSize),
                          F->getName().c_str()));
      return;
    }
    if (S.Obs)
      S.Obs->onAlloc(*S.Mem.byBase(Base));
    S.ReturnValue = VMValue();
    uint32_t RegBase = allocRegs(BF.NumRegs);
    dispatch(BF, Base, RegBase, 0);
    Regs.resize(RegBase);
    if (!S.Trapped && !S.Halted && F->getReturnType()->isInt())
      S.ExitCode = S.ReturnValue.I;
    S.rtPrivCommitAll();
    if (S.Obs)
      S.Obs->onFree(*S.Mem.byBase(Base));
    S.Mem.deallocate(Base);
  }

private:
  ExecState &S;
  const BytecodeModule &BM;
  std::vector<VMValue> Regs;
  std::vector<ScopeEntry> Scopes;

  uint32_t allocRegs(uint16_t N) {
    uint32_t Base = static_cast<uint32_t>(Regs.size());
    Regs.resize(Base + std::max<uint16_t>(N, 1));
    return Base;
  }

  static int64_t normSK(int64_t V, ScalarKind K) {
    return ExecState::normalizeInt(V, scalarSize(K) * 8, K <= ScalarKind::I64);
  }

  /// Mirrors the tree-walker's evalCall from the allocation on (the depth
  /// check, charges, and argument evaluation already ran as instructions).
  /// \p Args points into Regs and is consumed before any reallocation.
  VMValue callFunction(const BytecodeFunction &BF, const VMValue *Args,
                       unsigned NArgs) {
    uint64_t Base = S.Mem.allocate(BF.FrameSize, AllocKind::Frame, 0);
    if (!Base) {
      S.trap(formatString("out of memory: frame of %llu bytes for '%s' failed",
                          static_cast<unsigned long long>(BF.FrameSize),
                          BF.F->getName().c_str()));
      return VMValue();
    }
    if (S.Obs)
      S.Obs->onAlloc(*S.Mem.byBase(Base));
    ++S.CallDepth;
    assert(NArgs <= BF.Params.size() && "argument count exceeds parameters");
    for (unsigned I = 0; I != NArgs; ++I)
      S.storeScalar(Base + BF.Params[I].Off, BF.Params[I].T, Args[I]);
    S.ReturnValue = VMValue();
    uint32_t RegBase = allocRegs(BF.NumRegs);
    dispatch(BF, Base, RegBase, 0);
    Regs.resize(RegBase);
    VMValue RV = S.ReturnValue;
    --S.CallDepth;
    if (S.Obs)
      S.Obs->onFree(*S.Mem.byBase(Base));
    S.Mem.deallocate(Base);
    return RV;
  }

  /// Runs [PC ...] of \p BF until a terminator or a trap/halt. Returns
  /// Normal (BoundsEnd/IterEnd), Break (IterBreak), Return, or Halt.
  Flow dispatch(const BytecodeFunction &BF, uint64_t FrameBase,
                uint32_t RegBase, uint32_t PC) {
    const size_t ScopeFloor = Scopes.size();
    const BCInst *Code = BF.Code.data();
    VMValue *R = Regs.data() + RegBase;
    Flow Result = Flow::Halt;
    bool Done = false;

    while (!Done) {
      const BCInst &I = Code[PC];
      S.Cycles += I.Cost;
      uint32_t NextPC = PC + 1;

      switch (I.Op) {
      case BCOp::ConstI:
        R[I.A] = VMValue::ofInt(I.Imm64);
        break;
      case BCOp::ConstF: {
        double D;
        std::memcpy(&D, &I.Imm64, 8);
        R[I.A] = VMValue::ofFloat(D);
        break;
      }
      case BCOp::Move:
        R[I.A] = R[I.B];
        break;
      case BCOp::Tid:
        R[I.A] = VMValue::ofInt(S.CurTid);
        break;
      case BCOp::NThreads:
        R[I.A] = VMValue::ofInt(S.Opts.NumThreads);
        break;
      case BCOp::LeaFrame:
        R[I.A] = VMValue::ofInt(
            static_cast<int64_t>(FrameBase + static_cast<uint64_t>(I.Imm64)));
        break;
      case BCOp::LeaGlobal: {
        uint64_t GBase = globalBase(I.Imm32b);
        R[I.A] = VMValue::ofInt(
            static_cast<int64_t>(GBase + static_cast<uint64_t>(I.Imm64)));
        break;
      }
      case BCOp::AddImm:
        R[I.A] = VMValue::ofInt(static_cast<int64_t>(
            static_cast<uint64_t>(R[I.B].I) + static_cast<uint64_t>(I.Imm64)));
        break;
      case BCOp::AddScaled:
        R[I.A] = VMValue::ofInt(static_cast<int64_t>(
            static_cast<uint64_t>(R[I.B].I) +
            static_cast<uint64_t>(R[I.C].I * I.Imm64)));
        break;

      case BCOp::LdFrame:
      case BCOp::LdGlobal:
      case BCOp::LdInd: {
        uint64_t Addr;
        if (I.Op == BCOp::LdFrame)
          Addr = FrameBase + static_cast<uint64_t>(I.Imm64);
        else if (I.Op == BCOp::LdGlobal)
          Addr = globalBase(I.Imm32b) + static_cast<uint64_t>(I.Imm64);
        else
          Addr =
              static_cast<uint64_t>(R[I.B].I) + static_cast<uint64_t>(I.Imm64);
        ScalarKind K = static_cast<ScalarKind>(I.Kind);
        uint64_t Size = scalarSize(K);
        if (!S.checkAccess(Addr, Size, "load")) {
          R[I.A] = VMValue();
          break;
        }
        if (S.Obs)
          S.Obs->onLoad(I.Imm32, Addr, Size);
        if (S.GuardHooksOn)
          S.guardLoad(I.Imm32, Addr, Size);
        R[I.A] = S.loadScalarKind(Addr, K);
        break;
      }

      case BCOp::StFrame:
      case BCOp::StGlobal:
      case BCOp::StInd: {
        uint64_t Addr;
        if (I.Op == BCOp::StFrame)
          Addr = FrameBase + static_cast<uint64_t>(I.Imm64);
        else if (I.Op == BCOp::StGlobal)
          Addr = globalBase(I.Imm32b) + static_cast<uint64_t>(I.Imm64);
        else
          Addr =
              static_cast<uint64_t>(R[I.B].I) + static_cast<uint64_t>(I.Imm64);
        ScalarKind K = static_cast<ScalarKind>(I.Kind);
        uint64_t Size = scalarSize(K);
        if (!S.checkAccess(Addr, Size, "store"))
          break;
        S.storeScalarKind(Addr, K, R[I.A]);
        if (S.Obs)
          S.Obs->onStore(I.Imm32, Addr, Size);
        if (S.GuardHooksOn)
          S.guardStore(I.Imm32, Addr, Size);
        break;
      }

      case BCOp::AggCopy: {
        uint64_t Dst = static_cast<uint64_t>(R[I.A].I);
        uint64_t Src = static_cast<uint64_t>(R[I.B].I);
        uint64_t Size = static_cast<uint64_t>(I.Imm64);
        if (!S.checkAccess(Dst, Size, "aggregate store") ||
            !S.checkAccess(Src, Size, "aggregate load"))
          break;
        S.charge(S.Opts.Costs.Load + S.Opts.Costs.Store +
                 Size * S.Opts.Costs.PerByteCopy);
        if (S.Obs) {
          S.Obs->onLoad(I.Imm32b, Src, Size);
          S.Obs->onStore(I.Imm32, Dst, Size);
        }
        if (S.GuardHooksOn) {
          S.guardLoad(I.Imm32b, Src, Size);
          S.guardStore(I.Imm32, Dst, Size);
        }
        std::memmove(reinterpret_cast<void *>(Dst),
                     reinterpret_cast<void *>(Src), Size);
        break;
      }

      case BCOp::AddI:
        R[I.A] = VMValue::ofInt(normSK(
            static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) +
                                 static_cast<uint64_t>(R[I.C].I)),
            static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::SubI:
        R[I.A] = VMValue::ofInt(normSK(
            static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) -
                                 static_cast<uint64_t>(R[I.C].I)),
            static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::MulI:
        R[I.A] = VMValue::ofInt(normSK(
            static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) *
                                 static_cast<uint64_t>(R[I.C].I)),
            static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::DivI: {
        if (R[I.C].I == 0) {
          S.trap("integer division by zero");
          break;
        }
        ScalarKind K = static_cast<ScalarKind>(I.Kind);
        if (K <= ScalarKind::I64)
          R[I.A] = VMValue::ofInt(normSK(R[I.B].I / R[I.C].I, K));
        else
          R[I.A] = VMValue::ofInt(normSK(
              static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) /
                                   static_cast<uint64_t>(R[I.C].I)),
              K));
        break;
      }
      case BCOp::RemI: {
        if (R[I.C].I == 0) {
          S.trap("integer remainder by zero");
          break;
        }
        ScalarKind K = static_cast<ScalarKind>(I.Kind);
        if (K <= ScalarKind::I64)
          R[I.A] = VMValue::ofInt(normSK(R[I.B].I % R[I.C].I, K));
        else
          R[I.A] = VMValue::ofInt(normSK(
              static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) %
                                   static_cast<uint64_t>(R[I.C].I)),
              K));
        break;
      }
      case BCOp::BitAndI:
        R[I.A] = VMValue::ofInt(
            normSK(R[I.B].I & R[I.C].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::BitOrI:
        R[I.A] = VMValue::ofInt(
            normSK(R[I.B].I | R[I.C].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::BitXorI:
        R[I.A] = VMValue::ofInt(
            normSK(R[I.B].I ^ R[I.C].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::ShlI: {
        unsigned Sh = static_cast<unsigned>(R[I.C].I) & 63;
        R[I.A] = VMValue::ofInt(normSK(
            static_cast<int64_t>(static_cast<uint64_t>(R[I.B].I) << Sh),
            static_cast<ScalarKind>(I.Kind)));
        break;
      }
      case BCOp::ShrI: {
        unsigned Sh = static_cast<unsigned>(R[I.C].I) & 63;
        ScalarKind K = static_cast<ScalarKind>(I.Kind);
        if (K <= ScalarKind::I64) {
          R[I.A] = VMValue::ofInt(normSK(R[I.B].I >> Sh, K));
        } else {
          unsigned Bits = scalarSize(K) * 8;
          uint64_t Mask =
              Bits == 64 ? ~uint64_t(0) : ((uint64_t(1) << Bits) - 1);
          R[I.A] = VMValue::ofInt(normSK(
              static_cast<int64_t>((static_cast<uint64_t>(R[I.B].I) & Mask) >>
                                   Sh),
              K));
        }
        break;
      }
      case BCOp::NegI:
        R[I.A] = VMValue::ofInt(
            normSK(-R[I.B].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::BitNotI:
        R[I.A] = VMValue::ofInt(
            normSK(~R[I.B].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::LogNotI:
        R[I.A] = VMValue::ofInt(R[I.B].I != 0 ? 0 : 1);
        break;
      case BCOp::LogNotF:
        R[I.A] = VMValue::ofInt(R[I.B].F != 0.0 ? 0 : 1);
        break;
      case BCOp::BoolI:
        R[I.A] = VMValue::ofInt(R[I.B].I != 0 ? 1 : 0);
        break;
      case BCOp::PtrDiff:
        R[I.A] = VMValue::ofInt((R[I.B].I - R[I.C].I) / I.Imm64);
        break;

      case BCOp::AddF:
        R[I.A] = VMValue::ofFloat(R[I.B].F + R[I.C].F);
        break;
      case BCOp::SubF:
        R[I.A] = VMValue::ofFloat(R[I.B].F - R[I.C].F);
        break;
      case BCOp::MulF:
        R[I.A] = VMValue::ofFloat(R[I.B].F * R[I.C].F);
        break;
      case BCOp::DivF:
        R[I.A] = VMValue::ofFloat(R[I.B].F / R[I.C].F);
        break;
      case BCOp::NegF:
        R[I.A] = VMValue::ofFloat(-R[I.B].F);
        break;

      case BCOp::CmpI: {
        int C = R[I.B].I < R[I.C].I ? -1 : (R[I.B].I > R[I.C].I ? 1 : 0);
        R[I.A] = VMValue::ofInt(applyPred(static_cast<CmpPred>(I.Kind), C));
        break;
      }
      case BCOp::CmpU: {
        uint64_t UL = static_cast<uint64_t>(R[I.B].I),
                 UR = static_cast<uint64_t>(R[I.C].I);
        int C = UL < UR ? -1 : (UL > UR ? 1 : 0);
        R[I.A] = VMValue::ofInt(applyPred(static_cast<CmpPred>(I.Kind), C));
        break;
      }
      case BCOp::CmpF: {
        int C = R[I.B].F < R[I.C].F ? -1 : (R[I.B].F > R[I.C].F ? 1 : 0);
        R[I.A] = VMValue::ofInt(applyPred(static_cast<CmpPred>(I.Kind), C));
        break;
      }

      case BCOp::CastII:
        R[I.A] =
            VMValue::ofInt(normSK(R[I.B].I, static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::CastFI:
        R[I.A] = VMValue::ofInt(normSK(static_cast<int64_t>(R[I.B].F),
                                       static_cast<ScalarKind>(I.Kind)));
        break;
      case BCOp::CastIF: {
        double V = (I.Kind & 1)
                       ? static_cast<double>(static_cast<uint64_t>(R[I.B].I))
                       : static_cast<double>(R[I.B].I);
        if (I.Kind & 2)
          V = static_cast<float>(V);
        R[I.A] = VMValue::ofFloat(V);
        break;
      }
      case BCOp::CastFF: {
        double V = R[I.B].F;
        if (I.Kind & 2)
          V = static_cast<float>(V);
        R[I.A] = VMValue::ofFloat(V);
        break;
      }

      case BCOp::Jump:
        NextPC = I.Imm32;
        break;
      case BCOp::JumpIfZero:
        if (R[I.A].I == 0)
          NextPC = I.Imm32;
        break;
      case BCOp::JumpIfNonZero:
        if (R[I.A].I != 0)
          NextPC = I.Imm32;
        break;

      case BCOp::CallGuard:
        if (S.CallDepth > 4000) {
          // The tree-walker traps *before* charging Call; back it out.
          if (I.Kind & 1)
            S.Cycles -= S.Opts.Costs.Call;
          S.trap("call stack overflow");
        }
        break;
      case BCOp::Call: {
        const BytecodeFunction &Callee = BM.Funcs[I.Imm32];
        VMValue RV = callFunction(Callee, Regs.data() + RegBase + I.B, I.C);
        R = Regs.data() + RegBase; // nested calls may reallocate Regs
        R[I.A] = RV;
        break;
      }
      case BCOp::BuiltinOp: {
        VMValue Args[3];
        unsigned N = std::min<unsigned>(I.C, 3);
        for (unsigned J = 0; J != N; ++J)
          Args[J] = R[I.B + J];
        R[I.A] = S.execBuiltinOp(static_cast<Builtin>(I.Kind), I.Imm32, Args,
                                 N);
        break;
      }
      case BCOp::Ret:
        if (I.Kind & 1)
          S.ReturnValue = R[I.A];
        Result = Flow::Return;
        Done = true;
        break;
      case BCOp::Trap:
        S.trap(BF.TrapMsgs[I.Imm32]);
        break;

      case BCOp::LoopEnterW: {
        ScopeEntry E;
        E.IsWhile = true;
        E.Loop = S.loopEnter(I.Imm32);
        Scopes.push_back(E);
        break;
      }
      case BCOp::WhileHead:
        S.checkBudget();
        break;
      case BCOp::IterNote:
        S.loopIterNote(Scopes.back().Loop);
        break;
      case BCOp::LoopExitW:
        S.loopExit(Scopes.back().Loop);
        Scopes.pop_back();
        break;

      case BCOp::ForLoop: {
        const BCForMeta &FM = BF.Fors[I.Imm32];
        // Under the Threads engine, offer the loop driver real host-threaded
        // execution: each worker gets its own VM (register file, scope
        // stack) over the shared bytecode and a private copy of this frame.
        // Fresh zeroed registers are equivalent to the enclosing VM's
        // because body segments never read registers written outside
        // themselves (the lowering's per-statement register discipline).
        // The driver still decides per invocation; ineligible loops run the
        // simulated serial-order Body below.
        ThreadLoopHooks Hooks;
        const ThreadLoopHooks *Host = nullptr;
        if (S.Opts.Engine == ExecEngine::Threads) {
          Hooks.FrameBase = FrameBase;
          Hooks.FrameSize = BF.FrameSize;
          Hooks.IVInFrame = !FM.IVGlobal;
          Hooks.MakeWorker = [this, &BF, &FM](ThreadState &WS,
                                              uint64_t WorkerFrame) {
            auto VM = std::make_shared<BytecodeVM>(WS, BM);
            VM->allocRegs(BF.NumRegs);
            return std::function<Flow()>([VM, &BF, &FM, WorkerFrame] {
              return VM->dispatch(BF, WorkerFrame, 0, FM.BodyStart);
            });
          };
          Host = &Hooks;
        }
        Flow FL = S.runForLoop(
            FM.LoopId, FM.Kind, FM.IVType,
            [&](ExecState::ForBounds &B) {
              B.IVAddr = FM.IVGlobal ? S.globalAddr(FM.IVGlobal)
                                     : FrameBase + FM.IVFrameOff;
              dispatch(BF, FrameBase, RegBase, FM.BoundsStart);
              VMValue *RR = Regs.data() + RegBase;
              B.Lo = RR[FM.LoReg].I;
              B.Hi = RR[FM.HiReg].I;
              B.Step = RR[FM.StepReg].I;
            },
            [&] { return dispatch(BF, FrameBase, RegBase, FM.BodyStart); },
            Host);
        R = Regs.data() + RegBase; // body calls may reallocate Regs
        if (FL == Flow::Return || FL == Flow::Halt) {
          Result = FL;
          Done = true;
          break;
        }
        NextPC = FM.ExitPc;
        break;
      }
      case BCOp::BoundsEnd:
      case BCOp::IterEnd:
        Result = Flow::Normal;
        Done = true;
        break;
      case BCOp::IterBreak:
        Result = Flow::Break;
        Done = true;
        break;

      case BCOp::OrdEnter: {
        // Under real DOACROSS threading, block until this worker's iteration
        // holds the region ticket. Wall-clock only; the recorded entry offset
        // below is in work cycles, which blocking does not advance.
        if (S.DX)
          S.orderedRealEnter(I.Imm32);
        ScopeEntry E;
        E.Ev.RegionId = I.Imm32;
        if (S.RecordOrdered)
          E.Ev.EntryOff = S.Cycles - S.IterStartCycles;
        Scopes.push_back(E);
        break;
      }
      case BCOp::OrdExit: {
        ScopeEntry &E = Scopes.back();
        if (S.RecordOrdered) {
          E.Ev.ExitOff = S.Cycles - S.IterStartCycles;
          S.OrderedEvents.push_back(E.Ev);
        }
        Scopes.pop_back();
        break;
      }
      }

      // A trap or halt anywhere overrides the segment's own flow, exactly
      // like the tree-walker's dead() checks on every path.
      if (S.Trapped || S.Halted) {
        Result = Flow::Halt;
        break;
      }
      PC = NextPC;
    }

    // Unwind scopes this segment opened but did not close (return, trap,
    // halt): innermost-first, while-exit bookkeeping and ordered-event
    // recording in the same order the tree-walker's propagation performs.
    while (Scopes.size() > ScopeFloor) {
      ScopeEntry &E = Scopes.back();
      if (E.IsWhile) {
        S.loopExit(E.Loop);
      } else if (S.RecordOrdered) {
        E.Ev.ExitOff = S.Cycles - S.IterStartCycles;
        S.OrderedEvents.push_back(E.Ev);
      }
      Scopes.pop_back();
    }
    return Result;
  }

  uint64_t globalBase(uint32_t VarId) {
    uint64_t Base =
        VarId < S.P.GlobalAddrById.size() ? S.P.GlobalAddrById[VarId] : 0;
    if (!Base)
      S.trap("reference to unallocated global '" +
             S.M.getVarDecl(VarId)->getName() + "'");
    return Base;
  }

  static int64_t applyPred(CmpPred P, int C) {
    switch (P) {
    case CmpPred::Eq:
      return C == 0;
    case CmpPred::Ne:
      return C != 0;
    case CmpPred::Lt:
      return C < 0;
    case CmpPred::Le:
      return C <= 0;
    case CmpPred::Gt:
      return C > 0;
    case CmpPred::Ge:
      return C >= 0;
    }
    gdse_unreachable("unknown compare predicate");
  }
};

} // namespace

void gdse::runBytecodeEntry(ExecState &S, const BytecodeModule &BM,
                            const Function *F) {
  BytecodeVM VM(S, BM);
  VM.runEntry(F);
}
