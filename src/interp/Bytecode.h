//===- Bytecode.h - Register bytecode for the GDSE VM -----------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution format: each Function is lowered once to a
/// BytecodeFunction — a flat array of fixed-size register instructions with
/// pre-resolved frame offsets, field offsets, type sizes, scalar encodings,
/// and absolute jump targets — and executed by the dispatch loop in
/// Bytecode.cpp. Virtual registers hold expression temporaries only; named
/// locals and parameters stay in frame memory so that observer-visible
/// addresses, bounds checks, and peak-memory accounting are identical to the
/// tree-walker's.
///
/// Cycle accounting: each instruction carries a static `Cost` added to the
/// cycle counter when it executes. The lowering attaches each IR node's
/// charge to the first instruction it emits for that node, which can reorder
/// charges *within* a straight-line segment relative to the tree-walker —
/// but cycle totals are only observable at loop/iteration/ordered-region
/// boundaries and at run end, which segments never span, so totals are
/// bit-identical on non-trapping runs (EngineDiffTest enforces). On runs
/// that trap mid-expression, the final cycle count and post-trap side
/// effects may differ from the tree-walker; trap messages and prior output
/// do not. Size-dependent charges (aggregate copies, builtins) are computed
/// by the handlers from the live cost table, exactly like the tree-walker.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_BYTECODE_H
#define GDSE_INTERP_BYTECODE_H

#include "interp/ExecState.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gdse {

enum class BCOp : uint8_t {
  // Values and addressing. LeaFrame/AddImm/AddScaled form addresses;
  // AddScaled also implements ptr±int and array indexing (A = B + C*Imm64).
  ConstI,    ///< A = Imm64
  ConstF,    ///< A.F = bit_cast<double>(Imm64)
  Move,      ///< A = B
  Tid,       ///< A = current simulated thread id
  NThreads,  ///< A = simulated core count
  LeaFrame,  ///< A = FrameBase + Imm64
  LeaGlobal, ///< A = globalAddr(var Imm32b) + Imm64 (traps when unallocated)
  AddImm,    ///< A = B + Imm64
  AddScaled, ///< A = B + C * Imm64

  // Memory. Kind = ScalarKind; Imm32 = AccessId; Imm64 = constant offset
  // (added to FrameBase, the global's base, or register B respectively).
  // Imm32b of LeaGlobal/LdGlobal/StGlobal is the global's VarDecl id.
  LdFrame,
  LdGlobal,
  LdInd,
  StFrame, ///< stores register A
  StGlobal,
  StInd, ///< stores register A at [B + Imm64]
  /// Aggregate copy [A] <- [B] of Imm64 bytes; Imm32 = store access id,
  /// Imm32b = load access id. Charges Load+Store+Size*PerByteCopy itself.
  AggCopy,

  // Integer ALU; Kind = result ScalarKind (for normalization; CmpI/CmpU/CmpF
  // reuse Kind as the predicate, see CmpPred).
  AddI,
  SubI,
  MulI,
  DivI, ///< traps on zero divisor; Cost already includes DivRem/const-div
  RemI,
  BitAndI,
  BitOrI,
  BitXorI,
  ShlI,
  ShrI,
  NegI,
  BitNotI,
  LogNotI, ///< A = (B.I != 0) ? 0 : 1
  LogNotF, ///< A = (B.F != 0.0) ? 0 : 1
  BoolI,   ///< A = (B.I != 0) ? 1 : 0
  PtrDiff, ///< A = (B - C) / Imm64

  // Float ALU.
  AddF,
  SubF,
  MulF,
  DivF,
  NegF,

  // Comparisons (Kind = CmpPred). CmpI signed, CmpU unsigned/pointer,
  // CmpF double (three-way compare first, exactly like the tree-walker).
  CmpI,
  CmpU,
  CmpF,

  // Casts. CastII/CastFI normalize to Kind; CastIF: Kind bit0 = source
  // unsigned, bit1 = round through float; CastFF: Kind bit1 = round through
  // float.
  CastII,
  CastFI,
  CastIF,
  CastFF,

  // Control flow; Imm32 = absolute target pc.
  Jump,
  JumpIfZero,    ///< on A.I == 0
  JumpIfNonZero, ///< on A.I != 0

  // Calls. CallGuard is emitted before argument lowering and carries the
  // call's ExprBase+Call charge plus the depth check (backing the Call
  // charge out on overflow, matching the tree-walker's charge order).
  // Call: A = result, args in registers [B, B+C), Imm32 = callee index.
  // BuiltinOp: Kind = Builtin, A = result, args in [B, B+C), Imm32 = site id.
  CallGuard,
  Call,
  BuiltinOp,
  Ret,  ///< Kind bit0: A holds the return value
  Trap, ///< trap with message TrapMsgs[Imm32]

  // Structured regions. While loops and ordered regions push entries on the
  // VM's scope stack so abnormal exits (trap/halt/return) unwind with the
  // same bookkeeping the tree-walker performs on every exit path.
  LoopEnterW, ///< Imm32 = loop id; pushes a while scope
  WhileHead,  ///< per-iteration cycle-budget check
  IterNote,   ///< observer onLoopIter for the innermost while scope
  LoopExitW,  ///< pops the while scope, runs exit bookkeeping
  ForLoop,    ///< Imm32 = index into Fors; see BCForMeta
  BoundsEnd,  ///< terminator of a for's bounds segment
  IterEnd,    ///< terminator of a for's body segment (normal / continue)
  IterBreak,  ///< terminator of a for's body segment (break)
  OrdEnter,   ///< Imm32 = region id; Cost carries OrderedEnter
  OrdExit,
};

/// Comparison predicate stored in Kind of CmpI/CmpU/CmpF.
enum class CmpPred : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// One fixed-size instruction (40 bytes).
struct BCInst {
  BCOp Op = BCOp::Trap;
  uint8_t Kind = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint32_t Imm32 = 0;
  uint32_t Imm32b = 0;
  /// Static cycles charged when this instruction executes (cost-table
  /// entries are uint64, so this is too).
  uint64_t Cost = 0;
  int64_t Imm64 = 0;
};

/// Pre-resolved metadata of one `for` statement. Code layout:
///   ForLoop; [bounds code ... BoundsEnd]; [body code ... IterEnd]; ExitPc:
/// The ForLoop handler drives ExecState::runForLoop over the two segments.
struct BCForMeta {
  unsigned LoopId = 0;
  ParallelKind Kind = ParallelKind::None;
  uint32_t BoundsStart = 0;
  uint32_t BodyStart = 0;
  uint32_t ExitPc = 0;
  /// Registers holding init/limit/step after the bounds segment ran.
  uint16_t LoReg = 0;
  uint16_t HiReg = 0;
  uint16_t StepReg = 0;
  Type *IVType = nullptr;
  /// Induction variable slot: frame offset, or a global's VarDecl.
  uint64_t IVFrameOff = 0;
  const VarDecl *IVGlobal = nullptr;
};

struct BytecodeFunction {
  const Function *F = nullptr;
  uint64_t FrameSize = 1;
  struct ParamSlot {
    uint64_t Off = 0;
    Type *T = nullptr;
  };
  std::vector<ParamSlot> Params;
  std::vector<BCInst> Code; ///< empty for declarations
  std::vector<BCForMeta> Fors;
  std::vector<std::string> TrapMsgs;
  uint16_t NumRegs = 0;
};

/// A module lowered against one cost table. Immutable once built; safe to
/// share across threads and interpreter instances.
struct BytecodeModule {
  CostModel Costs;
  /// Aligned with Module::getFunctions() order.
  std::vector<BytecodeFunction> Funcs;
  std::map<const Function *, uint32_t> Index;
};

/// Lowers every defined function of \p M against \p Costs.
std::shared_ptr<const BytecodeModule> lowerToBytecode(Module &M,
                                                      const CostModel &Costs);

/// Runs entry function \p F (already validated: defined, no parameters) on
/// the bytecode engine, mirroring the tree-walker's invokeEntry. Results are
/// left in \p S.
void runBytecodeEntry(ExecState &S, const BytecodeModule &BM,
                      const Function *F);

} // namespace gdse

#endif // GDSE_INTERP_BYTECODE_H
