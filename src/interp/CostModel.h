//===- CostModel.h - VM cycle cost model ------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic cycle costs charged by the VM. The paper measured wall-clock
/// time on an 8-core Opteron; this host has a single core, so speedups are
/// produced by a simulated multicore timeline over these per-operation costs
/// (see DESIGN.md, substitution table). Constants are centralized so the
/// ablation benches can vary them.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_COSTMODEL_H
#define GDSE_INTERP_COSTMODEL_H

#include <cstdint>

namespace gdse {

/// Cycle costs for one simulated core.
struct CostModel {
  /// Charged per expression node evaluated.
  uint64_t ExprBase = 1;
  /// Extra cost of a memory load / store (beyond ExprBase).
  uint64_t Load = 3;
  uint64_t Store = 3;
  /// Extra cost of integer division/remainder and of sqrt.
  uint64_t DivRem = 12;
  /// Call/return bookkeeping of a user function call.
  uint64_t Call = 12;
  /// Allocator costs.
  uint64_t Alloc = 60;
  uint64_t Free = 30;
  /// Per-byte cost of memcpy/memset/calloc-zeroing.
  uint64_t PerByteCopy = 1;
  /// Parallel runtime: one-time fork/join of a team (GOMP-like).
  uint64_t ForkJoin = 2000;
  /// DOALL static chunk startup per thread.
  uint64_t ChunkStartup = 150;
  /// DOACROSS dynamic self-scheduling cost charged per iteration dispatch
  /// (chunk size one, as in the paper §4.3).
  uint64_t IterDispatch = 120;
  /// Entry/exit bookkeeping of an ordered (cross-iteration sync) region,
  /// charged in addition to any stall time.
  uint64_t OrderedEnter = 40;

  static const CostModel &defaults() {
    static const CostModel CM;
    return CM;
  }
};

} // namespace gdse

#endif // GDSE_INTERP_COSTMODEL_H
