//===- CostModel.h - VM cycle cost model ------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic cycle costs charged by the VM. The paper measured wall-clock
/// time on an 8-core Opteron; this host has a single core, so speedups are
/// produced by a simulated multicore timeline over these per-operation costs
/// (see DESIGN.md, substitution table). Constants are centralized so the
/// ablation benches can vary them.
///
/// The named constants in gdse::costs are the single default table; both
/// execution engines (tree-walker and register bytecode) read their charges
/// from a CostModel instance initialized from this table, so the engines
/// cannot drift on cycle accounting.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_COSTMODEL_H
#define GDSE_INTERP_COSTMODEL_H

#include <cstdint>

namespace gdse {

namespace costs {

/// Charged per expression node evaluated.
inline constexpr uint64_t ExprBase = 1;
/// Extra cost of a memory load / store (beyond ExprBase).
inline constexpr uint64_t Load = 3;
inline constexpr uint64_t Store = 3;
/// Extra cost of integer division/remainder and of sqrt.
inline constexpr uint64_t DivRem = 12;
/// Division by a compile-time-constant divisor: real compilers strength-reduce
/// it to a multiply/shift sequence, so both engines charge this flat cost
/// instead of DivRem. Not a CostModel field — it is a property of the
/// strength reduction, not of the simulated machine.
inline constexpr uint64_t ConstDivisorDiv = 2;
/// Call/return bookkeeping of a user function call.
inline constexpr uint64_t Call = 12;
/// Allocator costs.
inline constexpr uint64_t Alloc = 60;
inline constexpr uint64_t Free = 30;
/// Per-byte cost of memcpy/memset/calloc-zeroing.
inline constexpr uint64_t PerByteCopy = 1;
/// Parallel runtime: one-time fork/join of a team (GOMP-like).
inline constexpr uint64_t ForkJoin = 2000;
/// DOALL static chunk startup per thread.
inline constexpr uint64_t ChunkStartup = 150;
/// DOACROSS dynamic self-scheduling cost charged per iteration dispatch
/// (chunk size one, as in the paper §4.3).
inline constexpr uint64_t IterDispatch = 120;
/// Entry/exit bookkeeping of an ordered (cross-iteration sync) region,
/// charged in addition to any stall time.
inline constexpr uint64_t OrderedEnter = 40;

} // namespace costs

/// Cycle costs for one simulated core. Field semantics are documented on the
/// gdse::costs constants the defaults come from.
struct CostModel {
  uint64_t ExprBase = costs::ExprBase;
  uint64_t Load = costs::Load;
  uint64_t Store = costs::Store;
  uint64_t DivRem = costs::DivRem;
  uint64_t Call = costs::Call;
  uint64_t Alloc = costs::Alloc;
  uint64_t Free = costs::Free;
  uint64_t PerByteCopy = costs::PerByteCopy;
  uint64_t ForkJoin = costs::ForkJoin;
  uint64_t ChunkStartup = costs::ChunkStartup;
  uint64_t IterDispatch = costs::IterDispatch;
  uint64_t OrderedEnter = costs::OrderedEnter;

  /// Exact equality over every field; the bytecode engine uses this to decide
  /// whether a precompiled module's baked-in charges match the run options.
  friend bool operator==(const CostModel &A, const CostModel &B) {
    return A.ExprBase == B.ExprBase && A.Load == B.Load && A.Store == B.Store &&
           A.DivRem == B.DivRem && A.Call == B.Call && A.Alloc == B.Alloc &&
           A.Free == B.Free && A.PerByteCopy == B.PerByteCopy &&
           A.ForkJoin == B.ForkJoin && A.ChunkStartup == B.ChunkStartup &&
           A.IterDispatch == B.IterDispatch &&
           A.OrderedEnter == B.OrderedEnter;
  }
  friend bool operator!=(const CostModel &A, const CostModel &B) {
    return !(A == B);
  }

  static const CostModel &defaults() {
    static const CostModel CM;
    return CM;
  }
};

} // namespace gdse

#endif // GDSE_INTERP_COSTMODEL_H
