//===- ExecState.cpp - Per-thread state and shared semantics ---------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/ExecState.h"

#include "interp/ParallelTimeline.h"
#include "ir/AccessInfo.h"
#include "support/Diagnostics.h"
#include "support/Support.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace gdse;

ThreadState::ThreadState(ProgramContext &P)
    : P(P), M(P.M), Ctx(P.Ctx), Opts(P.Opts), Mem(P.Mem),
      DeadlineArmed(P.Opts.Resilience.Budget.DeadlineMs != 0) {}

ThreadState::~ThreadState() = default;

bool ThreadState::deadlineExpired() {
  uint64_t D = P.DeadlineNs.load(std::memory_order_relaxed);
  if (!D || monotonicNowNs() < D)
    return false;
  trap(formatString("deadline of %llu ms exceeded",
                    static_cast<unsigned long long>(
                        Opts.Resilience.Budget.DeadlineMs)));
  return true;
}

void ThreadState::noteDegradation(unsigned LoopId, bool Watchdog,
                                  const std::string &Why) {
  LoopStats &LS = Loops[LoopId];
  ++LS.Degradations;
  if (Watchdog)
    ++LS.WatchdogFires;
  if (DiagnosticEngine *DE = Opts.Resilience.Diags) {
    // Watchdog fires are rare and each one matters; a dead pool degrades
    // every invocation, so only the loop's first hop is reported (the pool
    // failure itself was already reported once by loopPoolOrNull()).
    if (Watchdog || LS.Degradations == 1) {
      Diagnostic D;
      D.Severity = DiagSeverity::Warning;
      D.Pass = "resilience";
      D.LoopId = LoopId;
      D.Message = Why;
      DE->report(std::move(D));
    }
  }
}

namespace {

/// Shared heap-allocation wrapper: polls the wall-clock deadline (an
/// allocation boundary is a cancellation point on every engine), applies the
/// alloc-fail injection point, and converts registry failure (host OOM or
/// byte-budget breach) into an attributed out-of-memory trap. Returns 0 iff
/// the caller must bail out (a trap has been recorded).
uint64_t heapAllocOrTrap(ThreadState &S, uint64_t Size, uint32_t SiteId,
                         const char *What) {
  if (S.DeadlineArmed && S.deadlineExpired())
    return 0;
  uint64_t Base = 0;
  if (!S.injectFault(FaultInjector::Point::AllocFail))
    Base = S.Mem.allocate(Size, AllocKind::Heap, SiteId);
  if (!Base)
    S.trap(formatString("out of memory: %s of %llu bytes failed", What,
                        static_cast<unsigned long long>(Size)));
  return Base;
}

} // namespace

void ThreadState::trap(const std::string &Msg) {
  if (Trapped)
    return;
  Trapped = true;
  if (!LoopCtxStack.empty()) {
    const LoopCtx &C = LoopCtxStack.back();
    TrapLoopId = static_cast<int64_t>(C.LoopId);
    TrapIteration = static_cast<int64_t>(C.Iter);
    TrapThread = CurTid;
    TrapMessage =
        Msg + formatString(" [loop %u, iteration %llu, thread %d]", C.LoopId,
                           static_cast<unsigned long long>(C.Iter), CurTid);
  } else {
    TrapMessage = Msg;
  }
}

ScalarKind gdse::scalarKindOf(const Type *T) {
  switch (T->getKind()) {
  case Type::Kind::Int: {
    const auto *IT = cast<IntType>(T);
    switch (IT->getBits()) {
    case 8:
      return IT->isSigned() ? ScalarKind::I8 : ScalarKind::U8;
    case 16:
      return IT->isSigned() ? ScalarKind::I16 : ScalarKind::U16;
    case 32:
      return IT->isSigned() ? ScalarKind::I32 : ScalarKind::U32;
    default:
      return IT->isSigned() ? ScalarKind::I64 : ScalarKind::U64;
    }
  }
  case Type::Kind::Float:
    return cast<FloatType>(T)->getBits() == 32 ? ScalarKind::F32
                                               : ScalarKind::F64;
  case Type::Kind::Pointer:
    return ScalarKind::Ptr;
  default:
    return ScalarKind::Invalid;
  }
}

bool ThreadState::checkAccess(uint64_t Addr, uint64_t Size, const char *What) {
  if (!Opts.BoundsCheck)
    return true;
  if (Addr == 0) {
    trap(formatString("null %s of %llu bytes", What,
                      static_cast<unsigned long long>(Size)));
    return false;
  }
  if (!Mem.inBounds(Addr, Size)) {
    trap(formatString("out-of-bounds %s of %llu bytes at 0x%llx", What,
                      static_cast<unsigned long long>(Size),
                      static_cast<unsigned long long>(Addr)));
    return false;
  }
  return true;
}

VMValue ThreadState::loadScalarKind(uint64_t Addr, ScalarKind K) {
  VMValue V;
  switch (K) {
  case ScalarKind::F32: {
    float F32;
    std::memcpy(&F32, reinterpret_cast<void *>(Addr), 4);
    V.F = F32;
    return V;
  }
  case ScalarKind::F64:
    std::memcpy(&V.F, reinterpret_cast<void *>(Addr), 8);
    return V;
  case ScalarKind::Ptr: {
    uint64_t P;
    std::memcpy(&P, reinterpret_cast<void *>(Addr), 8);
    V.I = static_cast<int64_t>(P);
    return V;
  }
  default: {
    unsigned Bytes = scalarSize(K);
    int64_t Raw = 0;
    std::memcpy(&Raw, reinterpret_cast<void *>(Addr), Bytes);
    V.I = normalizeInt(Raw, Bytes * 8, K <= ScalarKind::I64);
    return V;
  }
  }
}

void ThreadState::storeScalarKind(uint64_t Addr, ScalarKind K, VMValue V) {
  switch (K) {
  case ScalarKind::F32: {
    float F32 = static_cast<float>(V.F);
    std::memcpy(reinterpret_cast<void *>(Addr), &F32, 4);
    return;
  }
  case ScalarKind::F64:
    std::memcpy(reinterpret_cast<void *>(Addr), &V.F, 8);
    return;
  case ScalarKind::Ptr: {
    uint64_t P = static_cast<uint64_t>(V.I);
    std::memcpy(reinterpret_cast<void *>(Addr), &P, 8);
    return;
  }
  default: {
    unsigned Bytes = scalarSize(K);
    int64_t Norm = normalizeInt(V.I, Bytes * 8, K <= ScalarKind::I64);
    std::memcpy(reinterpret_cast<void *>(Addr), &Norm, Bytes);
    return;
  }
  }
}

VMValue ThreadState::loadScalar(uint64_t Addr, Type *T) {
  ScalarKind K = scalarKindOf(T);
  if (K == ScalarKind::Invalid) {
    trap("scalar load of aggregate type " + T->str());
    return VMValue();
  }
  return loadScalarKind(Addr, K);
}

void ThreadState::storeScalar(uint64_t Addr, Type *T, VMValue V) {
  ScalarKind K = scalarKindOf(T);
  if (K == ScalarKind::Invalid) {
    trap("scalar store of aggregate type " + T->str());
    return;
  }
  storeScalarKind(Addr, K, V);
}

bool ThreadState::isRegisterAccess(const Expr *Loc) const {
  return gdse::isRegisterAccess(P.RegisterVars, Loc);
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

VMValue ThreadState::execBuiltinOp(Builtin B, uint32_t SiteId,
                                   const VMValue *Args, unsigned NumArgs) {
  (void)NumArgs;
  switch (B) {
  case Builtin::MallocFn: {
    int64_t N = Args[0].I;
    if (N < 0 || N > (int64_t(1) << 34)) {
      trap(formatString("malloc of invalid size %lld",
                        static_cast<long long>(N)));
      return VMValue();
    }
    charge(Opts.Costs.Alloc);
    uint64_t Base =
        heapAllocOrTrap(*this, static_cast<uint64_t>(N), SiteId, "malloc");
    if (!Base)
      return VMValue();
    if (Obs)
      Obs->onAlloc(*Mem.byBase(Base));
    return VMValue::ofInt(static_cast<int64_t>(Base));
  }
  case Builtin::CallocFn: {
    int64_t N = Args[0].I, Sz = Args[1].I;
    if (N < 0 || Sz < 0 || N * Sz > (int64_t(1) << 34)) {
      trap("calloc of invalid size");
      return VMValue();
    }
    uint64_t Size = static_cast<uint64_t>(N * Sz);
    charge(Opts.Costs.Alloc + Size * Opts.Costs.PerByteCopy);
    uint64_t Base = heapAllocOrTrap(*this, Size, SiteId, "calloc");
    if (!Base)
      return VMValue();
    if (Obs) {
      Obs->onAlloc(*Mem.byBase(Base));
      Obs->onBulkAccess(/*IsWrite=*/true, Base, Size, B, SiteId);
    }
    return VMValue::ofInt(static_cast<int64_t>(Base));
  }
  case Builtin::ReallocFn: {
    uint64_t Old = static_cast<uint64_t>(Args[0].I);
    int64_t N = Args[1].I;
    if (N < 0 || N > (int64_t(1) << 34)) {
      trap("realloc of invalid size");
      return VMValue();
    }
    uint64_t Size = static_cast<uint64_t>(N);
    if (!Old) {
      charge(Opts.Costs.Alloc);
      uint64_t Base = heapAllocOrTrap(*this, Size, SiteId, "realloc");
      if (!Base)
        return VMValue();
      if (Obs)
        Obs->onAlloc(*Mem.byBase(Base));
      return VMValue::ofInt(static_cast<int64_t>(Base));
    }
    const Allocation *A = Mem.byBase(Old);
    if (!A || A->Kind != AllocKind::Heap) {
      trap("realloc of a non-heap or non-base pointer");
      return VMValue();
    }
    uint64_t CopySize = std::min(A->Size, Size);
    charge(Opts.Costs.Alloc + Opts.Costs.Free +
           CopySize * Opts.Costs.PerByteCopy);
    uint64_t Base = heapAllocOrTrap(*this, Size, SiteId, "realloc");
    if (!Base)
      return VMValue(); // the old block stays live, as host realloc promises
    std::memcpy(reinterpret_cast<void *>(Base), reinterpret_cast<void *>(Old),
                CopySize);
    if (Obs) {
      Obs->onAlloc(*Mem.byBase(Base));
      Obs->onBulkAccess(/*IsWrite=*/false, Old, CopySize, B, SiteId);
      Obs->onBulkAccess(/*IsWrite=*/true, Base, CopySize, B, SiteId);
      Obs->onFree(*Mem.byBase(Old));
    }
    if (GuardHooksOn) {
      guardBulkRead(Old, CopySize);
      guardFree(Old, A->Size);
    }
    Mem.deallocate(Old);
    return VMValue::ofInt(static_cast<int64_t>(Base));
  }
  case Builtin::FreeFn: {
    uint64_t Ptr = static_cast<uint64_t>(Args[0].I);
    if (!Ptr)
      return VMValue();
    const Allocation *A = Mem.byBase(Ptr);
    if (!A || A->Kind != AllocKind::Heap) {
      trap(formatString("invalid free of 0x%llx",
                        static_cast<unsigned long long>(Ptr)));
      return VMValue();
    }
    charge(Opts.Costs.Free);
    if (Obs)
      Obs->onFree(*A);
    if (GuardHooksOn)
      guardFree(Ptr, A->Size);
    Mem.deallocate(Ptr);
    return VMValue();
  }
  case Builtin::MemcpyFn: {
    uint64_t D = static_cast<uint64_t>(Args[0].I);
    uint64_t S = static_cast<uint64_t>(Args[1].I);
    int64_t N = Args[2].I;
    if (N < 0) {
      trap("memcpy with negative size");
      return VMValue();
    }
    uint64_t Size = static_cast<uint64_t>(N);
    if (!checkAccess(D, Size, "memcpy dest") ||
        !checkAccess(S, Size, "memcpy src"))
      return VMValue();
    charge(Size * Opts.Costs.PerByteCopy);
    if (Obs) {
      Obs->onBulkAccess(false, S, Size, B, SiteId);
      Obs->onBulkAccess(true, D, Size, B, SiteId);
    }
    if (GuardHooksOn) {
      guardBulkRead(S, Size);
      guardBulkWrite(D, Size);
    }
    std::memmove(reinterpret_cast<void *>(D), reinterpret_cast<void *>(S),
                 Size);
    return VMValue::ofInt(static_cast<int64_t>(D));
  }
  case Builtin::MemsetFn: {
    uint64_t D = static_cast<uint64_t>(Args[0].I);
    int64_t V = Args[1].I;
    int64_t N = Args[2].I;
    if (N < 0) {
      trap("memset with negative size");
      return VMValue();
    }
    uint64_t Size = static_cast<uint64_t>(N);
    if (!checkAccess(D, Size, "memset dest"))
      return VMValue();
    charge(Size * Opts.Costs.PerByteCopy);
    if (Obs)
      Obs->onBulkAccess(true, D, Size, B, SiteId);
    if (GuardHooksOn)
      guardBulkWrite(D, Size);
    std::memset(reinterpret_cast<void *>(D), static_cast<int>(V), Size);
    return VMValue::ofInt(static_cast<int64_t>(D));
  }
  case Builtin::PrintInt:
    Output += formatString("%lld\n", static_cast<long long>(Args[0].I));
    return VMValue();
  case Builtin::PrintFloat:
    Output += formatString("%.6g\n", Args[0].F);
    return VMValue();
  case Builtin::AbsFn: {
    int64_t V = Args[0].I;
    return VMValue::ofInt(V < 0 ? -V : V);
  }
  case Builtin::FabsFn:
    return VMValue::ofFloat(std::fabs(Args[0].F));
  case Builtin::SqrtFn:
    // The DivRem charge was applied by the caller before argument
    // evaluation (see the declaration comment).
    return VMValue::ofFloat(std::sqrt(Args[0].F));
  case Builtin::ExitFn:
    ExitCode = Args[0].I;
    Halted = true;
    return VMValue();
  case Builtin::RtPrivPtr:
    return rtPrivTranslate(static_cast<uint64_t>(Args[0].I));
  case Builtin::None:
    break;
  }
  gdse_unreachable("unhandled builtin");
}

VMValue ThreadState::rtPrivTranslate(uint64_t Ptr) {
  const Allocation *A = Mem.containing(Ptr);
  if (!A) {
    trap("rtpriv_ptr of a dangling pointer");
    return VMValue();
  }
  ++RtPrivTranslations;
  charge(Opts.Costs.Alloc / 2); // hash lookup + bookkeeping per access
  auto Key = std::make_pair(CurTid, A->Base);
  auto It = RtShadow.find(Key);
  if (It == RtShadow.end()) {
    uint64_t Shadow = heapAllocOrTrap(*this, A->Size, 0, "rtpriv shadow");
    if (!Shadow)
      return VMValue();
    std::memcpy(reinterpret_cast<void *>(Shadow),
                reinterpret_cast<void *>(A->Base), A->Size);
    charge(Opts.Costs.Alloc + A->Size * Opts.Costs.PerByteCopy);
    RtPrivBytesCopied += A->Size;
    It = RtShadow.emplace(Key, Shadow).first;
  }
  return VMValue::ofInt(static_cast<int64_t>(It->second + (Ptr - A->Base)));
}

void ThreadState::rtPrivCommitAll() {
  for (auto &[Key, Shadow] : RtShadow) {
    const Allocation *A = Mem.byBase(Shadow);
    if (A) {
      charge(A->Size * Opts.Costs.PerByteCopy + Opts.Costs.Free);
      RtPrivBytesCopied += A->Size;
      Mem.deallocate(Shadow);
    }
  }
  RtShadow.clear();
}

//===----------------------------------------------------------------------===//
// Guarded execution (see Guard.h)
//===----------------------------------------------------------------------===//
//
// The guard is deliberately invisible to every virtual metric: it charges no
// cycles, emits no observer events, and allocates its shadow on the host, so
// a clean Check/Fallback run is bit-identical to an Off run (EngineDiffTest
// enforces this). All hooks funnel through this shared core, which is what
// keeps the two engines' guard behavior identical too.

ThreadState::GuardRegion *ThreadState::guardRegionContaining(uint64_t Addr) {
  if (GuardRegionHit >= 0 &&
      static_cast<size_t>(GuardRegionHit) < GuardRegions.size()) {
    GuardRegion &R = GuardRegions[GuardRegionHit];
    if (Addr - R.Base < R.Size)
      return &R;
  }
  for (size_t I = 0; I != GuardRegions.size(); ++I) {
    GuardRegion &R = GuardRegions[I];
    if (Addr - R.Base < R.Size) {
      GuardRegionHit = static_cast<int>(I);
      return &R;
    }
  }
  return nullptr;
}

void ThreadState::guardViolation(ViolationKind K, unsigned LoopId,
                                 unsigned Cls, uint64_t Iter, int Tid,
                                 uint64_t Addr, uint32_t Access) {
  ++Loops[LoopId].GuardViolations;
  for (DependenceViolation &V : GuardViolationLog)
    if (V.LoopId == LoopId && V.ClassIndex == Cls && V.Kind == K) {
      ++V.Count;
      return;
    }
  DependenceViolation V;
  V.Kind = K;
  V.LoopId = LoopId;
  V.ClassIndex = Cls;
  V.Iteration = Iter;
  V.Thread = Tid;
  V.Addr = Addr;
  V.Access = Access;
  GuardViolationLog.push_back(V);
  if (Opts.GuardDiags && !SuppressGuardDiags) {
    Diagnostic D;
    // In fallback mode the run recovers (serial re-execution / last-value
    // copy-out), so the violation is a warning; in check mode the result is
    // known wrong, so it is an error.
    D.Severity = Opts.Guard == GuardMode::Fallback ? DiagSeverity::Warning
                                                   : DiagSeverity::Error;
    D.Pass = "guard";
    D.LoopId = LoopId;
    D.Message = V.str();
    Opts.GuardDiags->report(std::move(D));
  }
}

void ThreadState::guardSetupRegions(const GuardPlan *GP, unsigned NumThreads) {
  GuardRegions.clear();
  GuardRegionHit = -1;
  GuardHasComm = false;
  Mem.forEachLive([&](const Allocation &A) {
    if (A.Kind != AllocKind::Heap || !A.SiteId)
      return;
    auto CIt = GP->CommSiteClass.find(A.SiteId);
    bool Comm = CIt != GP->CommSiteClass.end();
    if (!Comm && !GP->RegionSites.count(A.SiteId))
      return;
    GuardRegion R;
    R.Base = A.Base;
    R.Size = A.Size;
    R.Span = A.Size / NumThreads;
    R.SiteId = A.SiteId;
    if (!R.Span)
      return;
    if (Comm) {
      // Commit-time-merge mode: no first-write shadow. The class's RMW loads
      // are carried by construction (that is what the commutativity proof
      // licenses), so per-byte exposure tracking would only report what the
      // witness already justified; the violations that remain possible are
      // foreign touches and members escaping their copy's span.
      R.Commutative = true;
      R.CommClass = CIt->second;
      GuardHasComm = true;
    } else {
      R.WriteIter.assign(A.Size, UINT32_MAX);
      R.WriteTid.assign(A.Size, -1);
      R.WriteClass.assign(A.Size, -1);
    }
    GuardRegions.push_back(std::move(R));
  });
}

void ThreadState::guardTeardownRegions() {
  GuardRegions.clear();
  GuardRegionHit = -1;
  GuardHasComm = false;
}

void ThreadState::guardLoad(uint32_t Id, uint64_t Addr, uint64_t Size) {
  if (GuardActive) {
    const ProgramContext::GuardAccess *GA = nullptr;
    if (Id != InvalidAccessId) {
      auto It = P.GuardAccessMap.find(Id);
      if (It != P.GuardAccessMap.end() && It->second.LoopId == GuardLoop)
        GA = &It->second;
    }
    if (GA && !GA->Commutative) {
      unsigned Cls = GA->Class;
      ++Loops[GuardLoop].GuardChecks;
      GuardRegion *R = guardRegionContaining(Addr);
      uint64_t Tid = static_cast<uint64_t>(CurTid);
      uint64_t Last = Size ? Size - 1 : 0;
      if (!R) {
        // Outside every guarded region: either a dynamic instance the
        // rewrite left shared (zero-span fat pointer), or a fat-pointer
        // metadata read, which shares the data access's id (Promote.cpp).
        // Neither is this plan's to validate.
      } else if (R->Commutative) {
        // A claimed-private access reading another class's commutative
        // region observes a partial accumulator the merge has not folded.
        guardViolation(ViolationKind::NonCommutativeTouch, GuardLoop,
                       R->CommClass, GuardIter, CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      } else if ((Addr - R->Base) / R->Span != Tid ||
                 (Addr - R->Base + Last) / R->Span != Tid) {
        guardViolation(ViolationKind::SpanEscape, GuardLoop, Cls, GuardIter,
                       CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      } else {
        uint64_t O = Addr - R->Base;
        for (uint64_t B = 0; B != Size; ++B) {
          uint32_t WI = R->WriteIter[O + B];
          if (WI == static_cast<uint32_t>(GuardIter))
            continue;
          // First touch is a read (never written this invocation): the load
          // is upwards-exposed. Written by an earlier iteration: a carried
          // flow into the "private" class.
          guardViolation(WI == UINT32_MAX ? ViolationKind::UpwardsExposedLoad
                                          : ViolationKind::CarriedFlow,
                         GuardLoop, Cls, GuardIter, CurTid, Addr + B, Id);
          if (Opts.Guard == GuardMode::Fallback)
            GuardTripped = true;
          break;
        }
      }
    } else if (GA) {
      // Commutative member: the RMW load of its own copy is licensed; the
      // only checkable facts are that it stays inside that copy's span of a
      // region of its own class.
      ++Loops[GuardLoop].GuardChecks;
      GuardRegion *R = guardRegionContaining(Addr);
      uint64_t Tid = static_cast<uint64_t>(CurTid);
      uint64_t Last = Size ? Size - 1 : 0;
      if (R && (!R->Commutative || R->CommClass != GA->Class ||
                (Addr - R->Base) / R->Span != Tid ||
                (Addr - R->Base + Last) / R->Span != Tid)) {
        guardViolation(ViolationKind::SpanEscape, GuardLoop, GA->Class,
                       GuardIter, CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      }
    } else if (GuardHasComm) {
      // Unclaimed load: normally not this plan's to validate, but reading a
      // commutative region mid-loop observes a partial accumulator — the
      // "every carried use is one reduction op" claim was wrong.
      GuardRegion *R = guardRegionContaining(Addr);
      if (R && R->Commutative) {
        guardViolation(ViolationKind::NonCommutativeTouch, GuardLoop,
                       R->CommClass, GuardIter, CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      }
    }
  }
  if (!GuardWatch.empty())
    guardWatchLoad(Addr, Size);
}

void ThreadState::guardStore(uint32_t Id, uint64_t Addr, uint64_t Size) {
  if (GuardActive) {
    GuardRegion *R = guardRegionContaining(Addr);
    const ProgramContext::GuardAccess *GA = nullptr;
    if (Id != InvalidAccessId) {
      auto It = P.GuardAccessMap.find(Id);
      if (It != P.GuardAccessMap.end() && It->second.LoopId == GuardLoop)
        GA = &It->second;
    }
    int32_t Cls = -1;
    if (GA && !GA->Commutative) {
      Cls = static_cast<int32_t>(GA->Class);
      ++Loops[GuardLoop].GuardChecks;
      uint64_t Tid = static_cast<uint64_t>(CurTid);
      uint64_t Last = Size ? Size - 1 : 0;
      // As in guardLoad: addresses outside every region are shared or
      // metadata instances, not escapes.
      if (R && R->Commutative) {
        guardViolation(ViolationKind::NonCommutativeTouch, GuardLoop,
                       R->CommClass, GuardIter, CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      } else if (R && ((Addr - R->Base) / R->Span != Tid ||
                       (Addr - R->Base + Last) / R->Span != Tid)) {
        guardViolation(ViolationKind::SpanEscape, GuardLoop,
                       static_cast<unsigned>(Cls), GuardIter, CurTid, Addr,
                       Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      }
    } else if (GA) {
      // Commutative member: must stay inside its own copy's span of a
      // region of its own class. Aliasing into a first-write-shadowed
      // region falls through to the stamp below as a foreign (Cls = -1)
      // write, exactly like any unclaimed store.
      ++Loops[GuardLoop].GuardChecks;
      uint64_t Tid = static_cast<uint64_t>(CurTid);
      uint64_t Last = Size ? Size - 1 : 0;
      if (R && R->Commutative &&
          (R->CommClass != GA->Class ||
           (Addr - R->Base) / R->Span != Tid ||
           (Addr - R->Base + Last) / R->Span != Tid)) {
        guardViolation(ViolationKind::SpanEscape, GuardLoop, GA->Class,
                       GuardIter, CurTid, Addr, Id);
        if (Opts.Guard == GuardMode::Fallback)
          GuardTripped = true;
      }
    } else if (R && R->Commutative) {
      // Unclaimed (or bulk) store into a commutative region clobbers
      // partial accumulators behind the merge's back.
      guardViolation(ViolationKind::NonCommutativeTouch, GuardLoop,
                     R->CommClass, GuardIter, CurTid, Addr, Id);
      if (Opts.Guard == GuardMode::Fallback)
        GuardTripped = true;
    }
    if (R && !R->Commutative) {
      // Stamp the first-write shadow. Every write counts — shared (copy 0)
      // stores included — because any of them can satisfy or break a later
      // private read.
      uint64_t O = Addr - R->Base;
      uint64_t End = std::min(O + Size, R->Size);
      for (uint64_t Pos = O; Pos < End; ++Pos) {
        R->WriteIter[Pos] = static_cast<uint32_t>(GuardIter);
        R->WriteTid[Pos] = static_cast<int8_t>(CurTid);
        R->WriteClass[Pos] = Cls;
        if (Pos >= R->Span) {
          uint64_t Norm = Pos % R->Span;
          R->PrivMin = std::min(R->PrivMin, Norm);
          R->PrivMax = std::max(R->PrivMax, Norm);
        }
      }
    }
  }
  if (!GuardWatch.empty())
    guardWatchStore(Addr, Size);
}

void ThreadState::guardBulkRead(uint64_t Addr, uint64_t Size) {
  if (!GuardWatch.empty())
    guardWatchLoad(Addr, Size);
}

void ThreadState::guardBulkWrite(uint64_t Addr, uint64_t Size) {
  if (GuardActive)
    guardStore(InvalidAccessId, Addr, Size);
  else if (!GuardWatch.empty())
    guardWatchStore(Addr, Size);
}

void ThreadState::guardFree(uint64_t Base, uint64_t Size) {
  if (!GuardWatch.empty())
    guardWatchStore(Base, Size);
  if (GuardActive)
    for (size_t I = 0; I != GuardRegions.size(); ++I)
      if (GuardRegions[I].Base == Base) {
        GuardRegions.erase(GuardRegions.begin() + static_cast<ptrdiff_t>(I));
        GuardRegionHit = -1;
        break;
      }
}

void ThreadState::guardWatchLoad(uint64_t Addr, uint64_t Size) {
  auto It = GuardWatch.lower_bound(Addr);
  if (It == GuardWatch.end() || It->first >= Addr + Size)
    return;
  // A post-loop read of a byte whose serially-final value was left in a
  // discarded thread copy: the store that produced it was downwards-exposed.
  GuardWatchByte W = It->second;
  guardViolation(ViolationKind::DownwardsExposedStore, W.LoopId, W.Class,
                 W.Iter, W.Tid, It->first, InvalidAccessId);
  if (Opts.Guard == GuardMode::Fallback) {
    // LRPD last-value copy-out: patch every watched byte with its serial
    // value before the load consumes anything, then drop the watch — from
    // here on execution sees exactly the serial program's data.
    for (auto &[A, WB] : GuardWatch)
      *reinterpret_cast<uint8_t *>(A) = WB.Value;
    ++Loops[W.LoopId].GuardFallbacks;
    GuardWatch.clear();
    updateGuardHooks();
  }
}

void ThreadState::guardWatchStore(uint64_t Addr, uint64_t Size) {
  auto It = GuardWatch.lower_bound(Addr);
  bool Erased = false;
  while (It != GuardWatch.end() && It->first < Addr + Size) {
    It = GuardWatch.erase(It);
    Erased = true;
  }
  if (Erased)
    updateGuardHooks();
}

void ThreadState::guardCommit(const GuardPlan *GP, unsigned NumThreads) {
  for (GuardRegion &R : GuardRegions) {
    if (R.Commutative)
      continue; // reconciled by the generated merge IR, which runs after
                // this commit and must not trip a divergence watch
    if (R.PrivMin > R.PrivMax)
      continue; // no write ever landed in a copy > 0
    for (uint64_t Norm = R.PrivMin; Norm <= R.PrivMax && Norm < R.Span;
         ++Norm) {
      // The serially-final value of logical byte Norm is the one written by
      // the latest iteration, whichever copy it landed in.
      bool Any = false;
      uint32_t BestIter = 0;
      uint64_t BestOff = 0;
      for (unsigned S = 0; S != NumThreads; ++S) {
        uint64_t Pos = static_cast<uint64_t>(S) * R.Span + Norm;
        if (Pos >= R.Size)
          break;
        uint32_t WI = R.WriteIter[Pos];
        if (WI == UINT32_MAX)
          continue;
        if (!Any || WI >= BestIter) {
          Any = true;
          BestIter = WI;
          BestOff = Pos;
        }
      }
      if (!Any || BestOff / R.Span == 0)
        continue; // copy 0 already holds the final value
      uint8_t Final = *reinterpret_cast<uint8_t *>(R.Base + BestOff);
      uint8_t Cur = *reinterpret_cast<uint8_t *>(R.Base + Norm);
      if (Final == Cur)
        continue; // coincidentally identical: divergence is unobservable
      GuardWatchByte W;
      W.Value = Final;
      W.LoopId = GP->LoopId;
      W.Class = R.WriteClass[BestOff] >= 0
                    ? static_cast<unsigned>(R.WriteClass[BestOff])
                    : 0;
      W.Iter = BestIter;
      W.Tid = R.WriteTid[BestOff];
      GuardWatch[R.Base + Norm] = W;
    }
  }
  updateGuardHooks();
}

//===----------------------------------------------------------------------===//
// Counted loops
//===----------------------------------------------------------------------===//

Flow ThreadState::runForLoop(unsigned LoopId, ParallelKind Kind, Type *IVType,
                             const std::function<void(ForBounds &)> &EvalBounds,
                             const std::function<Flow()> &Body,
                             const ThreadLoopHooks *Host) {
  bool Parallel =
      Opts.SimulateParallel && Kind != ParallelKind::None && !InParallelLoop;
  if (Parallel && threadedEligible(LoopId, Kind, Host)) {
    // First rung of the degradation ladder: a dead worker pool (thread
    // creation failed, or an injected worker-start fault) sends the
    // invocation down to the simulated serial-order path — bit-identical by
    // construction — instead of crashing or trapping.
    if (ThreadPool *Pool = P.loopPoolOrNull())
      return runForThreaded(LoopId, Kind, IVType, EvalBounds, Body, *Host,
                            *Pool);
    noteDegradation(LoopId, /*Watchdog=*/false,
                    "degrading to the simulated serial-order path: worker "
                    "pool unavailable");
  }
  if (Parallel)
    return runForParallel(LoopId, Kind, IVType, EvalBounds, Body);
  return runForSerial(LoopId, Kind, IVType, EvalBounds, Body);
}

bool ThreadState::threadedEligible(unsigned LoopId, ParallelKind Kind,
                                   const ThreadLoopHooks *Host) const {
  // The engine must have offered host execution at all (only the bytecode
  // engine does, and only under ExecEngine::Threads), and the induction
  // variable must live in the frame the runner is about to privatize.
  if (!Host || !Host->MakeWorker || !Host->IVInFrame)
    return false;
  if (Opts.Engine != ExecEngine::Threads || Opts.NumThreads < 2)
    return false;
  // An installed observer expects the serial-order event stream; a cycle
  // budget (legacy MaxCycles or the resilience budget's cap, folded into
  // EffMaxCycles) needs a monotonic global cycle counter; an armed guard
  // watch must see every access in serial order. All three force the
  // simulated path. Wall-clock deadlines and byte budgets are order-free
  // and stay threaded-compatible.
  if (Obs || P.EffMaxCycles != 0 || !GuardWatch.empty())
    return false;
  const ProgramContext::LoopTraits *T = P.loopTraits(LoopId);
  // Runtime privatization keeps a serial-order shadow map: simulate.
  if (!T || T->UsesRtPriv)
    return false;
  const unsigned N = static_cast<unsigned>(std::max(1, Opts.NumThreads));
  const GuardPlan *GP = nullptr;
  if (Opts.Guard != GuardMode::Off && N <= 127) {
    auto It = P.GuardPlanOf.find(LoopId);
    if (It != P.GuardPlanOf.end())
      GP = It->second;
  }
  // Fallback speculation checkpoints and re-runs serially; the threaded
  // runner only supports check-mode guarding (per-worker shadow merge).
  if (GP && Opts.Guard == GuardMode::Fallback)
    return false;
  // DOACROSS virtual thread assignment (argmin of the simulated timeline) is
  // only known after the fact, so bodies that observe __tid, and guard
  // shadows that stamp it, cannot run on real threads in DOACROSS form.
  if (Kind == ParallelKind::DOACROSS && (T->UsesTid || GP))
    return false;
  return true;
}

Flow ThreadState::runForSerial(unsigned LoopId, ParallelKind Kind,
                               Type *IVType,
                               const std::function<void(ForBounds &)> &EvalBounds,
                               const std::function<Flow()> &Body) {
  LoopStats &LS = Loops[LoopId];
  LS.Kind = Kind;
  ++LS.Invocations;
  uint64_t Before = Cycles;

  ForBounds B;
  EvalBounds(B);
  if (dead())
    return Flow::Halt;
  if (B.Step <= 0) {
    trap("for loop with non-positive step");
    return Flow::Halt;
  }
  uint64_t IVSize = Ctx.getLayout(IVType).Size;
  if (Obs)
    Obs->onLoopEnter(LoopId);
  LoopCtxStack.push_back({LoopId, 0});
  uint64_t Iter = 0;
  Flow Result = Flow::Normal;
  for (int64_t I = B.Lo; I < B.Hi; I += B.Step) {
    LoopCtxStack.back().Iter = Iter;
    if (!checkBudget()) {
      Result = Flow::Halt;
      break;
    }
    storeScalar(B.IVAddr, IVType, VMValue::ofInt(I));
    if (Obs) {
      Obs->onLoopIter(LoopId, Iter);
      // Loop-control store of the induction variable: reported with the
      // invalid id so the profiler treats it as a definition but never
      // builds dependence edges to it.
      Obs->onStore(InvalidAccessId, B.IVAddr, IVSize);
    }
    ++Iter;
    charge(Opts.Costs.ExprBase * 2); // increment + compare
    Flow FL = Body();
    if (FL == Flow::Break)
      break;
    if (FL == Flow::Return || FL == Flow::Halt) {
      Result = FL;
      break;
    }
    // Re-read the induction variable: the body may legally not touch it,
    // but a transformed body never modifies it.
    I = loadScalar(B.IVAddr, IVType).I;
  }
  LoopCtxStack.pop_back();
  if (Obs)
    Obs->onLoopExit(LoopId);
  LS.Iterations += Iter;
  LS.WorkCycles += Cycles - Before;
  LS.SimTime += Cycles - Before;
  return Result;
}

Flow ThreadState::runForParallel(
    unsigned LoopId, ParallelKind Kind, Type *IVType,
    const std::function<void(ForBounds &)> &EvalBounds,
    const std::function<Flow()> &Body) {
  const unsigned N = static_cast<unsigned>(std::max(1, Opts.NumThreads));

  // Guarded execution: look up this loop's plan. Thread ids are stored in an
  // int8 shadow, so guarding is skipped outright for N > 127 (no such
  // configuration exists in practice).
  const GuardPlan *GP = nullptr;
  if (Opts.Guard != GuardMode::Off && N <= 127) {
    auto GIt = P.GuardPlanOf.find(LoopId);
    if (GIt != P.GuardPlanOf.end())
      GP = GIt->second;
  }
  // Fallback mode re-executes a tripped invocation serially, so everything
  // the invocation can touch is checkpointed up front: VM memory (metadata
  // and contents) plus the scalar run state below. The checkpoint is taken
  // before any of this invocation's bookkeeping so the serial re-run starts
  // from a truly pre-invocation world.
  bool Speculate = GP && Opts.Guard == GuardMode::Fallback;
  uint64_t SavedCycles = 0;
  int64_t SavedTimeAdjust = 0;
  std::string SavedOutput;
  std::map<unsigned, LoopStats> SavedLoops;
  std::map<std::pair<int, uint64_t>, uint64_t> SavedRtShadow;
  std::map<uint64_t, GuardWatchByte> SavedWatch;
  uint64_t SavedRtPrivTranslations = 0, SavedRtPrivBytesCopied = 0;
  int64_t SavedExitCode = 0;
  VMValue SavedReturnValue;
  bool SavedHalted = false;
  if (Speculate) {
    Mem.beginSpeculation();
    SavedCycles = Cycles;
    SavedTimeAdjust = TimeAdjust;
    SavedOutput = Output;
    SavedLoops = Loops;
    SavedRtShadow = RtShadow;
    SavedWatch = GuardWatch;
    SavedRtPrivTranslations = RtPrivTranslations;
    SavedRtPrivBytesCopied = RtPrivBytesCopied;
    SavedExitCode = ExitCode;
    SavedReturnValue = ReturnValue;
    SavedHalted = Halted;
  }

  LoopStats &LS = Loops[LoopId];
  LS.Kind = Kind;
  ++LS.Invocations;
  if (LS.WorkPerThread.size() != N) {
    LS.WorkPerThread.assign(N, 0);
    LS.SyncStallPerThread.assign(N, 0);
    LS.IdlePerThread.assign(N, 0);
    LS.DispatchPerThread.assign(N, 0);
  }

  uint64_t Before = Cycles;
  ForBounds B;
  EvalBounds(B);
  if (dead()) {
    if (Speculate)
      Mem.commitSpeculation();
    return Flow::Halt;
  }
  if (B.Step <= 0) {
    trap("parallel for loop with non-positive step");
    if (Speculate)
      Mem.commitSpeculation();
    return Flow::Halt;
  }
  uint64_t Total =
      B.Hi > B.Lo ? static_cast<uint64_t>((B.Hi - B.Lo + B.Step - 1) / B.Step)
                  : 0;
  uint64_t IVSize = Ctx.getLayout(IVType).Size;

  if (Obs)
    Obs->onLoopEnter(LoopId);
  LoopCtxStack.push_back({LoopId, 0});
  InParallelLoop = true;
  RecordOrdered = Kind == ParallelKind::DOACROSS;

  if (GP) {
    guardSetupRegions(GP, N);
    if (GuardRegions.empty()) {
      // None of the plan's expanded structures are live (e.g. the loop runs
      // before its allocations): nothing to validate against this time.
      GP = nullptr;
      if (Speculate) {
        Mem.commitSpeculation();
        Speculate = false;
      }
    } else {
      GuardActive = true;
      GuardTripped = false;
      GuardLoop = LoopId;
      updateGuardHooks();
      ++LS.GuardedInvocations;
    }
  }

  bool DOALL = Kind == ParallelKind::DOALL;
  ParallelTimeline TL(Opts.Costs, N, DOALL);
  uint64_t Chunk = DOALL ? std::max<uint64_t>(1, (Total + N - 1) / N) : 1;

  Flow Result = Flow::Normal;
  bool DoFallback = false;
  for (uint64_t It = 0; It != Total; ++It) {
    LoopCtxStack.back().Iter = It;
    GuardIter = It;
    if (!checkBudget()) {
      Result = Flow::Halt;
      break;
    }
    unsigned T = DOALL
                     ? static_cast<unsigned>(std::min<uint64_t>(It / Chunk,
                                                                N - 1))
                     : TL.dispatchDoacross();
    CurTid = static_cast<int>(T);

    int64_t IVal = B.Lo + static_cast<int64_t>(It) * B.Step;
    storeScalar(B.IVAddr, IVType, VMValue::ofInt(IVal));
    if (Obs) {
      Obs->onLoopIter(LoopId, It);
      Obs->onStore(InvalidAccessId, B.IVAddr, IVSize);
    }

    OrderedEvents.clear();
    IterStartCycles = Cycles;
    uint64_t C0 = Cycles;
    Flow FL = Body();
    uint64_t W = Cycles - C0;

    // Fault injection: a spurious dependence violation at the iteration
    // boundary of a guarded invocation, exercising the check/fallback paths
    // without needing a program that actually races.
    if (GuardActive && injectFault(FaultInjector::Point::GuardViolation)) {
      guardViolation(ViolationKind::CarriedFlow, GuardLoop, 0, It, CurTid, 0,
                     InvalidAccessId);
      if (Opts.Guard == GuardMode::Fallback)
        GuardTripped = true;
    }

    // A tripped guard abandons the speculative run at the iteration
    // boundary, before any trap from this iteration is inspected: the serial
    // re-execution decides what really happens (including re-raising a trap
    // the mis-speculated state may have caused spuriously).
    if (Speculate && GuardTripped) {
      DoFallback = true;
      break;
    }

    if (FL == Flow::Break || FL == Flow::Return) {
      trap("break/return escaping a parallel loop");
      Result = Flow::Halt;
      break;
    }
    if (FL == Flow::Halt) {
      Result = Flow::Halt;
      break;
    }

    TL.completeIter(T, W, OrderedEvents);
  }

  RecordOrdered = false;
  InParallelLoop = false;
  CurTid = 0;
  LoopCtxStack.pop_back();

  if (DoFallback) {
    // Rollback: restore the pre-invocation world exactly, then run the loop
    // serially on the original (copy-0) structures. Guard counters from the
    // abandoned attempt are re-applied on top of the restored stats so the
    // attempt stays visible in the accounting.
    LoopStats Snap = Loops[LoopId];
    Mem.rollbackSpeculation();
    Cycles = SavedCycles;
    TimeAdjust = SavedTimeAdjust;
    Output = std::move(SavedOutput);
    Loops = std::move(SavedLoops);
    RtShadow = std::move(SavedRtShadow);
    GuardWatch = std::move(SavedWatch);
    RtPrivTranslations = SavedRtPrivTranslations;
    RtPrivBytesCopied = SavedRtPrivBytesCopied;
    ExitCode = SavedExitCode;
    ReturnValue = SavedReturnValue;
    Halted = SavedHalted;
    Trapped = false;
    TrapMessage.clear();
    TrapLoopId = -1;
    TrapIteration = -1;
    TrapThread = -1;
    GuardActive = false;
    GuardTripped = false;
    guardTeardownRegions();
    updateGuardHooks();
    LoopStats &L2 = Loops[LoopId];
    L2.Kind = Kind;
    L2.GuardedInvocations = Snap.GuardedInvocations;
    L2.GuardChecks = Snap.GuardChecks;
    L2.GuardViolations = Snap.GuardViolations;
    ++L2.GuardFallbacks;
    if (Obs)
      Obs->onLoopExit(LoopId);
    return runForSerial(LoopId, Kind, IVType, EvalBounds, Body);
  }

  if (GuardActive) {
    // Clean (or check-mode) guarded invocation: commit. The divergence scan
    // arms the post-loop watch that catches output-dependence
    // misclassifications the in-loop checks cannot see.
    GuardActive = false;
    guardCommit(GP, N);
    guardTeardownRegions();
    updateGuardHooks();
  }
  if (Speculate)
    Mem.commitSpeculation();

  rtPrivCommitAll();
  if (Obs)
    Obs->onLoopExit(LoopId);

  uint64_t WorkDelta = Cycles - Before;
  uint64_t SimTime = TL.maxReady() + Opts.Costs.ForkJoin;

  LS.Iterations += Total;
  LS.WorkCycles += WorkDelta;
  LS.SimTime += SimTime;
  TL.accumulate(LS);

  // Program simulated time: replace this loop's work span by its simulated
  // duration.
  TimeAdjust +=
      static_cast<int64_t>(SimTime) - static_cast<int64_t>(WorkDelta);

  return Result;
}

//===----------------------------------------------------------------------===//
// Run scaffolding
//===----------------------------------------------------------------------===//

void ThreadState::resetRun() {
  Cycles = 0;
  TimeAdjust = 0;
  CurTid = 0;
  InParallelLoop = false;
  Trapped = false;
  Halted = false;
  TrapMessage.clear();
  TrapLoopId = -1;
  TrapIteration = -1;
  TrapThread = -1;
  EngineFault = false;
  BudgetPolls = 0;
  P.armDeadline();
  LoopCtxStack.clear();
  Output.clear();
  ExitCode = 0;
  Loops.clear();
  RtPrivTranslations = 0;
  RtPrivBytesCopied = 0;
  GuardActive = false;
  GuardTripped = false;
  GuardLoop = 0;
  GuardIter = 0;
  GuardRegions.clear();
  GuardRegionHit = -1;
  GuardHasComm = false;
  GuardViolationLog.clear();
  GuardWatch.clear();
  updateGuardHooks();

  P.resetGlobals();
}
