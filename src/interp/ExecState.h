//===- ExecState.h - Per-thread state and shared semantics ------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread half of the execution-state split (the shared half is
/// ProgramContext.h). Everything the execution engines (the tree-walking
/// reference interpreter and the register-bytecode VM) must agree on lives
/// here: the runtime value representation, memory/trap/cycle accounting,
/// builtin semantics, the runtime-privatization runtime, loop bookkeeping,
/// and — most importantly — the counted-loop driver that implements the
/// serial `for` semantics, the virtual-multicore DOALL/DOACROSS timeline,
/// and (for the Threads engine) dispatch to the real host-threaded runner in
/// ThreadedLoop.cpp. The engines differ only in how they evaluate
/// straight-line code; every observable effect (observer callbacks, cycle
/// charges at loop/region boundaries, allocation order, trap messages)
/// funnels through this one implementation, which is what makes the engines
/// bit-identical.
///
/// A ThreadState is one virtual hardware thread: it owns its cycle counter,
/// frame/output/trap state, ordered-event buffer, and guard-shadow shard,
/// and references the ProgramContext everything else hangs off. The main
/// thread's ThreadState lives for the whole run; worker ThreadStates are
/// created per host-threaded loop invocation and merged back
/// deterministically at the join (ThreadedLoop.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_EXECSTATE_H
#define GDSE_INTERP_EXECSTATE_H

#include "interp/Interp.h"
#include "interp/ProgramContext.h"
#include "ir/IR.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gdse {

/// A scalar or pointer runtime value. The engines know from the static type
/// (tree) or the instruction's ScalarKind (bytecode) which member is
/// meaningful.
struct VMValue {
  int64_t I = 0;
  double F = 0.0;

  static VMValue ofInt(int64_t V) {
    VMValue R;
    R.I = V;
    return R;
  }
  static VMValue ofFloat(double V) {
    VMValue R;
    R.F = V;
    return R;
  }
};

/// Statement-level control flow.
enum class Flow : uint8_t { Normal, Break, Continue, Return, Halt };

/// One ordered-region entry/exit observed during an iteration, as work-cycle
/// offsets from the iteration start.
struct OrderedEvent {
  unsigned RegionId = 0;
  uint64_t EntryOff = 0;
  uint64_t ExitOff = 0;
};

/// How a scalar is encoded in VM memory. The bytecode pre-resolves types to
/// this enum at lowering time; the tree-walker maps Type* to it per access.
enum class ScalarKind : uint8_t {
  I8,
  I16,
  I32,
  I64,
  U8,
  U16,
  U32,
  U64,
  F32,
  F64,
  Ptr,
  Invalid ///< aggregate — not loadable/storable as a scalar
};

/// Maps a type to its memory encoding (Invalid for aggregates).
ScalarKind scalarKindOf(const Type *T);

inline unsigned scalarSize(ScalarKind K) {
  switch (K) {
  case ScalarKind::I8:
  case ScalarKind::U8:
    return 1;
  case ScalarKind::I16:
  case ScalarKind::U16:
    return 2;
  case ScalarKind::I32:
  case ScalarKind::U32:
  case ScalarKind::F32:
    return 4;
  default:
    return 8;
  }
}

struct ThreadState;
struct DoacrossSync;

/// How an engine hands the host-threaded loop runner the means to execute
/// body iterations on worker ThreadStates. Supplied by the bytecode engine's
/// ForLoop handler (the tree-walker never threads; it stays the pure serial
/// reference). FrameBase/FrameSize describe the enclosing function frame so
/// the runner can give each worker a private copy; MakeWorker is called once
/// per worker with the worker's ThreadState and its frame copy's base, and
/// returns the thunk that runs one iteration's body segment.
struct ThreadLoopHooks {
  uint64_t FrameBase = 0;
  uint64_t FrameSize = 0;
  /// False when the induction variable lives in a global (workers would race
  /// on its slot): not eligible for host threading.
  bool IVInFrame = true;
  std::function<std::function<Flow()>(ThreadState &WS, uint64_t WorkerFrame)>
      MakeWorker;
};

/// The mutable machine state of one virtual thread plus the semantics both
/// engines share. The tree-walker's evaluator and the bytecode VM both
/// operate on this; any behavior implemented here is bit-identical across
/// engines by construction.
struct ThreadState {
  ProgramContext &P;

  // Aliases into the shared context, kept under their historical names so
  // engine code reads the same before and after the split.
  Module &M;
  TypeContext &Ctx;
  const InterpOptions &Opts;
  VMMemory &Mem;

  InterpObserver *Obs = nullptr;

  uint64_t Cycles = 0;    ///< pure work cycles
  int64_t TimeAdjust = 0; ///< SimTime - work inside parallel loops (signed)
  int CurTid = 0;
  bool InParallelLoop = false;

  /// Deadline-poll decimation counter (see checkBudget); per-thread, so
  /// workers poll independently without sharing a cache line.
  uint32_t BudgetPolls = 0;
  /// Constructor-time constant: a wall-clock deadline is configured for this
  /// run (Opts.Resilience.Budget.DeadlineMs != 0).
  const bool DeadlineArmed;

  bool Trapped = false;
  bool Halted = false;
  std::string TrapMessage;
  /// Structured trap context (satellite of the guard work): filled when the
  /// trap fired inside a counted loop, -1/-1/-1 otherwise.
  int64_t TrapLoopId = -1;
  int64_t TrapIteration = -1;
  int TrapThread = -1;
  /// The trap is an engine-level fault (see RunResult::EngineFault): the
  /// degradation ladder may retry the run on a lower engine.
  bool EngineFault = false;
  int64_t ExitCode = 0;
  VMValue ReturnValue;
  std::string Output;
  unsigned CallDepth = 0;

  /// Innermost-first stack of active counted loops, for trap attribution.
  /// Maintained by the loop drivers around their iteration loops.
  struct LoopCtx {
    unsigned LoopId = 0;
    uint64_t Iter = 0;
  };
  std::vector<LoopCtx> LoopCtxStack;

  std::map<unsigned, LoopStats> Loops;

  // Ordered-region event recording (active during DOACROSS simulation and in
  // DOACROSS worker threads).
  bool RecordOrdered = false;
  uint64_t IterStartCycles = 0;
  std::vector<OrderedEvent> OrderedEvents;

  /// Real cross-iteration synchronization for ordered regions, non-null only
  /// on worker ThreadStates inside a host-threaded DOACROSS loop. The
  /// engines call orderedRealEnter() on region entry when set.
  DoacrossSync *DX = nullptr;
  /// The iteration this worker is currently executing (ticket number).
  uint64_t DXIter = 0;

  // Runtime privatization (SpiceC-style baseline).
  std::map<std::pair<int, uint64_t>, uint64_t> RtShadow;
  uint64_t RtPrivTranslations = 0;
  uint64_t RtPrivBytesCopied = 0;

  //===------------------------------------------------------------------===//
  // Guarded execution state (see Guard.h)
  //===------------------------------------------------------------------===//

  /// One expanded structure under guard during a parallel invocation: a live
  /// allocation from a plan's RegionSites, with a per-byte first-write
  /// shadow (LRPD-style). WriteIter uses UINT32_MAX as "never written this
  /// invocation"; WriteClass is -1 for writes outside any private class.
  /// Under host threading each worker gets its own GuardRegion copies (the
  /// per-thread first-write logs); the join merges them byte-wise,
  /// latest-iteration-wins, back into the main ThreadState's regions before
  /// the ordinary commit scan runs.
  struct GuardRegion {
    uint64_t Base = 0;
    uint64_t Size = 0;
    uint64_t Span = 0; ///< bytes per thread copy (Size / NumThreads)
    uint32_t SiteId = 0;
    std::vector<uint32_t> WriteIter;
    std::vector<int8_t> WriteTid;
    std::vector<int32_t> WriteClass;
    /// Window of offsets written into copies > 0, bounding the commit scan.
    uint64_t PrivMin = UINT64_MAX;
    uint64_t PrivMax = 0;
    /// Commit-time-merge mode (the backing of a proven-commutative class):
    /// the shadow vectors stay empty — carried flow through the copies is
    /// licensed by the commutativity proof and reconciled by the generated
    /// merge IR. The region is instead watched for accesses from outside
    /// the class (NonCommutativeTouch) and for members escaping their span.
    bool Commutative = false;
    unsigned CommClass = 0;
  };
  std::vector<GuardRegion> GuardRegions;
  /// Some active region is in commit-time-merge mode: unclaimed accesses
  /// must be screened against commutative regions too (they are otherwise
  /// ignored by guardLoad, and guardStore must not stamp a missing shadow).
  bool GuardHasComm = false;

  bool GuardActive = false;  ///< inside a guarded parallel invocation
  bool GuardTripped = false; ///< violation seen in this invocation (fallback)
  bool GuardHooksOn = false; ///< GuardActive || !GuardWatch.empty()
  unsigned GuardLoop = 0;    ///< loop id of the active guarded invocation
  uint64_t GuardIter = 0;    ///< current iteration, for shadow stamps
  /// Set on worker ThreadStates: violations are logged but not reported to
  /// the diagnostic engine (the join reports merged entries once, in
  /// iteration order, exactly as a serial run would).
  bool SuppressGuardDiags = false;
  std::vector<DependenceViolation> GuardViolationLog;

  /// Post-loop watch for output-dependence misclassifications: copy-0 bytes
  /// whose serially-final value was left in a discarded thread copy at
  /// commit. A later load of such a byte (before any store) is a
  /// DownwardsExposedStore violation; in fallback mode the watch values are
  /// patched in (LRPD last-value copy-out) so execution continues with the
  /// serial program's data.
  struct GuardWatchByte {
    uint8_t Value = 0; ///< the serially-final value of this byte
    unsigned LoopId = 0;
    unsigned Class = 0;
    uint64_t Iter = 0;
    int Tid = 0;
  };
  std::map<uint64_t, GuardWatchByte> GuardWatch;

  //===------------------------------------------------------------------===//
  // Guarded execution API
  //===------------------------------------------------------------------===//

  /// Fast-path hooks: the engines call these on every scalar/aggregate
  /// access, but only when GuardHooksOn — which is permanently false in
  /// GuardMode::Off, so the unguarded cost is one predictable branch. The
  /// guard charges no cycles and emits no observer events in any mode.
  void guardLoad(uint32_t Id, uint64_t Addr, uint64_t Size);
  void guardStore(uint32_t Id, uint64_t Addr, uint64_t Size);
  /// Bulk effects (memcpy/memset/realloc) and frees, from execBuiltinOp.
  void guardBulkRead(uint64_t Addr, uint64_t Size);
  void guardBulkWrite(uint64_t Addr, uint64_t Size);
  void guardFree(uint64_t Base, uint64_t Size);

  explicit ThreadState(ProgramContext &P);
  ThreadState(const ThreadState &) = delete;
  ThreadState &operator=(const ThreadState &) = delete;
  ~ThreadState();

  //===------------------------------------------------------------------===//
  // Diagnostics and cycle accounting
  //===------------------------------------------------------------------===//

  /// Records the first trap. Traps raised inside a counted loop carry the
  /// innermost loop id, iteration, and thread — appended to the message and
  /// exposed structurally via TrapLoopId/TrapIteration/TrapThread
  /// (implemented in ExecState.cpp).
  void trap(const std::string &Msg);

  bool dead() const { return Trapped || Halted; }

  void charge(uint64_t C) { Cycles += C; }

  /// The per-iteration budget gate: the folded cycle cap (exact, checked
  /// every call) and the wall-clock deadline (polled every 64th call — the
  /// clock read is the expensive part, and a deadline is approximate by
  /// nature). Traps and returns false on breach. DeadlineArmed is a
  /// constructor-time constant, so with no deadline configured the extra
  /// cost is one predictable branch.
  bool checkBudget() {
    if (P.EffMaxCycles && Cycles > P.EffMaxCycles) {
      trap("cycle budget exceeded (runaway loop?)");
      return false;
    }
    if (DeadlineArmed && (++BudgetPolls & 63) == 0 && deadlineExpired())
      return false;
    return true;
  }

  /// True — after recording the attributed trap — when the run's armed
  /// wall-clock deadline has passed. Callers on allocation boundaries use
  /// this directly (no cycle-cap interaction there).
  bool deadlineExpired();

  /// True when the injection point \p Pt should fire now (no injector or no
  /// armed rule = never).
  bool injectFault(FaultInjector::Point Pt) {
    FaultInjector *FI = Opts.Resilience.Faults.get();
    return FI && FI->shouldFire(Pt);
  }

  /// Records one degradation hop of loop \p LoopId onto the simulated
  /// serial-order path: per-loop counters plus a structured warning through
  /// Opts.Resilience.Diags (pass "resilience").
  void noteDegradation(unsigned LoopId, bool Watchdog, const std::string &Why);

  //===------------------------------------------------------------------===//
  // Addressing and raw memory
  //===------------------------------------------------------------------===//

  /// Base address of global \p D; traps (and returns 0) when unallocated.
  uint64_t globalAddr(const VarDecl *D) {
    uint64_t Addr = D->getId() < P.GlobalAddrById.size()
                        ? P.GlobalAddrById[D->getId()]
                        : 0;
    if (!Addr)
      trap("reference to unallocated global '" + D->getName() + "'");
    return Addr;
  }

  bool checkAccess(uint64_t Addr, uint64_t Size, const char *What);

  static int64_t normalizeInt(int64_t V, unsigned Bits, bool Signed) {
    if (Bits == 64)
      return V;
    uint64_t Mask = (uint64_t(1) << Bits) - 1;
    uint64_t U = static_cast<uint64_t>(V) & Mask;
    if (Signed && (U >> (Bits - 1)))
      U |= ~Mask;
    return static_cast<int64_t>(U);
  }
  static int64_t normalizeInt(int64_t V, const IntType *T) {
    return normalizeInt(V, T->getBits(), T->isSigned());
  }

  VMValue loadScalarKind(uint64_t Addr, ScalarKind K);
  void storeScalarKind(uint64_t Addr, ScalarKind K, VMValue V);

  /// Type-directed wrappers; trap on aggregate types.
  VMValue loadScalar(uint64_t Addr, Type *T);
  void storeScalar(uint64_t Addr, Type *T, VMValue V);

  bool isRegisterAccess(const Expr *Loc) const;

  //===------------------------------------------------------------------===//
  // Builtins and the runtime-privatization runtime
  //===------------------------------------------------------------------===//

  /// Executes builtin \p B on already-evaluated arguments. Both engines
  /// evaluate arguments first (in index order), then call this; the one
  /// exception is sqrt's extra DivRem charge, which the caller applies
  /// *before* argument evaluation to preserve the historical charge order.
  VMValue execBuiltinOp(Builtin B, uint32_t SiteId, const VMValue *Args,
                        unsigned NumArgs);

  VMValue rtPrivTranslate(uint64_t P);
  void rtPrivCommitAll();

  //===------------------------------------------------------------------===//
  // Loop bookkeeping (while loops and ordered regions)
  //===------------------------------------------------------------------===//

  struct ActiveLoop {
    unsigned Id = 0;
    uint64_t Before = 0;
    uint64_t Iter = 0;
  };

  /// While-loop entry: invocation count, cycle watermark, observer.
  ActiveLoop loopEnter(unsigned Id) {
    LoopStats &LS = Loops[Id];
    ++LS.Invocations;
    ActiveLoop L;
    L.Id = Id;
    L.Before = Cycles;
    if (Obs)
      Obs->onLoopEnter(Id);
    return L;
  }

  /// Fires once per iteration, after the condition held.
  void loopIterNote(ActiveLoop &L) {
    if (Obs)
      Obs->onLoopIter(L.Id, L.Iter);
    ++L.Iter;
  }

  /// While-loop exit bookkeeping; must run on every exit path.
  void loopExit(const ActiveLoop &L) {
    if (Obs)
      Obs->onLoopExit(L.Id);
    LoopStats &LS = Loops[L.Id];
    LS.Iterations += L.Iter;
    LS.WorkCycles += Cycles - L.Before;
    LS.SimTime += Cycles - L.Before;
  }

  /// Ordered-region entry under real DOACROSS threading: blocks until this
  /// worker's iteration holds the region's ticket (ThreadedLoop.cpp). Called
  /// by the engines when DX is set; charges nothing (the OrderedEnter charge
  /// is the engine's, exactly as in the simulated path).
  void orderedRealEnter(unsigned RegionId);

  //===------------------------------------------------------------------===//
  // Counted loops: serial semantics and the multicore timeline
  //===------------------------------------------------------------------===//

  struct ForBounds {
    uint64_t IVAddr = 0;
    int64_t Lo = 0;
    int64_t Hi = 0;
    int64_t Step = 0;
  };

  /// Runs one `for` statement. \p EvalBounds resolves the induction
  /// variable's address and evaluates init/limit/step (in that order, with
  /// whatever charges the evaluation incurs); \p Body executes one iteration
  /// and reports its control flow. The driver implements the serial
  /// iteration protocol and the DOALL/DOACROSS virtual-multicore timeline
  /// exactly once for both engines. Returns Normal (also for break),
  /// Return, or Halt.
  ///
  /// \p Host, when non-null, offers real host-threaded execution of the
  /// loop (Threads engine). The driver still decides per invocation: loops
  /// that are ineligible (observer installed, N < 2, cycle budget active,
  /// armed guard watch, fallback-mode guard plan, rtpriv bodies, global
  /// induction variable, tid-sensitive or guarded DOACROSS) take the
  /// serial-order simulated path, which is bit-identical by construction.
  Flow runForLoop(unsigned LoopId, ParallelKind Kind, Type *IVType,
                  const std::function<void(ForBounds &)> &EvalBounds,
                  const std::function<Flow()> &Body,
                  const ThreadLoopHooks *Host = nullptr);

  //===------------------------------------------------------------------===//
  // Run scaffolding
  //===------------------------------------------------------------------===//

  /// Resets per-run state and (re)allocates zeroed globals.
  void resetRun();

private:
  Flow runForSerial(unsigned LoopId, ParallelKind Kind, Type *IVType,
                    const std::function<void(ForBounds &)> &EvalBounds,
                    const std::function<Flow()> &Body);
  Flow runForParallel(unsigned LoopId, ParallelKind Kind, Type *IVType,
                      const std::function<void(ForBounds &)> &EvalBounds,
                      const std::function<Flow()> &Body);
  /// The real host-threaded runner (ThreadedLoop.cpp). Bit-identical virtual
  /// metrics to runForParallel on every eligible loop. \p Body is the serial
  /// body thunk, kept for the watchdog recovery path (a wedged DOACROSS
  /// attempt rolls back and re-runs through runForParallel). \p Pool is the
  /// already-materialized worker pool (runForLoop resolved it; a null pool
  /// degrades before ever reaching here).
  Flow runForThreaded(unsigned LoopId, ParallelKind Kind, Type *IVType,
                      const std::function<void(ForBounds &)> &EvalBounds,
                      const std::function<Flow()> &Body,
                      const ThreadLoopHooks &Host, ThreadPool &Pool);
  /// True when this invocation can run on real host threads.
  bool threadedEligible(unsigned LoopId, ParallelKind Kind,
                        const ThreadLoopHooks *Host) const;

  // Guarded-execution internals (ExecState.cpp). ThreadedLoop.cpp reuses
  // guardSetupRegions/guardCommit and the merge helpers below.
  GuardRegion *guardRegionContaining(uint64_t Addr);
  void guardSetupRegions(const GuardPlan *GP, unsigned NumThreads);
  void guardTeardownRegions();
  void guardCommit(const GuardPlan *GP, unsigned NumThreads);
  void guardWatchLoad(uint64_t Addr, uint64_t Size);
  void guardWatchStore(uint64_t Addr, uint64_t Size);
  void guardViolation(ViolationKind K, unsigned LoopId, unsigned Class,
                      uint64_t Iter, int Tid, uint64_t Addr, uint32_t Access);
  void updateGuardHooks() {
    GuardHooksOn = GuardActive || !GuardWatch.empty();
  }
  /// Index into GuardRegions answered last (clustered accesses), or -1.
  int GuardRegionHit = -1;
};

/// Historical name: ExecState was split into ProgramContext + ThreadState;
/// the per-thread half keeps the semantic role the old monolith had.
using ExecState = ThreadState;

} // namespace gdse

#endif // GDSE_INTERP_EXECSTATE_H
