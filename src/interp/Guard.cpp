//===- Guard.cpp - Guarded execution: modes and violation rendering --------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/Guard.h"

#include "support/Support.h"

#include <cstdlib>

using namespace gdse;

bool gdse::parseGuardMode(const std::string &S, GuardMode &Out) {
  if (S == "off") {
    Out = GuardMode::Off;
    return true;
  }
  if (S == "check") {
    Out = GuardMode::Check;
    return true;
  }
  if (S == "fallback") {
    Out = GuardMode::Fallback;
    return true;
  }
  return false;
}

GuardMode gdse::guardModeFromEnv(GuardMode Default) {
  const char *V = std::getenv("GDSE_GUARD");
  if (!V || !*V)
    return Default;
  GuardMode M;
  if (parseGuardMode(V, M))
    return M;
  envWarnOnce("GDSE_GUARD",
              formatString("unrecognized value '%s' for GDSE_GUARD; using "
                           "'%s' (use off/check/fallback)",
                           V, guardModeName(Default)));
  return Default;
}

const char *gdse::guardModeName(GuardMode M) {
  switch (M) {
  case GuardMode::Off:
    return "off";
  case GuardMode::Check:
    return "check";
  case GuardMode::Fallback:
    return "fallback";
  }
  return "off";
}

const char *gdse::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::UpwardsExposedLoad:
    return "upwards-exposed-load";
  case ViolationKind::CarriedFlow:
    return "carried-flow";
  case ViolationKind::SpanEscape:
    return "span-escape";
  case ViolationKind::DownwardsExposedStore:
    return "downwards-exposed-store";
  case ViolationKind::NonCommutativeTouch:
    return "non-commutative-touch";
  }
  return "unknown";
}

std::string DependenceViolation::str() const {
  std::string S = formatString(
      "%s in loop %u class %u at iteration %llu on thread %d",
      violationKindName(Kind), LoopId, ClassIndex,
      static_cast<unsigned long long>(Iteration), Thread);
  S += formatString(" (access #%u, address 0x%llx", Access,
                    static_cast<unsigned long long>(Addr));
  if (Count > 1)
    S += formatString(", %llu occurrences",
                      static_cast<unsigned long long>(Count));
  S += ")";
  return S;
}
