//===- Guard.h - Guarded execution: plans, modes, violations ----*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guarded-execution contract between the expansion pass and the runtime.
///
/// The paper's thread-private classification (Definitions 2-5) is only as
/// sound as its input dependence graph, which comes from profiling plus
/// programmer verification (§2) — a mis-verified edge silently miscompiles
/// the loop. Guarded execution is the safety net: the expansion pass emits a
/// GuardPlan recording, per privatized loop, which accesses it claimed
/// private (and in which access class) and which allocation sites carry the
/// per-thread copies. Both execution engines then maintain an LRPD-style
/// first-write shadow over those allocations during guarded parallel
/// invocations, and a commit-time validator turns any mismatch between the
/// observed accesses and the claimed classification into a structured
/// DependenceViolation — reported in `check` mode, and additionally recovered
/// from (rollback + serial re-execution) in `fallback` mode.
///
/// This header is intentionally free of interpreter dependencies so the
/// expansion pass can produce plans without linking the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_GUARD_H
#define GDSE_INTERP_GUARD_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace gdse {

/// How much runtime dependence validation the VM performs on loops the
/// expansion pass privatized speculatively.
enum class GuardMode : uint8_t {
  /// No validation; bit-identical to the unguarded VM (cycles, SimTime,
  /// observer streams, peak memory).
  Off,
  /// Validate every guarded parallel invocation and report violations as
  /// structured diagnostics, but keep executing the transformed code. The
  /// guard charges no cycles and emits no observer events, so a clean run is
  /// bit-identical to `Off` on every virtual metric.
  Check,
  /// Validate, and on the first violation discard all thread copies (memory
  /// rollback to the loop entry checkpoint) and re-execute the loop serially
  /// on copy 0, so the run's output matches the original serial program even
  /// when the dependence graph was wrong.
  Fallback,
};

/// GuardMode from the GDSE_GUARD environment variable: "off", "check", or
/// "fallback"; anything else (or unset) yields \p Default.
GuardMode guardModeFromEnv(GuardMode Default = GuardMode::Off);

/// "off" / "check" / "fallback".
const char *guardModeName(GuardMode M);

/// Parses "off"/"check"/"fallback" into \p Out; false on anything else.
bool parseGuardMode(const std::string &S, GuardMode &Out);

/// The ways a guarded run can contradict the classification that justified
/// privatizing a class (the three conditions of Definition 5, plus escaping
/// the claimed byte range).
enum class ViolationKind : uint8_t {
  /// A "private" access read a byte of its thread copy that no iteration had
  /// written yet — the load is upwards-exposed, violating condition (1).
  UpwardsExposedLoad,
  /// A "private" access read a byte last written by an earlier iteration — a
  /// loop-carried flow dependence into the class, violating condition (2).
  CarriedFlow,
  /// A "private" access touched a guarded region outside its thread's
  /// claimed byte range (another thread's copy, or copy 0 from a worker).
  /// Accesses landing outside every guarded region are NOT escapes: a
  /// redirected access can legitimately reach shared objects at runtime
  /// (zero-span fat pointers), and fat-pointer metadata reads share the
  /// data access's id.
  SpanEscape,
  /// Code after the loop read a byte whose serially-final value was left in a
  /// discarded thread copy — the store was downwards-exposed, violating
  /// condition (1) (an output-dependence misclassification).
  DownwardsExposedStore,
  /// An access outside a proven-commutative class touched that class's
  /// guarded region during the loop — the "every carried use is one
  /// reduction op" witness was wrong, and the commit-time merge would fold
  /// state the foreign access already observed or clobbered.
  NonCommutativeTouch,
};

/// Stable lowercase name, e.g. "upwards-exposed-load".
const char *violationKindName(ViolationKind K);

/// Everything the runtime needs to validate one privatized loop. Produced by
/// expandLoop() alongside the rewritten IR; carried through PipelineResult
/// into InterpOptions.
struct GuardPlan {
  /// The privatized loop this plan guards.
  unsigned LoopId = 0;
  /// Number of access classes the classification built (for rendering).
  unsigned NumClasses = 0;
  /// AccessId -> class index, for every member of a thread-private class.
  /// These are the accesses redirected into per-thread copies.
  std::map<uint32_t, unsigned> PrivateClassOf;
  /// Allocation-site ids of the expanded structures: the multiplied original
  /// heap sites plus the backing mallocs created for expanded variables.
  /// Each live allocation from one of these sites is a guarded region whose
  /// per-thread span is Size / NumThreads (copy 0 shared, copies 1..N-1
  /// private).
  std::set<uint32_t> RegionSites;
  /// AccessId -> class index for members of proven-commutative classes.
  /// These accesses are exempt from first-write shadow validation (the RMW
  /// load of a reduction is carried by construction); the region is watched
  /// for non-member touches instead (commit-time-merge guard mode).
  std::map<uint32_t, unsigned> CommClassOf;
  /// Backing-site id -> class index for the expanded commutative objects.
  /// Disjoint from RegionSites: these regions carry no first-write shadow.
  std::map<uint32_t, unsigned> CommSiteClass;

  bool empty() const {
    return (PrivateClassOf.empty() || RegionSites.empty()) &&
           (CommClassOf.empty() || CommSiteClass.empty());
  }
};

/// One detected violation, with full attribution. Deduplicated by
/// (LoopId, ClassIndex, Kind): the first occurrence keeps its iteration /
/// thread / address, later ones only bump Count.
struct DependenceViolation {
  ViolationKind Kind = ViolationKind::UpwardsExposedLoad;
  unsigned LoopId = 0;
  /// Index of the offending access class in the loop's classification.
  unsigned ClassIndex = 0;
  uint64_t Iteration = 0;
  int Thread = 0;
  uint64_t Addr = 0;
  /// Offending access id (0 when unattributable, e.g. a bulk access).
  uint32_t Access = 0;
  /// Occurrences of this (loop, class, kind) in the run.
  uint64_t Count = 1;

  /// "upwards-exposed-load in loop 3 class 1 at iteration 5 on thread 2
  ///  (access #12, address 0x..., 4 occurrences)"
  std::string str() const;
};

} // namespace gdse

#endif // GDSE_INTERP_GUARD_H
