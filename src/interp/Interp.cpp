//===- Interp.cpp - The tree-walking reference engine ----------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The reference execution engine: walks the IR tree directly, re-dispatching
// on node kinds for every operand. All semantics shared with the bytecode VM
// (memory, builtins, loop drivers, the multicore timeline) live in
// ExecState; this file contains only expression/statement evaluation. The
// bytecode engine (Bytecode.cpp) must match it bit-for-bit on non-trapping
// runs — EngineDiffTest holds the two together.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Bytecode.h"
#include "interp/ExecState.h"
#include "ir/IRPrinter.h"
#include "support/Diagnostics.h"
#include "support/Support.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace gdse;

InterpObserver::~InterpObserver() = default;

ExecEngine gdse::engineFromEnv(ExecEngine Default) {
  const char *E = std::getenv("GDSE_ENGINE");
  if (!E || !*E)
    return Default;
  std::string V(E);
  if (V == "tree" || V == "treewalk")
    return ExecEngine::TreeWalk;
  if (V == "bytecode" || V == "bc")
    return ExecEngine::Bytecode;
  if (V == "threads")
    return ExecEngine::Threads;
  envWarnOnce("GDSE_ENGINE",
              formatString("unrecognized value '%s' for GDSE_ENGINE; using "
                           "'%s' (use tree/treewalk, bytecode/bc, or threads)",
                           E,
                           Default == ExecEngine::TreeWalk    ? "tree"
                           : Default == ExecEngine::Bytecode ? "bytecode"
                                                             : "threads"));
  return Default;
}

namespace {
/// Owns the shared ProgramContext. A base class rather than a member so it is
/// fully constructed before the ThreadState base that holds references into
/// it.
struct ContextHolder {
  ProgramContext PC;
  ContextHolder(Module &M, InterpOptions O) : PC(M, std::move(O)) {}
};
} // namespace

/// The tree-walking evaluator is the ProgramContext + main ThreadState pair:
/// Impl *is* the main thread's state (so evaluator code reads fields
/// directly), and the ContextHolder base owns the shared program half that
/// worker ThreadStates of host-threaded loops attach to.
struct Interp::Impl : ContextHolder, ExecState {
  using Value = VMValue;

  struct Frame {
    const Function *F = nullptr;
    const FrameLayout *Layout = nullptr;
    uint64_t Base = 0;
  };
  std::vector<Frame> Frames;

  /// Lazily-lowered (or precompiled) bytecode for the Bytecode/Threads
  /// engines.
  std::shared_ptr<const BytecodeModule> BC;

  Impl(Module &M, InterpOptions O)
      : ContextHolder(M, std::move(O)), ExecState(PC) {
    BC = Opts.Precompiled;
  }

  const FrameLayout &layoutOf(const Function *F) { return PC.layoutOf(F); }

  uint64_t addrOfVar(const VarDecl *D) {
    if (D->isGlobal())
      return globalAddr(D);
    assert(!Frames.empty() && "local access outside any frame");
    const Frame &Fr = Frames.back();
    auto It = Fr.Layout->Offsets.find(D);
    if (It == Fr.Layout->Offsets.end()) {
      trap("variable '" + D->getName() + "' has no slot in frame of " +
           Fr.F->getName());
      return 0;
    }
    return Fr.Base + It->second;
  }

  //===------------------------------------------------------------------===//
  // Expression evaluation
  //===------------------------------------------------------------------===//

  uint64_t evalLValue(const Expr *E) {
    if (dead())
      return 0;
    // Address computation folds into addressing modes: no charge.
    switch (E->getKind()) {
    case Expr::Kind::VarRef:
      return addrOfVar(cast<VarRefExpr>(E)->getDecl());
    case Expr::Kind::Deref:
      return static_cast<uint64_t>(evalExpr(cast<DerefExpr>(E)->getPtr()).I);
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(E);
      uint64_t Base = static_cast<uint64_t>(evalExpr(A->getBase()).I);
      int64_t Idx = evalExpr(A->getIndex()).I;
      uint64_t ElemSize = Ctx.getLayout(A->getType()).Size;
      return Base + static_cast<uint64_t>(Idx * static_cast<int64_t>(ElemSize));
    }
    case Expr::Kind::FieldAccess: {
      const auto *F = cast<FieldAccessExpr>(E);
      uint64_t Base = evalLValue(F->getBase());
      auto *ST = cast<StructType>(F->getBase()->getType());
      const TypeLayout &L = Ctx.getLayout(ST);
      return Base + L.FieldOffsets[F->getFieldIndex()];
    }
    default:
      trap("evalLValue of non-lvalue " + printExpr(E));
      return 0;
    }
  }

  Value evalExpr(const Expr *E) {
    if (dead())
      return Value();
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::SizeofType:
    case Expr::Kind::ThreadId:
    case Expr::Kind::NumThreads:
      break; // immediates: free
    default:
      charge(Opts.Costs.ExprBase);
      break;
    }
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      return Value::ofInt(cast<IntLitExpr>(E)->getValue());
    case Expr::Kind::FloatLit:
      return Value::ofFloat(cast<FloatLitExpr>(E)->getValue());
    case Expr::Kind::VarRef:
    case Expr::Kind::Deref:
    case Expr::Kind::ArrayIndex:
    case Expr::Kind::FieldAccess:
      trap("r-value evaluation of bare l-value " + printExpr(E));
      return Value();
    case Expr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      if (L->getType()->isAggregate()) {
        trap("aggregate load outside assignment: " + printExpr(E));
        return Value();
      }
      uint64_t Addr = evalLValue(L->getLocation());
      uint64_t Size = Ctx.getLayout(L->getType()).Size;
      if (!checkAccess(Addr, Size, "load"))
        return Value();
      if (!isRegisterAccess(L->getLocation()))
        charge(Opts.Costs.Load);
      if (Obs)
        Obs->onLoad(L->getAccessId(), Addr, Size);
      if (GuardHooksOn)
        guardLoad(L->getAccessId(), Addr, Size);
      return loadScalar(Addr, L->getType());
    }
    case Expr::Kind::Unary:
      return evalUnary(cast<UnaryExpr>(E));
    case Expr::Kind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case Expr::Kind::AddrOf:
      return Value::ofInt(
          static_cast<int64_t>(evalLValue(cast<AddrOfExpr>(E)->getLocation())));
    case Expr::Kind::Decay:
      return Value::ofInt(static_cast<int64_t>(
          evalLValue(cast<DecayExpr>(E)->getArrayLocation())));
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E));
    case Expr::Kind::Cast:
      return evalCast(cast<CastExpr>(E));
    case Expr::Kind::SizeofType:
      return Value::ofInt(static_cast<int64_t>(
          Ctx.getLayout(cast<SizeofTypeExpr>(E)->getQueriedType()).Size));
    case Expr::Kind::ThreadId:
      return Value::ofInt(CurTid);
    case Expr::Kind::NumThreads:
      return Value::ofInt(Opts.NumThreads);
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      Value CV = evalExpr(C->getCond());
      return evalExpr(CV.I ? C->getThen() : C->getElse());
    }
    }
    gdse_unreachable("unknown expr kind");
  }

  Value evalUnary(const UnaryExpr *U) {
    Value S = evalExpr(U->getSub());
    Type *T = U->getType();
    switch (U->getOp()) {
    case UnaryOp::Neg:
      if (T->isFloat())
        return Value::ofFloat(-S.F);
      return Value::ofInt(normalizeInt(-S.I, cast<IntType>(T)));
    case UnaryOp::BitNot:
      return Value::ofInt(normalizeInt(~S.I, cast<IntType>(T)));
    case UnaryOp::LogicalNot: {
      Type *ST = U->getSub()->getType();
      bool Truthy = ST->isFloat() ? (S.F != 0.0) : (S.I != 0);
      return Value::ofInt(Truthy ? 0 : 1);
    }
    }
    gdse_unreachable("unknown unary op");
  }

  Value evalBinary(const BinaryExpr *B) {
    BinaryOp Op = B->getOp();
    // Short-circuit forms.
    if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
      Value L = evalExpr(B->getLHS());
      bool LTrue = L.I != 0;
      if (Op == BinaryOp::LogicalAnd && !LTrue)
        return Value::ofInt(0);
      if (Op == BinaryOp::LogicalOr && LTrue)
        return Value::ofInt(1);
      Value R = evalExpr(B->getRHS());
      return Value::ofInt(R.I != 0 ? 1 : 0);
    }

    Value L = evalExpr(B->getLHS());
    Value R = evalExpr(B->getRHS());
    if (dead())
      return Value();
    Type *LT = B->getLHS()->getType();
    Type *RT = B->getRHS()->getType();

    // Pointer arithmetic.
    if (LT->isPointer() && RT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      switch (Op) {
      case BinaryOp::Sub:
        return Value::ofInt((L.I - R.I) / static_cast<int64_t>(Size));
      case BinaryOp::Eq:
        return Value::ofInt(L.I == R.I);
      case BinaryOp::Ne:
        return Value::ofInt(L.I != R.I);
      case BinaryOp::Lt:
        return Value::ofInt(static_cast<uint64_t>(L.I) <
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Le:
        return Value::ofInt(static_cast<uint64_t>(L.I) <=
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Gt:
        return Value::ofInt(static_cast<uint64_t>(L.I) >
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Ge:
        return Value::ofInt(static_cast<uint64_t>(L.I) >=
                            static_cast<uint64_t>(R.I));
      default:
        trap("invalid pointer-pair operation");
        return Value();
      }
    }
    if (LT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      int64_t Off = R.I * static_cast<int64_t>(Size);
      if (Op == BinaryOp::Add)
        return Value::ofInt(L.I + Off);
      if (Op == BinaryOp::Sub)
        return Value::ofInt(L.I - Off);
      trap("invalid pointer arithmetic operator");
      return Value();
    }

    // Comparisons over scalars (operands share a type after conversions).
    bool IsCmp = Op == BinaryOp::Eq || Op == BinaryOp::Ne ||
                 Op == BinaryOp::Lt || Op == BinaryOp::Le ||
                 Op == BinaryOp::Gt || Op == BinaryOp::Ge;
    if (IsCmp) {
      int C;
      if (LT->isFloat())
        C = L.F < R.F ? -1 : (L.F > R.F ? 1 : 0);
      else if (cast<IntType>(LT)->isSigned())
        C = L.I < R.I ? -1 : (L.I > R.I ? 1 : 0);
      else {
        uint64_t UL = static_cast<uint64_t>(L.I),
                 UR = static_cast<uint64_t>(R.I);
        C = UL < UR ? -1 : (UL > UR ? 1 : 0);
      }
      switch (Op) {
      case BinaryOp::Eq:
        return Value::ofInt(C == 0);
      case BinaryOp::Ne:
        return Value::ofInt(C != 0);
      case BinaryOp::Lt:
        return Value::ofInt(C < 0);
      case BinaryOp::Le:
        return Value::ofInt(C <= 0);
      case BinaryOp::Gt:
        return Value::ofInt(C > 0);
      default:
        return Value::ofInt(C >= 0);
      }
    }

    Type *T = B->getType();
    if (T->isFloat()) {
      switch (Op) {
      case BinaryOp::Add:
        return Value::ofFloat(L.F + R.F);
      case BinaryOp::Sub:
        return Value::ofFloat(L.F - R.F);
      case BinaryOp::Mul:
        return Value::ofFloat(L.F * R.F);
      case BinaryOp::Div:
        charge(Opts.Costs.DivRem);
        return Value::ofFloat(L.F / R.F);
      default:
        trap("invalid float operator");
        return Value();
      }
    }

    const auto *IT = cast<IntType>(T);
    auto norm = [&](int64_t V) { return normalizeInt(V, IT); };
    switch (Op) {
    case BinaryOp::Add:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) +
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Sub:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) -
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Mul:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) *
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Div:
      // Constant divisors are strength-reduced by compilers (mul+shift).
      charge(isa<IntLitExpr>(B->getRHS()) ? 2 : Opts.Costs.DivRem);
      if (R.I == 0) {
        trap("integer division by zero");
        return Value();
      }
      if (IT->isSigned())
        return Value::ofInt(norm(L.I / R.I));
      return Value::ofInt(norm(static_cast<int64_t>(
          static_cast<uint64_t>(L.I) / static_cast<uint64_t>(R.I))));
    case BinaryOp::Rem:
      charge(Opts.Costs.DivRem);
      if (R.I == 0) {
        trap("integer remainder by zero");
        return Value();
      }
      if (IT->isSigned())
        return Value::ofInt(norm(L.I % R.I));
      return Value::ofInt(norm(static_cast<int64_t>(
          static_cast<uint64_t>(L.I) % static_cast<uint64_t>(R.I))));
    case BinaryOp::BitAnd:
      return Value::ofInt(norm(L.I & R.I));
    case BinaryOp::BitOr:
      return Value::ofInt(norm(L.I | R.I));
    case BinaryOp::BitXor:
      return Value::ofInt(norm(L.I ^ R.I));
    case BinaryOp::Shl: {
      unsigned Sh = static_cast<unsigned>(R.I) & 63;
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) << Sh)));
    }
    case BinaryOp::Shr: {
      unsigned Sh = static_cast<unsigned>(R.I) & 63;
      if (IT->isSigned())
        return Value::ofInt(norm(L.I >> Sh));
      // Value is zero-extended in I for unsigned types after normalize.
      uint64_t Mask = IT->getBits() == 64
                          ? ~uint64_t(0)
                          : ((uint64_t(1) << IT->getBits()) - 1);
      return Value::ofInt(
          norm(static_cast<int64_t>((static_cast<uint64_t>(L.I) & Mask) >> Sh)));
    }
    default:
      gdse_unreachable("unhandled integer binary op");
    }
  }

  Value evalCast(const CastExpr *C) {
    Value S = evalExpr(C->getSub());
    Type *From = C->getSub()->getType();
    Type *To = C->getType();
    if (To->isFloat()) {
      if (From->isFloat()) {
        double V = S.F;
        if (cast<FloatType>(To)->getBits() == 32)
          V = static_cast<float>(V);
        return Value::ofFloat(V);
      }
      const auto *IT = cast<IntType>(From);
      double V = IT->isSigned()
                     ? static_cast<double>(S.I)
                     : static_cast<double>(static_cast<uint64_t>(S.I));
      if (cast<FloatType>(To)->getBits() == 32)
        V = static_cast<float>(V);
      return Value::ofFloat(V);
    }
    if (To->isInt()) {
      const auto *IT = cast<IntType>(To);
      if (From->isFloat())
        return Value::ofInt(normalizeInt(static_cast<int64_t>(S.F), IT));
      return Value::ofInt(normalizeInt(S.I, IT)); // int or pointer source
    }
    // Pointer destination: int or pointer source passes through.
    return Value::ofInt(S.I);
  }

  //===------------------------------------------------------------------===//
  // Calls and builtins
  //===------------------------------------------------------------------===//

  Value evalCall(const CallExpr *C) {
    if (C->isBuiltin())
      return evalBuiltin(C);

    if (CallDepth > 4000) {
      trap("call stack overflow");
      return Value();
    }
    Function *F = C->getCallee();
    if (!F->isDefinition()) {
      trap("call to undefined function '" + F->getName() + "'");
      return Value();
    }
    charge(Opts.Costs.Call);
    std::vector<Value> Args;
    Args.reserve(C->getNumArgs());
    for (const Expr *A : C->getArgs())
      Args.push_back(evalExpr(A));
    if (dead())
      return Value();

    const FrameLayout &L = layoutOf(F);
    Frame Fr;
    Fr.F = F;
    Fr.Layout = &L;
    Fr.Base = Mem.allocate(L.Size, AllocKind::Frame, 0);
    if (!Fr.Base) {
      trap(formatString("out of memory: frame of %llu bytes for '%s' failed",
                        static_cast<unsigned long long>(L.Size),
                        F->getName().c_str()));
      return Value();
    }
    if (Obs)
      Obs->onAlloc(*Mem.byBase(Fr.Base));
    Frames.push_back(Fr);
    ++CallDepth;
    for (unsigned I = 0, E = static_cast<unsigned>(Args.size()); I != E; ++I) {
      const VarDecl *P = F->getParam(I);
      storeScalar(Fr.Base + L.Offsets.at(P), P->getType(), Args[I]);
    }
    ReturnValue = Value();
    Flow FL = execStmt(F->getBody());
    if (FL == Flow::Break || FL == Flow::Continue)
      trap("break/continue escaped function body");
    Value RV = ReturnValue;
    --CallDepth;
    if (Obs)
      Obs->onFree(*Mem.byBase(Frames.back().Base));
    Mem.deallocate(Frames.back().Base);
    Frames.pop_back();
    return RV;
  }

  Value evalBuiltin(const CallExpr *C) {
    // sqrt's cycle charge historically precedes its argument's evaluation;
    // both engines preserve that order (execBuiltinOp itself charges
    // nothing for sqrt).
    if (C->getBuiltin() == Builtin::SqrtFn)
      charge(Opts.Costs.DivRem);
    Value Args[3];
    unsigned N = std::min(C->getNumArgs(), 3u);
    for (unsigned I = 0; I != N; ++I)
      Args[I] = evalExpr(C->getArg(I));
    return execBuiltinOp(C->getBuiltin(), C->getSiteId(), Args, N);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  Flow execStmt(const Stmt *S) {
    if (Trapped || Halted)
      return Flow::Halt;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts()) {
        Flow F = execStmt(Sub);
        if (F != Flow::Normal)
          return F;
      }
      return Flow::Normal;
    case Stmt::Kind::ExprStmt:
      evalExpr(cast<ExprStmt>(S)->getExpr());
      return dead() ? Flow::Halt : Flow::Normal;
    case Stmt::Kind::Assign:
      return execAssign(cast<AssignStmt>(S));
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Value C = evalExpr(I->getCond());
      if (dead())
        return Flow::Halt;
      if (C.I)
        return execStmt(I->getThen());
      if (I->getElse())
        return execStmt(I->getElse());
      return Flow::Normal;
    }
    case Stmt::Kind::While:
      return execWhile(cast<WhileStmt>(S));
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      const VarDecl *IV = F->getInductionVar();
      return runForLoop(
          F->getLoopId(), F->getParallelKind(), IV->getType(),
          [&](ForBounds &B) {
            B.IVAddr = addrOfVar(IV);
            B.Lo = evalExpr(F->getInit()).I;
            B.Hi = evalExpr(F->getLimit()).I;
            B.Step = evalExpr(F->getStep()).I;
          },
          [&] { return execStmt(F->getBody()); });
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->getValue())
        ReturnValue = evalExpr(R->getValue());
      return dead() ? Flow::Halt : Flow::Return;
    }
    case Stmt::Kind::Break:
      return Flow::Break;
    case Stmt::Kind::Continue:
      return Flow::Continue;
    case Stmt::Kind::Ordered:
      return execOrdered(cast<OrderedStmt>(S));
    }
    gdse_unreachable("unknown stmt kind");
  }

  Flow execAssign(const AssignStmt *A) {
    Type *T = A->getLHS()->getType();
    if (T->isAggregate()) {
      const auto *RL = dyn_cast<LoadExpr>(A->getRHS());
      if (!RL) {
        trap("aggregate assignment RHS must be a memory location");
        return Flow::Halt;
      }
      uint64_t Dst = evalLValue(A->getLHS());
      uint64_t Src = evalLValue(RL->getLocation());
      uint64_t Size = Ctx.getLayout(T).Size;
      if (!checkAccess(Dst, Size, "aggregate store") ||
          !checkAccess(Src, Size, "aggregate load"))
        return Flow::Halt;
      charge(Opts.Costs.Load + Opts.Costs.Store +
             Size * Opts.Costs.PerByteCopy);
      if (Obs) {
        Obs->onLoad(RL->getAccessId(), Src, Size);
        Obs->onStore(A->getAccessId(), Dst, Size);
      }
      if (GuardHooksOn) {
        guardLoad(RL->getAccessId(), Src, Size);
        guardStore(A->getAccessId(), Dst, Size);
      }
      std::memmove(reinterpret_cast<void *>(Dst),
                   reinterpret_cast<void *>(Src), Size);
      return dead() ? Flow::Halt : Flow::Normal;
    }
    uint64_t Addr = evalLValue(A->getLHS());
    Value V = evalExpr(A->getRHS());
    uint64_t Size = Ctx.getLayout(T).Size;
    if (!checkAccess(Addr, Size, "store"))
      return Flow::Halt;
    if (!isRegisterAccess(A->getLHS()))
      charge(Opts.Costs.Store);
    storeScalar(Addr, T, V);
    if (Obs)
      Obs->onStore(A->getAccessId(), Addr, Size);
    if (GuardHooksOn)
      guardStore(A->getAccessId(), Addr, Size);
    return dead() ? Flow::Halt : Flow::Normal;
  }

  Flow execWhile(const WhileStmt *W) {
    ActiveLoop L = loopEnter(W->getLoopId());
    Flow Result = Flow::Normal;
    while (true) {
      if (!checkBudget()) {
        Result = Flow::Halt;
        break;
      }
      Value C = evalExpr(W->getCond());
      if (dead()) {
        Result = Flow::Halt;
        break;
      }
      if (!C.I)
        break;
      loopIterNote(L);
      Flow F = execStmt(W->getBody());
      if (F == Flow::Break)
        break;
      if (F == Flow::Return || F == Flow::Halt) {
        Result = F;
        break;
      }
    }
    loopExit(L);
    return Result;
  }

  Flow execOrdered(const OrderedStmt *O) {
    charge(Opts.Costs.OrderedEnter);
    if (!RecordOrdered)
      return execStmt(O->getBody());
    OrderedEvent Ev;
    Ev.RegionId = O->getRegionId();
    Ev.EntryOff = Cycles - IterStartCycles;
    Flow F = execStmt(O->getBody());
    Ev.ExitOff = Cycles - IterStartCycles;
    OrderedEvents.push_back(Ev);
    return F;
  }

  //===------------------------------------------------------------------===//
  // Entry
  //===------------------------------------------------------------------===//

  RunResult run(const std::string &Entry) {
    auto HostStart = std::chrono::steady_clock::now();
    resetRun();

    RunResult R;
    Function *F = M.getFunction(Entry);
    if (!F || !F->isDefinition()) {
      R.Trapped = true;
      R.TrapMessage = "entry function '" + Entry + "' not found";
      return R;
    }
    if (!F->getParams().empty()) {
      R.Trapped = true;
      R.TrapMessage = "entry function must take no parameters";
      return R;
    }

    if (Opts.Engine == ExecEngine::Bytecode ||
        Opts.Engine == ExecEngine::Threads) {
      // Lower lazily; a precompiled module is usable only if it was built
      // against the exact cost table of this run. The Threads engine is the
      // bytecode evaluator plus host-threaded parallel loops — only the
      // bytecode VM supplies the worker hooks (ThreadLoopHooks).
      if (!BC || !(BC->Costs == Opts.Costs))
        BC = lowerToBytecode(M, Opts.Costs);
      runBytecodeEntry(*this, *BC, F);
    } else {
      invokeEntry(F);
    }

    R.Trapped = Trapped;
    R.TrapMessage = TrapMessage;
    R.TrapLoopId = TrapLoopId;
    R.TrapIteration = TrapIteration;
    R.TrapThread = TrapThread;
    R.EngineFault = EngineFault;
    R.ExitCode = Trapped ? -1 : ExitCode;
    R.WorkCycles = Cycles;
    int64_t Sim = static_cast<int64_t>(Cycles) + TimeAdjust;
    R.SimTime = Sim > 0 ? static_cast<uint64_t>(Sim) : 0;
    R.Output = std::move(Output);
    R.PeakMemoryBytes = Mem.peakBytes();
    R.Loops = std::move(Loops);
    R.RtPrivTranslations = RtPrivTranslations;
    R.RtPrivBytesCopied = RtPrivBytesCopied;
    R.Violations = std::move(GuardViolationLog);
    R.HostNanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - HostStart)
            .count());
    return R;
  }

  /// Invokes a zero-argument function outside any expression context.
  void invokeEntry(Function *F) {
    const FrameLayout &L = layoutOf(F);
    Frame Fr;
    Fr.F = F;
    Fr.Layout = &L;
    Fr.Base = Mem.allocate(L.Size, AllocKind::Frame, 0);
    if (!Fr.Base) {
      trap(formatString("out of memory: frame of %llu bytes for '%s' failed",
                        static_cast<unsigned long long>(L.Size),
                        F->getName().c_str()));
      return;
    }
    if (Obs)
      Obs->onAlloc(*Mem.byBase(Fr.Base));
    Frames.push_back(Fr);
    ReturnValue = Value();
    Flow FL = execStmt(F->getBody());
    if (FL == Flow::Break || FL == Flow::Continue)
      trap("break/continue escaped entry function");
    if (!Trapped && !Halted && F->getReturnType()->isInt())
      ExitCode = ReturnValue.I;
    rtPrivCommitAll();
    if (Obs)
      Obs->onFree(*Mem.byBase(Frames.back().Base));
    Mem.deallocate(Frames.back().Base);
    Frames.pop_back();
  }
};

Interp::Interp(Module &M, InterpOptions Opts) : P(new Impl(M, std::move(Opts))) {}

Interp::~Interp() { delete P; }

void Interp::setObserver(InterpObserver *O) { P->Obs = O; }

RunResult Interp::run(const std::string &Entry) { return P->run(Entry); }

//===----------------------------------------------------------------------===//
// Degradation ladder
//===----------------------------------------------------------------------===//

static const char *engineName(ExecEngine E) {
  switch (E) {
  case ExecEngine::TreeWalk:
    return "tree-walk";
  case ExecEngine::Bytecode:
    return "bytecode";
  case ExecEngine::Threads:
    return "threads";
  }
  return "?";
}

RunResult gdse::runResilient(Module &M, InterpOptions Opts,
                             const std::string &Entry,
                             DiagnosticEngine *Diags) {
  if (!Diags)
    Diags = Opts.Resilience.Diags;
  // Count the hops across every rung so the caller sees the full ladder even
  // when the first retry also faults.
  uint64_t Degradations = 0;
  uint64_t WatchdogFires = 0;
  RunResult R;
  for (;;) {
    {
      Interp I(M, Opts);
      R = I.run(Entry);
    }
    for (const auto &[Id, LS] : R.Loops) {
      (void)Id;
      Degradations += LS.Degradations;
      WatchdogFires += LS.WatchdogFires;
    }
    if (!R.EngineFault || Opts.Engine == ExecEngine::TreeWalk)
      break;
    // Hop one rung down. The fault injector (if any) is shared across hops,
    // so one-shot rules that already fired do not re-fire on the retry.
    ExecEngine Next = Opts.Engine == ExecEngine::Threads ? ExecEngine::Bytecode
                                                         : ExecEngine::TreeWalk;
    if (Diags) {
      Diagnostic D;
      D.Severity = DiagSeverity::Warning;
      D.Pass = "resilience";
      D.Message = formatString(
          "%s engine faulted%s%s; retrying the invocation on the %s engine",
          engineName(Opts.Engine), R.Trapped ? ": " : "",
          R.Trapped ? R.TrapMessage.c_str() : "", engineName(Next));
      Diags->report(D);
    }
    Opts.Engine = Next;
    ++Degradations;
  }
  // Surface the cumulative hop counters on the final result: a clean retry
  // rebuilds Loops from scratch, which would otherwise hide the fact that a
  // degradation happened at all.
  if ((Degradations || WatchdogFires) && !R.Loops.empty()) {
    uint64_t D = 0, W = 0;
    for (const auto &[Id, LS] : R.Loops) {
      (void)Id;
      D += LS.Degradations;
      W += LS.WatchdogFires;
    }
    auto First = R.Loops.begin();
    First->second.Degradations += Degradations - D;
    First->second.WatchdogFires += WatchdogFires - W;
  }
  return R;
}
