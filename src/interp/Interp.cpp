//===- Interp.cpp - The GDSE VM and multicore simulator --------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <set>

using namespace gdse;

InterpObserver::~InterpObserver() = default;

namespace {

/// A scalar or pointer runtime value. The interpreter knows from the static
/// expression type which member is meaningful.
struct Value {
  int64_t I = 0;
  double F = 0.0;

  static Value ofInt(int64_t V) {
    Value R;
    R.I = V;
    return R;
  }
  static Value ofFloat(double V) {
    Value R;
    R.F = V;
    return R;
  }
};

enum class Flow : uint8_t { Normal, Break, Continue, Return, Halt };

struct FrameLayout {
  uint64_t Size = 0;
  std::map<const VarDecl *, uint64_t> Offsets;
};

struct Frame {
  const Function *F = nullptr;
  uint64_t Base = 0;
  const FrameLayout *Layout = nullptr;
};

/// One ordered-region entry/exit observed during an iteration, as work-cycle
/// offsets from the iteration start.
struct OrderedEvent {
  unsigned RegionId = 0;
  uint64_t EntryOff = 0;
  uint64_t ExitOff = 0;
};

} // namespace

struct Interp::Impl {
  Module &M;
  TypeContext &Ctx;
  InterpOptions Opts;
  InterpObserver *Obs = nullptr;
  VMMemory Mem;

  std::map<const Function *, FrameLayout> Layouts;
  std::map<const VarDecl *, uint64_t> GlobalAddrs;
  std::vector<Frame> Frames;

  uint64_t Cycles = 0;    ///< pure work cycles
  int64_t TimeAdjust = 0; ///< SimTime - work inside parallel loops (signed)
  int CurTid = 0;
  bool InParallelLoop = false;

  bool Trapped = false;
  bool Halted = false;
  std::string TrapMessage;
  int64_t ExitCode = 0;
  Value ReturnValue;
  std::string Output;
  unsigned CallDepth = 0;

  std::map<unsigned, LoopStats> Loops;

  // Ordered-region event recording (active during DOACROSS simulation).
  bool RecordOrdered = false;
  uint64_t IterStartCycles = 0;
  std::vector<OrderedEvent> OrderedEvents;

  // Runtime privatization (SpiceC-style baseline).
  std::vector<uint64_t> GlobalBlocks;
  std::map<std::pair<int, uint64_t>, uint64_t> RtShadow;
  uint64_t RtPrivTranslations = 0;
  uint64_t RtPrivBytesCopied = 0;

  /// Locals/params that a compiling backend would keep in registers:
  /// scalar or pointer typed and never address-taken. Accesses to them are
  /// free in the cost model (the VM still goes through frame memory).
  std::set<const VarDecl *> RegisterVars;

  Impl(Module &M, InterpOptions Opts)
      : M(M), Ctx(M.getTypes()), Opts(std::move(Opts)) {
    computeRegisterVars();
  }

  void computeRegisterVars() {
    std::set<const VarDecl *> AddressTaken;
    for (Function *F : M.getFunctions()) {
      walkExprs(F, [&](Expr *E) {
        const Expr *Loc = nullptr;
        if (auto *A = dyn_cast<AddrOfExpr>(E))
          Loc = A->getLocation();
        else if (auto *D = dyn_cast<DecayExpr>(E))
          Loc = D->getArrayLocation();
        while (Loc) {
          if (auto *F = dyn_cast<FieldAccessExpr>(Loc)) {
            Loc = F->getBase();
            continue;
          }
          if (auto *V = dyn_cast<VarRefExpr>(Loc))
            AddressTaken.insert(V->getDecl());
          break;
        }
      });
      for (const VarDecl *D : F->getParams())
        if (!D->getType()->isArray())
          RegisterVars.insert(D);
      for (const VarDecl *D : F->getLocals())
        if (!D->getType()->isArray())
          RegisterVars.insert(D);
    }
    for (const VarDecl *D : AddressTaken)
      RegisterVars.erase(D);
  }

  /// True when the l-value is a direct reference to a register-like local,
  /// or a field chain over a non-address-taken local aggregate (which SROA
  /// would scalarize into registers).
  bool isRegisterAccess(const Expr *Loc) const {
    while (auto *F = dyn_cast<FieldAccessExpr>(Loc))
      Loc = F->getBase();
    if (auto *V = dyn_cast<VarRefExpr>(Loc))
      return RegisterVars.count(V->getDecl()) != 0;
    return false;
  }

  //===------------------------------------------------------------------===//
  // Diagnostics
  //===------------------------------------------------------------------===//

  void trap(const std::string &Msg) {
    if (Trapped)
      return;
    Trapped = true;
    TrapMessage = Msg;
  }

  bool dead() const { return Trapped || Halted; }

  void charge(uint64_t C) { Cycles += C; }

  bool checkBudget() {
    if (Opts.MaxCycles && Cycles > Opts.MaxCycles) {
      trap("cycle budget exceeded (runaway loop?)");
      return false;
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Addressing and raw memory
  //===------------------------------------------------------------------===//

  const FrameLayout &layoutOf(const Function *F) {
    auto It = Layouts.find(F);
    if (It != Layouts.end())
      return It->second;
    FrameLayout L;
    uint64_t Offset = 0;
    auto place = [&](const VarDecl *D) {
      const TypeLayout &TL = Ctx.getLayout(D->getType());
      Offset = (Offset + TL.Align - 1) / TL.Align * TL.Align;
      L.Offsets[D] = Offset;
      Offset += TL.Size;
    };
    for (const VarDecl *P : F->getParams())
      place(P);
    for (const VarDecl *V : F->getLocals())
      place(V);
    L.Size = std::max<uint64_t>(Offset, 1);
    return Layouts.emplace(F, std::move(L)).first->second;
  }

  uint64_t addrOfVar(const VarDecl *D) {
    if (D->isGlobal()) {
      auto It = GlobalAddrs.find(D);
      if (It == GlobalAddrs.end()) {
        trap("reference to unallocated global '" + D->getName() + "'");
        return 0;
      }
      return It->second;
    }
    assert(!Frames.empty() && "local access outside any frame");
    const Frame &Fr = Frames.back();
    auto It = Fr.Layout->Offsets.find(D);
    if (It == Fr.Layout->Offsets.end()) {
      trap("variable '" + D->getName() + "' has no slot in frame of " +
           Fr.F->getName());
      return 0;
    }
    return Fr.Base + It->second;
  }

  bool checkAccess(uint64_t Addr, uint64_t Size, const char *What) {
    if (!Opts.BoundsCheck)
      return true;
    if (Addr == 0) {
      trap(formatString("null %s of %llu bytes", What,
                        static_cast<unsigned long long>(Size)));
      return false;
    }
    if (!Mem.inBounds(Addr, Size)) {
      trap(formatString("out-of-bounds %s of %llu bytes at 0x%llx", What,
                        static_cast<unsigned long long>(Size),
                        static_cast<unsigned long long>(Addr)));
      return false;
    }
    return true;
  }

  static int64_t normalizeInt(int64_t V, const IntType *T) {
    unsigned Bits = T->getBits();
    if (Bits == 64)
      return V;
    uint64_t Mask = (uint64_t(1) << Bits) - 1;
    uint64_t U = static_cast<uint64_t>(V) & Mask;
    if (T->isSigned() && (U >> (Bits - 1)))
      U |= ~Mask;
    return static_cast<int64_t>(U);
  }

  Value loadScalar(uint64_t Addr, Type *T) {
    Value V;
    switch (T->getKind()) {
    case Type::Kind::Int: {
      const auto *IT = cast<IntType>(T);
      int64_t Raw = 0;
      std::memcpy(&Raw, reinterpret_cast<void *>(Addr), IT->getBits() / 8);
      V.I = normalizeInt(Raw, IT);
      return V;
    }
    case Type::Kind::Float: {
      if (cast<FloatType>(T)->getBits() == 32) {
        float F32;
        std::memcpy(&F32, reinterpret_cast<void *>(Addr), 4);
        V.F = F32;
      } else {
        std::memcpy(&V.F, reinterpret_cast<void *>(Addr), 8);
      }
      return V;
    }
    case Type::Kind::Pointer: {
      uint64_t P;
      std::memcpy(&P, reinterpret_cast<void *>(Addr), 8);
      V.I = static_cast<int64_t>(P);
      return V;
    }
    default:
      trap("scalar load of aggregate type " + T->str());
      return V;
    }
  }

  void storeScalar(uint64_t Addr, Type *T, Value V) {
    switch (T->getKind()) {
    case Type::Kind::Int: {
      const auto *IT = cast<IntType>(T);
      int64_t Norm = normalizeInt(V.I, IT);
      std::memcpy(reinterpret_cast<void *>(Addr), &Norm, IT->getBits() / 8);
      return;
    }
    case Type::Kind::Float: {
      if (cast<FloatType>(T)->getBits() == 32) {
        float F32 = static_cast<float>(V.F);
        std::memcpy(reinterpret_cast<void *>(Addr), &F32, 4);
      } else {
        std::memcpy(reinterpret_cast<void *>(Addr), &V.F, 8);
      }
      return;
    }
    case Type::Kind::Pointer: {
      uint64_t P = static_cast<uint64_t>(V.I);
      std::memcpy(reinterpret_cast<void *>(Addr), &P, 8);
      return;
    }
    default:
      trap("scalar store of aggregate type " + T->str());
    }
  }

  //===------------------------------------------------------------------===//
  // Expression evaluation
  //===------------------------------------------------------------------===//

  uint64_t evalLValue(const Expr *E) {
    if (dead())
      return 0;
    // Address computation folds into addressing modes: no charge.
    switch (E->getKind()) {
    case Expr::Kind::VarRef:
      return addrOfVar(cast<VarRefExpr>(E)->getDecl());
    case Expr::Kind::Deref:
      return static_cast<uint64_t>(evalExpr(cast<DerefExpr>(E)->getPtr()).I);
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(E);
      uint64_t Base = static_cast<uint64_t>(evalExpr(A->getBase()).I);
      int64_t Idx = evalExpr(A->getIndex()).I;
      uint64_t ElemSize = Ctx.getLayout(A->getType()).Size;
      return Base + static_cast<uint64_t>(Idx * static_cast<int64_t>(ElemSize));
    }
    case Expr::Kind::FieldAccess: {
      const auto *F = cast<FieldAccessExpr>(E);
      uint64_t Base = evalLValue(F->getBase());
      auto *ST = cast<StructType>(F->getBase()->getType());
      const TypeLayout &L = Ctx.getLayout(ST);
      return Base + L.FieldOffsets[F->getFieldIndex()];
    }
    default:
      trap("evalLValue of non-lvalue " + printExpr(E));
      return 0;
    }
  }

  Value evalExpr(const Expr *E) {
    if (dead())
      return Value();
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::SizeofType:
    case Expr::Kind::ThreadId:
    case Expr::Kind::NumThreads:
      break; // immediates: free
    default:
      charge(Opts.Costs.ExprBase);
      break;
    }
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      return Value::ofInt(cast<IntLitExpr>(E)->getValue());
    case Expr::Kind::FloatLit:
      return Value::ofFloat(cast<FloatLitExpr>(E)->getValue());
    case Expr::Kind::VarRef:
    case Expr::Kind::Deref:
    case Expr::Kind::ArrayIndex:
    case Expr::Kind::FieldAccess:
      trap("r-value evaluation of bare l-value " + printExpr(E));
      return Value();
    case Expr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      if (L->getType()->isAggregate()) {
        trap("aggregate load outside assignment: " + printExpr(E));
        return Value();
      }
      uint64_t Addr = evalLValue(L->getLocation());
      uint64_t Size = Ctx.getLayout(L->getType()).Size;
      if (!checkAccess(Addr, Size, "load"))
        return Value();
      if (!isRegisterAccess(L->getLocation()))
        charge(Opts.Costs.Load);
      if (Obs)
        Obs->onLoad(L->getAccessId(), Addr, Size);
      return loadScalar(Addr, L->getType());
    }
    case Expr::Kind::Unary:
      return evalUnary(cast<UnaryExpr>(E));
    case Expr::Kind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case Expr::Kind::AddrOf:
      return Value::ofInt(
          static_cast<int64_t>(evalLValue(cast<AddrOfExpr>(E)->getLocation())));
    case Expr::Kind::Decay:
      return Value::ofInt(static_cast<int64_t>(
          evalLValue(cast<DecayExpr>(E)->getArrayLocation())));
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E));
    case Expr::Kind::Cast:
      return evalCast(cast<CastExpr>(E));
    case Expr::Kind::SizeofType:
      return Value::ofInt(static_cast<int64_t>(
          Ctx.getLayout(cast<SizeofTypeExpr>(E)->getQueriedType()).Size));
    case Expr::Kind::ThreadId:
      return Value::ofInt(CurTid);
    case Expr::Kind::NumThreads:
      return Value::ofInt(Opts.NumThreads);
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      Value CV = evalExpr(C->getCond());
      return evalExpr(CV.I ? C->getThen() : C->getElse());
    }
    }
    gdse_unreachable("unknown expr kind");
  }

  Value evalUnary(const UnaryExpr *U) {
    Value S = evalExpr(U->getSub());
    Type *T = U->getType();
    switch (U->getOp()) {
    case UnaryOp::Neg:
      if (T->isFloat())
        return Value::ofFloat(-S.F);
      return Value::ofInt(normalizeInt(-S.I, cast<IntType>(T)));
    case UnaryOp::BitNot:
      return Value::ofInt(normalizeInt(~S.I, cast<IntType>(T)));
    case UnaryOp::LogicalNot: {
      Type *ST = U->getSub()->getType();
      bool Truthy = ST->isFloat() ? (S.F != 0.0) : (S.I != 0);
      return Value::ofInt(Truthy ? 0 : 1);
    }
    }
    gdse_unreachable("unknown unary op");
  }

  Value evalBinary(const BinaryExpr *B) {
    BinaryOp Op = B->getOp();
    // Short-circuit forms.
    if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
      Value L = evalExpr(B->getLHS());
      bool LTrue = L.I != 0;
      if (Op == BinaryOp::LogicalAnd && !LTrue)
        return Value::ofInt(0);
      if (Op == BinaryOp::LogicalOr && LTrue)
        return Value::ofInt(1);
      Value R = evalExpr(B->getRHS());
      return Value::ofInt(R.I != 0 ? 1 : 0);
    }

    Value L = evalExpr(B->getLHS());
    Value R = evalExpr(B->getRHS());
    if (dead())
      return Value();
    Type *LT = B->getLHS()->getType();
    Type *RT = B->getRHS()->getType();

    // Pointer arithmetic.
    if (LT->isPointer() && RT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      switch (Op) {
      case BinaryOp::Sub:
        return Value::ofInt((L.I - R.I) / static_cast<int64_t>(Size));
      case BinaryOp::Eq:
        return Value::ofInt(L.I == R.I);
      case BinaryOp::Ne:
        return Value::ofInt(L.I != R.I);
      case BinaryOp::Lt:
        return Value::ofInt(static_cast<uint64_t>(L.I) <
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Le:
        return Value::ofInt(static_cast<uint64_t>(L.I) <=
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Gt:
        return Value::ofInt(static_cast<uint64_t>(L.I) >
                            static_cast<uint64_t>(R.I));
      case BinaryOp::Ge:
        return Value::ofInt(static_cast<uint64_t>(L.I) >=
                            static_cast<uint64_t>(R.I));
      default:
        trap("invalid pointer-pair operation");
        return Value();
      }
    }
    if (LT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      int64_t Off = R.I * static_cast<int64_t>(Size);
      if (Op == BinaryOp::Add)
        return Value::ofInt(L.I + Off);
      if (Op == BinaryOp::Sub)
        return Value::ofInt(L.I - Off);
      trap("invalid pointer arithmetic operator");
      return Value();
    }

    // Comparisons over scalars (operands share a type after conversions).
    bool IsCmp = Op == BinaryOp::Eq || Op == BinaryOp::Ne ||
                 Op == BinaryOp::Lt || Op == BinaryOp::Le ||
                 Op == BinaryOp::Gt || Op == BinaryOp::Ge;
    if (IsCmp) {
      int C;
      if (LT->isFloat())
        C = L.F < R.F ? -1 : (L.F > R.F ? 1 : 0);
      else if (cast<IntType>(LT)->isSigned())
        C = L.I < R.I ? -1 : (L.I > R.I ? 1 : 0);
      else {
        uint64_t UL = static_cast<uint64_t>(L.I),
                 UR = static_cast<uint64_t>(R.I);
        C = UL < UR ? -1 : (UL > UR ? 1 : 0);
      }
      switch (Op) {
      case BinaryOp::Eq:
        return Value::ofInt(C == 0);
      case BinaryOp::Ne:
        return Value::ofInt(C != 0);
      case BinaryOp::Lt:
        return Value::ofInt(C < 0);
      case BinaryOp::Le:
        return Value::ofInt(C <= 0);
      case BinaryOp::Gt:
        return Value::ofInt(C > 0);
      default:
        return Value::ofInt(C >= 0);
      }
    }

    Type *T = B->getType();
    if (T->isFloat()) {
      switch (Op) {
      case BinaryOp::Add:
        return Value::ofFloat(L.F + R.F);
      case BinaryOp::Sub:
        return Value::ofFloat(L.F - R.F);
      case BinaryOp::Mul:
        return Value::ofFloat(L.F * R.F);
      case BinaryOp::Div:
        charge(Opts.Costs.DivRem);
        return Value::ofFloat(L.F / R.F);
      default:
        trap("invalid float operator");
        return Value();
      }
    }

    const auto *IT = cast<IntType>(T);
    auto norm = [&](int64_t V) { return normalizeInt(V, IT); };
    switch (Op) {
    case BinaryOp::Add:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) +
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Sub:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) -
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Mul:
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) *
                                    static_cast<uint64_t>(R.I))));
    case BinaryOp::Div:
      // Constant divisors are strength-reduced by compilers (mul+shift).
      charge(isa<IntLitExpr>(B->getRHS()) ? 2 : Opts.Costs.DivRem);
      if (R.I == 0) {
        trap("integer division by zero");
        return Value();
      }
      if (IT->isSigned())
        return Value::ofInt(norm(L.I / R.I));
      return Value::ofInt(norm(static_cast<int64_t>(
          static_cast<uint64_t>(L.I) / static_cast<uint64_t>(R.I))));
    case BinaryOp::Rem:
      charge(Opts.Costs.DivRem);
      if (R.I == 0) {
        trap("integer remainder by zero");
        return Value();
      }
      if (IT->isSigned())
        return Value::ofInt(norm(L.I % R.I));
      return Value::ofInt(norm(static_cast<int64_t>(
          static_cast<uint64_t>(L.I) % static_cast<uint64_t>(R.I))));
    case BinaryOp::BitAnd:
      return Value::ofInt(norm(L.I & R.I));
    case BinaryOp::BitOr:
      return Value::ofInt(norm(L.I | R.I));
    case BinaryOp::BitXor:
      return Value::ofInt(norm(L.I ^ R.I));
    case BinaryOp::Shl: {
      unsigned Sh = static_cast<unsigned>(R.I) & 63;
      return Value::ofInt(
          norm(static_cast<int64_t>(static_cast<uint64_t>(L.I) << Sh)));
    }
    case BinaryOp::Shr: {
      unsigned Sh = static_cast<unsigned>(R.I) & 63;
      if (IT->isSigned())
        return Value::ofInt(norm(L.I >> Sh));
      // Value is zero-extended in I for unsigned types after normalize.
      uint64_t Mask = IT->getBits() == 64
                          ? ~uint64_t(0)
                          : ((uint64_t(1) << IT->getBits()) - 1);
      return Value::ofInt(
          norm(static_cast<int64_t>((static_cast<uint64_t>(L.I) & Mask) >> Sh)));
    }
    default:
      gdse_unreachable("unhandled integer binary op");
    }
  }

  Value evalCast(const CastExpr *C) {
    Value S = evalExpr(C->getSub());
    Type *From = C->getSub()->getType();
    Type *To = C->getType();
    if (To->isFloat()) {
      if (From->isFloat()) {
        double V = S.F;
        if (cast<FloatType>(To)->getBits() == 32)
          V = static_cast<float>(V);
        return Value::ofFloat(V);
      }
      const auto *IT = cast<IntType>(From);
      double V = IT->isSigned()
                     ? static_cast<double>(S.I)
                     : static_cast<double>(static_cast<uint64_t>(S.I));
      if (cast<FloatType>(To)->getBits() == 32)
        V = static_cast<float>(V);
      return Value::ofFloat(V);
    }
    if (To->isInt()) {
      const auto *IT = cast<IntType>(To);
      if (From->isFloat())
        return Value::ofInt(normalizeInt(static_cast<int64_t>(S.F), IT));
      return Value::ofInt(normalizeInt(S.I, IT)); // int or pointer source
    }
    // Pointer destination: int or pointer source passes through.
    return Value::ofInt(S.I);
  }

  //===------------------------------------------------------------------===//
  // Calls and builtins
  //===------------------------------------------------------------------===//

  Value evalCall(const CallExpr *C) {
    if (C->isBuiltin())
      return evalBuiltin(C);

    if (CallDepth > 4000) {
      trap("call stack overflow");
      return Value();
    }
    Function *F = C->getCallee();
    if (!F->isDefinition()) {
      trap("call to undefined function '" + F->getName() + "'");
      return Value();
    }
    charge(Opts.Costs.Call);
    std::vector<Value> Args;
    Args.reserve(C->getNumArgs());
    for (const Expr *A : C->getArgs())
      Args.push_back(evalExpr(A));
    if (dead())
      return Value();

    const FrameLayout &L = layoutOf(F);
    Frame Fr;
    Fr.F = F;
    Fr.Layout = &L;
    Fr.Base = Mem.allocate(L.Size, AllocKind::Frame, 0);
    if (Obs)
      Obs->onAlloc(*Mem.byBase(Fr.Base));
    Frames.push_back(Fr);
    ++CallDepth;
    for (unsigned I = 0, E = static_cast<unsigned>(Args.size()); I != E; ++I) {
      const VarDecl *P = F->getParam(I);
      storeScalar(Fr.Base + L.Offsets.at(P), P->getType(), Args[I]);
    }
    ReturnValue = Value();
    Flow FL = execStmt(F->getBody());
    if (FL == Flow::Break || FL == Flow::Continue)
      trap("break/continue escaped function body");
    Value RV = ReturnValue;
    --CallDepth;
    if (Obs)
      Obs->onFree(*Mem.byBase(Frames.back().Base));
    Mem.deallocate(Frames.back().Base);
    Frames.pop_back();
    return RV;
  }

  Value evalBuiltin(const CallExpr *C) {
    auto arg = [&](unsigned I) { return evalExpr(C->getArg(I)); };
    switch (C->getBuiltin()) {
    case Builtin::MallocFn: {
      int64_t N = arg(0).I;
      if (N < 0 || N > (int64_t(1) << 34)) {
        trap(formatString("malloc of invalid size %lld",
                          static_cast<long long>(N)));
        return Value();
      }
      charge(Opts.Costs.Alloc);
      uint64_t Base =
          Mem.allocate(static_cast<uint64_t>(N), AllocKind::Heap,
                       C->getSiteId());
      if (Obs)
        Obs->onAlloc(*Mem.byBase(Base));
      return Value::ofInt(static_cast<int64_t>(Base));
    }
    case Builtin::CallocFn: {
      int64_t N = arg(0).I, Sz = arg(1).I;
      if (N < 0 || Sz < 0 || N * Sz > (int64_t(1) << 34)) {
        trap("calloc of invalid size");
        return Value();
      }
      uint64_t Size = static_cast<uint64_t>(N * Sz);
      charge(Opts.Costs.Alloc + Size * Opts.Costs.PerByteCopy);
      uint64_t Base = Mem.allocate(Size, AllocKind::Heap, C->getSiteId());
      if (Obs) {
        Obs->onAlloc(*Mem.byBase(Base));
        Obs->onBulkAccess(/*IsWrite=*/true, Base, Size, C->getBuiltin(),
                          C->getSiteId());
      }
      return Value::ofInt(static_cast<int64_t>(Base));
    }
    case Builtin::ReallocFn: {
      uint64_t Old = static_cast<uint64_t>(arg(0).I);
      int64_t N = arg(1).I;
      if (N < 0 || N > (int64_t(1) << 34)) {
        trap("realloc of invalid size");
        return Value();
      }
      uint64_t Size = static_cast<uint64_t>(N);
      if (!Old) {
        charge(Opts.Costs.Alloc);
        uint64_t Base = Mem.allocate(Size, AllocKind::Heap, C->getSiteId());
        if (Obs)
          Obs->onAlloc(*Mem.byBase(Base));
        return Value::ofInt(static_cast<int64_t>(Base));
      }
      const Allocation *A = Mem.byBase(Old);
      if (!A || A->Kind != AllocKind::Heap) {
        trap("realloc of a non-heap or non-base pointer");
        return Value();
      }
      uint64_t CopySize = std::min(A->Size, Size);
      charge(Opts.Costs.Alloc + Opts.Costs.Free +
             CopySize * Opts.Costs.PerByteCopy);
      uint64_t Base = Mem.allocate(Size, AllocKind::Heap, C->getSiteId());
      std::memcpy(reinterpret_cast<void *>(Base),
                  reinterpret_cast<void *>(Old), CopySize);
      if (Obs) {
        Obs->onAlloc(*Mem.byBase(Base));
        Obs->onBulkAccess(/*IsWrite=*/false, Old, CopySize, C->getBuiltin(),
                          C->getSiteId());
        Obs->onBulkAccess(/*IsWrite=*/true, Base, CopySize, C->getBuiltin(),
                          C->getSiteId());
        Obs->onFree(*Mem.byBase(Old));
      }
      Mem.deallocate(Old);
      return Value::ofInt(static_cast<int64_t>(Base));
    }
    case Builtin::FreeFn: {
      uint64_t P = static_cast<uint64_t>(arg(0).I);
      if (!P)
        return Value();
      const Allocation *A = Mem.byBase(P);
      if (!A || A->Kind != AllocKind::Heap) {
        trap(formatString("invalid free of 0x%llx",
                          static_cast<unsigned long long>(P)));
        return Value();
      }
      charge(Opts.Costs.Free);
      if (Obs)
        Obs->onFree(*A);
      Mem.deallocate(P);
      return Value();
    }
    case Builtin::MemcpyFn: {
      uint64_t D = static_cast<uint64_t>(arg(0).I);
      uint64_t S = static_cast<uint64_t>(arg(1).I);
      int64_t N = arg(2).I;
      if (N < 0) {
        trap("memcpy with negative size");
        return Value();
      }
      uint64_t Size = static_cast<uint64_t>(N);
      if (!checkAccess(D, Size, "memcpy dest") ||
          !checkAccess(S, Size, "memcpy src"))
        return Value();
      charge(Size * Opts.Costs.PerByteCopy);
      if (Obs) {
        Obs->onBulkAccess(false, S, Size, C->getBuiltin(), C->getSiteId());
        Obs->onBulkAccess(true, D, Size, C->getBuiltin(), C->getSiteId());
      }
      std::memmove(reinterpret_cast<void *>(D), reinterpret_cast<void *>(S),
                   Size);
      return Value::ofInt(static_cast<int64_t>(D));
    }
    case Builtin::MemsetFn: {
      uint64_t D = static_cast<uint64_t>(arg(0).I);
      int64_t V = arg(1).I;
      int64_t N = arg(2).I;
      if (N < 0) {
        trap("memset with negative size");
        return Value();
      }
      uint64_t Size = static_cast<uint64_t>(N);
      if (!checkAccess(D, Size, "memset dest"))
        return Value();
      charge(Size * Opts.Costs.PerByteCopy);
      if (Obs)
        Obs->onBulkAccess(true, D, Size, C->getBuiltin(), C->getSiteId());
      std::memset(reinterpret_cast<void *>(D), static_cast<int>(V), Size);
      return Value::ofInt(static_cast<int64_t>(D));
    }
    case Builtin::PrintInt:
      Output += formatString("%lld\n", static_cast<long long>(arg(0).I));
      return Value();
    case Builtin::PrintFloat:
      Output += formatString("%.6g\n", arg(0).F);
      return Value();
    case Builtin::AbsFn: {
      int64_t V = arg(0).I;
      return Value::ofInt(V < 0 ? -V : V);
    }
    case Builtin::FabsFn:
      return Value::ofFloat(std::fabs(arg(0).F));
    case Builtin::SqrtFn:
      charge(Opts.Costs.DivRem);
      return Value::ofFloat(std::sqrt(arg(0).F));
    case Builtin::ExitFn:
      ExitCode = arg(0).I;
      Halted = true;
      return Value();
    case Builtin::RtPrivPtr:
      return rtPrivTranslate(static_cast<uint64_t>(arg(0).I));
    case Builtin::None:
      break;
    }
    gdse_unreachable("unhandled builtin");
  }

  /// SpiceC-style access control: map \p P into the current thread's private
  /// copy of its containing structure, copying the structure in on first
  /// touch (paper §4.2.1; safe variant of the heap-prefix fast path that
  /// accepts pointers into the middle of a structure).
  Value rtPrivTranslate(uint64_t P) {
    const Allocation *A = Mem.containing(P);
    if (!A) {
      trap("rtpriv_ptr of a dangling pointer");
      return Value();
    }
    ++RtPrivTranslations;
    charge(Opts.Costs.Alloc / 2); // hash lookup + bookkeeping per access
    auto Key = std::make_pair(CurTid, A->Base);
    auto It = RtShadow.find(Key);
    if (It == RtShadow.end()) {
      uint64_t Shadow = Mem.allocate(A->Size, AllocKind::Heap, 0);
      std::memcpy(reinterpret_cast<void *>(Shadow),
                  reinterpret_cast<void *>(A->Base), A->Size);
      charge(Opts.Costs.Alloc + A->Size * Opts.Costs.PerByteCopy);
      RtPrivBytesCopied += A->Size;
      It = RtShadow.emplace(Key, Shadow).first;
    }
    return Value::ofInt(static_cast<int64_t>(It->second + (P - A->Base)));
  }

  /// Commits and releases all thread-private rtpriv copies (loop end).
  void rtPrivCommitAll() {
    for (auto &[Key, Shadow] : RtShadow) {
      const Allocation *A = Mem.byBase(Shadow);
      if (A) {
        charge(A->Size * Opts.Costs.PerByteCopy + Opts.Costs.Free);
        RtPrivBytesCopied += A->Size;
        Mem.deallocate(Shadow);
      }
    }
    RtShadow.clear();
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  Flow execStmt(const Stmt *S) {
    if (Trapped || Halted)
      return Flow::Halt;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts()) {
        Flow F = execStmt(Sub);
        if (F != Flow::Normal)
          return F;
      }
      return Flow::Normal;
    case Stmt::Kind::ExprStmt:
      evalExpr(cast<ExprStmt>(S)->getExpr());
      return dead() ? Flow::Halt : Flow::Normal;
    case Stmt::Kind::Assign:
      return execAssign(cast<AssignStmt>(S));
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      Value C = evalExpr(I->getCond());
      if (dead())
        return Flow::Halt;
      if (C.I)
        return execStmt(I->getThen());
      if (I->getElse())
        return execStmt(I->getElse());
      return Flow::Normal;
    }
    case Stmt::Kind::While:
      return execWhile(cast<WhileStmt>(S));
    case Stmt::Kind::For:
      return execFor(cast<ForStmt>(S));
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->getValue())
        ReturnValue = evalExpr(R->getValue());
      return dead() ? Flow::Halt : Flow::Return;
    }
    case Stmt::Kind::Break:
      return Flow::Break;
    case Stmt::Kind::Continue:
      return Flow::Continue;
    case Stmt::Kind::Ordered:
      return execOrdered(cast<OrderedStmt>(S));
    }
    gdse_unreachable("unknown stmt kind");
  }

  Flow execAssign(const AssignStmt *A) {
    Type *T = A->getLHS()->getType();
    if (T->isAggregate()) {
      const auto *RL = dyn_cast<LoadExpr>(A->getRHS());
      if (!RL) {
        trap("aggregate assignment RHS must be a memory location");
        return Flow::Halt;
      }
      uint64_t Dst = evalLValue(A->getLHS());
      uint64_t Src = evalLValue(RL->getLocation());
      uint64_t Size = Ctx.getLayout(T).Size;
      if (!checkAccess(Dst, Size, "aggregate store") ||
          !checkAccess(Src, Size, "aggregate load"))
        return Flow::Halt;
      charge(Opts.Costs.Load + Opts.Costs.Store +
             Size * Opts.Costs.PerByteCopy);
      if (Obs) {
        Obs->onLoad(RL->getAccessId(), Src, Size);
        Obs->onStore(A->getAccessId(), Dst, Size);
      }
      std::memmove(reinterpret_cast<void *>(Dst),
                   reinterpret_cast<void *>(Src), Size);
      return dead() ? Flow::Halt : Flow::Normal;
    }
    uint64_t Addr = evalLValue(A->getLHS());
    Value V = evalExpr(A->getRHS());
    uint64_t Size = Ctx.getLayout(T).Size;
    if (!checkAccess(Addr, Size, "store"))
      return Flow::Halt;
    if (!isRegisterAccess(A->getLHS()))
      charge(Opts.Costs.Store);
    storeScalar(Addr, T, V);
    if (Obs)
      Obs->onStore(A->getAccessId(), Addr, Size);
    return dead() ? Flow::Halt : Flow::Normal;
  }

  Flow execWhile(const WhileStmt *W) {
    LoopStats &LS = Loops[W->getLoopId()];
    ++LS.Invocations;
    uint64_t Before = Cycles;
    if (Obs)
      Obs->onLoopEnter(W->getLoopId());
    uint64_t Iter = 0;
    Flow Result = Flow::Normal;
    while (true) {
      if (!checkBudget()) {
        Result = Flow::Halt;
        break;
      }
      Value C = evalExpr(W->getCond());
      if (dead()) {
        Result = Flow::Halt;
        break;
      }
      if (!C.I)
        break;
      if (Obs)
        Obs->onLoopIter(W->getLoopId(), Iter);
      ++Iter;
      Flow F = execStmt(W->getBody());
      if (F == Flow::Break)
        break;
      if (F == Flow::Return || F == Flow::Halt) {
        Result = F;
        break;
      }
    }
    if (Obs)
      Obs->onLoopExit(W->getLoopId());
    LS.Iterations += Iter;
    LS.WorkCycles += Cycles - Before;
    LS.SimTime += Cycles - Before;
    return Result;
  }

  Flow execFor(const ForStmt *F) {
    bool Parallel = Opts.SimulateParallel &&
                    F->getParallelKind() != ParallelKind::None &&
                    !InParallelLoop;
    if (Parallel)
      return execForParallel(F);

    LoopStats &LS = Loops[F->getLoopId()];
    LS.Kind = F->getParallelKind();
    ++LS.Invocations;
    uint64_t Before = Cycles;

    const VarDecl *IV = F->getInductionVar();
    uint64_t IVAddr = addrOfVar(IV);
    Type *IVT = IV->getType();
    int64_t Lo = evalExpr(F->getInit()).I;
    int64_t Hi = evalExpr(F->getLimit()).I;
    int64_t Step = evalExpr(F->getStep()).I;
    if (dead())
      return Flow::Halt;
    if (Step <= 0) {
      trap("for loop with non-positive step");
      return Flow::Halt;
    }
    if (Obs)
      Obs->onLoopEnter(F->getLoopId());
    uint64_t Iter = 0;
    Flow Result = Flow::Normal;
    for (int64_t I = Lo; I < Hi; I += Step) {
      if (!checkBudget()) {
        Result = Flow::Halt;
        break;
      }
      storeScalar(IVAddr, IVT, Value::ofInt(I));
      if (Obs) {
        Obs->onLoopIter(F->getLoopId(), Iter);
        // Loop-control store of the induction variable: reported with the
        // invalid id so the profiler treats it as a definition but never
        // builds dependence edges to it.
        Obs->onStore(InvalidAccessId, IVAddr, Ctx.getLayout(IVT).Size);
      }
      ++Iter;
      charge(Opts.Costs.ExprBase * 2); // increment + compare
      Flow FL = execStmt(F->getBody());
      if (FL == Flow::Break)
        break;
      if (FL == Flow::Return || FL == Flow::Halt) {
        Result = FL;
        break;
      }
      // Re-read the induction variable: the body may legally not touch it,
      // but a transformed body never modifies it.
      I = loadScalar(IVAddr, IVT).I;
    }
    if (Obs)
      Obs->onLoopExit(F->getLoopId());
    LS.Iterations += Iter;
    LS.WorkCycles += Cycles - Before;
    LS.SimTime += Cycles - Before;
    return Result;
  }

  Flow execOrdered(const OrderedStmt *O) {
    charge(Opts.Costs.OrderedEnter);
    if (!RecordOrdered)
      return execStmt(O->getBody());
    OrderedEvent Ev;
    Ev.RegionId = O->getRegionId();
    Ev.EntryOff = Cycles - IterStartCycles;
    Flow F = execStmt(O->getBody());
    Ev.ExitOff = Cycles - IterStartCycles;
    OrderedEvents.push_back(Ev);
    return F;
  }

  //===------------------------------------------------------------------===//
  // Parallel loop simulation
  //===------------------------------------------------------------------===//

  Flow execForParallel(const ForStmt *F) {
    const unsigned N = static_cast<unsigned>(std::max(1, Opts.NumThreads));
    LoopStats &LS = Loops[F->getLoopId()];
    LS.Kind = F->getParallelKind();
    ++LS.Invocations;
    if (LS.WorkPerThread.size() != N) {
      LS.WorkPerThread.assign(N, 0);
      LS.SyncStallPerThread.assign(N, 0);
      LS.IdlePerThread.assign(N, 0);
      LS.DispatchPerThread.assign(N, 0);
    }

    const VarDecl *IV = F->getInductionVar();
    uint64_t IVAddr = addrOfVar(IV);
    Type *IVT = IV->getType();
    uint64_t Before = Cycles;
    int64_t Lo = evalExpr(F->getInit()).I;
    int64_t Hi = evalExpr(F->getLimit()).I;
    int64_t Step = evalExpr(F->getStep()).I;
    if (dead())
      return Flow::Halt;
    if (Step <= 0) {
      trap("parallel for loop with non-positive step");
      return Flow::Halt;
    }
    uint64_t Total = Hi > Lo
                         ? static_cast<uint64_t>((Hi - Lo + Step - 1) / Step)
                         : 0;

    if (Obs)
      Obs->onLoopEnter(F->getLoopId());
    InParallelLoop = true;
    RecordOrdered = F->getParallelKind() == ParallelKind::DOACROSS;

    const CostModel &CM = Opts.Costs;
    std::vector<uint64_t> Ready(N, 0), Work(N, 0), Stall(N, 0), Dispatch(N, 0);
    std::map<unsigned, uint64_t> RegionFree;
    bool DOALL = F->getParallelKind() == ParallelKind::DOALL;
    uint64_t Chunk = DOALL ? std::max<uint64_t>(1, (Total + N - 1) / N) : 1;
    if (DOALL)
      for (unsigned T = 0; T != N; ++T) {
        Ready[T] = CM.ChunkStartup;
        Dispatch[T] = CM.ChunkStartup;
      }

    Flow Result = Flow::Normal;
    for (uint64_t It = 0; It != Total; ++It) {
      if (!checkBudget()) {
        Result = Flow::Halt;
        break;
      }
      unsigned T;
      if (DOALL) {
        T = static_cast<unsigned>(std::min<uint64_t>(It / Chunk, N - 1));
      } else {
        T = 0;
        for (unsigned I = 1; I != N; ++I)
          if (Ready[I] < Ready[T])
            T = I;
        Ready[T] += CM.IterDispatch;
        Dispatch[T] += CM.IterDispatch;
      }
      CurTid = static_cast<int>(T);

      int64_t IVal = Lo + static_cast<int64_t>(It) * Step;
      storeScalar(IVAddr, IVT, Value::ofInt(IVal));
      if (Obs) {
        Obs->onLoopIter(F->getLoopId(), It);
        Obs->onStore(InvalidAccessId, IVAddr, Ctx.getLayout(IVT).Size);
      }

      OrderedEvents.clear();
      IterStartCycles = Cycles;
      uint64_t C0 = Cycles;
      Flow FL = execStmt(F->getBody());
      uint64_t W = Cycles - C0;

      if (FL == Flow::Break || FL == Flow::Return) {
        trap("break/return escaping a parallel loop");
        Result = Flow::Halt;
        break;
      }
      if (FL == Flow::Halt) {
        Result = Flow::Halt;
        break;
      }

      // Timeline update.
      uint64_t StartT = Ready[T];
      uint64_t Shift = 0;
      for (const OrderedEvent &Ev : OrderedEvents) {
        uint64_t Entry = StartT + Ev.EntryOff + Shift;
        auto &Free = RegionFree[Ev.RegionId];
        if (Free > Entry) {
          uint64_t S = Free - Entry;
          Shift += S;
          Stall[T] += S;
        }
        Free = StartT + Ev.ExitOff + Shift;
      }
      Ready[T] = StartT + W + Shift;
      Work[T] += W;
    }

    RecordOrdered = false;
    InParallelLoop = false;
    CurTid = 0;
    rtPrivCommitAll();
    if (Obs)
      Obs->onLoopExit(F->getLoopId());

    uint64_t WorkDelta = Cycles - Before;
    uint64_t MaxReady = 0;
    for (unsigned T = 0; T != N; ++T)
      MaxReady = std::max(MaxReady, Ready[T]);
    uint64_t SimTime = MaxReady + CM.ForkJoin;

    LS.Iterations += Total;
    LS.WorkCycles += WorkDelta;
    LS.SimTime += SimTime;
    for (unsigned T = 0; T != N; ++T) {
      LS.WorkPerThread[T] += Work[T];
      LS.SyncStallPerThread[T] += Stall[T];
      LS.DispatchPerThread[T] += Dispatch[T];
      LS.IdlePerThread[T] += MaxReady - Ready[T];
    }

    // Program simulated time: replace this loop's work span by its
    // simulated duration.
    TimeAdjust +=
        static_cast<int64_t>(SimTime) - static_cast<int64_t>(WorkDelta);

    return Result;
  }

  //===------------------------------------------------------------------===//
  // Entry
  //===------------------------------------------------------------------===//

  RunResult run(const std::string &Entry) {
    auto HostStart = std::chrono::steady_clock::now();
    // Reset run state (globals are freshly allocated each run).
    Cycles = 0;
    TimeAdjust = 0;
    CurTid = 0;
    InParallelLoop = false;
    Trapped = false;
    Halted = false;
    TrapMessage.clear();
    Output.clear();
    ExitCode = 0;
    Loops.clear();
    RtPrivTranslations = 0;
    RtPrivBytesCopied = 0;

    for (uint64_t Addr : GlobalBlocks)
      Mem.deallocate(Addr);
    GlobalBlocks.clear();
    GlobalAddrs.clear();
    for (VarDecl *G : M.getGlobals()) {
      uint64_t Addr = Mem.allocate(Ctx.getLayout(G->getType()).Size,
                                   AllocKind::Global, G->getId());
      GlobalAddrs[G] = Addr;
      GlobalBlocks.push_back(Addr);
    }

    RunResult R;
    Function *F = M.getFunction(Entry);
    if (!F || !F->isDefinition()) {
      R.Trapped = true;
      R.TrapMessage = "entry function '" + Entry + "' not found";
      return R;
    }
    if (!F->getParams().empty()) {
      R.Trapped = true;
      R.TrapMessage = "entry function must take no parameters";
      return R;
    }

    invokeEntry(F);

    R.Trapped = Trapped;
    R.TrapMessage = TrapMessage;
    R.ExitCode = Trapped ? -1 : ExitCode;
    R.WorkCycles = Cycles;
    int64_t Sim = static_cast<int64_t>(Cycles) + TimeAdjust;
    R.SimTime = Sim > 0 ? static_cast<uint64_t>(Sim) : 0;
    R.Output = std::move(Output);
    R.PeakMemoryBytes = Mem.peakBytes();
    R.Loops = std::move(Loops);
    R.RtPrivTranslations = RtPrivTranslations;
    R.RtPrivBytesCopied = RtPrivBytesCopied;
    R.HostNanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - HostStart)
            .count());
    return R;
  }

  /// Invokes a zero-argument function outside any expression context.
  void invokeEntry(Function *F) {
    const FrameLayout &L = layoutOf(F);
    Frame Fr;
    Fr.F = F;
    Fr.Layout = &L;
    Fr.Base = Mem.allocate(L.Size, AllocKind::Frame, 0);
    if (Obs)
      Obs->onAlloc(*Mem.byBase(Fr.Base));
    Frames.push_back(Fr);
    ReturnValue = Value();
    Flow FL = execStmt(F->getBody());
    if (FL == Flow::Break || FL == Flow::Continue)
      trap("break/continue escaped entry function");
    if (!Trapped && !Halted && F->getReturnType()->isInt())
      ExitCode = ReturnValue.I;
    rtPrivCommitAll();
    if (Obs)
      Obs->onFree(*Mem.byBase(Frames.back().Base));
    Mem.deallocate(Frames.back().Base);
    Frames.pop_back();
  }
};

Interp::Interp(Module &M, InterpOptions Opts) : P(new Impl(M, std::move(Opts))) {}

Interp::~Interp() { delete P; }

void Interp::setObserver(InterpObserver *O) { P->Obs = O; }

RunResult Interp::run(const std::string &Entry) { return P->run(Entry); }
