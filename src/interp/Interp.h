//===- Interp.h - The GDSE VM and multicore simulator -----------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking VM over the IR with:
///  - a deterministic cycle cost model (CostModel.h);
///  - a virtual-multicore scheduler for loops annotated DOALL/DOACROSS:
///    iterations execute in serial order (always semantically safe for code
///    produced by the expansion pipeline) while a timeline computes what an
///    N-core execution would cost — static chunking for DOALL, dynamic
///    chunk-1 self-scheduling with ordered-region stalls for DOACROSS,
///    exactly the policies of the paper's §4.3;
///  - observer hooks feeding the dependence profiler;
///  - the runtime-privatization (SpiceC-style) access-control runtime used
///    by the baseline of §4.2.1;
///  - memory bounds checking and peak-memory accounting (Figure 14).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_INTERP_H
#define GDSE_INTERP_INTERP_H

#include "interp/CostModel.h"
#include "interp/Guard.h"
#include "interp/Memory.h"
#include "ir/IR.h"
#include "support/Resilience.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gdse {

struct BytecodeModule;
class DiagnosticEngine;

/// Which engine executes the program. Both produce bit-identical results
/// (cycles, timeline, observer events, traps, peak memory — enforced by
/// EngineDiffTest); they differ only in speed.
enum class ExecEngine : uint8_t {
  /// The reference tree-walking interpreter: re-dispatches on node kinds for
  /// every operand of every iteration. Simple and obviously correct.
  TreeWalk,
  /// The register-bytecode VM: each function is lowered once to a flat
  /// instruction array (virtual registers, pre-resolved field offsets and
  /// type sizes, jump targets) and run by a dispatch loop. Several times
  /// faster on loop-heavy programs.
  Bytecode,
  /// The bytecode VM with *real* host threads under eligible parallel loops:
  /// DOALL chunks and DOACROSS iterations execute concurrently on a worker
  /// pool of NumThreads threads over the shared VMMemory, with ordered
  /// regions enforced by cross-iteration tickets. Virtual metrics (cycles,
  /// SimTime, peak bytes, per-loop stats, guard counters) are reconstructed
  /// at the join to stay bit-identical to the serial engines; wall-clock
  /// time actually drops on multi-core hosts. Loops a given invocation
  /// cannot thread safely fall back to the simulated serial-order path.
  Threads,
};

/// Engine selection from the GDSE_ENGINE environment variable:
/// "tree"/"treewalk", "bytecode"/"bc", or "threads"; anything else (or
/// unset) yields \p Default. Benchmarks and tools use this with the
/// Bytecode default; the library-level InterpOptions default stays
/// TreeWalk.
ExecEngine engineFromEnv(ExecEngine Default = ExecEngine::Bytecode);

/// Instrumentation callbacks. Addresses are VM (host) addresses; sizes in
/// bytes. Invoked only while a callback sink is installed.
class InterpObserver {
public:
  virtual ~InterpObserver();
  virtual void onLoad(AccessId Id, uint64_t Addr, uint64_t Size) {
    (void)Id;
    (void)Addr;
    (void)Size;
  }
  virtual void onStore(AccessId Id, uint64_t Addr, uint64_t Size) {
    (void)Id;
    (void)Addr;
    (void)Size;
  }
  /// memcpy/memset/calloc/realloc bulk effects. \p B tells which builtin
  /// produced the access; \p CallSiteId is the builtin call's site id.
  virtual void onBulkAccess(bool IsWrite, uint64_t Addr, uint64_t Size,
                            Builtin B, uint32_t CallSiteId) {
    (void)IsWrite;
    (void)Addr;
    (void)Size;
    (void)B;
    (void)CallSiteId;
  }
  virtual void onAlloc(const Allocation &A) { (void)A; }
  virtual void onFree(const Allocation &A) { (void)A; }
  virtual void onLoopEnter(unsigned LoopId) { (void)LoopId; }
  /// Fires before each iteration; Iter counts from 0 per invocation.
  virtual void onLoopIter(unsigned LoopId, uint64_t Iter) {
    (void)LoopId;
    (void)Iter;
  }
  virtual void onLoopExit(unsigned LoopId) { (void)LoopId; }
};

struct InterpOptions {
  /// Simulated core count (the paper's N); also the value of __nthreads.
  int NumThreads = 1;
  /// Honor ParallelKind loop annotations (otherwise run everything serially).
  bool SimulateParallel = true;
  /// Verify every access lies in a live allocation.
  bool BoundsCheck = true;
  /// Abort the run after this many work cycles (0 = unlimited).
  uint64_t MaxCycles = 0;
  CostModel Costs;
  /// Execution engine (see ExecEngine).
  ExecEngine Engine = ExecEngine::TreeWalk;
  /// Optional pre-lowered bytecode for the same module, e.g. the
  /// AnalysisManager's cached per-module analysis. Used only by the
  /// Bytecode engine; when its baked-in cost table differs from Costs the
  /// interpreter silently relowers instead.
  std::shared_ptr<const BytecodeModule> Precompiled;
  /// Runtime dependence validation for speculatively privatized loops (see
  /// Guard.h). Off charges nothing and hooks nothing; Check/Fallback consult
  /// GuardPlans but never perturb cycles, SimTime, or observer streams.
  GuardMode Guard = GuardMode::Off;
  /// The plans emitted by the expansion pass for this module's privatized
  /// loops (PipelineResult::Guard / AnalysisManager::guardPlans()). Loops
  /// without a plan run unguarded in every mode.
  std::vector<std::shared_ptr<const GuardPlan>> GuardPlans;
  /// When set, every distinct DependenceViolation is also reported here
  /// (pass "guard", severity Error in Check mode, Warning in Fallback where
  /// the run recovered). Violations are always recorded in RunResult.
  DiagnosticEngine *GuardDiags = nullptr;
  /// Execution resilience: budgets (deadline / cycle cap / byte budget), the
  /// DOACROSS watchdog, the degradation ladder, and fault injection. The
  /// default (all zero, no injector) adds no observable behavior and near-zero
  /// overhead (see bench/resilience_overhead).
  ResilienceOptions Resilience;
};

/// Per-loop accounting, keyed by loop id.
struct LoopStats {
  ParallelKind Kind = ParallelKind::None;
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
  /// Work cycles spent in loop bodies (excludes simulated overheads).
  uint64_t WorkCycles = 0;
  /// Simulated elapsed time of the loop (= WorkCycles when sequential).
  uint64_t SimTime = 0;
  /// Parallel-run categories, per thread (sized NumThreads when parallel).
  std::vector<uint64_t> WorkPerThread;
  std::vector<uint64_t> SyncStallPerThread;
  std::vector<uint64_t> IdlePerThread;
  std::vector<uint64_t> DispatchPerThread;
  /// Guarded-execution accounting (non-zero only under Check/Fallback).
  uint64_t GuardedInvocations = 0; ///< parallel invocations run with a plan
  uint64_t GuardChecks = 0;        ///< private-class accesses validated
  uint64_t GuardViolations = 0;    ///< violation occurrences (not deduped)
  uint64_t GuardFallbacks = 0;     ///< rollbacks + last-value recoveries
  /// Resilience accounting: invocations the threads engine gave back to the
  /// simulated serial-order path (pool unavailable, watchdog fire), and how
  /// many of those were DOACROSS watchdog fires specifically.
  uint64_t Degradations = 0;
  uint64_t WatchdogFires = 0;
};

struct RunResult {
  bool Trapped = false;
  std::string TrapMessage;
  /// Execution context of the trap when it was raised inside a counted loop
  /// (runForLoop); -1 / -1 / -1 otherwise. LoopId and Iteration are the
  /// innermost loop's; Thread is the virtual thread (0 outside parallel
  /// loops).
  int64_t TrapLoopId = -1;
  int64_t TrapIteration = -1;
  int TrapThread = -1;
  int64_t ExitCode = 0;
  /// Pure work cycles executed (all code, one-core view).
  uint64_t WorkCycles = 0;
  /// Simulated elapsed time: work, with parallel loop spans replaced by
  /// their simulated N-core duration (plus runtime overheads).
  uint64_t SimTime = 0;
  /// Everything print_int/print_float produced, for output equivalence.
  std::string Output;
  uint64_t PeakMemoryBytes = 0;
  /// Host wall-clock nanoseconds the VM spent executing this run — the
  /// timer hook the session's `-time-passes` accounting attributes to
  /// VM-executing stages (dependence profiling, benchmark runs).
  uint64_t HostNanos = 0;
  std::map<unsigned, LoopStats> Loops;
  /// Runtime-privatization accounting (non-zero only when rtpriv_ptr ran).
  uint64_t RtPrivTranslations = 0;
  uint64_t RtPrivBytesCopied = 0;
  /// Guarded execution: every distinct (loop, class, kind) violation, first
  /// occurrence's attribution, with Count totalling repeats. Empty in Off
  /// mode and on clean guarded runs.
  std::vector<DependenceViolation> Violations;
  /// The trap is an engine-level fault (worker pool unavailable or watchdog
  /// wedge with the in-loop ladder disabled) rather than a program error or
  /// resource breach: runResilient() retries such a run on the next engine
  /// down. Never set on clean runs or on budget/OOM/program traps.
  bool EngineFault = false;

  bool ok() const { return !Trapped; }
};

class Interp {
public:
  explicit Interp(Module &M, InterpOptions Opts = InterpOptions());
  ~Interp();
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  void setObserver(InterpObserver *O);

  /// Executes \p Entry (default "main", no arguments). Globals are
  /// (re)initialized to zero on each call.
  RunResult run(const std::string &Entry = "main");

private:
  struct Impl;
  Impl *P;
};

/// Runs \p Entry under Opts, walking the degradation ladder on engine-level
/// faults: a Threads run that ends with RunResult::EngineFault is retried on
/// the serial Bytecode VM, and that on the TreeWalk engine as last resort.
/// Each hop is reported as a warning through \p Diags (pass "resilience")
/// when non-null. Budget breaches, OOM, and program traps are never retried
/// (re-running would fail again); a shared FaultInjector keeps its counters
/// across hops, so one-shot faults do not re-fire on the retry.
RunResult runResilient(Module &M, InterpOptions Opts,
                       const std::string &Entry = "main",
                       DiagnosticEngine *Diags = nullptr);

} // namespace gdse

#endif // GDSE_INTERP_INTERP_H
