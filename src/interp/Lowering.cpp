//===- Lowering.cpp - IR -> register bytecode -------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Lowers each defined Function once into a BytecodeFunction. The contract is
// observable equivalence with the tree-walker (Interp.cpp), so the lowering
// mirrors its evaluation rules exactly:
//
//  - Cycle charges: the tree-walker charges a node's entry cost before
//    evaluating its operands. The lowering keeps a pending-cost accumulator;
//    a node's charge is attached to the *first* instruction emitted for it
//    (every expression emits at least one), which preserves charge order
//    along every control path.
//  - Registers follow a stack discipline: an expression's result register is
//    allocated first, operand temporaries above it, and the high-water mark
//    resets after each expression/statement. Call arguments therefore land
//    in consecutive registers automatically. Named locals and parameters
//    stay in frame memory.
//  - Statically-detectable error paths (undefined callee, aggregate misuse,
//    non-lvalue addressing) lower to Trap instructions carrying the exact
//    tree-walker message.
//  - break/continue lower to static OrdExit sequences for every ordered
//    region they cross, then a jump (while) or an IterBreak/IterEnd
//    terminator (for bodies). return relies on the VM's dynamic scope
//    unwinding instead, since it crosses function-level scopes.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"

#include "ir/AccessInfo.h"
#include "ir/IRPrinter.h"
#include "support/Support.h"

#include <cassert>
#include <cstring>

using namespace gdse;

namespace {

/// A symbolic l-value address: a frame slot, a global, or a computed pointer
/// in a register — plus a folded constant byte offset (field chains).
struct LAddr {
  enum AddrKind : uint8_t { FrameK, GlobalK, RegK } Kind = FrameK;
  uint16_t Reg = 0;                // RegK
  const VarDecl *Global = nullptr; // GlobalK
  uint64_t Off = 0;
};

class FunctionLowering {
public:
  FunctionLowering(TypeContext &Ctx, const CostModel &CM,
                   const std::set<const VarDecl *> &RegVars,
                   const std::map<const Function *, uint32_t> &FuncIndex,
                   const FrameLayout &Layout, BytecodeFunction &BF)
      : Ctx(Ctx), CM(CM), RegVars(RegVars), FuncIndex(FuncIndex),
        Layout(Layout), BF(BF) {}

  void run() {
    const Function *F = BF.F;
    BF.FrameSize = Layout.Size;
    for (const VarDecl *P : F->getParams())
      BF.Params.push_back({Layout.Offsets.at(P), P->getType()});
    lowerStmt(F->getBody());
    // Falling off the end returns with whatever ReturnValue holds, exactly
    // like the tree-walker's Flow::Normal at the body's end.
    emitOp(BCOp::Ret);
    assert(Pending == 0 && "unattached cycle charge at end of function");
    BF.NumRegs = std::max<uint16_t>(MaxRegs, 1);
  }

private:
  TypeContext &Ctx;
  const CostModel &CM;
  const std::set<const VarDecl *> &RegVars;
  const std::map<const Function *, uint32_t> &FuncIndex;
  const FrameLayout &Layout;
  BytecodeFunction &BF;

  uint64_t Pending = 0; ///< charges awaiting the next emitted instruction
  uint16_t Next = 0;    ///< next free virtual register
  uint16_t MaxRegs = 0;

  /// Loop / ordered-region lexical context, innermost last.
  struct LexScope {
    enum ScopeKind : uint8_t { WhileL, ForBody, OrderedR } Kind = WhileL;
    uint32_t HeadPc = 0;               // WhileL: continue target
    std::vector<uint32_t> BreakJumps;  // WhileL: jumps to patch to the exit
  };
  std::vector<LexScope> Scopes;

  //===------------------------------------------------------------------===//
  // Emission primitives
  //===------------------------------------------------------------------===//

  uint32_t here() const { return static_cast<uint32_t>(BF.Code.size()); }

  uint32_t emit(BCInst I) {
    I.Cost += Pending;
    Pending = 0;
    BF.Code.push_back(I);
    return static_cast<uint32_t>(BF.Code.size() - 1);
  }

  uint32_t emitOp(BCOp Op) {
    BCInst I;
    I.Op = Op;
    return emit(I);
  }

  /// Emits a jump with an unpatched target; patch() fills it in.
  uint32_t emitJump(BCOp Op, uint16_t CondReg = 0) {
    BCInst I;
    I.Op = Op;
    I.A = CondReg;
    return emit(I);
  }

  void patch(uint32_t At, uint32_t Target) { BF.Code[At].Imm32 = Target; }

  void emitJumpTo(uint32_t Target) {
    BCInst I;
    I.Op = BCOp::Jump;
    I.Imm32 = Target;
    emit(I);
  }

  void emitTrap(const std::string &Msg) {
    BCInst I;
    I.Op = BCOp::Trap;
    I.Imm32 = static_cast<uint32_t>(BF.TrapMsgs.size());
    BF.TrapMsgs.push_back(Msg);
    emit(I);
  }

  void pend(uint64_t C) { Pending += C; }

  uint16_t allocReg() {
    assert(Next < 0xFFFF && "virtual register file exhausted");
    uint16_t R = Next++;
    MaxRegs = std::max(MaxRegs, Next);
    return R;
  }

  //===------------------------------------------------------------------===//
  // L-values
  //===------------------------------------------------------------------===//

  LAddr lowerLValue(const Expr *E) {
    // Address computation folds into addressing modes: no charge (the
    // tree-walker's evalLValue charges nothing either).
    switch (E->getKind()) {
    case Expr::Kind::VarRef: {
      const VarDecl *D = cast<VarRefExpr>(E)->getDecl();
      LAddr A;
      if (D->isGlobal()) {
        A.Kind = LAddr::GlobalK;
        A.Global = D;
        return A;
      }
      auto It = Layout.Offsets.find(D);
      if (It == Layout.Offsets.end()) {
        emitTrap("variable '" + D->getName() + "' has no slot in frame of " +
                 BF.F->getName());
        return A;
      }
      A.Off = It->second;
      return A;
    }
    case Expr::Kind::Deref: {
      LAddr A;
      A.Kind = LAddr::RegK;
      A.Reg = lowerExpr(cast<DerefExpr>(E)->getPtr());
      return A;
    }
    case Expr::Kind::ArrayIndex: {
      const auto *AI = cast<ArrayIndexExpr>(E);
      uint16_t BaseR = lowerExpr(AI->getBase());
      uint16_t IdxR = lowerExpr(AI->getIndex());
      uint64_t ElemSize = Ctx.getLayout(AI->getType()).Size;
      BCInst I;
      I.Op = BCOp::AddScaled;
      I.A = BaseR;
      I.B = BaseR;
      I.C = IdxR;
      I.Imm64 = static_cast<int64_t>(ElemSize);
      emit(I);
      Next = BaseR + 1;
      LAddr A;
      A.Kind = LAddr::RegK;
      A.Reg = BaseR;
      return A;
    }
    case Expr::Kind::FieldAccess: {
      const auto *F = cast<FieldAccessExpr>(E);
      LAddr A = lowerLValue(F->getBase());
      auto *ST = cast<StructType>(F->getBase()->getType());
      A.Off += Ctx.getLayout(ST).FieldOffsets[F->getFieldIndex()];
      return A;
    }
    default:
      emitTrap("evalLValue of non-lvalue " + printExpr(E));
      return LAddr();
    }
  }

  /// Materializes an l-value address into a fresh register. Always emits at
  /// least one instruction, so a pending AddrOf/Decay charge has a carrier.
  uint16_t materialize(const LAddr &A) {
    uint16_t Dst = allocReg();
    materializeInto(Dst, A);
    return Dst;
  }

  void materializeInto(uint16_t Dst, const LAddr &A) {
    BCInst I;
    I.A = Dst;
    I.Imm64 = static_cast<int64_t>(A.Off);
    switch (A.Kind) {
    case LAddr::FrameK:
      I.Op = BCOp::LeaFrame;
      break;
    case LAddr::GlobalK:
      I.Op = BCOp::LeaGlobal;
      I.Imm32b = A.Global->getId();
      break;
    case LAddr::RegK:
      I.Op = BCOp::AddImm;
      I.B = A.Reg;
      break;
    }
    emit(I);
  }

  void emitLoad(uint16_t Dst, const LAddr &A, ScalarKind K, AccessId Id) {
    BCInst I;
    I.Kind = static_cast<uint8_t>(K);
    I.A = Dst;
    I.Imm32 = Id;
    I.Imm64 = static_cast<int64_t>(A.Off);
    switch (A.Kind) {
    case LAddr::FrameK:
      I.Op = BCOp::LdFrame;
      break;
    case LAddr::GlobalK:
      I.Op = BCOp::LdGlobal;
      I.Imm32b = A.Global->getId();
      break;
    case LAddr::RegK:
      I.Op = BCOp::LdInd;
      I.B = A.Reg;
      break;
    }
    emit(I);
  }

  void emitStore(uint16_t Src, const LAddr &A, ScalarKind K, AccessId Id) {
    BCInst I;
    I.Kind = static_cast<uint8_t>(K);
    I.A = Src;
    I.Imm32 = Id;
    I.Imm64 = static_cast<int64_t>(A.Off);
    switch (A.Kind) {
    case LAddr::FrameK:
      I.Op = BCOp::StFrame;
      break;
    case LAddr::GlobalK:
      I.Op = BCOp::StGlobal;
      I.Imm32b = A.Global->getId();
      break;
    case LAddr::RegK:
      I.Op = BCOp::StInd;
      I.B = A.Reg;
      break;
    }
    emit(I);
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Lowers \p E into a freshly allocated register, releasing all operand
  /// temporaries above it.
  uint16_t lowerExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::SizeofType:
    case Expr::Kind::ThreadId:
    case Expr::Kind::NumThreads:
      break; // immediates: free
    default:
      pend(CM.ExprBase);
      break;
    }
    uint16_t Dst = allocReg();
    lowerExprInto(Dst, E);
    Next = Dst + 1;
    return Dst;
  }

  void lowerExprInto(uint16_t Dst, const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit: {
      BCInst I;
      I.Op = BCOp::ConstI;
      I.A = Dst;
      I.Imm64 = cast<IntLitExpr>(E)->getValue();
      emit(I);
      return;
    }
    case Expr::Kind::FloatLit: {
      BCInst I;
      I.Op = BCOp::ConstF;
      I.A = Dst;
      double V = cast<FloatLitExpr>(E)->getValue();
      std::memcpy(&I.Imm64, &V, 8);
      emit(I);
      return;
    }
    case Expr::Kind::VarRef:
    case Expr::Kind::Deref:
    case Expr::Kind::ArrayIndex:
    case Expr::Kind::FieldAccess:
      emitTrap("r-value evaluation of bare l-value " + printExpr(E));
      emitConstZero(Dst);
      return;
    case Expr::Kind::Load:
      lowerLoad(Dst, cast<LoadExpr>(E));
      return;
    case Expr::Kind::Unary:
      lowerUnary(Dst, cast<UnaryExpr>(E));
      return;
    case Expr::Kind::Binary:
      lowerBinary(Dst, cast<BinaryExpr>(E));
      return;
    case Expr::Kind::AddrOf:
      materializeInto(Dst, lowerLValue(cast<AddrOfExpr>(E)->getLocation()));
      return;
    case Expr::Kind::Decay:
      materializeInto(Dst,
                      lowerLValue(cast<DecayExpr>(E)->getArrayLocation()));
      return;
    case Expr::Kind::Call:
      lowerCall(Dst, cast<CallExpr>(E));
      return;
    case Expr::Kind::Cast:
      lowerCast(Dst, cast<CastExpr>(E));
      return;
    case Expr::Kind::SizeofType: {
      BCInst I;
      I.Op = BCOp::ConstI;
      I.A = Dst;
      I.Imm64 = static_cast<int64_t>(
          Ctx.getLayout(cast<SizeofTypeExpr>(E)->getQueriedType()).Size);
      emit(I);
      return;
    }
    case Expr::Kind::ThreadId: {
      BCInst I;
      I.Op = BCOp::Tid;
      I.A = Dst;
      emit(I);
      return;
    }
    case Expr::Kind::NumThreads: {
      BCInst I;
      I.Op = BCOp::NThreads;
      I.A = Dst;
      emit(I);
      return;
    }
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      uint16_t CondR = lowerExpr(C->getCond());
      uint16_t Mark = Next;
      uint32_t JElse = emitJump(BCOp::JumpIfZero, CondR);
      uint16_t TR = lowerExpr(C->getThen());
      emitMove(Dst, TR);
      uint32_t JEnd = emitJump(BCOp::Jump);
      patch(JElse, here());
      Next = Mark;
      uint16_t ER = lowerExpr(C->getElse());
      emitMove(Dst, ER);
      patch(JEnd, here());
      return;
    }
    }
    gdse_unreachable("unknown expr kind");
  }

  void emitConstZero(uint16_t Dst) {
    BCInst I;
    I.Op = BCOp::ConstI;
    I.A = Dst;
    emit(I);
  }

  void emitMove(uint16_t Dst, uint16_t Src) {
    BCInst I;
    I.Op = BCOp::Move;
    I.A = Dst;
    I.B = Src;
    emit(I);
  }

  void lowerLoad(uint16_t Dst, const LoadExpr *L) {
    if (L->getType()->isAggregate()) {
      emitTrap("aggregate load outside assignment: " + printExpr(L));
      emitConstZero(Dst);
      return;
    }
    LAddr A = lowerLValue(L->getLocation());
    if (!isRegisterAccess(RegVars, L->getLocation()))
      pend(CM.Load);
    emitLoad(Dst, A, scalarKindOf(L->getType()), L->getAccessId());
  }

  void lowerUnary(uint16_t Dst, const UnaryExpr *U) {
    uint16_t S = lowerExpr(U->getSub());
    Type *T = U->getType();
    BCInst I;
    I.A = Dst;
    I.B = S;
    switch (U->getOp()) {
    case UnaryOp::Neg:
      if (T->isFloat()) {
        I.Op = BCOp::NegF;
      } else {
        I.Op = BCOp::NegI;
        I.Kind = static_cast<uint8_t>(scalarKindOf(T));
      }
      break;
    case UnaryOp::BitNot:
      I.Op = BCOp::BitNotI;
      I.Kind = static_cast<uint8_t>(scalarKindOf(T));
      break;
    case UnaryOp::LogicalNot:
      I.Op = U->getSub()->getType()->isFloat() ? BCOp::LogNotF : BCOp::LogNotI;
      break;
    }
    emit(I);
  }

  void lowerBinary(uint16_t Dst, const BinaryExpr *B) {
    BinaryOp Op = B->getOp();
    // Short-circuit forms: preset the result, conditionally evaluate RHS.
    if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr) {
      bool IsAnd = Op == BinaryOp::LogicalAnd;
      BCInst CI;
      CI.Op = BCOp::ConstI;
      CI.A = Dst;
      CI.Imm64 = IsAnd ? 0 : 1;
      emit(CI); // carries the node's pending ExprBase
      uint16_t L = lowerExpr(B->getLHS());
      uint32_t J =
          emitJump(IsAnd ? BCOp::JumpIfZero : BCOp::JumpIfNonZero, L);
      uint16_t R = lowerExpr(B->getRHS());
      BCInst BI;
      BI.Op = BCOp::BoolI;
      BI.A = Dst;
      BI.B = R;
      emit(BI);
      patch(J, here());
      return;
    }

    uint16_t L = lowerExpr(B->getLHS());
    uint16_t R = lowerExpr(B->getRHS());
    Type *LT = B->getLHS()->getType();
    Type *RT = B->getRHS()->getType();

    BCInst I;
    I.A = Dst;
    I.B = L;
    I.C = R;

    // Pointer arithmetic.
    if (LT->isPointer() && RT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      switch (Op) {
      case BinaryOp::Sub:
        I.Op = BCOp::PtrDiff;
        I.Imm64 = static_cast<int64_t>(Size);
        emit(I);
        return;
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        I.Op = BCOp::CmpU;
        I.Kind = static_cast<uint8_t>(predOf(Op));
        emit(I);
        return;
      default:
        emitTrap("invalid pointer-pair operation");
        emitConstZero(Dst);
        return;
      }
    }
    if (LT->isPointer()) {
      uint64_t Size = Ctx.getLayout(cast<PointerType>(LT)->getPointee()).Size;
      if (Op == BinaryOp::Add || Op == BinaryOp::Sub) {
        I.Op = BCOp::AddScaled;
        I.Imm64 = Op == BinaryOp::Add ? static_cast<int64_t>(Size)
                                      : -static_cast<int64_t>(Size);
        emit(I);
        return;
      }
      emitTrap("invalid pointer arithmetic operator");
      emitConstZero(Dst);
      return;
    }

    // Comparisons over scalars (operands share a type after conversions).
    bool IsCmp = Op == BinaryOp::Eq || Op == BinaryOp::Ne ||
                 Op == BinaryOp::Lt || Op == BinaryOp::Le ||
                 Op == BinaryOp::Gt || Op == BinaryOp::Ge;
    if (IsCmp) {
      if (LT->isFloat())
        I.Op = BCOp::CmpF;
      else
        I.Op = cast<IntType>(LT)->isSigned() ? BCOp::CmpI : BCOp::CmpU;
      I.Kind = static_cast<uint8_t>(predOf(Op));
      emit(I);
      return;
    }

    Type *T = B->getType();
    if (T->isFloat()) {
      switch (Op) {
      case BinaryOp::Add:
        I.Op = BCOp::AddF;
        break;
      case BinaryOp::Sub:
        I.Op = BCOp::SubF;
        break;
      case BinaryOp::Mul:
        I.Op = BCOp::MulF;
        break;
      case BinaryOp::Div:
        I.Op = BCOp::DivF;
        I.Cost = CM.DivRem;
        break;
      default:
        emitTrap("invalid float operator");
        emitConstZero(Dst);
        return;
      }
      emit(I);
      return;
    }

    I.Kind = static_cast<uint8_t>(scalarKindOf(T));
    switch (Op) {
    case BinaryOp::Add:
      I.Op = BCOp::AddI;
      break;
    case BinaryOp::Sub:
      I.Op = BCOp::SubI;
      break;
    case BinaryOp::Mul:
      I.Op = BCOp::MulI;
      break;
    case BinaryOp::Div:
      I.Op = BCOp::DivI;
      // Constant divisors are strength-reduced by compilers (mul+shift).
      I.Cost = isa<IntLitExpr>(B->getRHS()) ? costs::ConstDivisorDiv
                                            : CM.DivRem;
      break;
    case BinaryOp::Rem:
      I.Op = BCOp::RemI;
      I.Cost = CM.DivRem;
      break;
    case BinaryOp::BitAnd:
      I.Op = BCOp::BitAndI;
      break;
    case BinaryOp::BitOr:
      I.Op = BCOp::BitOrI;
      break;
    case BinaryOp::BitXor:
      I.Op = BCOp::BitXorI;
      break;
    case BinaryOp::Shl:
      I.Op = BCOp::ShlI;
      break;
    case BinaryOp::Shr:
      I.Op = BCOp::ShrI;
      break;
    default:
      gdse_unreachable("unhandled integer binary op");
    }
    emit(I);
  }

  static CmpPred predOf(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Eq:
      return CmpPred::Eq;
    case BinaryOp::Ne:
      return CmpPred::Ne;
    case BinaryOp::Lt:
      return CmpPred::Lt;
    case BinaryOp::Le:
      return CmpPred::Le;
    case BinaryOp::Gt:
      return CmpPred::Gt;
    default:
      return CmpPred::Ge;
    }
  }

  void lowerCast(uint16_t Dst, const CastExpr *C) {
    uint16_t S = lowerExpr(C->getSub());
    Type *From = C->getSub()->getType();
    Type *To = C->getType();
    BCInst I;
    I.A = Dst;
    I.B = S;
    if (To->isFloat()) {
      bool To32 = cast<FloatType>(To)->getBits() == 32;
      if (From->isFloat()) {
        I.Op = BCOp::CastFF;
        I.Kind = To32 ? 2 : 0;
      } else {
        I.Op = BCOp::CastIF;
        I.Kind = static_cast<uint8_t>(
            (cast<IntType>(From)->isSigned() ? 0 : 1) | (To32 ? 2 : 0));
      }
    } else if (To->isInt()) {
      I.Op = From->isFloat() ? BCOp::CastFI : BCOp::CastII;
      I.Kind = static_cast<uint8_t>(scalarKindOf(To));
    } else {
      // Pointer destination: int or pointer source passes through.
      I.Op = BCOp::Move;
    }
    emit(I);
  }

  void lowerCall(uint16_t Dst, const CallExpr *C) {
    if (C->isBuiltin()) {
      // sqrt's cycle charge historically precedes its argument's
      // evaluation; keep it pending so it lands on the first argument
      // instruction (or the BuiltinOp itself for zero-argument calls).
      if (C->getBuiltin() == Builtin::SqrtFn)
        pend(CM.DivRem);
      uint16_t ArgBase = Next;
      for (const Expr *A : C->getArgs())
        lowerExpr(A);
      BCInst I;
      I.Op = BCOp::BuiltinOp;
      I.Kind = static_cast<uint8_t>(C->getBuiltin());
      I.A = Dst;
      I.B = ArgBase;
      I.C = static_cast<uint16_t>(C->getNumArgs());
      I.Imm32 = C->getSiteId();
      emit(I);
      return;
    }

    const Function *F = C->getCallee();
    if (!F->isDefinition()) {
      // The depth check still precedes the undefined-callee trap, exactly
      // like the tree-walker; this guard carries no Call charge (Kind=0).
      BCInst G;
      G.Op = BCOp::CallGuard;
      emit(G);
      emitTrap("call to undefined function '" + F->getName() + "'");
      emitConstZero(Dst);
      return;
    }
    BCInst G;
    G.Op = BCOp::CallGuard;
    G.Kind = 1; // Call charge included; backed out if the depth check traps
    G.Cost = CM.Call;
    emit(G);
    uint16_t ArgBase = Next;
    for (const Expr *A : C->getArgs())
      lowerExpr(A);
    BCInst I;
    I.Op = BCOp::Call;
    I.A = Dst;
    I.B = ArgBase;
    I.C = static_cast<uint16_t>(C->getNumArgs());
    I.Imm32 = FuncIndex.at(F);
    emit(I);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  void lowerStmt(const Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      uint16_t Base = Next;
      for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts()) {
        Next = Base;
        lowerStmt(Sub);
      }
      Next = Base;
      return;
    }
    case Stmt::Kind::ExprStmt:
      lowerExpr(cast<ExprStmt>(S)->getExpr());
      return;
    case Stmt::Kind::Assign:
      lowerAssign(cast<AssignStmt>(S));
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      uint16_t C = lowerExpr(I->getCond());
      uint32_t JElse = emitJump(BCOp::JumpIfZero, C);
      lowerStmt(I->getThen());
      if (I->getElse()) {
        uint32_t JEnd = emitJump(BCOp::Jump);
        patch(JElse, here());
        lowerStmt(I->getElse());
        patch(JEnd, here());
      } else {
        patch(JElse, here());
      }
      return;
    }
    case Stmt::Kind::While:
      lowerWhile(cast<WhileStmt>(S));
      return;
    case Stmt::Kind::For:
      lowerFor(cast<ForStmt>(S));
      return;
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      BCInst I;
      I.Op = BCOp::Ret;
      if (R->getValue()) {
        I.A = lowerExpr(R->getValue());
        I.Kind = 1;
      }
      emit(I);
      return;
    }
    case Stmt::Kind::Break:
      lowerBreakContinue(/*IsBreak=*/true);
      return;
    case Stmt::Kind::Continue:
      lowerBreakContinue(/*IsBreak=*/false);
      return;
    case Stmt::Kind::Ordered: {
      const auto *O = cast<OrderedStmt>(S);
      BCInst I;
      I.Op = BCOp::OrdEnter;
      I.Imm32 = O->getRegionId();
      I.Cost = CM.OrderedEnter;
      emit(I);
      Scopes.push_back({LexScope::OrderedR, 0, {}});
      lowerStmt(O->getBody());
      Scopes.pop_back();
      emitOp(BCOp::OrdExit);
      return;
    }
    }
    gdse_unreachable("unknown stmt kind");
  }

  void lowerAssign(const AssignStmt *A) {
    Type *T = A->getLHS()->getType();
    if (T->isAggregate()) {
      const auto *RL = dyn_cast<LoadExpr>(A->getRHS());
      if (!RL) {
        emitTrap("aggregate assignment RHS must be a memory location");
        return;
      }
      uint16_t DstR = materialize(lowerLValue(A->getLHS()));
      uint16_t SrcR = materialize(lowerLValue(RL->getLocation()));
      BCInst I;
      I.Op = BCOp::AggCopy;
      I.A = DstR;
      I.B = SrcR;
      I.Imm64 = static_cast<int64_t>(Ctx.getLayout(T).Size);
      I.Imm32 = A->getAccessId();
      I.Imm32b = RL->getAccessId();
      emit(I);
      return;
    }
    LAddr LA = lowerLValue(A->getLHS());
    uint16_t V = lowerExpr(A->getRHS());
    if (!isRegisterAccess(RegVars, A->getLHS()))
      pend(CM.Store);
    emitStore(V, LA, scalarKindOf(T), A->getAccessId());
  }

  void lowerWhile(const WhileStmt *W) {
    BCInst EI;
    EI.Op = BCOp::LoopEnterW;
    EI.Imm32 = W->getLoopId();
    emit(EI);
    uint32_t Head = here();
    emitOp(BCOp::WhileHead); // per-iteration budget check
    uint16_t C = lowerExpr(W->getCond());
    uint32_t JExit = emitJump(BCOp::JumpIfZero, C);
    BCInst NI;
    NI.Op = BCOp::IterNote;
    NI.Imm32 = W->getLoopId();
    emit(NI);
    Scopes.push_back({LexScope::WhileL, Head, {}});
    lowerStmt(W->getBody());
    emitJumpTo(Head);
    std::vector<uint32_t> Breaks = std::move(Scopes.back().BreakJumps);
    Scopes.pop_back();
    // The exit label *is* the LoopExitW instruction, so every exit path
    // (condition false, break) runs the loop-exit bookkeeping exactly once.
    uint32_t ExitPc = here();
    patch(JExit, ExitPc);
    for (uint32_t J : Breaks)
      patch(J, ExitPc);
    emitOp(BCOp::LoopExitW);
  }

  void lowerFor(const ForStmt *F) {
    uint32_t MetaIdx = static_cast<uint32_t>(BF.Fors.size());
    BF.Fors.emplace_back();
    BCInst FI;
    FI.Op = BCOp::ForLoop;
    FI.Imm32 = MetaIdx;
    emit(FI);
    uint32_t BoundsStart = here();
    uint16_t Lo = lowerExpr(F->getInit());
    uint16_t Hi = lowerExpr(F->getLimit());
    uint16_t St = lowerExpr(F->getStep());
    emitOp(BCOp::BoundsEnd);
    uint32_t BodyStart = here();
    Scopes.push_back({LexScope::ForBody, 0, {}});
    lowerStmt(F->getBody());
    emitOp(BCOp::IterEnd);
    Scopes.pop_back();

    // BF.Fors may have grown (nested fors): re-resolve the slot only now.
    BCForMeta FM;
    FM.LoopId = F->getLoopId();
    FM.Kind = F->getParallelKind();
    FM.BoundsStart = BoundsStart;
    FM.BodyStart = BodyStart;
    FM.ExitPc = here();
    FM.LoReg = Lo;
    FM.HiReg = Hi;
    FM.StepReg = St;
    const VarDecl *IV = F->getInductionVar();
    FM.IVType = IV->getType();
    if (IV->isGlobal())
      FM.IVGlobal = IV;
    else
      FM.IVFrameOff = Layout.Offsets.at(IV);
    BF.Fors[MetaIdx] = FM;
  }

  void lowerBreakContinue(bool IsBreak) {
    // Statically unwind: record the ordered-region exits this jump crosses,
    // then leave the innermost enclosing loop construct.
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      switch (It->Kind) {
      case LexScope::OrderedR:
        emitOp(BCOp::OrdExit);
        continue;
      case LexScope::WhileL:
        if (IsBreak)
          It->BreakJumps.push_back(emitJump(BCOp::Jump));
        else
          emitJumpTo(It->HeadPc);
        return;
      case LexScope::ForBody:
        emitOp(IsBreak ? BCOp::IterBreak : BCOp::IterEnd);
        return;
      }
    }
    emitTrap("break/continue escaped function body");
  }
};

} // namespace

std::shared_ptr<const BytecodeModule>
gdse::lowerToBytecode(Module &M, const CostModel &Costs) {
  auto BM = std::make_shared<BytecodeModule>();
  BM->Costs = Costs;
  std::set<const VarDecl *> RegVars = collectRegisterVars(M);
  TypeContext &Ctx = M.getTypes();
  const std::vector<Function *> &Fns = M.getFunctions();
  BM->Funcs.resize(Fns.size());
  for (uint32_t I = 0; I != Fns.size(); ++I)
    BM->Index[Fns[I]] = I;
  for (uint32_t I = 0; I != Fns.size(); ++I) {
    BytecodeFunction &BF = BM->Funcs[I];
    BF.F = Fns[I];
    if (!Fns[I]->isDefinition())
      continue;
    FrameLayout Layout = computeFrameLayout(Ctx, Fns[I]);
    FunctionLowering FL(Ctx, Costs, RegVars, BM->Index, Layout, BF);
    FL.run();
  }
  return BM;
}
