//===- Memory.cpp - VM memory and allocation registry ----------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include "support/Support.h"

#include <algorithm>
#include <cstring>
#include <new>

using namespace gdse;

thread_local MemDeltaSink *VMMemory::TLSink = nullptr;

void VMMemory::setDeltaSink(MemDeltaSink *S) { TLSink = S; }

VMMemory::~VMMemory() {
  for (auto &[Base, A] : ByBase)
    ::operator delete(reinterpret_cast<void *>(Base));
}

uint64_t VMMemory::allocate(uint64_t Size, AllocKind Kind, uint32_t SiteId) {
  // Zero-size allocations still get a distinct address.
  uint64_t HostSize = Size ? Size : 1;

  Allocation A;
  A.Size = Size;
  A.SiteId = SiteId;
  A.Kind = Kind;
  A.Live = true;

  if (Concurrent) {
    std::lock_guard<std::mutex> Lock(Mu);
    // Budget check under the same lock that owns CurBytes, so concurrent
    // allocators cannot jointly overshoot the cap.
    if (ByteBudget && CurBytes + Size > ByteBudget)
      return 0;
    void *P = ::operator new(HostSize, std::nothrow);
    if (!P)
      return 0;
    std::memset(P, 0, HostSize);
    uint64_t Base = reinterpret_cast<uint64_t>(P);
    A.Base = Base;
    A.Generation = NextGeneration++;
    ByBase[Base] = A;
    CurBytes += Size;
    ++NumLive;
    if (TLSink)
      TLSink->note(static_cast<int64_t>(Size));
    else
      PeakBytes = std::max(PeakBytes, CurBytes);
    return Base;
  }

  if (ByteBudget && CurBytes + Size > ByteBudget)
    return 0;
  void *P = ::operator new(HostSize, std::nothrow);
  if (!P)
    return 0;
  std::memset(P, 0, HostSize);
  uint64_t Base = reinterpret_cast<uint64_t>(P);
  A.Base = Base;
  A.Generation = NextGeneration++;
  ByBase[Base] = A;
  CurBytes += Size;
  PeakBytes = std::max(PeakBytes, CurBytes);
  ++NumLive;
  return Base;
}

bool VMMemory::deallocate(uint64_t Base) {
  if (Concurrent) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ByBase.find(Base);
    if (It == ByBase.end() || !It->second.Live)
      return false;
    CurBytes -= It->second.Size;
    --NumLive;
    if (TLSink)
      TLSink->note(-static_cast<int64_t>(It->second.Size));
    // Defer the host delete and the registry erase: another worker may hold
    // an Allocation pointer from containing()/byBase(), and the host
    // allocator must not recycle the address mid-loop.
    It->second.Live = false;
    ConcQuarantine.push_back(Base);
    return true;
  }

  auto It = ByBase.find(Base);
  if (It == ByBase.end() || !It->second.Live)
    return false;
  CurBytes -= It->second.Size;
  --NumLive;
  if (LastHit == &It->second)
    LastHit = nullptr;
  if (Speculating && It->second.Generation < SpecBeginGeneration) {
    // Pre-checkpoint block freed under speculation: keep the host block (the
    // address must stay reserved so rollback can resurrect it) and the
    // registry entry, only marked dead.
    It->second.Live = false;
    SpecQuarantine.push_back(Base);
    return true;
  }
  ::operator delete(reinterpret_cast<void *>(Base));
  // The host allocator may hand the same address out again; drop the entry
  // entirely (Generation uniqueness is preserved by NextGeneration).
  ByBase.erase(It);
  return true;
}

uint64_t VMMemory::allocateUntracked(uint64_t Size) {
  if (Concurrent)
    reportFatalError("VMMemory: untracked allocation while concurrent");
  uint64_t HostSize = Size ? Size : 1;
  void *P = ::operator new(HostSize);
  std::memset(P, 0, HostSize);
  uint64_t Base = reinterpret_cast<uint64_t>(P);
  Allocation A;
  A.Base = Base;
  A.Size = Size;
  A.Generation = NextGeneration++;
  A.SiteId = 0;
  A.Kind = AllocKind::Frame;
  A.Live = true;
  A.Untracked = true;
  ByBase[Base] = A;
  return Base;
}

void VMMemory::releaseUntracked(uint64_t Base) {
  if (Concurrent)
    reportFatalError("VMMemory: untracked release while concurrent");
  auto It = ByBase.find(Base);
  if (It == ByBase.end() || !It->second.Untracked)
    reportFatalError("VMMemory: releaseUntracked of a tracked block");
  if (LastHit == &It->second)
    LastHit = nullptr;
  ::operator delete(reinterpret_cast<void *>(Base));
  ByBase.erase(It);
}

void VMMemory::beginConcurrent() {
  if (Concurrent)
    reportFatalError("VMMemory: nested concurrent mode");
  // Running inside a speculation checkpoint is allowed: the watchdog
  // recovery path checkpoints the arena, then fans iterations out to real
  // threads. endConcurrent() keeps the checkpoint's invariants.
  // The cache slot must not be touched (even read) while workers run.
  LastHit = nullptr;
  Concurrent = true;
}

void VMMemory::endConcurrent() {
  if (!Concurrent)
    return;
  Concurrent = false;
  for (uint64_t Base : ConcQuarantine) {
    auto It = ByBase.find(Base);
    if (It != ByBase.end() && Speculating &&
        It->second.Generation < SpecBeginGeneration) {
      // Pre-checkpoint block freed by a worker: the address must stay
      // reserved (entry kept, marked dead by deallocate()) so a rollback can
      // resurrect it — same deferral as the serial speculation path.
      SpecQuarantine.push_back(Base);
      continue;
    }
    ::operator delete(reinterpret_cast<void *>(Base));
    ByBase.erase(Base);
  }
  ConcQuarantine.clear();
  LastHit = nullptr;
}

void VMMemory::beginSpeculation() {
  if (Speculating)
    reportFatalError("VMMemory: nested speculation checkpoint");
  if (Concurrent)
    reportFatalError("VMMemory: speculation during concurrent mode");
  Speculating = true;
  SpecBeginGeneration = NextGeneration;
  SpecCurBytes = CurBytes;
  SpecNumLive = NumLive;
  SpecSnapshot.clear();
  SpecSnapshot.reserve(NumLive);
  for (const auto &[Base, A] : ByBase) {
    if (!A.Live)
      continue;
    SpecSaved S;
    S.Meta = A;
    S.Bytes.reset(new uint8_t[A.Size ? A.Size : 1]);
    std::memcpy(S.Bytes.get(), reinterpret_cast<void *>(Base),
                A.Size ? A.Size : 1);
    SpecSnapshot.push_back(std::move(S));
  }
}

void VMMemory::commitSpeculation() {
  if (!Speculating)
    return;
  for (uint64_t Base : SpecQuarantine) {
    ::operator delete(reinterpret_cast<void *>(Base));
    ByBase.erase(Base);
  }
  SpecQuarantine.clear();
  SpecSnapshot.clear();
  LastHit = nullptr;
  Speculating = false;
}

void VMMemory::rollbackSpeculation() {
  if (!Speculating)
    return;
  // Blocks created during speculation (dead ones were reclaimed eagerly in
  // deallocate(), so every survivor with a post-checkpoint generation is
  // live): delete for real.
  for (auto It = ByBase.begin(); It != ByBase.end();) {
    if (It->second.Generation >= SpecBeginGeneration) {
      ::operator delete(reinterpret_cast<void *>(It->first));
      It = ByBase.erase(It);
    } else {
      ++It;
    }
  }
  // Resurrect and restore every checkpointed block.
  for (SpecSaved &S : SpecSnapshot) {
    auto It = ByBase.find(S.Meta.Base);
    if (It == ByBase.end())
      reportFatalError("VMMemory: checkpointed block vanished");
    It->second = S.Meta;
    std::memcpy(reinterpret_cast<void *>(S.Meta.Base), S.Bytes.get(),
                S.Meta.Size ? S.Meta.Size : 1);
  }
  CurBytes = SpecCurBytes;
  NumLive = SpecNumLive;
  NextGeneration = SpecBeginGeneration;
  SpecQuarantine.clear();
  SpecSnapshot.clear();
  LastHit = nullptr;
  Speculating = false;
}

const Allocation *VMMemory::containing(uint64_t Addr) const {
  if (Concurrent) {
    // No last-hit cache here: the slot is written by const lookups and would
    // race between concurrent readers (the bug this mode exists to avoid).
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ByBase.upper_bound(Addr);
    if (It == ByBase.begin())
      return nullptr;
    --It;
    const Allocation &A = It->second;
    if (!A.Live || Addr >= A.Base + std::max<uint64_t>(A.Size, 1))
      return nullptr;
    return &A;
  }
  // Fast path: repeated accesses into the block we answered last time. The
  // Live check is load-bearing: every path that kills or erases an entry
  // must null the cache slot (deallocate, releaseUntracked, the concurrent
  // and speculation transitions), but a stale hit here would resurrect a
  // freed block whose address the host allocator may already have recycled
  // for a different allocation — so a dead cached entry is never trusted.
  if (LastHit && LastHit->Live &&
      Addr - LastHit->Base < std::max<uint64_t>(LastHit->Size, 1))
    return LastHit;
  auto It = ByBase.upper_bound(Addr);
  if (It == ByBase.begin())
    return nullptr;
  --It;
  const Allocation &A = It->second;
  if (!A.Live || Addr >= A.Base + std::max<uint64_t>(A.Size, 1))
    return nullptr;
  LastHit = &A;
  return &A;
}

const Allocation *VMMemory::byBase(uint64_t Base) const {
  if (Concurrent) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ByBase.find(Base);
    if (It == ByBase.end() || !It->second.Live)
      return nullptr;
    return &It->second;
  }
  auto It = ByBase.find(Base);
  if (It == ByBase.end() || !It->second.Live)
    return nullptr;
  return &It->second;
}
