//===- Memory.cpp - VM memory and allocation registry ----------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

#include "support/Support.h"

#include <cstring>

using namespace gdse;

VMMemory::~VMMemory() {
  for (auto &[Base, A] : ByBase)
    ::operator delete(reinterpret_cast<void *>(Base));
}

uint64_t VMMemory::allocate(uint64_t Size, AllocKind Kind, uint32_t SiteId) {
  // Zero-size allocations still get a distinct address.
  uint64_t HostSize = Size ? Size : 1;
  void *P = ::operator new(HostSize);
  std::memset(P, 0, HostSize);
  uint64_t Base = reinterpret_cast<uint64_t>(P);

  Allocation A;
  A.Base = Base;
  A.Size = Size;
  A.Generation = NextGeneration++;
  A.SiteId = SiteId;
  A.Kind = Kind;
  A.Live = true;
  ByBase[Base] = A;

  CurBytes += Size;
  PeakBytes = std::max(PeakBytes, CurBytes);
  ++NumLive;
  return Base;
}

bool VMMemory::deallocate(uint64_t Base) {
  auto It = ByBase.find(Base);
  if (It == ByBase.end() || !It->second.Live)
    return false;
  CurBytes -= It->second.Size;
  --NumLive;
  if (LastHit == &It->second)
    LastHit = nullptr;
  ::operator delete(reinterpret_cast<void *>(Base));
  // The host allocator may hand the same address out again; drop the entry
  // entirely (Generation uniqueness is preserved by NextGeneration).
  ByBase.erase(It);
  return true;
}

const Allocation *VMMemory::containing(uint64_t Addr) const {
  // Fast path: repeated accesses into the block we answered last time.
  if (LastHit && Addr - LastHit->Base < std::max<uint64_t>(LastHit->Size, 1))
    return LastHit;
  auto It = ByBase.upper_bound(Addr);
  if (It == ByBase.begin())
    return nullptr;
  --It;
  const Allocation &A = It->second;
  if (!A.Live || Addr >= A.Base + std::max<uint64_t>(A.Size, 1))
    return nullptr;
  LastHit = &A;
  return &A;
}

const Allocation *VMMemory::byBase(uint64_t Base) const {
  auto It = ByBase.find(Base);
  if (It == ByBase.end() || !It->second.Live)
    return nullptr;
  return &It->second;
}
