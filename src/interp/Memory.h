//===- Memory.h - VM memory and allocation registry -------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's memory: allocations are real host blocks (so VM pointers are host
/// addresses and pointer arithmetic is native), plus a registry that maps any
/// address to its containing allocation. The registry provides:
///  - bounds checking for every VM access (on by default);
///  - allocation *generation* numbers so the dependence profiler does not
///    fabricate dependences between a freed block and an unrelated later
///    allocation reusing the same host address;
///  - allocation-site ids linking heap objects back to the static malloc
///    call they came from (used by expansion target selection and by the
///    runtime-privatization baseline's heap prefix);
///  - current/peak byte accounting (Figure 14).
///
/// The registry has two operating modes. In the default serial mode there is
/// no locking and containing() uses a single-slot last-hit cache. Inside a
/// host-threaded parallel loop (ThreadedLoop.cpp) the owning ProgramContext
/// puts the arena into *concurrent mode*: every registry operation takes a
/// mutex, the last-hit cache is neither read nor written (it was mutated on
/// every lookup and would race between concurrent readers), deallocation
/// defers the host delete and registry erase so Allocation pointers handed
/// to one thread stay valid while another frees, and peak accounting is
/// replaced by per-iteration deltas that the post-join merge replays in
/// serial iteration order — so peakBytes() is bit-identical to a serial run.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_MEMORY_H
#define GDSE_INTERP_MEMORY_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace gdse {

enum class AllocKind : uint8_t { Heap, Global, Frame };

struct Allocation {
  uint64_t Base = 0;
  uint64_t Size = 0;
  /// Monotonically increasing id; distinguishes reuses of a host address.
  uint32_t Generation = 0;
  /// Static allocation site (CallExpr site id for heap; VarDecl id for
  /// globals; 0 for frames).
  uint32_t SiteId = 0;
  AllocKind Kind = AllocKind::Heap;
  bool Live = true;
  /// Excluded from current/peak byte accounting: the per-worker frame copies
  /// of a host-threaded loop have no serial counterpart, so charging them
  /// would break the bit-identity of peakBytes() with the serial engines.
  bool Untracked = false;
};

/// Per-iteration allocation deltas recorded by a worker thread while the
/// arena is in concurrent mode. The post-join merge replays these in serial
/// iteration order to reconstruct the exact peak a serial execution would
/// have seen: peak = max over iterations of (bytes-live-before + MaxPrefix).
struct MemDeltaSink {
  int64_t Cur = 0;       ///< net bytes allocated so far this iteration
  int64_t MaxPrefix = 0; ///< running max of Cur within the iteration
  void note(int64_t Delta) {
    Cur += Delta;
    if (Cur > MaxPrefix)
      MaxPrefix = Cur;
  }
  void beginIter() {
    Cur = 0;
    MaxPrefix = 0;
  }
};

class VMMemory {
public:
  VMMemory() = default;
  ~VMMemory();
  VMMemory(const VMMemory &) = delete;
  VMMemory &operator=(const VMMemory &) = delete;

  /// Allocates \p Size bytes (zero-initialized), registers the block.
  /// Returns 0 when the host allocator fails (std::bad_alloc territory) or
  /// the tracked byte budget would be exceeded — callers convert 0 into an
  /// attributed out-of-memory trap instead of letting the process die. 0 is
  /// an unambiguous failure sentinel: real blocks always have a non-null
  /// host address (zero-size allocations get a 1-byte block).
  uint64_t allocate(uint64_t Size, AllocKind Kind, uint32_t SiteId);

  /// Caps tracked live bytes (currentBytes()); an allocation that would push
  /// past the cap fails like host OOM. 0 = unlimited.
  void setByteBudget(uint64_t Bytes) { ByteBudget = Bytes; }
  uint64_t byteBudget() const { return ByteBudget; }

  /// Frees the allocation whose base is \p Base. Returns false (and leaves
  /// memory untouched) when \p Base is not the base of a live allocation.
  bool deallocate(uint64_t Base);

  /// Returns the live allocation containing \p Addr, or null.
  const Allocation *containing(uint64_t Addr) const;

  /// Returns the live allocation with base \p Base, or null.
  const Allocation *byBase(uint64_t Base) const;

  /// True when [Addr, Addr+Size) lies within one live allocation. Compares
  /// without forming Addr + Size: the sum can wrap around uint64_t (a huge
  /// Size from a corrupted length) and incorrectly pass an end-pointer check.
  /// containing() already guarantees Addr >= A->Base and Addr < A->Base +
  /// max(A->Size, 1), so Addr - A->Base is a valid in-block offset.
  bool inBounds(uint64_t Addr, uint64_t Size) const {
    const Allocation *A = containing(Addr);
    return A && Size <= A->Size && Addr - A->Base <= A->Size - Size;
  }

  uint64_t currentBytes() const { return CurBytes; }
  uint64_t peakBytes() const { return PeakBytes; }
  uint32_t liveAllocations() const { return NumLive; }

  /// Calls \p Fn on every live allocation, in base-address order.
  template <typename FnT> void forEachLive(FnT Fn) const {
    for (const auto &[Base, A] : ByBase)
      if (A.Live)
        Fn(A);
  }

  //===------------------------------------------------------------------===//
  // Concurrent mode (host-threaded parallel loops)
  //===------------------------------------------------------------------===//

  /// Enters concurrent mode: registry operations lock, the last-hit cache is
  /// bypassed, deallocation is quarantined, and peak accounting switches to
  /// the calling worker's MemDeltaSink (see setDeltaSink). Must not be
  /// nested. May run *inside* a speculation checkpoint (the watchdog
  /// recovery path arms one around a threaded DOACROSS attempt);
  /// endConcurrent() then keeps pre-checkpoint quarantined blocks resident
  /// so rollbackSpeculation() can resurrect them.
  void beginConcurrent();
  /// Leaves concurrent mode and reclaims quarantined blocks. The caller is
  /// responsible for replaying the workers' deltas (notePeak) first if peak
  /// accounting is to stay serial-exact.
  void endConcurrent();
  bool concurrent() const { return Concurrent; }

  /// Installs the calling thread's delta sink (thread-local; pass null to
  /// clear). While concurrent, allocate/deallocate report +/-Size to it.
  static void setDeltaSink(MemDeltaSink *S);

  /// Raises the peak high-water mark to \p Peak if higher — the post-join
  /// replay's output.
  void notePeak(uint64_t Peak) {
    if (Peak > PeakBytes)
      PeakBytes = Peak;
  }

  /// Registers a block excluded from byte accounting (worker frame copies):
  /// visible to containing()/bounds checks but invisible to currentBytes/
  /// peakBytes/liveAllocations. Serial-mode only (create worker frames
  /// before beginConcurrent()).
  uint64_t allocateUntracked(uint64_t Size);
  /// Releases a block created by allocateUntracked. Serial-mode only.
  void releaseUntracked(uint64_t Base);

  //===------------------------------------------------------------------===//
  // Speculation checkpoints (guarded execution's fallback mode)
  //===------------------------------------------------------------------===//
  //
  // beginSpeculation() snapshots every live allocation (registry metadata
  // and contents). While speculating, deallocate() of a pre-checkpoint block
  // only marks it dead and defers the host delete (so the address cannot be
  // reused and the block can be resurrected), while blocks both created and
  // freed during speculation are reclaimed eagerly. rollbackSpeculation()
  // restores the checkpoint exactly: contents, registry, CurBytes, NumLive,
  // and NextGeneration (so a re-execution hands out the same generation
  // numbers); only PeakBytes keeps the speculative high-water mark.
  // commitSpeculation() keeps the current state and reclaims the quarantine.

  /// Starts a checkpointed region; must not already be speculating.
  void beginSpeculation();
  /// Keeps all changes since beginSpeculation().
  void commitSpeculation();
  /// Reverts all changes since beginSpeculation().
  void rollbackSpeculation();
  bool speculating() const { return Speculating; }

private:
  struct SpecSaved {
    Allocation Meta;
    std::unique_ptr<uint8_t[]> Bytes;
  };
  std::vector<SpecSaved> SpecSnapshot;
  /// Bases of pre-checkpoint blocks freed during speculation (host delete
  /// deferred; registry entry kept with Live = false).
  std::vector<uint64_t> SpecQuarantine;
  bool Speculating = false;
  uint32_t SpecBeginGeneration = 0;
  uint64_t SpecCurBytes = 0;
  uint32_t SpecNumLive = 0;
  // The registry is a sorted interval structure keyed by base address
  // (allocations never overlap, so base order is interval order); lookup is
  // an upper_bound probe on the predecessor interval. std::map keeps node
  // addresses stable across inserts, which the last-hit cache relies on.
  std::map<uint64_t, Allocation> ByBase;
  // Accesses are heavily clustered (a loop walking one array hits the same
  // allocation millions of times), so containing() first re-checks the last
  // allocation it returned before probing the tree — O(1) amortized. The
  // cache is a single mutable slot written by const lookups, so concurrent
  // mode must not touch it at all (reads and writes both race); it is
  // invalidated when the cached allocation is freed.
  mutable const Allocation *LastHit = nullptr;
  uint64_t CurBytes = 0;
  uint64_t PeakBytes = 0;
  uint64_t ByteBudget = 0;
  uint32_t NextGeneration = 1;
  uint32_t NumLive = 0;

  // Concurrent-mode state. The mutex serializes registry structure and byte
  // counters; block *contents* are the program's own to race (that is what
  // the expansion transformation exists to prevent, and what the tsan
  // negative fixture demonstrates when it is absent).
  bool Concurrent = false;
  mutable std::mutex Mu;
  /// Blocks freed while concurrent: marked dead immediately (so lookups say
  /// "not live") but host-deleted and erased only at endConcurrent(), so
  /// Allocation pointers other threads hold stay dereferenceable.
  std::vector<uint64_t> ConcQuarantine;
  static thread_local MemDeltaSink *TLSink;
};

} // namespace gdse

#endif // GDSE_INTERP_MEMORY_H
