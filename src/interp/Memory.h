//===- Memory.h - VM memory and allocation registry -------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's memory: allocations are real host blocks (so VM pointers are host
/// addresses and pointer arithmetic is native), plus a registry that maps any
/// address to its containing allocation. The registry provides:
///  - bounds checking for every VM access (on by default);
///  - allocation *generation* numbers so the dependence profiler does not
///    fabricate dependences between a freed block and an unrelated later
///    allocation reusing the same host address;
///  - allocation-site ids linking heap objects back to the static malloc
///    call they came from (used by expansion target selection and by the
///    runtime-privatization baseline's heap prefix);
///  - current/peak byte accounting (Figure 14).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_MEMORY_H
#define GDSE_INTERP_MEMORY_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace gdse {

enum class AllocKind : uint8_t { Heap, Global, Frame };

struct Allocation {
  uint64_t Base = 0;
  uint64_t Size = 0;
  /// Monotonically increasing id; distinguishes reuses of a host address.
  uint32_t Generation = 0;
  /// Static allocation site (CallExpr site id for heap; VarDecl id for
  /// globals; 0 for frames).
  uint32_t SiteId = 0;
  AllocKind Kind = AllocKind::Heap;
  bool Live = true;
};

class VMMemory {
public:
  VMMemory() = default;
  ~VMMemory();
  VMMemory(const VMMemory &) = delete;
  VMMemory &operator=(const VMMemory &) = delete;

  /// Allocates \p Size bytes (zero-initialized), registers the block.
  uint64_t allocate(uint64_t Size, AllocKind Kind, uint32_t SiteId);

  /// Frees the allocation whose base is \p Base. Returns false (and leaves
  /// memory untouched) when \p Base is not the base of a live allocation.
  bool deallocate(uint64_t Base);

  /// Returns the live allocation containing \p Addr, or null.
  const Allocation *containing(uint64_t Addr) const;

  /// Returns the live allocation with base \p Base, or null.
  const Allocation *byBase(uint64_t Base) const;

  /// True when [Addr, Addr+Size) lies within one live allocation. Compares
  /// without forming Addr + Size: the sum can wrap around uint64_t (a huge
  /// Size from a corrupted length) and incorrectly pass an end-pointer check.
  /// containing() already guarantees Addr >= A->Base and Addr < A->Base +
  /// max(A->Size, 1), so Addr - A->Base is a valid in-block offset.
  bool inBounds(uint64_t Addr, uint64_t Size) const {
    const Allocation *A = containing(Addr);
    return A && Size <= A->Size && Addr - A->Base <= A->Size - Size;
  }

  uint64_t currentBytes() const { return CurBytes; }
  uint64_t peakBytes() const { return PeakBytes; }
  uint32_t liveAllocations() const { return NumLive; }

  /// Calls \p Fn on every live allocation, in base-address order.
  template <typename FnT> void forEachLive(FnT Fn) const {
    for (const auto &[Base, A] : ByBase)
      if (A.Live)
        Fn(A);
  }

  //===------------------------------------------------------------------===//
  // Speculation checkpoints (guarded execution's fallback mode)
  //===------------------------------------------------------------------===//
  //
  // beginSpeculation() snapshots every live allocation (registry metadata
  // and contents). While speculating, deallocate() of a pre-checkpoint block
  // only marks it dead and defers the host delete (so the address cannot be
  // reused and the block can be resurrected), while blocks both created and
  // freed during speculation are reclaimed eagerly. rollbackSpeculation()
  // restores the checkpoint exactly: contents, registry, CurBytes, NumLive,
  // and NextGeneration (so a re-execution hands out the same generation
  // numbers); only PeakBytes keeps the speculative high-water mark.
  // commitSpeculation() keeps the current state and reclaims the quarantine.

  /// Starts a checkpointed region; must not already be speculating.
  void beginSpeculation();
  /// Keeps all changes since beginSpeculation().
  void commitSpeculation();
  /// Reverts all changes since beginSpeculation().
  void rollbackSpeculation();
  bool speculating() const { return Speculating; }

private:
  struct SpecSaved {
    Allocation Meta;
    std::unique_ptr<uint8_t[]> Bytes;
  };
  std::vector<SpecSaved> SpecSnapshot;
  /// Bases of pre-checkpoint blocks freed during speculation (host delete
  /// deferred; registry entry kept with Live = false).
  std::vector<uint64_t> SpecQuarantine;
  bool Speculating = false;
  uint32_t SpecBeginGeneration = 0;
  uint64_t SpecCurBytes = 0;
  uint32_t SpecNumLive = 0;
  // The registry is a sorted interval structure keyed by base address
  // (allocations never overlap, so base order is interval order); lookup is
  // an upper_bound probe on the predecessor interval. std::map keeps node
  // addresses stable across inserts, which the last-hit cache relies on.
  std::map<uint64_t, Allocation> ByBase;
  // Accesses are heavily clustered (a loop walking one array hits the same
  // allocation millions of times), so containing() first re-checks the last
  // allocation it returned before probing the tree — O(1) amortized.
  // Invalidated when the cached allocation is freed.
  mutable const Allocation *LastHit = nullptr;
  uint64_t CurBytes = 0;
  uint64_t PeakBytes = 0;
  uint32_t NextGeneration = 1;
  uint32_t NumLive = 0;
};

} // namespace gdse

#endif // GDSE_INTERP_MEMORY_H
