//===- ParallelTimeline.h - Virtual multicore timeline ----------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual N-core timeline of one parallel loop invocation, factored out
/// of the simulated runner so the host-threaded runner (ThreadedLoop.cpp) can
/// replay its recorded per-iteration work through the *same* arithmetic after
/// the join. Bit-identity of SimTime and the per-thread stall/idle/dispatch
/// stats between the simulated and threaded engines follows from sharing this
/// one implementation: both feed iterations in ascending iteration order with
/// identical work-cycle counts and ordered-event offsets.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_PARALLELTIMELINE_H
#define GDSE_INTERP_PARALLELTIMELINE_H

#include "interp/ExecState.h"

#include <algorithm>
#include <map>
#include <vector>

namespace gdse {

struct ParallelTimeline {
  const CostModel &CM;
  unsigned N;
  std::vector<uint64_t> Ready, Work, Stall, Dispatch;
  /// Ordered region id -> virtual time at which the region becomes free.
  std::map<unsigned, uint64_t> RegionFree;

  ParallelTimeline(const CostModel &CM, unsigned N, bool DOALL)
      : CM(CM), N(N), Ready(N, 0), Work(N, 0), Stall(N, 0), Dispatch(N, 0) {
    if (DOALL)
      for (unsigned T = 0; T != N; ++T) {
        Ready[T] = CM.ChunkStartup;
        Dispatch[T] = CM.ChunkStartup;
      }
  }

  /// DOACROSS dispatch: the next iteration goes to the earliest-ready
  /// virtual thread and pays the dispatch overhead up front.
  unsigned dispatchDoacross() {
    unsigned T = 0;
    for (unsigned I = 1; I != N; ++I)
      if (Ready[I] < Ready[T])
        T = I;
    Ready[T] += CM.IterDispatch;
    Dispatch[T] += CM.IterDispatch;
    return T;
  }

  /// Accounts one finished iteration of \p W work cycles on virtual thread
  /// \p T. Ordered-region entries later than the region's free time shift
  /// the rest of the iteration (a stall); each region's free time advances
  /// to the (shifted) exit.
  void completeIter(unsigned T, uint64_t W,
                    const std::vector<OrderedEvent> &Events) {
    uint64_t StartT = Ready[T];
    uint64_t Shift = 0;
    for (const OrderedEvent &Ev : Events) {
      uint64_t Entry = StartT + Ev.EntryOff + Shift;
      uint64_t &Free = RegionFree[Ev.RegionId];
      if (Free > Entry) {
        uint64_t S = Free - Entry;
        Shift += S;
        Stall[T] += S;
      }
      Free = StartT + Ev.ExitOff + Shift;
    }
    Ready[T] = StartT + W + Shift;
    Work[T] += W;
  }

  uint64_t maxReady() const {
    uint64_t MR = 0;
    for (uint64_t R : Ready)
      MR = std::max(MR, R);
    return MR;
  }

  /// Folds this invocation's per-thread stats into \p LS (whose per-thread
  /// vectors must already be sized to N).
  void accumulate(LoopStats &LS) const {
    uint64_t MR = maxReady();
    for (unsigned T = 0; T != N; ++T) {
      LS.WorkPerThread[T] += Work[T];
      LS.SyncStallPerThread[T] += Stall[T];
      LS.DispatchPerThread[T] += Dispatch[T];
      LS.IdlePerThread[T] += MR - Ready[T];
    }
  }
};

} // namespace gdse

#endif // GDSE_INTERP_PARALLELTIMELINE_H
