//===- ProgramContext.cpp - Shared, per-program execution context ----------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "interp/ProgramContext.h"

#include "ir/AccessInfo.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <system_error>

using namespace gdse;

FrameLayout gdse::computeFrameLayout(TypeContext &Ctx, const Function *F) {
  FrameLayout L;
  uint64_t Offset = 0;
  auto place = [&](const VarDecl *D) {
    const TypeLayout &TL = Ctx.getLayout(D->getType());
    Offset = (Offset + TL.Align - 1) / TL.Align * TL.Align;
    L.Offsets[D] = Offset;
    Offset += TL.Size;
  };
  for (const VarDecl *P : F->getParams())
    place(P);
  for (const VarDecl *V : F->getLocals())
    place(V);
  L.Size = std::max<uint64_t>(Offset, 1);
  return L;
}

namespace {

/// Per-function facts collected by one body walk; loop traits are the union
/// of the loop body's direct facts and the closures of every callee.
struct FnFacts {
  bool UsesTid = false;
  bool UsesRtPriv = false;
  std::set<unsigned> RegionIds;
  std::set<const Function *> Callees;

  void mergeFrom(const FnFacts &O) {
    UsesTid |= O.UsesTid;
    UsesRtPriv |= O.UsesRtPriv;
    RegionIds.insert(O.RegionIds.begin(), O.RegionIds.end());
  }
};

struct TraitsScanner {
  std::map<const Function *, FnFacts> Summaries;
  std::map<const Function *, FnFacts> Closures;
  /// Loop id -> the loop body's *direct* facts plus direct callees.
  std::map<unsigned, FnFacts> LoopDirect;

  void walkExpr(const Expr *E, FnFacts &F) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::ThreadId:
      F.UsesTid = true;
      return;
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::SizeofType:
    case Expr::Kind::NumThreads:
      return;
    case Expr::Kind::VarRef:
      return;
    case Expr::Kind::Deref:
      walkExpr(cast<DerefExpr>(E)->getPtr(), F);
      return;
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(E);
      walkExpr(A->getBase(), F);
      walkExpr(A->getIndex(), F);
      return;
    }
    case Expr::Kind::FieldAccess:
      walkExpr(cast<FieldAccessExpr>(E)->getBase(), F);
      return;
    case Expr::Kind::Load:
      walkExpr(cast<LoadExpr>(E)->getLocation(), F);
      return;
    case Expr::Kind::Unary:
      walkExpr(cast<UnaryExpr>(E)->getSub(), F);
      return;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      walkExpr(B->getLHS(), F);
      walkExpr(B->getRHS(), F);
      return;
    }
    case Expr::Kind::AddrOf:
      walkExpr(cast<AddrOfExpr>(E)->getLocation(), F);
      return;
    case Expr::Kind::Decay:
      walkExpr(cast<DecayExpr>(E)->getArrayLocation(), F);
      return;
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      for (const Expr *A : C->getArgs())
        walkExpr(A, F);
      if (C->isBuiltin()) {
        if (C->getBuiltin() == Builtin::RtPrivPtr)
          F.UsesRtPriv = true;
      } else {
        F.Callees.insert(C->getCallee());
      }
      return;
    }
    case Expr::Kind::Cast:
      walkExpr(cast<CastExpr>(E)->getSub(), F);
      return;
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      walkExpr(C->getCond(), F);
      walkExpr(C->getThen(), F);
      walkExpr(C->getElse(), F);
      return;
    }
    }
  }

  void walkStmt(const Stmt *S, FnFacts &F) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        walkStmt(Sub, F);
      return;
    case Stmt::Kind::ExprStmt:
      walkExpr(cast<ExprStmt>(S)->getExpr(), F);
      return;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      walkExpr(A->getLHS(), F);
      walkExpr(A->getRHS(), F);
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      walkExpr(I->getCond(), F);
      walkStmt(I->getThen(), F);
      walkStmt(I->getElse(), F);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      walkExpr(W->getCond(), F);
      walkStmt(W->getBody(), F);
      return;
    }
    case Stmt::Kind::For: {
      const auto *FS = cast<ForStmt>(S);
      walkExpr(FS->getInit(), F);
      walkExpr(FS->getLimit(), F);
      walkExpr(FS->getStep(), F);
      // The loop body's own facts are recorded separately for its traits,
      // then folded into the enclosing context (an outer loop containing an
      // inner one inherits everything the inner body can do).
      FnFacts Body;
      walkStmt(FS->getBody(), Body);
      FnFacts &Slot = LoopDirect[FS->getLoopId()];
      Slot.mergeFrom(Body);
      Slot.Callees.insert(Body.Callees.begin(), Body.Callees.end());
      F.mergeFrom(Body);
      F.Callees.insert(Body.Callees.begin(), Body.Callees.end());
      return;
    }
    case Stmt::Kind::Return:
      walkExpr(cast<ReturnStmt>(S)->getValue(), F);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return;
    case Stmt::Kind::Ordered: {
      const auto *O = cast<OrderedStmt>(S);
      F.RegionIds.insert(O->getRegionId());
      walkStmt(O->getBody(), F);
      return;
    }
    }
  }

  /// Computes the transitive closure of every function's facts over its
  /// callees by monotone fixpoint (handles recursion cycles exactly).
  void close() {
    Closures = Summaries;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto &[Fn, Facts] : Closures) {
        for (const Function *Callee : Facts.Callees) {
          auto It = Closures.find(Callee);
          if (It == Closures.end() || It->first == Fn)
            continue; // undefined callee traps at runtime; self is folded
          const FnFacts &CF = It->second;
          size_t Regions = Facts.RegionIds.size();
          size_t Callees = Facts.Callees.size();
          bool Tid = Facts.UsesTid, Rt = Facts.UsesRtPriv;
          Facts.mergeFrom(CF);
          Facts.Callees.insert(CF.Callees.begin(), CF.Callees.end());
          Changed |= Facts.RegionIds.size() != Regions ||
                     Facts.Callees.size() != Callees ||
                     Facts.UsesTid != Tid || Facts.UsesRtPriv != Rt;
        }
      }
    }
  }
};

} // namespace

ProgramContext::ProgramContext(Module &M, InterpOptions O)
    : M(M), Ctx(M.getTypes()), Opts(std::move(O)),
      RegisterVars(collectRegisterVars(M)) {
  if (Opts.Guard != GuardMode::Off) {
    for (const auto &GP : Opts.GuardPlans) {
      if (!GP || GP->empty())
        continue;
      GuardPlanOf[GP->LoopId] = GP.get();
      for (const auto &[Aid, Cls] : GP->PrivateClassOf)
        GuardAccessMap[Aid] = GuardAccess{GP->LoopId, Cls, false};
      for (const auto &[Aid, Cls] : GP->CommClassOf)
        GuardAccessMap[Aid] = GuardAccess{GP->LoopId, Cls, true};
    }
  }

  TraitsScanner Scan;
  for (Function *F : M.getFunctions()) {
    if (!F->isDefinition())
      continue;
    Layouts.emplace(F, computeFrameLayout(Ctx, F));
    FnFacts Facts;
    Scan.walkStmt(F->getBody(), Facts);
    Scan.Summaries[F] = std::move(Facts);
  }
  // Fold every loop body's direct callees through the call graph.
  Scan.close();
  for (auto &[LoopId, Direct] : Scan.LoopDirect) {
    FnFacts Folded = Direct;
    for (const Function *Callee : Direct.Callees) {
      auto It = Scan.Closures.find(Callee);
      if (It != Scan.Closures.end())
        Folded.mergeFrom(It->second);
    }
    LoopTraits T;
    T.UsesTid = Folded.UsesTid;
    T.UsesRtPriv = Folded.UsesRtPriv;
    T.RegionIds.assign(Folded.RegionIds.begin(), Folded.RegionIds.end());
    LoopTraitsOf.emplace(LoopId, std::move(T));
  }

  // Fold the legacy cycle cap with the resilience budget: the smaller
  // non-zero value wins, so either limit alone behaves exactly as before.
  EffMaxCycles = Opts.MaxCycles;
  uint64_t BudgetCycles = Opts.Resilience.Budget.MaxCycles;
  if (BudgetCycles && (!EffMaxCycles || BudgetCycles < EffMaxCycles))
    EffMaxCycles = BudgetCycles;
  Mem.setByteBudget(Opts.Resilience.Budget.MaxBytes);
}

void ProgramContext::armDeadline() {
  uint64_t Ms = Opts.Resilience.Budget.DeadlineMs;
  DeadlineNs.store(Ms ? monotonicNowNs() + Ms * 1000000ull : 0,
                   std::memory_order_relaxed);
}

ProgramContext::~ProgramContext() = default;

const FrameLayout &ProgramContext::layoutOf(const Function *F) const {
  return Layouts.at(F);
}

void ProgramContext::resetGlobals() {
  for (uint64_t Addr : GlobalBlocks)
    Mem.deallocate(Addr);
  GlobalBlocks.clear();
  GlobalAddrById.assign(M.getNumVarDecls() + 1, 0);
  for (VarDecl *G : M.getGlobals()) {
    uint64_t Addr = Mem.allocate(Ctx.getLayout(G->getType()).Size,
                                 AllocKind::Global, G->getId());
    GlobalAddrById[G->getId()] = Addr;
    GlobalBlocks.push_back(Addr);
  }
}

ThreadPool *ProgramContext::loopPoolOrNull() {
  std::lock_guard<std::mutex> Lock(LoopPoolMu);
  if (!LoopPoolTried) {
    LoopPoolTried = true;
    FaultInjector *FI = Opts.Resilience.Faults.get();
    try {
      if (FI && FI->shouldFire(FaultInjector::Point::WorkerStartFail))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected worker-start failure");
      unsigned N = static_cast<unsigned>(std::max(1, Opts.NumThreads));
      LoopPool.reset(new ThreadPool(N));
    } catch (const std::system_error &E) {
      // std::thread creation failed. Stay serial for the rest of this run
      // (the failure is sticky; no retry storm) and say so exactly once.
      LoopPoolFailed = true;
      LoopPool.reset();
      if (DiagnosticEngine *D = Opts.Resilience.Diags) {
        Diagnostic Diag;
        Diag.Severity = DiagSeverity::Warning;
        Diag.Pass = "resilience";
        Diag.Message = std::string("worker pool unavailable (") + E.what() +
                       "); loops degrade to the simulated serial-order path";
        D->report(Diag);
      }
    }
  }
  return LoopPoolFailed ? nullptr : LoopPool.get();
}
