//===- ProgramContext.h - Shared, per-program execution context -*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared half of the ExecState split: everything about a run that is
/// program-wide rather than per-thread. One ProgramContext is built per
/// Interp instance and is read (never written) by every ThreadState
/// executing over it, which is what lets the host-threaded loop runner
/// (ThreadedLoop.cpp) fan a loop's iterations out to N worker ThreadStates
/// without any synchronization on program metadata:
///
///  - the module, type context, and options (immutable for the Interp's
///    lifetime);
///  - the VM memory arena (one address space shared by all threads; its own
///    concurrent mode handles registry-level races);
///  - global variable addresses (written only by resetGlobals() between
///    runs, on the main thread);
///  - register-variable classification and precomputed frame layouts;
///  - the guard-plan lookup tables built from InterpOptions::GuardPlans;
///  - static per-loop traits (does the body observe __tid? does it call
///    rtpriv_ptr? which ordered regions can it execute?) that decide whether
///    a parallel loop is eligible for real host threading or must take the
///    serial-order simulated path;
///  - the lazily-created loop worker pool.
///
/// Mutable per-thread machine state (cycles, frames, traps, guard shadows,
/// output) lives in ThreadState (ExecState.h).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_INTERP_PROGRAMCONTEXT_H
#define GDSE_INTERP_PROGRAMCONTEXT_H

#include "interp/Interp.h"
#include "ir/IR.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace gdse {

struct FrameLayout {
  uint64_t Size = 0;
  std::map<const VarDecl *, uint64_t> Offsets;
};

/// The canonical frame layout of \p F: parameters then locals at naturally
/// aligned offsets, frame size at least one byte. Both engines use this one
/// definition, so frame addresses and peak-memory accounting agree.
FrameLayout computeFrameLayout(TypeContext &Ctx, const Function *F);

struct ProgramContext {
  Module &M;
  TypeContext &Ctx;
  const InterpOptions Opts;
  VMMemory Mem;

  /// Global base addresses indexed by VarDecl::getId() (the module's dense
  /// numbering); 0 = not allocated. Written only by resetGlobals().
  std::vector<uint64_t> GlobalAddrById;
  std::vector<uint64_t> GlobalBlocks;

  /// Locals/params whose accesses are free in the cost model (see
  /// collectRegisterVars in ir/AccessInfo.h).
  std::set<const VarDecl *> RegisterVars;

  /// Merged lookup over Opts.GuardPlans: access id -> (loop, class) for
  /// every claimed-private access of every guarded loop. Commutative entries
  /// are members of proven-commutative (reduction) classes: their region is
  /// validated in commit-time-merge mode (span containment plus foreign-touch
  /// watching) instead of carrying a first-write shadow.
  struct GuardAccess {
    unsigned LoopId = 0;
    unsigned Class = 0;
    bool Commutative = false;
  };
  std::map<uint32_t, GuardAccess> GuardAccessMap;
  /// Loop id -> plan (owned by Opts.GuardPlans).
  std::map<unsigned, const GuardPlan *> GuardPlanOf;

  /// Static facts about each counted loop's body (transitively through
  /// callees), computed once at construction. The host-threaded runner
  /// consults these to decide eligibility without evaluating anything.
  struct LoopTraits {
    /// Body (or a callee) evaluates __tid. Safe for DOALL real threading
    /// (the chunk index *is* the virtual thread id) but not for DOACROSS,
    /// whose virtual thread assignment is only known after the fact.
    bool UsesTid = false;
    /// Body (or a callee) calls rtpriv_ptr: the runtime-privatization
    /// shadow map is inherently serial-order, so simulate.
    bool UsesRtPriv = false;
    /// Every ordered region the body (or a callee) can enter, for the
    /// DOACROSS cross-iteration ticket protocol.
    std::vector<unsigned> RegionIds;
  };
  std::map<unsigned, LoopTraits> LoopTraitsOf;

  /// The effective cycle cap: the smaller non-zero of Opts.MaxCycles and
  /// Opts.Resilience.Budget.MaxCycles (0 = unlimited). Every engine's budget
  /// check compares against this one folded value.
  uint64_t EffMaxCycles = 0;

  /// Absolute steady-clock expiry (monotonicNowNs() units) of the current
  /// run's wall-clock deadline; 0 = no deadline armed. Re-armed by
  /// armDeadline() at each run start, read concurrently by workers.
  std::atomic<uint64_t> DeadlineNs{0};

  /// Arms DeadlineNs from Opts.Resilience.Budget.DeadlineMs (run start).
  void armDeadline();

  ProgramContext(Module &M, InterpOptions Opts);
  ~ProgramContext();
  ProgramContext(const ProgramContext &) = delete;
  ProgramContext &operator=(const ProgramContext &) = delete;

  /// Frame layouts are precomputed for every defined function and referenced
  /// by address; the map is never mutated after construction, so concurrent
  /// readers are safe.
  const FrameLayout &layoutOf(const Function *F) const;

  const LoopTraits *loopTraits(unsigned LoopId) const {
    auto It = LoopTraitsOf.find(LoopId);
    return It == LoopTraitsOf.end() ? nullptr : &It->second;
  }

  /// Deallocates and re-allocates zeroed globals (run start).
  void resetGlobals();

  /// The worker pool for host-threaded loops: Opts.NumThreads workers,
  /// created on first use. Loop chunks run under a TaskGroup whose waiter
  /// helps, so the pool being narrower than the request degrades gracefully
  /// instead of deadlocking. Returns null when thread creation failed
  /// (std::system_error from std::thread, or an injected worker-start-fail
  /// fault) — the caller degrades the loop to the simulated serial-order
  /// path. The failure is sticky (no retry storm) and reported once as a
  /// warning through Opts.Resilience.Diags.
  ThreadPool *loopPoolOrNull();

private:
  std::map<const Function *, FrameLayout> Layouts;
  std::unique_ptr<ThreadPool> LoopPool;
  std::mutex LoopPoolMu;
  bool LoopPoolTried = false;
  bool LoopPoolFailed = false;
};

} // namespace gdse

#endif // GDSE_INTERP_PROGRAMCONTEXT_H
