//===- ThreadedLoop.cpp - Host-threaded parallel loop execution ------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The real host-threaded runner behind ExecEngine::Threads. Where the
// simulated path (ExecState.cpp) executes iterations in serial order and
// *computes* an N-core timeline, this runner actually dispatches them to N
// worker ThreadStates over the shared VMMemory:
//
//  - DOALL: the same static chunking as the virtual schedule
//    (Chunk = ceil(Total/N), thread T owns [T*Chunk, (T+1)*Chunk)), one pool
//    task per chunk;
//  - DOACROSS: workers grab iterations in order from an atomic counter;
//    ordered regions are enforced by per-region tickets — an iteration's
//    first entry into a region blocks until every earlier iteration has
//    released it, and an iteration releases all of the loop's regions when
//    it completes (slightly more conservative than the virtual schedule's
//    exit-to-exit handoff, which costs real wall-clock but cannot change the
//    virtual metrics, because those are replayed from recorded events).
//
// Each worker is a full ThreadState sharing the ProgramContext: it owns its
// cycles, output, trap state, ordered-event buffer, nested-loop stats, and
// (under check-mode guarding) its own copy of the guard shadow. Workers run
// over a private copy of the enclosing function's frame (registered
// untracked, so byte accounting is unaffected) and the shared heap/globals —
// which is exactly the paper's bet: the expansion transformation has already
// privatized what iterations would otherwise race on.
//
// After the join everything is merged back deterministically, in serial
// iteration order: output concatenation, per-iteration work cycles, the
// peak-memory replay (per-iteration allocation deltas re-run in iteration
// order), frame byte-diffs (last-writing chunk wins, as in serial order),
// guard-shadow merge (latest-iteration byte wins) followed by the ordinary
// commit scan, and the virtual timeline replay through the exact arithmetic
// the simulated path uses (ParallelTimeline.h). On loop invocations that
// complete normally, every virtual metric is therefore bit-identical to the
// serial engines (EngineDiffTest enforces this); on invocations that trap or
// halt mid-loop, iterations past the (lowest) faulting one may or may not
// have run on other workers, so — as with the bytecode engine's existing
// trap-run license (Bytecode.h) — cycle totals, output, and side effects
// past the fault may diverge, while the trap message itself keeps exact
// loop/iteration attribution.
//
//===----------------------------------------------------------------------===//

#include "interp/ExecState.h"

#include "interp/ParallelTimeline.h"
#include "support/Diagnostics.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

namespace gdse {

/// Cross-iteration synchronization for ordered regions under real DOACROSS
/// threading: one ticket lane per region id. Iteration I may enter a region
/// once every iteration < I has released it; NextIter is the smallest
/// iteration that has not yet released, and Released holds out-of-order
/// completions ahead of it.
///
/// With a non-zero watchdog window the wait is timed: a waiter that sees no
/// release anywhere (Progress unchanged) for a full window declares the
/// ticket frontier wedged, wakes every lane, and every waiter bails out —
/// the loop invocation then degrades instead of hanging the process.
struct DoacrossSync {
  struct Region {
    std::mutex Mu;
    std::condition_variable Cv;
    uint64_t NextIter = 0;
    std::set<uint64_t> Released;
  };
  std::map<unsigned, Region> Regions;
  /// Watchdog window in milliseconds; 0 = untimed waits (watchdog off).
  const uint64_t WindowMs;
  /// Bumped on every releaseAll — the "some lane made progress" signal the
  /// watchdog distinguishes a slow frontier from a stalled one by.
  std::atomic<uint64_t> Progress{0};
  std::atomic<bool> Wedged{false};

  DoacrossSync(const std::vector<unsigned> &Ids, uint64_t WatchdogMs)
      : WindowMs(WatchdogMs) {
    for (unsigned Id : Ids)
      Regions[Id];
  }

  /// Blocks until iteration \p Iter holds region \p Id's ticket. Returns
  /// false when the watchdog declared the frontier wedged — the caller must
  /// abandon the iteration (never touch the region's data).
  bool enter(unsigned Id, uint64_t Iter) {
    auto It = Regions.find(Id);
    if (It == Regions.end())
      return true;
    Region &R = It->second;
    std::unique_lock<std::mutex> Lock(R.Mu);
    if (!WindowMs) {
      // A second entry by the same iteration sees NextIter == Iter and
      // passes straight through: the ticket is held for the whole iteration.
      R.Cv.wait(Lock, [&] { return R.NextIter >= Iter; });
      return true;
    }
    for (;;) {
      uint64_t P0 = Progress.load(std::memory_order_relaxed);
      R.Cv.wait_for(Lock, std::chrono::milliseconds(WindowMs), [&] {
        return R.NextIter >= Iter || Wedged.load(std::memory_order_relaxed);
      });
      // Holding the ticket always wins, even against a concurrent wedge
      // declaration: proceeding is safe, and the iteration's releaseAll
      // keeps the drain moving.
      if (R.NextIter >= Iter)
        return true;
      if (Wedged.load(std::memory_order_relaxed))
        return false;
      if (Progress.load(std::memory_order_relaxed) != P0)
        continue; // slow but alive: somebody released during the window
      // No lane released anything for a full window: the frontier is
      // wedged. Release the wedge — set the flag, then wake every lane
      // (own lock dropped first; taking other lanes' locks while holding
      // ours could deadlock against a symmetric waiter).
      Wedged.store(true, std::memory_order_relaxed);
      Lock.unlock();
      wakeAllLanes();
      return false;
    }
  }

  void wakeAllLanes() {
    for (auto &[Id, R] : Regions) {
      std::lock_guard<std::mutex> Lock(R.Mu);
      R.Cv.notify_all();
    }
  }

  /// Called exactly once per grabbed iteration, at its end — normal exit,
  /// trap inside an ordered region, or abort-after-grab alike: liveness of
  /// the protocol depends on every grabbed ticket releasing every lane.
  void releaseAll(uint64_t Iter) {
    Progress.fetch_add(1, std::memory_order_relaxed);
    for (auto &[Id, R] : Regions) {
      std::unique_lock<std::mutex> Lock(R.Mu);
      // A duplicate or stale release must be inert: inserting an iteration
      // already below the lane frontier would park it at Released.begin(),
      // where it never matches NextIter and blocks the drain loop below —
      // wedging every later waiter on this lane forever.
      if (Iter < R.NextIter)
        continue;
      R.Released.insert(Iter);
      while (!R.Released.empty() && *R.Released.begin() == R.NextIter) {
        R.Released.erase(R.Released.begin());
        ++R.NextIter;
      }
      R.Cv.notify_all();
    }
  }
};

} // namespace gdse

using namespace gdse;

void ThreadState::orderedRealEnter(unsigned RegionId) {
  if (!DX)
    return;
  // Fault injection: an artificial stall at a lane entry, long enough (with
  // the right spec) to trip the watchdog deterministically.
  if (injectFault(FaultInjector::Point::LaneDelay))
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opts.Resilience.Faults->delayMillis()));
  if (!DX->enter(RegionId, DXIter))
    trap(formatString("DOACROSS watchdog: ordered-region frontier stalled "
                      "for %llu ms",
                      static_cast<unsigned long long>(DX->WindowMs)));
}

namespace {

/// Everything one iteration leaves behind, indexed by iteration so the merge
/// can walk in serial order regardless of which worker ran what.
struct IterRec {
  uint64_t W = 0;                    ///< work cycles of the body
  std::vector<OrderedEvent> Events;  ///< ordered entries/exits (DOACROSS)
  std::string Out;                   ///< print output of this iteration
  int64_t MemNet = 0;                ///< net tracked bytes allocated
  int64_t MemMaxPrefix = 0;          ///< max net-bytes prefix within the iter
  Flow FL = Flow::Normal;
  int Worker = -1;
  bool Ran = false;
};

struct WorkerCtx {
  std::unique_ptr<ThreadState> WS;
  uint64_t FrameBase = 0;
  /// Highest iteration this worker started (frame-merge order); UINT64_MAX
  /// when it never ran one.
  uint64_t LastIter = UINT64_MAX;
  // Declared after WS so it is destroyed first: the thunk holds the
  // engine-side worker VM, which references *WS.
  std::function<Flow()> Body;
};

} // namespace

Flow ThreadState::runForThreaded(
    unsigned LoopId, ParallelKind Kind, Type *IVType,
    const std::function<void(ForBounds &)> &EvalBounds,
    const std::function<Flow()> &Body, const ThreadLoopHooks &Host,
    ThreadPool &Pool) {
  const unsigned N = static_cast<unsigned>(std::max(1, Opts.NumThreads));
  const bool DOALL = Kind == ParallelKind::DOALL;

  // Guard plan lookup mirrors the simulated path; eligibility already
  // restricted guarded invocations to DOALL + Check mode.
  const GuardPlan *GP = nullptr;
  if (Opts.Guard != GuardMode::Off && N <= 127) {
    auto GIt = P.GuardPlanOf.find(LoopId);
    if (GIt != P.GuardPlanOf.end())
      GP = GIt->second;
  }

  const ProgramContext::LoopTraits *Traits = P.loopTraits(LoopId);
  const uint64_t WatchdogMs =
      !DOALL && Traits && !Traits->RegionIds.empty()
          ? Opts.Resilience.WatchdogMs
          : 0;

  // Watchdog recovery checkpoint: a wedged DOACROSS attempt must be able to
  // roll back to the pre-invocation world and re-run on the simulated path,
  // bit-identical to a clean serial-order run. Armed before any of this
  // invocation's bookkeeping (stats, bounds evaluation) for exactly that
  // reason. Eligibility already excludes observers, guard plans, rtpriv,
  // and armed watches from threaded DOACROSS, so the scalar state below is
  // the complete mutable set.
  bool SpecArmed = false;
  uint64_t SavedCycles = 0;
  int64_t SavedTimeAdjust = 0;
  std::string SavedOutput;
  std::map<unsigned, LoopStats> SavedLoops;
  int64_t SavedExitCode = 0;
  VMValue SavedReturnValue;
  bool SavedHalted = false;
  if (WatchdogMs && Opts.Resilience.Ladder && !Mem.speculating()) {
    Mem.beginSpeculation();
    SpecArmed = true;
    SavedCycles = Cycles;
    SavedTimeAdjust = TimeAdjust;
    SavedOutput = Output;
    SavedLoops = Loops;
    SavedExitCode = ExitCode;
    SavedReturnValue = ReturnValue;
    SavedHalted = Halted;
  }

  LoopStats &LS = Loops[LoopId];
  LS.Kind = Kind;
  ++LS.Invocations;
  if (LS.WorkPerThread.size() != N) {
    LS.WorkPerThread.assign(N, 0);
    LS.SyncStallPerThread.assign(N, 0);
    LS.IdlePerThread.assign(N, 0);
    LS.DispatchPerThread.assign(N, 0);
  }

  uint64_t Before = Cycles;
  ForBounds B;
  EvalBounds(B);
  if (dead()) {
    if (SpecArmed)
      Mem.commitSpeculation();
    return Flow::Halt;
  }
  if (B.Step <= 0) {
    trap("parallel for loop with non-positive step");
    if (SpecArmed)
      Mem.commitSpeculation();
    return Flow::Halt;
  }
  uint64_t Total =
      B.Hi > B.Lo ? static_cast<uint64_t>((B.Hi - B.Lo + B.Step - 1) / B.Step)
                  : 0;

  if (GP) {
    guardSetupRegions(GP, N);
    if (GuardRegions.empty())
      GP = nullptr;
    else
      ++LS.GuardedInvocations;
  }

  const uint64_t Chunk =
      DOALL ? std::max<uint64_t>(1, (Total + N - 1) / N) : 1;
  Flow Result = Flow::Normal;
  std::vector<IterRec> Recs(Total);
  uint64_t AbnIt = UINT64_MAX; // lowest iteration that trapped/halted

  if (Total != 0) {
    const unsigned NumWorkers =
        DOALL ? static_cast<unsigned>(
                    std::min<uint64_t>((Total + Chunk - 1) / Chunk, N))
              : N;

    // The frame state every chunk starts from: the enclosing frame exactly
    // as iteration 0 would see it (bounds already evaluated).
    std::vector<uint8_t> FrameSnap(Host.FrameSize ? Host.FrameSize : 1);
    std::memcpy(FrameSnap.data(), reinterpret_cast<void *>(Host.FrameBase),
                Host.FrameSize);
    const uint64_t IVOff = B.IVAddr - Host.FrameBase;
    const uint64_t MemStart = Mem.currentBytes();

    static const std::vector<unsigned> NoRegions;
    DoacrossSync Sync(Traits ? Traits->RegionIds : NoRegions, WatchdogMs);
    std::atomic<uint64_t> NextGrab{0};
    std::atomic<bool> Abort{false};

    std::vector<WorkerCtx> Workers(NumWorkers);
    for (unsigned T = 0; T != NumWorkers; ++T) {
      WorkerCtx &W = Workers[T];
      W.WS.reset(new ThreadState(P));
      ThreadState &WS = *W.WS;
      WS.CurTid = static_cast<int>(T);
      WS.InParallelLoop = true;
      WS.SuppressGuardDiags = true;
      WS.RecordOrdered = !DOALL;
      if (!DOALL)
        WS.DX = &Sync;
      if (GP) {
        WS.GuardActive = true;
        WS.GuardLoop = LoopId;
        WS.GuardRegions = GuardRegions; // private first-write shadow copy
        WS.GuardHasComm = GuardHasComm;
        WS.updateGuardHooks();
      }
      // Worker frames must exist before the arena goes concurrent and are
      // excluded from byte accounting (no serial counterpart).
      W.FrameBase = Mem.allocateUntracked(Host.FrameSize);
      std::memcpy(reinterpret_cast<void *>(W.FrameBase), FrameSnap.data(),
                  Host.FrameSize);
      W.Body = Host.MakeWorker(WS, W.FrameBase);
      WS.LoopCtxStack.push_back({LoopId, 0});
    }

    auto runIter = [&](WorkerCtx &W, uint64_t It) -> bool {
      ThreadState &WS = *W.WS;
      IterRec &R = Recs[It];
      WS.LoopCtxStack.back().Iter = It;
      WS.GuardIter = It;
      WS.DXIter = It;
      // Iteration-boundary budget poll, as on the serial drivers. Only the
      // wall-clock deadline can be armed here (a cycle cap forces the
      // simulated path), so a breach is an attributed trap, not a rung of
      // the ladder — re-running would breach again.
      if (!WS.checkBudget()) {
        R.Worker = static_cast<int>(WS.CurTid);
        R.Ran = true;
        R.FL = Flow::Halt;
        Abort.store(true, std::memory_order_relaxed);
        return false;
      }
      int64_t IVal = B.Lo + static_cast<int64_t>(It) * B.Step;
      WS.storeScalar(W.FrameBase + IVOff, IVType, VMValue::ofInt(IVal));
      WS.Output.clear();
      WS.OrderedEvents.clear();
      WS.IterStartCycles = WS.Cycles;
      MemDeltaSink Sink;
      VMMemory::setDeltaSink(&Sink);
      uint64_t C0 = WS.Cycles;
      Flow FL = W.Body();
      VMMemory::setDeltaSink(nullptr);
      R.W = WS.Cycles - C0;
      R.Events = std::move(WS.OrderedEvents);
      WS.OrderedEvents.clear();
      R.Out = std::move(WS.Output);
      WS.Output.clear();
      R.MemNet = Sink.Cur;
      R.MemMaxPrefix = Sink.MaxPrefix;
      R.Worker = static_cast<int>(WS.CurTid);
      R.Ran = true;
      W.LastIter = It;
      if (FL == Flow::Break || FL == Flow::Return) {
        WS.trap("break/return escaping a parallel loop");
        FL = Flow::Halt;
      }
      if (FL == Flow::Halt || WS.dead()) {
        R.FL = Flow::Halt;
        Abort.store(true, std::memory_order_relaxed);
        return false;
      }
      R.FL = FL;
      return true;
    };

    Mem.beginConcurrent();
    {
      TaskGroup TG(Pool);
      if (DOALL) {
        for (unsigned T = 0; T != NumWorkers; ++T) {
          uint64_t LoIt = static_cast<uint64_t>(T) * Chunk;
          uint64_t HiIt = std::min<uint64_t>(LoIt + Chunk, Total);
          TG.submit([&, T, LoIt, HiIt] {
            for (uint64_t It = LoIt; It != HiIt; ++It) {
              if (Abort.load(std::memory_order_relaxed))
                break;
              if (!runIter(Workers[T], It))
                break;
            }
          });
        }
      } else {
        for (unsigned T = 0; T != NumWorkers; ++T) {
          TG.submit([&, T] {
            for (;;) {
              uint64_t It = NextGrab.fetch_add(1, std::memory_order_relaxed);
              if (It >= Total)
                break;
              if (Abort.load(std::memory_order_relaxed)) {
                // Grabbed but not run: still release, so iterations behind
                // us that are already inside the loop can drain.
                Sync.releaseAll(It);
                break;
              }
              bool OK = runIter(Workers[T], It);
              Sync.releaseAll(It);
              if (!OK)
                break;
            }
          });
        }
      }
      TG.wait();
    }
    Mem.endConcurrent();

    const bool WedgeFired = Sync.Wedged.load(std::memory_order_relaxed);
    if (WedgeFired && SpecArmed) {
      // Watchdog recovery: the frontier wedged, every worker has drained.
      // Abandon the whole attempt — no merge, no trap transfer — roll the
      // world back to the pre-invocation checkpoint and re-run the
      // invocation on the simulated serial-order path, which cannot wedge.
      // Worker frames must go first: they carry post-checkpoint generations
      // the rollback would otherwise reclaim behind releaseUntracked's back.
      for (WorkerCtx &W : Workers)
        Mem.releaseUntracked(W.FrameBase);
      Mem.rollbackSpeculation();
      Cycles = SavedCycles;
      TimeAdjust = SavedTimeAdjust;
      Output = std::move(SavedOutput);
      Loops = std::move(SavedLoops);
      ExitCode = SavedExitCode;
      ReturnValue = SavedReturnValue;
      Halted = SavedHalted;
      noteDegradation(
          LoopId, /*Watchdog=*/true,
          formatString("DOACROSS watchdog fired (no lane progress within "
                       "%llu ms); re-running the invocation on the "
                       "simulated serial-order path",
                       static_cast<unsigned long long>(WatchdogMs)));
      return runForParallel(LoopId, Kind, IVType, EvalBounds, Body);
    }

    //===------------------------------------------------------------------===//
    // Deterministic post-join merge, in serial iteration order.
    //===------------------------------------------------------------------===//

    for (uint64_t It = 0; It != Total; ++It)
      if (Recs[It].Ran && Recs[It].FL == Flow::Halt) {
        AbnIt = It;
        break;
      }

    // Work cycles and output, in iteration order (through the faulting
    // iteration when one exists — later iterations other workers may have
    // executed are dropped, per the trap-run license).
    for (uint64_t It = 0; It != Total && It <= AbnIt; ++It) {
      if (!Recs[It].Ran)
        continue;
      Cycles += Recs[It].W;
      Output += Recs[It].Out;
    }

    // Peak-memory replay: re-run the per-iteration allocation deltas in
    // serial iteration order, reconstructing the exact high-water mark the
    // simulated execution would have recorded.
    int64_t Running = static_cast<int64_t>(MemStart);
    for (uint64_t It = 0; It != Total && It <= AbnIt; ++It) {
      if (!Recs[It].Ran)
        continue;
      int64_t IterPeak = Running + Recs[It].MemMaxPrefix;
      if (IterPeak > 0)
        Mem.notePeak(static_cast<uint64_t>(IterPeak));
      Running += Recs[It].MemNet;
    }

    // Frame merge: apply each worker's frame byte-diff against the shared
    // snapshot, in ascending order of last-started iteration, so the byte a
    // serially-later iteration wrote wins — exactly serial last-writer
    // semantics for DOALL (chunks are iteration-ordered).
    std::vector<unsigned> Order(NumWorkers);
    std::iota(Order.begin(), Order.end(), 0u);
    std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned C) {
      uint64_t LA = Workers[A].LastIter, LC = Workers[C].LastIter;
      return (LA + 1) < (LC + 1); // UINT64_MAX (never ran) sorts first
    });
    uint8_t *MainFrame = reinterpret_cast<uint8_t *>(Host.FrameBase);
    for (unsigned T : Order) {
      const uint8_t *WF =
          reinterpret_cast<const uint8_t *>(Workers[T].FrameBase);
      for (uint64_t I = 0; I != Host.FrameSize; ++I)
        if (WF[I] != FrameSnap[I])
          MainFrame[I] = WF[I];
    }

    // Nested-loop and guard counters: every LoopStats field a worker touched
    // is additive; fold in merge order for determinism.
    for (unsigned T : Order) {
      for (const auto &[Id, S] : Workers[T].WS->Loops) {
        LoopStats &D = Loops[Id];
        if (D.Kind == ParallelKind::None)
          D.Kind = S.Kind;
        D.Invocations += S.Invocations;
        D.Iterations += S.Iterations;
        D.WorkCycles += S.WorkCycles;
        D.SimTime += S.SimTime;
        D.GuardedInvocations += S.GuardedInvocations;
        D.GuardChecks += S.GuardChecks;
        D.GuardViolations += S.GuardViolations;
        D.GuardFallbacks += S.GuardFallbacks;
        D.Degradations += S.Degradations;
        D.WatchdogFires += S.WatchdogFires;
      }
    }

    if (GP) {
      // Guard-shadow merge. A region survives only if no worker freed its
      // block mid-loop (guardFree drops it from that worker's copy); for
      // survivors, each byte takes the stamp of the latest-iteration writer
      // across workers — iteration sets are disjoint, so that is exactly the
      // serial first-write shadow's final state.
      std::vector<GuardRegion> Survivors;
      for (GuardRegion &R : GuardRegions) {
        std::vector<const GuardRegion *> Copies;
        for (unsigned T = 0; T != NumWorkers; ++T) {
          const GuardRegion *Found = nullptr;
          for (const GuardRegion &C : Workers[T].WS->GuardRegions)
            if (C.Base == R.Base) {
              Found = &C;
              break;
            }
          if (!Found)
            break;
          Copies.push_back(Found);
        }
        if (Copies.size() != NumWorkers)
          continue;
        // Commutative regions carry no shadow: workers logged any foreign
        // touches directly, so only the violation-log merge below applies.
        if (!R.Commutative) {
          for (uint64_t Pos = 0; Pos != R.Size; ++Pos) {
            const GuardRegion *BestR = nullptr;
            for (const GuardRegion *C : Copies) {
              uint32_t WI = C->WriteIter[Pos];
              if (WI == UINT32_MAX)
                continue;
              if (!BestR || WI >= BestR->WriteIter[Pos])
                BestR = C;
            }
            if (!BestR)
              continue;
            R.WriteIter[Pos] = BestR->WriteIter[Pos];
            R.WriteTid[Pos] = BestR->WriteTid[Pos];
            R.WriteClass[Pos] = BestR->WriteClass[Pos];
          }
          for (const GuardRegion *C : Copies) {
            R.PrivMin = std::min(R.PrivMin, C->PrivMin);
            R.PrivMax = std::max(R.PrivMax, C->PrivMax);
          }
        }
        Survivors.push_back(std::move(R));
      }
      GuardRegions = std::move(Survivors);
      GuardRegionHit = -1;

      // Violation-log merge: workers already deduped per (loop, class,
      // kind); fold their entries in first-occurrence iteration order so the
      // surviving attribution matches what a serial scan would have kept,
      // and report each genuinely new entry once.
      std::vector<DependenceViolation> All;
      for (unsigned T = 0; T != NumWorkers; ++T)
        All.insert(All.end(), Workers[T].WS->GuardViolationLog.begin(),
                   Workers[T].WS->GuardViolationLog.end());
      std::stable_sort(All.begin(), All.end(),
                       [](const DependenceViolation &A,
                          const DependenceViolation &C) {
                         return A.Iteration < C.Iteration;
                       });
      for (const DependenceViolation &V : All) {
        bool Dup = false;
        for (DependenceViolation &E : GuardViolationLog)
          if (E.LoopId == V.LoopId && E.ClassIndex == V.ClassIndex &&
              E.Kind == V.Kind) {
            E.Count += V.Count;
            Dup = true;
            break;
          }
        if (Dup)
          continue;
        GuardViolationLog.push_back(V);
        if (Opts.GuardDiags) {
          Diagnostic D;
          D.Severity = DiagSeverity::Error; // threaded guarding is Check-only
          D.Pass = "guard";
          D.LoopId = V.LoopId;
          D.Message = V.str();
          Opts.GuardDiags->report(std::move(D));
        }
      }
    }

    // Trap/halt transfer: the lowest faulting iteration wins; its worker's
    // attribution (loop, iteration, thread) is already baked into the
    // message by ThreadState::trap on the worker.
    if (AbnIt != UINT64_MAX) {
      Result = Flow::Halt;
      ThreadState &WS = *Workers[static_cast<unsigned>(
                                     Recs[AbnIt].Worker < 0
                                         ? 0
                                         : Recs[AbnIt].Worker)]
                             .WS;
      if (WS.Trapped && !Trapped) {
        Trapped = true;
        TrapMessage = WS.TrapMessage;
        TrapLoopId = WS.TrapLoopId;
        TrapIteration = WS.TrapIteration;
        TrapThread = WS.TrapThread;
      }
      if (WS.Halted) {
        Halted = true;
        ExitCode = WS.ExitCode;
      }
      if (!Trapped && !Halted)
        Halted = true; // defensive: a faulting iteration must end the run
    }

    // A wedge with the in-loop ladder unavailable (disabled, or the arena
    // was already speculating) ends the run with the worker's watchdog trap
    // transferred above — marked as an engine fault so runResilient() can
    // retry the whole run on a serial engine.
    if (WedgeFired) {
      EngineFault = true;
      ++LS.WatchdogFires;
    }

    for (WorkerCtx &W : Workers)
      Mem.releaseUntracked(W.FrameBase);
  }

  // The attempt stands (clean, or a real program trap/halt/budget breach):
  // keep its state and drop the recovery checkpoint.
  if (SpecArmed)
    Mem.commitSpeculation();

  if (GP) {
    // Same epilogue as a simulated guarded invocation: the commit scan over
    // the (merged) shadow arms the post-loop watch, then the shadow goes
    // away. Runs for Total == 0 too (fresh shadow, no-op scan).
    guardCommit(GP, N);
    guardTeardownRegions();
    updateGuardHooks();
  }

  rtPrivCommitAll();

  // Virtual timeline replay: identical arithmetic, fed in iteration order.
  // The faulting iteration (when one exists) contributes its work cycles and
  // output above but not a timeline completion — exactly where the simulated
  // path breaks out of its iteration loop.
  ParallelTimeline TL(Opts.Costs, N, DOALL);
  for (uint64_t It = 0; It != Total && It < AbnIt; ++It) {
    if (!Recs[It].Ran)
      continue;
    unsigned T =
        DOALL ? static_cast<unsigned>(std::min<uint64_t>(It / Chunk, N - 1))
              : TL.dispatchDoacross();
    TL.completeIter(T, Recs[It].W, Recs[It].Events);
  }

  uint64_t WorkDelta = Cycles - Before;
  uint64_t SimTime = TL.maxReady() + Opts.Costs.ForkJoin;
  LS.Iterations += Total;
  LS.WorkCycles += WorkDelta;
  LS.SimTime += SimTime;
  TL.accumulate(LS);
  TimeAdjust +=
      static_cast<int64_t>(SimTime) - static_cast<int64_t>(WorkDelta);

  return Result;
}
