//===- AccessInfo.cpp - Static memory access numbering ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/AccessInfo.h"

#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <algorithm>

using namespace gdse;

namespace {

class NumberingWalker {
public:
  NumberingWalker(AccessNumbering &Result, std::vector<AccessDesc> &Accesses,
                  std::vector<LoopDesc> &Loops,
                  std::map<const Stmt *, unsigned> &LoopIdByStmt)
      : Accesses(Accesses), Loops(Loops), LoopIdByStmt(LoopIdByStmt) {
    (void)Result;
  }

  void runOnFunction(Function *F) {
    CurFn = F;
    LoopStack.clear();
    if (F->getBody())
      visitStmt(F->getBody());
  }

private:
  void numberLoadsIn(Expr *E) {
    walkExpr(E, [&](Expr *Sub) {
      if (auto *L = dyn_cast<LoadExpr>(Sub)) {
        AccessDesc D;
        D.Id = static_cast<AccessId>(Accesses.size() + 1);
        D.IsStore = false;
        D.LoadNode = L;
        D.InFunction = CurFn;
        D.LoopStack = LoopStack;
        L->setAccessId(D.Id);
        Accesses.push_back(std::move(D));
      }
    });
  }

  void visitStmt(Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        visitStmt(Sub);
      return;
    case Stmt::Kind::ExprStmt:
      numberLoadsIn(cast<ExprStmt>(S)->getExpr());
      return;
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(S);
      // Number loads left-to-right (RHS evaluation order matches interp),
      // then the store itself.
      numberLoadsIn(A->getLHS());
      numberLoadsIn(A->getRHS());
      AccessDesc D;
      D.Id = static_cast<AccessId>(Accesses.size() + 1);
      D.IsStore = true;
      D.StoreNode = A;
      D.InFunction = CurFn;
      D.LoopStack = LoopStack;
      A->setAccessId(D.Id);
      Accesses.push_back(std::move(D));
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      numberLoadsIn(I->getCond());
      visitStmt(I->getThen());
      if (I->getElse())
        visitStmt(I->getElse());
      return;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      unsigned Id = pushLoop(S);
      W->setLoopId(Id);
      numberLoadsIn(W->getCond());
      visitStmt(W->getBody());
      popLoop();
      return;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(S);
      // Bounds evaluate outside the iteration space.
      numberLoadsIn(F->getInit());
      numberLoadsIn(F->getLimit());
      numberLoadsIn(F->getStep());
      unsigned Id = pushLoop(S);
      F->setLoopId(Id);
      visitStmt(F->getBody());
      popLoop();
      return;
    }
    case Stmt::Kind::Return:
      if (Expr *V = cast<ReturnStmt>(S)->getValue())
        numberLoadsIn(V);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return;
    case Stmt::Kind::Ordered:
      visitStmt(cast<OrderedStmt>(S)->getBody());
      return;
    }
    gdse_unreachable("unknown stmt kind");
  }

  unsigned pushLoop(Stmt *S) {
    LoopDesc D;
    D.Id = static_cast<unsigned>(Loops.size() + 1);
    D.LoopStmt = S;
    D.InFunction = CurFn;
    D.ParentLoopId = LoopStack.empty() ? 0 : LoopStack.back();
    D.Depth = static_cast<unsigned>(LoopStack.size() + 1);
    Loops.push_back(D);
    LoopIdByStmt[S] = D.Id;
    LoopStack.push_back(D.Id);
    return D.Id;
  }

  void popLoop() { LoopStack.pop_back(); }

  std::vector<AccessDesc> &Accesses;
  std::vector<LoopDesc> &Loops;
  std::map<const Stmt *, unsigned> &LoopIdByStmt;
  Function *CurFn = nullptr;
  std::vector<unsigned> LoopStack;
};

} // namespace

AccessNumbering AccessNumbering::compute(Module &M) {
  AccessNumbering Result;
  NumberingWalker W(Result, Result.Accesses, Result.Loops,
                    Result.LoopIdByStmt);
  for (Function *F : M.getFunctions())
    W.runOnFunction(F);
  return Result;
}

bool AccessNumbering::isInLoop(AccessId Id, unsigned LoopId) const {
  const AccessDesc &D = access(Id);
  return std::find(D.LoopStack.begin(), D.LoopStack.end(), LoopId) !=
         D.LoopStack.end();
}

std::set<const VarDecl *> gdse::collectRegisterVars(Module &M) {
  std::set<const VarDecl *> RegisterVars;
  std::set<const VarDecl *> AddressTaken;
  for (Function *F : M.getFunctions()) {
    walkExprs(F, [&](Expr *E) {
      const Expr *Loc = nullptr;
      if (auto *A = dyn_cast<AddrOfExpr>(E))
        Loc = A->getLocation();
      else if (auto *D = dyn_cast<DecayExpr>(E))
        Loc = D->getArrayLocation();
      while (Loc) {
        if (auto *FA = dyn_cast<FieldAccessExpr>(Loc)) {
          Loc = FA->getBase();
          continue;
        }
        if (auto *V = dyn_cast<VarRefExpr>(Loc))
          AddressTaken.insert(V->getDecl());
        break;
      }
    });
    for (const VarDecl *D : F->getParams())
      if (!D->getType()->isArray())
        RegisterVars.insert(D);
    for (const VarDecl *D : F->getLocals())
      if (!D->getType()->isArray())
        RegisterVars.insert(D);
  }
  for (const VarDecl *D : AddressTaken)
    RegisterVars.erase(D);
  return RegisterVars;
}

bool gdse::isRegisterAccess(const std::set<const VarDecl *> &RegisterVars,
                            const Expr *Loc) {
  while (auto *F = dyn_cast<FieldAccessExpr>(Loc))
    Loc = F->getBase();
  if (auto *V = dyn_cast<VarRefExpr>(Loc))
    return RegisterVars.count(V->getDecl()) != 0;
  return false;
}

std::vector<AccessId> AccessNumbering::accessesInLoop(unsigned LoopId) const {
  std::vector<AccessId> Out;
  for (const AccessDesc &D : Accesses)
    if (std::find(D.LoopStack.begin(), D.LoopStack.end(), LoopId) !=
        D.LoopStack.end())
      Out.push_back(D.Id);
  return Out;
}
