//===- AccessInfo.h - Static memory access numbering ------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns a dense module-wide AccessId to every static memory access (each
/// LoadExpr and each AssignStmt store) and records, per access, the function
/// and the stack of enclosing loops. These ids are the vertices of the
/// loop-level data dependence graph (Definition 1 of the paper).
///
/// Also numbers loops (For/While) with dense module-wide LoopIds and exposes
/// a registry to look them up.
///
/// Stable operand numbering: every numbering here (AccessId, LoopId) and the
/// dense VarDecl ids assigned by the module are deterministic functions of
/// program order, and transformations renumber through this one walker. The
/// bytecode lowering (interp/Lowering.cpp) bakes these ids into instruction
/// immediates and indexes per-module tables by VarDecl::getId(), so the
/// contract is: ids are dense, start at 1, and are only reassigned by a
/// renumbering pass — at which point cached bytecode must be invalidated
/// (AnalysisManager does this on the pass-preservation path).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_ACCESSINFO_H
#define GDSE_IR_ACCESSINFO_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <vector>

namespace gdse {

/// Metadata of one numbered memory access.
struct AccessDesc {
  AccessId Id = InvalidAccessId;
  bool IsStore = false;
  /// The node carrying the id: LoadExpr when !IsStore, AssignStmt otherwise.
  Expr *LoadNode = nullptr;
  AssignStmt *StoreNode = nullptr;
  Function *InFunction = nullptr;
  /// Innermost-last stack of enclosing loop ids within InFunction.
  std::vector<unsigned> LoopStack;

  /// The l-value expression this access reads/writes.
  Expr *location() const {
    return IsStore ? StoreNode->getLHS() : cast<LoadExpr>(LoadNode)->getLocation();
  }
};

/// Metadata of one numbered loop.
struct LoopDesc {
  unsigned Id = 0;
  Stmt *LoopStmt = nullptr; ///< ForStmt or WhileStmt
  Function *InFunction = nullptr;
  unsigned ParentLoopId = 0; ///< 0 when top-level
  unsigned Depth = 1;        ///< 1 = outermost (paper's Table 4 "Level")
};

/// Result of numbering a module. Rebuild after any transformation that adds
/// or removes accesses/loops.
class AccessNumbering {
public:
  /// Numbers every access and loop in \p M. Existing ids are overwritten.
  static AccessNumbering compute(Module &M);

  const AccessDesc &access(AccessId Id) const {
    assert(Id >= 1 && Id <= Accesses.size() && "bad access id");
    return Accesses[Id - 1];
  }
  uint32_t numAccesses() const {
    return static_cast<uint32_t>(Accesses.size());
  }
  const std::vector<AccessDesc> &accesses() const { return Accesses; }

  const LoopDesc &loop(unsigned Id) const {
    assert(Id >= 1 && Id <= Loops.size() && "bad loop id");
    return Loops[Id - 1];
  }
  unsigned numLoops() const { return static_cast<unsigned>(Loops.size()); }
  const std::vector<LoopDesc> &loops() const { return Loops; }

  /// Returns the loop id of the For/While statement \p S (0 if unknown).
  unsigned loopIdOf(const Stmt *S) const {
    auto It = LoopIdByStmt.find(S);
    return It == LoopIdByStmt.end() ? 0 : It->second;
  }

  /// True when access \p Id executes inside loop \p LoopId (any depth).
  bool isInLoop(AccessId Id, unsigned LoopId) const;

  /// All access ids inside loop \p LoopId.
  std::vector<AccessId> accessesInLoop(unsigned LoopId) const;

private:
  std::vector<AccessDesc> Accesses;
  std::vector<LoopDesc> Loops;
  std::map<const Stmt *, unsigned> LoopIdByStmt;
};

/// Locals and parameters a compiling backend would keep in registers: scalar
/// or pointer typed and never address-taken. Accesses to them are free in
/// the VM cost model (the VM still goes through frame memory). Both
/// execution engines derive their charging decisions from this one
/// definition, so their cycle accounting cannot drift.
std::set<const VarDecl *> collectRegisterVars(Module &M);

/// True when the l-value \p Loc is a direct reference to a variable in
/// \p RegisterVars, or a field chain over a non-address-taken local
/// aggregate (which SROA would scalarize into registers).
bool isRegisterAccess(const std::set<const VarDecl *> &RegisterVars,
                      const Expr *Loc);

} // namespace gdse

#endif // GDSE_IR_ACCESSINFO_H
