//===- IR.cpp - GDSE typed AST-level IR ------------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Support.h"

#include <algorithm>

using namespace gdse;

VarDecl *Module::createVar(const std::string &Name, Type *Ty,
                           VarDecl::Storage S) {
  VarPool.push_back(std::make_unique<VarDecl>(Name, Ty, S));
  VarDecl *D = VarPool.back().get();
  D->Id = static_cast<uint32_t>(VarPool.size());
  return D;
}

void Module::removeGlobal(VarDecl *D) {
  auto It = std::find(Globals.begin(), Globals.end(), D);
  assert(It != Globals.end() && "removeGlobal of unregistered global");
  Globals.erase(It);
}

Function *Module::createFunction(const std::string &Name, FunctionType *FT) {
  assert(!FunctionsByName.count(Name) && "duplicate function name");
  FunctionPool.push_back(std::make_unique<Function>(Name, FT));
  Function *F = FunctionPool.back().get();
  Functions.push_back(F);
  FunctionsByName[Name] = F;
  return F;
}

Function *Module::getFunction(const std::string &Name) const {
  auto It = FunctionsByName.find(Name);
  return It == FunctionsByName.end() ? nullptr : It->second;
}

const char *gdse::getBuiltinName(Builtin B) {
  switch (B) {
  case Builtin::None:
    return "<none>";
  case Builtin::MallocFn:
    return "malloc";
  case Builtin::CallocFn:
    return "calloc";
  case Builtin::ReallocFn:
    return "realloc";
  case Builtin::FreeFn:
    return "free";
  case Builtin::MemcpyFn:
    return "memcpy";
  case Builtin::MemsetFn:
    return "memset";
  case Builtin::PrintInt:
    return "print_int";
  case Builtin::PrintFloat:
    return "print_float";
  case Builtin::AbsFn:
    return "abs";
  case Builtin::FabsFn:
    return "fabs";
  case Builtin::SqrtFn:
    return "sqrt";
  case Builtin::ExitFn:
    return "exit";
  case Builtin::RtPrivPtr:
    return "rtpriv_ptr";
  }
  gdse_unreachable("unknown builtin");
}

Builtin gdse::lookupBuiltin(const std::string &Name) {
  static const std::pair<const char *, Builtin> Table[] = {
      {"malloc", Builtin::MallocFn},   {"calloc", Builtin::CallocFn},
      {"realloc", Builtin::ReallocFn}, {"free", Builtin::FreeFn},
      {"memcpy", Builtin::MemcpyFn},   {"memset", Builtin::MemsetFn},
      {"print_int", Builtin::PrintInt}, {"print_float", Builtin::PrintFloat},
      {"abs", Builtin::AbsFn},         {"fabs", Builtin::FabsFn},
      {"sqrt", Builtin::SqrtFn},       {"exit", Builtin::ExitFn},
      {"rtpriv_ptr", Builtin::RtPrivPtr},
  };
  for (const auto &[N, B] : Table)
    if (Name == N)
      return B;
  return Builtin::None;
}

bool gdse::isAllocationBuiltin(Builtin B) {
  return B == Builtin::MallocFn || B == Builtin::CallocFn ||
         B == Builtin::ReallocFn;
}
