//===- IR.h - GDSE typed AST-level IR ---------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed, structured IR that the whole system operates on. It is an
/// AST-level IR (close to GIMPLE-before-lowering) because the paper's
/// transformation is defined over C declarations and memory references:
/// type promotion (Figs. 5-6), span insertion (Table 3), type expansion
/// (Table 1) and access redirection (Table 2) all rewrite declaration types
/// and l-value expressions, which a structured IR preserves exactly.
///
/// Key invariants (checked by the Verifier):
///  - every memory *read* is an explicit LoadExpr wrapping an l-value;
///  - every memory *write* is an AssignStmt whose LHS is an l-value;
///  - l-values are VarRefExpr, DerefExpr, ArrayIndexExpr, FieldAccessExpr;
///  - arrays decay to element pointers via DecayExpr before indexing math.
///
/// LoadExpr and AssignStmt carry the AccessID used by the dependence graph
/// (Definition 1) and everything downstream.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_IR_H
#define GDSE_IR_IR_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gdse {

class Expr;
class Stmt;
class Function;
class Module;

/// Unique id of a static memory access (a LoadExpr or an AssignStmt store).
/// Assigned densely per function by AccessNumbering. 0 means "not numbered".
using AccessId = uint32_t;
inline constexpr AccessId InvalidAccessId = 0;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable: global, function-local, or parameter.
class VarDecl {
public:
  enum class Storage : uint8_t { Global, Local, Param };

  VarDecl(std::string Name, Type *Ty, Storage S)
      : Name(std::move(Name)), Ty(Ty), Sto(S) {}

  const std::string &getName() const { return Name; }
  Type *getType() const { return Ty; }
  Storage getStorage() const { return Sto; }
  bool isGlobal() const { return Sto == Storage::Global; }
  bool isLocal() const { return Sto == Storage::Local; }
  bool isParam() const { return Sto == Storage::Param; }

  /// Retypes the variable; used by the promotion and expansion passes which
  /// rewrite declarations in place (Table 1 / Fig. 5).
  void setType(Type *NewTy) { Ty = NewTy; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// Module-unique id, assigned on registration; keys analysis side tables.
  uint32_t getId() const { return Id; }

private:
  friend class Module;
  std::string Name;
  Type *Ty;
  Storage Sto;
  uint32_t Id = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Built-in library routines known to the VM. MallocFn/CallocFn/ReallocFn
/// are the allocation sites the paper's Table 1 heap rule rewrites.
enum class Builtin : uint8_t {
  None,
  MallocFn,
  CallocFn,
  ReallocFn,
  FreeFn,
  MemcpyFn,
  MemsetFn,
  PrintInt,
  PrintFloat,
  AbsFn,
  FabsFn,
  SqrtFn,
  ExitFn,
  /// Runtime-privatization access control (the SpiceC-style baseline,
  /// paper §4.2.1): rtpriv_ptr(p, span) returns the address of the current
  /// thread's private copy of the structure containing p. The VM implements
  /// the per-thread translation table, copy-in, and loop-end commit.
  RtPrivPtr,
};

/// Root of the expression hierarchy. Every expression has a static type.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLit,
    FloatLit,
    VarRef,
    Load,
    Unary,
    Binary,
    ArrayIndex,
    FieldAccess,
    Deref,
    AddrOf,
    Decay,
    Call,
    Cast,
    SizeofType,
    ThreadId,
    NumThreads,
    Cond,
  };

  Kind getKind() const { return K; }
  Type *getType() const { return Ty; }
  void setType(Type *NewTy) { Ty = NewTy; }

  /// True for expressions that denote a memory location.
  bool isLValue() const {
    return K == Kind::VarRef || K == Kind::Deref || K == Kind::ArrayIndex ||
           K == Kind::FieldAccess;
  }

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr() = default;

protected:
  Expr(Kind K, Type *Ty) : K(K), Ty(Ty) {}

private:
  friend class Module;
  Kind K;
  Type *Ty;
};

/// Integer literal (value stored sign-extended in 64 bits).
class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, Type *Ty) : Expr(Kind::IntLit, Ty), Value(Value) {}
  int64_t getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// Floating-point literal.
class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, Type *Ty) : Expr(Kind::FloatLit, Ty), Value(Value) {}
  double getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::FloatLit; }

private:
  double Value;
};

/// Reference to a variable; an l-value of the variable's type.
class VarRefExpr : public Expr {
public:
  explicit VarRefExpr(VarDecl *D) : Expr(Kind::VarRef, D->getType()), D(D) {}
  VarDecl *getDecl() const { return D; }
  void setDecl(VarDecl *NewD) {
    D = NewD;
    setType(NewD->getType());
  }
  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  VarDecl *D;
};

/// Explicit memory read of an l-value (the C l-value-to-r-value conversion).
/// Carries the AccessId used by the dependence graph.
class LoadExpr : public Expr {
public:
  explicit LoadExpr(Expr *Loc) : Expr(Kind::Load, Loc->getType()), Loc(Loc) {}
  Expr *getLocation() const { return Loc; }
  void setLocation(Expr *NewLoc) {
    Loc = NewLoc;
    setType(NewLoc->getType());
  }
  AccessId getAccessId() const { return Id; }
  void setAccessId(AccessId NewId) { Id = NewId; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Load; }

private:
  Expr *Loc;
  AccessId Id = InvalidAccessId;
};

enum class UnaryOp : uint8_t { Neg, BitNot, LogicalNot };

/// Unary arithmetic/logic on an r-value.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Sub, Type *Ty)
      : Expr(Kind::Unary, Ty), Op(Op), Sub(Sub) {}
  UnaryOp getOp() const { return Op; }
  Expr *getSub() const { return Sub; }
  void setSub(Expr *E) { Sub = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
};

/// Binary operation. Pointer arithmetic follows C: ptr+int scales by the
/// pointee size; ptr-ptr yields an element-count integer (the quantity the
/// paper's "Pointer arithmetic 2" span rule tracks).
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, Type *Ty)
      : Expr(Kind::Binary, Ty), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  void setLHS(Expr *E) { LHS = E; }
  void setRHS(Expr *E) { RHS = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// base[index] where base is a pointer r-value; an l-value of the pointee.
class ArrayIndexExpr : public Expr {
public:
  ArrayIndexExpr(Expr *Base, Expr *Index, Type *ElemTy)
      : Expr(Kind::ArrayIndex, ElemTy), Base(Base), Index(Index) {}
  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }
  void setBase(Expr *E) { Base = E; }
  void setIndex(Expr *E) { Index = E; }
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ArrayIndex;
  }

private:
  Expr *Base;
  Expr *Index;
};

/// base.field where base is a struct l-value; an l-value of the field type.
class FieldAccessExpr : public Expr {
public:
  FieldAccessExpr(Expr *Base, unsigned FieldIdx, Type *FieldTy)
      : Expr(Kind::FieldAccess, FieldTy), Base(Base), FieldIdx(FieldIdx) {}
  Expr *getBase() const { return Base; }
  unsigned getFieldIndex() const { return FieldIdx; }
  void setBase(Expr *E) { Base = E; }
  void setFieldIndex(unsigned Idx) { FieldIdx = Idx; }
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::FieldAccess;
  }

private:
  Expr *Base;
  unsigned FieldIdx;
};

/// *ptr where ptr is a pointer r-value; an l-value of the pointee type.
class DerefExpr : public Expr {
public:
  DerefExpr(Expr *Ptr, Type *PointeeTy)
      : Expr(Kind::Deref, PointeeTy), Ptr(Ptr) {}
  Expr *getPtr() const { return Ptr; }
  void setPtr(Expr *E) { Ptr = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Deref; }

private:
  Expr *Ptr;
};

/// &lvalue; an r-value of pointer type.
class AddrOfExpr : public Expr {
public:
  AddrOfExpr(Expr *Loc, Type *PtrTy) : Expr(Kind::AddrOf, PtrTy), Loc(Loc) {}
  Expr *getLocation() const { return Loc; }
  void setLocation(Expr *E) { Loc = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::AddrOf; }

private:
  Expr *Loc;
};

/// Array-to-pointer decay of an array l-value; an r-value pointer to the
/// first element.
class DecayExpr : public Expr {
public:
  DecayExpr(Expr *ArrayLoc, Type *PtrTy)
      : Expr(Kind::Decay, PtrTy), ArrayLoc(ArrayLoc) {}
  Expr *getArrayLocation() const { return ArrayLoc; }
  void setArrayLocation(Expr *E) { ArrayLoc = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Decay; }

private:
  Expr *ArrayLoc;
};

/// Direct call of a user function or a builtin. Builtin allocation calls are
/// the heap allocation sites of Table 1. Each call site carries a
/// module-unique SiteId used by points-to analysis and the expansion target
/// selection.
class CallExpr : public Expr {
public:
  CallExpr(Function *Callee, std::vector<Expr *> Args, Type *RetTy)
      : Expr(Kind::Call, RetTy), Callee(Callee), B(Builtin::None),
        Args(std::move(Args)) {}
  CallExpr(Builtin B, std::vector<Expr *> Args, Type *RetTy)
      : Expr(Kind::Call, RetTy), Callee(nullptr), B(B), Args(std::move(Args)) {}

  bool isBuiltin() const { return B != Builtin::None; }
  Builtin getBuiltin() const { return B; }
  Function *getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Expr *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I];
  }
  void setArg(unsigned I, Expr *E) {
    assert(I < Args.size() && "argument index out of range");
    Args[I] = E;
  }
  void setArgs(std::vector<Expr *> NewArgs) { Args = std::move(NewArgs); }

  uint32_t getSiteId() const { return SiteId; }
  void setSiteId(uint32_t Id) { SiteId = Id; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  Function *Callee;
  Builtin B;
  std::vector<Expr *> Args;
  uint32_t SiteId = 0;
};

/// Value conversion between scalar/pointer types (C cast semantics).
class CastExpr : public Expr {
public:
  CastExpr(Expr *Sub, Type *ToTy) : Expr(Kind::Cast, ToTy), Sub(Sub) {}
  Expr *getSub() const { return Sub; }
  void setSub(Expr *E) { Sub = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }

private:
  Expr *Sub;
};

/// sizeof(T) as a compile-time constant of type long.
class SizeofTypeExpr : public Expr {
public:
  SizeofTypeExpr(Type *Queried, Type *ResultTy)
      : Expr(Kind::SizeofType, ResultTy), Queried(Queried) {}
  Type *getQueriedType() const { return Queried; }
  void setQueriedType(Type *T) { Queried = T; }
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::SizeofType;
  }

private:
  Type *Queried;
};

/// The current thread index (the paper's \c tid); 0 outside parallel loops.
class ThreadIdExpr : public Expr {
public:
  explicit ThreadIdExpr(Type *IntTy) : Expr(Kind::ThreadId, IntTy) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::ThreadId; }
};

/// The thread count the program runs with (the paper's \c N); a runtime value.
class NumThreadsExpr : public Expr {
public:
  explicit NumThreadsExpr(Type *IntTy) : Expr(Kind::NumThreads, IntTy) {}
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::NumThreads;
  }
};

/// cond ? then : else with short-circuit evaluation; an r-value.
class CondExpr : public Expr {
public:
  CondExpr(Expr *Cnd, Expr *Then, Expr *Else, Type *Ty)
      : Expr(Kind::Cond, Ty), Cnd(Cnd), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cnd; }
  Expr *getThen() const { return Then; }
  Expr *getElse() const { return Else; }
  void setCond(Expr *E) { Cnd = E; }
  void setThen(Expr *E) { Then = E; }
  void setElse(Expr *E) { Else = E; }
  static bool classof(const Expr *E) { return E->getKind() == Kind::Cond; }

private:
  Expr *Cnd;
  Expr *Then;
  Expr *Else;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// How a loop is to be executed by the parallel runtime (paper §4.3).
enum class ParallelKind : uint8_t {
  None,     ///< sequential
  DOALL,    ///< independent iterations; static chunk scheduling
  DOACROSS, ///< cross-iteration sync required; dynamic chunk-1 scheduling
};

/// Root of the statement hierarchy.
class Stmt {
public:
  enum class Kind : uint8_t {
    Block,
    ExprStmt,
    Assign,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Ordered,
  };

  Kind getKind() const { return K; }

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
  virtual ~Stmt() = default;

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  Kind K;
};

/// { s0; s1; ... }
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<Stmt *> Stmts)
      : Stmt(Kind::Block), Stmts(std::move(Stmts)) {}
  const std::vector<Stmt *> &getStmts() const { return Stmts; }
  std::vector<Stmt *> &getStmts() { return Stmts; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<Stmt *> Stmts;
};

/// Expression evaluated for side effects (calls).
class ExprStmt : public Stmt {
public:
  explicit ExprStmt(Expr *E) : Stmt(Kind::ExprStmt), E(E) {}
  Expr *getExpr() const { return E; }
  void setExpr(Expr *NewE) { E = NewE; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }

private:
  Expr *E;
};

/// lhs = rhs. The single memory-write construct; carries the store AccessId.
/// Aggregate (struct/array) assignment copies the full object, which the
/// paper treats as a series of scalar assignments.
class AssignStmt : public Stmt {
public:
  AssignStmt(Expr *LHS, Expr *RHS) : Stmt(Kind::Assign), LHS(LHS), RHS(RHS) {}
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  void setLHS(Expr *E) { LHS = E; }
  void setRHS(Expr *E) { RHS = E; }
  AccessId getAccessId() const { return Id; }
  void setAccessId(AccessId NewId) { Id = NewId; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  Expr *LHS;
  Expr *RHS;
  AccessId Id = InvalidAccessId;
};

/// if (cond) then else else.
class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(Kind::If), Cond(Cond), Then(Then), Else(Else) {}
  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }
  void setCond(Expr *E) { Cond = E; }
  void setThen(Stmt *S) { Then = S; }
  void setElse(Stmt *S) { Else = S; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // may be null
};

/// while (cond) body. General loops; never a parallelization candidate.
class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body)
      : Stmt(Kind::While), Cond(Cond), Body(Body) {}
  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }
  void setCond(Expr *E) { Cond = E; }
  void setBody(Stmt *S) { Body = S; }
  unsigned getLoopId() const { return LoopId; }
  void setLoopId(unsigned Id) { LoopId = Id; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
  unsigned LoopId = 0;
};

/// Canonical counted loop: for (iv = init; iv < limit; iv = iv + step) body.
/// The only parallelization candidate form. \c iv is a dedicated local whose
/// storage is per-worker when the loop runs in parallel.
class ForStmt : public Stmt {
public:
  ForStmt(VarDecl *IV, Expr *Init, Expr *Limit, Expr *Step, Stmt *Body)
      : Stmt(Kind::For), IV(IV), Init(Init), Limit(Limit), Step(Step),
        Body(Body) {}
  VarDecl *getInductionVar() const { return IV; }
  Expr *getInit() const { return Init; }
  Expr *getLimit() const { return Limit; }
  Expr *getStep() const { return Step; }
  Stmt *getBody() const { return Body; }
  void setInductionVar(VarDecl *D) { IV = D; }
  void setInit(Expr *E) { Init = E; }
  void setLimit(Expr *E) { Limit = E; }
  void setStep(Expr *E) { Step = E; }
  void setBody(Stmt *S) { Body = S; }

  unsigned getLoopId() const { return LoopId; }
  void setLoopId(unsigned Id) { LoopId = Id; }
  ParallelKind getParallelKind() const { return PK; }
  void setParallelKind(ParallelKind K) { PK = K; }
  /// Marked as a parallelization candidate (the "@candidate" annotation; the
  /// paper's promising loops selected by profiling/the programmer).
  bool isCandidate() const { return Candidate; }
  void setCandidate(bool C) { Candidate = C; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  VarDecl *IV;
  Expr *Init;
  Expr *Limit;
  Expr *Step;
  Stmt *Body;
  unsigned LoopId = 0;
  ParallelKind PK = ParallelKind::None;
  bool Candidate = false;
};

/// return expr; (expr null for void functions).
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(Expr *Value) : Stmt(Kind::Return), Value(Value) {}
  Expr *getValue() const { return Value; }
  void setValue(Expr *E) { Value = E; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }

private:
  Expr *Value; // may be null
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(Kind::Break) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(Kind::Continue) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

/// A cross-iteration synchronization region inserted by the DOACROSS planner:
/// iteration i may enter region R only after iteration i-1 has left region R.
/// Models the paper's "necessary inter-thread synchronization" (§4.3).
class OrderedStmt : public Stmt {
public:
  OrderedStmt(unsigned RegionId, Stmt *Body)
      : Stmt(Kind::Ordered), RegionId(RegionId), Body(Body) {}
  unsigned getRegionId() const { return RegionId; }
  Stmt *getBody() const { return Body; }
  void setBody(Stmt *S) { Body = S; }
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Ordered; }

private:
  unsigned RegionId;
  Stmt *Body;
};

//===----------------------------------------------------------------------===//
// Function and Module
//===----------------------------------------------------------------------===//

/// A function definition: signature, parameter and local declarations, body.
class Function {
public:
  Function(std::string Name, FunctionType *FT) : Name(std::move(Name)), FT(FT) {}

  const std::string &getName() const { return Name; }
  FunctionType *getFunctionType() const { return FT; }
  Type *getReturnType() const { return FT->getReturnType(); }

  const std::vector<VarDecl *> &getParams() const { return Params; }
  const std::vector<VarDecl *> &getLocals() const { return Locals; }
  VarDecl *getParam(unsigned I) const {
    assert(I < Params.size() && "parameter index out of range");
    return Params[I];
  }
  void addParam(VarDecl *D) {
    assert(D->isParam() && "addParam with non-parameter decl");
    Params.push_back(D);
  }
  void addLocal(VarDecl *D) {
    assert(D->isLocal() && "addLocal with non-local decl");
    Locals.push_back(D);
  }
  /// Replaces the whole parameter list (used by pointer promotion when
  /// unbundling fat-pointer parameters). The function type must be updated
  /// by the caller to match.
  void replaceParams(std::vector<VarDecl *> NewParams) {
#ifndef NDEBUG
    for (VarDecl *P : NewParams)
      assert(P->isParam() && "replaceParams with non-parameter decl");
#endif
    Params = std::move(NewParams);
  }

  BlockStmt *getBody() const { return Body; }
  void setBody(BlockStmt *B) { Body = B; }
  bool isDefinition() const { return Body != nullptr; }

  /// Updates the signature after promotion rewrites parameter types.
  void setFunctionType(FunctionType *NewFT) { FT = NewFT; }

private:
  std::string Name;
  FunctionType *FT;
  std::vector<VarDecl *> Params;
  std::vector<VarDecl *> Locals;
  BlockStmt *Body = nullptr;
};

/// A whole program: type context, globals, functions, and the arena that owns
/// every IR node. Transform passes allocate replacement nodes from the same
/// arena; detached nodes simply stay owned by it.
class Module {
public:
  Module() = default;

  TypeContext &getTypes() { return Ctx; }

  /// Allocates an IR node (Expr or Stmt subclasses) in the module arena.
  template <typename NodeT, typename... ArgTs> NodeT *create(ArgTs &&...Args) {
    auto Node = std::make_unique<NodeT>(std::forward<ArgTs>(Args)...);
    NodeT *Raw = Node.get();
    if constexpr (std::is_base_of_v<Expr, NodeT>)
      ExprPool.push_back(std::move(Node));
    else if constexpr (std::is_base_of_v<Stmt, NodeT>)
      StmtPool.push_back(std::move(Node));
    else
      static_assert(std::is_base_of_v<Expr, NodeT> ||
                        std::is_base_of_v<Stmt, NodeT>,
                    "Module::create only allocates Expr/Stmt nodes");
    return Raw;
  }

  /// Creates and registers a variable declaration.
  VarDecl *createVar(const std::string &Name, Type *Ty, VarDecl::Storage S);

  /// Creates and registers a global variable.
  VarDecl *addGlobal(const std::string &Name, Type *Ty) {
    VarDecl *D = createVar(Name, Ty, VarDecl::Storage::Global);
    Globals.push_back(D);
    return D;
  }
  /// Removes a global from the visible list (its storage stays in the arena);
  /// used by the global-to-heap conversion (§3.1).
  void removeGlobal(VarDecl *D);

  const std::vector<VarDecl *> &getGlobals() const { return Globals; }

  Function *createFunction(const std::string &Name, FunctionType *FT);
  Function *getFunction(const std::string &Name) const;
  const std::vector<Function *> &getFunctions() const { return Functions; }

  uint32_t getNumVarDecls() const {
    return static_cast<uint32_t>(VarPool.size());
  }
  /// All declarations ever created (dense by VarDecl::getId(), starting at 1).
  VarDecl *getVarDecl(uint32_t Id) const {
    assert(Id >= 1 && Id <= VarPool.size() && "bad decl id");
    return VarPool[Id - 1].get();
  }

  /// Hands out a fresh call-site id (for points-to object naming).
  uint32_t nextCallSiteId() { return ++LastCallSiteId; }
  uint32_t getMaxCallSiteId() const { return LastCallSiteId; }

private:
  TypeContext Ctx;
  std::vector<std::unique_ptr<Expr>> ExprPool;
  std::vector<std::unique_ptr<Stmt>> StmtPool;
  std::vector<std::unique_ptr<VarDecl>> VarPool;
  std::vector<std::unique_ptr<Function>> FunctionPool;
  std::vector<VarDecl *> Globals;
  std::vector<Function *> Functions;
  std::map<std::string, Function *> FunctionsByName;
  uint32_t LastCallSiteId = 0;
};

/// Returns the printable name of a builtin.
const char *getBuiltinName(Builtin B);
/// Maps a source identifier to a builtin (Builtin::None when unknown).
Builtin lookupBuiltin(const std::string &Name);
/// True for malloc/calloc/realloc — the allocation sites of Table 1.
bool isAllocationBuiltin(Builtin B);

} // namespace gdse

#endif // GDSE_IR_IR_H
