//===- IRBuilder.cpp - Convenience construction of typed IR ----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "support/Support.h"

#include <algorithm>

using namespace gdse;

ArrayIndexExpr *IRBuilder::index(Expr *Base, Expr *Idx) {
  auto *PT = dyn_cast<PointerType>(Base->getType());
  assert(PT && "index base must be a pointer r-value");
  assert(Idx->getType()->isInt() && "index must be an integer");
  return M.create<ArrayIndexExpr>(Base, Idx, PT->getPointee());
}

FieldAccessExpr *IRBuilder::field(Expr *Base, unsigned FieldIdx) {
  assert(Base->isLValue() && "field base must be an l-value");
  auto *ST = dyn_cast<StructType>(Base->getType());
  assert(ST && "field base must have struct type");
  return M.create<FieldAccessExpr>(Base, FieldIdx,
                                   ST->getField(FieldIdx).Ty);
}

FieldAccessExpr *IRBuilder::fieldNamed(Expr *Base, const std::string &Name) {
  auto *ST = dyn_cast<StructType>(Base->getType());
  assert(ST && "field base must have struct type");
  int Idx = ST->getFieldIndex(Name);
  assert(Idx >= 0 && "no such field");
  return field(Base, static_cast<unsigned>(Idx));
}

DerefExpr *IRBuilder::deref(Expr *Ptr) {
  auto *PT = dyn_cast<PointerType>(Ptr->getType());
  assert(PT && "deref of non-pointer");
  assert(!PT->getPointee()->isVoid() && "deref of void pointer");
  return M.create<DerefExpr>(Ptr, PT->getPointee());
}

AddrOfExpr *IRBuilder::addrOf(Expr *LValue) {
  assert(LValue->isLValue() && "addrOf of non-lvalue");
  return M.create<AddrOfExpr>(LValue, Ctx.getPointerType(LValue->getType()));
}

DecayExpr *IRBuilder::decay(Expr *ArrayLValue) {
  assert(ArrayLValue->isLValue() && "decay of non-lvalue");
  auto *AT = dyn_cast<ArrayType>(ArrayLValue->getType());
  assert(AT && "decay of non-array");
  return M.create<DecayExpr>(ArrayLValue,
                             Ctx.getPointerType(AT->getElement()));
}

bool IRBuilder::isImplicitlyConvertible(Type *From, Type *To) {
  if (From == To)
    return true;
  if (From->isScalar() && To->isScalar())
    return true;
  if (From->isPointer() && To->isPointer()) {
    // void* converts freely; otherwise require equal pointees.
    Type *FP = cast<PointerType>(From)->getPointee();
    Type *TP = cast<PointerType>(To)->getPointee();
    return FP->isVoid() || TP->isVoid() || FP == TP;
  }
  // Integer literal zero to pointer is handled by callers; int->ptr is not
  // implicit in MiniC.
  return false;
}

Expr *IRBuilder::convert(Expr *E, Type *Ty) {
  if (E->getType() == Ty)
    return E;
  assert(isImplicitlyConvertible(E->getType(), Ty) &&
         "invalid implicit conversion");
  return M.create<CastExpr>(E, Ty);
}

Type *IRBuilder::commonArithType(Type *A, Type *B) {
  assert(A->isScalar() && B->isScalar() && "arith on non-scalars");
  if (A->isFloat() || B->isFloat()) {
    unsigned Bits = 32;
    if (auto *FA = dyn_cast<FloatType>(A))
      Bits = std::max(Bits, FA->getBits());
    if (auto *FB = dyn_cast<FloatType>(B))
      Bits = std::max(Bits, FB->getBits());
    return Ctx.getFloatType(Bits);
  }
  auto *IA = cast<IntType>(A);
  auto *IB = cast<IntType>(B);
  unsigned Bits = std::max({32u, IA->getBits(), IB->getBits()});
  bool Signed = true;
  if ((IA->getBits() >= Bits && !IA->isSigned()) ||
      (IB->getBits() >= Bits && !IB->isSigned()))
    Signed = false;
  return Ctx.getIntType(Bits, Signed);
}

Expr *IRBuilder::unary(UnaryOp Op, Expr *Sub) {
  Type *Ty = Sub->getType();
  switch (Op) {
  case UnaryOp::Neg:
    assert(Ty->isScalar() && "negation of non-scalar");
    if (Ty->isInt() && cast<IntType>(Ty)->getBits() < 32) {
      Sub = convert(Sub, Ctx.getInt32());
      Ty = Sub->getType();
    }
    break;
  case UnaryOp::BitNot:
    assert(Ty->isInt() && "bitwise not of non-integer");
    if (cast<IntType>(Ty)->getBits() < 32) {
      Sub = convert(Sub, Ctx.getInt32());
      Ty = Sub->getType();
    }
    break;
  case UnaryOp::LogicalNot:
    assert((Ty->isScalar() || Ty->isPointer()) && "! of non-scalar");
    Ty = Ctx.getInt32();
    break;
  }
  return M.create<UnaryExpr>(Op, Sub, Ty);
}

static bool isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

Expr *IRBuilder::binary(BinaryOp Op, Expr *LHS, Expr *RHS) {
  Type *LT = LHS->getType();
  Type *RT = RHS->getType();

  if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr)
    return M.create<BinaryExpr>(Op, asCondition(LHS), asCondition(RHS),
                                Ctx.getInt32());

  if (isComparison(Op)) {
    if (LT->isPointer() || RT->isPointer()) {
      // Allow ptr-vs-ptr and ptr-vs-integer-constant (null) comparisons.
      if (LT->isInt())
        LHS = castTo(LHS, RT);
      else if (RT->isInt())
        RHS = castTo(RHS, LT);
    } else {
      Type *CT = commonArithType(LT, RT);
      LHS = convert(LHS, CT);
      RHS = convert(RHS, CT);
    }
    return M.create<BinaryExpr>(Op, LHS, RHS, Ctx.getInt32());
  }

  // Pointer arithmetic.
  if (LT->isPointer() || RT->isPointer()) {
    assert((Op == BinaryOp::Add || Op == BinaryOp::Sub) &&
           "invalid pointer arithmetic operator");
    if (LT->isPointer() && RT->isPointer()) {
      assert(Op == BinaryOp::Sub && "ptr+ptr is invalid");
      return M.create<BinaryExpr>(Op, LHS, RHS, Ctx.getInt64());
    }
    if (RT->isPointer()) {
      assert(Op == BinaryOp::Add && "int-ptr is invalid");
      std::swap(LHS, RHS);
      std::swap(LT, RT);
    }
    assert(RHS->getType()->isInt() && "pointer offset must be integer");
    RHS = convert(RHS, Ctx.getInt64());
    return M.create<BinaryExpr>(Op, LHS, RHS, LT);
  }

  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr) {
    assert(LT->isInt() && RT->isInt() && "shift on non-integers");
    Type *Ty = cast<IntType>(LT)->getBits() < 32 ? Ctx.getInt32() : LT;
    return M.create<BinaryExpr>(Op, convert(LHS, Ty),
                                convert(RHS, Ctx.getInt32()), Ty);
  }

  if (Op == BinaryOp::Rem || Op == BinaryOp::BitAnd || Op == BinaryOp::BitOr ||
      Op == BinaryOp::BitXor)
    assert(LT->isInt() && RT->isInt() && "integer-only operator");

  Type *CT = commonArithType(LT, RT);
  return M.create<BinaryExpr>(Op, convert(LHS, CT), convert(RHS, CT), CT);
}

Expr *IRBuilder::asCondition(Expr *E) {
  Type *Ty = E->getType();
  if (Ty->isInt())
    return E;
  if (Ty->isFloat())
    return binary(BinaryOp::Ne, E, floatLit(0.0, Ty));
  if (Ty->isPointer()) {
    Expr *Null = castTo(intLit(0, Ctx.getInt64()), Ty);
    return M.create<BinaryExpr>(BinaryOp::Ne, E, Null, Ctx.getInt32());
  }
  gdse_unreachable("invalid condition type");
}

CondExpr *IRBuilder::cond(Expr *C, Expr *Then, Expr *Else) {
  Type *Ty = Then->getType();
  if (Then->getType()->isScalar() && Else->getType()->isScalar()) {
    Ty = commonArithType(Then->getType(), Else->getType());
    Then = convert(Then, Ty);
    Else = convert(Else, Ty);
  } else {
    assert(Then->getType() == Else->getType() &&
           "?: operands must have a common type");
  }
  return M.create<CondExpr>(asCondition(C), Then, Else, Ty);
}

CallExpr *IRBuilder::call(Function *F, std::vector<Expr *> Args) {
  FunctionType *FT = F->getFunctionType();
  assert(Args.size() == FT->getNumParams() && "argument count mismatch");
  for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I)
    Args[I] = convert(Args[I], FT->getParam(I));
  CallExpr *C = M.create<CallExpr>(F, std::move(Args), FT->getReturnType());
  C->setSiteId(M.nextCallSiteId());
  return C;
}

CallExpr *IRBuilder::callBuiltin(Builtin B, std::vector<Expr *> Args,
                                 Type *RetTy) {
  CallExpr *C = M.create<CallExpr>(B, std::move(Args), RetTy);
  C->setSiteId(M.nextCallSiteId());
  return C;
}

CallExpr *IRBuilder::mallocCall(Expr *Size, Type *ResultPtrTy) {
  assert(ResultPtrTy->isPointer() && "malloc result must be a pointer");
  return callBuiltin(Builtin::MallocFn, {convert(Size, Ctx.getInt64())},
                     ResultPtrTy);
}

AssignStmt *IRBuilder::assign(Expr *LHS, Expr *RHS) {
  assert(LHS->isLValue() && "assignment target must be an l-value");
  if (LHS->getType()->isAggregate())
    assert(LHS->getType() == RHS->getType() && "aggregate copy type mismatch");
  else
    RHS = convert(RHS, LHS->getType());
  return M.create<AssignStmt>(LHS, RHS);
}

IfStmt *IRBuilder::ifStmt(Expr *Cond, Stmt *Then, Stmt *Else) {
  if (Then && !isa<BlockStmt>(Then))
    Then = block({Then});
  if (Else && !isa<BlockStmt>(Else))
    Else = block({Else});
  return M.create<IfStmt>(asCondition(Cond), Then, Else);
}

WhileStmt *IRBuilder::whileStmt(Expr *Cond, Stmt *Body) {
  if (!isa<BlockStmt>(Body))
    Body = block({Body});
  return M.create<WhileStmt>(asCondition(Cond), Body);
}

ForStmt *IRBuilder::forStmt(VarDecl *IV, Expr *Init, Expr *Limit, Expr *Step,
                            Stmt *Body) {
  assert(IV->getType()->isInt() && "induction variable must be integer");
  if (!isa<BlockStmt>(Body))
    Body = block({Body});
  return M.create<ForStmt>(IV, convert(Init, IV->getType()),
                           convert(Limit, IV->getType()),
                           convert(Step, IV->getType()), Body);
}
