//===- IRBuilder.h - Convenience construction of typed IR -------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helper for constructing well-typed IR. Centralizes C's usual arithmetic
/// conversions, pointer-arithmetic typing, implicit conversions, and the
/// load-insertion discipline, so the frontend, the transformation passes and
/// the tests all build consistent trees.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_IRBUILDER_H
#define GDSE_IR_IRBUILDER_H

#include "ir/IR.h"

namespace gdse {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M), Ctx(M.getTypes()) {}

  Module &getModule() { return M; }
  TypeContext &getTypes() { return Ctx; }

  //===--------------------------------------------------------------------===//
  // Literals and simple values
  //===--------------------------------------------------------------------===//

  IntLitExpr *intLit(int64_t V, Type *Ty = nullptr) {
    return M.create<IntLitExpr>(V, Ty ? Ty : Ctx.getInt32());
  }
  IntLitExpr *longLit(int64_t V) {
    return M.create<IntLitExpr>(V, Ctx.getInt64());
  }
  FloatLitExpr *floatLit(double V, Type *Ty = nullptr) {
    return M.create<FloatLitExpr>(V, Ty ? Ty : Ctx.getFloat64());
  }
  VarRefExpr *varRef(VarDecl *D) { return M.create<VarRefExpr>(D); }
  ThreadIdExpr *threadId() { return M.create<ThreadIdExpr>(Ctx.getInt32()); }
  NumThreadsExpr *numThreads() {
    return M.create<NumThreadsExpr>(Ctx.getInt32());
  }
  SizeofTypeExpr *sizeofType(Type *T) {
    return M.create<SizeofTypeExpr>(T, Ctx.getInt64());
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  /// Wraps an l-value in an explicit memory read.
  LoadExpr *load(Expr *LValue) {
    assert(LValue->isLValue() && "load of non-lvalue");
    return M.create<LoadExpr>(LValue);
  }
  /// Shorthand: load of a variable.
  LoadExpr *loadVar(VarDecl *D) { return load(varRef(D)); }

  /// base[idx]: \p Base must be a pointer r-value (decay arrays first).
  ArrayIndexExpr *index(Expr *Base, Expr *Idx);
  /// lvalue.field by index.
  FieldAccessExpr *field(Expr *Base, unsigned FieldIdx);
  /// lvalue.field by name; asserts the field exists.
  FieldAccessExpr *fieldNamed(Expr *Base, const std::string &Name);
  /// *ptr.
  DerefExpr *deref(Expr *Ptr);
  /// &lvalue.
  AddrOfExpr *addrOf(Expr *LValue);
  /// Array-to-pointer decay of an array l-value.
  DecayExpr *decay(Expr *ArrayLValue);

  //===--------------------------------------------------------------------===//
  // Arithmetic (applies usual C conversions, returns typed nodes)
  //===--------------------------------------------------------------------===//

  /// Implicit conversion of \p E to \p Ty (no-op if already that type).
  Expr *convert(Expr *E, Type *Ty);
  /// Explicit cast.
  CastExpr *castTo(Expr *E, Type *Ty) { return M.create<CastExpr>(E, Ty); }

  Expr *unary(UnaryOp Op, Expr *Sub);
  /// Builds a binary expression following C semantics: usual arithmetic
  /// conversions; ptr±int stays pointer; ptr-ptr yields long.
  Expr *binary(BinaryOp Op, Expr *LHS, Expr *RHS);

  Expr *add(Expr *L, Expr *R) { return binary(BinaryOp::Add, L, R); }
  Expr *sub(Expr *L, Expr *R) { return binary(BinaryOp::Sub, L, R); }
  Expr *mul(Expr *L, Expr *R) { return binary(BinaryOp::Mul, L, R); }
  Expr *div(Expr *L, Expr *R) { return binary(BinaryOp::Div, L, R); }
  Expr *lt(Expr *L, Expr *R) { return binary(BinaryOp::Lt, L, R); }

  CondExpr *cond(Expr *C, Expr *Then, Expr *Else);

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// Calls a user function; converts arguments to parameter types.
  CallExpr *call(Function *F, std::vector<Expr *> Args);
  /// Calls a builtin (caller provides already-correct argument types).
  CallExpr *callBuiltin(Builtin B, std::vector<Expr *> Args, Type *RetTy);
  /// malloc(size) with a fresh call-site id.
  CallExpr *mallocCall(Expr *Size, Type *ResultPtrTy);

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  AssignStmt *assign(Expr *LHS, Expr *RHS);
  ExprStmt *exprStmt(Expr *E) { return M.create<ExprStmt>(E); }
  BlockStmt *block(std::vector<Stmt *> Stmts) {
    return M.create<BlockStmt>(std::move(Stmts));
  }
  IfStmt *ifStmt(Expr *Cond, Stmt *Then, Stmt *Else = nullptr);
  WhileStmt *whileStmt(Expr *Cond, Stmt *Body);
  ForStmt *forStmt(VarDecl *IV, Expr *Init, Expr *Limit, Expr *Step,
                   Stmt *Body);
  ReturnStmt *ret(Expr *V = nullptr) { return M.create<ReturnStmt>(V); }

  /// Condition wrapper: converts to a scalar usable in control flow.
  Expr *asCondition(Expr *E);

  /// True if \p Ty can be implicitly converted to \p To (scalar/pointer).
  static bool isImplicitlyConvertible(Type *From, Type *To);

  /// Result type of the usual arithmetic conversions over two scalar types.
  Type *commonArithType(Type *A, Type *B);

private:
  Module &M;
  TypeContext &Ctx;
};

} // namespace gdse

#endif // GDSE_IR_IRBUILDER_H
