//===- IRClone.cpp - Deep copies of IR trees -------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IRClone.h"

#include "support/Support.h"

using namespace gdse;

Expr *gdse::cloneExpr(Module &M, const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit: {
    const auto *I = cast<IntLitExpr>(E);
    return M.create<IntLitExpr>(I->getValue(), I->getType());
  }
  case Expr::Kind::FloatLit: {
    const auto *F = cast<FloatLitExpr>(E);
    return M.create<FloatLitExpr>(F->getValue(), F->getType());
  }
  case Expr::Kind::VarRef:
    return M.create<VarRefExpr>(cast<VarRefExpr>(E)->getDecl());
  case Expr::Kind::Load: {
    auto *NewL =
        M.create<LoadExpr>(cloneExpr(M, cast<LoadExpr>(E)->getLocation()));
    // Clones share the original's access id (and with it any per-access
    // transformation plan); renumber when distinct identities are needed.
    NewL->setAccessId(cast<LoadExpr>(E)->getAccessId());
    return NewL;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return M.create<UnaryExpr>(U->getOp(), cloneExpr(M, U->getSub()),
                               U->getType());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return M.create<BinaryExpr>(B->getOp(), cloneExpr(M, B->getLHS()),
                                cloneExpr(M, B->getRHS()), B->getType());
  }
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    return M.create<ArrayIndexExpr>(cloneExpr(M, A->getBase()),
                                    cloneExpr(M, A->getIndex()), A->getType());
  }
  case Expr::Kind::FieldAccess: {
    const auto *F = cast<FieldAccessExpr>(E);
    return M.create<FieldAccessExpr>(cloneExpr(M, F->getBase()),
                                     F->getFieldIndex(), F->getType());
  }
  case Expr::Kind::Deref: {
    const auto *D = cast<DerefExpr>(E);
    return M.create<DerefExpr>(cloneExpr(M, D->getPtr()), D->getType());
  }
  case Expr::Kind::AddrOf: {
    const auto *A = cast<AddrOfExpr>(E);
    return M.create<AddrOfExpr>(cloneExpr(M, A->getLocation()), A->getType());
  }
  case Expr::Kind::Decay: {
    const auto *D = cast<DecayExpr>(E);
    return M.create<DecayExpr>(cloneExpr(M, D->getArrayLocation()),
                               D->getType());
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<Expr *> Args;
    Args.reserve(C->getNumArgs());
    for (Expr *A : C->getArgs())
      Args.push_back(cloneExpr(M, A));
    CallExpr *NewC =
        C->isBuiltin()
            ? M.create<CallExpr>(C->getBuiltin(), std::move(Args), C->getType())
            : M.create<CallExpr>(C->getCallee(), std::move(Args), C->getType());
    // A cloned call is a new allocation site.
    NewC->setSiteId(M.nextCallSiteId());
    return NewC;
  }
  case Expr::Kind::Cast:
    return M.create<CastExpr>(cloneExpr(M, cast<CastExpr>(E)->getSub()),
                              E->getType());
  case Expr::Kind::SizeofType: {
    const auto *S = cast<SizeofTypeExpr>(E);
    return M.create<SizeofTypeExpr>(S->getQueriedType(), S->getType());
  }
  case Expr::Kind::ThreadId:
    return M.create<ThreadIdExpr>(E->getType());
  case Expr::Kind::NumThreads:
    return M.create<NumThreadsExpr>(E->getType());
  case Expr::Kind::Cond: {
    const auto *C = cast<CondExpr>(E);
    return M.create<CondExpr>(cloneExpr(M, C->getCond()),
                              cloneExpr(M, C->getThen()),
                              cloneExpr(M, C->getElse()), C->getType());
  }
  }
  gdse_unreachable("unknown expr kind");
}

Stmt *gdse::cloneStmt(Module &M, const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    std::vector<Stmt *> Stmts;
    for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts())
      Stmts.push_back(cloneStmt(M, Sub));
    return M.create<BlockStmt>(std::move(Stmts));
  }
  case Stmt::Kind::ExprStmt:
    return M.create<ExprStmt>(cloneExpr(M, cast<ExprStmt>(S)->getExpr()));
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    auto *NewA = M.create<AssignStmt>(cloneExpr(M, A->getLHS()),
                                      cloneExpr(M, A->getRHS()));
    NewA->setAccessId(A->getAccessId());
    return NewA;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return M.create<IfStmt>(cloneExpr(M, I->getCond()),
                            cloneStmt(M, I->getThen()),
                            I->getElse() ? cloneStmt(M, I->getElse())
                                         : nullptr);
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return M.create<WhileStmt>(cloneExpr(M, W->getCond()),
                               cloneStmt(M, W->getBody()));
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    auto *NewF = M.create<ForStmt>(
        F->getInductionVar(), cloneExpr(M, F->getInit()),
        cloneExpr(M, F->getLimit()), cloneExpr(M, F->getStep()),
        cloneStmt(M, F->getBody()));
    NewF->setParallelKind(F->getParallelKind());
    NewF->setCandidate(F->isCandidate());
    return NewF;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    return M.create<ReturnStmt>(R->getValue() ? cloneExpr(M, R->getValue())
                                              : nullptr);
  }
  case Stmt::Kind::Break:
    return M.create<BreakStmt>();
  case Stmt::Kind::Continue:
    return M.create<ContinueStmt>();
  case Stmt::Kind::Ordered: {
    const auto *O = cast<OrderedStmt>(S);
    return M.create<OrderedStmt>(O->getRegionId(), cloneStmt(M, O->getBody()));
  }
  }
  gdse_unreachable("unknown stmt kind");
}
