//===- IRClone.h - Deep copies of IR trees ----------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep structural copies of expression and statement trees, allocated from
/// the same module arena. Variable references keep pointing at the original
/// declarations. Access ids are NOT copied (renumber after cloning).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_IRCLONE_H
#define GDSE_IR_IRCLONE_H

#include "ir/IR.h"

namespace gdse {

/// Deep-copies \p E into \p M's arena.
Expr *cloneExpr(Module &M, const Expr *E);

/// Deep-copies \p S into \p M's arena.
Stmt *cloneStmt(Module &M, const Stmt *S);

} // namespace gdse

#endif // GDSE_IR_IRCLONE_H
