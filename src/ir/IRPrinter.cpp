//===- IRPrinter.cpp - Textual dump of the IR ------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/Support.h"

#include <sstream>

using namespace gdse;

namespace {

const char *binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  gdse_unreachable("unknown binary op");
}

class PrinterImpl {
public:
  explicit PrinterImpl(const PrintOptions &Opts) : Opts(Opts) {}

  std::string expr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      return std::to_string(cast<IntLitExpr>(E)->getValue());
    case Expr::Kind::FloatLit: {
      std::string S = formatString("%g", cast<FloatLitExpr>(E)->getValue());
      if (S.find_first_of(".eE") == std::string::npos)
        S += ".0";
      return S;
    }
    case Expr::Kind::VarRef:
      return cast<VarRefExpr>(E)->getDecl()->getName();
    case Expr::Kind::Load: {
      const auto *L = cast<LoadExpr>(E);
      std::string S = expr(L->getLocation());
      if (Opts.ShowAccessIds && L->getAccessId() != InvalidAccessId)
        S += formatString("/*L#%u*/", L->getAccessId());
      return S;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      const char *Op = U->getOp() == UnaryOp::Neg      ? "-"
                       : U->getOp() == UnaryOp::BitNot ? "~"
                                                       : "!";
      return formatString("%s(%s)", Op, expr(U->getSub()).c_str());
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return formatString("(%s %s %s)", expr(B->getLHS()).c_str(),
                          binaryOpSpelling(B->getOp()),
                          expr(B->getRHS()).c_str());
    }
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(E);
      return formatString("%s[%s]", expr(A->getBase()).c_str(),
                          expr(A->getIndex()).c_str());
    }
    case Expr::Kind::FieldAccess: {
      const auto *F = cast<FieldAccessExpr>(E);
      const auto *ST = cast<StructType>(F->getBase()->getType());
      return formatString("%s.%s", expr(F->getBase()).c_str(),
                          ST->getField(F->getFieldIndex()).Name.c_str());
    }
    case Expr::Kind::Deref:
      return formatString("*(%s)", expr(cast<DerefExpr>(E)->getPtr()).c_str());
    case Expr::Kind::AddrOf:
      return formatString(
          "&%s", expr(cast<AddrOfExpr>(E)->getLocation()).c_str());
    case Expr::Kind::Decay:
      return expr(cast<DecayExpr>(E)->getArrayLocation());
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      std::string S = C->isBuiltin() ? getBuiltinName(C->getBuiltin())
                                     : C->getCallee()->getName();
      S += "(";
      for (unsigned I = 0, N = C->getNumArgs(); I != N; ++I) {
        if (I)
          S += ", ";
        S += expr(C->getArg(I));
      }
      return S + ")";
    }
    case Expr::Kind::Cast:
      return formatString("(%s)(%s)", E->getType()->str().c_str(),
                          expr(cast<CastExpr>(E)->getSub()).c_str());
    case Expr::Kind::SizeofType:
      return formatString(
          "sizeof(%s)",
          cast<SizeofTypeExpr>(E)->getQueriedType()->str().c_str());
    case Expr::Kind::ThreadId:
      return "tid";
    case Expr::Kind::NumThreads:
      return "nthreads";
    case Expr::Kind::Cond: {
      const auto *C = cast<CondExpr>(E);
      return formatString("(%s ? %s : %s)", expr(C->getCond()).c_str(),
                          expr(C->getThen()).c_str(),
                          expr(C->getElse()).c_str());
    }
    }
    gdse_unreachable("unknown expr kind");
  }

  void stmt(const Stmt *S, unsigned Indent) {
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      line(Indent, "{");
      for (const Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        stmt(Sub, Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::ExprStmt:
      line(Indent, expr(cast<ExprStmt>(S)->getExpr()) + ";");
      return;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      std::string Tag;
      if (Opts.ShowAccessIds && A->getAccessId() != InvalidAccessId)
        Tag = formatString(" /*S#%u*/", A->getAccessId());
      line(Indent, expr(A->getLHS()) + " = " + expr(A->getRHS()) + ";" + Tag);
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      line(Indent, "if (" + expr(I->getCond()) + ")");
      stmt(I->getThen(), Indent);
      if (I->getElse()) {
        line(Indent, "else");
        stmt(I->getElse(), Indent);
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      std::string Tag;
      if (Opts.ShowLoopInfo && W->getLoopId())
        Tag = formatString(" /*loop %u*/", W->getLoopId());
      line(Indent, "while (" + expr(W->getCond()) + ")" + Tag);
      stmt(W->getBody(), Indent);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      std::string IV = F->getInductionVar()->getName();
      std::string Tag;
      if (Opts.ShowLoopInfo && F->getLoopId()) {
        const char *Kind = F->getParallelKind() == ParallelKind::DOALL
                               ? ", DOALL"
                           : F->getParallelKind() == ParallelKind::DOACROSS
                               ? ", DOACROSS"
                               : "";
        Tag = formatString(" /*loop %u%s*/", F->getLoopId(), Kind);
      }
      line(Indent,
           formatString("for (%s = %s; %s < %s; %s = %s + %s)%s", IV.c_str(),
                        expr(F->getInit()).c_str(), IV.c_str(),
                        expr(F->getLimit()).c_str(), IV.c_str(), IV.c_str(),
                        expr(F->getStep()).c_str(), Tag.c_str()));
      stmt(F->getBody(), Indent);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      line(Indent,
           R->getValue() ? "return " + expr(R->getValue()) + ";" : "return;");
      return;
    }
    case Stmt::Kind::Break:
      line(Indent, "break;");
      return;
    case Stmt::Kind::Continue:
      line(Indent, "continue;");
      return;
    case Stmt::Kind::Ordered: {
      const auto *O = cast<OrderedStmt>(S);
      line(Indent, formatString("ordered /*region %u*/", O->getRegionId()));
      stmt(O->getBody(), Indent);
      return;
    }
    }
    gdse_unreachable("unknown stmt kind");
  }

  void line(unsigned Indent, const std::string &Text) {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
    OS << Text << '\n';
  }

  std::ostringstream OS;
  const PrintOptions &Opts;
};

std::string declString(const VarDecl *D) {
  // Arrays print C-style: elem name[n].
  if (auto *AT = dyn_cast<ArrayType>(D->getType()))
    return formatString("%s %s[%llu]", AT->getElement()->str().c_str(),
                        D->getName().c_str(),
                        static_cast<unsigned long long>(AT->getNumElements()));
  return D->getType()->str() + " " + D->getName();
}

} // namespace

std::string gdse::printType(Type *T) { return T->str(); }

std::string gdse::printExpr(const Expr *E, const PrintOptions &Opts) {
  PrinterImpl P(Opts);
  return P.expr(E);
}

std::string gdse::printStmt(const Stmt *S, unsigned Indent,
                            const PrintOptions &Opts) {
  PrinterImpl P(Opts);
  P.stmt(S, Indent);
  return P.OS.str();
}

std::string gdse::printFunction(const Function *F, const PrintOptions &Opts) {
  PrinterImpl P(Opts);
  std::string Sig = F->getReturnType()->str() + " " + F->getName() + "(";
  for (unsigned I = 0, E = static_cast<unsigned>(F->getParams().size()); I != E;
       ++I) {
    if (I)
      Sig += ", ";
    Sig += declString(F->getParams()[I]);
  }
  Sig += ")";
  if (!F->isDefinition())
    return Sig + ";\n";
  P.line(0, Sig);
  P.line(0, "{");
  for (const VarDecl *L : F->getLocals())
    P.line(1, declString(L) + ";");
  for (const Stmt *S : F->getBody()->getStmts())
    P.stmt(S, 1);
  P.line(0, "}");
  return P.OS.str();
}

std::string gdse::printModule(Module &M, const PrintOptions &Opts) {
  std::ostringstream OS;
  for (StructType *ST : M.getTypes().getStructs()) {
    if (ST->isOpaque()) {
      OS << "struct " << ST->getName() << ";\n";
      continue;
    }
    OS << "struct " << ST->getName() << " {\n";
    for (const StructField &F : ST->getFields())
      OS << "  " << F.Ty->str() << " " << F.Name << ";\n";
    OS << "};\n";
  }
  for (const VarDecl *G : M.getGlobals())
    OS << declString(G) << ";\n";
  for (const Function *F : M.getFunctions())
    OS << printFunction(F, Opts) << "\n";
  return OS.str();
}
