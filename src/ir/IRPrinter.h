//===- IRPrinter.h - Textual dump of the IR ---------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR in MiniC-like concrete syntax, for golden tests and for
/// inspecting what the expansion passes produced. Loads print transparently;
/// with \c ShowAccessIds each load/store is annotated with its AccessId so
/// dependence-graph tests can reference accesses stably.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_IRPRINTER_H
#define GDSE_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace gdse {

struct PrintOptions {
  /// Annotate loads/stores with "/*#id*/".
  bool ShowAccessIds = false;
  /// Annotate loops with "/*loop id, kind*/".
  bool ShowLoopInfo = false;
};

std::string printType(Type *T);
std::string printExpr(const Expr *E, const PrintOptions &Opts = {});
std::string printStmt(const Stmt *S, unsigned Indent = 0,
                      const PrintOptions &Opts = {});
std::string printFunction(const Function *F, const PrintOptions &Opts = {});
std::string printModule(Module &M, const PrintOptions &Opts = {});

} // namespace gdse

#endif // GDSE_IR_IRPRINTER_H
