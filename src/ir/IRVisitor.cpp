//===- IRVisitor.cpp - Generic IR traversal and rewriting ------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/IRVisitor.h"

#include "support/Support.h"

using namespace gdse;

void gdse::forEachChildExpr(Expr *E, const std::function<void(Expr *)> &Fn) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::SizeofType:
  case Expr::Kind::ThreadId:
  case Expr::Kind::NumThreads:
    return;
  case Expr::Kind::Load:
    Fn(cast<LoadExpr>(E)->getLocation());
    return;
  case Expr::Kind::Unary:
    Fn(cast<UnaryExpr>(E)->getSub());
    return;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Fn(B->getLHS());
    Fn(B->getRHS());
    return;
  }
  case Expr::Kind::ArrayIndex: {
    auto *A = cast<ArrayIndexExpr>(E);
    Fn(A->getBase());
    Fn(A->getIndex());
    return;
  }
  case Expr::Kind::FieldAccess:
    Fn(cast<FieldAccessExpr>(E)->getBase());
    return;
  case Expr::Kind::Deref:
    Fn(cast<DerefExpr>(E)->getPtr());
    return;
  case Expr::Kind::AddrOf:
    Fn(cast<AddrOfExpr>(E)->getLocation());
    return;
  case Expr::Kind::Decay:
    Fn(cast<DecayExpr>(E)->getArrayLocation());
    return;
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    for (Expr *Arg : C->getArgs())
      Fn(Arg);
    return;
  }
  case Expr::Kind::Cast:
    Fn(cast<CastExpr>(E)->getSub());
    return;
  case Expr::Kind::Cond: {
    auto *C = cast<CondExpr>(E);
    Fn(C->getCond());
    Fn(C->getThen());
    Fn(C->getElse());
    return;
  }
  }
  gdse_unreachable("unknown expr kind");
}

void gdse::forEachTopLevelExpr(Stmt *S, const std::function<void(Expr *)> &Fn) {
  switch (S->getKind()) {
  case Stmt::Kind::Block:
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Ordered:
    return;
  case Stmt::Kind::ExprStmt:
    Fn(cast<ExprStmt>(S)->getExpr());
    return;
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    Fn(A->getLHS());
    Fn(A->getRHS());
    return;
  }
  case Stmt::Kind::If:
    Fn(cast<IfStmt>(S)->getCond());
    return;
  case Stmt::Kind::While:
    Fn(cast<WhileStmt>(S)->getCond());
    return;
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    Fn(F->getInit());
    Fn(F->getLimit());
    Fn(F->getStep());
    return;
  }
  case Stmt::Kind::Return:
    if (Expr *V = cast<ReturnStmt>(S)->getValue())
      Fn(V);
    return;
  }
  gdse_unreachable("unknown stmt kind");
}

void gdse::forEachChildStmt(Stmt *S, const std::function<void(Stmt *)> &Fn) {
  switch (S->getKind()) {
  case Stmt::Kind::ExprStmt:
  case Stmt::Kind::Assign:
  case Stmt::Kind::Return:
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  case Stmt::Kind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->getStmts())
      Fn(Sub);
    return;
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    Fn(I->getThen());
    if (I->getElse())
      Fn(I->getElse());
    return;
  }
  case Stmt::Kind::While:
    Fn(cast<WhileStmt>(S)->getBody());
    return;
  case Stmt::Kind::For:
    Fn(cast<ForStmt>(S)->getBody());
    return;
  case Stmt::Kind::Ordered:
    Fn(cast<OrderedStmt>(S)->getBody());
    return;
  }
  gdse_unreachable("unknown stmt kind");
}

void gdse::walkExpr(Expr *E, const std::function<void(Expr *)> &Fn) {
  Fn(E);
  forEachChildExpr(E, [&](Expr *Child) { walkExpr(Child, Fn); });
}

void gdse::walkStmts(Stmt *S, const std::function<void(Stmt *)> &Fn) {
  Fn(S);
  forEachChildStmt(S, [&](Stmt *Child) { walkStmts(Child, Fn); });
}

void gdse::walkExprs(Stmt *S, const std::function<void(Expr *)> &Fn) {
  walkStmts(S, [&](Stmt *Sub) {
    forEachTopLevelExpr(Sub, [&](Expr *E) { walkExpr(E, Fn); });
  });
}

void gdse::walkExprs(Function *F, const std::function<void(Expr *)> &Fn) {
  if (F->getBody())
    walkExprs(F->getBody(), Fn);
}

//===----------------------------------------------------------------------===//
// IRRewriter
//===----------------------------------------------------------------------===//

Expr *IRRewriter::rewriteExpr(Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::SizeofType:
  case Expr::Kind::ThreadId:
  case Expr::Kind::NumThreads:
    break;
  case Expr::Kind::Load: {
    auto *L = cast<LoadExpr>(E);
    L->setLocation(rewriteExpr(L->getLocation()));
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    U->setSub(rewriteExpr(U->getSub()));
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    B->setLHS(rewriteExpr(B->getLHS()));
    B->setRHS(rewriteExpr(B->getRHS()));
    break;
  }
  case Expr::Kind::ArrayIndex: {
    auto *A = cast<ArrayIndexExpr>(E);
    A->setBase(rewriteExpr(A->getBase()));
    A->setIndex(rewriteExpr(A->getIndex()));
    break;
  }
  case Expr::Kind::FieldAccess: {
    auto *FA = cast<FieldAccessExpr>(E);
    FA->setBase(rewriteExpr(FA->getBase()));
    break;
  }
  case Expr::Kind::Deref: {
    auto *D = cast<DerefExpr>(E);
    D->setPtr(rewriteExpr(D->getPtr()));
    break;
  }
  case Expr::Kind::AddrOf: {
    auto *A = cast<AddrOfExpr>(E);
    A->setLocation(rewriteExpr(A->getLocation()));
    break;
  }
  case Expr::Kind::Decay: {
    auto *D = cast<DecayExpr>(E);
    D->setArrayLocation(rewriteExpr(D->getArrayLocation()));
    break;
  }
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    for (unsigned I = 0, N = C->getNumArgs(); I != N; ++I)
      C->setArg(I, rewriteExpr(C->getArg(I)));
    break;
  }
  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(E);
    C->setSub(rewriteExpr(C->getSub()));
    break;
  }
  case Expr::Kind::Cond: {
    auto *C = cast<CondExpr>(E);
    C->setCond(rewriteExpr(C->getCond()));
    C->setThen(rewriteExpr(C->getThen()));
    C->setElse(rewriteExpr(C->getElse()));
    break;
  }
  }
  Expr *Result = transformExpr(E);
  assert(Result && "transformExpr must not return null");
  return Result;
}

Stmt *IRRewriter::rewriteStmt(Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    break;
  case Stmt::Kind::Block: {
    auto *B = cast<BlockStmt>(S);
    std::vector<Stmt *> NewStmts;
    NewStmts.reserve(B->getStmts().size());
    for (Stmt *Sub : B->getStmts()) {
      Stmt *NewSub = rewriteStmt(Sub);
      // Collect statements queued by the transform hooks while rewriting
      // Sub; they go right after it (Table 3 "insert after" semantics).
      std::vector<Stmt *> After = std::move(Pending);
      Pending.clear();
      if (NewSub)
        NewStmts.push_back(NewSub);
      NewStmts.insert(NewStmts.end(), After.begin(), After.end());
    }
    B->getStmts() = std::move(NewStmts);
    break;
  }
  case Stmt::Kind::ExprStmt: {
    auto *ES = cast<ExprStmt>(S);
    ES->setExpr(rewriteExpr(ES->getExpr()));
    break;
  }
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    A->setLHS(rewriteExpr(A->getLHS()));
    A->setRHS(rewriteExpr(A->getRHS()));
    break;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    I->setCond(rewriteExpr(I->getCond()));
    I->setThen(rewriteStmt(I->getThen()));
    if (I->getElse())
      I->setElse(rewriteStmt(I->getElse()));
    break;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    W->setCond(rewriteExpr(W->getCond()));
    W->setBody(rewriteStmt(W->getBody()));
    break;
  }
  case Stmt::Kind::For: {
    auto *F = cast<ForStmt>(S);
    F->setInit(rewriteExpr(F->getInit()));
    F->setLimit(rewriteExpr(F->getLimit()));
    F->setStep(rewriteExpr(F->getStep()));
    F->setBody(rewriteStmt(F->getBody()));
    break;
  }
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->getValue())
      R->setValue(rewriteExpr(R->getValue()));
    break;
  }
  case Stmt::Kind::Ordered: {
    auto *O = cast<OrderedStmt>(S);
    O->setBody(rewriteStmt(O->getBody()));
    break;
  }
  }
  return transformStmt(S);
}

void IRRewriter::run(Function *F) {
  if (!F->getBody())
    return;
  Stmt *NewBody = rewriteStmt(F->getBody());
  assert(Pending.empty() && "emitAfter at function top level unsupported");
  assert(NewBody && isa<BlockStmt>(NewBody) && "body must stay a block");
  F->setBody(cast<BlockStmt>(NewBody));
}
