//===- IRVisitor.h - Generic IR traversal and rewriting ---------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traversal helpers used by every analysis and transform:
///  - \c forEachChildExpr / \c walkExprs / \c walkStmts for read-only walks;
///  - \c IRRewriter, a post-order rewriting framework that supports node
///    replacement and statement expansion (one statement rewritten into
///    several — how the span-computation statements of Table 3 are inserted
///    "immediately after each assignment to that pointer").
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_IRVISITOR_H
#define GDSE_IR_IRVISITOR_H

#include "ir/IR.h"

#include <functional>
#include <vector>

namespace gdse {

/// Invokes \p Fn on each direct sub-expression of \p E.
void forEachChildExpr(Expr *E, const std::function<void(Expr *)> &Fn);

/// Invokes \p Fn on each direct sub-expression of \p S (not recursing into
/// nested statements).
void forEachTopLevelExpr(Stmt *S, const std::function<void(Expr *)> &Fn);

/// Invokes \p Fn on each direct sub-statement of \p S.
void forEachChildStmt(Stmt *S, const std::function<void(Stmt *)> &Fn);

/// Pre-order walk over every expression reachable from \p E (including \p E).
void walkExpr(Expr *E, const std::function<void(Expr *)> &Fn);

/// Pre-order walk over every statement in the tree rooted at \p S.
void walkStmts(Stmt *S, const std::function<void(Stmt *)> &Fn);

/// Pre-order walk over every expression in the statement tree rooted at \p S.
void walkExprs(Stmt *S, const std::function<void(Expr *)> &Fn);

/// Pre-order walk over every expression in \p F (body statements only).
void walkExprs(Function *F, const std::function<void(Expr *)> &Fn);

/// Post-order rewriting framework.
///
/// For expressions: children are rewritten first (results stored back through
/// the node's setters), then \c transformExpr may replace the node itself.
/// For statements: nested statements/expressions are rewritten first, then
/// \c transformStmt runs, and finally \c emitAfter-queued statements are
/// spliced in right after the current statement inside the enclosing block.
class IRRewriter {
public:
  explicit IRRewriter(Module &M) : M(M) {}
  virtual ~IRRewriter() = default;

  /// Rewrites the body of \p F in place.
  void run(Function *F);
  /// Rewrites one statement tree; returns the (possibly replaced) root.
  Stmt *rewriteStmt(Stmt *S);
  /// Rewrites one expression tree; returns the (possibly replaced) root.
  Expr *rewriteExpr(Expr *E);

protected:
  /// Post-order hook: return a replacement for \p E (or \p E unchanged).
  virtual Expr *transformExpr(Expr *E) { return E; }
  /// Post-order hook: return a replacement for \p S (or \p S unchanged, or
  /// nullptr to delete the statement).
  virtual Stmt *transformStmt(Stmt *S) { return S; }

  /// Queues \p S for insertion immediately after the statement currently
  /// being transformed (valid only inside transformStmt / transformExpr).
  void emitAfter(Stmt *S) { Pending.push_back(S); }

  Module &M;

private:
  std::vector<Stmt *> Pending;
};

} // namespace gdse

#endif // GDSE_IR_IRVISITOR_H
