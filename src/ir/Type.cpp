//===- Type.cpp - GDSE IR type system --------------------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Support.h"

#include <mutex>

using namespace gdse;

int StructType::getFieldIndex(const std::string &FieldName) const {
  for (unsigned I = 0, E = getNumFields(); I != E; ++I)
    if (Fields[I].Name == FieldName)
      return static_cast<int>(I);
  return -1;
}

std::string Type::str() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Int: {
    const auto *IT = cast<IntType>(this);
    std::string S = IT->isSigned() ? "" : "u";
    switch (IT->getBits()) {
    case 8:
      return S + "char";
    case 16:
      return S + "short";
    case 32:
      return S + "int";
    case 64:
      return S + "long";
    default:
      return formatString("%sint%u", S.c_str(), IT->getBits());
    }
  }
  case Kind::Float:
    return cast<FloatType>(this)->getBits() == 32 ? "float" : "double";
  case Kind::Pointer:
    return cast<PointerType>(this)->getPointee()->str() + "*";
  case Kind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return formatString("%s[%llu]", AT->getElement()->str().c_str(),
                        static_cast<unsigned long long>(AT->getNumElements()));
  }
  case Kind::Struct:
    return "struct " + cast<StructType>(this)->getName();
  case Kind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->getReturnType()->str() + "(";
    for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I) {
      if (I)
        S += ", ";
      S += FT->getParam(I)->str();
    }
    return S + ")";
  }
  }
  gdse_unreachable("unknown type kind");
}

TypeContext::TypeContext() : VoidTy(new VoidType()) {}
TypeContext::~TypeContext() = default;

IntType *TypeContext::getIntType(unsigned Bits, bool Signed) {
  assert((Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64) &&
         "unsupported integer width");
  auto &Slot = IntTypes[{Bits, Signed}];
  if (!Slot)
    Slot.reset(new IntType(Bits, Signed));
  return Slot.get();
}

FloatType *TypeContext::getFloatType(unsigned Bits) {
  assert((Bits == 32 || Bits == 64) && "unsupported float width");
  auto &Slot = FloatTypes[Bits];
  if (!Slot)
    Slot.reset(new FloatType(Bits));
  return Slot.get();
}

PointerType *TypeContext::getPointerType(Type *Pointee) {
  assert(Pointee && "null pointee");
  auto &Slot = PointerTypes[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(Pointee));
  return Slot.get();
}

ArrayType *TypeContext::getArrayType(Type *Elem, uint64_t NumElems) {
  assert(Elem && !Elem->isVoid() && "invalid array element type");
  auto &Slot = ArrayTypes[{Elem, NumElems}];
  if (!Slot)
    Slot.reset(new ArrayType(Elem, NumElems));
  return Slot.get();
}

FunctionType *TypeContext::getFunctionType(Type *Ret,
                                           std::vector<Type *> Params) {
  for (auto &FT : FunctionTypes)
    if (FT->getReturnType() == Ret && FT->getParams() == Params)
      return FT.get();
  FunctionTypes.emplace_back(new FunctionType(Ret, std::move(Params)));
  return FunctionTypes.back().get();
}

StructType *TypeContext::createStruct(const std::string &Name) {
  std::string Unique = Name;
  unsigned Suffix = 0;
  while (StructsByName.count(Unique))
    Unique = formatString("%s.%u", Name.c_str(), ++Suffix);
  StructTypes.emplace_back(new StructType(Unique));
  StructType *ST = StructTypes.back().get();
  StructsByName[Unique] = ST;
  return ST;
}

StructType *TypeContext::getStructByName(const std::string &Name) const {
  auto It = StructsByName.find(Name);
  return It == StructsByName.end() ? nullptr : It->second;
}

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) / Align * Align;
}

const TypeLayout &TypeContext::getLayout(Type *T) {
  // Fast path: served from the memoization table under a shared lock.
  // References into the std::map stay valid across later insertions.
  {
    std::shared_lock<std::shared_mutex> Lock(LayoutMu);
    auto It = Layouts.find(T);
    if (It != Layouts.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(LayoutMu);
  return layoutLocked(T);
}

const TypeLayout &TypeContext::layoutLocked(Type *T) {
  auto It = Layouts.find(T);
  if (It != Layouts.end())
    return It->second;

  TypeLayout L;
  switch (T->getKind()) {
  case Type::Kind::Void:
  case Type::Kind::Function:
    gdse_unreachable("type has no storage layout");
  case Type::Kind::Int: {
    L.Size = cast<IntType>(T)->getBits() / 8;
    L.Align = L.Size;
    break;
  }
  case Type::Kind::Float: {
    L.Size = cast<FloatType>(T)->getBits() / 8;
    L.Align = L.Size;
    break;
  }
  case Type::Kind::Pointer: {
    L.Size = PointerSize;
    L.Align = PointerSize;
    break;
  }
  case Type::Kind::Array: {
    auto *AT = cast<ArrayType>(T);
    const TypeLayout &EL = layoutLocked(AT->getElement());
    L.Size = EL.Size * AT->getNumElements();
    L.Align = EL.Align;
    break;
  }
  case Type::Kind::Struct: {
    auto *ST = cast<StructType>(T);
    assert(!ST->isOpaque() && "layout of opaque struct");
    uint64_t Offset = 0, MaxAlign = 1;
    for (const StructField &F : ST->getFields()) {
      const TypeLayout &FL = layoutLocked(F.Ty);
      Offset = alignTo(Offset, FL.Align);
      L.FieldOffsets.push_back(Offset);
      Offset += FL.Size;
      MaxAlign = std::max(MaxAlign, FL.Align);
    }
    L.Align = MaxAlign;
    L.Size = alignTo(std::max<uint64_t>(Offset, 1), MaxAlign);
    break;
  }
  }
  return Layouts.emplace(T, std::move(L)).first->second;
}
