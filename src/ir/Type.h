//===- Type.h - GDSE IR type system -----------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC/IR type system: void, sized integers, floats, pointers, fixed
/// arrays, named structs, and function types. Types are immutable and uniqued
/// by a TypeContext, except named structs which are identified (each
/// \c createStruct yields a distinct type) and may have their body filled in
/// later — this is what the pointer-promotion pass of the paper (Figs. 5-6)
/// relies on to build recursive fat-pointer types.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_TYPE_H
#define GDSE_IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace gdse {

class TypeContext;

/// Root of the type hierarchy.
class Type {
public:
  enum class Kind : uint8_t {
    Void,
    Int,
    Float,
    Pointer,
    Array,
    Struct,
    Function,
  };

  Kind getKind() const { return K; }

  bool isVoid() const { return K == Kind::Void; }
  bool isInt() const { return K == Kind::Int; }
  bool isFloat() const { return K == Kind::Float; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }
  bool isStruct() const { return K == Kind::Struct; }
  bool isFunction() const { return K == Kind::Function; }
  /// True for integer and floating-point types.
  bool isScalar() const { return isInt() || isFloat(); }
  /// True for array and struct types.
  bool isAggregate() const { return isArray() || isStruct(); }

  /// Renders the type in MiniC syntax ("int*", "struct S", "double[8]").
  std::string str() const;

  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;

protected:
  explicit Type(Kind K) : K(K) {}
  ~Type() = default;

private:
  Kind K;
};

/// The void type (function returns only).
class VoidType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == Kind::Void; }

private:
  friend class TypeContext;
  VoidType() : Type(Kind::Void) {}
};

/// Fixed-width integer type. \c char is int8, \c short int16, \c int int32,
/// \c long int64; unsigned variants carry Signed=false.
class IntType : public Type {
public:
  unsigned getBits() const { return Bits; }
  bool isSigned() const { return Signed; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Int; }

private:
  friend class TypeContext;
  IntType(unsigned Bits, bool Signed)
      : Type(Kind::Int), Bits(Bits), Signed(Signed) {}
  unsigned Bits;
  bool Signed;
};

/// IEEE float (32) or double (64).
class FloatType : public Type {
public:
  unsigned getBits() const { return Bits; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Float; }

private:
  friend class TypeContext;
  explicit FloatType(unsigned Bits) : Type(Kind::Float), Bits(Bits) {}
  unsigned Bits;
};

/// Pointer to a pointee type. Pointee may be void (untyped malloc result).
class PointerType : public Type {
public:
  Type *getPointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Pointer; }

private:
  friend class TypeContext;
  explicit PointerType(Type *Pointee) : Type(Kind::Pointer), Pointee(Pointee) {}
  Type *Pointee;
};

/// Fixed-length array type.
class ArrayType : public Type {
public:
  Type *getElement() const { return Elem; }
  uint64_t getNumElements() const { return NumElems; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Array; }

private:
  friend class TypeContext;
  ArrayType(Type *Elem, uint64_t NumElems)
      : Type(Kind::Array), Elem(Elem), NumElems(NumElems) {}
  Type *Elem;
  uint64_t NumElems;
};

/// One member of a struct type.
struct StructField {
  std::string Name;
  Type *Ty;
};

/// Identified (named) struct type. Created opaque, body set once via
/// \c setFields. Distinct \c createStruct calls yield distinct types even
/// with equal names (the context mangles duplicates).
class StructType : public Type {
public:
  const std::string &getName() const { return Name; }
  bool isOpaque() const { return !HasBody; }
  const std::vector<StructField> &getFields() const {
    assert(HasBody && "querying fields of opaque struct");
    return Fields;
  }
  unsigned getNumFields() const {
    assert(HasBody && "querying fields of opaque struct");
    return static_cast<unsigned>(Fields.size());
  }
  const StructField &getField(unsigned Idx) const {
    assert(Idx < getNumFields() && "field index out of range");
    return Fields[Idx];
  }
  /// Returns the index of the field named \p Name, or -1 when absent.
  int getFieldIndex(const std::string &FieldName) const;

  /// Installs the struct body. May be called exactly once.
  void setFields(std::vector<StructField> Body) {
    assert(!HasBody && "struct body already set");
    Fields = std::move(Body);
    HasBody = true;
  }

  static bool classof(const Type *T) { return T->getKind() == Kind::Struct; }

private:
  friend class TypeContext;
  explicit StructType(std::string Name)
      : Type(Kind::Struct), Name(std::move(Name)) {}
  std::string Name;
  std::vector<StructField> Fields;
  bool HasBody = false;
};

/// Function type: return type plus parameter types.
class FunctionType : public Type {
public:
  Type *getReturnType() const { return Ret; }
  const std::vector<Type *> &getParams() const { return Params; }
  unsigned getNumParams() const { return static_cast<unsigned>(Params.size()); }
  Type *getParam(unsigned Idx) const {
    assert(Idx < Params.size() && "parameter index out of range");
    return Params[Idx];
  }

  static bool classof(const Type *T) { return T->getKind() == Kind::Function; }

private:
  friend class TypeContext;
  FunctionType(Type *Ret, std::vector<Type *> Params)
      : Type(Kind::Function), Ret(Ret), Params(std::move(Params)) {}
  Type *Ret;
  std::vector<Type *> Params;
};

/// Size, alignment, and field offsets of a type under the VM's data layout
/// (natural alignment, 8-byte pointers).
struct TypeLayout {
  uint64_t Size = 0;
  uint64_t Align = 1;
  /// Byte offset of each field; only populated for struct types.
  std::vector<uint64_t> FieldOffsets;
};

/// Owns and uniques all types of one translation context.
class TypeContext {
public:
  TypeContext();
  ~TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  VoidType *getVoidType() { return VoidTy.get(); }
  IntType *getIntType(unsigned Bits, bool Signed = true);
  /// Shorthand for the canonical C-ish types.
  IntType *getInt8() { return getIntType(8); }
  IntType *getInt16() { return getIntType(16); }
  IntType *getInt32() { return getIntType(32); }
  IntType *getInt64() { return getIntType(64); }
  FloatType *getFloatType(unsigned Bits);
  FloatType *getFloat32() { return getFloatType(32); }
  FloatType *getFloat64() { return getFloatType(64); }
  PointerType *getPointerType(Type *Pointee);
  ArrayType *getArrayType(Type *Elem, uint64_t NumElems);
  FunctionType *getFunctionType(Type *Ret, std::vector<Type *> Params);

  /// Creates a fresh identified struct. Duplicate names are suffixed to keep
  /// printed output unambiguous.
  StructType *createStruct(const std::string &Name);
  /// Finds a previously created struct by (possibly mangled) name.
  StructType *getStructByName(const std::string &Name) const;

  /// All identified structs in creation order (for printing).
  std::vector<StructType *> getStructs() const {
    std::vector<StructType *> Out;
    Out.reserve(StructTypes.size());
    for (const auto &S : StructTypes)
      Out.push_back(S.get());
    return Out;
  }

  /// Computes (and caches) size/alignment/field offsets of \p T.
  /// Opaque structs and void have no layout; asserts on them.
  ///
  /// Thread-safe: the memoization table is guarded by a shared_mutex so
  /// concurrent analyses (profiling runs on worker threads) may query
  /// layouts of one module's types without external locking. Type CREATION
  /// (get*/createStruct) is not synchronized — it belongs to the serial
  /// parse/transform phases that own the module exclusively.
  const TypeLayout &getLayout(Type *T);

  /// sizeof() as exposed to the program; pointer size is 8.
  uint64_t getTypeSize(Type *T) { return getLayout(T).Size; }

  static constexpr uint64_t PointerSize = 8;

private:
  std::unique_ptr<VoidType> VoidTy;
  std::map<std::pair<unsigned, bool>, std::unique_ptr<IntType>> IntTypes;
  std::map<unsigned, std::unique_ptr<FloatType>> FloatTypes;
  std::map<Type *, std::unique_ptr<PointerType>> PointerTypes;
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ArrayType>> ArrayTypes;
  std::vector<std::unique_ptr<FunctionType>> FunctionTypes;
  std::vector<std::unique_ptr<StructType>> StructTypes;
  std::map<std::string, StructType *> StructsByName;
  mutable std::shared_mutex LayoutMu;
  std::map<Type *, TypeLayout> Layouts;

  /// Recursive layout computation; requires LayoutMu held exclusively
  /// (shared_mutex is not recursive, so the public entry locks once).
  const TypeLayout &layoutLocked(Type *T);
};

} // namespace gdse

#endif // GDSE_IR_TYPE_H
