//===- Verifier.cpp - IR well-formedness checks ----------------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <cstdio>
#include <set>

using namespace gdse;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(Module &M) : M(M) {}

  std::vector<std::string> run() {
    std::set<std::string> GlobalNames;
    for (VarDecl *G : M.getGlobals()) {
      if (!G->isGlobal())
        error("global list contains non-global '" + G->getName() + "'");
      if (!GlobalNames.insert(G->getName()).second)
        error("duplicate global name '" + G->getName() + "'");
      checkStorableType(G);
    }
    for (Function *F : M.getFunctions())
      checkFunction(F);
    return std::move(Errors);
  }

private:
  void error(const std::string &Msg) {
    std::string Prefix = CurFn ? ("in " + CurFn->getName() + ": ") : "";
    Errors.push_back(Prefix + Msg);
  }

  void checkStorableType(VarDecl *D) {
    Type *T = D->getType();
    if (T->isVoid() || T->isFunction())
      error("variable '" + D->getName() + "' has non-storable type " +
            T->str());
    if (auto *ST = dyn_cast<StructType>(T); ST && ST->isOpaque())
      error("variable '" + D->getName() + "' has opaque struct type");
  }

  void checkFunction(Function *F) {
    CurFn = F;
    KnownDecls.clear();
    for (VarDecl *P : F->getParams()) {
      if (!P->isParam())
        error("param list contains non-param '" + P->getName() + "'");
      checkStorableType(P);
      KnownDecls.insert(P);
    }
    for (VarDecl *L : F->getLocals()) {
      if (!L->isLocal())
        error("local list contains non-local '" + L->getName() + "'");
      checkStorableType(L);
      if (!KnownDecls.insert(L).second)
        error("local '" + L->getName() + "' registered twice");
    }
    if (F->getParams().size() != F->getFunctionType()->getNumParams())
      error("param count disagrees with function type");
    else
      for (unsigned I = 0, E = F->getFunctionType()->getNumParams(); I != E;
           ++I)
        if (F->getParam(I)->getType() != F->getFunctionType()->getParam(I))
          error("param '" + F->getParam(I)->getName() +
                "' type disagrees with function type");
    for (VarDecl *G : M.getGlobals())
      KnownDecls.insert(G);
    if (F->getBody())
      checkStmt(F->getBody(), /*InLoop=*/false);
    CurFn = nullptr;
  }

  void checkBody(Stmt *S, const char *What) {
    if (!isa<BlockStmt>(S))
      error(std::string(What) + " body must be a block");
  }

  void checkStmt(Stmt *S, bool InLoop) {
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        checkStmt(Sub, InLoop);
      return;
    case Stmt::Kind::ExprStmt:
      checkExpr(cast<ExprStmt>(S)->getExpr());
      return;
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(S);
      checkExpr(A->getLHS());
      checkExpr(A->getRHS());
      if (!A->getLHS()->isLValue())
        error("assignment target is not an l-value: " +
              printExpr(A->getLHS()));
      if (A->getLHS()->getType()->isAggregate()) {
        if (A->getLHS()->getType() != A->getRHS()->getType())
          error("aggregate assignment type mismatch: " +
                printStmt(A));
      } else if (A->getLHS()->getType() != A->getRHS()->getType()) {
        error("assignment type mismatch (" + A->getLHS()->getType()->str() +
              " vs " + A->getRHS()->getType()->str() + "): " + printStmt(A));
      }
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      checkExpr(I->getCond());
      checkCondType(I->getCond());
      checkBody(I->getThen(), "if");
      checkStmt(I->getThen(), InLoop);
      if (I->getElse()) {
        checkBody(I->getElse(), "else");
        checkStmt(I->getElse(), InLoop);
      }
      return;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      checkExpr(W->getCond());
      checkCondType(W->getCond());
      checkBody(W->getBody(), "while");
      checkStmt(W->getBody(), /*InLoop=*/true);
      return;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(S);
      VarDecl *IV = F->getInductionVar();
      if (!KnownDecls.count(IV))
        error("for induction variable '" + IV->getName() +
              "' not registered in function");
      if (!IV->getType()->isInt())
        error("for induction variable must be integer");
      checkExpr(F->getInit());
      checkExpr(F->getLimit());
      checkExpr(F->getStep());
      if (F->getInit()->getType() != IV->getType() ||
          F->getLimit()->getType() != IV->getType() ||
          F->getStep()->getType() != IV->getType())
        error("for bounds must match induction variable type");
      checkBody(F->getBody(), "for");
      checkStmt(F->getBody(), /*InLoop=*/true);
      return;
    }
    case Stmt::Kind::Return: {
      auto *R = cast<ReturnStmt>(S);
      Type *RetTy = CurFn->getReturnType();
      if (R->getValue()) {
        checkExpr(R->getValue());
        if (RetTy->isVoid())
          error("return with value in void function");
        else if (R->getValue()->getType() != RetTy)
          error("return type mismatch");
      } else if (!RetTy->isVoid()) {
        error("return without value in non-void function");
      }
      return;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      if (!InLoop)
        error("break/continue outside of a loop");
      return;
    case Stmt::Kind::Ordered:
      checkBody(cast<OrderedStmt>(S)->getBody(), "ordered");
      checkStmt(cast<OrderedStmt>(S)->getBody(), InLoop);
      return;
    }
    gdse_unreachable("unknown stmt kind");
  }

  void checkCondType(Expr *E) {
    if (!E->getType()->isInt())
      error("condition must have integer type: " + printExpr(E));
  }

  void checkExpr(Expr *E) {
    forEachChildExpr(E, [&](Expr *Child) { checkExpr(Child); });
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      if (!E->getType()->isInt())
        error("integer literal with non-integer type");
      return;
    case Expr::Kind::FloatLit:
      if (!E->getType()->isFloat())
        error("float literal with non-float type");
      return;
    case Expr::Kind::VarRef: {
      auto *V = cast<VarRefExpr>(E);
      if (!KnownDecls.count(V->getDecl()))
        error("reference to unregistered variable '" +
              V->getDecl()->getName() + "'");
      if (V->getType() != V->getDecl()->getType())
        error("VarRef type out of sync with decl '" +
              V->getDecl()->getName() + "'");
      return;
    }
    case Expr::Kind::Load: {
      auto *L = cast<LoadExpr>(E);
      if (!L->getLocation()->isLValue())
        error("load of non-lvalue: " + printExpr(E));
      if (L->getType() != L->getLocation()->getType())
        error("load type out of sync: " + printExpr(E));
      if (L->getType()->isArray())
        error("load of whole array (decay expected): " + printExpr(E));
      return;
    }
    case Expr::Kind::Unary: {
      auto *U = cast<UnaryExpr>(E);
      if (U->getOp() == UnaryOp::LogicalNot) {
        if (!E->getType()->isInt())
          error("! must yield int");
      } else if (U->getType() != U->getSub()->getType()) {
        error("unary type mismatch: " + printExpr(E));
      }
      return;
    }
    case Expr::Kind::Binary:
      checkBinary(cast<BinaryExpr>(E));
      return;
    case Expr::Kind::ArrayIndex: {
      auto *A = cast<ArrayIndexExpr>(E);
      auto *PT = dyn_cast<PointerType>(A->getBase()->getType());
      if (!PT)
        error("index base is not a pointer: " + printExpr(E));
      else if (A->getType() != PT->getPointee())
        error("index result type mismatch: " + printExpr(E));
      if (!A->getIndex()->getType()->isInt())
        error("index is not an integer: " + printExpr(E));
      return;
    }
    case Expr::Kind::FieldAccess: {
      auto *F = cast<FieldAccessExpr>(E);
      if (!F->getBase()->isLValue())
        error("field base is not an l-value: " + printExpr(E));
      auto *ST = dyn_cast<StructType>(F->getBase()->getType());
      if (!ST || ST->isOpaque())
        error("field base is not a complete struct: " + printExpr(E));
      else if (F->getFieldIndex() >= ST->getNumFields())
        error("field index out of range: " + printExpr(E));
      else if (F->getType() != ST->getField(F->getFieldIndex()).Ty)
        error("field type mismatch: " + printExpr(E));
      return;
    }
    case Expr::Kind::Deref: {
      auto *D = cast<DerefExpr>(E);
      auto *PT = dyn_cast<PointerType>(D->getPtr()->getType());
      if (!PT)
        error("deref of non-pointer: " + printExpr(E));
      else if (D->getType() != PT->getPointee())
        error("deref result type mismatch: " + printExpr(E));
      return;
    }
    case Expr::Kind::AddrOf: {
      auto *A = cast<AddrOfExpr>(E);
      if (!A->getLocation()->isLValue())
        error("addrof of non-lvalue: " + printExpr(E));
      auto *PT = dyn_cast<PointerType>(A->getType());
      if (!PT || PT->getPointee() != A->getLocation()->getType())
        error("addrof type mismatch: " + printExpr(E));
      return;
    }
    case Expr::Kind::Decay: {
      auto *D = cast<DecayExpr>(E);
      if (!D->getArrayLocation()->isLValue() ||
          !D->getArrayLocation()->getType()->isArray())
        error("decay of non-array-lvalue: " + printExpr(E));
      auto *PT = dyn_cast<PointerType>(D->getType());
      auto *AT = dyn_cast<ArrayType>(D->getArrayLocation()->getType());
      if (!PT || !AT || PT->getPointee() != AT->getElement())
        error("decay type mismatch: " + printExpr(E));
      return;
    }
    case Expr::Kind::Call:
      checkCall(cast<CallExpr>(E));
      return;
    case Expr::Kind::Cast: {
      Type *To = E->getType();
      Type *From = cast<CastExpr>(E)->getSub()->getType();
      bool FromOk = From->isScalar() || From->isPointer();
      bool ToOk = To->isScalar() || To->isPointer();
      if (!FromOk || !ToOk)
        error("cast between non-scalar types: " + printExpr(E));
      if (From->isFloat() && To->isPointer())
        error("cast from float to pointer: " + printExpr(E));
      return;
    }
    case Expr::Kind::SizeofType:
      if (!E->getType()->isInt())
        error("sizeof must yield integer");
      return;
    case Expr::Kind::ThreadId:
    case Expr::Kind::NumThreads:
      if (!E->getType()->isInt())
        error("tid/nthreads must be integers");
      return;
    case Expr::Kind::Cond: {
      auto *C = cast<CondExpr>(E);
      checkCondType(C->getCond());
      if (C->getThen()->getType() != C->getType() ||
          C->getElse()->getType() != C->getType())
        error("?: operand types mismatch: " + printExpr(E));
      return;
    }
    }
    gdse_unreachable("unknown expr kind");
  }

  void checkBinary(BinaryExpr *B) {
    Type *LT = B->getLHS()->getType();
    Type *RT = B->getRHS()->getType();
    switch (B->getOp()) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      if (!B->getType()->isInt())
        error("comparison/logical result must be int: " + printExpr(B));
      return;
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (!LT->isInt() || !RT->isInt() || B->getType() != LT)
        error("shift operand/result type mismatch: " + printExpr(B));
      return;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      if (LT->isPointer() && RT->isPointer()) {
        if (B->getOp() != BinaryOp::Sub || !B->getType()->isInt())
          error("invalid pointer pair arithmetic: " + printExpr(B));
        return;
      }
      if (LT->isPointer()) {
        if (!RT->isInt() || B->getType() != LT)
          error("invalid pointer arithmetic: " + printExpr(B));
        return;
      }
      [[fallthrough]];
    default:
      if (LT != RT || B->getType() != LT)
        error("binary operand/result type mismatch: " + printExpr(B));
      if (!LT->isScalar())
        error("arithmetic on non-scalar: " + printExpr(B));
      return;
    }
  }

  void checkCall(CallExpr *C) {
    if (C->isBuiltin()) {
      checkBuiltinCall(C);
      return;
    }
    Function *F = C->getCallee();
    if (!F) {
      error("call with neither callee nor builtin");
      return;
    }
    FunctionType *FT = F->getFunctionType();
    if (C->getNumArgs() != FT->getNumParams()) {
      error("argument count mismatch calling " + F->getName());
      return;
    }
    for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I)
      if (C->getArg(I)->getType() != FT->getParam(I))
        error(formatString("argument %u type mismatch calling %s", I,
                           F->getName().c_str()));
    if (C->getType() != FT->getReturnType())
      error("call result type mismatch calling " + F->getName());
  }

  void checkBuiltinCall(CallExpr *C) {
    auto wantArgs = [&](unsigned N) {
      if (C->getNumArgs() != N)
        error(formatString("%s expects %u arguments",
                           getBuiltinName(C->getBuiltin()), N));
      return C->getNumArgs() == N;
    };
    switch (C->getBuiltin()) {
    case Builtin::MallocFn:
      if (wantArgs(1) && !C->getArg(0)->getType()->isInt())
        error("malloc size must be integer");
      if (!C->getType()->isPointer())
        error("malloc must yield a pointer");
      return;
    case Builtin::CallocFn:
      if (wantArgs(2) && (!C->getArg(0)->getType()->isInt() ||
                          !C->getArg(1)->getType()->isInt()))
        error("calloc arguments must be integers");
      if (!C->getType()->isPointer())
        error("calloc must yield a pointer");
      return;
    case Builtin::ReallocFn:
      if (wantArgs(2) && (!C->getArg(0)->getType()->isPointer() ||
                          !C->getArg(1)->getType()->isInt()))
        error("realloc arguments must be (pointer, integer)");
      if (!C->getType()->isPointer())
        error("realloc must yield a pointer");
      return;
    case Builtin::FreeFn:
      if (wantArgs(1) && !C->getArg(0)->getType()->isPointer())
        error("free argument must be a pointer");
      return;
    case Builtin::MemcpyFn:
    case Builtin::MemsetFn:
      if (wantArgs(3)) {
        if (!C->getArg(0)->getType()->isPointer())
          error("memcpy/memset dest must be a pointer");
        if (C->getBuiltin() == Builtin::MemcpyFn &&
            !C->getArg(1)->getType()->isPointer())
          error("memcpy src must be a pointer");
        if (C->getBuiltin() == Builtin::MemsetFn &&
            !C->getArg(1)->getType()->isInt())
          error("memset value must be an integer");
        if (!C->getArg(2)->getType()->isInt())
          error("memcpy/memset size must be an integer");
      }
      return;
    case Builtin::PrintInt:
      if (wantArgs(1) && !C->getArg(0)->getType()->isInt())
        error("print_int argument must be integer");
      return;
    case Builtin::PrintFloat:
      if (wantArgs(1) && !C->getArg(0)->getType()->isFloat())
        error("print_float argument must be float");
      return;
    case Builtin::AbsFn:
      if (wantArgs(1) && !C->getArg(0)->getType()->isInt())
        error("abs argument must be integer");
      return;
    case Builtin::FabsFn:
    case Builtin::SqrtFn:
      if (wantArgs(1) && !C->getArg(0)->getType()->isFloat())
        error("fabs/sqrt argument must be float");
      return;
    case Builtin::ExitFn:
      if (wantArgs(1) && !C->getArg(0)->getType()->isInt())
        error("exit argument must be integer");
      return;
    case Builtin::RtPrivPtr:
      if (wantArgs(2) && (!C->getArg(0)->getType()->isPointer() ||
                          !C->getArg(1)->getType()->isInt()))
        error("rtpriv_ptr arguments must be (pointer, integer)");
      if (!C->getType()->isPointer())
        error("rtpriv_ptr must yield a pointer");
      return;
    case Builtin::None:
      error("call marked builtin=None");
      return;
    }
    gdse_unreachable("unknown builtin");
  }

  Module &M;
  Function *CurFn = nullptr;
  std::set<VarDecl *> KnownDecls;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> gdse::verifyModule(Module &M) {
  return VerifierImpl(M).run();
}

void gdse::verifyModuleOrDie(Module &M, const char *When) {
  std::vector<std::string> Errs = verifyModule(M);
  if (Errs.empty())
    return;
  std::fprintf(stderr, "IR verification failed %s:\n", When);
  for (const std::string &E : Errs)
    std::fprintf(stderr, "  %s\n", E.c_str());
  reportFatalError("module verification failed");
}
