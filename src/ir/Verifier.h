//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks run after the frontend and after every
/// transformation pass. Catching a malformed tree here (rather than in the
/// interpreter) is what makes the aggressive rewrites of the expansion
/// pipeline safe to iterate on.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_IR_VERIFIER_H
#define GDSE_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace gdse {

/// Checks \p M; returns the list of violations (empty when well-formed).
std::vector<std::string> verifyModule(Module &M);

/// Convenience: verifies and aborts with diagnostics on failure.
void verifyModuleOrDie(Module &M, const char *When);

} // namespace gdse

#endif // GDSE_IR_VERIFIER_H
