//===- Pipeline.cpp - End-to-end parallelization pipeline ------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "parallel/Pipeline.h"

#include "analysis/StaticDeps.h"
#include "ir/AccessInfo.h"
#include "rtpriv/RtPrivPass.h"

using namespace gdse;

std::vector<unsigned> gdse::findCandidateLoops(Module &M) {
  AccessNumbering Num = AccessNumbering::compute(M);
  std::vector<unsigned> Out;
  for (const LoopDesc &L : Num.loops())
    if (auto *F = dyn_cast<ForStmt>(L.LoopStmt))
      if (F->isCandidate())
        Out.push_back(L.Id);
  return Out;
}

PipelineResult gdse::transformLoop(Module &M, unsigned LoopId,
                                   const PipelineOptions &Opts) {
  PipelineResult R;
  R.LoopId = LoopId;

  // Make sure ids are assigned consistently before any graph source runs.
  AccessNumbering Num = AccessNumbering::compute(M);

  switch (Opts.Source) {
  case GraphSource::Profile: {
    ProfileResult Prof = profileLoop(M, LoopId, Opts.Entry);
    if (!Prof.Run.ok()) {
      R.Errors.push_back("profiling run failed: " + Prof.Run.TrapMessage);
      return R;
    }
    R.Graph = std::move(Prof.Graph);
    break;
  }
  case GraphSource::Static: {
    PointsTo PT = PointsTo::compute(M);
    R.Graph = buildStaticDepGraph(M, LoopId, PT, Num);
    break;
  }
  case GraphSource::External:
    if (!Opts.ExternalGraph) {
      R.Errors.push_back("GraphSource::External requires ExternalGraph");
      return R;
    }
    if (Opts.ExternalGraph->LoopId != LoopId) {
      R.Errors.push_back("external graph was produced for a different loop");
      return R;
    }
    R.Graph = *Opts.ExternalGraph;
    break;
  }

  AccessClasses Classes = AccessClasses::build(R.Graph);
  R.Breakdown = computeAccessBreakdown(R.Graph, Classes);
  R.PrivateAccesses = Classes.privateAccesses();

  std::set<AccessId> Honored;
  switch (Opts.Method) {
  case PrivatizationMethod::Expansion: {
    ExpansionResult ER = expandLoop(M, LoopId, R.Graph, Opts.Expansion);
    if (!ER.Ok) {
      R.Errors.insert(R.Errors.end(), ER.Errors.begin(), ER.Errors.end());
      return R;
    }
    R.Expansion = ER.Stats;
    Honored = ER.PrivateAccesses;
    break;
  }
  case PrivatizationMethod::Runtime: {
    RtPrivResult RR = applyRuntimePrivatization(M, R.PrivateAccesses);
    if (!RR.Ok) {
      R.Errors.insert(R.Errors.end(), RR.Errors.begin(), RR.Errors.end());
      return R;
    }
    R.RtPrivWrapped = RR.AccessesWrapped;
    Honored = R.PrivateAccesses;
    break;
  }
  case PrivatizationMethod::None:
    break;
  }

  R.Plan = planParallelLoop(M, LoopId, R.Graph, Honored);
  R.Ok = true;
  return R;
}
