//===- Pipeline.h - End-to-end parallelization pipeline ---------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole tool of Figure 7 in one call: profile the candidate loop
/// (dependence graph), classify accesses, privatize — by compile-time
/// expansion or by the runtime-privatization baseline — and plan the
/// parallel execution (DOALL/DOACROSS + ordered regions).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_PARALLEL_PIPELINE_H
#define GDSE_PARALLEL_PIPELINE_H

#include "expand/Expansion.h"
#include "parallel/Planner.h"
#include "profile/DepProfiler.h"

namespace gdse {

/// How to remove the private-class contention.
enum class PrivatizationMethod : uint8_t {
  Expansion, ///< the paper's compile-time general data structure expansion
  Runtime,   ///< the SpiceC-style runtime access-control baseline (§4.2.1)
  None,      ///< leave private classes alone (everything becomes residual)
};

/// Where the loop-level dependence graph comes from (§2: "from the
/// programmer, the compiler, or tools that perform data dependence
/// profiling").
enum class GraphSource : uint8_t {
  Profile,  ///< dependence profiling run (the paper's evaluation setup)
  Static,   ///< conservative compile-time analysis (the §4.1 foil)
  External, ///< caller-supplied, e.g. programmer-verified (GraphIO.h)
};

struct PipelineOptions {
  PrivatizationMethod Method = PrivatizationMethod::Expansion;
  ExpansionOptions Expansion;
  std::string Entry = "main";
  GraphSource Source = GraphSource::Profile;
  /// Required when Source == External: the verified graph for this loop.
  const LoopDepGraph *ExternalGraph = nullptr;
};

struct PipelineResult {
  bool Ok = false;
  std::vector<std::string> Errors;
  unsigned LoopId = 0;
  LoopDepGraph Graph;
  AccessBreakdown Breakdown;
  std::set<AccessId> PrivateAccesses;
  ExpansionStats Expansion;
  PlanResult Plan;
  unsigned RtPrivWrapped = 0;
};

/// Loop ids of the "@candidate" for-loops of \p M, in program order. Runs
/// AccessNumbering (assigning loop ids) as a side effect.
std::vector<unsigned> findCandidateLoops(Module &M);

/// Runs profile -> classify -> privatize -> plan for loop \p LoopId of
/// \p M, mutating the module.
PipelineResult transformLoop(Module &M, unsigned LoopId,
                             const PipelineOptions &Opts = PipelineOptions());

} // namespace gdse

#endif // GDSE_PARALLEL_PIPELINE_H
