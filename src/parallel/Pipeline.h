//===- Pipeline.h - Legacy include shim -------------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline orchestration moved to the driver layer: PipelineOptions /
/// PipelineResult / transformLoop live in driver/Pipeline.h and batch
/// compilation in driver/CompilationSession.h (link gdse_driver). This shim
/// keeps historical `#include "parallel/Pipeline.h"` lines working.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_PARALLEL_PIPELINE_H
#define GDSE_PARALLEL_PIPELINE_H

#include "driver/CompilationSession.h"
// The historical header also exposed the profiler (and, transitively, the
// VM) — keep that for source compatibility.
#include "profile/DepProfiler.h"

#endif // GDSE_PARALLEL_PIPELINE_H
