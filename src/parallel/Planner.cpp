//===- Planner.cpp - DOALL/DOACROSS planning and sync insertion ------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "parallel/Planner.h"

#include "ir/IR.h"
#include "ir/IRVisitor.h"
#include "support/Support.h"

#include <functional>
#include <optional>

using namespace gdse;

namespace {

/// Collects every access id appearing in the statement tree \p S.
void collectAccessIds(Stmt *S, std::set<AccessId> &Out) {
  walkStmts(S, [&](Stmt *Sub) {
    if (auto *A = dyn_cast<AssignStmt>(Sub))
      if (A->getAccessId() != InvalidAccessId)
        Out.insert(A->getAccessId());
  });
  walkExprs(S, [&](Expr *E) {
    if (auto *L = dyn_cast<LoadExpr>(E))
      if (L->getAccessId() != InvalidAccessId)
        Out.insert(L->getAccessId());
  });
}

ForStmt *findLoop(Module &M, unsigned LoopId) {
  ForStmt *Found = nullptr;
  for (Function *F : M.getFunctions()) {
    if (!F->getBody())
      continue;
    walkStmts(F->getBody(), [&](Stmt *S) {
      if (auto *FS = dyn_cast<ForStmt>(S))
        if (FS->getLoopId() == LoopId)
          Found = FS;
    });
  }
  return Found;
}

} // namespace

PlanResult gdse::planParallelLoop(Module &M, unsigned LoopId,
                                  const LoopDepGraph &G,
                                  const std::set<AccessId> &PrivateAccesses,
                                  DiagnosticEngine *DE) {
  PlanResult R;
  std::optional<DiagnosticScope> Scope;
  if (DE)
    Scope.emplace(*DE, "planner", LoopId);
  auto reject = [&](const std::string &Msg) {
    R.Notes.push_back(Msg);
    if (DE)
      DE->remark(Msg);
  };
  ForStmt *Loop = findLoop(M, LoopId);
  if (!Loop) {
    reject(formatString("loop %u not found", LoopId));
    return R;
  }
  if (G.HasUnmodeled) {
    reject("loop performs bulk memory operations the dependence "
           "graph cannot model");
    return R;
  }
  bool HasEscape = false;
  walkStmts(Loop->getBody(), [&](Stmt *S) {
    if (isa<BreakStmt>(S) || isa<ReturnStmt>(S))
      HasEscape = true;
    // A break inside a NESTED loop is fine; only breaks binding to the
    // candidate loop matter. Conservative refinement below.
  });
  if (HasEscape) {
    // Distinguish breaks of nested loops from breaks of the candidate: walk
    // without descending into nested loops for BreakStmt.
    std::function<bool(Stmt *)> escapes = [&](Stmt *S) -> bool {
      switch (S->getKind()) {
      case Stmt::Kind::Break:
      case Stmt::Kind::Return:
        return true;
      case Stmt::Kind::While:
      case Stmt::Kind::For: {
        // Breaks bind to the nested loop; returns still escape.
        bool Ret = false;
        walkStmts(S, [&](Stmt *Sub) {
          if (isa<ReturnStmt>(Sub))
            Ret = true;
        });
        return Ret;
      }
      default: {
        bool E = false;
        forEachChildStmt(S, [&](Stmt *Sub) { E = E || escapes(Sub); });
        return E;
      }
      }
    };
    if (escapes(Loop->getBody())) {
      reject("loop body may break out of or return from the candidate loop");
      return R;
    }
  }

  // Residual loop-carried dependences: carried edges not fully contained in
  // privatized classes.
  std::set<AccessId> Residual;
  for (const DepEdge &E : G.Edges) {
    if (!E.Carried)
      continue;
    if (PrivateAccesses.count(E.Src) && PrivateAccesses.count(E.Dst))
      continue;
    if (!PrivateAccesses.count(E.Src))
      Residual.insert(E.Src);
    if (!PrivateAccesses.count(E.Dst))
      Residual.insert(E.Dst);
  }

  if (Residual.empty()) {
    Loop->setParallelKind(ParallelKind::DOALL);
    R.Parallelized = true;
    R.Kind = ParallelKind::DOALL;
    return R;
  }

  // DOACROSS: wrap maximal runs of residual-dependence statements of the
  // body block in ordered regions.
  auto *Body = cast<BlockStmt>(Loop->getBody());
  std::vector<Stmt *> NewStmts;
  std::vector<Stmt *> Run;
  Module &Mod = M;
  unsigned NextRegion = 1;

  auto flushRun = [&]() {
    if (Run.empty())
      return;
    R.OrderedStatements += static_cast<unsigned>(Run.size());
    auto *RegionBody = Mod.create<BlockStmt>(Run);
    NewStmts.push_back(Mod.create<OrderedStmt>(NextRegion++, RegionBody));
    ++R.OrderedRegions;
    Run.clear();
  };

  for (Stmt *Child : Body->getStmts()) {
    std::set<AccessId> Ids;
    collectAccessIds(Child, Ids);
    bool NeedsSync = false;
    for (AccessId Id : Ids)
      if (Residual.count(Id)) {
        NeedsSync = true;
        break;
      }
    if (NeedsSync) {
      Run.push_back(Child);
    } else {
      flushRun();
      NewStmts.push_back(Child);
    }
  }
  flushRun();
  Body->getStmts() = std::move(NewStmts);

  Loop->setParallelKind(ParallelKind::DOACROSS);
  R.Parallelized = true;
  R.Kind = ParallelKind::DOACROSS;
  return R;
}
