//===- Planner.h - DOALL/DOACROSS planning and sync insertion ---*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides how the expanded loop runs in parallel (paper §4.3):
///  - if no loop-carried dependence survives outside the privatized classes,
///    the loop is DOALL (static chunk scheduling);
///  - otherwise it is DOACROSS (dynamic scheduling, chunk size one) and the
///    statements carrying the residual dependences are wrapped in ordered
///    regions — iteration i may enter a region only after iteration i-1 left
///    it. Placement is deliberately statement-coarse, mirroring the paper's
///    remark that its synchronization placement "still has room for
///    improvement" (the source of the bzip2/hmmer plateaus in Fig. 11).
///
/// Rejects loops the framework cannot parallelize: bodies containing
/// break/return, and graphs with unmodeled bulk accesses.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_PARALLEL_PLANNER_H
#define GDSE_PARALLEL_PLANNER_H

#include "analysis/DepGraph.h"
#include "support/Diagnostics.h"

#include <set>
#include <string>
#include <vector>

namespace gdse {

class Module;

struct PlanResult {
  bool Parallelized = false;
  ParallelKind Kind = ParallelKind::None;
  unsigned OrderedRegions = 0;
  /// Statements wrapped into ordered regions (coarse count).
  unsigned OrderedStatements = 0;
  std::vector<std::string> Notes;
};

/// Plans the loop \p LoopId of \p M using graph \p G and the private access
/// set honored by a prior expansion (empty when none ran). Mutates the loop:
/// sets its ParallelKind and wraps residual-dependence statements in
/// OrderedStmt regions. Rejections are recorded in PlanResult::Notes and,
/// when \p DE is given, additionally as remark diagnostics attributed to
/// pass "planner" and loop \p LoopId.
PlanResult planParallelLoop(Module &M, unsigned LoopId, const LoopDepGraph &G,
                            const std::set<AccessId> &PrivateAccesses,
                            DiagnosticEngine *DE = nullptr);

} // namespace gdse

#endif // GDSE_PARALLEL_PLANNER_H
