//===- DepProfiler.cpp - Shadow-memory dependence profiling ----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "profile/DepProfiler.h"

using namespace gdse;

DepProfiler::DepProfiler(unsigned TargetLoopId) : TargetLoopId(TargetLoopId) {
  Graph.LoopId = TargetLoopId;
  Shadow.reserve(1 << 16);
}

DepProfiler::~DepProfiler() = default;

void DepProfiler::onLoopEnter(unsigned LoopId) {
  if (LoopId != TargetLoopId)
    return;
  if (InsideDepth++ == 0) {
    ++CurInvocation;
    ++Graph.Invocations;
    CurIter = -1; // set by the first onLoopIter
  }
}

void DepProfiler::onLoopIter(unsigned LoopId, uint64_t Iter) {
  if (LoopId != TargetLoopId || InsideDepth != 1)
    return;
  CurIter = static_cast<int64_t>(Iter);
  ++Graph.Iterations;
}

void DepProfiler::onLoopExit(unsigned LoopId) {
  if (LoopId != TargetLoopId)
    return;
  if (InsideDepth > 0 && --InsideDepth == 0)
    CurIter = -1;
}

void DepProfiler::recordLoadByte(AccessId Id, uint64_t Addr) {
  ShadowCell &Cell = Shadow[Addr];
  bool InLoop = CurIter >= 0;

  if (InLoop) {
    bool WrittenThisInvocation = Cell.HasWrite &&
                                 Cell.WriteInvocation == CurInvocation &&
                                 Cell.WriteIter >= 0;
    if (WrittenThisInvocation) {
      if (Cell.WriteIter == CurIter) {
        // Covered by a write of the same iteration: loop-independent flow.
        Graph.addEdge(Cell.LastWrite, Id, DepKind::Flow, /*Carried=*/false);
      } else {
        // Definition 1: carried flow only when not covered this iteration.
        Graph.addEdge(Cell.LastWrite, Id, DepKind::Flow, /*Carried=*/true);
      }
    } else if (Id != InvalidAccessId) {
      // Value comes from outside the current loop invocation (Definition 2).
      Graph.UpwardsExposedLoads.insert(Id);
    }
    // Record the read for later anti-dependence edges.
    CellReads &R = Cell.Reads;
    for (unsigned I = 0; I != R.Count; ++I) {
      if (R.Ids[I] == Id) {
        R.Iters[I] = CurIter;
        R.Invocations[I] = CurInvocation;
        return;
      }
    }
    if (R.Count < CellReads::Capacity) {
      R.Ids[R.Count] = Id;
      R.Iters[R.Count] = CurIter;
      R.Invocations[R.Count] = CurInvocation;
      ++R.Count;
    }
    return;
  }

  // Read outside the loop: an in-loop store (of ANY invocation) whose value
  // is still visible here is downwards-exposed (Definition 3).
  if (Cell.HasWrite && Cell.WriteIter >= 0 &&
      Cell.LastWrite != InvalidAccessId)
    Graph.DownwardsExposedStores.insert(Cell.LastWrite);
}

void DepProfiler::recordStoreByte(AccessId Id, uint64_t Addr) {
  ShadowCell &Cell = Shadow[Addr];
  bool InLoop = CurIter >= 0;

  if (InLoop) {
    // Output dependence with the previous in-loop write of this invocation.
    if (Cell.HasWrite && Cell.WriteIter >= 0 &&
        Cell.WriteInvocation == CurInvocation)
      Graph.addEdge(Cell.LastWrite, Id, DepKind::Output,
                    /*Carried=*/Cell.WriteIter < CurIter);
    // Anti dependences with reads since the last write.
    for (unsigned I = 0; I != Cell.Reads.Count; ++I)
      if (Cell.Reads.Invocations[I] == CurInvocation &&
          Cell.Reads.Iters[I] >= 0)
        Graph.addEdge(Cell.Reads.Ids[I], Id, DepKind::Anti,
                      /*Carried=*/Cell.Reads.Iters[I] < CurIter);
    Cell.LastWrite = Id;
    Cell.WriteIter = CurIter;
    Cell.WriteInvocation = CurInvocation;
    Cell.HasWrite = true;
    Cell.Reads.Count = 0;
    return;
  }

  Cell.LastWrite = Id;
  Cell.WriteIter = -1;
  Cell.WriteInvocation = CurInvocation;
  Cell.HasWrite = true;
  Cell.Reads.Count = 0;
}

void DepProfiler::onLoad(AccessId Id, uint64_t Addr, uint64_t Size) {
  if (CurIter >= 0 && Id != InvalidAccessId)
    ++Graph.DynCount[Id];
  for (uint64_t K = 0; K != Size; ++K)
    recordLoadByte(Id, Addr + K);
}

void DepProfiler::onStore(AccessId Id, uint64_t Addr, uint64_t Size) {
  if (CurIter >= 0 && Id != InvalidAccessId)
    ++Graph.DynCount[Id];
  for (uint64_t K = 0; K != Size; ++K)
    recordStoreByte(Id, Addr + K);
}

void DepProfiler::onBulkAccess(bool IsWrite, uint64_t Addr, uint64_t Size,
                               Builtin B, uint32_t CallSiteId) {
  (void)CallSiteId;
  bool InLoop = CurIter >= 0;
  if (InLoop) {
    // calloc zero-fill defines fresh memory and cannot create dependences
    // with anything (the block is new). Other bulk accesses are not modeled
    // as graph vertices; flag the loop so the planner stays conservative.
    if (B != Builtin::CallocFn)
      Graph.HasUnmodeled = true;
  }
  if (IsWrite) {
    for (uint64_t K = 0; K != Size; ++K)
      recordStoreByte(InvalidAccessId, Addr + K);
  } else {
    for (uint64_t K = 0; K != Size; ++K)
      recordLoadByte(InvalidAccessId, Addr + K);
  }
}

void DepProfiler::wipeRange(uint64_t Addr, uint64_t Size) {
  // Cheap path: few shadowed bytes -> iterate the map instead of the range.
  if (Size > Shadow.size() * 2) {
    for (auto It = Shadow.begin(); It != Shadow.end();) {
      if (It->first >= Addr && It->first < Addr + Size)
        It = Shadow.erase(It);
      else
        ++It;
    }
    return;
  }
  for (uint64_t K = 0; K != Size; ++K)
    Shadow.erase(Addr + K);
}

void DepProfiler::onAlloc(const Allocation &A) { wipeRange(A.Base, A.Size); }

void DepProfiler::onFree(const Allocation &A) { wipeRange(A.Base, A.Size); }

LoopDepGraph DepProfiler::takeGraph() { return std::move(Graph); }

ProfileResult
gdse::profileLoop(Module &M, unsigned TargetLoopId, const std::string &Entry,
                  std::shared_ptr<const BytecodeModule> Precompiled) {
  InterpOptions Opts;
  Opts.NumThreads = 1;
  Opts.SimulateParallel = false;
  if (Precompiled) {
    Opts.Engine = ExecEngine::Bytecode;
    Opts.Precompiled = std::move(Precompiled);
  }
  DepProfiler Profiler(TargetLoopId);
  Interp I(M, Opts);
  I.setObserver(&Profiler);
  ProfileResult R;
  R.Run = I.run(Entry);
  R.Graph = Profiler.takeGraph();
  return R;
}
