//===- DepProfiler.h - Shadow-memory dependence profiling -------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the loop-level data dependence graph by executing the program
/// under the VM with byte-granular shadow memory — the stand-in for the
/// paper's off-line dependence profiling tools [38,39] (§2, §4.1).
///
/// For one target loop per run it classifies, per byte:
///  - flow dependences, split into loop-independent (read covered by a write
///    of the same iteration) and loop-carried (Definition 1's refinement:
///    a read is carried-dependent only when NOT covered by a prior write in
///    its own iteration);
///  - anti and output dependences, carried or independent;
///  - upwards-exposed loads (value produced outside the current loop
///    invocation, Definition 2);
///  - downwards-exposed stores (value consumed after the loop, Definition 3).
///
/// Freed or reallocated memory never induces false dependences: alloc/free
/// events wipe the affected shadow range, so address reuse by the allocator
/// (or by stack frames of repeated calls) starts from a clean slate.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_PROFILE_DEPPROFILER_H
#define GDSE_PROFILE_DEPPROFILER_H

#include "analysis/DepGraph.h"
#include "interp/Interp.h"

#include <memory>
#include <unordered_map>

namespace gdse {

/// Observer that accumulates the dependence graph for one loop id.
class DepProfiler : public InterpObserver {
public:
  explicit DepProfiler(unsigned TargetLoopId);
  ~DepProfiler() override;

  void onLoad(AccessId Id, uint64_t Addr, uint64_t Size) override;
  void onStore(AccessId Id, uint64_t Addr, uint64_t Size) override;
  void onBulkAccess(bool IsWrite, uint64_t Addr, uint64_t Size, Builtin B,
                    uint32_t CallSiteId) override;
  void onAlloc(const Allocation &A) override;
  void onFree(const Allocation &A) override;
  void onLoopEnter(unsigned LoopId) override;
  void onLoopIter(unsigned LoopId, uint64_t Iter) override;
  void onLoopExit(unsigned LoopId) override;

  /// The accumulated graph (valid after the instrumented run finishes).
  LoopDepGraph takeGraph();

private:
  struct CellReads {
    static constexpr unsigned Capacity = 4;
    AccessId Ids[Capacity];
    int64_t Iters[Capacity];
    uint32_t Invocations[Capacity];
    uint8_t Count = 0;
  };
  struct ShadowCell {
    AccessId LastWrite = InvalidAccessId;
    /// Iteration of the target loop at the last write; -1 = outside loop.
    int64_t WriteIter = -1;
    /// Target-loop invocation of the last write; 0 = before any invocation.
    uint32_t WriteInvocation = 0;
    bool HasWrite = false;
    CellReads Reads;
  };

  void recordLoadByte(AccessId Id, uint64_t Addr);
  void recordStoreByte(AccessId Id, uint64_t Addr);
  void wipeRange(uint64_t Addr, uint64_t Size);

  unsigned TargetLoopId;
  LoopDepGraph Graph;
  /// Current iteration of the target loop (-1 when not inside it).
  int64_t CurIter = -1;
  /// Invocation counter of the target loop (0 before the first entry).
  uint32_t CurInvocation = 0;
  /// Nesting depth inside the target loop (handles recursive re-entry).
  unsigned InsideDepth = 0;
  std::unordered_map<uint64_t, ShadowCell> Shadow;
};

/// Result of one profiling run.
struct ProfileResult {
  LoopDepGraph Graph;
  RunResult Run;
};

/// Executes \p Entry sequentially under a DepProfiler targeting
/// \p TargetLoopId and returns the graph plus the run result. When
/// \p Precompiled is given, the run uses the bytecode engine with that
/// pre-lowered module (the AnalysisManager's cached per-module analysis);
/// otherwise the reference tree-walker runs. Either engine produces the
/// identical event stream, so the graph does not depend on the choice.
ProfileResult
profileLoop(Module &M, unsigned TargetLoopId, const std::string &Entry = "main",
            std::shared_ptr<const BytecodeModule> Precompiled = nullptr);

} // namespace gdse

#endif // GDSE_PROFILE_DEPPROFILER_H
