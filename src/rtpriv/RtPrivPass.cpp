//===- RtPrivPass.cpp - SpiceC-style runtime privatization -----------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "rtpriv/RtPrivPass.h"

#include "ir/IRBuilder.h"
#include "ir/IRVisitor.h"
#include "ir/Verifier.h"

using namespace gdse;

namespace {

class RtPrivRewriter : public IRRewriter {
public:
  RtPrivRewriter(Module &M, const std::set<AccessId> &Private,
                 RtPrivResult &Result)
      : IRRewriter(M), B(M), Private(Private), Result(Result) {}

protected:
  Expr *transformExpr(Expr *E) override {
    auto *L = dyn_cast<LoadExpr>(E);
    if (!L || !Private.count(L->getAccessId()))
      return E;
    L->setLocation(wrap(L->getLocation()));
    ++Result.AccessesWrapped;
    return L;
  }

  Stmt *transformStmt(Stmt *S) override {
    auto *A = dyn_cast<AssignStmt>(S);
    if (!A || !Private.count(A->getAccessId()))
      return S;
    A->setLHS(wrap(A->getLHS()));
    ++Result.AccessesWrapped;
    return S;
  }

private:
  /// LV -> *(rtpriv_ptr(&LV, 0)).
  Expr *wrap(Expr *LV) {
    Expr *Addr = B.addrOf(LV);
    Expr *Translated = B.callBuiltin(
        Builtin::RtPrivPtr,
        {Addr, B.longLit(0)}, Addr->getType());
    return B.deref(Translated);
  }

  IRBuilder B;
  const std::set<AccessId> &Private;
  RtPrivResult &Result;
};

} // namespace

RtPrivResult gdse::applyRuntimePrivatization(Module &M,
                                             const std::set<AccessId> &Private,
                                             DiagnosticEngine *DE,
                                             unsigned LoopId) {
  RtPrivResult Result;
  RtPrivRewriter RW(M, Private, Result);
  for (Function *F : M.getFunctions())
    RW.run(F);
  std::vector<std::string> Errs = verifyModule(M);
  for (const std::string &E : Errs) {
    std::string Msg = "post-rtpriv verification: " + E;
    if (DE) {
      Diagnostic &D = DE->error(Msg);
      D.Pass = "rtpriv";
      D.LoopId = LoopId;
    }
    Result.Errors.push_back(std::move(Msg));
  }
  Result.Ok = Result.Errors.empty();
  return Result;
}
