//===- RtPrivPass.h - SpiceC-style runtime privatization --------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper compares against in §4.2.1: instead of compile-time
/// expansion, every thread-private access calls into a runtime access-control
/// library that locates (and on first touch populates) the current thread's
/// private copy of the containing structure. The library lives in the VM
/// (Builtin::RtPrivPtr): per-thread translation tables keyed by structure
/// base — the safe generalization of SpiceC's heap-prefix fast path that
/// accepts pointers into the middle of a structure — with copy-in on first
/// access and a commit charge at parallel-loop end.
///
/// The transformation is intentionally simple: a private l-value LV becomes
/// *(rtpriv_ptr(&LV, 0)). All cost is paid at run time, which is the point
/// of the comparison (Figures 10, 13, 14).
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_RTPRIV_RTPRIVPASS_H
#define GDSE_RTPRIV_RTPRIVPASS_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <set>
#include <string>
#include <vector>

namespace gdse {

struct RtPrivResult {
  bool Ok = false;
  std::vector<std::string> Errors;
  unsigned AccessesWrapped = 0;
};

/// Routes every access in \p Private through the runtime access-control
/// library. When \p DE is given, errors are additionally reported there as
/// structured diagnostics attributed to pass "rtpriv" and loop \p LoopId.
RtPrivResult applyRuntimePrivatization(Module &M,
                                       const std::set<AccessId> &Private,
                                       DiagnosticEngine *DE = nullptr,
                                       unsigned LoopId = 0);

} // namespace gdse

#endif // GDSE_RTPRIV_RTPRIVPASS_H
