//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal hand-rolled RTTI in the LLVM style. Classes opt in by providing a
/// kind tag and a static \c classof(const Base*) predicate; \c isa, \c cast
/// and \c dyn_cast then work without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_CASTING_H
#define GDSE_SUPPORT_CASTING_H

#include <cassert>

namespace gdse {

/// Returns true if \p Val is an instance of type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like \c isa but tolerates null pointers (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like \c dyn_cast but tolerates null pointers (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace gdse

#endif // GDSE_SUPPORT_CASTING_H
