//===- Diagnostics.cpp - Structured pipeline diagnostics -------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Support.h"

using namespace gdse;

const char *gdse::diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Remark:
    return "remark";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  gdse_unreachable("bad severity");
}

std::string Diagnostic::str() const {
  std::string Out = diagSeverityName(Severity);
  if (!Pass.empty())
    Out += "[" + Pass + "]";
  if (LoopId)
    Out += formatString(" loop %u", LoopId);
  if (Line)
    Out += formatString(" line %u", Line);
  Out += ": " + Message;
  return Out;
}

Diagnostic &DiagnosticEngine::report(DiagSeverity S, std::string Msg) {
  Diagnostic D;
  D.Severity = S;
  D.Message = std::move(Msg);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Scopes.find(std::this_thread::get_id());
  if (It != Scopes.end() && !It->second.empty()) {
    D.Pass = It->second.back().Pass;
    D.LoopId = It->second.back().LoopId;
  }
  if (S == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
  return Diags.back();
}

Diagnostic &DiagnosticEngine::report(Diagnostic D) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (D.Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
  return Diags.back();
}

void DiagnosticEngine::pushScope(std::string Pass, unsigned LoopId) {
  std::lock_guard<std::mutex> Lock(Mu);
  Scopes[std::this_thread::get_id()].push_back({std::move(Pass), LoopId});
}

void DiagnosticEngine::popScope() {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Scopes.find(std::this_thread::get_id());
  It->second.pop_back();
  if (It->second.empty())
    Scopes.erase(It);
}

std::vector<std::string> DiagnosticEngine::errorStrings(size_t Since) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (size_t I = Since; I < Diags.size(); ++I)
    if (Diags[I].isError())
      Out.push_back(Diags[I].Message);
  return Out;
}

std::vector<Diagnostic> DiagnosticEngine::diagnosticsSince(size_t Since) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return std::vector<Diagnostic>(Diags.begin() + Since, Diags.end());
}
