//===- Diagnostics.h - Structured pipeline diagnostics ----------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic model shared by every pipeline layer. A
/// Diagnostic carries a severity, the name of the pass or component that
/// emitted it, the loop it concerns (0 = module-level), an optional source
/// line, and the message. The DiagnosticEngine accumulates them for one
/// compilation session; legacy `std::vector<std::string>` error lists are
/// derived views (see errorStrings()).
///
/// Deeply nested code does not thread (pass, loop) attribution by hand:
/// DiagnosticScope pushes a context onto the engine, and report() fills
/// unattributed fields from the innermost scope.
///
/// The engine is internally synchronized so concurrent analysis queries on
/// a shared session may report from several worker threads: the diagnostic
/// list is appended under a mutex (std::deque keeps returned references
/// stable), and scope stacks are PER THREAD, so one worker's attribution
/// context never leaks into another worker's diagnostics. Deterministic
/// ORDERING across workers is the batch driver's job: each worker buffers
/// into its own engine and the buffers are flushed in unit order at join.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_DIAGNOSTICS_H
#define GDSE_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gdse {

enum class DiagSeverity : uint8_t {
  Note,    ///< attached detail for a preceding diagnostic
  Remark,  ///< normal-operation report (e.g. "planner rejected loop")
  Warning, ///< suspicious but compilation continues
  Error,   ///< the current pipeline stage failed
};

const char *diagSeverityName(DiagSeverity S);

/// One structured diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  /// Pass or component that emitted it ("frontend", "profile", "expansion",
  /// "rtpriv", "planner", "session", ...).
  std::string Pass;
  /// Loop the diagnostic concerns; 0 when module-level.
  unsigned LoopId = 0;
  /// 1-based source line when known (frontend diagnostics), else 0.
  unsigned Line = 0;
  std::string Message;

  bool isError() const { return Severity == DiagSeverity::Error; }

  /// Renders like "error[expansion] loop 2: cannot expand parameter ...".
  std::string str() const;
};

/// Accumulates diagnostics for one module / compilation session.
class DiagnosticEngine {
public:
  Diagnostic &report(DiagSeverity S, std::string Msg);
  /// Appends a fully-formed diagnostic verbatim (no scope attribution) —
  /// used to replay cached failures on repeated analysis queries.
  Diagnostic &report(Diagnostic D);
  Diagnostic &error(std::string Msg) {
    return report(DiagSeverity::Error, std::move(Msg));
  }
  Diagnostic &warning(std::string Msg) {
    return report(DiagSeverity::Warning, std::move(Msg));
  }
  Diagnostic &remark(std::string Msg) {
    return report(DiagSeverity::Remark, std::move(Msg));
  }
  Diagnostic &note(std::string Msg) {
    return report(DiagSeverity::Note, std::move(Msg));
  }

  /// Appends \p Ds verbatim, preserving order — the flush half of the
  /// batch driver's buffered-sink protocol.
  void append(const std::vector<Diagnostic> &Ds) {
    for (const Diagnostic &D : Ds)
      report(D);
  }

  /// Snapshot of everything reported so far, in emission order.
  std::vector<Diagnostic> diagnostics() const { return diagnosticsSince(0); }
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Diags.size();
  }
  Diagnostic operator[](size_t I) const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Diags[I];
  }

  bool hasErrors() const { return errorCount() != 0; }
  unsigned errorCount() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return NumErrors;
  }

  /// Rendered messages of every error-severity diagnostic emitted at index
  /// >= \p Since — the bridge to legacy `Errors` vectors.
  std::vector<std::string> errorStrings(size_t Since = 0) const;
  /// Structured slice of everything emitted at index >= \p Since.
  std::vector<Diagnostic> diagnosticsSince(size_t Since) const;

  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Diags.clear();
    NumErrors = 0;
  }

private:
  friend class DiagnosticScope;
  struct Context {
    std::string Pass;
    unsigned LoopId = 0;
  };
  void pushScope(std::string Pass, unsigned LoopId);
  void popScope();

  mutable std::mutex Mu;
  /// deque, not vector: report() hands out a reference to the appended
  /// diagnostic, which must survive later appends from other threads.
  std::deque<Diagnostic> Diags;
  /// Scope stacks keyed by thread: attribution contexts are thread-local
  /// by construction (DiagnosticScope is a stack-bound RAII object).
  std::map<std::thread::id, std::vector<Context>> Scopes;
  unsigned NumErrors = 0;
};

/// RAII (pass, loop) attribution context. While alive, every diagnostic
/// reported to the engine inherits this pass name and loop id unless the
/// reporter overrides them explicitly.
class DiagnosticScope {
public:
  DiagnosticScope(DiagnosticEngine &DE, std::string Pass, unsigned LoopId = 0)
      : DE(DE) {
    DE.pushScope(std::move(Pass), LoopId);
  }
  ~DiagnosticScope() { DE.popScope(); }
  DiagnosticScope(const DiagnosticScope &) = delete;
  DiagnosticScope &operator=(const DiagnosticScope &) = delete;

private:
  DiagnosticEngine &DE;
};

} // namespace gdse

#endif // GDSE_SUPPORT_DIAGNOSTICS_H
