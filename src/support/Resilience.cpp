//===- Resilience.cpp - Budgets, fault injection, degradation --------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Resilience.h"

#include "support/Support.h"

#include <chrono>
#include <cstdlib>

using namespace gdse;

uint64_t gdse::monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *FaultInjector::pointName(Point P) {
  switch (P) {
  case Point::AllocFail:
    return "alloc-fail";
  case Point::WorkerStartFail:
    return "worker-start-fail";
  case Point::LaneDelay:
    return "lane-delay";
  case Point::GuardViolation:
    return "guard-violation";
  }
  return "?";
}

namespace {

/// Parses the decimal integer after a one-character separator at \p Pos.
bool parseCount(const std::string &S, size_t Pos, uint64_t &Out) {
  if (Pos >= S.size())
    return false;
  uint64_t V = 0;
  for (size_t I = Pos; I != S.size(); ++I) {
    if (S[I] < '0' || S[I] > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(S[I] - '0');
  }
  Out = V;
  return true;
}

int pointIndexOf(const std::string &Name) {
  for (unsigned I = 0; I != FaultInjector::NumPoints; ++I)
    if (Name == FaultInjector::pointName(
                    static_cast<FaultInjector::Point>(I)))
      return static_cast<int>(I);
  return -1;
}

} // namespace

std::shared_ptr<FaultInjector> FaultInjector::parse(const std::string &Spec,
                                                    std::string &Err) {
  auto FI = std::make_shared<FaultInjector>();
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Tok = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Tok.empty()) {
      if (Comma == Spec.size())
        break;
      continue;
    }
    size_t Eq = Tok.find('=');
    if (Eq != std::string::npos) {
      std::string Key = Tok.substr(0, Eq);
      uint64_t V = 0;
      if (!parseCount(Tok, Eq + 1, V)) {
        Err = "malformed value in '" + Tok + "'";
        return nullptr;
      }
      if (Key == "seed") {
        // splitmix64-style scramble so nearby seeds diverge immediately.
        FI->PrngState = (V + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
        if (!FI->PrngState)
          FI->PrngState = 0x9e3779b97f4a7c15ull;
      } else if (Key == "delay-ms") {
        FI->DelayMs = V;
      } else {
        Err = "unknown parameter '" + Key + "'";
        return nullptr;
      }
      continue;
    }
    size_t Sep = Tok.find_first_of("@~");
    if (Sep == std::string::npos) {
      Err = "rule '" + Tok + "' needs @N (one-shot) or ~N (probability)";
      return nullptr;
    }
    int PI = pointIndexOf(Tok.substr(0, Sep));
    if (PI < 0) {
      Err = "unknown injection point '" + Tok.substr(0, Sep) + "'";
      return nullptr;
    }
    uint64_t N = 0;
    if (!parseCount(Tok, Sep + 1, N) || N == 0) {
      Err = "malformed count in '" + Tok + "'";
      return nullptr;
    }
    if (Tok[Sep] == '@')
      FI->Rules[PI].Nth = N;
    else
      FI->Rules[PI].Prob = N;
  }
  return FI;
}

uint64_t FaultInjector::nextRand() {
  // xorshift64*: deterministic, cheap, good enough to scatter fires.
  uint64_t X = PrngState;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  PrngState = X;
  return X * 0x2545f4914f6cdd1dull;
}

bool FaultInjector::shouldFire(Point P) {
  unsigned I = static_cast<unsigned>(P);
  std::lock_guard<std::mutex> Lock(Mu);
  const Rule &R = Rules[I];
  if (!R.Nth && !R.Prob)
    return false;
  uint64_t Opp = ++Opportunities[I];
  bool Fire = false;
  if (R.Nth && Opp == R.Nth)
    Fire = true;
  if (!Fire && R.Prob)
    Fire = nextRand() % R.Prob == 0;
  if (Fire)
    ++Fires[I];
  return Fire;
}

bool FaultInjector::armed(Point P) const {
  unsigned I = static_cast<unsigned>(P);
  std::lock_guard<std::mutex> Lock(Mu);
  return Rules[I].Nth != 0 || Rules[I].Prob != 0;
}

uint64_t FaultInjector::fireCount(Point P) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Fires[static_cast<unsigned>(P)];
}

ResilienceOptions gdse::resilienceFromEnv() {
  ResilienceOptions R;
  long V = envInt("GDSE_DEADLINE_MS", 0);
  if (V > 0)
    R.Budget.DeadlineMs = static_cast<uint64_t>(V);
  V = envInt("GDSE_MEM_BUDGET", 0);
  if (V > 0)
    R.Budget.MaxBytes = static_cast<uint64_t>(V);
  V = envInt("GDSE_WATCHDOG_MS", 0);
  if (V > 0)
    R.WatchdogMs = static_cast<uint64_t>(V);
  R.Ladder = envFlag("GDSE_LADDER", true);
  const char *F = std::getenv("GDSE_FAULTS");
  if (F && *F) {
    std::string Err;
    std::shared_ptr<FaultInjector> FI = FaultInjector::parse(F, Err);
    if (FI)
      R.Faults = std::move(FI);
    else
      envWarnOnce("GDSE_FAULTS", "ignoring GDSE_FAULTS: " + Err);
  }
  return R;
}
