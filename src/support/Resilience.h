//===- Resilience.h - Budgets, fault injection, degradation -----*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution resilience substrate shared by every engine: the ExecBudget
/// (wall-clock deadline, cycle cap, byte budget) the VM polls at loop and
/// allocation boundaries, the seeded FaultInjector that lets tests and CI
/// drive every failure path deterministically, and the ResilienceOptions
/// bundle carried in InterpOptions. The enforcement points live in interp/
/// (ExecState, Memory, ThreadedLoop, ProgramContext); this header holds only
/// policy and parsing so the support layer stays free of interp types.
///
/// Failure handling follows one ladder: a threads-engine failure (worker
/// pool unavailable, DOACROSS watchdog fire) degrades the loop invocation to
/// the simulated serial-order path of the same run; a failure that ends a
/// run with an engine-level fault (RunResult::EngineFault) is retried by
/// runResilient() on the serial bytecode VM and finally the tree-walker.
/// Resource breaches (deadline, cycle cap, byte budget, allocation failure)
/// are not ladder rungs: re-running would breach again, so they convert into
/// one attributed trap with deterministic teardown.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_RESILIENCE_H
#define GDSE_SUPPORT_RESILIENCE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace gdse {

class DiagnosticEngine;

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock), the one
/// time base every deadline and watchdog comparison uses.
uint64_t monotonicNowNs();

/// Per-run execution budget; 0 disables each axis. Carried by value in
/// InterpOptions (via ResilienceOptions) and enforced inside the VM:
///  - DeadlineMs: wall-clock ceiling for one run(), polled at loop-iteration
///    and allocation boundaries on every engine (workers included) and
///    converted into an attributed trap on breach;
///  - MaxCycles: virtual work-cycle cap, folded with the legacy
///    InterpOptions::MaxCycles (the smaller non-zero value wins);
///  - MaxBytes: ceiling on the VM arena's live tracked bytes; an allocation
///    that would cross it fails and traps as out-of-memory.
struct ExecBudget {
  uint64_t DeadlineMs = 0;
  uint64_t MaxCycles = 0;
  uint64_t MaxBytes = 0;

  bool any() const { return DeadlineMs || MaxCycles || MaxBytes; }
};

/// Deterministic, seeded fault injection for exercising every resilience
/// path. A spec is a comma-separated list of rules plus parameters:
///
///   alloc-fail@3            fire at exactly the 3rd opportunity (one-shot)
///   lane-delay~16,seed=7    fire with probability 1/16 per opportunity,
///                           from a seeded PRNG (deterministic per seed)
///   delay-ms=50             stall duration for lane-delay fires
///
/// Points:
///   alloc-fail         a heap allocation (malloc/calloc/realloc/rtpriv
///                      shadow) reports failure -> out-of-memory trap path
///   worker-start-fail  the lazy loop ThreadPool construction fails as if
///                      std::thread had thrown -> serial degradation path
///   lane-delay         a DOACROSS ordered-region entry stalls for
///                      delay-ms -> watchdog / recovery path
///   guard-violation    a spurious dependence violation is reported at an
///                      iteration boundary of a guarded invocation -> guard
///                      check/fallback path
///
/// The injector is shared (std::shared_ptr) and internally synchronized:
/// worker threads consult it concurrently, and reruns of the degradation
/// ladder see the same counters, so a one-shot fault does not re-fire on the
/// retry — exactly the semantics the ladder needs.
class FaultInjector {
public:
  enum class Point : uint8_t {
    AllocFail,
    WorkerStartFail,
    LaneDelay,
    GuardViolation,
  };
  static constexpr unsigned NumPoints = 4;

  /// Spec-grammar name of \p P ("alloc-fail", ...).
  static const char *pointName(Point P);

  /// Parses \p Spec; returns null and fills \p Err on malformed input. An
  /// empty spec yields an injector with no armed rules (never fires).
  static std::shared_ptr<FaultInjector> parse(const std::string &Spec,
                                              std::string &Err);

  /// True when the next opportunity at \p P should fail. Thread-safe;
  /// advances the opportunity counter (and PRNG for probabilistic rules).
  bool shouldFire(Point P);

  /// True when any rule is armed for \p P (cheap pre-check for callers that
  /// want to skip work entirely when the point is cold).
  bool armed(Point P) const;

  /// How often \p P actually fired so far (test observability).
  uint64_t fireCount(Point P) const;

  /// Stall duration for lane-delay fires.
  uint64_t delayMillis() const { return DelayMs; }

private:
  struct Rule {
    uint64_t Nth = 0;  ///< fire at exactly this opportunity (1-based), once
    uint64_t Prob = 0; ///< else fire with probability 1/Prob
  };
  Rule Rules[NumPoints];
  uint64_t Opportunities[NumPoints] = {0, 0, 0, 0};
  uint64_t Fires[NumPoints] = {0, 0, 0, 0};
  uint64_t DelayMs = 25;
  uint64_t PrngState = 0x9e3779b97f4a7c15ull;
  mutable std::mutex Mu;

  uint64_t nextRand();
};

/// The resilience policy of one run, carried in InterpOptions.
struct ResilienceOptions {
  ExecBudget Budget;
  /// DOACROSS watchdog: declare the ticket frontier wedged when no lane
  /// makes progress for this many milliseconds (0 = watchdog off).
  uint64_t WatchdogMs = 0;
  /// Degrade on engine failure (pool unavailable, watchdog fire) instead of
  /// trapping: the loop invocation is retried on the simulated serial-order
  /// path with a rollback to the pre-invocation state. Off converts those
  /// failures into an attributed trap with RunResult::EngineFault set.
  bool Ladder = true;
  std::shared_ptr<FaultInjector> Faults;
  /// Sink for structured resilience events (degradation hops, watchdog
  /// fires, pool failures), pass "resilience". May be null.
  DiagnosticEngine *Diags = nullptr;

  bool anyActive() const {
    return Budget.any() || WatchdogMs || Faults != nullptr;
  }
};

/// Builds ResilienceOptions from the environment: GDSE_DEADLINE_MS,
/// GDSE_MEM_BUDGET (bytes), GDSE_WATCHDOG_MS, GDSE_LADDER (flag, default
/// on), GDSE_FAULTS (spec). Malformed values warn once through envDiags()
/// and are ignored, like every other GDSE_* variable.
ResilienceOptions resilienceFromEnv();

} // namespace gdse

#endif // GDSE_SUPPORT_RESILIENCE_H
