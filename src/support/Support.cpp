//===- Support.cpp - Common utilities and diagnostics ---------------------===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Support.h"

#include "support/Diagnostics.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

using namespace gdse;

void gdse::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "gdse fatal error: %s\n", Msg.c_str());
  std::abort();
}

void gdse::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

std::string gdse::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::vector<char> Buf(static_cast<size_t>(Len) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buf.data(), static_cast<size_t>(Len));
}

DiagnosticEngine &gdse::envDiags() {
  static DiagnosticEngine DE;
  return DE;
}

// Warns once per variable name for the process lifetime, so a hot path
// calling envInt per run does not spam. Reachable from compileBatch worker
// threads, so every piece of shared state here must be synchronized: the
// once-latch is mutex-guarded, and the pass attribution rides through a
// DiagnosticScope so it is stamped inside the engine's own lock — mutating
// the returned Diagnostic after report() would race with concurrent
// snapshot readers (diagnostics()/errorStrings()).
void gdse::envWarnOnce(const char *Name, const std::string &Msg) {
  static std::mutex Mu;
  static std::set<std::string> Warned;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Warned.insert(Name).second)
      return;
  }
  DiagnosticScope Scope(envDiags(), "env");
  Diagnostic D = envDiags().warning(Msg); // copy: render outside the lock
  std::fprintf(stderr, "%s\n", D.str().c_str());
}

bool gdse::envFlag(const char *Name, bool Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  std::string V(Env);
  for (char &C : V)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (V == "0" || V == "false" || V == "off" || V == "no")
    return false;
  if (V != "1" && V != "true" && V != "on" && V != "yes")
    envWarnOnce(Name, formatString("unrecognized value '%s' for %s; treating as "
                               "enabled (use 1/true/on/yes or 0/false/off/no)",
                               Env, Name));
  return true;
}

long gdse::envInt(const char *Name, long Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  char *End = nullptr;
  long V = std::strtol(Env, &End, 10);
  if (!End || *End != '\0') {
    envWarnOnce(Name, formatString("malformed integer '%s' for %s; using %ld",
                               Env, Name, Default));
    return Default;
  }
  return V;
}

std::string gdse::formatByteSize(uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit < 3) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", static_cast<unsigned long long>(Bytes));
  return formatString("%.1f %s", Value, Units[Unit]);
}
