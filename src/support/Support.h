//===- Support.h - Common utilities and diagnostics -------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Project-wide small utilities: fatal error reporting, unreachable marker,
/// and string formatting helpers shared by every library layer.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_SUPPORT_H
#define GDSE_SUPPORT_SUPPORT_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace gdse {

/// Prints \p Msg to stderr and aborts. Used for violated internal invariants
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Marks a point in the code that must never be executed.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

#define gdse_unreachable(MSG)                                                  \
  ::gdse::unreachableInternal(MSG, __FILE__, __LINE__)

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns \p Bytes rendered as a human-friendly quantity ("12.3 MiB").
std::string formatByteSize(uint64_t Bytes);

/// Reads the boolean environment flag \p Name. Unset, empty, "0", "false",
/// "off", and "no" (case-insensitive) are off; any other value is on. The
/// shared parser for GDSE_TIME_PASSES-style switches, so "=0" actually
/// disables them.
bool envFlag(const char *Name, bool Default = false);

/// Reads the integer environment variable \p Name; \p Default when unset,
/// empty, or unparsable.
long envInt(const char *Name, long Default);

} // namespace gdse

#endif // GDSE_SUPPORT_SUPPORT_H
