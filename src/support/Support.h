//===- Support.h - Common utilities and diagnostics -------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Project-wide small utilities: fatal error reporting, unreachable marker,
/// and string formatting helpers shared by every library layer.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_SUPPORT_H
#define GDSE_SUPPORT_SUPPORT_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace gdse {

class DiagnosticEngine;

/// Prints \p Msg to stderr and aborts. Used for violated internal invariants
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Marks a point in the code that must never be executed.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

#define gdse_unreachable(MSG)                                                  \
  ::gdse::unreachableInternal(MSG, __FILE__, __LINE__)

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns \p Bytes rendered as a human-friendly quantity ("12.3 MiB").
std::string formatByteSize(uint64_t Bytes);

/// Process-wide sink for environment-variable parsing warnings (pass
/// "env"). envFlag/envInt report malformed values here — once per variable
/// name — and mirror the rendered warning to stderr, instead of silently
/// falling back. Mostly consumed by tests; thread-safe like every engine.
DiagnosticEngine &envDiags();

/// Reads the boolean environment flag \p Name. Unset, empty, "0", "false",
/// "off", and "no" (case-insensitive) are off; any other value is on. The
/// shared parser for GDSE_TIME_PASSES-style switches, so "=0" actually
/// disables them. Values outside the recognized vocabulary ("1", "true",
/// "on", "yes" / "0", "false", "off", "no") still count as on, but warn
/// once through envDiags().
bool envFlag(const char *Name, bool Default = false);

/// Reads the integer environment variable \p Name; \p Default when unset or
/// empty. A set-but-unparsable value (e.g. GDSE_JOBS=abc) also yields
/// \p Default, but warns once through envDiags() instead of silently
/// behaving as if the variable were unset.
long envInt(const char *Name, long Default);

/// Reports a malformed value of the environment variable \p Name into
/// envDiags() and mirrors it to stderr — once per variable name for the
/// process lifetime. The shared sink behind envFlag/envInt, exposed for
/// enum-valued variables (GDSE_ENGINE, GDSE_GUARD) whose parsers live
/// elsewhere.
void envWarnOnce(const char *Name, const std::string &Msg);

} // namespace gdse

#endif // GDSE_SUPPORT_SUPPORT_H
