//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the GDSE project, a reproduction of "General Data Structure
// Expansion for Multi-threading" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the driver's batch-compilation layer. Tasks
/// are plain std::function thunks executed in submission order (a single
/// FIFO queue feeds all workers); wait() blocks until every submitted task
/// has finished, so callers can use the pool as a fork/join region without
/// tearing it down.
///
/// The pool applies the same discipline the paper prescribes for privatized
/// data: workers own their task's state exclusively while it runs, and all
/// cross-task merging happens after the join point on the calling thread.
///
/// TaskGroup layers a fork/join scope with a *work-helping* wait on top of a
/// pool: the waiter drains the group's own queue inline before blocking, so
/// a task that itself submits a group and waits (a pool worker running an
/// interpreter whose loop fans out chunks) can never deadlock on pool
/// starvation — the host-threaded loop runner (interp/ThreadedLoop.cpp)
/// depends on this.
///
//===----------------------------------------------------------------------===//

#ifndef GDSE_SUPPORT_THREADPOOL_H
#define GDSE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gdse {

class ThreadPool {
public:
  /// Spawns \p Threads workers (clamped to at least one).
  explicit ThreadPool(unsigned Threads) {
    if (Threads < 1)
      Threads = 1;
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Sensible default width: the host's hardware concurrency, at least one.
  static unsigned defaultThreadCount() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Enqueues \p Task; it runs on some worker once one is free.
  void submit(std::function<void()> Task) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Queue.push_back(std::move(Task));
      ++Unfinished;
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    Idle.wait(Lock, [this] { return Unfinished == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(Mu);
        if (--Unfinished == 0)
          Idle.notify_all();
      }
    }
  }

  std::mutex Mu;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t Unfinished = 0;
  bool Stopping = false;
};

/// A fork/join scope over a ThreadPool whose wait() *helps*: tasks live in
/// the group's own queue, pool workers and the waiter both pop from it, and
/// the waiter runs tasks inline until the queue drains before blocking on
/// the last stragglers. Because the waiter can always make progress on its
/// own submissions, submitting and waiting from inside a pool task (nested
/// parallelism) cannot deadlock even on a one-worker pool.
class TaskGroup {
  /// All mutable group state lives behind shared ownership: every pool
  /// runner submitted on the group's behalf holds a reference, so a runner
  /// that loses the race with the helping waiter — the waiter drains the
  /// queue, wait() returns, the group's scope ends — still lands on live
  /// state and no-ops instead of locking a destroyed mutex. (The
  /// alternative, having the destructor wait for runners to retire, is a
  /// deadlock on a pool whose every worker is inside a task that owns a
  /// group: nobody is left to run the runners being waited for.)
  struct State {
    std::mutex Mu;
    std::condition_variable Done;
    std::deque<std::function<void()>> Tasks;
    size_t Unfinished = 0;

    /// Pops and runs one task; returns false when the queue is empty.
    bool runOne() {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        if (Tasks.empty())
          return false;
        Task = std::move(Tasks.front());
        Tasks.pop_front();
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(Mu);
        if (--Unfinished == 0)
          Done.notify_all();
      }
      return true;
    }
  };

public:
  explicit TaskGroup(ThreadPool &Pool)
      : Pool(Pool), S(std::make_shared<State>()) {}
  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;
  /// The destructor joins: no group task outlives the scope. (Late pool
  /// runners may outlive it; they share ownership of the state and find an
  /// empty queue.)
  ~TaskGroup() { wait(); }

  void submit(std::function<void()> Task) {
    {
      std::unique_lock<std::mutex> Lock(S->Mu);
      S->Tasks.push_back(std::move(Task));
      ++S->Unfinished;
    }
    // The pool runner pops from *this group's* queue; if the waiter already
    // helped the task away, the runner is a cheap no-op.
    Pool.submit([St = S] { St->runOne(); });
  }

  /// Blocks until every submitted task has finished, executing queued tasks
  /// inline while any remain.
  void wait() {
    while (S->runOne()) {
    }
    std::unique_lock<std::mutex> Lock(S->Mu);
    S->Done.wait(Lock, [this] { return S->Unfinished == 0; });
  }

private:
  ThreadPool &Pool;
  std::shared_ptr<State> S;
};

} // namespace gdse

#endif // GDSE_SUPPORT_THREADPOOL_H
